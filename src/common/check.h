// mfbo::common — contract-checking macros for the whole library.
//
// Bare `assert` disappears under NDEBUG, which is exactly when the BO loop's
// fragile numerics (near-singular Gram matrices, NLML gradients, MC-composite
// kernels) need guard rails the most. These macros throw a typed exception
// instead, so violations surface in every build type and are testable.
//
//   MFBO_CHECK(cond, msg...)        always-on precondition / invariant check
//   MFBO_DCHECK(cond, msg...)       hot-path check; compiled out in release
//                                   unless MFBO_ENABLE_DCHECKS is defined
//   MFBO_CHECK_FINITE(value, msg...)  always-on finiteness check on a double
//                                   expression; returns the value, so it can
//                                   wrap an intermediate in an expression
//
// The optional message arguments are streamed into the exception text, e.g.
//   MFBO_CHECK(r < rows_, "row ", r, " out of range [0,", rows_, ")");
#pragma once

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace mfbo {

/// Thrown by MFBO_CHECK / MFBO_DCHECK / MFBO_CHECK_FINITE on a violated
/// contract: a dimension mismatch, an empty-dataset precondition, an
/// out-of-range index, or a non-finite value where a finite one is required.
/// Derives from std::logic_error: a contract violation is a caller bug, in
/// contrast to the std::runtime_error used for legitimate numerical failures
/// (singular LU pivot, covariance not positive definite even with jitter).
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(const char* file, long line, std::string message);

  /// Source file of the failed check (as given by __FILE__).
  const char* file() const { return file_; }
  /// Source line of the failed check.
  long line() const { return line_; }

 private:
  const char* file_;
  long line_;
};

namespace check_detail {

/// Build "file:line: check failed: <expr>[: <detail>]" and throw.
/// Out-of-line so the fast path of every check site stays a compare+branch.
[[noreturn]] void throwViolation(const char* file, long line, const char* expr,
                                 const std::string& detail);

/// Stream the optional message arguments of a check into one string.
template <typename... Args>
std::string formatMessage(const Args&... args) {
  if constexpr (sizeof...(Args) == 0) {
    return {};
  } else {
    std::ostringstream os;
    (os << ... << args);
    return std::move(os).str();
  }
}

template <typename... Args>
[[noreturn]] inline void failCheck(const char* file, long line,
                                   const char* expr, const Args&... args) {
  throwViolation(file, line, expr, formatMessage(args...));
}

template <typename... Args>
inline double checkFinite(double value, const char* expr, const char* file,
                          long line, const Args&... args) {
  if (!std::isfinite(value)) [[unlikely]] {
    std::ostringstream os;
    os << "value is " << value;
    if constexpr (sizeof...(Args) > 0) {
      os << ": ";
      (os << ... << args);
    }
    throwViolation(file, line, expr, std::move(os).str());
  }
  return value;
}

}  // namespace check_detail
}  // namespace mfbo

/// Always-on contract check. Throws mfbo::ContractViolation when @p cond is
/// false; extra arguments are streamed into the exception message.
#define MFBO_CHECK(cond, ...)                                              \
  do {                                                                     \
    if (!(cond)) [[unlikely]] {                                            \
      ::mfbo::check_detail::failCheck(__FILE__, __LINE__,                  \
                                      #cond __VA_OPT__(, ) __VA_ARGS__);   \
    }                                                                      \
  } while (false)

/// Always-on finiteness check on a double-valued expression. Evaluates the
/// expression exactly once and yields its value, so intermediates can be
/// checked in-line: `const double nlml = MFBO_CHECK_FINITE(0.5 * ...);`.
#define MFBO_CHECK_FINITE(value, ...)                                      \
  ::mfbo::check_detail::checkFinite((value), #value, __FILE__,             \
                                    __LINE__ __VA_OPT__(, ) __VA_ARGS__)

// Debug/hardened-build check for hot paths (per-element accessors, inner
// kernel loops). Active when NDEBUG is off (plain Debug builds) or when
// MFBO_ENABLE_DCHECKS is defined (the asan-ubsan preset turns it on so the
// sanitizer CI leg also runs every contract). In release it compiles to
// nothing but still type-checks its arguments.
#if !defined(NDEBUG) || defined(MFBO_ENABLE_DCHECKS)
#define MFBO_DCHECK(cond, ...) MFBO_CHECK(cond __VA_OPT__(, ) __VA_ARGS__)
#else
#define MFBO_DCHECK(cond, ...)                   \
  do {                                           \
    if (false) {                                 \
      MFBO_CHECK(cond __VA_OPT__(, ) __VA_ARGS__); \
    }                                            \
  } while (false)
#endif
