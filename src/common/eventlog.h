// mfbo — flight recorder: a fixed-capacity ring-buffer journal of
// structured service events, with a crash-time black-box dump.
// Metrics, spans, and the timeline answer "how much" and "where did the
// time go"; none answers the operator's first post-mortem question:
// *what was the fleet doing right before it died?* This header adds that
// operations layer, a flight recorder in the avionics sense:
//
//   * Structured events, not log lines. Sites record an EventKind (the
//     service narrative: session lifecycle, engine transitions, fidelity
//     decisions, checkpoint persist/restore, pool dispatch, contract
//     violations) plus a fixed-size payload: two static-string details
//     (pointers must outlive the process, like span names), two integers,
//     and the session id of the innermost ScopedSession.
//   * Fixed-capacity per-thread rings, allocated on a thread's first
//     event under memstats::PauseScope and never resized or freed —
//     recording never allocates, so it is hot-path-safe and the rings
//     stay readable from a fatal-signal handler. A full ring overwrites
//     its oldest slot and counts the loss (stats().dropped): the journal
//     is always the *most recent* window.
//   * Deterministic by default. Events carry a global sequence number and
//     no timestamp; in deterministic mode (wall_clock=false) records from
//     inside a parallel region are skipped (stats().skipped_in_region),
//     so the journal is byte-identical at 1 and N threads, like spans.
//     wall_clock=true stamps every event (steady-clock ns since enable())
//     and keeps in-region records — maximum forensics, under the same
//     audited D002 clock exemption as common/timeline.cpp.
//   * Disabled cost is one inline relaxed atomic load and a branch.
//   * Black-box dump. dumpFlightRecorder() merges every ring in sequence
//     order into `<dump_dir>/flightrec.<pid>.jsonl` (header line + one
//     event per line) using async-signal-safe primitives only —
//     open/write/close, no allocation, no locks, no stdio — because the
//     same path runs from the optional SIGSEGV/SIGABRT handler
//     (Options::install_signal_handler) and from the ContractViolation
//     hook in common/check.cpp. SessionManager::persist() also snapshots
//     the journal, so a killed fleet leaves its last persisted window on
//     disk even without a signal.
//
// Contract: enable()/disable() only from the serial harness; detail
// strings have static storage duration; long session ids are truncated.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/json.h"

namespace mfbo {
namespace eventlog {

/// What happened. kindName() gives the stable serialization tag.
enum class EventKind : unsigned char {
  kSessionCreate,      ///< Session constructed (a = algo)
  kSessionStep,        ///< Session::step entered (v0 = steps so far)
  kSessionDone,        ///< session completed (v0 = total steps)
  kSessionDestroy,     ///< SessionManager::destroy
  kEngineTransition,   ///< Engine::transition (a = from, b = to)
  kFidelityDecision,   ///< eq. (11)/(12) choice (a = fidelity,
                       ///< b = "downgraded" when budget-forced,
                       ///< v0 = iteration, v1 = batch slot)
  kCheckpointPersist,  ///< SessionManager persisted a boundary
                       ///< (a = "checkpoint"|"result", v0 = steps)
  kCheckpointRestore,  ///< Session::restore / adoptResult
                       ///< (a = "checkpoint"|"result", v0 = steps)
  kPoolDispatch,       ///< parallel region entered (v0 = n, v1 = grain)
  kContractViolation,  ///< MFBO_CHECK failed (a = file, v0 = line)
  kCustom,             ///< tests and embedders
};

/// Stable lowercase tag ("session_step", "engine_transition", ...).
const char* kindName(EventKind kind);

/// Longest session id stored per event, terminator included; longer ids
/// are truncated at record time (no allocation).
constexpr std::size_t kSessionIdCap = 24;

/// One journal slot. Plain data: safe to read from a signal handler.
struct Event {
  std::uint64_t seq = 0;   ///< global order; assigned at record()
  std::int64_t ts_ns = -1; ///< steady ns since enable(); -1 = unstamped
  std::int64_t v0 = 0;
  std::int64_t v1 = 0;
  const char* a = nullptr;  ///< static detail string (or null)
  const char* b = nullptr;  ///< static detail string (or null)
  EventKind kind = EventKind::kCustom;
  char session[kSessionIdCap] = {0};  ///< innermost ScopedSession id
};

struct Options {
  /// Slots per recording thread (clamped to [8, 65536]). The journal
  /// window is the last `ring_capacity` events of each thread.
  std::size_t ring_capacity = 256;
  /// Stamp events with steady-clock ns and keep in-region records: the
  /// wall-clock dump mode, outside the byte-determinism boundary. Off =
  /// deterministic mode (sequence numbers only, in-region records
  /// skipped, byte-identical at 1 vs N threads).
  bool wall_clock = false;
  /// Directory for flightrec.<pid>.jsonl. Empty disables automatic dumps
  /// (explicit dumpFlightRecorder(path) still works).
  std::string dump_dir;
  /// Install a SIGSEGV/SIGABRT handler that writes the dump (async-
  /// signal-safely) before re-raising with the default disposition.
  /// Requires a non-empty dump_dir.
  bool install_signal_handler = false;
};

/// Turn the recorder on. Resets sequence numbers, stats, and every ring;
/// (re)allocates rings at the configured capacity lazily per thread.
/// Enabling while already enabled is a ContractViolation.
void enable(const Options& options = {});

/// Turn the recorder off (journal contents stay readable until the next
/// enable()). The signal handler, if installed, becomes a pass-through.
void disable();

namespace detail {
/// Shared on/off flag; record() inlines the load.
extern std::atomic<bool> g_enabled;
void recordSlow(EventKind kind, const char* a, const char* b,
                std::int64_t v0, std::int64_t v1);
/// Hook for common/check.cpp: journal the violation and, when a dump
/// directory is configured, write the black box before the throw
/// unwinds. Never throws; reentrancy-guarded.
void noteContractViolation(const char* file, long line);
}  // namespace detail

/// True while the recorder is on.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Append one event. One relaxed load + branch when disabled; never
/// allocates when enabled (the thread's ring is created on its first
/// record under memstats::PauseScope). @p a and @p b must be static
/// strings (or null).
inline void record(EventKind kind, const char* a = nullptr,
                   const char* b = nullptr, std::int64_t v0 = 0,
                   std::int64_t v1 = 0) {
  if (!detail::g_enabled.load(std::memory_order_relaxed)) return;
  detail::recordSlow(kind, a, b, v0, v1);
}

/// RAII session label: while alive, events recorded by this thread carry
/// @p id (truncated to kSessionIdCap-1 bytes). Scopes nest and restore;
/// the service layer installs one per session entry so engine events are
/// attributable to the session that caused them.
class ScopedSession {
 public:
  explicit ScopedSession(std::string_view id);
  ScopedSession(const ScopedSession&) = delete;
  ScopedSession& operator=(const ScopedSession&) = delete;
  ~ScopedSession();

 private:
  char saved_[kSessionIdCap];
};

struct Stats {
  std::uint64_t recorded = 0;  ///< events written to a ring
  std::uint64_t dropped = 0;   ///< oldest slots overwritten (ring wrap)
  std::uint64_t skipped_in_region = 0;  ///< deterministic-mode skips
};

/// Current counters. All three are deterministic for a fixed seed at any
/// thread count in deterministic mode.
Stats stats();

/// Merged journal window, sequence-ordered:
/// {"format":"mfbo-flightrec","version":1,"deterministic":...,
///  "ring_capacity":...,"recorded":...,"dropped":...,
///  "skipped_in_region":...,"events":[{...}]}.
/// In deterministic mode the dump() bytes are identical at 1 vs N
/// threads. Callable while disabled (serializes the last journal).
Json journalJson();

/// Write the merged window to `<dump_dir>/flightrec.<pid>.jsonl`.
/// Returns false (never throws) when no dump directory is configured or
/// the write fails. The non-signal path additionally runs under the
/// "flightrec_dump" span.
bool dumpFlightRecorder();

/// Same, to an explicit path.
bool dumpFlightRecorder(const char* path);

/// The path automatic dumps go to ("" when no dump_dir is configured).
std::string dumpPath();

}  // namespace eventlog
}  // namespace mfbo
