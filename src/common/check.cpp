#include "common/check.h"

namespace mfbo {

namespace {

std::string buildMessage(const char* file, long line, const char* expr,
                         const std::string& detail) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!detail.empty()) os << ": " << detail;
  return std::move(os).str();
}

}  // namespace

ContractViolation::ContractViolation(const char* file, long line,
                                     std::string message)
    : std::logic_error(std::move(message)), file_(file), line_(line) {}

namespace check_detail {

void throwViolation(const char* file, long line, const char* expr,
                    const std::string& detail) {
  throw ContractViolation(file, line, buildMessage(file, line, expr, detail));
}

}  // namespace check_detail
}  // namespace mfbo
