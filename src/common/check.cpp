#include "common/check.h"

#include "common/eventlog.h"

namespace mfbo {

namespace {

std::string buildMessage(const char* file, long line, const char* expr,
                         const std::string& detail) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!detail.empty()) os << ": " << detail;
  return std::move(os).str();
}

}  // namespace

ContractViolation::ContractViolation(const char* file, long line,
                                     std::string message)
    : std::logic_error(std::move(message)), file_(file), line_(line) {}

namespace check_detail {

void throwViolation(const char* file, long line, const char* expr,
                    const std::string& detail) {
  // Last entry in the black box before the stack unwinds: the flight
  // recorder journals the violation site and, when a dump directory is
  // configured, writes the window to disk — a handler that swallows the
  // exception (or a crash during unwind) can no longer lose the evidence.
  eventlog::detail::noteContractViolation(file, line);
  throw ContractViolation(file, line, buildMessage(file, line, expr, detail));
}

}  // namespace check_detail
}  // namespace mfbo
