#include "common/timeline.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/json.h"
#include "common/memstats.h"
#include "common/spans.h"
#include "common/telemetry.h"

namespace mfbo {
namespace timeline {
namespace {

/// One buffered span boundary. Names are literals (the spans contract), so
/// storing the pointer is safe and an event is four words.
struct Event {
  const char* name;
  std::uint32_t tid;
  std::int64_t ts_ns;
  bool begin;
};

// All recorder state is guarded by g_mu. recordBegin/recordEnd reach this
// file only while spans.cpp's dispatch flag says a recording is active, and
// they re-check g_events under the lock, so a stop() racing with a worker's
// last events is safe: late events are simply dropped.
std::mutex g_mu;
std::FILE* g_stream = nullptr;
std::string g_path;
std::vector<Event>* g_events = nullptr;
std::chrono::steady_clock::time_point g_epoch;
std::atomic<std::uint32_t> g_next_tid{0};

/// Small sequential per-thread id, assigned on first event. The ids are
/// labels for the trace viewer, not OS thread ids; the main/bench thread is
/// almost always 1.
std::uint32_t threadId() {
  thread_local std::uint32_t tid = 0;
  if (tid == 0) tid = g_next_tid.fetch_add(1, std::memory_order_relaxed) + 1;
  return tid;
}

void record(const char* name, bool begin) {
  // Recorder allocations (buffer growth) must stay invisible to the
  // deterministic per-span memory counters.
  const memstats::PauseScope pause;
  const std::uint32_t tid = threadId();
  const std::lock_guard<std::mutex> lock(g_mu);
  if (g_events == nullptr) return;
  // The timestamp is taken under the lock: marginally coarser, but it
  // sequences events against start()/stop() and keeps g_epoch race-free.
  const std::int64_t ts_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - g_epoch)
          .count();
  g_events->push_back(Event{name, tid, ts_ns, begin});
}

Json eventToJson(const Event& event) {
  Json out = Json::object();
  out.set("name", event.name);
  out.set("cat", "span");
  out.set("ph", event.begin ? "B" : "E");
  // Trace-event timestamps are microseconds; keep sub-us precision.
  out.set("ts", static_cast<double>(event.ts_ns) * 1e-3);
  out.set("pid", 1);
  out.set("tid", static_cast<double>(event.tid));
  return out;
}

Json metadataEvent(const char* name, int tid, const char* value) {
  Json args = Json::object();
  args.set("name", value);
  Json out = Json::object();
  out.set("name", name);
  out.set("ph", "M");
  out.set("pid", 1);
  out.set("tid", tid);
  out.set("args", std::move(args));
  return out;
}

}  // namespace

void start(const std::string& path) {
  const memstats::PauseScope pause;
  std::FILE* stream = std::fopen(path.c_str(), "wb");
  if (stream == nullptr)
    throw std::runtime_error("timeline path is not writable: " + path);
  {
    const std::lock_guard<std::mutex> lock(g_mu);
    MFBO_CHECK(g_stream == nullptr,
               "timeline::start: a recording is already active");
    g_stream = stream;
    g_path = path;
    g_events = new std::vector<Event>();
    g_events->reserve(4096);
    g_epoch = std::chrono::steady_clock::now();
  }
  spans::detail::setTimelineRecording(true);
}

bool recording() {
  const std::lock_guard<std::mutex> lock(g_mu);
  return g_stream != nullptr;
}

std::size_t eventCount() {
  const std::lock_guard<std::mutex> lock(g_mu);
  return g_events == nullptr ? 0 : g_events->size();
}

void stop() {
  const memstats::PauseScope pause;
  std::FILE* stream = nullptr;
  std::string path;
  std::vector<Event> events;
  {
    const std::lock_guard<std::mutex> lock(g_mu);
    if (g_stream == nullptr) return;
    stream = g_stream;
    g_stream = nullptr;
    path = std::move(g_path);
    g_path.clear();
    events = std::move(*g_events);
    delete g_events;
    g_events = nullptr;
  }
  spans::detail::setTimelineRecording(false);

  Json trace_events = Json::array();
  trace_events.push(metadataEvent("process_name", 0, "mfbo"));
  std::uint32_t max_tid = 0;
  for (const Event& event : events) max_tid = std::max(max_tid, event.tid);
  for (std::uint32_t tid = 1; tid <= max_tid; ++tid) {
    trace_events.push(metadataEvent(
        "thread_name", static_cast<int>(tid),
        tid == 1 ? "main" : "pool-worker"));
  }
  for (const Event& event : events) trace_events.push(eventToJson(event));
  Json doc = Json::object();
  doc.set("traceEvents", std::move(trace_events));
  doc.set("displayTimeUnit", "ms");
  const std::string text = doc.dump();

  bool ok = std::fwrite(text.data(), 1, text.size(), stream) == text.size();
  ok = std::fputc('\n', stream) != EOF && ok;
  ok = std::fclose(stream) == 0 && ok;
  if (!ok) {
    // Timeline plumbing is process infrastructure, not session workload:
    // record the failure globally regardless of any active TelemetryScope.
    telemetry::globalMetrics().counter("timeline.write_errors").add();
    std::fprintf(stderr, "mfbo: timeline write failed: %s\n", path.c_str());
  }
}

namespace detail {

void recordBegin(const char* name) { record(name, /*begin=*/true); }

void recordEnd(const char* name) { record(name, /*begin=*/false); }

}  // namespace detail

}  // namespace timeline
}  // namespace mfbo
