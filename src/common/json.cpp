#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "common/check.h"

namespace mfbo {

namespace {

/// Deterministic shortest-faithful double formatting: %.17g round-trips
/// every double and prints integral values without a decimal point, so two
/// runs with the same seed serialize byte-identically.
void appendNumber(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  // Prefer the shortest representation that still round-trips.
  for (int precision : {15, 16, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out += buf;
}

void appendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Recursive-descent parser over a string; tracks the current offset for
/// error messages. Depth-limited so hostile input cannot blow the stack.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parseDocument() {
    Json value = parseValue(0);
    skipWhitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("Json::parse: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consumeLiteral(const char* literal) {
    std::size_t n = 0;
    while (literal[n] != '\0') ++n;
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parseValue(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skipWhitespace();
    const char c = peek();
    switch (c) {
      case '{':
        return parseObject(depth);
      case '[':
        return parseArray(depth);
      case '"':
        return Json::str(parseString());
      case 't':
        if (consumeLiteral("true")) return Json::boolean(true);
        fail("invalid literal");
      case 'f':
        if (consumeLiteral("false")) return Json::boolean(false);
        fail("invalid literal");
      case 'n':
        if (consumeLiteral("null")) return Json::null();
        fail("invalid literal");
      default:
        return parseNumber();
    }
  }

  Json parseObject(int depth) {
    expect('{');
    Json obj = Json::object();
    skipWhitespace();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skipWhitespace();
      std::string key = parseString();
      skipWhitespace();
      expect(':');
      obj.set(std::move(key), parseValue(depth + 1));
      skipWhitespace();
      const char sep = peek();
      ++pos_;
      if (sep == '}') return obj;
      if (sep != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parseArray(int depth) {
    expect('[');
    Json arr = Json::array();
    skipWhitespace();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push(parseValue(depth + 1));
      skipWhitespace();
      const char sep = peek();
      ++pos_;
      if (sep == ']') return arr;
      if (sep != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + static_cast<std::size_t>(i)];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape");
            }
          }
          pos_ += 4;
          // The writer only emits \u00xx control escapes; decode the BMP
          // subset as UTF-8 and reject surrogates.
          if (code >= 0xD800 && code <= 0xDFFF) fail("surrogates unsupported");
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("invalid escape character");
      }
    }
  }

  Json parseNumber() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("invalid value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("invalid number '" + token + "'");
    return Json::number(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::boolean(bool v) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = v;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = v;
  return j;
}

Json Json::str(std::string v) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(v);
  return j;
}

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

bool Json::asBool() const {
  MFBO_CHECK(type_ == Type::kBool, "not a bool");
  return bool_;
}

double Json::asNumber() const {
  MFBO_CHECK(type_ == Type::kNumber, "not a number");
  return number_;
}

const std::string& Json::asString() const {
  MFBO_CHECK(type_ == Type::kString, "not a string");
  return string_;
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return items_.size();
  if (type_ == Type::kObject) return members_.size();
  return 0;
}

Json& Json::push(Json v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  MFBO_CHECK(type_ == Type::kArray, "push() on a non-array");
  items_.push_back(std::move(v));
  return *this;
}

const Json& Json::at(std::size_t i) const {
  MFBO_CHECK(type_ == Type::kArray, "at(index) on a non-array");
  MFBO_CHECK(i < items_.size(), "index ", i, " out of range [0,",
             items_.size(), ")");
  return items_[i];
}

Json& Json::set(std::string key, Json v) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  MFBO_CHECK(type_ == Type::kObject, "set() on a non-object");
  for (auto& member : members_) {
    if (member.first == key) {
      member.second = std::move(v);
      return *this;
    }
  }
  members_.emplace_back(std::move(key), std::move(v));
  return *this;
}

bool Json::contains(const std::string& key) const {
  if (type_ != Type::kObject) return false;
  for (const auto& member : members_)
    if (member.first == key) return true;
  return false;
}

const Json& Json::at(const std::string& key) const {
  MFBO_CHECK(type_ == Type::kObject, "at(key) on a non-object");
  for (const auto& member : members_)
    if (member.first == key) return member.second;
  MFBO_CHECK(false, "missing key '", key, "'");
  std::abort();  // unreachable: MFBO_CHECK(false) throws
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  MFBO_CHECK(type_ == Type::kObject, "members() on a non-object");
  return members_;
}

const std::vector<Json>& Json::items() const {
  MFBO_CHECK(type_ == Type::kArray, "items() on a non-array");
  return items_;
}

void Json::appendTo(std::string& out) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      appendNumber(out, number_);
      break;
    case Type::kString:
      appendEscaped(out, string_);
      break;
    case Type::kArray: {
      out += '[';
      bool first = true;
      for (const Json& item : items_) {
        if (!first) out += ',';
        first = false;
        item.appendTo(out);
      }
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& member : members_) {
        if (!first) out += ',';
        first = false;
        appendEscaped(out, member.first);
        out += ':';
        member.second.appendTo(out);
      }
      out += '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  appendTo(out);
  return out;
}

Json Json::parse(const std::string& text) {
  Parser parser(text);
  return parser.parseDocument();
}

}  // namespace mfbo
