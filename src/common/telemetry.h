// mfbo — telemetry: scoped metrics registries and structured tracing.
//
// The BO loop makes every interesting decision silently — the eq. (11)/(12)
// fidelity choice, MSP restart outcomes, first-feasible switching, Cholesky
// jitter retries — which makes table-level discrepancies against the paper
// impossible to diagnose without a debugger. This header provides the two
// observability primitives the rest of the library hooks into:
//
//   * Metrics — named monotonic Counters, Gauges, and Timer histograms in a
//     MetricsRegistry. There is one process-wide default registry
//     (globalMetrics()); a TelemetryScope temporarily points the calling
//     thread's free counter()/gauge()/timer() lookups at a private registry
//     instead, which is how the session layer (src/service) keeps N
//     concurrent engines from interleaving their counters in one shared
//     store. Instrumentation sites look their metric up once per *call*
//     (a function-local reference), never once per *process*: a cached
//     `static Metric&` would pin whichever registry happened to be active
//     at first touch forever, which is exactly the cross-session
//     interleaving bug the scoping exists to fix (lint rule D005 rejects
//     the static form). `metricsSnapshot()` serializes the active registry
//     to JSON for the bench `--out` artifacts; `resetMetrics()` zeroes its
//     values (references stay valid) so tests and repeated bench runs can
//     isolate measurements.
//
//   * Tracing — structured events (JSON objects) routed to an installable
//     TraceSink. The default sink is null: `traceEnabled()` is a single
//     pointer test, and every emission site guards event construction behind
//     it, so an untraced run does no formatting work and produces no output.
//     TraceWriter is the JSONL file sink (one event per line, flushed);
//     CollectingTraceSink buffers events in memory for tests and embedders.
//
// The metrics side is thread-safe: instrumented sites run inside the
// deterministic parallel regions of common/parallel.h, so counter/gauge
// updates are relaxed atomics, timers take a tiny mutex, and registry
// lookups are mutex-protected (references stay stable and valid forever).
// Trace sinks remain single-writer by contract — events are emitted only
// from the serial sections of the synthesis loops — except TraceWriter,
// which locks per line so embedders tracing from their own threads get
// whole-line interleaving.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"

namespace mfbo {
namespace telemetry {

/// Monotonic event counter. add() is a relaxed atomic: totals are exact at
/// any thread count, only the interleaving is unordered.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value-wins instantaneous metric (atomic store/load).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Accumulating duration statistic (count / total / min / max seconds) plus
/// summary quantiles from a bounded reservoir. A full histogram is overkill
/// for the per-run artifacts; extrema answer "how long at worst" and the
/// p50/p95 quantiles expose tail latency without bucketing decisions. The
/// reservoir uses Vitter's Algorithm R with a private LCG (no global RNG
/// state touched), so quantiles are exact below kReservoirCap samples and
/// an unbiased sample above it. All fields update together under a mutex so
/// concurrent record() calls from parallel workers cannot tear a snapshot.
class Timer {
 public:
  /// Reservoir size: exact quantiles for the first 512 samples, sampled
  /// beyond. 512 doubles is small enough to keep per-timer forever.
  static constexpr std::size_t kReservoirCap = 512;

  void record(double seconds);
  std::uint64_t count() const;
  double totalSeconds() const;
  double minSeconds() const;
  double maxSeconds() const;
  double meanSeconds() const;
  /// Nearest-rank quantile over the reservoir; q in [0, 1]. Returns 0 when
  /// nothing was recorded.
  double quantileSeconds(double q) const;
  void reset();

 private:
  mutable std::mutex mu_;
  std::uint64_t count_ = 0;
  double total_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::uint64_t lcg_ = 0x9e3779b97f4a7c15ull;  ///< reservoir replacement RNG
  std::vector<double> samples_;
};

/// Fixed-bucket log-scale latency histogram for the service health layer
/// (src/service/health.h). Where Timer answers "how long did it take" for
/// a run artifact, Histogram answers the operator's SLO question — p50/
/// p90/p99 over an unbounded stream — with *bucket-exact* quantiles: the
/// reservoir's sampling error is replaced by a fixed resolution of
/// kBucketsPerDecade buckets per decade over [100ns, 1000s], plus an
/// underflow and an overflow bucket. record() is lock-free (three relaxed
/// atomic bumps, no allocation ever), so it is safe on every hot path and
/// readable mid-flight by a health scrape. Quantiles report the upper
/// edge of the covering bucket: deterministic for fixed counts, never
/// underestimates the tail.
class Histogram {
 public:
  static constexpr std::size_t kBucketsPerDecade = 5;
  static constexpr int kMinExponent = -7;  ///< first edge: 1e-7 s (100 ns)
  static constexpr int kMaxExponent = 3;   ///< last edge: 1e3 s
  /// Log-spaced buckets plus underflow (index 0) and overflow (last).
  static constexpr std::size_t kBuckets =
      kBucketsPerDecade *
          static_cast<std::size_t>(kMaxExponent - kMinExponent) +
      2;

  /// Count one observation. Negative and NaN values clamp into the
  /// underflow bucket. Lock-free; never allocates.
  void record(double seconds);
  std::uint64_t count() const;
  double totalSeconds() const;
  /// Upper bucket edge covering the nearest-rank quantile; q in [0, 1].
  /// 0 when nothing was recorded; overflow reports the last finite edge.
  double quantileSeconds(double q) const;
  void reset();

 private:
  static std::size_t bucketIndex(double seconds);
  static double bucketUpperEdge(std::size_t index);

  std::atomic<std::uint64_t> counts_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> total_ns_{0};
};

/// An isolated named-metric store. Lookups create the metric on first use
/// and return references that stay valid for the registry's lifetime
/// (reset() zeroes values without invalidating references). The process has
/// one default instance — globalMetrics() — backing the free
/// counter()/gauge()/timer() functions; the session layer gives every
/// concurrent optimization run a private instance via TelemetryScope so
/// snapshots never mix two runs' counters.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Timer& timer(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Zero every registered metric (references stay valid).
  void reset();

  /// Serialize this registry's metrics, sorted by name:
  /// {"counters":{...},"gauges":{...},
  ///  "timers":{name:{count,total_s,min_s,p50_s,p95_s,max_s}},
  ///  "histograms":{name:{count,total_s,p50_s,p90_s,p99_s}}}.
  /// With include_timers=false the wall-clock "timers" and "histograms"
  /// sections are omitted; counters and gauges are deterministic for a
  /// fixed seed at any thread count, so the remaining document is
  /// byte-reproducible.
  Json metricsJson(bool include_timers) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// The process-wide default registry: what counter()/gauge()/timer()
/// resolve against when no TelemetryScope is active on the calling thread.
MetricsRegistry& globalMetrics();

/// RAII registry scoping: while alive, the constructing thread's free
/// counter()/gauge()/timer()/metricsSnapshot()/resetMetrics() calls resolve
/// against @p registry instead of globalMetrics(). Scopes nest (restore the
/// previous registry on destruction) and are thread-local — the parallel
/// pool propagates the active registry into its workers per region, so
/// instrumentation inside parallelFor bodies lands in the scoping session's
/// registry too (common/parallel.cpp). The registry is borrowed, not owned:
/// it must outlive the scope and every reference handed out through it.
class TelemetryScope {
 public:
  explicit TelemetryScope(MetricsRegistry& registry);
  TelemetryScope(const TelemetryScope&) = delete;
  TelemetryScope& operator=(const TelemetryScope&) = delete;
  ~TelemetryScope();

 private:
  MetricsRegistry* previous_;
};

namespace detail {
/// Registry the calling thread currently resolves metrics against:
/// the innermost TelemetryScope's registry, or globalMetrics() without one.
/// The parallel pool captures this at region submission and installs it on
/// its workers for the duration of the region (common/parallel.cpp).
MetricsRegistry* activeRegistry();
/// Install @p registry (nullptr = back to globalMetrics()) as the calling
/// thread's active registry; returns the previous raw slot value for
/// restoration. Used by TelemetryScope and the pool workers only.
MetricsRegistry* exchangeActiveRegistry(MetricsRegistry* registry);
}  // namespace detail

/// Lookup in the calling thread's active registry; creates the metric on
/// first use. The reference stays valid for the registry's lifetime, so a
/// call site that bumps in a loop hoists the lookup into a *function-local*
/// reference:
///
///   telemetry::Counter& retries =
///       telemetry::counter("linalg.cholesky.jitter_retries");
///   retries.add();
///
/// Never cache the reference in a `static` — that pins whichever registry
/// was active at first call for the process lifetime, silently routing
/// later sessions' metrics into the wrong store (lint rule D005).
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Timer& timer(std::string_view name);
Histogram& histogram(std::string_view name);

/// Serialize the active registry (MetricsRegistry::metricsJson) and append
/// process-level observability state:
/// {"counters":{...},"gauges":{...},
///  "timers":{name:{count,total_s,min_s,p50_s,p95_s,max_s}},
///  "peak_rss_bytes":...}.
/// When the span profiler is enabled (common/spans.h) the calling thread's
/// span tree is appended under a "spans" key. With include_timers=false the
/// wall-clock "timers" section and the nondeterministic process peak-RSS
/// sample (common/memstats.h) are omitted and the span tree drops its
/// total_s/self_s fields — counters, gauges, span counts, and the per-span
/// allocation counters are deterministic for a fixed seed at any thread
/// count, so the remaining snapshot is byte-reproducible (the bench
/// --no-timing artifacts rely on this).
Json metricsSnapshot(bool include_timers = true);

/// Zero every metric in the active registry (references stay valid).
void resetMetrics();

/// RAII wall-clock timer recording into a Timer on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& t)
      : timer_(t), start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    timer_.record(std::chrono::duration<double>(elapsed).count());
  }

 private:
  Timer& timer_;
  std::chrono::steady_clock::time_point start_;
};

/// RAII wall-clock latency sample recording into a Histogram on
/// destruction — the SLO twin of ScopedTimer.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram& h)
      : histogram_(h), start_(std::chrono::steady_clock::now()) {}
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;
  ~ScopedLatency() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_.record(std::chrono::duration<double>(elapsed).count());
  }

 private:
  Histogram& histogram_;
  std::chrono::steady_clock::time_point start_;
};

/// Destination for structured trace events.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void write(const Json& event) = 0;
};

/// JSONL file sink: one compact JSON object per line, flushed per event so
/// a crashed run still leaves a readable trace prefix. write() locks per
/// event, so concurrent writers interleave whole lines, never fragments.
/// Write failures (ENOSPC, closed pipe, ...) are not silent: a failed event
/// bumps the "telemetry.trace_write_errors" counter and the first failure
/// per writer prints one stderr warning; eventsWritten() counts only events
/// that reached the stream in full.
class TraceWriter final : public TraceSink {
 public:
  /// Opens (truncates) @p path; throws std::runtime_error on failure.
  explicit TraceWriter(const std::string& path);
  /// Adopts an already-open stream (not closed on destruction); used to
  /// trace to stderr or a pipe.
  explicit TraceWriter(std::FILE* stream);
  ~TraceWriter() override;
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void write(const Json& event) override;
  /// Events fully written and flushed to the stream.
  std::uint64_t eventsWritten() const;
  /// Events dropped (partially written or unflushed) because the stream
  /// reported an error.
  std::uint64_t writeErrors() const;

 private:
  mutable std::mutex mu_;
  std::FILE* stream_ = nullptr;
  bool owns_stream_ = false;
  bool warned_ = false;
  std::uint64_t events_written_ = 0;
  std::uint64_t write_errors_ = 0;
};

/// In-memory sink for tests and embedders that post-process events.
/// Single-writer by the trace-emission contract (events come from the
/// serial sections of the synthesis loops, never from parallel workers).
class CollectingTraceSink final : public TraceSink {
 public:
  void write(const Json& event) override { events.push_back(event); }
  std::vector<Json> events;
};

/// Install (or, with nullptr, remove) the process-wide trace sink. The sink
/// is borrowed, not owned; the caller keeps it alive while installed.
void setTraceSink(TraceSink* sink);
TraceSink* traceSink();

/// True when a sink is installed. Emission sites use this to skip event
/// construction entirely on untraced runs.
bool traceEnabled();

/// Route an event to the installed sink; no-op without one.
void emitTrace(const Json& event);

/// RAII sink installation for scoped tracing (tests, bench runs): installs
/// @p sink on construction, restores the previous sink on destruction.
class ScopedTraceSink {
 public:
  explicit ScopedTraceSink(TraceSink* sink) : previous_(traceSink()) {
    setTraceSink(sink);
  }
  ScopedTraceSink(const ScopedTraceSink&) = delete;
  ScopedTraceSink& operator=(const ScopedTraceSink&) = delete;
  ~ScopedTraceSink() { setTraceSink(previous_); }

 private:
  TraceSink* previous_;
};

}  // namespace telemetry
}  // namespace mfbo
