#include "common/eventlog.h"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <mutex>
#include <unistd.h>

#include "common/check.h"
#include "common/memstats.h"
#include "common/parallel.h"
#include "common/spans.h"

namespace mfbo {
namespace eventlog {

namespace {

/// Rings readable by the dump path (including the signal handler, which
/// cannot lock). Registration is append-only: the slot pointer is written
/// before the release store of the count, and rings are intentionally
/// never freed — a handler racing thread exit must not chase a dangling
/// pointer. Threads beyond the cap still run; their events simply never
/// reach the merged window.
constexpr std::size_t kMaxRings = 128;

struct Ring {
  Event* slots = nullptr;
  std::size_t capacity = 0;
  std::atomic<std::uint64_t> head{0};     ///< events ever written
  std::atomic<std::uint64_t> dropped{0};  ///< oldest slots overwritten
  std::uint64_t generation = 0;           ///< enable() cycle that owns it
};

Ring* g_rings[kMaxRings];
std::atomic<std::size_t> g_ring_count{0};
std::mutex g_register_mu;  ///< serializes writers of g_rings; readers don't lock

std::atomic<std::uint64_t> g_seq{0};
std::atomic<std::uint64_t> g_recorded{0};
std::atomic<std::uint64_t> g_skipped{0};
std::atomic<std::uint64_t> g_generation{0};  ///< bumped by every enable()
std::atomic<std::size_t> g_capacity{256};
std::atomic<bool> g_wall{false};
std::chrono::steady_clock::time_point g_start{};

/// Pre-formatted at enable() so the signal handler never formats a path.
char g_dump_path[512] = {0};
bool g_handlers_installed = false;
struct sigaction g_old_segv;
struct sigaction g_old_abrt;

thread_local Ring* t_ring = nullptr;
thread_local char t_session[kSessionIdCap] = {0};

std::int64_t nowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - g_start)
      .count();
}

/// The calling thread's ring, created (and registered) on first use and
/// re-armed after every enable(). Allocation happens only here, under
/// PauseScope: recorder memory is machinery, never workload.
Ring* threadRing() {
  Ring* ring = t_ring;
  if (ring == nullptr) {
    const memstats::PauseScope alloc_pause;
    ring = new Ring;  // leaked by design; see kMaxRings comment
    const std::lock_guard<std::mutex> lock(g_register_mu);
    const std::size_t count = g_ring_count.load(std::memory_order_relaxed);
    if (count < kMaxRings) {
      g_rings[count] = ring;
      g_ring_count.store(count + 1, std::memory_order_release);
    }
    t_ring = ring;
  }
  const std::uint64_t generation =
      g_generation.load(std::memory_order_acquire);
  if (ring->generation != generation) {
    const memstats::PauseScope alloc_pause;
    const std::size_t capacity = g_capacity.load(std::memory_order_relaxed);
    if (ring->capacity != capacity) {
      delete[] ring->slots;
      ring->slots = new Event[capacity];
      ring->capacity = capacity;
    }
    ring->head.store(0, std::memory_order_relaxed);
    ring->dropped.store(0, std::memory_order_relaxed);
    ring->generation = generation;
  }
  return ring;
}

/// Async-signal-safe buffered writer: open/write/close only — no stdio,
/// no locks, no allocation. Everything the dump serializes (static detail
/// strings, fixed session ids, integers) formats through here.
struct FdWriter {
  int fd = -1;
  char buf[4096];
  std::size_t len = 0;
  bool ok = true;

  void flush() {
    std::size_t done = 0;
    while (ok && done < len) {
      const ssize_t wrote = ::write(fd, buf + done, len - done);
      if (wrote < 0) {
        ok = false;
        break;
      }
      done += static_cast<std::size_t>(wrote);
    }
    len = 0;
  }
  void putChar(char c) {
    if (len == sizeof(buf)) flush();
    buf[len++] = c;
  }
  void putStr(const char* s) {
    for (; *s != '\0'; ++s) putChar(*s);
  }
  void putUInt(std::uint64_t v) {
    char digits[20];
    std::size_t n = 0;
    do {
      digits[n++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (n > 0) putChar(digits[--n]);
  }
  void putInt(std::int64_t v) {
    if (v < 0) {
      putChar('-');
      // Negate via unsigned arithmetic: -INT64_MIN overflows.
      putUInt(~static_cast<std::uint64_t>(v) + 1);
    } else {
      putUInt(static_cast<std::uint64_t>(v));
    }
  }
  /// JSON string: quotes, backslash-escapes, \u00XX for control bytes.
  void putQuoted(const char* s) {
    putChar('"');
    for (; *s != '\0'; ++s) {
      const unsigned char c = static_cast<unsigned char>(*s);
      if (c == '"' || c == '\\') {
        putChar('\\');
        putChar(static_cast<char>(c));
      } else if (c < 0x20) {
        putStr("\\u00");
        const char* hex = "0123456789abcdef";
        putChar(hex[c >> 4]);
        putChar(hex[c & 0xf]);
      } else {
        putChar(static_cast<char>(c));
      }
    }
    putChar('"');
  }
};

/// Per-ring snapshot of the mergeable window. Fixed-size state only: the
/// signal handler builds this on its stack.
struct Cursor {
  const Ring* ring = nullptr;
  std::uint64_t next = 0;  ///< absolute index of the oldest unmerged event
  std::uint64_t head = 0;
};

struct MergeState {
  Cursor cursors[kMaxRings];
  std::size_t n_rings = 0;
  std::uint64_t dropped = 0;
  std::uint64_t window = 0;  ///< total events across all windows
};

/// Snapshot every current-generation ring. Exact when recording is
/// quiesced (deterministic mode, post-mortem); best-effort while wall-
/// clock recording is still in flight — an event being written while the
/// window is read may serialize torn, never crash.
void beginMerge(MergeState& m) {
  m.n_rings = 0;
  m.dropped = 0;
  m.window = 0;
  const std::uint64_t generation =
      g_generation.load(std::memory_order_acquire);
  const std::size_t count = g_ring_count.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < count; ++i) {
    const Ring* ring = g_rings[i];
    if (ring == nullptr || ring->generation != generation) continue;
    Cursor& c = m.cursors[m.n_rings++];
    c.ring = ring;
    c.head = ring->head.load(std::memory_order_acquire);
    c.next = c.head > ring->capacity ? c.head - ring->capacity : 0;
    m.dropped += ring->dropped.load(std::memory_order_relaxed);
    m.window += c.head - c.next;
  }
}

/// Pop the lowest-sequence event across all cursors; null when drained.
const Event* mergeNext(MergeState& m) {
  const Event* best = nullptr;
  Cursor* best_cursor = nullptr;
  for (std::size_t i = 0; i < m.n_rings; ++i) {
    Cursor& c = m.cursors[i];
    if (c.next >= c.head) continue;
    const Event* e = &c.ring->slots[c.next % c.ring->capacity];
    if (best == nullptr || e->seq < best->seq) {
      best = e;
      best_cursor = &c;
    }
  }
  if (best_cursor != nullptr) ++best_cursor->next;
  return best;
}

void writeEventLine(FdWriter& w, const Event& e) {
  w.putStr("{\"seq\":");
  w.putUInt(e.seq);
  w.putStr(",\"kind\":");
  w.putQuoted(kindName(e.kind));
  if (e.session[0] != '\0') {
    w.putStr(",\"session\":");
    w.putQuoted(e.session);
  }
  if (e.a != nullptr) {
    w.putStr(",\"a\":");
    w.putQuoted(e.a);
  }
  if (e.b != nullptr) {
    w.putStr(",\"b\":");
    w.putQuoted(e.b);
  }
  w.putStr(",\"v0\":");
  w.putInt(e.v0);
  w.putStr(",\"v1\":");
  w.putInt(e.v1);
  if (e.ts_ns >= 0) {
    w.putStr(",\"ts_ns\":");
    w.putInt(e.ts_ns);
  }
  w.putStr("}\n");
}

/// The shared dump body: header line + merged event lines. Everything on
/// this path is async-signal-safe.
bool dumpToFd(int fd) {
  FdWriter w;
  w.fd = fd;
  MergeState m;
  beginMerge(m);
  w.putStr("{\"format\":\"mfbo-flightrec\",\"version\":1,\"pid\":");
  w.putInt(static_cast<std::int64_t>(::getpid()));
  w.putStr(",\"deterministic\":");
  w.putStr(g_wall.load(std::memory_order_relaxed) ? "false" : "true");
  w.putStr(",\"ring_capacity\":");
  w.putUInt(g_capacity.load(std::memory_order_relaxed));
  w.putStr(",\"recorded\":");
  w.putUInt(g_recorded.load(std::memory_order_relaxed));
  w.putStr(",\"dropped\":");
  w.putUInt(m.dropped);
  w.putStr(",\"skipped_in_region\":");
  w.putUInt(g_skipped.load(std::memory_order_relaxed));
  w.putStr(",\"events\":");
  w.putUInt(m.window);
  w.putStr("}\n");
  while (const Event* e = mergeNext(m)) writeEventLine(w, *e);
  w.flush();
  return w.ok;
}

bool dumpToPath(const char* path) {
  if (path == nullptr || path[0] == '\0') return false;
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const bool ok = dumpToFd(fd);
  return (::close(fd) == 0) && ok;
}

extern "C" void crashHandler(int sig) {
  if (detail::g_enabled.load(std::memory_order_relaxed) &&
      g_dump_path[0] != '\0') {
    dumpToPath(g_dump_path);
  }
  // Restore the previous disposition and re-deliver: the process dies of
  // the original signal (exit status intact) once the handler returns.
  struct sigaction* old = sig == SIGSEGV ? &g_old_segv : &g_old_abrt;
  ::sigaction(sig, old, nullptr);
  ::raise(sig);
}

void installHandlers() {
  if (g_handlers_installed) return;
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = crashHandler;
  sigemptyset(&action.sa_mask);
  ::sigaction(SIGSEGV, &action, &g_old_segv);
  ::sigaction(SIGABRT, &action, &g_old_abrt);
  g_handlers_installed = true;
}

void uninstallHandlers() {
  if (!g_handlers_installed) return;
  ::sigaction(SIGSEGV, &g_old_segv, nullptr);
  ::sigaction(SIGABRT, &g_old_abrt, nullptr);
  g_handlers_installed = false;
}

}  // namespace

const char* kindName(EventKind kind) {
  switch (kind) {
    case EventKind::kSessionCreate:
      return "session_create";
    case EventKind::kSessionStep:
      return "session_step";
    case EventKind::kSessionDone:
      return "session_done";
    case EventKind::kSessionDestroy:
      return "session_destroy";
    case EventKind::kEngineTransition:
      return "engine_transition";
    case EventKind::kFidelityDecision:
      return "fidelity_decision";
    case EventKind::kCheckpointPersist:
      return "checkpoint_persist";
    case EventKind::kCheckpointRestore:
      return "checkpoint_restore";
    case EventKind::kPoolDispatch:
      return "pool_dispatch";
    case EventKind::kContractViolation:
      return "contract_violation";
    case EventKind::kCustom:
      return "custom";
  }
  return "unknown";
}

void enable(const Options& options) {
  MFBO_CHECK(!enabled(), "eventlog::enable() while already enabled");
  MFBO_CHECK(!options.install_signal_handler || !options.dump_dir.empty(),
             "install_signal_handler requires a dump_dir");
  const memstats::PauseScope alloc_pause;
  std::size_t capacity = options.ring_capacity;
  if (capacity < 8) capacity = 8;
  if (capacity > 65536) capacity = 65536;
  g_capacity.store(capacity, std::memory_order_relaxed);
  g_wall.store(options.wall_clock, std::memory_order_relaxed);
  g_seq.store(0, std::memory_order_relaxed);
  g_recorded.store(0, std::memory_order_relaxed);
  g_skipped.store(0, std::memory_order_relaxed);
  g_start = std::chrono::steady_clock::now();
  if (options.dump_dir.empty()) {
    g_dump_path[0] = '\0';
  } else {
    const int n = std::snprintf(g_dump_path, sizeof(g_dump_path),
                                "%s/flightrec.%ld.jsonl",
                                options.dump_dir.c_str(),
                                static_cast<long>(::getpid()));
    MFBO_CHECK(n > 0 && static_cast<std::size_t>(n) < sizeof(g_dump_path),
               "eventlog dump_dir path too long");
  }
  // New generation: every ring re-arms (reset + possible resize) on its
  // owner thread's next record; stale-generation rings drop out of the
  // merge window.
  g_generation.fetch_add(1, std::memory_order_release);
  if (options.install_signal_handler) installHandlers();
  detail::g_enabled.store(true, std::memory_order_release);
}

void disable() {
  detail::g_enabled.store(false, std::memory_order_release);
  uninstallHandlers();
}

namespace detail {

std::atomic<bool> g_enabled{false};

void recordSlow(EventKind kind, const char* a, const char* b,
                std::int64_t v0, std::int64_t v1) {
  if (!g_wall.load(std::memory_order_relaxed) &&
      parallel::inParallelRegion()) {
    // Deterministic mode keeps the journal single-writer: the serial path
    // of common/parallel.cpp marks regions identically at every thread
    // count, so the set of skipped records — and therefore the journal
    // bytes — is thread-count-invariant.
    g_skipped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Ring* ring = threadRing();
  const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
  Event& slot = ring->slots[head % ring->capacity];
  slot.seq = g_seq.fetch_add(1, std::memory_order_relaxed);
  slot.ts_ns = g_wall.load(std::memory_order_relaxed) ? nowNs() : -1;
  slot.v0 = v0;
  slot.v1 = v1;
  slot.a = a;
  slot.b = b;
  slot.kind = kind;
  std::memcpy(slot.session, t_session, kSessionIdCap);
  if (head >= ring->capacity)
    ring->dropped.fetch_add(1, std::memory_order_relaxed);
  ring->head.store(head + 1, std::memory_order_release);
  g_recorded.fetch_add(1, std::memory_order_relaxed);
}

void noteContractViolation(const char* file, long line) {
  if (!enabled()) return;
  // A violation raised by the dump machinery itself must not recurse.
  thread_local bool in_note = false;
  if (in_note) return;
  in_note = true;
  record(EventKind::kContractViolation, file, nullptr,
         static_cast<std::int64_t>(line), 0);
  if (g_dump_path[0] != '\0') dumpFlightRecorder();
  in_note = false;
}

}  // namespace detail

ScopedSession::ScopedSession(std::string_view id) {
  std::memcpy(saved_, t_session, kSessionIdCap);
  const std::size_t n =
      id.size() < kSessionIdCap - 1 ? id.size() : kSessionIdCap - 1;
  std::memcpy(t_session, id.data(), n);
  t_session[n] = '\0';
}

ScopedSession::~ScopedSession() {
  std::memcpy(t_session, saved_, kSessionIdCap);
}

Stats stats() {
  Stats s;
  s.recorded = g_recorded.load(std::memory_order_relaxed);
  s.skipped_in_region = g_skipped.load(std::memory_order_relaxed);
  MergeState m;
  beginMerge(m);
  s.dropped = m.dropped;
  return s;
}

Json journalJson() {
  // Serialization is reporting, not workload: its allocations stay out of
  // the per-span accounting, like every other snapshot path.
  const memstats::PauseScope alloc_pause;
  MergeState m;
  beginMerge(m);
  Json doc = Json::object();
  doc.set("format", "mfbo-flightrec");
  doc.set("version", 1);
  doc.set("deterministic", !g_wall.load(std::memory_order_relaxed));
  doc.set("ring_capacity", g_capacity.load(std::memory_order_relaxed));
  doc.set("recorded", g_recorded.load(std::memory_order_relaxed));
  doc.set("dropped", m.dropped);
  doc.set("skipped_in_region", g_skipped.load(std::memory_order_relaxed));
  Json events = Json::array();
  while (const Event* e = mergeNext(m)) {
    Json row = Json::object();
    row.set("seq", e->seq);
    row.set("kind", kindName(e->kind));
    if (e->session[0] != '\0') row.set("session", e->session);
    if (e->a != nullptr) row.set("a", e->a);
    if (e->b != nullptr) row.set("b", e->b);
    row.set("v0", static_cast<double>(e->v0));
    row.set("v1", static_cast<double>(e->v1));
    if (e->ts_ns >= 0) row.set("ts_ns", static_cast<double>(e->ts_ns));
    events.push(std::move(row));
  }
  doc.set("events", std::move(events));
  return doc;
}

bool dumpFlightRecorder() {
  if (g_dump_path[0] == '\0') return false;
  return dumpFlightRecorder(g_dump_path);
}

bool dumpFlightRecorder(const char* path) {
  // The explicit (non-signal) dump is an ordinary slow path: span-covered
  // like every other hot-path boundary, then the signal-safe writer.
  const spans::ScopedSpan dump_span("flightrec_dump");
  return dumpToPath(path);
}

std::string dumpPath() { return g_dump_path; }

}  // namespace eventlog
}  // namespace mfbo
