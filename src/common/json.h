// mfbo — minimal ordered JSON value, built for the telemetry layer.
//
// The library emits machine-readable artifacts in two places: the JSONL
// event trace (telemetry::TraceWriter) and the bench `--out` aggregate
// files that CI archives as the perf trajectory. Both need deterministic
// serialization (stable key order, stable number formatting) so that two
// runs with the same seed produce byte-identical output — a property the
// telemetry tests assert. Third-party JSON libraries are out of scope for
// this repo (standard library only), hence this deliberately small value
// type: null / bool / number / string / array / object, insertion-ordered
// object keys, a dump() that round-trips through the bundled parse().
//
// Numbers are doubles; integral values print without a decimal point.
// Non-finite doubles serialize as null (JSON has no NaN/Inf).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mfbo {

/// Ordered JSON value. Construct with the static factories (the converting
/// constructors of typical JSON classes are ambiguity traps: a `const char*`
/// happily converts to `bool`), compose with set()/push(), serialize with
/// dump(), and read back with parse().
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Null value (also the default-constructed state).
  Json() = default;

  static Json null() { return Json(); }
  static Json boolean(bool v);
  static Json number(double v);
  static Json str(std::string v);
  static Json array();
  static Json object();

  Type type() const { return type_; }
  bool isNull() const { return type_ == Type::kNull; }
  bool isBool() const { return type_ == Type::kBool; }
  bool isNumber() const { return type_ == Type::kNumber; }
  bool isString() const { return type_ == Type::kString; }
  bool isArray() const { return type_ == Type::kArray; }
  bool isObject() const { return type_ == Type::kObject; }

  /// Value accessors; each MFBO_CHECKs the type.
  bool asBool() const;
  double asNumber() const;
  const std::string& asString() const;

  /// Element count of an array or object (0 for scalars).
  std::size_t size() const;

  /// Append to an array (the value must be an array; first push on a null
  /// value promotes it to an array for convenience).
  Json& push(Json v);
  /// Array element access; MFBO_CHECKs the type and range.
  const Json& at(std::size_t i) const;

  /// Set an object member, preserving insertion order; replaces an existing
  /// key in place. A null value is promoted to an object on first set().
  Json& set(std::string key, Json v);
  Json& set(std::string key, double v) { return set(std::move(key), number(v)); }
  Json& set(std::string key, std::size_t v) {
    return set(std::move(key), number(static_cast<double>(v)));
  }
  Json& set(std::string key, int v) {
    return set(std::move(key), number(static_cast<double>(v)));
  }
  Json& set(std::string key, bool v) { return set(std::move(key), boolean(v)); }
  Json& set(std::string key, const char* v) {
    return set(std::move(key), str(v));
  }
  Json& set(std::string key, std::string v) {
    return set(std::move(key), str(std::move(v)));
  }

  bool contains(const std::string& key) const;
  /// Object member access; MFBO_CHECKs the type and key presence.
  const Json& at(const std::string& key) const;
  /// Ordered members of an object.
  const std::vector<std::pair<std::string, Json>>& members() const;
  /// Elements of an array.
  const std::vector<Json>& items() const;

  /// Compact single-line serialization (no trailing newline).
  std::string dump() const;

  /// Parse a complete JSON document. Throws std::runtime_error with an
  /// offset-annotated message on malformed input or trailing garbage.
  static Json parse(const std::string& text);

  /// Build a JSON array of numbers from any double range.
  template <typename Range>
  static Json numberArray(const Range& values) {
    Json a = array();
    for (double v : values) a.push(number(v));
    return a;
  }

 private:
  void appendTo(std::string& out) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace mfbo
