// mfbo — per-thread allocation accounting and process memory statistics.
//
// The span profiler (common/spans.h) answers "where did the time go"; this
// header answers "what did it allocate". A replaced global operator
// new/delete (defined in memstats.cpp, linked process-wide through
// mfbo_common) bumps thread-local counters on every allocation, and
// ScopedSpan snapshots those counters at each span boundary so every span
// node gains deterministic `alloc_count` / `alloc_bytes` counters —
// aggregated and thread-merged exactly like the existing span counters, so
// the values are byte-identical at 1 and N threads for a fixed seed.
//
// Hook contract (see DESIGN.md for the full rationale):
//   * The hook never allocates, never locks, and touches only trivially-
//     destructible thread-local integers — safe from any context the
//     replaced operators can legally run in, including static
//     initialization, thread start/teardown, and (re-entrantly) from the
//     allocator the observability layer itself uses.
//   * Accounting is suppressible per thread via PauseScope. The
//     observability machinery (span arenas, telemetry registries, the pool,
//     the timeline recorder) wraps its own allocations in a PauseScope so
//     instrumentation overhead never shows up as workload memory — the one
//     property that keeps the counters identical across thread counts.
//   * Under ASan/TSan the hook forwards to malloc/free, which the
//     sanitizers intercept; poisoning, leak checking, and race detection
//     keep working unchanged.
//
// peakRssBytes() reads the kernel-maintained process high-water mark
// (getrusage ru_maxrss). It is machine- and run-dependent by nature, so
// telemetry::metricsSnapshot() surfaces it only alongside the wall-clock
// timers, never in the deterministic --no-timing artifact fields.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mfbo {
namespace memstats {

/// Monotonic per-thread allocation totals since thread start. Counts the
/// requests the program made (sizes as passed to operator new), not
/// allocator-internal overhead, so the values are a property of the code
/// path, not of the malloc implementation.
struct ThreadCounters {
  std::uint64_t alloc_count = 0;
  std::uint64_t alloc_bytes = 0;
  std::uint64_t free_count = 0;
};

/// Snapshot of the calling thread's counters.
ThreadCounters threadCounters();

/// True while the calling thread's accounting is suppressed.
bool paused();

/// RAII accounting suppression for the calling thread (nestable). Used by
/// the observability layer around its own allocations so instrumentation
/// cost is invisible to the workload counters.
class PauseScope {
 public:
  PauseScope();
  PauseScope(const PauseScope&) = delete;
  PauseScope& operator=(const PauseScope&) = delete;
  ~PauseScope();
};

/// Process peak resident set size in bytes (kernel high-water mark via
/// getrusage), 0 where unsupported. Nondeterministic by nature; excluded
/// from the deterministic artifact fields.
std::uint64_t peakRssBytes();

namespace detail {

/// Called by the replaced global operator new/delete. No-ops while the
/// calling thread is paused.
void noteAlloc(std::size_t size);
void noteFree();

}  // namespace detail

}  // namespace memstats
}  // namespace mfbo
