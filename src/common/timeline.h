// mfbo — opt-in timeline event recorder (Chrome/Perfetto trace-event JSON).
//
// The span profiler (common/spans.h) aggregates: it answers "how much time
// did fit_high take in total". The timeline recorder keeps *events*: every
// span open/close becomes a begin/end pair with a real timestamp and a
// thread id, so the run can be inspected as a flame chart in Perfetto or
// chrome://tracing — which worker ran which repeat, how the fidelity
// decisions interleave, where the pool sat idle.
//
// Design constraints, in order:
//   * Strictly outside the deterministic artifact path. Recording writes a
//     separate file and never touches the span tree, metricsSnapshot(), or
//     --out artifacts; the --timeline bench flag does not flip the span
//     profiler on. Timestamps make the output inherently nondeterministic,
//     so it carries none of the byte-identity guarantees (DESIGN.md).
//   * Invisible to the memory counters. All recorder allocations sit under
//     a memstats::PauseScope, so enabling a timeline does not perturb the
//     deterministic alloc_count/alloc_bytes span counters.
//   * Cheap while off. Instrumentation sites share the span profiler's
//     single relaxed atomic flag load (spans.cpp owns the dispatch), so the
//     disabled path stays one branch with no extra loads.
//
// Events are buffered in memory ({literal name, tid, ns-since-start, phase})
// and serialized once, by stop(), as {"traceEvents":[...]} with microsecond
// "ts" values — the JSON object format both viewers accept. Thread ids are
// small sequential integers assigned on first event per thread.
#pragma once

#include <cstddef>
#include <string>

namespace mfbo {
namespace timeline {

/// Start recording and open @p path for writing (truncates). Throws
/// std::runtime_error when the path is not writable, ContractViolation when
/// already recording. The bench harness calls this from parseArgs so a bad
/// --timeline path fails before any work runs (exit 2).
void start(const std::string& path);

/// True while a recording is active.
bool recording();

/// Serialize buffered events to the path given to start() and stop
/// recording. No-op when not recording. Write failures warn on stderr and
/// bump the telemetry counter "timeline.write_errors" rather than throw
/// (stop() runs from atexit in the benches).
void stop();

/// Number of buffered events (tests / introspection).
std::size_t eventCount();

namespace detail {

/// Called by ScopedSpan (spans.cpp) on span open/close while recording.
/// Names must be string literals, same contract as spans.
void recordBegin(const char* name);
void recordEnd(const char* name);

}  // namespace detail

}  // namespace timeline
}  // namespace mfbo
