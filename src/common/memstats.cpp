#include "common/memstats.h"

#include <cstdlib>
#include <new>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace mfbo {
namespace memstats {
namespace {

// Both are constant-initialized PODs, so the hook is safe to run before any
// dynamic initializer and during thread teardown. No destructor, no lock.
thread_local ThreadCounters t_counters;
thread_local unsigned t_pause_depth = 0;

}  // namespace

ThreadCounters threadCounters() { return t_counters; }

bool paused() { return t_pause_depth != 0; }

PauseScope::PauseScope() { ++t_pause_depth; }

PauseScope::~PauseScope() { --t_pause_depth; }

std::uint64_t peakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  // macOS reports ru_maxrss in bytes; Linux and the BSDs in kilobytes.
  return static_cast<std::uint64_t>(usage.ru_maxrss);
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024u;
#endif
#else
  return 0;
#endif
}

namespace detail {

// mfbo-lint: allow(C001) — allocation hook: any size is legal, no checks
void noteAlloc(std::size_t size) {
  if (t_pause_depth != 0) return;
  ++t_counters.alloc_count;
  t_counters.alloc_bytes += static_cast<std::uint64_t>(size);
}

void noteFree() {
  if (t_pause_depth != 0) return;
  ++t_counters.free_count;
}

}  // namespace detail

}  // namespace memstats
}  // namespace mfbo

// ---------------------------------------------------------------------------
// Replaced global allocation functions. Linking mfbo_common makes these the
// process-wide operator new/delete for every mfbo binary. They forward to
// malloc/free (which ASan/TSan intercept as usual) and do nothing beyond the
// thread-local accounting above — no locks, no allocation, no I/O.
//
// The aligned (C++17 std::align_val_t) overloads are deliberately not
// replaced: the toolchain's defaults stay in place, and since nothing in
// this codebase over-aligns heap types the counters lose nothing.
// ---------------------------------------------------------------------------

namespace {

void* countedAlloc(std::size_t size) {
  // malloc(0) may return null; operator new must not.
  void* ptr = std::malloc(size == 0 ? 1 : size);
  if (ptr == nullptr) throw std::bad_alloc();
  mfbo::memstats::detail::noteAlloc(size);
  return ptr;
}

void countedFree(void* ptr) noexcept {
  if (ptr == nullptr) return;
  mfbo::memstats::detail::noteFree();
  std::free(ptr);
}

}  // namespace

void* operator new(std::size_t size) { return countedAlloc(size); }

void* operator new[](std::size_t size) { return countedAlloc(size); }

// mfbo-lint: allow(C001) — nothrow allocator: any size legal, must not throw
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  void* ptr = std::malloc(size == 0 ? 1 : size);
  if (ptr != nullptr) mfbo::memstats::detail::noteAlloc(size);
  return ptr;
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  void* ptr = std::malloc(size == 0 ? 1 : size);
  if (ptr != nullptr) mfbo::memstats::detail::noteAlloc(size);
  return ptr;
}

void operator delete(void* ptr) noexcept { countedFree(ptr); }

void operator delete[](void* ptr) noexcept { countedFree(ptr); }

void operator delete(void* ptr, std::size_t) noexcept { countedFree(ptr); }

void operator delete[](void* ptr, std::size_t) noexcept { countedFree(ptr); }

void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  countedFree(ptr);
}

void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  countedFree(ptr);
}
