#include "common/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>

#include "common/check.h"
#include "common/eventlog.h"
#include "common/memstats.h"
#include "common/spans.h"
#include "common/telemetry.h"

namespace mfbo {
namespace parallel {

namespace {

constexpr std::size_t kNoError = std::numeric_limits<std::size_t>::max();

/// One parallel region. Heap-allocated and shared with the workers so a
/// worker that wakes up late (after the caller has already moved on) only
/// ever touches its own job's state: its index claims come up empty instead
/// of stealing work from a newer region.
struct Job {
  const RangeBody* body = nullptr;
  std::size_t n = 0;
  std::size_t grain = 1;
  std::size_t chunks_total = 0;
  std::size_t worker_cap = 0;  ///< pool workers allowed in (caller excluded)

  /// The caller's active metrics registry at submission time. Workers
  /// install it for the job's duration so telemetry bumped inside bodies
  /// lands in the scoping session's registry (common/telemetry.h).
  telemetry::MetricsRegistry* metrics_registry = nullptr;

  std::atomic<std::size_t> next{0};     ///< next unclaimed index
  std::atomic<std::size_t> entered{0};  ///< workers that joined this job

  std::mutex mu;  ///< guards chunks_done / error / captured_spans below
  std::condition_variable done_cv;
  std::size_t chunks_done = 0;
  std::size_t error_index = kNoError;  ///< begin of lowest-indexed failure
  std::exception_ptr error;
  /// Span trees recorded by pool workers while draining this job; the
  /// calling thread merges them into its open span after the region ends.
  std::vector<spans::SpanNode*> captured_spans;
};

thread_local bool t_in_region = false;

// Health-layer gauges (parallel::poolStats). Relaxed atomics: totals are
// exact, only interleaving is unordered. queue-depth is the unclaimed
// backlog of the one job in flight (regions serialize on region_mu_), so
// a concurrent scrape — or the flight-recorder dump of a wedged process —
// sees how much of the current fan-out is still waiting.
std::atomic<std::uint64_t> g_regions_total{0};
std::atomic<std::uint64_t> g_pooled_regions{0};
std::atomic<std::uint64_t> g_chunks_total{0};
std::atomic<std::uint64_t> g_queue_remaining{0};

/// Claim and execute chunks of @p job until the index space is exhausted.
/// Exceptions are recorded (lowest begin index wins) and never abort the
/// remaining chunks, so side effects stay deterministic. Returns the number
/// of chunks executed by this thread.
std::size_t drainJob(Job& job) {
  std::size_t executed = 0;
  for (;;) {
    const std::size_t lo =
        job.next.fetch_add(job.grain, std::memory_order_relaxed);
    if (lo >= job.n) return executed;
    g_queue_remaining.fetch_sub(1, std::memory_order_relaxed);
    const std::size_t hi = std::min(job.n, lo + job.grain);
    try {
      (*job.body)(lo, hi);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(job.mu);
      if (lo < job.error_index) {
        job.error_index = lo;
        job.error = std::current_exception();
      }
    }
    ++executed;
    g_chunks_total.fetch_add(1, std::memory_order_relaxed);
  }
}

/// Lazily-started worker pool. Workers park on a condition variable and are
/// handed whole jobs (not individual tasks); index distribution inside a
/// job is a single atomic fetch_add per chunk.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  std::size_t workers() {
    const std::lock_guard<std::mutex> lock(mu_);
    return workers_.size();
  }

  /// Execute @p body over [0, n) with up to @p threads participants
  /// (including the calling thread). Blocks until every chunk completed;
  /// rethrows the lowest-indexed body exception.
  void run(std::size_t n, std::size_t grain, const RangeBody& body,
           std::size_t threads) {
    // Serialize whole regions: two independent caller threads share the
    // pool by taking turns rather than interleaving jobs.
    const std::lock_guard<std::mutex> region(region_mu_);

    std::shared_ptr<Job> job;
    {
      // Pool bookkeeping (job allocation, lazy worker start) is machinery:
      // it only exists at thread counts > 1, so it must stay invisible to
      // the per-span allocation counters for 1-vs-N byte identity.
      const memstats::PauseScope alloc_pause;
      job = std::make_shared<Job>();
      job->body = &body;
      job->n = n;
      job->grain = grain;
      job->chunks_total = (n + grain - 1) / grain;
      job->worker_cap = threads - 1;
      job->metrics_registry = telemetry::detail::activeRegistry();
      g_pooled_regions.fetch_add(1, std::memory_order_relaxed);
      g_queue_remaining.store(job->chunks_total, std::memory_order_relaxed);

      const std::lock_guard<std::mutex> lock(mu_);
      ensureWorkersLocked(job->worker_cap);
      job_ = job;
      ++generation_;
    }
    work_cv_.notify_all();

    // The caller is a full participant; its share of the region counts as
    // "in parallel" so nested parallelFor calls run inline.
    t_in_region = true;
    const std::size_t executed = drainJob(*job);
    t_in_region = false;

    std::unique_lock<std::mutex> lock(job->mu);
    job->chunks_done += executed;
    job->done_cv.wait(lock,
                      [&] { return job->chunks_done == job->chunks_total; });
    const std::exception_ptr error = job->error;
    std::vector<spans::SpanNode*> captured;
    captured.swap(job->captured_spans);
    lock.unlock();

    // Attribute worker-side spans to this caller's innermost open span.
    // Merge order does not matter: trees aggregate by name and serialize
    // sorted, so the result is identical at any thread count.
    for (spans::SpanNode* tree : captured)
      spans::detail::mergeCapturedTree(tree);

    {
      // Drop the pool's reference so the job dies with the last straggler.
      const std::lock_guard<std::mutex> pool_lock(mu_);
      if (job_ == job) job_.reset();
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  Pool() = default;

  ~Pool() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  void ensureWorkersLocked(std::size_t wanted) {
    while (workers_.size() < wanted)
      workers_.emplace_back([this] { workerLoop(); });
  }

  void workerLoop() {
    t_in_region = true;  // workers never start nested regions themselves
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      const std::shared_ptr<Job> job = job_;
      lock.unlock();
      if (job != nullptr &&
          job->entered.fetch_add(1, std::memory_order_relaxed) <
              job->worker_cap) {
        // Resolve telemetry against the caller's registry for the job's
        // duration: a session's parallel bodies must bump the session's
        // counters, not whichever registry this shared worker last saw.
        telemetry::MetricsRegistry* const saved_registry =
            telemetry::detail::exchangeActiveRegistry(job->metrics_registry);
        // Record this worker's spans into a private arena handed back to
        // the caller with (and under the same lock as) the completion
        // count, so the caller's done_cv wait covers the span hand-off.
        const spans::detail::WorkerCapture capture =
            spans::detail::beginWorkerCapture();
        const std::size_t executed = drainJob(*job);
        spans::SpanNode* tree = spans::detail::endWorkerCapture(capture);
        telemetry::detail::exchangeActiveRegistry(saved_registry);
        bool complete = false;
        {
          // The hand-off vector is pool machinery, not workload memory.
          const memstats::PauseScope alloc_pause;
          const std::lock_guard<std::mutex> job_lock(job->mu);
          if (tree != nullptr) job->captured_spans.push_back(tree);
          job->chunks_done += executed;
          complete = job->chunks_done == job->chunks_total;
        }
        if (complete) job->done_cv.notify_all();
      }
      lock.lock();
    }
  }

  std::mutex region_mu_;  ///< at most one region in flight

  std::mutex mu_;  ///< guards workers_ / job_ / generation_ / stop_
  std::condition_variable work_cv_;
  std::vector<std::thread> workers_;
  std::shared_ptr<Job> job_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

std::atomic<std::size_t> g_thread_override{0};

/// MFBO_THREADS when it parses as a positive integer (strict: digits only),
/// otherwise 0.
std::size_t envThreads() {
  // Read once before the pool spins up; nothing in the library calls
  // setenv, so the lookup cannot race a concurrent environment write.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* env = std::getenv("MFBO_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  std::size_t value = 0;
  for (const char* c = env; *c != '\0'; ++c) {
    if (*c < '0' || *c > '9') return 0;
    value = value * 10 + static_cast<std::size_t>(*c - '0');
  }
  return value;
}

}  // namespace

std::size_t maxThreads() {
  if (const std::size_t n = g_thread_override.load(std::memory_order_relaxed))
    return n;
  if (const std::size_t n = envThreads()) return n;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void setMaxThreads(std::size_t n) {
  // Between regions the override is a plain atomic store re-read at the
  // next region start; from *inside* a region it would be a request to
  // resize the pool mid-flight, which has no coherent meaning — reject it
  // rather than silently apply it to an unpredictable set of regions.
  MFBO_CHECK(!inParallelRegion(),
             "setMaxThreads may not be called from inside a parallel region");
  g_thread_override.store(n, std::memory_order_relaxed);
}

bool inParallelRegion() { return t_in_region; }

std::size_t poolWorkers() { return Pool::instance().workers(); }

PoolStats poolStats() {
  PoolStats stats;
  stats.workers = Pool::instance().workers();
  stats.regions = g_regions_total.load(std::memory_order_relaxed);
  stats.pooled_regions = g_pooled_regions.load(std::memory_order_relaxed);
  stats.chunks = g_chunks_total.load(std::memory_order_relaxed);
  stats.queue_depth = g_queue_remaining.load(std::memory_order_relaxed);
  return stats;
}

void parallelForChunked(std::size_t n, std::size_t grain,
                        const RangeBody& body) {
  if (n == 0) return;
  MFBO_CHECK(grain >= 1, "grain must be >= 1");
  // Journal the fan-out before the region flag flips: top-level regions
  // record at every thread count (serial path included), nested ones are
  // handled by the recorder's deterministic-mode gate — so the event
  // stream is byte-identical at 1 and N threads.
  eventlog::record(eventlog::EventKind::kPoolDispatch, nullptr, nullptr,
                   static_cast<std::int64_t>(n),
                   static_cast<std::int64_t>(grain));
  g_regions_total.fetch_add(1, std::memory_order_relaxed);
  const std::size_t threads = maxThreads();
  if (threads <= 1 || n <= grain || t_in_region) {
    // Serial reference path: one call covering the whole range, so
    // per-chunk scratch setup is paid exactly once. It is still a region —
    // the setMaxThreads() rejection contract must not depend on the thread
    // count — so mark it for the body's duration (restoring the prior
    // value: nested regions land here with the flag already set).
    const bool was_in_region = t_in_region;
    t_in_region = true;
    try {
      body(0, n);
    } catch (...) {
      t_in_region = was_in_region;
      throw;
    }
    t_in_region = was_in_region;
    g_chunks_total.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Pool::instance().run(n, grain, body, threads);
}

void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn) {
  parallelForChunked(n, 1, [&fn](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) fn(i);
  });
}

}  // namespace parallel
}  // namespace mfbo
