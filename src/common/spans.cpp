#include "common/spans.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

namespace mfbo {
namespace spans {

/// One aggregated node of a thread's span tree. Children are keyed by their
/// (literal) name pointer — compared by pointer first, then by content, so
/// the same phase name used from two translation units still aggregates.
/// Child lists are small (a handful of phases per level), so lookup is a
/// linear scan; insertion order is preserved and sorting happens only at
/// serialization / merge time.
struct SpanNode {
  const char* name;
  SpanNode* parent;
  std::uint64_t count = 0;
  std::int64_t total_ns = 0;
  std::vector<std::pair<const char*, std::uint64_t>> counters;
  std::vector<std::unique_ptr<SpanNode>> children;

  SpanNode(const char* n, SpanNode* p) : name(n), parent(p) {}

  static bool sameName(const char* a, const char* b) {
    return a == b || std::strcmp(a, b) == 0;
  }

  SpanNode* child(const char* n) {
    for (const auto& c : children)
      if (sameName(c->name, n)) return c.get();
    children.push_back(std::make_unique<SpanNode>(n, this));
    return children.back().get();
  }

  void addCounter(const char* n, std::uint64_t v) {
    for (auto& entry : counters) {
      if (sameName(entry.first, n)) {
        entry.second += v;
        return;
      }
    }
    counters.emplace_back(n, v);
  }
};

namespace {

std::atomic<bool> g_enabled{false};

/// Per-thread arena: an implicit root (never timed, never counted) plus
/// the innermost-open-span cursor. Lazily allocated on first enabled use;
/// owned by the thread and freed at thread exit.
struct ThreadState {
  std::unique_ptr<SpanNode> owned_root;
  SpanNode* root = nullptr;
  SpanNode* current = nullptr;

  SpanNode* ensureRoot() {
    if (root == nullptr) {
      owned_root = std::make_unique<SpanNode>("root", nullptr);
      root = owned_root.get();
      current = root;
    }
    return root;
  }
};

ThreadState& threadState() {
  thread_local ThreadState state;
  return state;
}

/// Merge @p src (and its subtree) into @p dst: counts and wall time add,
/// counters add by name, children merge recursively by name.
void mergeInto(SpanNode& dst, const SpanNode& src) {
  dst.count += src.count;
  dst.total_ns += src.total_ns;
  for (const auto& counter : src.counters)
    dst.addCounter(counter.first, counter.second);
  for (const auto& src_child : src.children)
    mergeInto(*dst.child(src_child->name), *src_child);
}

Json nodeToJson(const SpanNode& node, bool include_timing, bool is_root) {
  Json out = Json::object();
  if (!is_root) {
    out.set("count", Json::number(static_cast<double>(node.count)));
    if (include_timing) {
      const double total_s = static_cast<double>(node.total_ns) * 1e-9;
      std::int64_t child_ns = 0;
      for (const auto& c : node.children) child_ns += c->total_ns;
      // Children that ran on pool workers accumulate CPU time, which can
      // exceed this span's wall time; clamp rather than report negatives.
      const double self_s =
          std::max(0.0, static_cast<double>(node.total_ns - child_ns) * 1e-9);
      out.set("total_s", Json::number(total_s));
      out.set("self_s", Json::number(self_s));
    }
  }
  if (!node.counters.empty()) {
    std::vector<const std::pair<const char*, std::uint64_t>*> sorted;
    sorted.reserve(node.counters.size());
    for (const auto& counter : node.counters) sorted.push_back(&counter);
    std::sort(sorted.begin(), sorted.end(), [](const auto* a, const auto* b) {
      return std::strcmp(a->first, b->first) < 0;
    });
    Json counters = Json::object();
    for (const auto* counter : sorted)
      counters.set(counter->first,
                   Json::number(static_cast<double>(counter->second)));
    out.set("counters", std::move(counters));
  }
  if (!node.children.empty()) {
    std::vector<const SpanNode*> sorted;
    sorted.reserve(node.children.size());
    for (const auto& c : node.children) sorted.push_back(c.get());
    std::sort(sorted.begin(), sorted.end(),
              [](const SpanNode* a, const SpanNode* b) {
                return std::strcmp(a->name, b->name) < 0;
              });
    Json children = Json::object();
    for (const SpanNode* c : sorted)
      children.set(c->name, nodeToJson(*c, include_timing, /*is_root=*/false));
    out.set("children", std::move(children));
  }
  return out;
}

}  // namespace

void setEnabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

ScopedSpan::ScopedSpan(const char* name) {
  if (!enabled()) return;
  ThreadState& state = threadState();
  state.ensureRoot();
  node_ = state.current->child(name);
  node_->count += 1;
  state.current = node_;
  start_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan() {
  if (node_ == nullptr) return;
  node_->total_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - start_)
                         .count();
  threadState().current = node_->parent;
}

void addCounter(const char* name, std::uint64_t n) {
  if (!enabled()) return;
  ThreadState& state = threadState();
  state.ensureRoot();
  state.current->addCounter(name, n);
}

Json snapshot(bool include_timing) {
  ThreadState& state = threadState();
  if (state.root == nullptr) return Json::object();
  return nodeToJson(*state.root, include_timing, /*is_root=*/true);
}

void reset() {
  ThreadState& state = threadState();
  state.owned_root.reset();
  state.root = nullptr;
  state.current = nullptr;
}

namespace detail {

WorkerCapture beginWorkerCapture() {
  WorkerCapture capture;
  if (!enabled()) return capture;
  ThreadState& state = threadState();
  capture.saved_root = state.root;
  capture.saved_current = state.current;
  // Fresh arena for this job; released (not freed) by endWorkerCapture.
  capture.capture_root = new SpanNode("root", nullptr);
  state.owned_root.release();
  state.owned_root.reset(capture.capture_root);
  state.root = capture.capture_root;
  state.current = capture.capture_root;
  return capture;
}

SpanNode* endWorkerCapture(const WorkerCapture& capture) {
  if (capture.capture_root == nullptr) return nullptr;
  ThreadState& state = threadState();
  state.owned_root.release();
  state.owned_root.reset(capture.saved_root);
  state.root = capture.saved_root;
  state.current = capture.saved_current;
  // An empty capture (the worker claimed no chunks, or the bodies opened no
  // spans) is dropped here instead of travelling through the merge.
  if (capture.capture_root->children.empty() &&
      capture.capture_root->counters.empty()) {
    delete capture.capture_root;
    return nullptr;
  }
  return capture.capture_root;
}

// mfbo-lint: allow(C001) — nullptr is the documented empty-capture value
void mergeCapturedTree(SpanNode* tree) {
  if (tree == nullptr) return;
  const std::unique_ptr<SpanNode> owned(tree);
  if (!enabled()) return;
  ThreadState& state = threadState();
  state.ensureRoot();
  SpanNode& target = *state.current;
  for (const auto& counter : tree->counters)
    target.addCounter(counter.first, counter.second);
  for (const auto& child : tree->children)
    mergeInto(*target.child(child->name), *child);
}

}  // namespace detail

}  // namespace spans
}  // namespace mfbo
