#include "common/spans.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/memstats.h"
#include "common/timeline.h"

namespace mfbo {
namespace spans {

/// One aggregated node of a thread's span tree. Children are keyed by their
/// (literal) name pointer — compared by pointer first, then by content, so
/// the same phase name used from two translation units still aggregates.
/// Child lists are small (a handful of phases per level), so lookup is a
/// linear scan; insertion order is preserved and sorting happens only at
/// serialization / merge time.
struct SpanNode {
  const char* name;
  SpanNode* parent;
  std::uint64_t count = 0;
  std::int64_t total_ns = 0;
  std::vector<std::pair<const char*, std::uint64_t>> counters;
  std::vector<std::unique_ptr<SpanNode>> children;

  SpanNode(const char* n, SpanNode* p) : name(n), parent(p) {}

  static bool sameName(const char* a, const char* b) {
    return a == b || std::strcmp(a, b) == 0;
  }

  SpanNode* child(const char* n) {
    for (const auto& c : children)
      if (sameName(c->name, n)) return c.get();
    children.push_back(std::make_unique<SpanNode>(n, this));
    return children.back().get();
  }

  void addCounter(const char* n, std::uint64_t v) {
    for (auto& entry : counters) {
      if (sameName(entry.first, n)) {
        entry.second += v;
        return;
      }
    }
    counters.emplace_back(n, v);
  }
};

namespace {

/// One flags word so the disabled fast path in ScopedSpan stays a single
/// relaxed atomic load even with two independent features hanging off it.
constexpr unsigned kProfile = 1u;   ///< aggregating profiler (setEnabled)
constexpr unsigned kTimeline = 2u;  ///< timeline recording (timeline::start)

std::atomic<unsigned> g_flags{0};

unsigned activeFlags() { return g_flags.load(std::memory_order_relaxed); }

/// Per-thread arena: an implicit root (never timed, never counted) plus
/// the innermost-open-span cursor. Lazily allocated on first enabled use;
/// owned by the thread and freed at thread exit. alloc_mark is the
/// memstats counter snapshot taken at the last span boundary; the delta
/// against it is what flushAllocations() attributes to the innermost span.
struct ThreadState {
  std::unique_ptr<SpanNode> owned_root;
  SpanNode* root = nullptr;
  SpanNode* current = nullptr;
  memstats::ThreadCounters alloc_mark;

  SpanNode* ensureRoot() {
    if (root == nullptr) {
      const memstats::PauseScope pause;
      owned_root = std::make_unique<SpanNode>("root", nullptr);
      root = owned_root.get();
      current = root;
      // Allocations made before profiling started belong to nobody.
      alloc_mark = memstats::threadCounters();
    }
    return root;
  }
};

ThreadState& threadState() {
  thread_local ThreadState state;
  return state;
}

/// Attribute the allocations since the last span boundary to the innermost
/// open span (the thread root when none is open) and advance the mark.
/// Called at every span open/close, at snapshot(), and when a worker hands
/// back its capture arena — the same points where `current` changes, so
/// every workload allocation lands on the span that was innermost while it
/// happened. The counter bookkeeping itself runs paused, which is what
/// keeps the attributed values identical at 1 and N threads.
void flushAllocations(ThreadState& state) {
  const memstats::ThreadCounters now = memstats::threadCounters();
  const std::uint64_t delta_count =
      now.alloc_count - state.alloc_mark.alloc_count;
  const std::uint64_t delta_bytes =
      now.alloc_bytes - state.alloc_mark.alloc_bytes;
  state.alloc_mark = now;
  if (delta_count == 0) return;
  const memstats::PauseScope pause;
  state.current->addCounter("alloc_count", delta_count);
  state.current->addCounter("alloc_bytes", delta_bytes);
}

/// Merge @p src (and its subtree) into @p dst: counts and wall time add,
/// counters add by name, children merge recursively by name.
void mergeInto(SpanNode& dst, const SpanNode& src) {
  dst.count += src.count;
  dst.total_ns += src.total_ns;
  for (const auto& counter : src.counters)
    dst.addCounter(counter.first, counter.second);
  for (const auto& src_child : src.children)
    mergeInto(*dst.child(src_child->name), *src_child);
}

Json nodeToJson(const SpanNode& node, bool include_timing, bool is_root) {
  Json out = Json::object();
  if (!is_root) {
    out.set("count", Json::number(static_cast<double>(node.count)));
    if (include_timing) {
      const double total_s = static_cast<double>(node.total_ns) * 1e-9;
      std::int64_t child_ns = 0;
      for (const auto& c : node.children) child_ns += c->total_ns;
      // Children that ran on pool workers accumulate CPU time, which can
      // exceed this span's wall time; clamp rather than report negatives.
      const double self_s =
          std::max(0.0, static_cast<double>(node.total_ns - child_ns) * 1e-9);
      out.set("total_s", Json::number(total_s));
      out.set("self_s", Json::number(self_s));
    }
  }
  if (!node.counters.empty()) {
    std::vector<const std::pair<const char*, std::uint64_t>*> sorted;
    sorted.reserve(node.counters.size());
    for (const auto& counter : node.counters) sorted.push_back(&counter);
    std::sort(sorted.begin(), sorted.end(), [](const auto* a, const auto* b) {
      return std::strcmp(a->first, b->first) < 0;
    });
    Json counters = Json::object();
    for (const auto* counter : sorted)
      counters.set(counter->first,
                   Json::number(static_cast<double>(counter->second)));
    out.set("counters", std::move(counters));
  }
  if (!node.children.empty()) {
    std::vector<const SpanNode*> sorted;
    sorted.reserve(node.children.size());
    for (const auto& c : node.children) sorted.push_back(c.get());
    std::sort(sorted.begin(), sorted.end(),
              [](const SpanNode* a, const SpanNode* b) {
                return std::strcmp(a->name, b->name) < 0;
              });
    Json children = Json::object();
    for (const SpanNode* c : sorted)
      children.set(c->name, nodeToJson(*c, include_timing, /*is_root=*/false));
    out.set("children", std::move(children));
  }
  return out;
}

}  // namespace

void setEnabled(bool on) {
  if (on) {
    g_flags.fetch_or(kProfile, std::memory_order_relaxed);
    // Create the calling thread's arena eagerly. If it were created lazily
    // at the first span open, the mark resync in ensureRoot() would discard
    // whatever the workload allocated between enabling and that first span
    // — an amount that depends on which thread reaches a span first, which
    // would break 1-vs-N-thread byte identity of the root counters.
    threadState().ensureRoot();
  } else {
    g_flags.fetch_and(~kProfile, std::memory_order_relaxed);
  }
}

bool enabled() { return (activeFlags() & kProfile) != 0; }

ScopedSpan::ScopedSpan(const char* name) {
  const unsigned flags = activeFlags();
  if (flags == 0) return;
  if ((flags & kProfile) != 0) {
    ThreadState& state = threadState();
    state.ensureRoot();
    flushAllocations(state);
    {
      // Arena growth is profiler overhead, not workload memory.
      const memstats::PauseScope pause;
      node_ = state.current->child(name);
    }
    node_->count += 1;
    state.current = node_;
  }
  if ((flags & kTimeline) != 0) {
    timeline_name_ = name;
    timeline::detail::recordBegin(name);
  }
  if (node_ != nullptr) start_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan() {
  if (timeline_name_ != nullptr) timeline::detail::recordEnd(timeline_name_);
  if (node_ == nullptr) return;
  node_->total_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - start_)
                         .count();
  ThreadState& state = threadState();
  // This span was innermost since the last boundary: the allocation delta
  // is its self-allocation. Flush before moving the cursor to the parent.
  flushAllocations(state);
  state.current = node_->parent;
}

void addCounter(const char* name, std::uint64_t n) {
  if (!enabled()) return;
  ThreadState& state = threadState();
  state.ensureRoot();
  const memstats::PauseScope pause;
  state.current->addCounter(name, n);
}

Json snapshot(bool include_timing) {
  ThreadState& state = threadState();
  if (state.root == nullptr) return Json::object();
  // Attribute the tail since the last span closed, then serialize with the
  // accounting paused so snapshot cost never shows up as workload memory.
  flushAllocations(state);
  const memstats::PauseScope pause;
  return nodeToJson(*state.root, include_timing, /*is_root=*/true);
}

void reset() {
  ThreadState& state = threadState();
  state.owned_root.reset();
  state.root = nullptr;
  state.current = nullptr;
  state.alloc_mark = memstats::threadCounters();
  // Keep the eager-arena invariant (see setEnabled) across mid-session
  // resets: while profiling is on, this thread must never hit the lazy
  // ensureRoot mark resync in the middle of workload code.
  if (enabled()) state.ensureRoot();
}

SpanArena::SpanArena() = default;

SpanArena::~SpanArena() {
  const memstats::PauseScope pause;
  delete root_;
}

ArenaScope::ArenaScope(SpanArena& arena) {
  if (!enabled()) return;
  ThreadState& state = threadState();
  state.ensureRoot();
  MFBO_CHECK(state.current == state.root,
             "ArenaScope: cannot install a span arena while a span is open");
  // The pending allocation delta happened under the previous tree; flush it
  // there before the swap so the session never inherits foreign bytes.
  flushAllocations(state);
  const memstats::PauseScope pause;
  if (arena.root_ == nullptr) arena.root_ = new SpanNode("root", nullptr);
  arena_ = &arena;
  saved_root_ = state.root;
  saved_current_ = state.current;
  state.owned_root.release();
  state.owned_root.reset(arena.root_);
  state.root = arena.root_;
  state.current = arena.root_;
  state.alloc_mark = memstats::threadCounters();
}

ArenaScope::~ArenaScope() noexcept(false) {
  if (arena_ == nullptr) return;
  ThreadState& state = threadState();
  MFBO_CHECK(state.current == state.root,
             "ArenaScope: a span is still open at arena uninstall");
  // The session's tail (allocations since its last span closed) belongs to
  // the session root, not to the restored thread tree.
  flushAllocations(state);
  const memstats::PauseScope pause;
  // reset() may have replaced the tree while installed; re-adopt whatever
  // root the thread holds now so the arena never dangles.
  arena_->root_ = state.owned_root.release();
  state.owned_root.reset(saved_root_);
  state.root = saved_root_;
  state.current = saved_current_;
  state.alloc_mark = memstats::threadCounters();
}

namespace detail {

WorkerCapture beginWorkerCapture() {
  WorkerCapture capture;
  if (!enabled()) return capture;
  const memstats::PauseScope pause;
  ThreadState& state = threadState();
  capture.saved_root = state.root;
  capture.saved_current = state.current;
  // Fresh arena for this job; released (not freed) by endWorkerCapture.
  capture.capture_root = new SpanNode("root", nullptr);
  state.owned_root.release();
  state.owned_root.reset(capture.capture_root);
  state.root = capture.capture_root;
  state.current = capture.capture_root;
  // Allocation attribution restarts at the job boundary: everything the
  // bodies allocate lands in the capture tree, which the calling thread
  // merges into its innermost span — exactly where the serial path would
  // have attributed it.
  state.alloc_mark = memstats::threadCounters();
  return capture;
}

SpanNode* endWorkerCapture(const WorkerCapture& capture) {
  if (capture.capture_root == nullptr) return nullptr;
  ThreadState& state = threadState();
  // Attribute the job's tail (allocations after the last body span closed)
  // to the capture root before handing the arena back.
  flushAllocations(state);
  const memstats::PauseScope pause;
  state.owned_root.release();
  state.owned_root.reset(capture.saved_root);
  state.root = capture.saved_root;
  state.current = capture.saved_current;
  // Whatever this worker allocates next (pool bookkeeping, the next job's
  // glue) belongs to no captured arena.
  state.alloc_mark = memstats::threadCounters();
  // An empty capture (the worker claimed no chunks, or the bodies opened no
  // spans) is dropped here instead of travelling through the merge.
  if (capture.capture_root->children.empty() &&
      capture.capture_root->counters.empty()) {
    delete capture.capture_root;
    return nullptr;
  }
  return capture.capture_root;
}

// mfbo-lint: allow(C001) — nullptr is the documented empty-capture value
void mergeCapturedTree(SpanNode* tree) {
  if (tree == nullptr) return;
  const std::unique_ptr<SpanNode> owned(tree);
  if (!enabled()) return;
  const memstats::PauseScope pause;
  ThreadState& state = threadState();
  state.ensureRoot();
  SpanNode& target = *state.current;
  for (const auto& counter : tree->counters)
    target.addCounter(counter.first, counter.second);
  for (const auto& child : tree->children)
    mergeInto(*target.child(child->name), *child);
}

void setTimelineRecording(bool on) {
  if (on) {
    g_flags.fetch_or(kTimeline, std::memory_order_relaxed);
  } else {
    g_flags.fetch_and(~kTimeline, std::memory_order_relaxed);
  }
}

}  // namespace detail

}  // namespace spans
}  // namespace mfbo
