// mfbo — deterministic parallel execution layer.
//
// The reproduction's hot loops — MSP multi-start acquisition optimization
// (§4.1), GP hyperparameter training restarts (§2.2), the Monte-Carlo
// integration of the low-fidelity posterior (eq. 10), and per-repeat bench
// runs — are embarrassingly parallel: every task is an independent pure
// computation whose inputs are fixed before the loop starts. This header
// provides the one primitive they all share, a lazily-initialized
// process-wide thread pool with *deterministic* semantics:
//
//   * Slot-indexed results. parallelFor/parallelMap write each task's output
//     into a pre-sized slot keyed by its index; callers reduce (argmin,
//     accumulate) serially in index order afterwards. Because every task's
//     floating-point work is independent and the reduction order is fixed,
//     results are byte-identical at 1 thread and N threads.
//   * No shared RNG. Parallel bodies must not draw from a shared generator;
//     call sites either pre-draw their streams serially (NARGP's common
//     random numbers, the GP restart start list) or derive a per-index
//     stream with linalg::Rng::split(i).
//   * Ordered exception propagation. When bodies throw, every task still
//     runs (side effects stay deterministic) and the exception from the
//     lowest-indexed failing range is rethrown on the calling thread.
//   * Nested calls run serially. A parallelFor issued from inside a worker
//     (or from the caller's share of an active region) executes inline on
//     the current thread, so composed parallel code cannot deadlock or
//     oversubscribe.
//   * Telemetry scope propagation. The caller's active metrics registry
//     (telemetry::TelemetryScope) is captured per region and installed on
//     every worker for the job's duration, so counters bumped inside
//     parallel bodies land in the scoping session's registry — not the
//     global one — even though the pool threads are shared by all sessions.
//
// Thread count resolution, per region: setMaxThreads(n) override (the bench
// --threads flag) > the MFBO_THREADS environment variable > hardware
// concurrency. A count of 1 bypasses the pool entirely — the serial
// reference path that the determinism tests compare against.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

namespace mfbo {
namespace parallel {

/// Body over a half-open index range [begin, end).
using RangeBody = std::function<void(std::size_t, std::size_t)>;

/// Threads a new parallel region may use (>= 1): the setMaxThreads override
/// when set, else a valid positive MFBO_THREADS value, else
/// hardware_concurrency (1 when unknown). Re-resolved per call, so tests
/// can flip the environment variable between regions.
std::size_t maxThreads();

/// Override the thread count for subsequent regions; 0 restores automatic
/// resolution (MFBO_THREADS / hardware). The count is re-resolved at every
/// region start, so calling this *between* regions — even while other
/// sessions are mid-run — is safe and takes effect at the next region.
/// Calling it from inside a parallel region (a pool worker or a parallelFor
/// body) is rejected with ContractViolation: a region resizing the pool
/// that is executing it has no coherent meaning.
void setMaxThreads(std::size_t n);

/// True on a pool worker, or on the caller while it executes its share of
/// an active region. parallelFor uses this to run nested regions serially.
bool inParallelRegion();

/// Number of pool workers currently alive (0 until the first region that
/// actually needs the pool; lifecycle observability for tests).
std::size_t poolWorkers();

/// Point-in-time pool gauges for the service health layer
/// (src/service/health.h). regions/chunks are cumulative totals since
/// process start; queue_depth is the unclaimed-chunk backlog of the job
/// in flight right now (0 between regions — the interesting reads come
/// from a concurrent scrape or a crash dump). regions and chunks are
/// deterministic for a fixed workload; pooled_regions and workers depend
/// on the thread count, which is why they live here and not in an
/// artifact.
struct PoolStats {
  std::size_t workers = 0;          ///< pool threads currently alive
  std::uint64_t regions = 0;        ///< parallel regions entered (any path)
  std::uint64_t pooled_regions = 0; ///< regions dispatched to the pool
  std::uint64_t chunks = 0;         ///< chunks executed across all regions
  std::uint64_t queue_depth = 0;    ///< unclaimed chunks of the live job
};
PoolStats poolStats();

/// Run body(lo, hi) over [0, n) split into chunks of at most @p grain
/// indices, distributed dynamically over maxThreads() threads (the caller
/// participates). Chunk *assignment* to threads is nondeterministic; the
/// work done per index is not, so slot-indexed outputs are deterministic.
/// Serial (1 thread, nested, or n <= grain) runs body(0, n) in one call —
/// per-chunk setup such as scratch buffers is paid once on that path.
void parallelForChunked(std::size_t n, std::size_t grain,
                        const RangeBody& body);

/// Run fn(i) for every i in [0, n), one index per task.
void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

/// Evaluate fn(i) for every i in [0, n) and return the results in index
/// order. The element type must be default-constructible (slots are
/// pre-sized) and move-assignable.
template <typename Fn>
// mfbo-lint: allow(C001) — any n is a valid task count; out(n) is the deal
auto parallelMap(std::size_t n, Fn&& fn)
    -> std::vector<std::decay_t<std::invoke_result_t<Fn&, std::size_t>>> {
  std::vector<std::decay_t<std::invoke_result_t<Fn&, std::size_t>>> out(n);
  parallelFor(n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace parallel
}  // namespace mfbo
