#include "common/telemetry.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/check.h"
#include "common/memstats.h"
#include "common/spans.h"

namespace mfbo {
namespace telemetry {

namespace {

/// Name-keyed metric store. std::map keeps snapshots sorted (deterministic
/// artifact output); unique_ptr keeps references stable across rehashing.
/// Lookups and traversals lock: parallel workers resolve get() through the
/// function-local `Metric&` lookups of instrumentation sites.
template <typename Metric>
class Registry {
 public:
  Metric& get(std::string_view name) {
    // First-use metric creation is telemetry overhead; keep it out of the
    // per-span memory attribution (common/memstats.h) so a counter's first
    // bump costs the same "workload memory" as every later one: none.
    const memstats::PauseScope alloc_pause;
    const std::lock_guard<std::mutex> lock(mu_);
    auto it = metrics_.find(name);
    if (it == metrics_.end()) {
      it = metrics_
               .emplace(std::string(name), std::make_unique<Metric>())
               .first;
    }
    return *it->second;
  }

  void resetAll() {
    const std::lock_guard<std::mutex> lock(mu_);
    for (auto& entry : metrics_) entry.second->reset();
  }

  template <typename Fn>
  void forEach(Fn&& fn) const {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto& entry : metrics_) fn(entry.first, *entry.second);
  }

 private:
  mutable std::mutex mu_;
  // Transparent comparator: lookups by string_view without allocating.
  std::map<std::string, std::unique_ptr<Metric>, std::less<>> metrics_;
};

std::atomic<TraceSink*>& sinkSlot() {
  static std::atomic<TraceSink*> sink{nullptr};
  return sink;
}

/// The calling thread's scoped registry, nullptr meaning globalMetrics().
/// Stored raw (not resolved) so nested scopes restore exactly.
thread_local MetricsRegistry* t_active_registry = nullptr;

}  // namespace

struct MetricsRegistry::Impl {
  Registry<Counter> counters;
  Registry<Gauge> gauges;
  Registry<Timer> timers;
  Registry<Histogram> histograms;
};

std::size_t Histogram::bucketIndex(double seconds) {
  // NaN and sub-minimum samples land in the underflow bucket: the
  // comparison below is false for NaN, so only the explicit <= edge test
  // routes — keep it first.
  if (!(seconds > 1e-7)) return 0;
  const double min_edge = static_cast<double>(kMinExponent);
  const double position =
      (std::log10(seconds) - min_edge) * kBucketsPerDecade;
  if (position >= static_cast<double>(kBuckets - 2)) return kBuckets - 1;
  const std::size_t idx = 1 + static_cast<std::size_t>(position);
  return idx < kBuckets - 1 ? idx : kBuckets - 1;
}

double Histogram::bucketUpperEdge(std::size_t index) {
  MFBO_DCHECK(index < kBuckets, "bucket index out of range");
  if (index == 0) return 1e-7;
  // The overflow bucket reports the last finite edge (1e3 s): a bounded
  // answer an SLO dashboard can plot, explicitly "at least this".
  if (index >= kBuckets - 1) index = kBuckets - 2;
  return std::pow(
      10.0, static_cast<double>(kMinExponent) +
                static_cast<double>(index) /
                    static_cast<double>(kBucketsPerDecade));
}

void Histogram::record(double seconds) {
  counts_[bucketIndex(seconds)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  const double ns = seconds * 1e9;
  const std::int64_t clamped =
      ns > 0.0 ? static_cast<std::int64_t>(ns) : 0;
  total_ns_.fetch_add(clamped, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::totalSeconds() const {
  return static_cast<double>(total_ns_.load(std::memory_order_relaxed)) *
         1e-9;
}

double Histogram::quantileSeconds(double q) const {
  MFBO_CHECK(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  const std::uint64_t total = count_.load(std::memory_order_relaxed);
  if (total == 0) return 0.0;
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  if (rank < 1) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += counts_[i].load(std::memory_order_relaxed);
    if (seen >= rank) return bucketUpperEdge(i);
  }
  return bucketUpperEdge(kBuckets - 1);
}

void Histogram::reset() {
  for (std::size_t i = 0; i < kBuckets; ++i)
    counts_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  total_ns_.store(0, std::memory_order_relaxed);
}

MetricsRegistry::MetricsRegistry() {
  // The registry skeleton itself is observability overhead, not workload
  // memory (sessions construct theirs inside instrumented scopes).
  const memstats::PauseScope alloc_pause;
  impl_ = std::make_unique<Impl>();
}

MetricsRegistry::~MetricsRegistry() = default;

Counter& MetricsRegistry::counter(std::string_view name) {
  return impl_->counters.get(name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return impl_->gauges.get(name);
}

Timer& MetricsRegistry::timer(std::string_view name) {
  return impl_->timers.get(name);
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  return impl_->histograms.get(name);
}

void MetricsRegistry::reset() {
  impl_->counters.resetAll();
  impl_->gauges.resetAll();
  impl_->timers.resetAll();
  impl_->histograms.resetAll();
}

Json MetricsRegistry::metricsJson(bool include_timers) const {
  // Snapshot construction allocates heavily; none of it is workload memory.
  const memstats::PauseScope alloc_pause;
  Json snapshot = Json::object();
  Json counter_obj = Json::object();
  impl_->counters.forEach([&](const std::string& name, const Counter& c) {
    counter_obj.set(name, Json::number(static_cast<double>(c.value())));
  });
  Json gauge_obj = Json::object();
  impl_->gauges.forEach([&](const std::string& name, const Gauge& g) {
    gauge_obj.set(name, Json::number(g.value()));
  });
  snapshot.set("counters", std::move(counter_obj));
  snapshot.set("gauges", std::move(gauge_obj));
  if (include_timers) {
    Json timer_obj = Json::object();
    impl_->timers.forEach([&](const std::string& name, const Timer& t) {
      Json entry = Json::object();
      entry.set("count", Json::number(static_cast<double>(t.count())));
      entry.set("total_s", Json::number(t.totalSeconds()));
      entry.set("min_s", Json::number(t.minSeconds()));
      entry.set("p50_s", Json::number(t.quantileSeconds(0.50)));
      entry.set("p95_s", Json::number(t.quantileSeconds(0.95)));
      entry.set("max_s", Json::number(t.maxSeconds()));
      timer_obj.set(name, std::move(entry));
    });
    snapshot.set("timers", std::move(timer_obj));
    Json histogram_obj = Json::object();
    impl_->histograms.forEach(
        [&](const std::string& name, const Histogram& h) {
          Json entry = Json::object();
          entry.set("count", Json::number(static_cast<double>(h.count())));
          entry.set("total_s", Json::number(h.totalSeconds()));
          entry.set("p50_s", Json::number(h.quantileSeconds(0.50)));
          entry.set("p90_s", Json::number(h.quantileSeconds(0.90)));
          entry.set("p99_s", Json::number(h.quantileSeconds(0.99)));
          histogram_obj.set(name, std::move(entry));
        });
    snapshot.set("histograms", std::move(histogram_obj));
  }
  return snapshot;
}

MetricsRegistry& globalMetrics() {
  static MetricsRegistry registry;
  return registry;
}

TelemetryScope::TelemetryScope(MetricsRegistry& registry)
    : previous_(detail::exchangeActiveRegistry(&registry)) {}

TelemetryScope::~TelemetryScope() {
  detail::exchangeActiveRegistry(previous_);
}

namespace detail {

MetricsRegistry* activeRegistry() {
  return t_active_registry != nullptr ? t_active_registry : &globalMetrics();
}

// mfbo-lint: allow(C001) — nullptr is the documented "back to global" value
MetricsRegistry* exchangeActiveRegistry(MetricsRegistry* registry) {
  MetricsRegistry* previous = t_active_registry;
  t_active_registry = registry;
  return previous;
}

}  // namespace detail

void Timer::record(double seconds) {
  // Reservoir growth is observability overhead; which thread happens to
  // trigger it is scheduling-dependent, so it must stay invisible to the
  // deterministic per-span allocation counters.
  const memstats::PauseScope alloc_pause;
  const std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0 || seconds < min_) min_ = seconds;
  if (seconds > max_) max_ = seconds;
  total_ += seconds;
  // Vitter's Algorithm R: keep the first kReservoirCap samples, then
  // replace a uniformly chosen slot with probability cap/(count+1). The
  // private LCG (Knuth MMIX constants) keeps replacement deterministic for
  // a fixed record() order without touching any global RNG state.
  if (samples_.size() < kReservoirCap) {
    samples_.push_back(seconds);
  } else {
    lcg_ = lcg_ * 6364136223846793005ull + 1442695040888963407ull;
    const std::uint64_t slot = (lcg_ >> 16) % (count_ + 1);
    if (slot < kReservoirCap) samples_[slot] = seconds;
  }
  ++count_;
}

std::uint64_t Timer::count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Timer::totalSeconds() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

double Timer::minSeconds() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return count_ > 0 ? min_ : 0.0;
}

double Timer::maxSeconds() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

double Timer::meanSeconds() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return count_ > 0 ? total_ / static_cast<double>(count_) : 0.0;
}

double Timer::quantileSeconds(double q) const {
  MFBO_CHECK(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  const std::lock_guard<std::mutex> lock(mu_);
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted(samples_);
  std::sort(sorted.begin(), sorted.end());
  const double rank = std::ceil(q * static_cast<double>(sorted.size()));
  const std::size_t idx =
      rank < 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
  return sorted[std::min(idx, sorted.size() - 1)];
}

void Timer::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  count_ = 0;
  total_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
  lcg_ = 0x9e3779b97f4a7c15ull;
  samples_.clear();
}

Counter& counter(std::string_view name) {
  return detail::activeRegistry()->counter(name);
}
Gauge& gauge(std::string_view name) {
  return detail::activeRegistry()->gauge(name);
}
Timer& timer(std::string_view name) {
  return detail::activeRegistry()->timer(name);
}
Histogram& histogram(std::string_view name) {
  return detail::activeRegistry()->histogram(name);
}

Json metricsSnapshot(bool include_timers) {
  // Snapshot construction allocates heavily; none of it is workload memory.
  const memstats::PauseScope alloc_pause;
  Json snapshot = detail::activeRegistry()->metricsJson(include_timers);
  if (include_timers) {
    // The kernel's high-water mark, like the timers, is real-machine state:
    // meaningful for a human, nondeterministic by nature, and therefore
    // only present when the wall-clock sections are.
    snapshot.set("peak_rss_bytes",
                 Json::number(static_cast<double>(memstats::peakRssBytes())));
  }
  if (spans::enabled())
    snapshot.set("spans", spans::snapshot(/*include_timing=*/include_timers));
  return snapshot;
}

void resetMetrics() { detail::activeRegistry()->reset(); }

TraceWriter::TraceWriter(const std::string& path)
    : stream_(std::fopen(path.c_str(), "w")), owns_stream_(true) {
  if (stream_ == nullptr)
    throw std::runtime_error("TraceWriter: cannot open '" + path +
                             "' for writing");
}

TraceWriter::TraceWriter(std::FILE* stream) : stream_(stream) {
  MFBO_CHECK(stream_ != nullptr, "null trace stream");
}

TraceWriter::~TraceWriter() {
  if (owns_stream_ && stream_ != nullptr) std::fclose(stream_);
}

void TraceWriter::write(const Json& event) {
  const std::string line = event.dump();
  const std::lock_guard<std::mutex> lock(mu_);
  // Detect short writes and flush failures (ENOSPC, closed pipe, ...): a
  // dropped event must not count as written, and the operator gets exactly
  // one stderr warning per writer instead of a silent hole in the trace.
  const bool ok =
      std::fwrite(line.data(), 1, line.size(), stream_) == line.size() &&
      std::fputc('\n', stream_) != EOF && std::fflush(stream_) == 0;
  if (ok) {
    ++events_written_;
    return;
  }
  ++write_errors_;
  // Trace plumbing is process infrastructure, not session workload: the
  // error count belongs to the global registry no matter which session's
  // scope happens to be active on the failing thread.
  globalMetrics().counter("telemetry.trace_write_errors").add();
  if (!warned_) {
    warned_ = true;
    std::fprintf(stderr,
                 "mfbo: warning: trace write failed; further events on this "
                 "sink may be lost (see telemetry.trace_write_errors)\n");
  }
  std::clearerr(stream_);
}

std::uint64_t TraceWriter::eventsWritten() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_written_;
}

std::uint64_t TraceWriter::writeErrors() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return write_errors_;
}

void setTraceSink(TraceSink* sink) {
  sinkSlot().store(sink, std::memory_order_release);
}

TraceSink* traceSink() {
  return sinkSlot().load(std::memory_order_acquire);
}

bool traceEnabled() {
  return sinkSlot().load(std::memory_order_acquire) != nullptr;
}

void emitTrace(const Json& event) {
  if (TraceSink* sink = sinkSlot().load(std::memory_order_acquire))
    sink->write(event);
}

}  // namespace telemetry
}  // namespace mfbo
