// mfbo — hierarchical span profiler with phase attribution.
//
// The paper's headline claim is wall-clock efficiency. Flat counters and
// timers (common/telemetry.h) cannot answer *where* an iteration's time
// goes — GP refit, MC integration, the MSP search, or the simulator —
// because they have no notion of nesting. This header adds the structure:
//
//   * ScopedSpan — RAII frame on a thread-local span stack. Spans with the
//     same name under the same parent aggregate into one node (call count,
//     total wall time); distinct call paths stay distinct, so the snapshot
//     is a tree of phases, not a flat list. Self time is derived at
//     serialization: total minus the children's totals.
//   * Per-span counters — addCounter() attributes an event (a simulator
//     invocation, a Cholesky jitter retry) to the innermost open span, so
//     "how many sims did acq_high trigger" falls out of the tree.
//   * Off-by-default behind a single branch — when disabled (the default),
//     ScopedSpan's constructor is one relaxed atomic load, no allocation.
//   * Memory attribution — every span boundary snapshots the thread-local
//     allocation counters of common/memstats.h and attributes the delta
//     to the innermost span as `alloc_count`/`alloc_bytes`. The profiler's
//     own allocations run under memstats::PauseScope, so the values are
//     workload-only, deterministic, and merge like user counters.
//   * Timeline dispatch — while a recording (common/timeline.h) is active
//     each span open/close emits a begin/end trace event; both features
//     share one flags word, so the disabled path stays one relaxed load.
//   * Deterministic under the parallel pool — pool workers record into
//     per-thread arenas that common/parallel.h merges into the *calling
//     thread's* innermost span at region end (the detail:: hooks below);
//     with timing omitted, snapshots are byte-identical at 1 and N
//     threads (children and counters serialize sorted by name).
//   * Session arenas — a SpanArena is a span tree owned by a *session*;
//     an ArenaScope makes it the calling thread's recording target
//     (flushing the allocation mark at both swap boundaries). The service
//     layer installs one per session step, keeping N interleaved sessions'
//     trees — worker captures included — byte-identical to solo runs.
//
// Contract: enable/disable only while no span is open and no ArenaScope is
// installed (before the run, from the harness). Span names must outlive
// the process — nodes store the pointer.
#pragma once

#include <chrono>
#include <cstdint>

#include "common/json.h"

namespace mfbo {
namespace spans {

struct SpanNode;  // opaque; defined in spans.cpp

/// Turn the profiler on or off (off by default). Toggle only while no span
/// is open. Enabling eagerly creates the calling thread's arena and starts
/// its allocation attribution mark, so everything this thread allocates from
/// here on is attributed (to the root when no span is open) — deterministic
/// regardless of which thread later opens the first span.
void setEnabled(bool on);

/// True when the aggregating profiler is on. Instrumentation sites pay one
/// relaxed atomic load (shared with the timeline flag) when everything is
/// off.
bool enabled();

/// RAII span frame: opens a child of the calling thread's innermost span on
/// construction, closes it (accumulating wall time and the allocation delta
/// since the previous span boundary) on destruction. While a timeline
/// recording is active (common/timeline.h) it also emits begin/end trace
/// events. When both features are disabled at construction time the object
/// is inert.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan();

 private:
  SpanNode* node_ = nullptr;
  const char* timeline_name_ = nullptr;
  std::chrono::steady_clock::time_point start_{};
};

/// Add @p n to the named counter of the calling thread's innermost open
/// span (the thread root when none is open). No-op when disabled.
void addCounter(const char* name, std::uint64_t n = 1);

/// Serialize the calling thread's span tree:
/// {"counters":{...},"children":{name:{"count":..,"total_s":..,"self_s":..,
/// "counters":{...},"children":{...}}}} with children and counters sorted
/// by name and empty sections omitted. Every node that allocated carries
/// the memory-attribution counters `alloc_count`/`alloc_bytes` (self, not
/// subtree: deltas are attributed to the innermost span). With
/// include_timing=false the total_s/self_s fields are dropped, leaving only
/// the deterministic count/counter fields — including the alloc counters —
/// that the bench --no-timing artifacts compare byte-exactly. self_s is
/// clamped at zero: children that ran on pool workers accumulate CPU time
/// that can exceed the parent's wall time.
Json snapshot(bool include_timing = true);

/// Discard the calling thread's span tree (keeps the enabled flag). Call
/// only while no span is open on this thread.
void reset();

/// A span tree owned by a session rather than a thread. The tree persists
/// across ArenaScope installs, so a session stepped many times — possibly
/// interleaved with other sessions on the same thread — accumulates one
/// continuous tree, exactly as if it had run solo. Inert (and empty) while
/// the profiler is disabled.
class SpanArena {
 public:
  SpanArena();
  ~SpanArena();
  SpanArena(const SpanArena&) = delete;
  SpanArena& operator=(const SpanArena&) = delete;

 private:
  friend class ArenaScope;
  SpanNode* root_ = nullptr;  ///< owned; lazily created at first install
};

/// RAII arena swap: while alive, the calling thread records spans, span
/// counters, and allocation attribution into @p arena instead of its own
/// tree (snapshot()/reset() operate on the installed arena too). The
/// allocation mark is flushed at both boundaries — the pending delta before
/// installation is attributed to the previous tree, the session tail at
/// uninstall to the arena root — so two sessions interleaving on one thread
/// (or on shared pool workers, whose captures merge into the installed
/// arena at region end) never cross-charge a byte. Requires no open span at
/// either boundary (MFBO_CHECK) and does not nest-own: the arena must
/// outlive the scope. No-op while the profiler is disabled.
class ArenaScope {
 public:
  explicit ArenaScope(SpanArena& arena);
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;
  ~ArenaScope() noexcept(false);

 private:
  SpanArena* arena_ = nullptr;  ///< null when installed while disabled
  SpanNode* saved_root_ = nullptr;
  SpanNode* saved_current_ = nullptr;
};

namespace detail {

/// Hooks for common/parallel.h: a pool worker swaps in a fresh capture
/// arena before draining a job and hands the recorded tree back afterwards;
/// the job's calling thread merges every captured tree into its innermost
/// open span once the region completes. All three are no-ops (and return
/// null) while the profiler is disabled.
struct WorkerCapture {
  SpanNode* saved_root = nullptr;
  SpanNode* saved_current = nullptr;
  SpanNode* capture_root = nullptr;
};

WorkerCapture beginWorkerCapture();
/// Restores the worker's previous arena; returns the captured tree (null
/// when nothing was recorded). Ownership passes to the caller.
SpanNode* endWorkerCapture(const WorkerCapture& capture);
/// Merge a captured tree into the calling thread's innermost span, then
/// free it. Accepts null.
void mergeCapturedTree(SpanNode* tree);

/// Flip the timeline-dispatch bit in the shared flags word. Called only by
/// timeline::start()/stop() (common/timeline.cpp), never directly.
void setTimelineRecording(bool on);

}  // namespace detail

}  // namespace spans
}  // namespace mfbo
