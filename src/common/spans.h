// mfbo — hierarchical span profiler with phase attribution.
//
// The paper's headline claim is wall-clock efficiency: cheap low-fidelity
// simulations plus the eq. (11)/(12) fidelity criterion shift cost away
// from expensive evaluations. Flat counters and timers (common/telemetry.h)
// cannot answer *where* an iteration's time actually goes — GP refit, the
// NARGP eq. (10) Monte-Carlo integration, the MSP acquisition search, or
// the simulator — because they have no notion of nesting. This header adds
// the missing structure:
//
//   * ScopedSpan — RAII frame on a thread-local span stack. Spans with the
//     same name under the same parent aggregate into one node (call count,
//     total wall time); distinct call paths stay distinct, so the snapshot
//     is a tree of phases, not a flat list. Self time is derived at
//     serialization: total minus the children's totals.
//   * Per-span counters — addCounter() attributes an event (a simulator
//     invocation, a Cholesky jitter retry) to the innermost open span, so
//     "how many sims did acq_high trigger" falls out of the tree.
//   * Off-by-default behind a single branch — when disabled (the default),
//     ScopedSpan's constructor is one relaxed atomic load and no
//     allocation, so instrumented hot paths cost nothing in production.
//   * Deterministic under the parallel pool — bodies running on pool
//     workers record into per-thread arenas that common/parallel.h merges
//     into the *calling thread's* innermost span at region end (the
//     detail:: hooks below). Counts and counters aggregate identically at
//     any thread count; with timing omitted, snapshots are byte-identical
//     at 1 and N threads (children and counters serialize sorted by name).
//
// Contract: enable/disable only while no span is open on any thread (in
// practice: before the run, from the bench/test harness). Span names must
// be string literals (or otherwise outlive the process) — nodes store the
// pointer, not a copy.
#pragma once

#include <chrono>
#include <cstdint>

#include "common/json.h"

namespace mfbo {
namespace spans {

struct SpanNode;  // opaque; defined in spans.cpp

/// Turn the profiler on or off (off by default). Toggle only while no span
/// is open.
void setEnabled(bool on);

/// Single relaxed atomic load; instrumentation sites pay one branch when
/// the profiler is off.
bool enabled();

/// RAII span frame: opens a child of the calling thread's innermost span on
/// construction, closes it (accumulating wall time) on destruction. When
/// the profiler is disabled at construction time the object is inert.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan();

 private:
  SpanNode* node_ = nullptr;
  std::chrono::steady_clock::time_point start_{};
};

/// Add @p n to the named counter of the calling thread's innermost open
/// span (the thread root when none is open). No-op when disabled.
void addCounter(const char* name, std::uint64_t n = 1);

/// Serialize the calling thread's span tree:
/// {"counters":{...},"children":{name:{"count":..,"total_s":..,"self_s":..,
/// "counters":{...},"children":{...}}}} with children and counters sorted
/// by name and empty sections omitted. With include_timing=false the
/// total_s/self_s fields are dropped, leaving only the deterministic
/// count/counter fields (the bench --no-timing artifacts rely on this).
/// self_s is clamped at zero: children that ran on pool workers accumulate
/// CPU time that can exceed the parent's wall time.
Json snapshot(bool include_timing = true);

/// Discard the calling thread's span tree (keeps the enabled flag). Call
/// only while no span is open on this thread.
void reset();

namespace detail {

/// Hooks for common/parallel.h: a pool worker swaps in a fresh capture
/// arena before draining a job and hands the recorded tree back afterwards;
/// the job's calling thread merges every captured tree into its innermost
/// open span once the region completes. All three are no-ops (and return
/// null) while the profiler is disabled.
struct WorkerCapture {
  SpanNode* saved_root = nullptr;
  SpanNode* saved_current = nullptr;
  SpanNode* capture_root = nullptr;
};

WorkerCapture beginWorkerCapture();
/// Restores the worker's previous arena; returns the captured tree (null
/// when nothing was recorded). Ownership passes to the caller.
SpanNode* endWorkerCapture(const WorkerCapture& capture);
/// Merge a captured tree into the calling thread's innermost span, then
/// free it. Accepts null.
void mergeCapturedTree(SpanNode* tree);

}  // namespace detail

}  // namespace spans
}  // namespace mfbo
