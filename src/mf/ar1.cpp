#include "mf/ar1.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/spans.h"

namespace mfbo::mf {

Ar1Model::Ar1Model(std::size_t x_dim, Ar1Config config)
    : x_dim_(x_dim),
      config_(config),
      low_gp_(std::make_unique<gp::SeArdKernel>(x_dim), config.low),
      delta_gp_(std::make_unique<gp::SeArdKernel>(x_dim), config.delta) {
  MFBO_CHECK(x_dim >= 1, "x_dim must be >= 1");
}

void Ar1Model::fit(std::vector<Vector> x_low, std::vector<double> y_low,
                   std::vector<Vector> x_high, std::vector<double> y_high) {
  MFBO_CHECK(!x_low.empty() && !x_high.empty(),
             "both fidelity sets required, got ", x_low.size(), " low / ",
             x_high.size(), " high");
  MFBO_CHECK(x_high.size() == y_high.size(), "high-fidelity size mismatch: ",
             x_high.size(), " inputs vs ", y_high.size(), " targets");
  {
    const spans::ScopedSpan span("fit_low");
    low_gp_.fit(std::move(x_low), std::move(y_low));
  }
  x_high_ = std::move(x_high);
  y_high_ = std::move(y_high);
  rebuildDelta(/*retrain=*/true);
}

void Ar1Model::addLow(const Vector& x, double y, bool retrain) {
  {
    const spans::ScopedSpan span("fit_low");
    low_gp_.addPoint(x, y, retrain);
  }
  if (retrain) {
    rebuildDelta(/*retrain=*/true);
    return;
  }
  // Non-retrain fast path, mirroring NARGP: ρ and the discrepancy
  // residuals stay frozen at the last retrain (the high set did not
  // grow), so the whole update is the low GP's O(n²) factor extension.
  // The µ_l drift is folded into ρ/δ at the next retrain.
}

void Ar1Model::addHigh(const Vector& x, double y, bool retrain) {
  MFBO_CHECK(x.size() == x_dim_, "input dim ", x.size(),
             " does not match x_dim ", x_dim_);
  x_high_.push_back(x);
  y_high_.push_back(y);
  if (retrain || !delta_gp_.fitted()) {
    rebuildDelta(/*retrain=*/true);
    return;
  }
  // Keep ρ frozen and append just the new residual to the discrepancy GP
  // incrementally (O(n²)) instead of re-estimating ρ and rebuilding every
  // residual at O(n³).
  const spans::ScopedSpan span("fit_high");
  delta_gp_.addPoint(x, y - rho_ * low_gp_.predict(x).mean,
                     /*retrain=*/false);
}

void Ar1Model::rebuildDelta(bool retrain) {
  const spans::ScopedSpan span("fit_high");
  // ρ by least squares: minimize Σ (y_h − ρ·µ_l)² ⇒ ρ = Σ µ y / Σ µ².
  double num = 0.0, den = 0.0;
  std::vector<double> mu_low(x_high_.size());
  for (std::size_t i = 0; i < x_high_.size(); ++i) {
    mu_low[i] = low_gp_.predict(x_high_[i]).mean;
    num += mu_low[i] * y_high_[i];
    den += mu_low[i] * mu_low[i];
  }
  rho_ = den > 1e-12 ? num / den : 1.0;

  std::vector<double> residuals(x_high_.size());
  for (std::size_t i = 0; i < x_high_.size(); ++i)
    residuals[i] = y_high_[i] - rho_ * mu_low[i];
  if (retrain || !delta_gp_.fitted()) {
    delta_gp_.fit(x_high_, residuals);
  } else {
    delta_gp_.setData(x_high_, residuals);
  }
}

Prediction Ar1Model::predictLow(const Vector& x) const {
  return low_gp_.predict(x);
}

Prediction Ar1Model::predictHigh(const Vector& x) const {
  const Prediction low = low_gp_.predict(x);
  const Prediction delta = delta_gp_.predict(x);
  // Independence of f_l and δ: variances add with ρ² scaling (eq. 7).
  return {rho_ * low.mean + delta.mean, rho_ * rho_ * low.var + delta.var};
}

double Ar1Model::bestHighObserved() const {
  MFBO_CHECK(!y_high_.empty(), "no high-fidelity data");
  return *std::min_element(y_high_.begin(), y_high_.end());
}

std::vector<double> Ar1Model::hyperparameters() const {
  std::vector<double> out = low_gp_.hyperparameters();
  const std::vector<double> delta = delta_gp_.hyperparameters();
  out.insert(out.end(), delta.begin(), delta.end());
  out.push_back(rho_);
  return out;
}

}  // namespace mfbo::mf
