// mfbo::mf — common interface for two-fidelity surrogate models.
//
// The BO engine talks to surrogates through this interface so the nonlinear
// NARGP fusion (the paper's model), the linear AR(1) cokriging baseline
// (eq. 7), and plain single-fidelity GPs are interchangeable in ablations.
#pragma once

#include <memory>
#include <vector>

#include "gp/gp_regressor.h"
#include "linalg/vector.h"

namespace mfbo::mf {

using gp::Prediction;
using linalg::Vector;

/// Two-fidelity regression surrogate.
///
/// Invariant: after fit() (or any add*() call) both predictLow and
/// predictHigh are usable. High-fidelity prediction always fuses whatever
/// low-fidelity information the model maintains.
class MfSurrogate {
 public:
  virtual ~MfSurrogate() = default;

  /// Train from scratch on a low-fidelity set and a high-fidelity set.
  /// Neither set may be empty.
  virtual void fit(std::vector<Vector> x_low, std::vector<double> y_low,
                   std::vector<Vector> x_high, std::vector<double> y_high) = 0;

  /// Append one low-fidelity observation (retraining hyperparameters when
  /// @p retrain is set, otherwise just refreshing posterior caches).
  virtual void addLow(const Vector& x, double y, bool retrain = true) = 0;
  /// Append one high-fidelity observation.
  virtual void addHigh(const Vector& x, double y, bool retrain = true) = 0;

  /// Posterior of the low-fidelity latent function at @p x.
  virtual Prediction predictLow(const Vector& x) const = 0;
  /// Posterior of the (fused) high-fidelity latent function at @p x.
  virtual Prediction predictHigh(const Vector& x) const = 0;

  virtual std::size_t numLow() const = 0;
  virtual std::size_t numHigh() const = 0;

  /// Best (smallest) observed low- and high-fidelity targets — the τ_l and
  /// τ_h incumbents of §3.3/§4.1.
  virtual double bestLowObserved() const = 0;
  virtual double bestHighObserved() const = 0;

  /// Output scale (sd) of the low-fidelity training targets. Dividing
  /// predictLow(x).var by its square puts the uncertainty on the
  /// standardized scale the eq. (11) threshold γ applies to.
  virtual double lowOutputSd() const = 0;

  /// Deep copy. The batch engine clones the fitted surrogate before
  /// feeding it constant-liar fantasy points, so the real model never sees
  /// a lie and serial byte-determinism is preserved.
  virtual std::unique_ptr<MfSurrogate> clone() const = 0;

  /// Flat vector of every trained hyperparameter (internal GPs low-first:
  /// kernel log-params then noise sd; fusion scalars appended). Stored in
  /// checkpoints as an integrity stamp for the replay-based restore.
  virtual std::vector<double> hyperparameters() const = 0;
};

}  // namespace mfbo::mf
