// mfbo::mf — recursive multi-level nonlinear fusion (≥ 2 fidelities).
//
// The paper restricts itself to two fidelity levels "for simplicity" and
// motivates the general case: "the ability to combine several levels of
// information to model the slowest one is extremely useful in analog
// circuit optimization, since we can always carry out the circuit
// simulation at different precision levels" (§1). This class implements
// that extension, following the recursive scheme of Perdikaris et al.
// 2017: level 0 is a plain GP; every level ℓ ≥ 1 is a GP over the
// augmented input [x; f_{ℓ−1}(x)] with the eq. (9) composite kernel, where
// f_{ℓ−1} is the (already fused) posterior of the level below. Prediction
// propagates Monte-Carlo samples up the whole cascade with common random
// numbers per level.
#pragma once

#include <memory>
#include <vector>

#include "gp/gp_regressor.h"
#include "linalg/rng.h"

namespace mfbo::mf {

struct MultilevelConfig {
  gp::GpConfig gp;            ///< trainer settings for every level
  std::size_t n_mc = 50;      ///< MC samples propagated through each level
  std::uint64_t seed = 4242;  ///< seed for the common random numbers
};

/// L-level recursive NARGP. Level 0 is the cheapest fidelity; level L−1 the
/// most expensive. Invariant: after fit(), predict(level, x) is usable for
/// every level.
class MultilevelNargp {
 public:
  /// @p x_dim design-space dimension, @p n_levels ≥ 2.
  MultilevelNargp(std::size_t x_dim, std::size_t n_levels,
                  MultilevelConfig config = {});

  /// Train from scratch: one dataset per level, cheapest first. Every
  /// dataset must be non-empty; sizes typically decrease with level.
  void fit(std::vector<std::vector<linalg::Vector>> x_per_level,
           std::vector<std::vector<double>> y_per_level);

  /// Append one observation at @p level (retraining that level and all
  /// levels above it, whose augmented inputs depend on it).
  void add(std::size_t level, const linalg::Vector& x, double y,
           bool retrain = true);

  /// Fused posterior of fidelity @p level at @p x. Level 0 is exact GP
  /// inference; higher levels are MC-integrated through the cascade.
  gp::Prediction predict(std::size_t level, const linalg::Vector& x) const;

  std::size_t numLevels() const { return gps_.size(); }
  std::size_t xDim() const { return x_dim_; }
  std::size_t numPoints(std::size_t level) const;
  const gp::GpRegressor& levelGp(std::size_t level) const;

 private:
  /// Rebuild levels [from, L): re-augment their inputs with the posterior
  /// mean of the level below and refit.
  void rebuildFrom(std::size_t from, bool retrain);

  std::size_t x_dim_;
  MultilevelConfig config_;
  mutable linalg::Rng rng_;

  std::vector<gp::GpRegressor> gps_;
  // Raw (un-augmented) data per level.
  std::vector<std::vector<linalg::Vector>> x_;
  std::vector<std::vector<double>> y_;
  // Common random numbers: draws_[ℓ] feeds the MC propagation into level ℓ.
  std::vector<linalg::Vector> draws_;
};

}  // namespace mfbo::mf
