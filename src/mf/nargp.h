// mfbo::mf — nonlinear information-fusion surrogate (NARGP).
//
// The paper's multi-fidelity model (§3.1-3.2, following Perdikaris et al.
// 2017):
//   * level 1: plain GP f_l over the design space (SE-ARD kernel),
//   * level 2: GP f_h over the augmented input z = [x; f_l(x)] with the
//     composite kernel of eq. (9).
// High-fidelity training points are augmented with the low-fidelity
// posterior mean µ_l(x); prediction at a new point integrates the
// low-fidelity posterior out by Monte Carlo (eq. 10), using common random
// numbers so that repeated evaluations of the same x are deterministic
// between model updates (which the acquisition optimizer requires). The MC
// samples fan out over the common/parallel.h pool with slot-indexed
// outputs and an ordered accumulation, so predictions are byte-identical
// at any thread count.
#pragma once

#include <memory>

#include "mf/mf_surrogate.h"

namespace mfbo::mf {

struct NargpConfig {
  gp::GpConfig low;           ///< trainer settings for the low-fidelity GP
  gp::GpConfig high;          ///< trainer settings for the high-fidelity GP
  std::size_t n_mc = 100;     ///< Monte-Carlo samples for eq. (10)
  /// MC samples on which the (O(n²)) within-sample posterior variance is
  /// evaluated; the between-sample variance uses all n_mc means. Keeps the
  /// law-of-total-variance estimate while cutting the dominant cost.
  std::size_t n_mc_var = 20;
  std::uint64_t seed = 2024;  ///< seed for the MC common random numbers
};

/// Nonlinear auto-regressive GP (the paper's fusing model).
class NargpModel final : public MfSurrogate {
 public:
  explicit NargpModel(std::size_t x_dim, NargpConfig config = {});

  void fit(std::vector<Vector> x_low, std::vector<double> y_low,
           std::vector<Vector> x_high, std::vector<double> y_high) override;
  void addLow(const Vector& x, double y, bool retrain = true) override;
  void addHigh(const Vector& x, double y, bool retrain = true) override;

  Prediction predictLow(const Vector& x) const override;
  Prediction predictHigh(const Vector& x) const override;

  std::size_t numLow() const override { return low_gp_.size(); }
  std::size_t numHigh() const override { return x_high_.size(); }
  double bestLowObserved() const override { return low_gp_.bestObserved(); }
  double bestHighObserved() const override;
  double lowOutputSd() const override { return low_gp_.outputSd(); }

  std::unique_ptr<MfSurrogate> clone() const override {
    return std::make_unique<NargpModel>(*this);
  }
  std::vector<double> hyperparameters() const override;

  std::size_t xDim() const { return x_dim_; }
  const gp::GpRegressor& lowGp() const { return low_gp_; }
  const gp::GpRegressor& highGp() const { return high_gp_; }

 private:
  /// Re-augment the high-fidelity inputs with the current µ_l and retrain
  /// (or just rebuild) the high-fidelity GP, then draw fresh eq. (10) MC
  /// common random numbers. addLow/addHigh with retrain=false skip this
  /// entirely: existing rows keep the augmentation frozen at the last
  /// retrain (LinEasyBO-style), new high rows append incrementally in
  /// O(n²), and the MC draws are reused.
  void rebuildHigh(bool retrain);
  /// Draw a fresh set of common random numbers for the MC integration.
  void refreshMcDraws();

  std::size_t x_dim_;
  NargpConfig config_;
  linalg::Rng rng_;

  gp::GpRegressor low_gp_;
  gp::GpRegressor high_gp_;
  std::vector<Vector> x_high_;   // raw high-fidelity inputs (without y_l)
  std::vector<double> y_high_;
  Vector mc_draws_;  // fixed standard-normal draws, size n_mc
};

}  // namespace mfbo::mf
