// mfbo::mf — linear auto-regressive cokriging baseline (Kennedy & O'Hagan
// 2000, the paper's eq. 7): f_h(x) = ρ·f_l(x) + δ(x).
//
// Used in the fusion ablation to show what the *nonlinear* NARGP map buys
// over the classic linear correlation assumption.
#pragma once

#include "mf/mf_surrogate.h"

namespace mfbo::mf {

struct Ar1Config {
  gp::GpConfig low;
  gp::GpConfig delta;
};

/// Linear two-fidelity cokriging: a low-fidelity GP plus an independent
/// discrepancy GP on the residuals y_h − ρ·µ_l(x_h). The scale ρ is
/// estimated by least squares between µ_l(x_h) and y_h at every retrain;
/// non-retrain updates keep ρ frozen and extend the GPs incrementally.
class Ar1Model final : public MfSurrogate {
 public:
  explicit Ar1Model(std::size_t x_dim, Ar1Config config = {});

  void fit(std::vector<Vector> x_low, std::vector<double> y_low,
           std::vector<Vector> x_high, std::vector<double> y_high) override;
  void addLow(const Vector& x, double y, bool retrain = true) override;
  void addHigh(const Vector& x, double y, bool retrain = true) override;

  Prediction predictLow(const Vector& x) const override;
  Prediction predictHigh(const Vector& x) const override;

  std::size_t numLow() const override { return low_gp_.size(); }
  std::size_t numHigh() const override { return x_high_.size(); }
  double bestLowObserved() const override { return low_gp_.bestObserved(); }
  double bestHighObserved() const override;
  double lowOutputSd() const override { return low_gp_.outputSd(); }

  std::unique_ptr<MfSurrogate> clone() const override {
    return std::make_unique<Ar1Model>(*this);
  }
  std::vector<double> hyperparameters() const override;

  double rho() const { return rho_; }

 private:
  void rebuildDelta(bool retrain);

  std::size_t x_dim_;
  Ar1Config config_;
  gp::GpRegressor low_gp_;
  gp::GpRegressor delta_gp_;
  std::vector<Vector> x_high_;
  std::vector<double> y_high_;
  double rho_ = 1.0;
};

}  // namespace mfbo::mf
