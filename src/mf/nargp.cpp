#include "mf/nargp.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/parallel.h"
#include "common/spans.h"
#include "common/telemetry.h"

namespace mfbo::mf {

namespace {

Vector augment(const Vector& x, double y_low) {
  Vector z(x.size() + 1);
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = x[i];
  z[x.size()] = y_low;
  return z;
}

}  // namespace

NargpModel::NargpModel(std::size_t x_dim, NargpConfig config)
    : x_dim_(x_dim),
      config_(config),
      rng_(config.seed),
      low_gp_(std::make_unique<gp::SeArdKernel>(x_dim), config.low),
      high_gp_(std::make_unique<gp::NargpKernel>(x_dim), config.high) {
  MFBO_CHECK(x_dim >= 1, "x_dim must be >= 1");
  MFBO_CHECK(config_.n_mc >= 1, "n_mc must be >= 1");
}

void NargpModel::fit(std::vector<Vector> x_low, std::vector<double> y_low,
                     std::vector<Vector> x_high, std::vector<double> y_high) {
  MFBO_CHECK(!x_low.empty() && !x_high.empty(),
             "both fidelity sets required, got ", x_low.size(), " low / ",
             x_high.size(), " high");
  MFBO_CHECK(x_high.size() == y_high.size(), "high-fidelity size mismatch: ",
             x_high.size(), " inputs vs ", y_high.size(), " targets");
  {
    const spans::ScopedSpan fit_low_span("fit_low");
    low_gp_.fit(std::move(x_low), std::move(y_low));
  }
  x_high_ = std::move(x_high);
  y_high_ = std::move(y_high);
  rebuildHigh(/*retrain=*/true);
}

void NargpModel::addLow(const Vector& x, double y, bool retrain) {
  {
    const spans::ScopedSpan fit_low_span("fit_low");
    low_gp_.addPoint(x, y, retrain);
  }
  if (retrain) {
    // µ_l moved everywhere, so the high-fidelity augmented inputs are
    // refreshed along with the hyperparameters.
    rebuildHigh(/*retrain=*/true);
    return;
  }
  // Non-retrain fast path: the high GP keeps the µ_l augmentation from
  // the last retrain (its training set did not grow), so the whole fused
  // update is the low GP's O(n²) factor extension. predictHigh still
  // integrates over the *updated* low posterior at query time; the µ_l
  // drift in the frozen training augmentation is folded in at the next
  // retrain. The eq. (10) draws are reused so the fused acquisition
  // surface stays fixed between model updates.
  telemetry::Counter& frozen_low =
      telemetry::counter("mf.nargp.incremental_add_low");
  frozen_low.add();
}

void NargpModel::addHigh(const Vector& x, double y, bool retrain) {
  MFBO_CHECK(x.size() == x_dim_, "input dim ", x.size(),
             " does not match x_dim ", x_dim_);
  x_high_.push_back(x);
  y_high_.push_back(y);
  if (retrain || !high_gp_.fitted()) {
    rebuildHigh(/*retrain=*/true);
    return;
  }
  // Non-retrain fast path: existing rows keep their frozen augmentation;
  // only the new row is augmented (with the current µ_l) and appended to
  // the high GP's factor in O(n²). Draws are reused as in addLow.
  telemetry::Counter& incremental_high =
      telemetry::counter("mf.nargp.incremental_add_high");
  incremental_high.add();
  const spans::ScopedSpan fit_high_span("fit_high");
  high_gp_.addPoint(augment(x, low_gp_.predict(x).mean), y,
                    /*retrain=*/false);
}

void NargpModel::rebuildHigh(bool retrain) {
  telemetry::Timer& fuse_timer =
      telemetry::timer("mf.nargp.fuse_seconds");
  const telemetry::ScopedTimer fuse_scope(fuse_timer);
  const spans::ScopedSpan fit_high_span("fit_high");
  std::vector<Vector> z;
  z.reserve(x_high_.size());
  for (const Vector& x : x_high_)
    z.push_back(augment(x, low_gp_.predict(x).mean));
  if (retrain || !high_gp_.fitted()) {
    high_gp_.fit(std::move(z), y_high_);
  } else {
    high_gp_.setData(std::move(z), y_high_);
  }
  refreshMcDraws();
}

void NargpModel::refreshMcDraws() {
  mc_draws_ = rng_.normalVector(config_.n_mc);
}

Prediction NargpModel::predictLow(const Vector& x) const {
  return low_gp_.predict(x);
}

Prediction NargpModel::predictHigh(const Vector& x) const {
  MFBO_CHECK(high_gp_.fitted(), "model is not fitted");
  MFBO_DCHECK(x.size() == x_dim_, "input dim ", x.size(),
              " does not match x_dim ", x_dim_);
  telemetry::Counter& predict_calls =
      telemetry::counter("mf.nargp.predict_high_calls");
  telemetry::Counter& mc_samples =
      telemetry::counter("mf.nargp.mc_samples");
  telemetry::Timer& predict_timer =
      telemetry::timer("mf.nargp.predict_high_seconds");
  predict_calls.add();
  mc_samples.add(config_.n_mc);
  const telemetry::ScopedTimer predict_scope(predict_timer);
  // One span per predictHigh call, opened *outside* the parallel MC region:
  // per-chunk spans would count chunks, which depend on the thread count.
  const spans::ScopedSpan mc_span("mc_integration");
  spans::addCounter("mc_samples", config_.n_mc);
  const Prediction low = low_gp_.predict(x);
  const double low_sd = low.sd();

  // Monte-Carlo integration of eq. (10) with common random numbers:
  // y_l^(i) = µ_l + σ_l·ε_i, pushed through the high-fidelity GP; mean and
  // variance by the law of total variance. Fast path: the k2/k3 x-parts of
  // the composite kernel are identical for every sample, so compute them
  // once; the O(n²) within-sample variance is averaged over the first
  // n_mc_var samples only.
  const auto& kernel =
      static_cast<const gp::NargpKernel&>(high_gp_.kernel());
  const auto& z_train = high_gp_.inputs();
  const std::size_t n = z_train.size();
  const std::size_t yl_index = x_dim_;

  Vector c2, c3;
  kernel.crossXParts(z_train, x, c2, c3);
  const Vector& alpha = high_gp_.alphaVector();
  const auto& chol = high_gp_.posteriorCholesky();
  const auto& std_out = high_gp_.standardizer();
  const double sn2 = high_gp_.noiseSd() * high_gp_.noiseSd();
  const double k_self = kernel.selfVariance();

  const std::size_t n_var = std::min(
      config_.n_mc, std::max<std::size_t>(1, config_.n_mc_var));

  // Each sample pushes a fixed draw through the high-fidelity posterior —
  // independent per index, so samples fan out in chunks over the parallel
  // pool, writing into per-index slots. (The draws themselves are common
  // random numbers fixed at fit time; the parallel body consumes no RNG.)
  Vector sample_mean(config_.n_mc);
  Vector sample_var(n_var);
  parallel::parallelForChunked(
      config_.n_mc, /*grain=*/8, [&](std::size_t lo, std::size_t hi) {
        Vector ks(n);  // per-chunk scratch; serial path pays this once
        for (std::size_t i = lo; i < hi; ++i) {
          const double yl = low.mean + low_sd * mc_draws_[i];
          for (std::size_t t = 0; t < n; ++t)
            ks[t] = kernel.k1Scalar(yl, z_train[t][yl_index]) * c2[t] + c3[t];
          const double mu_z = dot(ks, alpha);
          sample_mean[i] = std_out.unapply(mu_z);
          if (i < n_var) {
            const Vector v = chol.solveLower(ks);
            const double var_z =
                std::max(sn2 + k_self - v.squaredNorm(), 1e-12);
            sample_var[i] = std_out.unapplyVariance(var_z);
          }
        }
      });

  // Ordered accumulation in sample order: every accumulator sums the same
  // values in the same sequence as the serial loop, so the fused posterior
  // is byte-identical at any thread count.
  double mean_acc = 0.0, mean_sq_acc = 0.0, var_acc = 0.0;
  for (std::size_t i = 0; i < config_.n_mc; ++i) {
    mean_acc += sample_mean[i];
    mean_sq_acc += sample_mean[i] * sample_mean[i];
  }
  for (std::size_t i = 0; i < n_var; ++i) var_acc += sample_var[i];
  const double inv_n = 1.0 / static_cast<double>(config_.n_mc);
  const double mean = mean_acc * inv_n;
  const double within = var_acc / static_cast<double>(n_var);  // E[σ²]
  const double between =
      std::max(0.0, mean_sq_acc * inv_n - mean * mean);        // Var[µ]
  return {mean, within + between};
}

double NargpModel::bestHighObserved() const {
  MFBO_CHECK(!y_high_.empty(), "no high-fidelity data");
  return *std::min_element(y_high_.begin(), y_high_.end());
}

std::vector<double> NargpModel::hyperparameters() const {
  std::vector<double> out = low_gp_.hyperparameters();
  const std::vector<double> high = high_gp_.hyperparameters();
  out.insert(out.end(), high.begin(), high.end());
  return out;
}

}  // namespace mfbo::mf
