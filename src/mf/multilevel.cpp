#include "mf/multilevel.h"

#include "common/check.h"
#include "common/spans.h"

namespace mfbo::mf {

namespace {

linalg::Vector augment(const linalg::Vector& x, double y_below) {
  linalg::Vector z(x.size() + 1);
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = x[i];
  z[x.size()] = y_below;
  return z;
}

}  // namespace

MultilevelNargp::MultilevelNargp(std::size_t x_dim, std::size_t n_levels,
                                 MultilevelConfig config)
    : x_dim_(x_dim), config_(config), rng_(config.seed) {
  MFBO_CHECK(x_dim >= 1, "x_dim must be >= 1");
  MFBO_CHECK(n_levels >= 2, "need at least 2 levels, got ", n_levels);
  MFBO_CHECK(config_.n_mc >= 1, "n_mc must be >= 1");
  gps_.reserve(n_levels);
  for (std::size_t l = 0; l < n_levels; ++l) {
    gp::GpConfig cfg = config_.gp;
    cfg.seed = config_.seed * 101u + l;
    if (l == 0) {
      gps_.emplace_back(std::make_unique<gp::SeArdKernel>(x_dim), cfg);
    } else {
      gps_.emplace_back(std::make_unique<gp::NargpKernel>(x_dim), cfg);
    }
  }
  x_.resize(n_levels);
  y_.resize(n_levels);
  draws_.resize(n_levels);
  for (auto& d : draws_) d = rng_.normalVector(config_.n_mc);
}

void MultilevelNargp::fit(
    std::vector<std::vector<linalg::Vector>> x_per_level,
    std::vector<std::vector<double>> y_per_level) {
  MFBO_CHECK(x_per_level.size() == numLevels() &&
                 y_per_level.size() == numLevels(),
             "level count mismatch: got ", x_per_level.size(), "/",
             y_per_level.size(), ", expected ", numLevels());
  for (std::size_t l = 0; l < numLevels(); ++l) {
    MFBO_CHECK(!x_per_level[l].empty() &&
                   x_per_level[l].size() == y_per_level[l].size(),
               "bad data at level ", l, ": ", x_per_level[l].size(),
               " inputs, ", y_per_level[l].size(), " targets");
  }
  x_ = std::move(x_per_level);
  y_ = std::move(y_per_level);
  rebuildFrom(0, /*retrain=*/true);
}

void MultilevelNargp::add(std::size_t level, const linalg::Vector& x,
                          double y, bool retrain) {
  MFBO_CHECK(level < numLevels(), "level ", level, " out of range [0,",
             numLevels(), ")");
  MFBO_CHECK(x.size() == x_dim_, "input dim ", x.size(),
             " does not match x_dim ", x_dim_);
  x_[level].push_back(x);
  y_[level].push_back(y);
  rebuildFrom(level, retrain);
}

void MultilevelNargp::rebuildFrom(std::size_t from, bool retrain) {
  MFBO_DCHECK(from < numLevels(), "level ", from, " out of range [0,",
              numLevels(), ")");
  for (std::size_t l = from; l < numLevels(); ++l) {
    const spans::ScopedSpan span(l == 0 ? "fit_low" : "fit_high");
    if (l == 0) {
      if (retrain || !gps_[0].fitted()) {
        gps_[0].fit(x_[0], y_[0]);
      } else {
        gps_[0].setData(x_[0], y_[0]);
      }
      continue;
    }
    std::vector<linalg::Vector> z;
    z.reserve(x_[l].size());
    for (const linalg::Vector& xi : x_[l])
      z.push_back(augment(xi, predict(l - 1, xi).mean));
    if (retrain || !gps_[l].fitted()) {
      gps_[l].fit(std::move(z), y_[l]);
    } else {
      gps_[l].setData(std::move(z), y_[l]);
    }
  }
  // Fresh common random numbers for the MC cascade — only when the
  // hyperparameters moved. Cheap posterior-only updates keep the draws so
  // that variance comparisons before/after an added point are apples to
  // apples.
  if (retrain)
    for (auto& d : draws_) d = rng_.normalVector(config_.n_mc);
}

gp::Prediction MultilevelNargp::predict(std::size_t level,
                                        const linalg::Vector& x) const {
  MFBO_CHECK(level < numLevels(), "level ", level, " out of range [0,",
             numLevels(), ")");
  MFBO_CHECK(gps_[0].fitted(), "model is not fitted");
  const gp::Prediction base = gps_[0].predict(x);
  if (level == 0) return base;

  // Propagate n_mc samples up the cascade with per-level common random
  // numbers; apply the law of total variance at the target level.
  const std::size_t n = config_.n_mc;
  std::vector<double> samples(n);
  for (std::size_t i = 0; i < n; ++i)
    samples[i] = base.mean + base.sd() * draws_[0][i];

  double mean_acc = 0.0, mean_sq_acc = 0.0, var_acc = 0.0;
  for (std::size_t l = 1; l <= level; ++l) {
    for (std::size_t i = 0; i < n; ++i) {
      const gp::Prediction p = gps_[l].predict(augment(x, samples[i]));
      if (l == level) {
        mean_acc += p.mean;
        mean_sq_acc += p.mean * p.mean;
        var_acc += p.var;
      } else {
        samples[i] = p.mean + p.sd() * draws_[l][i];
      }
    }
  }
  const double inv_n = 1.0 / static_cast<double>(n);
  const double mean = mean_acc * inv_n;
  const double within = var_acc * inv_n;
  const double between =
      std::max(0.0, mean_sq_acc * inv_n - mean * mean);
  return {mean, within + between};
}

std::size_t MultilevelNargp::numPoints(std::size_t level) const {
  MFBO_CHECK(level < numLevels(), "level ", level, " out of range [0,",
             numLevels(), ")");
  return x_[level].size();
}

const gp::GpRegressor& MultilevelNargp::levelGp(std::size_t level) const {
  MFBO_CHECK(level < numLevels(), "level ", level, " out of range [0,",
             numLevels(), ")");
  return gps_[level];
}

}  // namespace mfbo::mf
