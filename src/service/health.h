// mfbo::service — health exporter: the fleet's SLO snapshot in the two
// formats an operator actually scrapes.
//
// SessionManager::healthJson() produces the versioned "mfbo-health" v1
// document (per-session progress and step-latency quantiles, pool gauges,
// flight-recorder counters). This header turns that document into:
//
//   * healthExposition() — a Prometheus-style text exposition (one
//     `# TYPE` header per family, `mfbo_`-prefixed metric names, sessions
//     distinguished by a `session` label, latency quantiles as a summary
//     family). The rendering is pure and deterministic in the document:
//     the same healthJson() bytes always produce the same exposition
//     bytes, which is what tools/health_validate.py checks in CI.
//   * writeHealthFiles() — the bench/CI convenience: the JSON document at
//     @p path and the exposition next to it at `<path>.prom`
//     (bench/micro_sessions --health FILE).
//
// Health output is operator-facing wall-clock data. It is deliberately
// OUTSIDE the byte-determinism boundary — nothing here may feed back into
// a --no-timing artifact (tools/bench_compare.py ignores health.* keys).
#pragma once

#include <string>

#include "common/json.h"

namespace mfbo::service {

/// Render a SessionManager::healthJson() document as Prometheus-style
/// text exposition. The document must carry the "mfbo-health" v1
/// envelope; anything else is a ContractViolation.
std::string healthExposition(const Json& health);

/// Write @p health as JSON to @p path and its exposition to
/// `<path>.prom`. Throws std::runtime_error when either file cannot be
/// written.
void writeHealthFiles(const Json& health, const std::string& path);

}  // namespace mfbo::service
