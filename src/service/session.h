// mfbo::service — one optimization session: an Engine plus the scoped
// observability state that keeps it isolated from every other session.
//
// A Session owns its Problem, its Engine, a private telemetry registry
// (common/telemetry.h) and a private span arena (common/spans.h). Every
// entry into the engine — construction, step, restore, snapshot — happens
// under a TelemetryScope + ArenaScope pair, so N sessions interleaving on
// one driver thread and the shared worker pool accumulate counters, spans,
// and allocation attribution exactly as if each had run alone. The
// byte-identity contract tests/test_session_manager.cpp enforces follows
// directly: a session's --no-timing artifact is byte-identical solo vs.
// among 8 concurrent sessions at any thread count.
//
// Resume semantics mirror the engine's (bo/engine.h): a restored session
// reproduces the *result* bytes of the uninterrupted run exactly, but not
// its metrics or span counters — replay retrains models without re-running
// simulations or acquisition searches. Crash-recovery comparisons
// therefore use resultJson(); the solo-vs-concurrent comparisons, which
// never resume, use the full artifactJson().
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "bo/engine.h"
#include "bo/problem.h"
#include "common/json.h"
#include "common/spans.h"
#include "common/telemetry.h"

namespace mfbo::service {

/// Builds the session's problem instance. Sessions own their problem:
/// the engine keeps a reference for its lifetime, and two sessions sharing
/// one Problem would make the evaluate() reentrancy contract (bo/problem.h)
/// a cross-session liability.
using ProblemFactory = std::function<std::unique_ptr<bo::Problem>()>;

/// Builds the session's engine over the session-owned problem.
using EngineFactory =
    std::function<std::unique_ptr<bo::Engine>(bo::Problem&)>;

/// Everything needed to (re)create a session. The factories outlive the
/// construction call: crash recovery rebuilds a fresh engine through them
/// and replays the persisted checkpoint into it.
struct SessionSpec {
  std::string id;  ///< [A-Za-z0-9_-]+; doubles as the recovery file stem
  ProblemFactory problem;
  EngineFactory engine;
};

enum class SessionStatus {
  kRunning,  ///< schedulable: the next stepRound() will advance it
  kPaused,   ///< excluded from scheduling until resume()
  kDone,     ///< engine completed (or a completed run was adopted)
};

/// Lowercase status name used in artifacts ("running", "paused", "done").
const char* sessionStatusName(SessionStatus s);

class Session {
 public:
  /// Validates the id ([A-Za-z0-9_-]+) and constructs the problem and
  /// engine under this session's telemetry/span scopes, so construction-
  /// time registrations and allocations are attributed to this session.
  explicit Session(SessionSpec spec);
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const std::string& id() const { return spec_.id; }
  SessionStatus status() const { return status_; }
  bool done() const { return status_ == SessionStatus::kDone; }
  /// Engine steps executed by this session (restored across recovery).
  std::size_t steps() const { return steps_; }

  /// Advance the engine one state, under the session scopes and the
  /// "session_step" span. Requires kRunning; flips to kDone (capturing the
  /// result) when the engine finishes.
  void step();

  void pause();   ///< kRunning → kPaused
  void resume();  ///< kPaused → kRunning

  /// Session-enveloped Engine::checkpoint() at the current boundary:
  /// {"format":"mfbo-session-checkpoint","version":1,"session":id,
  ///  "algo":...,"steps":...,"engine":{...}}. Not callable once done.
  Json checkpoint() const;

  /// Reinstate a checkpoint() document into this freshly constructed
  /// session (same spec). Envelope or engine-state mismatches — wrong
  /// format, session id, algorithm, or any corruption the engine's replay
  /// validation catches — are a ContractViolation.
  void restore(const Json& doc);

  /// Adopt a persisted resultJson() document for a session that completed
  /// before a crash: validates the envelope and flips straight to kDone
  /// without touching the engine.
  void adoptResult(const Json& doc);

  /// The session's resume-stable product, available once done:
  /// {"format":"mfbo-session-result","version":1,"session":id,"algo":...,
  ///  "result":synthesisResultToJson(...)}. Byte-identical across solo,
  /// concurrent, and killed-and-recovered executions of the same spec.
  const Json& resultJson() const;

  /// Full observability artifact: status, steps, the result (once done),
  /// and this session's metricsSnapshot — its private counters plus, when
  /// the profiler is enabled, its span arena. With include_timing=false
  /// the document is byte-deterministic for non-resumed runs at any thread
  /// count and any degree of session interleaving.
  Json artifactJson(bool include_timing);

  /// Per-session SLO snapshot for the health exporter (service/health.h):
  /// status, steps, engine progress (iterations, cost spent vs. budget),
  /// step-latency quantiles from this session's private histogram, derived
  /// steps/sec, and the number of steps since the last persisted boundary
  /// (the checkpoint-age gauge). Wall-clock fields come from the latency
  /// histogram, so the document is operator-facing, not byte-deterministic.
  Json healthJson();

  /// Mark the current step count as persisted. SessionManager calls this
  /// after every successful persistNow(); feeds healthJson()'s
  /// checkpoint_age_steps gauge.
  void notePersisted() { steps_at_last_persist_ = steps_; }

 private:
  void complete();

  SessionSpec spec_;
  // Scoping state is declared before the engine: references the engine
  // holds into the registry must outlive it.
  telemetry::MetricsRegistry metrics_;
  spans::SpanArena arena_;
  std::unique_ptr<bo::Problem> problem_;
  std::unique_ptr<bo::Engine> engine_;
  SessionStatus status_ = SessionStatus::kRunning;
  std::size_t steps_ = 0;
  std::size_t steps_at_last_persist_ = 0;
  Json result_doc_;
};

}  // namespace mfbo::service
