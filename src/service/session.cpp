#include "service/session.h"

#include <utility>

#include "common/check.h"
#include "common/eventlog.h"
#include "common/memstats.h"

namespace mfbo::service {

namespace {

constexpr const char* kCheckpointFormat = "mfbo-session-checkpoint";
constexpr const char* kResultFormat = "mfbo-session-result";
constexpr int kEnvelopeVersion = 1;

bool validIdChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '-';
}

void checkId(const std::string& id) {
  MFBO_CHECK(!id.empty(), "session id must not be empty");
  for (const char c : id)
    MFBO_CHECK(validIdChar(c), "session id '", id,
               "' may only contain [A-Za-z0-9_-]");
}

/// Shared validation of the persisted envelopes: exact format tag, exact
/// version, and the session/algo identity this document claims to belong
/// to. A file swapped between sessions (or hand-edited) fails here before
/// any engine state is touched.
void checkEnvelope(const Json& doc, const char* format,
                   const std::string& session_id, const char* algo) {
  MFBO_CHECK(doc.isObject(), "session document must be a JSON object");
  MFBO_CHECK(doc.contains("format") && doc.at("format").isString() &&
                 doc.at("format").asString() == format,
             "session document format must be '", format, "'");
  MFBO_CHECK(doc.contains("version") && doc.at("version").isNumber() &&
                 doc.at("version").asNumber() == kEnvelopeVersion,
             "unsupported session document version");
  MFBO_CHECK(doc.contains("session") && doc.at("session").isString() &&
                 doc.at("session").asString() == session_id,
             "session document belongs to a different session id");
  MFBO_CHECK(doc.contains("algo") && doc.at("algo").isString() &&
                 doc.at("algo").asString() == algo,
             "session document belongs to a different algorithm");
}

}  // namespace

const char* sessionStatusName(SessionStatus s) {
  switch (s) {
    case SessionStatus::kRunning:
      return "running";
    case SessionStatus::kPaused:
      return "paused";
    case SessionStatus::kDone:
      return "done";
  }
  return "unknown";
}

Session::Session(SessionSpec spec) : spec_(std::move(spec)) {
  checkId(spec_.id);
  MFBO_CHECK(spec_.problem != nullptr, "session '", spec_.id,
             "' has no problem factory");
  MFBO_CHECK(spec_.engine != nullptr, "session '", spec_.id,
             "' has no engine factory");
  // Construction runs under the session scopes: the engine constructors
  // register their zero-iteration counters, and everything they allocate
  // belongs to this session's tree — exactly as in a solo run.
  const telemetry::TelemetryScope metrics_scope(metrics_);
  const spans::ArenaScope arena_scope(arena_);
  problem_ = spec_.problem();
  MFBO_CHECK(problem_ != nullptr, "session '", spec_.id,
             "' problem factory returned null");
  engine_ = spec_.engine(*problem_);
  MFBO_CHECK(engine_ != nullptr, "session '", spec_.id,
             "' engine factory returned null");
  const eventlog::ScopedSession journal_label(spec_.id);
  eventlog::record(eventlog::EventKind::kSessionCreate, engine_->algo());
}

void Session::step() {
  MFBO_CHECK(status_ == SessionStatus::kRunning, "step() on a ",
             sessionStatusName(status_), " session");
  const telemetry::TelemetryScope metrics_scope(metrics_);
  const spans::ArenaScope arena_scope(arena_);
  // Journal label outlives the step body: the engine's transition and
  // fidelity events recorded inside step() carry this session's id.
  const eventlog::ScopedSession journal_label(spec_.id);
  eventlog::record(eventlog::EventKind::kSessionStep, nullptr, nullptr,
                   static_cast<std::int64_t>(steps_));
  {
    // session_step > <algo> > <phase spans>: the algo span reproduces the
    // run-span nesting of Engine::run(), so a stepped session's tree
    // matches a solo run driven the same way. The latency sample feeds the
    // health layer's SLO histogram (lookup per call — lint rule D005).
    const telemetry::ScopedLatency latency(
        telemetry::histogram("session.step_latency"));
    const spans::ScopedSpan step_span("session_step");
    const spans::ScopedSpan algo_span(engine_->algo());
    engine_->step();
  }
  ++steps_;
  if (engine_->done()) complete();
}

void Session::pause() {
  MFBO_CHECK(status_ == SessionStatus::kRunning, "pause() on a ",
             sessionStatusName(status_), " session");
  status_ = SessionStatus::kPaused;
}

void Session::resume() {
  MFBO_CHECK(status_ == SessionStatus::kPaused, "resume() on a ",
             sessionStatusName(status_), " session");
  status_ = SessionStatus::kRunning;
}

Json Session::checkpoint() const {
  MFBO_CHECK(status_ != SessionStatus::kDone,
             "checkpoint() on a completed session");
  // Persistence is service machinery, not session workload: its
  // allocations must not show up in the session's span tree, or a
  // checkpointed run would diverge byte-wise from an unmonitored one.
  const memstats::PauseScope alloc_pause;
  Json doc = Json::object();
  doc.set("format", kCheckpointFormat);
  doc.set("version", kEnvelopeVersion);
  doc.set("session", spec_.id);
  doc.set("algo", engine_->algo());
  doc.set("steps", steps_);
  doc.set("engine", engine_->checkpoint());
  return doc;
}

void Session::restore(const Json& doc) {
  MFBO_CHECK(steps_ == 0 && status_ == SessionStatus::kRunning,
             "restore() on a session that has already run");
  checkEnvelope(doc, kCheckpointFormat, spec_.id, engine_->algo());
  MFBO_CHECK(doc.contains("steps") && doc.at("steps").isNumber(),
             "session checkpoint is missing its step count");
  MFBO_CHECK(doc.contains("engine"),
             "session checkpoint is missing the engine state");
  const double steps = doc.at("steps").asNumber();
  MFBO_CHECK(steps >= 0 && steps == static_cast<double>(
                                        static_cast<std::size_t>(steps)),
             "session checkpoint step count must be a non-negative integer");
  // The replay retrains surrogates; that work is this session's.
  const telemetry::TelemetryScope metrics_scope(metrics_);
  const spans::ArenaScope arena_scope(arena_);
  const eventlog::ScopedSession journal_label(spec_.id);
  engine_->restore(doc.at("engine"));
  steps_ = static_cast<std::size_t>(steps);
  steps_at_last_persist_ = steps_;
  eventlog::record(eventlog::EventKind::kCheckpointRestore, "checkpoint",
                   nullptr, static_cast<std::int64_t>(steps_));
}

void Session::adoptResult(const Json& doc) {
  MFBO_CHECK(steps_ == 0 && status_ == SessionStatus::kRunning,
             "adoptResult() on a session that has already run");
  checkEnvelope(doc, kResultFormat, spec_.id, engine_->algo());
  MFBO_CHECK(doc.contains("result"),
             "session result document is missing the result payload");
  result_doc_ = doc;
  status_ = SessionStatus::kDone;
  const eventlog::ScopedSession journal_label(spec_.id);
  eventlog::record(eventlog::EventKind::kCheckpointRestore, "result");
}

const Json& Session::resultJson() const {
  MFBO_CHECK(status_ == SessionStatus::kDone,
             "resultJson() before the session completed");
  return result_doc_;
}

Json Session::artifactJson(bool include_timing) {
  const telemetry::TelemetryScope metrics_scope(metrics_);
  const spans::ArenaScope arena_scope(arena_);
  Json doc = Json::object();
  {
    const memstats::PauseScope alloc_pause;
    doc.set("format", "mfbo-session-artifact");
    doc.set("version", kEnvelopeVersion);
    doc.set("session", spec_.id);
    doc.set("algo", engine_->algo());
    doc.set("status", sessionStatusName(status_));
    doc.set("steps", steps_);
    if (status_ == SessionStatus::kDone)
      doc.set("result", result_doc_.at("result"));
  }
  // Under the scopes, so the snapshot reads this session's registry and
  // span arena (metricsSnapshot pauses allocation accounting itself).
  doc.set("metrics", telemetry::metricsSnapshot(include_timing));
  return doc;
}

Json Session::healthJson() {
  // A health scrape is pure reporting: no engine entry, no workload
  // memory, readable between scheduler rounds at any time.
  const memstats::PauseScope alloc_pause;
  Json doc = Json::object();
  doc.set("session", spec_.id);
  doc.set("algo", engine_->algo());
  doc.set("status", sessionStatusName(status_));
  doc.set("steps", steps_);
  doc.set("iterations", engine_->iterationCount());
  doc.set("checkpoint_age_steps", steps_ - steps_at_last_persist_);
  const double budget = engine_->costBudget();
  const double spent = engine_->costSpent();
  doc.set("cost_spent", Json::number(spent));
  doc.set("cost_budget", Json::number(budget));
  doc.set("budget_fraction",
          Json::number(budget > 0.0 ? spent / budget : 0.0));
  const telemetry::Histogram& latency =
      metrics_.histogram("session.step_latency");
  Json step_latency = Json::object();
  step_latency.set("count",
                   Json::number(static_cast<double>(latency.count())));
  step_latency.set("total_s", Json::number(latency.totalSeconds()));
  step_latency.set("p50_s", Json::number(latency.quantileSeconds(0.50)));
  step_latency.set("p90_s", Json::number(latency.quantileSeconds(0.90)));
  step_latency.set("p99_s", Json::number(latency.quantileSeconds(0.99)));
  doc.set("step_latency", std::move(step_latency));
  const double total_s = latency.totalSeconds();
  doc.set("steps_per_sec",
          Json::number(total_s > 0.0
                           ? static_cast<double>(latency.count()) / total_s
                           : 0.0));
  return doc;
}

void Session::complete() {
  // Called from step() with the scopes active; result serialization is
  // reporting, not workload, so it stays out of the allocation counters.
  const memstats::PauseScope alloc_pause;
  const bo::SynthesisResult result = engine_->takeResult();
  result_doc_ = Json::object();
  result_doc_.set("format", kResultFormat);
  result_doc_.set("version", kEnvelopeVersion);
  result_doc_.set("session", spec_.id);
  result_doc_.set("algo", engine_->algo());
  result_doc_.set("result", bo::synthesisResultToJson(result));
  status_ = SessionStatus::kDone;
  eventlog::record(eventlog::EventKind::kSessionDone, nullptr, nullptr,
                   static_cast<std::int64_t>(steps_));
}

}  // namespace mfbo::service
