#include "service/session.h"

#include <utility>

#include "common/check.h"
#include "common/memstats.h"

namespace mfbo::service {

namespace {

constexpr const char* kCheckpointFormat = "mfbo-session-checkpoint";
constexpr const char* kResultFormat = "mfbo-session-result";
constexpr int kEnvelopeVersion = 1;

bool validIdChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '-';
}

void checkId(const std::string& id) {
  MFBO_CHECK(!id.empty(), "session id must not be empty");
  for (const char c : id)
    MFBO_CHECK(validIdChar(c), "session id '", id,
               "' may only contain [A-Za-z0-9_-]");
}

/// Shared validation of the persisted envelopes: exact format tag, exact
/// version, and the session/algo identity this document claims to belong
/// to. A file swapped between sessions (or hand-edited) fails here before
/// any engine state is touched.
void checkEnvelope(const Json& doc, const char* format,
                   const std::string& session_id, const char* algo) {
  MFBO_CHECK(doc.isObject(), "session document must be a JSON object");
  MFBO_CHECK(doc.contains("format") && doc.at("format").isString() &&
                 doc.at("format").asString() == format,
             "session document format must be '", format, "'");
  MFBO_CHECK(doc.contains("version") && doc.at("version").isNumber() &&
                 doc.at("version").asNumber() == kEnvelopeVersion,
             "unsupported session document version");
  MFBO_CHECK(doc.contains("session") && doc.at("session").isString() &&
                 doc.at("session").asString() == session_id,
             "session document belongs to a different session id");
  MFBO_CHECK(doc.contains("algo") && doc.at("algo").isString() &&
                 doc.at("algo").asString() == algo,
             "session document belongs to a different algorithm");
}

}  // namespace

const char* sessionStatusName(SessionStatus s) {
  switch (s) {
    case SessionStatus::kRunning:
      return "running";
    case SessionStatus::kPaused:
      return "paused";
    case SessionStatus::kDone:
      return "done";
  }
  return "unknown";
}

Session::Session(SessionSpec spec) : spec_(std::move(spec)) {
  checkId(spec_.id);
  MFBO_CHECK(spec_.problem != nullptr, "session '", spec_.id,
             "' has no problem factory");
  MFBO_CHECK(spec_.engine != nullptr, "session '", spec_.id,
             "' has no engine factory");
  // Construction runs under the session scopes: the engine constructors
  // register their zero-iteration counters, and everything they allocate
  // belongs to this session's tree — exactly as in a solo run.
  const telemetry::TelemetryScope metrics_scope(metrics_);
  const spans::ArenaScope arena_scope(arena_);
  problem_ = spec_.problem();
  MFBO_CHECK(problem_ != nullptr, "session '", spec_.id,
             "' problem factory returned null");
  engine_ = spec_.engine(*problem_);
  MFBO_CHECK(engine_ != nullptr, "session '", spec_.id,
             "' engine factory returned null");
}

void Session::step() {
  MFBO_CHECK(status_ == SessionStatus::kRunning, "step() on a ",
             sessionStatusName(status_), " session");
  const telemetry::TelemetryScope metrics_scope(metrics_);
  const spans::ArenaScope arena_scope(arena_);
  {
    // session_step > <algo> > <phase spans>: the algo span reproduces the
    // run-span nesting of Engine::run(), so a stepped session's tree
    // matches a solo run driven the same way.
    const spans::ScopedSpan step_span("session_step");
    const spans::ScopedSpan algo_span(engine_->algo());
    engine_->step();
  }
  ++steps_;
  if (engine_->done()) complete();
}

void Session::pause() {
  MFBO_CHECK(status_ == SessionStatus::kRunning, "pause() on a ",
             sessionStatusName(status_), " session");
  status_ = SessionStatus::kPaused;
}

void Session::resume() {
  MFBO_CHECK(status_ == SessionStatus::kPaused, "resume() on a ",
             sessionStatusName(status_), " session");
  status_ = SessionStatus::kRunning;
}

Json Session::checkpoint() const {
  MFBO_CHECK(status_ != SessionStatus::kDone,
             "checkpoint() on a completed session");
  // Persistence is service machinery, not session workload: its
  // allocations must not show up in the session's span tree, or a
  // checkpointed run would diverge byte-wise from an unmonitored one.
  const memstats::PauseScope alloc_pause;
  Json doc = Json::object();
  doc.set("format", kCheckpointFormat);
  doc.set("version", kEnvelopeVersion);
  doc.set("session", spec_.id);
  doc.set("algo", engine_->algo());
  doc.set("steps", steps_);
  doc.set("engine", engine_->checkpoint());
  return doc;
}

void Session::restore(const Json& doc) {
  MFBO_CHECK(steps_ == 0 && status_ == SessionStatus::kRunning,
             "restore() on a session that has already run");
  checkEnvelope(doc, kCheckpointFormat, spec_.id, engine_->algo());
  MFBO_CHECK(doc.contains("steps") && doc.at("steps").isNumber(),
             "session checkpoint is missing its step count");
  MFBO_CHECK(doc.contains("engine"),
             "session checkpoint is missing the engine state");
  const double steps = doc.at("steps").asNumber();
  MFBO_CHECK(steps >= 0 && steps == static_cast<double>(
                                        static_cast<std::size_t>(steps)),
             "session checkpoint step count must be a non-negative integer");
  // The replay retrains surrogates; that work is this session's.
  const telemetry::TelemetryScope metrics_scope(metrics_);
  const spans::ArenaScope arena_scope(arena_);
  engine_->restore(doc.at("engine"));
  steps_ = static_cast<std::size_t>(steps);
}

void Session::adoptResult(const Json& doc) {
  MFBO_CHECK(steps_ == 0 && status_ == SessionStatus::kRunning,
             "adoptResult() on a session that has already run");
  checkEnvelope(doc, kResultFormat, spec_.id, engine_->algo());
  MFBO_CHECK(doc.contains("result"),
             "session result document is missing the result payload");
  result_doc_ = doc;
  status_ = SessionStatus::kDone;
}

const Json& Session::resultJson() const {
  MFBO_CHECK(status_ == SessionStatus::kDone,
             "resultJson() before the session completed");
  return result_doc_;
}

Json Session::artifactJson(bool include_timing) {
  const telemetry::TelemetryScope metrics_scope(metrics_);
  const spans::ArenaScope arena_scope(arena_);
  Json doc = Json::object();
  {
    const memstats::PauseScope alloc_pause;
    doc.set("format", "mfbo-session-artifact");
    doc.set("version", kEnvelopeVersion);
    doc.set("session", spec_.id);
    doc.set("algo", engine_->algo());
    doc.set("status", sessionStatusName(status_));
    doc.set("steps", steps_);
    if (status_ == SessionStatus::kDone)
      doc.set("result", result_doc_.at("result"));
  }
  // Under the scopes, so the snapshot reads this session's registry and
  // span arena (metricsSnapshot pauses allocation accounting itself).
  doc.set("metrics", telemetry::metricsSnapshot(include_timing));
  return doc;
}

void Session::complete() {
  // Called from step() with the scopes active; result serialization is
  // reporting, not workload, so it stays out of the allocation counters.
  const memstats::PauseScope alloc_pause;
  const bo::SynthesisResult result = engine_->takeResult();
  result_doc_ = Json::object();
  result_doc_.set("format", kResultFormat);
  result_doc_.set("version", kEnvelopeVersion);
  result_doc_.set("session", spec_.id);
  result_doc_.set("algo", engine_->algo());
  result_doc_.set("result", bo::synthesisResultToJson(result));
  status_ = SessionStatus::kDone;
}

}  // namespace mfbo::service
