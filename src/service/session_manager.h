// mfbo::service — SessionManager: N concurrent optimization sessions
// multiplexed over the one shared deterministic thread pool.
//
// Scheduling model: cooperative, fair, and deterministic. stepRound()
// steps every runnable session exactly once, in creation order; runAll()
// repeats rounds until nothing is runnable. Each step is one engine state
// transition whose heavy phases (batch simulations, GP restart training,
// MSP multistart, NARGP MC) fan out over the common/parallel pool and then
// yield back to the scheduler, so concurrency lives *inside* a step while
// the interleaving *between* sessions stays a fixed round-robin.
//
// Fairness contract (pinned by tests/test_session_manager.cpp): after any
// number of rounds, the step counts of the still-running sessions differ
// by at most one from the round count — no session can starve another, no
// matter how expensive its steps are.
//
// Crash recovery: with a checkpoint directory configured, the manager
// persists each session's checkpoint() every checkpoint_every steps
// (atomically: write-to-temp + rename) and its resultJson() at completion.
// Recovery is id-keyed, never directory-scanned: create() with the same
// SessionSpec finds `<dir>/<id>.result.json` (adopt, already done) or
// `<dir>/<id>.ckpt.json` (replay-restore) and otherwise starts fresh — so
// a process killed at any scheduler boundary restarts every in-flight
// session from its last persisted boundary, and the recovered results are
// byte-identical to an uninterrupted run.
//
// Threading: the manager itself is single-driver — all calls come from one
// thread; parallelism comes from the pool underneath each step. This is
// what keeps the scheduler deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "service/session.h"

namespace mfbo::service {

struct SessionManagerOptions {
  /// Crash-recovery directory (created if missing). Empty disables
  /// persistence.
  std::string checkpoint_dir;
  /// Persist a session's checkpoint every k-th step (>= 1). The result
  /// document is always persisted at completion.
  std::size_t checkpoint_every = 1;
};

class SessionManager {
 public:
  explicit SessionManager(SessionManagerOptions options = {});
  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Create (or recover) the session for @p spec. Ids must be unique
  /// within the manager. With persistence configured, a persisted result
  /// or checkpoint for this id is loaded before the session is admitted;
  /// a corrupted document is a ContractViolation and the session is NOT
  /// admitted — other sessions are unaffected.
  Session& create(SessionSpec spec);

  /// Lookup by id; unknown ids are a ContractViolation (find() below is
  /// the non-throwing probe).
  Session& session(const std::string& id);
  const Session* find(const std::string& id) const;

  /// Session ids in creation order (the scheduling order).
  std::vector<std::string> ids() const;
  std::size_t size() const { return sessions_.size(); }

  /// One fair scheduling round: step every kRunning session exactly once,
  /// in creation order, persisting on schedule. Returns the number of
  /// sessions stepped (0 = nothing runnable).
  std::size_t stepRound();

  /// Rounds until no session is runnable (all done or paused). Returns the
  /// number of rounds executed.
  std::size_t runAll();

  void pause(const std::string& id);
  void resume(const std::string& id);

  /// Persist @p id's current boundary immediately (checkpoint, or the
  /// result document once done). Requires persistence configured.
  void persist(const std::string& id);

  /// Remove the session and delete its recovery files.
  void destroy(const std::string& id);

  /// Scheduling rounds that stepped at least one session.
  std::uint64_t roundsCompleted() const { return rounds_; }

  /// Fleet health snapshot for the service exporter (service/health.h):
  /// {"format":"mfbo-health","version":1,"rounds":...,
  ///  "sessions":[Session::healthJson()...],
  ///  "pool":{workers,regions,pooled_regions,chunks,queue_depth},
  ///  "eventlog":{enabled,recorded,dropped,skipped_in_region}}.
  /// Operator-facing (wall-clock latency quantiles included), never part
  /// of the byte-determinism boundary.
  Json healthJson();

 private:
  Session& mustFind(const std::string& id);
  std::string checkpointPath(const std::string& id) const;
  std::string resultPath(const std::string& id) const;
  bool persistenceEnabled() const { return !options_.checkpoint_dir.empty(); }
  /// Persist @p session if its step count hits the schedule (or it is
  /// done); no-op without persistence.
  void persistOnSchedule(Session& session);
  void persistNow(Session& session);

  SessionManagerOptions options_;
  std::vector<std::unique_ptr<Session>> sessions_;  ///< creation order
  std::uint64_t rounds_ = 0;  ///< rounds that stepped >= 1 session
};

}  // namespace mfbo::service
