#include "service/health.h"

#include <cstdio>
#include <stdexcept>
#include <string>

#include "common/check.h"
#include "common/memstats.h"

namespace mfbo::service {

namespace {

/// Prometheus label-value escaping: backslash, double quote, newline.
/// Session ids are [A-Za-z0-9_-] by contract, so this is belt and
/// braces for embedder-supplied documents.
std::string escapeLabel(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// Number formatting shared with the JSON artifacts: integral values
/// print without a decimal point, so the exposition is deterministic in
/// the document bytes.
std::string formatNumber(double v) { return Json::number(v).dump(); }

void typeLine(std::string& out, const char* name, const char* type) {
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

void sample(std::string& out, const char* name, const std::string& labels,
            double value) {
  out += name;
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  out += ' ';
  out += formatNumber(value);
  out += '\n';
}

double numberAt(const Json& obj, const char* key) {
  MFBO_CHECK(obj.contains(key) && obj.at(key).isNumber(),
             "health document is missing numeric field '", key, "'");
  return obj.at(key).asNumber();
}

}  // namespace

std::string healthExposition(const Json& health) {
  // Exposition rendering is reporting machinery, invisible to the
  // per-span allocation counters like every other serializer.
  const memstats::PauseScope alloc_pause;
  MFBO_CHECK(health.isObject() && health.contains("format") &&
                 health.at("format").isString() &&
                 health.at("format").asString() == "mfbo-health",
             "health document format must be 'mfbo-health'");
  MFBO_CHECK(health.contains("version") && health.at("version").isNumber() &&
                 health.at("version").asNumber() == 1,
             "unsupported health document version");
  MFBO_CHECK(health.contains("sessions") && health.at("sessions").isArray(),
             "health document is missing the sessions array");
  std::string out;
  out.reserve(4096);

  typeLine(out, "mfbo_rounds_total", "counter");
  sample(out, "mfbo_rounds_total", "", numberAt(health, "rounds"));
  typeLine(out, "mfbo_sessions", "gauge");
  sample(out, "mfbo_sessions", "",
         static_cast<double>(health.at("sessions").size()));

  // Per-session families: one TYPE header each, then a sample per
  // session in document (= creation) order.
  struct Field {
    const char* metric;
    const char* key;
    const char* type;
  };
  static constexpr Field kFields[] = {
      {"mfbo_session_steps_total", "steps", "counter"},
      {"mfbo_session_iterations_total", "iterations", "counter"},
      {"mfbo_session_checkpoint_age_steps", "checkpoint_age_steps",
       "gauge"},
      {"mfbo_session_cost_spent", "cost_spent", "gauge"},
      {"mfbo_session_cost_budget", "cost_budget", "gauge"},
      {"mfbo_session_budget_fraction", "budget_fraction", "gauge"},
      {"mfbo_session_steps_per_second", "steps_per_sec", "gauge"},
  };
  const auto& sessions = health.at("sessions").items();
  for (const Field& field : kFields) {
    typeLine(out, field.metric, field.type);
    for (const Json& session : sessions) {
      const std::string labels =
          "session=\"" + escapeLabel(session.at("session").asString()) +
          "\",algo=\"" + escapeLabel(session.at("algo").asString()) + "\"";
      sample(out, field.metric, labels, numberAt(session, field.key));
    }
  }

  // Status as a one-hot family so dashboards can count by state without
  // parsing label values out of a single gauge.
  typeLine(out, "mfbo_session_status", "gauge");
  for (const Json& session : sessions) {
    const std::string labels =
        "session=\"" + escapeLabel(session.at("session").asString()) +
        "\",status=\"" + escapeLabel(session.at("status").asString()) +
        "\"";
    sample(out, "mfbo_session_status", labels, 1.0);
  }

  // Step latency as a Prometheus summary: quantile samples plus _sum and
  // _count, all from the session's fixed-bucket histogram.
  typeLine(out, "mfbo_session_step_latency_seconds", "summary");
  static constexpr const char* kQuantiles[][2] = {
      {"0.5", "p50_s"}, {"0.9", "p90_s"}, {"0.99", "p99_s"}};
  for (const Json& session : sessions) {
    const std::string id = escapeLabel(session.at("session").asString());
    const Json& latency = session.at("step_latency");
    for (const auto& q : kQuantiles)
      sample(out, "mfbo_session_step_latency_seconds",
             "session=\"" + id + "\",quantile=\"" + q[0] + "\"",
             numberAt(latency, q[1]));
    sample(out, "mfbo_session_step_latency_seconds_sum",
           "session=\"" + id + "\"", numberAt(latency, "total_s"));
    sample(out, "mfbo_session_step_latency_seconds_count",
           "session=\"" + id + "\"", numberAt(latency, "count"));
  }

  const Json& pool = health.at("pool");
  typeLine(out, "mfbo_pool_workers", "gauge");
  sample(out, "mfbo_pool_workers", "", numberAt(pool, "workers"));
  typeLine(out, "mfbo_pool_regions_total", "counter");
  sample(out, "mfbo_pool_regions_total", "", numberAt(pool, "regions"));
  typeLine(out, "mfbo_pool_pooled_regions_total", "counter");
  sample(out, "mfbo_pool_pooled_regions_total", "",
         numberAt(pool, "pooled_regions"));
  typeLine(out, "mfbo_pool_chunks_total", "counter");
  sample(out, "mfbo_pool_chunks_total", "", numberAt(pool, "chunks"));
  typeLine(out, "mfbo_pool_queue_depth", "gauge");
  sample(out, "mfbo_pool_queue_depth", "", numberAt(pool, "queue_depth"));

  const Json& journal = health.at("eventlog");
  typeLine(out, "mfbo_eventlog_enabled", "gauge");
  sample(out, "mfbo_eventlog_enabled", "",
         journal.at("enabled").asBool() ? 1.0 : 0.0);
  typeLine(out, "mfbo_eventlog_recorded_total", "counter");
  sample(out, "mfbo_eventlog_recorded_total", "",
         numberAt(journal, "recorded"));
  typeLine(out, "mfbo_eventlog_dropped_total", "counter");
  sample(out, "mfbo_eventlog_dropped_total", "",
         numberAt(journal, "dropped"));
  typeLine(out, "mfbo_eventlog_skipped_in_region_total", "counter");
  sample(out, "mfbo_eventlog_skipped_in_region_total", "",
         numberAt(journal, "skipped_in_region"));
  return out;
}

namespace {

void writeWholeFile(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr)
    throw std::runtime_error("health: cannot open '" + path +
                             "' for writing");
  const bool wrote =
      std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
      std::fputc('\n', f) != EOF;
  const bool ok = (std::fclose(f) == 0) && wrote;
  if (!ok)
    throw std::runtime_error("health: failed to write '" + path + "'");
}

}  // namespace

void writeHealthFiles(const Json& health, const std::string& path) {
  const memstats::PauseScope alloc_pause;
  writeWholeFile(path, health.dump());
  // The exposition re-derives from the same document, so the two files
  // can never disagree about a value.
  std::string prom = healthExposition(health);
  // healthExposition ends every line with '\n'; writeWholeFile appends a
  // final newline for the JSON file, so trim ours to avoid a blank line.
  if (!prom.empty() && prom.back() == '\n') prom.pop_back();
  writeWholeFile(path + ".prom", prom);
}

}  // namespace mfbo::service
