#include "service/session_manager.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <utility>

#include "common/check.h"
#include "common/eventlog.h"
#include "common/memstats.h"
#include "common/parallel.h"

namespace mfbo::service {

namespace {

/// Whole-file read; nullopt when the file does not exist. Short reads and
/// IO errors on an existing file are a ContractViolation — a half-written
/// recovery document must fail loudly, not parse as garbage.
std::optional<std::string> readFileIfExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::string text;
  char buffer[4096];
  for (;;) {
    const std::size_t got = std::fread(buffer, 1, sizeof(buffer), f);
    text.append(buffer, got);
    if (got < sizeof(buffer)) break;
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  MFBO_CHECK(ok, "failed to read session recovery file '", path, "'");
  return text;
}

/// Crash-safe write: the document lands under a temporary name and is
/// renamed over the target, so a kill mid-write leaves either the old
/// boundary or the new one on disk — never a torn file.
void writeFileAtomic(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  MFBO_CHECK(f != nullptr, "cannot open '", tmp, "' for writing");
  const bool wrote =
      std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
      std::fputc('\n', f) != EOF;
  const bool ok = (std::fclose(f) == 0) && wrote;
  MFBO_CHECK(ok, "failed to write session recovery file '", tmp, "'");
  MFBO_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
             "failed to publish session recovery file '", path, "'");
}

}  // namespace

SessionManager::SessionManager(SessionManagerOptions options)
    : options_(std::move(options)) {
  MFBO_CHECK(options_.checkpoint_every >= 1,
             "checkpoint_every must be >= 1");
  if (persistenceEnabled()) {
    std::error_code ec;
    std::filesystem::create_directories(options_.checkpoint_dir, ec);
    MFBO_CHECK(!ec, "cannot create checkpoint directory '",
               options_.checkpoint_dir, "': ", ec.message());
  }
}

Session& SessionManager::create(SessionSpec spec) {
  MFBO_CHECK(find(spec.id) == nullptr, "session id '", spec.id,
             "' already exists");
  auto session = std::make_unique<Session>(std::move(spec));
  if (persistenceEnabled()) {
    // Recovery is id-keyed, never directory-scanned: filesystem iteration
    // order is unspecified, and the set of sessions to serve is the
    // caller's knowledge, not the disk's. A completed run is adopted from
    // its result document; an in-flight one replays its last checkpoint.
    // Either path throwing (tampered bytes, foreign envelope, replay
    // mismatch) aborts only THIS create() — the manager and its other
    // sessions are untouched.
    const memstats::PauseScope alloc_pause;
    if (const auto result = readFileIfExists(resultPath(session->id()))) {
      session->adoptResult(Json::parse(*result));
    } else if (const auto ckpt =
                   readFileIfExists(checkpointPath(session->id()))) {
      session->restore(Json::parse(*ckpt));
    }
  }
  sessions_.push_back(std::move(session));
  return *sessions_.back();
}

Session& SessionManager::session(const std::string& id) {
  return mustFind(id);
}

const Session* SessionManager::find(const std::string& id) const {
  for (const auto& session : sessions_)
    if (session->id() == id) return session.get();
  return nullptr;
}

std::vector<std::string> SessionManager::ids() const {
  std::vector<std::string> out;
  out.reserve(sessions_.size());
  for (const auto& session : sessions_) out.push_back(session->id());
  return out;
}

std::size_t SessionManager::stepRound() {
  std::size_t stepped = 0;
  for (const auto& session : sessions_) {
    if (session->status() != SessionStatus::kRunning) continue;
    session->step();
    ++stepped;
    persistOnSchedule(*session);
  }
  if (stepped > 0) ++rounds_;
  return stepped;
}

std::size_t SessionManager::runAll() {
  std::size_t rounds = 0;
  while (stepRound() > 0) ++rounds;
  return rounds;
}

void SessionManager::pause(const std::string& id) { mustFind(id).pause(); }

void SessionManager::resume(const std::string& id) { mustFind(id).resume(); }

void SessionManager::persist(const std::string& id) {
  MFBO_CHECK(persistenceEnabled(),
             "persist() without a checkpoint directory");
  persistNow(mustFind(id));
}

void SessionManager::destroy(const std::string& id) {
  for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
    if ((*it)->id() != id) continue;
    {
      const eventlog::ScopedSession journal_label(id);
      eventlog::record(eventlog::EventKind::kSessionDestroy, nullptr,
                       nullptr, static_cast<std::int64_t>((*it)->steps()));
    }
    sessions_.erase(it);
    if (persistenceEnabled()) {
      // Destroy means "forget": a later create() of the same id must start
      // fresh, not resurrect this session's state. Missing files are fine.
      std::remove(checkpointPath(id).c_str());
      std::remove(resultPath(id).c_str());
    }
    return;
  }
  MFBO_CHECK(false, "unknown session id '", id, "'");
}

Session& SessionManager::mustFind(const std::string& id) {
  for (const auto& session : sessions_)
    if (session->id() == id) return *session;
  MFBO_CHECK(false, "unknown session id '", id, "'");
  std::abort();  // unreachable: MFBO_CHECK(false) throws
}

std::string SessionManager::checkpointPath(const std::string& id) const {
  return options_.checkpoint_dir + "/" + id + ".ckpt.json";
}

std::string SessionManager::resultPath(const std::string& id) const {
  return options_.checkpoint_dir + "/" + id + ".result.json";
}

void SessionManager::persistOnSchedule(Session& session) {
  if (!persistenceEnabled()) return;
  if (session.done() || session.steps() % options_.checkpoint_every == 0)
    persistNow(session);
}

void SessionManager::persistNow(Session& session) {
  // Persistence is service machinery; its allocations stay invisible to
  // the per-span accounting so checkpointed and unmonitored runs produce
  // identical session artifacts.
  const memstats::PauseScope alloc_pause;
  const eventlog::ScopedSession journal_label(session.id());
  if (session.done()) {
    writeFileAtomic(resultPath(session.id()), session.resultJson().dump());
    // The checkpoint is superseded; removing it keeps recovery single-path
    // (result wins) and the directory tidy. It may never have existed.
    std::remove(checkpointPath(session.id()).c_str());
    eventlog::record(eventlog::EventKind::kCheckpointPersist, "result",
                     nullptr, static_cast<std::int64_t>(session.steps()));
  } else {
    writeFileAtomic(checkpointPath(session.id()),
                    session.checkpoint().dump());
    eventlog::record(eventlog::EventKind::kCheckpointPersist, "checkpoint",
                     nullptr, static_cast<std::int64_t>(session.steps()));
  }
  session.notePersisted();
  // Snapshot the journal alongside the boundary: a fleet killed between
  // persists still leaves its last persisted window on disk even when no
  // signal handler got to run. No-op without a configured dump_dir.
  eventlog::dumpFlightRecorder();
}

Json SessionManager::healthJson() {
  const memstats::PauseScope alloc_pause;
  Json doc = Json::object();
  doc.set("format", "mfbo-health");
  doc.set("version", 1);
  doc.set("rounds", static_cast<std::size_t>(rounds_));
  Json session_arr = Json::array();
  for (const auto& session : sessions_)
    session_arr.push(session->healthJson());
  doc.set("sessions", std::move(session_arr));
  const parallel::PoolStats pool = parallel::poolStats();
  Json pool_obj = Json::object();
  pool_obj.set("workers", pool.workers);
  pool_obj.set("regions", static_cast<std::size_t>(pool.regions));
  pool_obj.set("pooled_regions",
               static_cast<std::size_t>(pool.pooled_regions));
  pool_obj.set("chunks", static_cast<std::size_t>(pool.chunks));
  pool_obj.set("queue_depth", static_cast<std::size_t>(pool.queue_depth));
  doc.set("pool", std::move(pool_obj));
  const eventlog::Stats journal = eventlog::stats();
  Json journal_obj = Json::object();
  journal_obj.set("enabled", eventlog::enabled());
  journal_obj.set("recorded", static_cast<std::size_t>(journal.recorded));
  journal_obj.set("dropped", static_cast<std::size_t>(journal.dropped));
  journal_obj.set("skipped_in_region",
                  static_cast<std::size_t>(journal.skipped_in_region));
  doc.set("eventlog", std::move(journal_obj));
  return doc;
}

}  // namespace mfbo::service
