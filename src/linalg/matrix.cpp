#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

namespace mfbo::linalg {

// mfbo-lint: allow(C001) — Matrix(n, n) validates on its first statement
Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Vector Matrix::row(std::size_t r) const {
  MFBO_CHECK(r < rows_, "row ", r, " out of range [0,", rows_, ")");
  Vector out(cols_);
  for (std::size_t c = 0; c < cols_; ++c) out[c] = (*this)(r, c);
  return out;
}

Vector Matrix::col(std::size_t c) const {
  MFBO_CHECK(c < cols_, "col ", c, " out of range [0,", cols_, ")");
  Vector out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

void Matrix::setRow(std::size_t r, const Vector& v) {
  MFBO_CHECK(r < rows_, "row ", r, " out of range [0,", rows_, ")");
  MFBO_CHECK(v.size() == cols_, "vector size ", v.size(),
             " does not match cols ", cols_);
  for (std::size_t c = 0; c < cols_; ++c) (*this)(r, c) = v[c];
}

void Matrix::setCol(std::size_t c, const Vector& v) {
  MFBO_CHECK(c < cols_, "col ", c, " out of range [0,", cols_, ")");
  MFBO_CHECK(v.size() == rows_, "vector size ", v.size(),
             " does not match rows ", rows_);
  for (std::size_t r = 0; r < rows_; ++r) (*this)(r, c) = v[r];
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  MFBO_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_, "shape mismatch: ",
             rows_, "x", cols_, " vs ", rhs.rows_, "x", rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  MFBO_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_, "shape mismatch: ",
             rows_, "x", cols_, " vs ", rhs.rows_, "x", rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

double Matrix::frobeniusNorm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

bool Matrix::allFinite() const {
  return std::all_of(data_.begin(), data_.end(),
                     [](double v) { return std::isfinite(v); });
}

double Matrix::maxAbsDiff(const Matrix& a, const Matrix& b) {
  MFBO_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
             "shape mismatch: ", a.rows(), "x", a.cols(), " vs ", b.rows(),
             "x", b.cols());
  double m = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i)
    m = std::max(m, std::abs(a.data_[i] - b.data_[i]));
  return m;
}

Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
Matrix operator*(Matrix m, double s) { return m *= s; }
Matrix operator*(double s, Matrix m) { return m *= s; }

Matrix operator*(const Matrix& a, const Matrix& b) {
  MFBO_CHECK(a.cols() == b.rows(), "inner dimension mismatch: ", a.cols(),
             " vs ", b.rows());
  Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) out(i, j) += aik * b(k, j);
    }
  }
  return out;
}

Vector operator*(const Matrix& m, const Vector& v) {
  MFBO_CHECK(m.cols() == v.size(), "inner dimension mismatch: ", m.cols(),
             " vs ", v.size());
  Vector out(m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < m.cols(); ++c) acc += m(r, c) * v[c];
    out[r] = acc;
  }
  return out;
}

Matrix gramTN(const Matrix& a, const Matrix& b) {
  MFBO_CHECK(a.rows() == b.rows(), "row-count mismatch: ", a.rows(), " vs ",
             b.rows());
  Matrix out(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k)
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double aki = a(k, i);
      if (aki == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) out(i, j) += aki * b(k, j);
    }
  return out;
}

LuFactor::LuFactor(Matrix a) : lu_(std::move(a)), perm_(lu_.rows()) {
  MFBO_CHECK(lu_.rows() == lu_.cols(), "matrix must be square, got ",
             lu_.rows(), "x", lu_.cols());
  MFBO_CHECK(lu_.rows() > 0, "matrix must be non-empty");
  MFBO_CHECK(lu_.allFinite(), "matrix has non-finite entries");
  const std::size_t n = lu_.rows();
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: bring the largest remaining |entry| in column k up.
    std::size_t pivot = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = std::abs(lu_(r, k));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-300)
      throw std::runtime_error("LuFactor: matrix is numerically singular");
    if (pivot != k) {
      std::swap(perm_[pivot], perm_[k]);
      for (std::size_t c = 0; c < n; ++c)
        std::swap(lu_(pivot, c), lu_(k, c));
    }
    const double inv_piv = 1.0 / lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = lu_(r, k) * inv_piv;
      lu_(r, k) = factor;
      if (factor == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c)
        lu_(r, c) -= factor * lu_(k, c);
    }
  }
}

Vector LuFactor::solve(const Vector& b) const {
  const std::size_t n = dim();
  MFBO_CHECK(b.size() == n, "rhs size ", b.size(), " does not match dim ", n);
  Vector x(n);
  // Forward substitution with permuted RHS (L has unit diagonal).
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  // Backward substitution with U.
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
  return x;
}

Vector luSolve(Matrix a, Vector b) {
  return LuFactor(std::move(a)).solve(b);
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    os << (r == 0 ? "[[" : " [");
    for (std::size_t c = 0; c < m.cols(); ++c) {
      if (c) os << ", ";
      os << m(r, c);
    }
    os << (r + 1 == m.rows() ? "]]" : "]\n");
  }
  return os;
}

}  // namespace mfbo::linalg
