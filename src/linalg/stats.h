// mfbo::linalg — scalar statistics used by the BO layer.
//
// Normal pdf/cdf back the Expected Improvement and Probability of
// Feasibility formulas (paper eqs. 5-6); Standardizer implements the z-score
// output normalization applied before GP fitting; summary() produces the
// mean/median/best/worst rows of the paper's result tables.
#pragma once

#include <cstddef>
#include <vector>

namespace mfbo::linalg {

/// Standard normal probability density φ(x).
double normalPdf(double x);

/// Standard normal cumulative distribution Φ(x).
double normalCdf(double x);

/// log Φ(x), numerically stable over the whole real line. Φ(x) itself
/// underflows to 0 below x ≈ −38, flattening any product of tail
/// probabilities (the wEI feasibility weights); this stays finite and
/// strictly monotone arbitrarily deep into the tail via the Mills-ratio
/// asymptotic expansion.
double logNormalCdf(double x);

/// Inverse standard normal CDF (Acklam's rational approximation,
/// |error| < 1.2e-9 over (0,1)). Throws std::domain_error outside (0,1).
double normalQuantile(double p);

/// Sample mean; requires non-empty input.
double mean(const std::vector<double>& v);

/// Unbiased sample variance (n-1 denominator); returns 0 for n < 2.
double variance(const std::vector<double>& v);

/// Sample standard deviation.
double stddev(const std::vector<double>& v);

/// Median (average of middle two for even n); requires non-empty input.
double median(std::vector<double> v);

/// mean/median/best/worst summary of repeated optimization runs, matching
/// the rows of the paper's Tables 1-2. `lower_is_better` selects which
/// extreme counts as "best".
struct RunSummary {
  double mean = 0.0;
  double median = 0.0;
  double best = 0.0;
  double worst = 0.0;
  double stddev = 0.0;
};
RunSummary summarizeRuns(const std::vector<double>& values,
                         bool lower_is_better);

/// Affine map y ↦ (y − mean)/sd fitted on a sample. GP outputs are
/// standardized with this before hyperparameter training; predictions are
/// mapped back with unapply()/unapplyVariance().
class Standardizer {
 public:
  Standardizer() = default;
  /// Fit on a sample. A degenerate (constant) sample gets sd = 1 so that
  /// apply() stays well-defined.
  explicit Standardizer(const std::vector<double>& sample);

  double apply(double y) const { return (y - mean_) / sd_; }
  double unapply(double z) const { return z * sd_ + mean_; }
  /// Map a variance from standardized space back to original units.
  double unapplyVariance(double var) const { return var * sd_ * sd_; }

  double mean() const { return mean_; }
  double sd() const { return sd_; }

 private:
  double mean_ = 0.0;
  double sd_ = 1.0;
};

}  // namespace mfbo::linalg
