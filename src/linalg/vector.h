// mfbo::linalg — dense real vector.
//
// A thin, bounds-checked wrapper around a contiguous buffer of doubles with
// the arithmetic the GP / BO layers need. Deliberately minimal: no
// expression templates, no views — problem sizes in this library are a few
// hundred at most, and clarity beats cleverness at that scale.
#pragma once

#include <cmath>
#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <vector>

#include "common/check.h"

namespace mfbo::linalg {

/// Dense vector of doubles.
///
/// Invariant: size() equals the logical dimension; all elements are finite
/// unless the caller deliberately stores non-finite values (the library never
/// does).
class Vector {
 public:
  Vector() = default;
  /// Zero-initialized vector of dimension @p n.
  explicit Vector(std::size_t n) : data_(n, 0.0) {}
  /// Vector of dimension @p n with every element set to @p value.
  Vector(std::size_t n, double value) : data_(n, value) {}
  Vector(std::initializer_list<double> init) : data_(init) {}
  explicit Vector(std::vector<double> values) : data_(std::move(values)) {}

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  // Element access is bounds-checked in every build type (not just debug):
  // an out-of-range index throws mfbo::ContractViolation.
  double& operator[](std::size_t i) {
    MFBO_CHECK(i < data_.size(), "index ", i, " out of range [0,",
               data_.size(), ")");
    return data_[i];
  }
  double operator[](std::size_t i) const {
    MFBO_CHECK(i < data_.size(), "index ", i, " out of range [0,",
               data_.size(), ")");
    return data_[i];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  const std::vector<double>& raw() const { return data_; }

  Vector& operator+=(const Vector& rhs);
  Vector& operator-=(const Vector& rhs);
  Vector& operator*=(double s);
  Vector& operator/=(double s);

  /// Euclidean norm.
  double norm() const;
  /// Squared Euclidean norm.
  double squaredNorm() const;
  /// Sum of elements.
  double sum() const;
  /// Arithmetic mean; requires non-empty.
  double mean() const;
  /// Largest element; requires non-empty.
  double max() const;
  /// Smallest element; requires non-empty.
  double min() const;
  /// Index of the smallest element; requires non-empty.
  std::size_t argmin() const;
  /// Index of the largest element; requires non-empty.
  std::size_t argmax() const;
  /// True if every element is finite.
  bool allFinite() const;

  /// Append one element (used when growing training sets incrementally).
  void push_back(double v) { data_.push_back(v); }

 private:
  std::vector<double> data_;
};

Vector operator+(Vector lhs, const Vector& rhs);
Vector operator-(Vector lhs, const Vector& rhs);
Vector operator*(Vector v, double s);
Vector operator*(double s, Vector v);
Vector operator/(Vector v, double s);
Vector operator-(Vector v);

/// Dot product; dimensions must agree.
double dot(const Vector& a, const Vector& b);

/// Element-wise product.
Vector cwiseProduct(const Vector& a, const Vector& b);

/// Maximum absolute difference between two equally sized vectors.
double maxAbsDiff(const Vector& a, const Vector& b);

std::ostream& operator<<(std::ostream& os, const Vector& v);

}  // namespace mfbo::linalg
