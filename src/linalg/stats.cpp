#include "linalg/stats.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.h"

namespace mfbo::linalg {

double normalPdf(double x) {
  return std::exp(-0.5 * x * x) / std::sqrt(2.0 * std::numbers::pi);
}

double normalCdf(double x) {
  return 0.5 * std::erfc(-x / std::numbers::sqrt2);
}

double logNormalCdf(double x) {
  // Φ(x) ≥ ½ here: log1p on the complement keeps full precision where
  // log(Φ) would evaluate log of a number within rounding of 1.
  if (x >= 0.0) return std::log1p(-0.5 * std::erfc(x / std::numbers::sqrt2));
  // erfc is accurate (and far from underflow) down to x = −25, so the
  // direct evaluation is exact to working precision on this range.
  if (x > -25.0) return std::log(0.5 * std::erfc(-x / std::numbers::sqrt2));
  // Deep tail: Mills-ratio asymptotic
  //   Φ(x) = φ(x)/(−x) · (1 − 1/x² + 3/x⁴ − 15/x⁶ + 105/x⁸ + O(x⁻¹⁰)),
  // relative error < 945/x¹⁰ ≈ 1e-11 at the x = −25 crossover.
  const double x2 = x * x;
  const double x4 = x2 * x2;
  const double series =
      -1.0 / x2 + 3.0 / x4 - 15.0 / (x4 * x2) + 105.0 / (x4 * x4);
  return -0.5 * x2 - 0.5 * std::log(2.0 * std::numbers::pi) -
         std::log(-x) + std::log1p(series);
}

double normalQuantile(double p) {
  MFBO_CHECK(p > 0.0 && p < 1.0, "p must be in (0,1), got ", p);
  // Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  double q, r, x;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    q = p - 0.5;
    r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
          c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  return x;
}

double mean(const std::vector<double>& v) {
  MFBO_CHECK(!v.empty(), "mean of empty sample");
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc / static_cast<double>(v.size());
}

double variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return acc / static_cast<double>(v.size() - 1);
}

double stddev(const std::vector<double>& v) { return std::sqrt(variance(v)); }

double median(std::vector<double> v) {
  MFBO_CHECK(!v.empty(), "median of empty sample");
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<long>(mid), v.end());
  double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  const double lo =
      *std::max_element(v.begin(), v.begin() + static_cast<long>(mid));
  return 0.5 * (lo + hi);
}

RunSummary summarizeRuns(const std::vector<double>& values,
                         bool lower_is_better) {
  MFBO_CHECK(!values.empty(), "no runs to summarize");
  RunSummary s;
  s.mean = mean(values);
  s.median = median(values);
  s.stddev = stddev(values);
  const auto [mn, mx] = std::minmax_element(values.begin(), values.end());
  s.best = lower_is_better ? *mn : *mx;
  s.worst = lower_is_better ? *mx : *mn;
  return s;
}

Standardizer::Standardizer(const std::vector<double>& sample) {
  MFBO_CHECK(!sample.empty(), "empty standardization sample");
  mean_ = mfbo::linalg::mean(sample);
  const double sd = mfbo::linalg::stddev(sample);
  sd_ = sd > 1e-12 ? sd : 1.0;
}

}  // namespace mfbo::linalg
