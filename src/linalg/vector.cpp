#include "linalg/vector.h"

#include <algorithm>
#include <numeric>
#include <ostream>

namespace mfbo::linalg {

Vector& Vector::operator+=(const Vector& rhs) {
  MFBO_CHECK(size() == rhs.size(), "dimension mismatch: ", size(), " vs ",
             rhs.size());
  for (std::size_t i = 0; i < size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& rhs) {
  MFBO_CHECK(size() == rhs.size(), "dimension mismatch: ", size(), " vs ",
             rhs.size());
  for (std::size_t i = 0; i < size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Vector& Vector::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Vector& Vector::operator/=(double s) {
  for (double& v : data_) v /= s;
  return *this;
}

double Vector::norm() const { return std::sqrt(squaredNorm()); }

double Vector::squaredNorm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return acc;
}

double Vector::sum() const {
  return std::accumulate(data_.begin(), data_.end(), 0.0);
}

double Vector::mean() const {
  MFBO_CHECK(!data_.empty(), "mean of empty vector");
  return sum() / static_cast<double>(data_.size());
}

double Vector::max() const {
  MFBO_CHECK(!data_.empty(), "max of empty vector");
  return *std::max_element(data_.begin(), data_.end());
}

double Vector::min() const {
  MFBO_CHECK(!data_.empty(), "min of empty vector");
  return *std::min_element(data_.begin(), data_.end());
}

std::size_t Vector::argmin() const {
  MFBO_CHECK(!data_.empty(), "argmin of empty vector");
  return static_cast<std::size_t>(
      std::min_element(data_.begin(), data_.end()) - data_.begin());
}

std::size_t Vector::argmax() const {
  MFBO_CHECK(!data_.empty(), "argmax of empty vector");
  return static_cast<std::size_t>(
      std::max_element(data_.begin(), data_.end()) - data_.begin());
}

bool Vector::allFinite() const {
  return std::all_of(data_.begin(), data_.end(),
                     [](double v) { return std::isfinite(v); });
}

Vector operator+(Vector lhs, const Vector& rhs) { return lhs += rhs; }
Vector operator-(Vector lhs, const Vector& rhs) { return lhs -= rhs; }
Vector operator*(Vector v, double s) { return v *= s; }
Vector operator*(double s, Vector v) { return v *= s; }
Vector operator/(Vector v, double s) { return v /= s; }

Vector operator-(Vector v) {
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = -v[i];
  return v;
}

double dot(const Vector& a, const Vector& b) {
  MFBO_CHECK(a.size() == b.size(), "dimension mismatch: ", a.size(), " vs ",
             b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

Vector cwiseProduct(const Vector& a, const Vector& b) {
  MFBO_CHECK(a.size() == b.size(), "dimension mismatch: ", a.size(), " vs ",
             b.size());
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  return out;
}

double maxAbsDiff(const Vector& a, const Vector& b) {
  MFBO_CHECK(a.size() == b.size(), "dimension mismatch: ", a.size(), " vs ",
             b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

std::ostream& operator<<(std::ostream& os, const Vector& v) {
  os << '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) os << ", ";
    os << v[i];
  }
  return os << ']';
}

}  // namespace mfbo::linalg
