// mfbo::linalg — dense row-major real matrix.
//
// Covers exactly what exact GP regression and a small MNA circuit solver
// need: products, transpose, row/col access, and LU solving (for the
// non-symmetric MNA Jacobians). Symmetric positive-definite paths live in
// cholesky.h.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "common/check.h"
#include "linalg/vector.h"

namespace mfbo::linalg {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  /// Zero-initialized rows×cols matrix.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}
  /// rows×cols matrix with every entry set to @p value.
  Matrix(std::size_t rows, std::size_t cols, double value)
      : rows_(rows), cols_(cols), data_(rows * cols, value) {}

  /// Identity matrix of dimension n.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  // Element access sits inside O(n³) kernels, so it is checked only in
  // debug / hardened builds (MFBO_DCHECK); the bulk accessors below
  // (row/col/setRow/setCol) are checked in every build type.
  double& operator()(std::size_t r, std::size_t c) {
    MFBO_DCHECK(r < rows_ && c < cols_, "(", r, ",", c, ") out of ", rows_,
                "x", cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    MFBO_DCHECK(r < rows_ && c < cols_, "(", r, ",", c, ") out of ", rows_,
                "x", cols_);
    return data_[r * cols_ + c];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Copy of row r as a Vector.
  Vector row(std::size_t r) const;
  /// Copy of column c as a Vector.
  Vector col(std::size_t c) const;
  /// Overwrite row r with v (dimension must match cols()).
  void setRow(std::size_t r, const Vector& v);
  /// Overwrite column c with v (dimension must match rows()).
  void setCol(std::size_t c, const Vector& v);

  Matrix transpose() const;

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);

  /// Frobenius norm.
  double frobeniusNorm() const;
  /// True if every entry is finite.
  bool allFinite() const;
  /// Maximum |a_ij - b_ij| over all entries; dimensions must agree.
  static double maxAbsDiff(const Matrix& a, const Matrix& b);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

Matrix operator+(Matrix lhs, const Matrix& rhs);
Matrix operator-(Matrix lhs, const Matrix& rhs);
Matrix operator*(Matrix m, double s);
Matrix operator*(double s, Matrix m);

/// Matrix-matrix product (naive triple loop; fine for N ≲ 1000).
Matrix operator*(const Matrix& a, const Matrix& b);
/// Matrix-vector product.
Vector operator*(const Matrix& m, const Vector& v);

/// a^T * b without forming the transpose.
Matrix gramTN(const Matrix& a, const Matrix& b);

/// Solve A x = b by partial-pivot LU. Throws std::runtime_error when A is
/// numerically singular. A is square; used by the MNA circuit solver.
Vector luSolve(Matrix a, Vector b);

/// LU factorization with partial pivoting, reusable across multiple
/// right-hand sides (the transient solver re-solves the same Jacobian).
class LuFactor {
 public:
  /// Factor @p a in place. Throws std::runtime_error if singular.
  explicit LuFactor(Matrix a);

  /// Solve A x = b for the factored A.
  Vector solve(const Vector& b) const;

  std::size_t dim() const { return lu_.rows(); }

 private:
  Matrix lu_;                  // combined L (unit diagonal) and U factors
  std::vector<std::size_t> perm_;  // row permutation
};

std::ostream& operator<<(std::ostream& os, const Matrix& m);

}  // namespace mfbo::linalg
