#include "linalg/sampling.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace mfbo::linalg {

Box::Box(Vector lo, Vector hi) : lower(std::move(lo)), upper(std::move(hi)) {
  MFBO_CHECK(lower.size() == upper.size(), "dimension mismatch: ",
             lower.size(), " vs ", upper.size());
  for (std::size_t i = 0; i < lower.size(); ++i)
    MFBO_CHECK(lower[i] <= upper[i], "lower bound ", lower[i],
               " exceeds upper bound ", upper[i], " in dimension ", i);
}

Box Box::unitCube(std::size_t d) {
  return Box(Vector(d, 0.0), Vector(d, 1.0));
}

Vector Box::clamp(Vector x) const {
  MFBO_DCHECK(x.size() == dim(), "point dim ", x.size(),
              " does not match box dim ", dim());
  for (std::size_t i = 0; i < dim(); ++i)
    x[i] = std::clamp(x[i], lower[i], upper[i]);
  return x;
}

bool Box::contains(const Vector& x) const {
  MFBO_DCHECK(x.size() == dim(), "point dim ", x.size(),
              " does not match box dim ", dim());
  for (std::size_t i = 0; i < dim(); ++i)
    if (x[i] < lower[i] || x[i] > upper[i]) return false;
  return true;
}

Vector Box::fromUnit(const Vector& u) const {
  MFBO_DCHECK(u.size() == dim(), "point dim ", u.size(),
              " does not match box dim ", dim());
  Vector x(dim());
  for (std::size_t i = 0; i < dim(); ++i)
    x[i] = lower[i] + u[i] * (upper[i] - lower[i]);
  return x;
}

Vector Box::toUnit(const Vector& x) const {
  MFBO_DCHECK(x.size() == dim(), "point dim ", x.size(),
              " does not match box dim ", dim());
  Vector u(dim());
  for (std::size_t i = 0; i < dim(); ++i) {
    const double w = upper[i] - lower[i];
    u[i] = w > 0.0 ? (x[i] - lower[i]) / w : 0.0;
  }
  return u;
}

Vector Box::widths() const {
  Vector w(dim());
  for (std::size_t i = 0; i < dim(); ++i) w[i] = upper[i] - lower[i];
  return w;
}

std::vector<Vector> latinHypercube(std::size_t n, const Box& box, Rng& rng) {
  MFBO_CHECK(n >= 1 && box.dim() >= 1, "need n >= 1 samples (got ", n,
             ") in a non-empty box (dim ", box.dim(), ")");
  const std::size_t d = box.dim();
  std::vector<Vector> samples(n, Vector(d));
  std::vector<std::size_t> perm(n);
  for (std::size_t j = 0; j < d; ++j) {
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    rng.shuffle(perm);
    for (std::size_t i = 0; i < n; ++i) {
      const double u =
          (static_cast<double>(perm[i]) + rng.uniform()) /
          static_cast<double>(n);
      samples[i][j] = box.lower[j] + u * (box.upper[j] - box.lower[j]);
    }
  }
  return samples;
}

std::vector<Vector> uniformSamples(std::size_t n, const Box& box, Rng& rng) {
  MFBO_CHECK(box.dim() >= 1, "empty sampling box");
  std::vector<Vector> samples;
  samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    samples.push_back(box.fromUnit(rng.uniformVector(box.dim())));
  return samples;
}

Vector gaussianJitterInBox(const Vector& center, double relative_sd,
                           const Box& box, Rng& rng) {
  MFBO_CHECK(center.size() == box.dim(), "center dim ", center.size(),
             " does not match box dim ", box.dim());
  Vector x(center.size());
  for (std::size_t i = 0; i < center.size(); ++i) {
    const double sd = relative_sd * (box.upper[i] - box.lower[i]);
    x[i] = rng.normal(center[i], sd);
  }
  return box.clamp(std::move(x));
}

}  // namespace mfbo::linalg
