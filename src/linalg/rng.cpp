#include "linalg/rng.h"

#include <sstream>

#include "common/check.h"

namespace mfbo::linalg {

double Rng::uniform(double lo, double hi) {
  MFBO_CHECK(hi > lo, "empty uniform range [", lo, ", ", hi, ")");
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::normal(double mean, double sd) {
  MFBO_CHECK(sd >= 0.0, "negative standard deviation ", sd);
  return mean + sd * normal_(engine_);
}

std::size_t Rng::index(std::size_t n) {
  MFBO_CHECK(n >= 1, "empty index range");
  std::uniform_int_distribution<std::size_t> dist(0, n - 1);
  return dist(engine_);
}

Vector Rng::uniformVector(std::size_t d, double lo, double hi) {
  MFBO_CHECK(hi > lo, "empty uniform range [", lo, ", ", hi, ")");
  Vector v(d);
  for (std::size_t i = 0; i < d; ++i) v[i] = uniform(lo, hi);
  return v;
}

// mfbo-lint: allow(C001) — any d is a valid draw count, nothing to check
Vector Rng::normalVector(std::size_t d) {
  Vector v(d);
  for (std::size_t i = 0; i < d; ++i) v[i] = normal();
  return v;
}

std::vector<std::size_t> Rng::distinctIndices(std::size_t k, std::size_t n,
                                              std::size_t exclude) {
  const std::size_t available = exclude < n ? n - 1 : n;
  MFBO_CHECK(k <= available, "need ", k, " distinct indices but only ",
             available, " candidates");
  std::vector<std::size_t> out;
  out.reserve(k);
  while (out.size() < k) {
    const std::size_t candidate = index(n);
    if (candidate == exclude) continue;
    bool seen = false;
    for (std::size_t s : out)
      if (s == candidate) {
        seen = true;
        break;
      }
    if (!seen) out.push_back(candidate);
  }
  return out;
}

Rng Rng::fork() {
  // Derive a decorrelated child seed from this engine's stream.
  const std::uint64_t child_seed =
      engine_() ^ 0x9E3779B97F4A7C15ull;
  return Rng(child_seed);
}

std::string Rng::saveState() const {
  // The stream operators of mt19937_64 and normal_distribution serialize
  // their exact internal state (the standard requires the round trip to
  // reproduce the draw sequence); both use space-separated decimal tokens.
  std::ostringstream os;
  os << "rng-v1 " << seed_ << ' ' << engine_ << ' ' << normal_;
  return os.str();
}

void Rng::restoreState(const std::string& state) {
  std::istringstream is(state);
  std::string tag;
  is >> tag;
  MFBO_CHECK(is && tag == "rng-v1", "unrecognized rng state tag '", tag, "'");
  std::uint64_t seed = 0;
  std::mt19937_64 engine;
  std::normal_distribution<double> normal{0.0, 1.0};
  is >> seed >> engine >> normal;
  MFBO_CHECK(!is.fail(), "malformed rng state token");
  std::string trailing;
  is >> trailing;
  MFBO_CHECK(trailing.empty(), "trailing garbage in rng state token: '",
             trailing, "'");
  seed_ = seed;
  engine_ = engine;
  normal_ = normal;
}

Rng Rng::split(std::uint64_t stream) const {
  // SplitMix64 finalizer over the (seed, stream) pair: adjacent streams map
  // to well-separated seeds, and the parent engine is left untouched.
  std::uint64_t z = seed_ + 0x9E3779B97F4A7C15ull * (stream + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return Rng(z ^ (z >> 31));
}

}  // namespace mfbo::linalg
