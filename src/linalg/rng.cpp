#include "linalg/rng.h"

#include <cassert>
#include <stdexcept>

namespace mfbo::linalg {

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::normal(double mean, double sd) {
  assert(sd >= 0.0);
  return mean + sd * normal_(engine_);
}

std::size_t Rng::index(std::size_t n) {
  assert(n >= 1);
  std::uniform_int_distribution<std::size_t> dist(0, n - 1);
  return dist(engine_);
}

Vector Rng::uniformVector(std::size_t d, double lo, double hi) {
  Vector v(d);
  for (std::size_t i = 0; i < d; ++i) v[i] = uniform(lo, hi);
  return v;
}

Vector Rng::normalVector(std::size_t d) {
  Vector v(d);
  for (std::size_t i = 0; i < d; ++i) v[i] = normal();
  return v;
}

std::vector<std::size_t> Rng::distinctIndices(std::size_t k, std::size_t n,
                                              std::size_t exclude) {
  const std::size_t available = exclude < n ? n - 1 : n;
  if (k > available)
    throw std::invalid_argument("Rng::distinctIndices: not enough candidates");
  std::vector<std::size_t> out;
  out.reserve(k);
  while (out.size() < k) {
    const std::size_t candidate = index(n);
    if (candidate == exclude) continue;
    bool seen = false;
    for (std::size_t s : out)
      if (s == candidate) {
        seen = true;
        break;
      }
    if (!seen) out.push_back(candidate);
  }
  return out;
}

Rng Rng::fork() {
  // Derive a decorrelated child seed from this engine's stream.
  const std::uint64_t child_seed =
      engine_() ^ 0x9E3779B97F4A7C15ull;
  return Rng(child_seed);
}

}  // namespace mfbo::linalg
