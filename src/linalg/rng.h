// mfbo::linalg — seeded random number generation.
//
// A single Rng object threads through every stochastic component (initial
// designs, MSP scatter, MC fidelity integration, DE mutation) so that whole
// synthesis runs are reproducible from one seed.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "linalg/vector.h"

namespace mfbo::linalg {

/// Seeded pseudo-random source used throughout the library.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0xC0FFEEu) : seed_(seed), engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Standard normal draw.
  double normal() { return normal_(engine_); }

  /// Normal draw with the given mean and standard deviation (sd ≥ 0).
  double normal(double mean, double sd);

  /// Uniform integer in [0, n-1]; n must be ≥ 1.
  std::size_t index(std::size_t n);

  /// Vector of d independent U[lo,hi) draws.
  Vector uniformVector(std::size_t d, double lo = 0.0, double hi = 1.0);

  /// Vector of d independent standard normal draws.
  Vector normalVector(std::size_t d);

  /// k distinct indices drawn from {0..n-1}, none equal to @p exclude
  /// (pass n or larger to exclude nothing). Requires enough candidates.
  std::vector<std::size_t> distinctIndices(std::size_t k, std::size_t n,
                                           std::size_t exclude);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = index(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Fork a child generator with an independent stream (for per-run seeding).
  /// Advances this generator, so successive forks differ.
  Rng fork();

  /// Deterministic per-index child stream for parallel loops: the child
  /// depends only on (construction seed, stream), is independent of call
  /// order, and never advances this generator — so task i gets the same
  /// stream whether the loop runs serially or on N threads, and sibling
  /// streams are decorrelated (SplitMix64 of the seed/stream pair).
  Rng split(std::uint64_t stream) const;

  /// Serialize the complete generator state — the construction seed (the
  /// base of every split() stream), the engine position, and the normal
  /// distribution's cached spare draw — to a printable token. Without the
  /// seed a reconstructed generator would resume the main stream correctly
  /// but hand out *different* split() streams, a bug that only surfaces
  /// once runs are checkpointed and resumed.
  std::string saveState() const;

  /// Reinstate a saveState() token exactly: subsequent draws and split()
  /// streams are byte-identical to the generator that produced the token.
  /// Rejects malformed tokens with ContractViolation.
  void restoreState(const std::string& state);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace mfbo::linalg
