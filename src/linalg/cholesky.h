// mfbo::linalg — Cholesky factorization for symmetric positive-definite
// matrices, with progressive jitter for the near-singular covariance
// matrices that exact GP regression routinely produces.
#pragma once

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace mfbo::linalg {

/// Lower-triangular Cholesky factor L of an SPD matrix A = L·Lᵀ.
///
/// GP covariance matrices frequently sit on the edge of positive
/// definiteness (duplicated inputs, tiny noise). factorWithJitter retries
/// with exponentially growing diagonal jitter, matching standard GP library
/// practice (GPy, GPML).
class Cholesky {
 public:
  /// Factor A exactly. Throws std::runtime_error if A is not SPD.
  static Cholesky factor(const Matrix& a);

  /// Factor A + jitter·I, escalating jitter from @p initial_jitter by 10×
  /// up to @p max_jitter until the factorization succeeds.
  /// Throws std::runtime_error if even the largest jitter fails.
  static Cholesky factorWithJitter(const Matrix& a,
                                   double initial_jitter = 1e-10,
                                   double max_jitter = 1e-4);

  /// Extend the factor by one row/column in O(n²): given the new column
  /// [b; c] of the extended matrix A' = [[A, b], [bᵀ, c]] (with @p b the
  /// cross terms against the existing rows and @p c the new diagonal,
  /// both *without* jitter — the jitter already baked into this factor is
  /// added to @p c internally so the extension stays consistent with the
  /// original factorization), grows L so that L·Lᵀ = A' + jitter·I.
  ///
  /// Returns false — leaving the factor untouched — when the extension is
  /// not positive definite at the current jitter level (a duplicated GP
  /// input, accumulated roundoff). The caller must then refactor the full
  /// extended matrix, typically through factorWithJitter's escalation
  /// ladder; appendRow never escalates jitter itself because a larger
  /// jitter on the new diagonal alone would no longer factor A + jitter·I.
  bool appendRow(const Vector& b, double c);

  /// Solve A x = b via two triangular solves.
  Vector solve(const Vector& b) const;

  /// Solve A X = B column-by-column.
  Matrix solveMatrix(const Matrix& b) const;

  /// Solve L y = b (forward substitution).
  Vector solveLower(const Vector& b) const;

  /// Solve Lᵀ x = y (backward substitution).
  Vector solveUpper(const Vector& y) const;

  /// log|A| = 2·Σ log L_ii — used directly in the GP marginal likelihood.
  double logDet() const;

  /// Explicit A⁻¹ (needed for the NLML gradient trace terms).
  Matrix inverse() const;

  const Matrix& lower() const { return l_; }
  std::size_t dim() const { return l_.rows(); }
  /// Jitter that was actually added to the diagonal (0 for factor()).
  double jitterUsed() const { return jitter_; }

 private:
  Cholesky(Matrix l, double jitter) : l_(std::move(l)), jitter_(jitter) {}
  /// Attempt the factorization; returns false on a non-positive pivot.
  static bool tryFactor(const Matrix& a, double jitter, Matrix& l_out);

  Matrix l_;
  double jitter_ = 0.0;
};

}  // namespace mfbo::linalg
