#include "linalg/cholesky.h"

#include <cmath>
#include <stdexcept>

#include "common/check.h"
#include "common/spans.h"
#include "common/telemetry.h"

namespace mfbo::linalg {

bool Cholesky::tryFactor(const Matrix& a, double jitter, Matrix& l_out) {
  const std::size_t n = a.rows();
  l_out = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j) + jitter;
    for (std::size_t k = 0; k < j; ++k) diag -= l_out(j, k) * l_out(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) return false;
    const double ljj = std::sqrt(diag);
    l_out(j, j) = ljj;
    const double inv_ljj = 1.0 / ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l_out(i, k) * l_out(j, k);
      l_out(i, j) = acc * inv_ljj;
    }
  }
  return true;
}

Cholesky Cholesky::factor(const Matrix& a) {
  MFBO_CHECK(a.rows() == a.cols(), "matrix must be square, got ", a.rows(),
             "x", a.cols());
  MFBO_CHECK(a.rows() > 0, "matrix must be non-empty");
  MFBO_CHECK(a.allFinite(), "matrix has non-finite entries");
  const spans::ScopedSpan factor_span("cholesky_factor");
  Matrix l;
  if (!tryFactor(a, 0.0, l))
    throw std::runtime_error("Cholesky: matrix is not positive definite");
  return Cholesky(std::move(l), 0.0);
}

Cholesky Cholesky::factorWithJitter(const Matrix& a, double initial_jitter,
                                    double max_jitter) {
  MFBO_CHECK(a.rows() == a.cols(), "matrix must be square, got ", a.rows(),
             "x", a.cols());
  MFBO_CHECK(a.rows() > 0, "matrix must be non-empty");
  MFBO_CHECK(a.allFinite(), "matrix has non-finite entries");
  const spans::ScopedSpan factor_span("cholesky_factor");
  Matrix l;
  if (tryFactor(a, 0.0, l)) return Cholesky(std::move(l), 0.0);
  // Invisible-at-runtime numerics made visible: every rung of the jitter
  // ladder is a near-singular Gram matrix the GP layer had to paper over.
  telemetry::Counter& jittered =
      telemetry::counter("linalg.cholesky.jittered_factorizations");
  telemetry::Counter& retries =
      telemetry::counter("linalg.cholesky.jitter_retries");
  telemetry::Counter& exhausted =
      telemetry::counter("linalg.cholesky.jitter_exhausted");
  jittered.add();
  // Scale jitter relative to the mean diagonal so the retry ladder is
  // meaningful for both unit-variance and raw-scale covariances.
  double diag_mean = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) diag_mean += a(i, i);
  diag_mean = std::abs(diag_mean) / static_cast<double>(a.rows());
  const double scale = diag_mean > 0.0 ? diag_mean : 1.0;
  for (double j = initial_jitter; j <= max_jitter * 1.0000001; j *= 10.0) {
    retries.add();
    spans::addCounter("jitter_retries");
    if (tryFactor(a, j * scale, l)) return Cholesky(std::move(l), j * scale);
  }
  exhausted.add();
  throw std::runtime_error(
      "Cholesky: matrix not positive definite even with maximum jitter");
}

bool Cholesky::appendRow(const Vector& b, double c) {
  const std::size_t n = dim();
  MFBO_CHECK(b.size() == n, "cross-term size ", b.size(),
             " does not match dim ", n);
  MFBO_CHECK(b.allFinite() && std::isfinite(c),
             "extension column has non-finite entries");
  const spans::ScopedSpan append_span("cholesky_append");
  telemetry::Counter& appended =
      telemetry::counter("linalg.cholesky.appended_rows");
  telemetry::Counter& rejected =
      telemetry::counter("linalg.cholesky.append_rejected");
  // New off-diagonal row: l = L⁻¹ b (forward substitution, O(n²)); new
  // pivot: c + jitter − ‖l‖². Identical arithmetic to what tryFactor would
  // perform on the extended matrix, so a successful append agrees with a
  // from-scratch refactorization up to summation-order roundoff.
  const Vector l = solveLower(b);
  const double pivot = c + jitter_ - l.squaredNorm();
  if (!(pivot > 0.0) || !std::isfinite(pivot)) {
    rejected.add();
    return false;
  }
  Matrix grown(n + 1, n + 1);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) grown(i, j) = l_(i, j);
  for (std::size_t j = 0; j < n; ++j) grown(n, j) = l[j];
  grown(n, n) = std::sqrt(pivot);
  l_ = std::move(grown);
  appended.add();
  return true;
}

Vector Cholesky::solveLower(const Vector& b) const {
  const std::size_t n = dim();
  MFBO_CHECK(b.size() == n, "rhs size ", b.size(), " does not match dim ", n);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t j = 0; j < i; ++j) acc -= l_(i, j) * y[j];
    y[i] = acc / l_(i, i);
  }
  return y;
}

Vector Cholesky::solveUpper(const Vector& y) const {
  const std::size_t n = dim();
  MFBO_CHECK(y.size() == n, "rhs size ", y.size(), " does not match dim ", n);
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= l_(j, ii) * x[j];
    x[ii] = acc / l_(ii, ii);
  }
  return x;
}

Vector Cholesky::solve(const Vector& b) const {
  return solveUpper(solveLower(b));
}

Matrix Cholesky::solveMatrix(const Matrix& b) const {
  MFBO_CHECK(b.rows() == dim(), "rhs rows ", b.rows(),
             " do not match dim ", dim());
  Matrix x(b.rows(), b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c)
    x.setCol(c, solve(b.col(c)));
  return x;
}

double Cholesky::logDet() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < dim(); ++i) acc += std::log(l_(i, i));
  return 2.0 * acc;
}

Matrix Cholesky::inverse() const {
  return solveMatrix(Matrix::identity(dim()));
}

}  // namespace mfbo::linalg
