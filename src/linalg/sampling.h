// mfbo::linalg — space-filling designs over box-constrained domains.
//
// Latin hypercube sampling seeds both the initial training sets (Algorithm 1
// step 1) and the random fraction of the multiple-starting-point scatter
// (paper §4.1).
#pragma once

#include <vector>

#include "linalg/rng.h"
#include "linalg/vector.h"

namespace mfbo::linalg {

/// Axis-aligned box [lower_i, upper_i]^d. The invariant lower ≤ upper
/// element-wise is checked on construction.
struct Box {
  Vector lower;
  Vector upper;

  Box() = default;
  Box(Vector lo, Vector hi);
  /// Unit cube [0,1]^d.
  static Box unitCube(std::size_t d);

  std::size_t dim() const { return lower.size(); }
  /// Clamp x into the box element-wise.
  Vector clamp(Vector x) const;
  /// True if x lies inside (inclusive).
  bool contains(const Vector& x) const;
  /// Map a point in [0,1]^d to this box.
  Vector fromUnit(const Vector& u) const;
  /// Map a point of this box to [0,1]^d (degenerate dims map to 0).
  Vector toUnit(const Vector& x) const;
  /// Side length per dimension.
  Vector widths() const;
};

/// n Latin-hypercube samples in @p box: each dimension is split into n
/// equal strata, each stratum is hit exactly once, positions within strata
/// and the pairing across dimensions are randomized.
std::vector<Vector> latinHypercube(std::size_t n, const Box& box, Rng& rng);

/// n independent uniform samples in @p box.
std::vector<Vector> uniformSamples(std::size_t n, const Box& box, Rng& rng);

/// Sample from an isotropic Gaussian ball centred at @p center with
/// per-dimension sd = @p relative_sd · box width, clamped into the box.
/// This is the "scatter a fraction of starts around τ" move of §4.1.
Vector gaussianJitterInBox(const Vector& center, double relative_sd,
                           const Box& box, Rng& rng);

}  // namespace mfbo::linalg
