// mfbo::gp — covariance functions.
//
// Two kernels cover the whole paper:
//  * SeArdKernel — the squared-exponential with per-dimension length scales
//    of eq. (2); used for every single-fidelity GP.
//  * NargpKernel — the nonlinear-fusion composite of eq. (9),
//    k_h(z, z') = k1(y_l, y_l')·k2(x, x') + k3(x, x'), evaluated on the
//    augmented input z = [x; f_l(x)].
//
// All hyperparameters live in log space so the trainer can optimize them
// unconstrained; gradients are with respect to the log parameters.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace mfbo::gp {

using linalg::Matrix;
using linalg::Vector;

/// Abstract stationary covariance function with trainable log-parameters.
class Kernel {
 public:
  virtual ~Kernel() = default;

  /// Dimensionality of the inputs this kernel accepts.
  virtual std::size_t inputDim() const = 0;
  /// Number of trainable (log-space) hyperparameters.
  virtual std::size_t numParams() const = 0;
  /// Current log-space hyperparameters.
  virtual Vector params() const = 0;
  /// Overwrite the log-space hyperparameters (size must match numParams()).
  virtual void setParams(const Vector& p) = 0;
  /// Human-readable name of parameter @p i (for diagnostics).
  virtual std::string paramName(std::size_t i) const = 0;

  /// Covariance k(a, b).
  virtual double eval(const Vector& a, const Vector& b) const = 0;

  /// Accumulate Σ_{ij} w_ij · ∂k(x_i, x_j)/∂θ into @p grad (size
  /// numParams()); w is symmetric. This is the contraction the exact NLML
  /// gradient needs: ∂NLML/∂θ = ½ tr(W · ∂K/∂θ) with W = K⁻¹ − ααᵀ.
  virtual void accumulateWeightedGrad(const std::vector<Vector>& x,
                                      const Matrix& w, Vector& grad) const = 0;

  /// Gram matrix K(X, X).
  Matrix gram(const std::vector<Vector>& x) const;
  /// Cross-covariances (k(x*, x_1), ..., k(x*, x_N)).
  Vector cross(const std::vector<Vector>& x, const Vector& x_star) const;

  virtual std::unique_ptr<Kernel> clone() const = 0;
};

/// Squared-exponential kernel with automatic relevance determination
/// (paper eq. 2): k(a,b) = σ_f² exp(−½ Σ_i (a_i−b_i)²/l_i²).
///
/// Parameters (log space): [log σ_f, log l_1, ..., log l_d].
class SeArdKernel final : public Kernel {
 public:
  /// Unit signal variance and all length scales = @p lengthscale.
  explicit SeArdKernel(std::size_t dim, double sigma_f = 1.0,
                       double lengthscale = 0.5);

  std::size_t inputDim() const override { return log_l_.size(); }
  std::size_t numParams() const override { return 1 + log_l_.size(); }
  Vector params() const override;
  void setParams(const Vector& p) override;
  std::string paramName(std::size_t i) const override;

  double eval(const Vector& a, const Vector& b) const override;
  void accumulateWeightedGrad(const std::vector<Vector>& x, const Matrix& w,
                              Vector& grad) const override;

  double sigmaF() const;
  double lengthscale(std::size_t i) const;

  std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<SeArdKernel>(*this);
  }

 private:
  double log_sigma_f_;
  Vector log_l_;
};

/// Nonlinear-fusion kernel of eq. (9) over augmented inputs z = [x; y_l]
/// (the low-fidelity posterior mean appended as the last coordinate):
///
///   k(z, z') = k1(y_l, y_l') · k2(x, x') + k3(x, x')
///
/// k1 is SE over the single y_l coordinate with unit variance (its scale
/// would be redundant with k2's σ_f); k2 and k3 are SE-ARD over x.
///
/// Parameters (log space):
///   [log l_ρ,  log σ_f2, log l2_1..d,  log σ_f3, log l3_1..d]
class NargpKernel final : public Kernel {
 public:
  /// @p x_dim is the dimensionality of the design variables (so inputDim()
  /// is x_dim + 1).
  explicit NargpKernel(std::size_t x_dim);

  std::size_t inputDim() const override { return x_dim_ + 1; }
  std::size_t numParams() const override { return 3 + 2 * x_dim_; }
  Vector params() const override;
  void setParams(const Vector& p) override;
  std::string paramName(std::size_t i) const override;

  double eval(const Vector& a, const Vector& b) const override;
  void accumulateWeightedGrad(const std::vector<Vector>& x, const Matrix& w,
                              Vector& grad) const override;

  std::size_t xDim() const { return x_dim_; }

  // Fast-path accessors for the NARGP Monte-Carlo prediction: the x-parts
  // k2/k3 of the cross-covariances are shared by every MC sample of y_l,
  // so the model computes them once and combines with k1 per sample.

  /// k1(y_a, y_b) — the 1-d SE factor over the y_l coordinate.
  double k1Scalar(double y_a, double y_b) const;
  /// Fill c2[i] = k2(x_star, z_i.x) and c3[i] = k3(x_star, z_i.x) for the
  /// augmented training inputs @p z (x_star has xDim() entries).
  void crossXParts(const std::vector<Vector>& z, const Vector& x_star,
                   Vector& c2, Vector& c3) const;
  /// k(z, z) for any augmented point: σ_f2² + σ_f3².
  double selfVariance() const;

  std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<NargpKernel>(*this);
  }

 private:
  // Split of the composite evaluation used by both eval and the gradient.
  struct Parts {
    double k1, k2, k3;
  };
  Parts evalParts(const Vector& a, const Vector& b) const;

  std::size_t x_dim_;
  double log_l_rho_;   // k1 length scale over y_l
  double log_sf2_;     // k2 signal std
  Vector log_l2_;      // k2 length scales over x
  double log_sf3_;     // k3 signal std
  Vector log_l3_;      // k3 length scales over x
};

}  // namespace mfbo::gp
