#include "gp/kernel.h"

#include <cmath>

#include "common/check.h"

namespace mfbo::gp {

Matrix Kernel::gram(const std::vector<Vector>& x) const {
  const std::size_t n = x.size();
  Matrix k(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = eval(x[i], x[j]);
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  return k;
}

Vector Kernel::cross(const std::vector<Vector>& x,
                     const Vector& x_star) const {
  Vector out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = eval(x_star, x[i]);
  return out;
}

// ------------------------------------------------------------- SeArdKernel

SeArdKernel::SeArdKernel(std::size_t dim, double sigma_f, double lengthscale)
    : log_sigma_f_(std::log(sigma_f)), log_l_(dim, std::log(lengthscale)) {
  MFBO_CHECK(dim >= 1, "dim must be >= 1");
  MFBO_CHECK(sigma_f > 0.0 && lengthscale > 0.0,
             "scales must be positive, got sigma_f=", sigma_f,
             " lengthscale=", lengthscale);
}

Vector SeArdKernel::params() const {
  Vector p(numParams());
  p[0] = log_sigma_f_;
  for (std::size_t i = 0; i < log_l_.size(); ++i) p[1 + i] = log_l_[i];
  return p;
}

void SeArdKernel::setParams(const Vector& p) {
  MFBO_CHECK(p.size() == numParams(), "got ", p.size(), " params, expected ",
             numParams());
  log_sigma_f_ = p[0];
  for (std::size_t i = 0; i < log_l_.size(); ++i) log_l_[i] = p[1 + i];
}

std::string SeArdKernel::paramName(std::size_t i) const {
  MFBO_CHECK(i < numParams(), "param index ", i, " out of range");
  if (i == 0) return "log_sigma_f";
  return "log_l" + std::to_string(i - 1);
}

double SeArdKernel::sigmaF() const { return std::exp(log_sigma_f_); }

double SeArdKernel::lengthscale(std::size_t i) const {
  MFBO_CHECK(i < log_l_.size(), "lengthscale index ", i, " out of range [0,",
             log_l_.size(), ")");
  return std::exp(log_l_[i]);
}

double SeArdKernel::eval(const Vector& a, const Vector& b) const {
  MFBO_DCHECK(a.size() == inputDim() && b.size() == inputDim(),
              "input dim mismatch: ", a.size(), ", ", b.size(),
              " vs kernel dim ", inputDim());
  double q = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    const double inv_l = std::exp(-log_l_[i]);
    const double scaled = diff * inv_l;
    q += scaled * scaled;
  }
  return std::exp(2.0 * log_sigma_f_ - 0.5 * q);
}

void SeArdKernel::accumulateWeightedGrad(const std::vector<Vector>& x,
                                         const Matrix& w,
                                         Vector& grad) const {
  MFBO_CHECK(grad.size() == numParams(), "grad size ", grad.size(),
             " does not match param count ", numParams());
  MFBO_CHECK(w.rows() == x.size() && w.cols() == x.size(),
             "weight matrix is ", w.rows(), "x", w.cols(), ", expected ",
             x.size(), "x", x.size());
  const std::size_t n = x.size();
  const std::size_t d = log_l_.size();
  std::vector<double> inv_l2(d);
  for (std::size_t i = 0; i < d; ++i) inv_l2[i] = std::exp(-2.0 * log_l_[i]);
  std::vector<double> scaled_sq(d);

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double q = 0.0;
      for (std::size_t t = 0; t < d; ++t) {
        const double diff = x[i][t] - x[j][t];
        scaled_sq[t] = diff * diff * inv_l2[t];
        q += scaled_sq[t];
      }
      const double k = std::exp(2.0 * log_sigma_f_ - 0.5 * q);
      const double weight = (i == j) ? w(i, j) : 2.0 * w(i, j);
      // ∂k/∂log σ_f = 2k ; ∂k/∂log l_t = k · (Δ_t/l_t)².
      grad[0] += weight * 2.0 * k;
      for (std::size_t t = 0; t < d; ++t)
        grad[1 + t] += weight * k * scaled_sq[t];
    }
  }
}

// ------------------------------------------------------------- NargpKernel

NargpKernel::NargpKernel(std::size_t x_dim)
    : x_dim_(x_dim),
      log_l_rho_(std::log(0.5)),
      log_sf2_(std::log(1.0)),
      log_l2_(x_dim, std::log(0.5)),
      log_sf3_(std::log(0.3)),
      log_l3_(x_dim, std::log(0.5)) {
  MFBO_CHECK(x_dim >= 1, "x_dim must be >= 1");
}

Vector NargpKernel::params() const {
  Vector p(numParams());
  std::size_t k = 0;
  p[k++] = log_l_rho_;
  p[k++] = log_sf2_;
  for (std::size_t i = 0; i < x_dim_; ++i) p[k++] = log_l2_[i];
  p[k++] = log_sf3_;
  for (std::size_t i = 0; i < x_dim_; ++i) p[k++] = log_l3_[i];
  return p;
}

void NargpKernel::setParams(const Vector& p) {
  MFBO_CHECK(p.size() == numParams(), "got ", p.size(), " params, expected ",
             numParams());
  std::size_t k = 0;
  log_l_rho_ = p[k++];
  log_sf2_ = p[k++];
  for (std::size_t i = 0; i < x_dim_; ++i) log_l2_[i] = p[k++];
  log_sf3_ = p[k++];
  for (std::size_t i = 0; i < x_dim_; ++i) log_l3_[i] = p[k++];
}

std::string NargpKernel::paramName(std::size_t i) const {
  MFBO_CHECK(i < numParams(), "param index ", i, " out of range");
  if (i == 0) return "log_l_rho";
  if (i == 1) return "log_sf2";
  if (i < 2 + x_dim_) return "log_l2_" + std::to_string(i - 2);
  if (i == 2 + x_dim_) return "log_sf3";
  return "log_l3_" + std::to_string(i - 3 - x_dim_);
}

NargpKernel::Parts NargpKernel::evalParts(const Vector& a,
                                          const Vector& b) const {
  MFBO_DCHECK(a.size() == inputDim() && b.size() == inputDim(),
              "input dim mismatch: ", a.size(), ", ", b.size(),
              " vs kernel dim ", inputDim());
  const double dy = a[x_dim_] - b[x_dim_];
  const double inv_lr = std::exp(-log_l_rho_);
  const double k1 = std::exp(-0.5 * dy * dy * inv_lr * inv_lr);

  double q2 = 0.0, q3 = 0.0;
  for (std::size_t i = 0; i < x_dim_; ++i) {
    const double diff = a[i] - b[i];
    const double s2 = diff * std::exp(-log_l2_[i]);
    const double s3 = diff * std::exp(-log_l3_[i]);
    q2 += s2 * s2;
    q3 += s3 * s3;
  }
  const double k2 = std::exp(2.0 * log_sf2_ - 0.5 * q2);
  const double k3 = std::exp(2.0 * log_sf3_ - 0.5 * q3);
  return {k1, k2, k3};
}

double NargpKernel::k1Scalar(double y_a, double y_b) const {
  const double dy = (y_a - y_b) * std::exp(-log_l_rho_);
  return std::exp(-0.5 * dy * dy);
}

void NargpKernel::crossXParts(const std::vector<Vector>& z,
                              const Vector& x_star, Vector& c2,
                              Vector& c3) const {
  MFBO_CHECK(x_star.size() >= x_dim_, "x_star dim ", x_star.size(),
             " smaller than x_dim ", x_dim_);
  const std::size_t n = z.size();
  c2 = Vector(n);
  c3 = Vector(n);
  for (std::size_t i = 0; i < n; ++i) {
    double q2 = 0.0, q3 = 0.0;
    for (std::size_t t = 0; t < x_dim_; ++t) {
      const double diff = x_star[t] - z[i][t];
      const double s2 = diff * std::exp(-log_l2_[t]);
      const double s3 = diff * std::exp(-log_l3_[t]);
      q2 += s2 * s2;
      q3 += s3 * s3;
    }
    c2[i] = std::exp(2.0 * log_sf2_ - 0.5 * q2);
    c3[i] = std::exp(2.0 * log_sf3_ - 0.5 * q3);
  }
}

double NargpKernel::selfVariance() const {
  return std::exp(2.0 * log_sf2_) + std::exp(2.0 * log_sf3_);
}

double NargpKernel::eval(const Vector& a, const Vector& b) const {
  const Parts p = evalParts(a, b);
  return p.k1 * p.k2 + p.k3;
}

void NargpKernel::accumulateWeightedGrad(const std::vector<Vector>& x,
                                         const Matrix& w,
                                         Vector& grad) const {
  MFBO_CHECK(grad.size() == numParams(), "grad size ", grad.size(),
             " does not match param count ", numParams());
  MFBO_CHECK(w.rows() == x.size() && w.cols() == x.size(),
             "weight matrix is ", w.rows(), "x", w.cols(), ", expected ",
             x.size(), "x", x.size());
  const std::size_t n = x.size();
  const double inv_lr2 = std::exp(-2.0 * log_l_rho_);
  std::vector<double> inv_l2_sq(x_dim_), inv_l3_sq(x_dim_);
  for (std::size_t i = 0; i < x_dim_; ++i) {
    inv_l2_sq[i] = std::exp(-2.0 * log_l2_[i]);
    inv_l3_sq[i] = std::exp(-2.0 * log_l3_[i]);
  }
  std::vector<double> s2(x_dim_), s3(x_dim_);

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double dy = x[i][x_dim_] - x[j][x_dim_];
      const double ry = dy * dy * inv_lr2;  // (Δy/l_ρ)²
      const double k1 = std::exp(-0.5 * ry);
      double q2 = 0.0, q3 = 0.0;
      for (std::size_t t = 0; t < x_dim_; ++t) {
        const double diff = x[i][t] - x[j][t];
        s2[t] = diff * diff * inv_l2_sq[t];
        s3[t] = diff * diff * inv_l3_sq[t];
        q2 += s2[t];
        q3 += s3[t];
      }
      const double k2 = std::exp(2.0 * log_sf2_ - 0.5 * q2);
      const double k3 = std::exp(2.0 * log_sf3_ - 0.5 * q3);
      const double weight = (i == j) ? w(i, j) : 2.0 * w(i, j);
      const double k12 = k1 * k2;

      std::size_t g = 0;
      grad[g++] += weight * k12 * ry;          // ∂/∂log l_ρ
      grad[g++] += weight * 2.0 * k12;         // ∂/∂log σ_f2
      for (std::size_t t = 0; t < x_dim_; ++t)
        grad[g++] += weight * k12 * s2[t];     // ∂/∂log l2_t
      grad[g++] += weight * 2.0 * k3;          // ∂/∂log σ_f3
      for (std::size_t t = 0; t < x_dim_; ++t)
        grad[g++] += weight * k3 * s3[t];      // ∂/∂log l3_t
    }
  }
}

}  // namespace mfbo::gp
