#include "gp/gp_regressor.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "common/check.h"
#include "common/parallel.h"
#include "common/spans.h"
#include "common/telemetry.h"

namespace mfbo::gp {

double negLogMarginalLikelihood(const Kernel& kernel, double log_sigma_n,
                                const std::vector<Vector>& x, const Vector& y,
                                Vector* grad) {
  const std::size_t n = x.size();
  MFBO_CHECK(n > 0, "empty data");
  MFBO_CHECK(y.size() == n, "y size ", y.size(), " does not match x size ", n);
  const double sn2 = std::exp(2.0 * log_sigma_n);

  Matrix k = kernel.gram(x);
  for (std::size_t i = 0; i < n; ++i) k(i, i) += sn2;
  const linalg::Cholesky chol = linalg::Cholesky::factorWithJitter(k);
  const Vector alpha = chol.solve(y);

  const double nlml =
      MFBO_CHECK_FINITE(0.5 * dot(y, alpha) + 0.5 * chol.logDet() +
                            0.5 * static_cast<double>(n) *
                                std::log(2.0 * std::numbers::pi),
                        "NLML is non-finite for n=", n);

  if (grad != nullptr) {
    const std::size_t p = kernel.numParams();
    *grad = Vector(p + 1);
    // W = K⁻¹ − ααᵀ; ∂NLML/∂θ = ½ tr(W ∂K/∂θ).
    Matrix w = chol.inverse();
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) w(i, j) -= alpha[i] * alpha[j];

    Vector kgrad(p);
    kernel.accumulateWeightedGrad(x, w, kgrad);
    for (std::size_t i = 0; i < p; ++i) (*grad)[i] = 0.5 * kgrad[i];

    // ∂K/∂log σ_n = 2 σ_n² I  ⇒  gradient is σ_n² tr(W).
    double trace_w = 0.0;
    for (std::size_t i = 0; i < n; ++i) trace_w += w(i, i);
    (*grad)[p] = sn2 * trace_w;
  }
  return nlml;
}

GpRegressor::GpRegressor(std::unique_ptr<Kernel> kernel, GpConfig config)
    : kernel_(std::move(kernel)), config_(config), rng_(config.seed) {
  MFBO_CHECK(kernel_ != nullptr, "null kernel");
}

GpRegressor::GpRegressor(const GpRegressor& other)
    : kernel_(other.kernel_->clone()),
      config_(other.config_),
      rng_(other.rng_),
      x_(other.x_),
      y_raw_(other.y_raw_),
      y_std_(other.y_std_),
      standardizer_(other.standardizer_),
      log_sigma_n_(other.log_sigma_n_),
      chol_(other.chol_ ? std::make_unique<linalg::Cholesky>(*other.chol_)
                        : nullptr),
      alpha_(other.alpha_) {}

GpRegressor& GpRegressor::operator=(const GpRegressor& other) {
  if (this == &other) return *this;
  GpRegressor tmp(other);
  *this = std::move(tmp);
  return *this;
}

void GpRegressor::fit(std::vector<Vector> x, std::vector<double> y) {
  MFBO_CHECK(x.size() == y.size(), "got ", x.size(), " inputs but ", y.size(),
             " targets");
  MFBO_CHECK(!x.empty(), "empty data");
  validateData(x, y);
  x_ = std::move(x);
  y_raw_ = std::move(y);
  train(/*warm_start=*/false);
}

void GpRegressor::setData(std::vector<Vector> x, std::vector<double> y) {
  MFBO_CHECK(x.size() == y.size() && !x.empty(), "bad data: ", x.size(),
             " inputs, ", y.size(), " targets");
  validateData(x, y);
  x_ = std::move(x);
  y_raw_ = std::move(y);
  standardizer_ = config_.standardize ? linalg::Standardizer(y_raw_)
                                      : linalg::Standardizer();
  y_std_ = Vector();  // force rebuildPosterior to restandardize
  rebuildPosterior();
}

void GpRegressor::addPoint(const Vector& x, double y, bool retrain) {
  MFBO_CHECK(x.size() == kernel_->inputDim(), "input dim ", x.size(),
             " does not match kernel dim ", kernel_->inputDim());
  MFBO_CHECK(x.allFinite(), "input has non-finite coordinates");
  MFBO_CHECK_FINITE(y, "non-finite target");
  x_.push_back(x);
  y_raw_.push_back(y);
  if (retrain) {
    train(/*warm_start=*/true);
    return;
  }
  telemetry::Counter& incremental_updates =
      telemetry::counter("gp.addpoint_incremental");
  telemetry::Counter& incremental_fallbacks =
      telemetry::counter("gp.addpoint_incremental_fallback");
  if (config_.incremental && chol_ != nullptr &&
      chol_->dim() + 1 == x_.size() && y_std_.size() + 1 == x_.size() &&
      extendPosterior()) {
    incremental_updates.add();
    return;
  }
  if (config_.incremental && chol_ != nullptr) incremental_fallbacks.add();
  rebuildPosterior();
}

bool GpRegressor::extendPosterior() {
  const spans::ScopedSpan extend_span("gp_extend");
  // The standardizer is fixed between retrains, so the new target joins
  // y_std_ under the existing transform — exactly as rebuildPosterior
  // restandardizes only newly appended raw values.
  const std::size_t n = chol_->dim();
  const Vector& x_new = x_.back();
  // Full kernel column against x_ (which already contains x_new): entries
  // 0..n-1 are the cross terms, entry n is k(x_new, x_new).
  const Vector col = kernel_->cross(x_, x_new);
  Vector cross(n);
  for (std::size_t i = 0; i < n; ++i) cross[i] = col[i];
  const double sn2 = std::exp(2.0 * log_sigma_n_);
  if (!chol_->appendRow(cross, col[n] + sn2)) return false;
  y_std_.push_back(standardizer_.apply(y_raw_.back()));
  alpha_ = chol_->solve(y_std_);
  return true;
}

void GpRegressor::validateData(const std::vector<Vector>& x,
                               const std::vector<double>& y) const {
  for (std::size_t i = 0; i < x.size(); ++i) {
    MFBO_CHECK(x[i].size() == kernel_->inputDim(), "input ", i, " has dim ",
               x[i].size(), ", kernel expects ", kernel_->inputDim());
    MFBO_CHECK(x[i].allFinite(), "input ", i,
               " has non-finite coordinates");
    MFBO_CHECK(std::isfinite(y[i]), "target ", i, " is non-finite: ", y[i]);
  }
}

void GpRegressor::train(bool warm_start) {
  telemetry::Counter& fit_calls = telemetry::counter("gp.fit_calls");
  telemetry::Counter& nlml_evals = telemetry::counter("gp.nlml_evals");
  telemetry::Counter& poisoned_not_pd =
      telemetry::counter("gp.train.poisoned_not_pd");
  telemetry::Counter& poisoned_nonfinite =
      telemetry::counter("gp.train.poisoned_nonfinite");
  telemetry::Counter& fallback_prior =
      telemetry::counter("gp.train.fallback_to_prior");
  telemetry::Timer& fit_timer = telemetry::timer("gp.fit_seconds");
  fit_calls.add();
  const telemetry::ScopedTimer fit_scope(fit_timer);
  const spans::ScopedSpan train_span("gp_train");

  // Standardize targets for this training set.
  standardizer_ = config_.standardize ? linalg::Standardizer(y_raw_)
                                      : linalg::Standardizer();
  y_std_ = Vector(y_raw_.size());
  for (std::size_t i = 0; i < y_raw_.size(); ++i)
    y_std_[i] = standardizer_.apply(y_raw_[i]);

  const std::size_t p = kernel_->numParams();

  // Box for the optimizer: generic log-param bounds plus the noise bracket.
  Vector lo(p + 1, config_.min_log_param);
  Vector hi(p + 1, config_.max_log_param);
  lo[p] = std::log(config_.min_noise_sd);
  hi[p] = std::log(config_.max_noise_sd);
  const linalg::Box box(lo, hi);

  // Start list: current params (warm start / constructor defaults) plus
  // random restarts.
  std::vector<Vector> starts;
  {
    Vector start(p + 1);
    const Vector kp = kernel_->params();
    for (std::size_t i = 0; i < p; ++i) start[i] = kp[i];
    start[p] = warm_start ? log_sigma_n_ : std::log(0.1);
    starts.push_back(box.clamp(std::move(start)));
  }
  for (std::size_t r = 0; r < config_.n_restarts; ++r) {
    Vector start(p + 1);
    // Length scales and signal scales drawn around unity (inputs are
    // normalized to [0,1] by the BO layer, outputs standardized here).
    for (std::size_t i = 0; i < p; ++i)
      start[i] = rng_.uniform(std::log(0.05), std::log(2.0));
    start[p] = rng_.uniform(std::log(1e-3), std::log(0.3));
    starts.push_back(box.clamp(std::move(start)));
  }

  // One L-BFGS run per restart on the parallel pool. Kernel::setParams
  // mutates, so every restart optimizes its own kernel clone; the restart
  // start list above was drawn serially from rng_, so the parallel bodies
  // consume no shared RNG stream.
  const std::vector<opt::OptResult> restarts = parallel::parallelMap(
      starts.size(), [&](std::size_t start_index) {
        // One span per restart index (never per chunk), so counts are
        // identical at any thread count.
        const spans::ScopedSpan restart_span("nlml_restart");
        const std::unique_ptr<Kernel> kernel = kernel_->clone();
        opt::GradObjective objective = [&, p](const Vector& theta,
                                              Vector* grad) -> double {
          nlml_evals.add();
          Vector kp(p);
          for (std::size_t i = 0; i < p; ++i) kp[i] = theta[i];
          kernel->setParams(kp);
          try {
            return negLogMarginalLikelihood(*kernel, theta[p], x_, y_std_,
                                            grad);
          } catch (const std::runtime_error&) {
            // Cholesky failure even with max jitter: poison this region.
            poisoned_not_pd.add();
            if (grad) *grad = Vector(p + 1, std::nan(""));
            return std::nan("");
          } catch (const ContractViolation&) {
            // Non-finite NLML at an extreme hyperparameter corner (the
            // training data itself was validated at fit time): poison it
            // the same way.
            poisoned_nonfinite.add();
            if (grad) *grad = Vector(p + 1, std::nan(""));
            return std::nan("");
          }
        };
        return opt::lbfgsMinimize(objective, starts[start_index], box,
                                  config_.lbfgs);
      });

  // Ordered reduction: strict < keeps the lowest-indexed restart on ties,
  // matching the serial reference at any thread count.
  double best_nlml = std::numeric_limits<double>::max();
  Vector best_theta;
  for (const opt::OptResult& r : restarts) {
    if (std::isfinite(r.value) && r.value < best_nlml) {
      best_nlml = r.value;
      best_theta = r.x;
    }
  }
  if (best_theta.empty()) {
    // Every start failed (numerically hopeless data): keep defaults with a
    // large noise so the model degrades to the prior instead of crashing.
    fallback_prior.add();
    best_theta = starts.front();
    best_theta[p] = std::log(config_.max_noise_sd);
  }

  Vector kp(p);
  for (std::size_t i = 0; i < p; ++i) kp[i] = best_theta[i];
  kernel_->setParams(kp);
  log_sigma_n_ = best_theta[p];
  rebuildPosterior();
}

void GpRegressor::rebuildPosterior() {
  const spans::ScopedSpan rebuild_span("gp_rebuild");
  // Keep the standardizer fixed between retrains so cached alpha matches;
  // recompute standardized targets for any newly appended raw values.
  if (y_std_.size() != y_raw_.size()) {
    y_std_ = Vector(y_raw_.size());
    for (std::size_t i = 0; i < y_raw_.size(); ++i)
      y_std_[i] = standardizer_.apply(y_raw_[i]);
  }
  const std::size_t n = x_.size();
  Matrix k = kernel_->gram(x_);
  const double sn2 = std::exp(2.0 * log_sigma_n_);
  for (std::size_t i = 0; i < n; ++i) k(i, i) += sn2;
  chol_ = std::make_unique<linalg::Cholesky>(
      linalg::Cholesky::factorWithJitter(k));
  alpha_ = chol_->solve(y_std_);
}

Prediction GpRegressor::predict(const Vector& x) const {
  MFBO_CHECK(fitted(), "model is not fitted");
  MFBO_DCHECK(x.size() == kernel_->inputDim(), "input dim ", x.size(),
              " does not match kernel dim ", kernel_->inputDim());
  const Vector ks = kernel_->cross(x_, x);
  const double mu_z = dot(ks, alpha_);
  // σ² = σ_n² + k(x,x) − k*ᵀ (K + σ_n² I)⁻¹ k*   (eq. 4)
  const Vector v = chol_->solveLower(ks);
  double var_z = std::exp(2.0 * log_sigma_n_) + kernel_->eval(x, x) -
                 v.squaredNorm();
  var_z = std::max(var_z, 1e-12);
  return {standardizer_.unapply(mu_z), standardizer_.unapplyVariance(var_z)};
}

double GpRegressor::currentNlml() const {
  MFBO_CHECK(fitted(), "model is not fitted");
  return negLogMarginalLikelihood(*kernel_, log_sigma_n_, x_, y_std_);
}

const linalg::Cholesky& GpRegressor::posteriorCholesky() const {
  MFBO_CHECK(chol_ != nullptr, "model is not fitted");
  return *chol_;
}

double GpRegressor::bestObserved() const {
  MFBO_CHECK(fitted(), "model is not fitted");
  return *std::min_element(y_raw_.begin(), y_raw_.end());
}

std::vector<double> GpRegressor::hyperparameters() const {
  const Vector p = kernel_->params();
  std::vector<double> out;
  out.reserve(p.size() + 1);
  for (std::size_t i = 0; i < p.size(); ++i) out.push_back(p[i]);
  out.push_back(noiseSd());
  return out;
}

}  // namespace mfbo::gp
