// mfbo::gp — exact Gaussian-process regression (paper §2.3).
//
// Zero-mean GP with a pluggable kernel, trained by minimizing the exact
// negative log marginal likelihood (eq. 3) with analytic gradients and
// multi-restart L-BFGS. Outputs are z-score standardized internally;
// predictions (eq. 4) are returned in original units and include the
// learned observation noise, as the paper's eq. (4) does.
#pragma once

#include <memory>
#include <vector>

#include "gp/kernel.h"
#include "linalg/cholesky.h"
#include "linalg/rng.h"
#include "linalg/stats.h"
#include "opt/lbfgs.h"

namespace mfbo::gp {

/// Posterior prediction at a single point.
struct Prediction {
  double mean = 0.0;
  double var = 0.0;
  double sd() const { return var > 0.0 ? std::sqrt(var) : 0.0; }
};

struct GpConfig {
  std::size_t n_restarts = 2;   ///< random restarts beyond the default start
  opt::LbfgsOptions lbfgs{.max_iterations = 60};
  double min_noise_sd = 1e-4;   ///< noise floor (standardized units)
  double max_noise_sd = 1.0;
  double min_log_param = -7.0;  ///< box for kernel log-params during training
  double max_log_param = 7.0;
  bool standardize = true;      ///< z-score outputs before fitting
  std::uint64_t seed = 1234;    ///< seed for restart sampling
  /// O(n²) posterior refresh for addPoint(retrain=false): extend the
  /// cached Cholesky factor by one row instead of refactoring the full
  /// Gram matrix. Equivalent to the full rebuild up to roundoff (the
  /// incremental-vs-rebuild property tests pin ≤1e-8); disable to force
  /// the O(n³) reference path (used by those tests and the micro bench).
  bool incremental = true;
};

/// Exact NLML (eq. 3) for standardized observations, and optionally its
/// gradient with respect to [kernel log-params..., log σ_n]. Exposed as a
/// free function so tests can check gradients against finite differences.
double negLogMarginalLikelihood(const Kernel& kernel, double log_sigma_n,
                                const std::vector<Vector>& x,
                                const Vector& y, Vector* grad = nullptr);

/// Exact GP regressor.
///
/// Invariants: after fit()/addPoint(), the cached Cholesky factor and alpha
/// vector are consistent with the stored training data and hyperparameters.
class GpRegressor {
 public:
  GpRegressor(std::unique_ptr<Kernel> kernel, GpConfig config = {});

  GpRegressor(const GpRegressor& other);
  GpRegressor& operator=(const GpRegressor& other);
  GpRegressor(GpRegressor&&) = default;
  GpRegressor& operator=(GpRegressor&&) = default;

  /// Replace the training set and retrain hyperparameters from scratch.
  void fit(std::vector<Vector> x, std::vector<double> y);

  /// Replace the training set but keep the current hyperparameters, only
  /// rebuilding the standardizer and posterior caches. Cheap path for
  /// models whose inputs shift slightly every iteration (NARGP re-augments
  /// its high-fidelity inputs whenever the low-fidelity posterior moves).
  void setData(std::vector<Vector> x, std::vector<double> y);

  /// Append one observation. When @p retrain is true the hyperparameters
  /// are re-optimized (warm-started from the current values); otherwise
  /// the cached posterior is refreshed — in O(n²) via an incremental
  /// Cholesky row append when config.incremental is set (falling back to
  /// a full refactorization if the extension is not positive definite),
  /// else by the O(n³) full rebuild. The output standardizer stays fixed
  /// between retrains in either case.
  void addPoint(const Vector& x, double y, bool retrain = true);

  /// Posterior mean and variance at @p x (original units, eq. 4).
  Prediction predict(const Vector& x) const;

  /// NLML of the current hyperparameters on the current data.
  double currentNlml() const;

  std::size_t size() const { return x_.size(); }
  std::size_t inputDim() const { return kernel_->inputDim(); }
  const Kernel& kernel() const { return *kernel_; }
  double noiseSd() const { return std::exp(log_sigma_n_); }
  /// Output scale (standardizer sd). Dividing a predictive variance by
  /// outputSd()² expresses it in standardized units — the scale on which
  /// the paper's fidelity-selection threshold γ = 0.01 is meaningful.
  double outputSd() const { return standardizer_.sd(); }
  const std::vector<Vector>& inputs() const { return x_; }
  const std::vector<double>& targets() const { return y_raw_; }
  bool fitted() const { return !x_.empty(); }

  /// Smallest observed target (τ in the acquisition functions).
  double bestObserved() const;

  /// Flat hyperparameter vector: kernel log-params followed by the noise
  /// sd. Checkpoints store it as an integrity stamp — a restored run
  /// replays the training schedule and must land on exactly these values.
  std::vector<double> hyperparameters() const;

  // Power-user access for models that build custom batched prediction
  // paths on top of the cached posterior (NARGP's MC integration):

  /// Cached Cholesky of K + σ_n²I. Requires fitted().
  const linalg::Cholesky& posteriorCholesky() const;
  /// Cached α = (K + σ_n²I)⁻¹ y (standardized targets).
  const Vector& alphaVector() const { return alpha_; }
  /// Output standardizer used on targets.
  const linalg::Standardizer& standardizer() const { return standardizer_; }

 private:
  /// MFBO_CHECK that every input matches the kernel dimension and that all
  /// inputs and targets are finite (preconditions for fit/setData).
  void validateData(const std::vector<Vector>& x,
                    const std::vector<double>& y) const;
  /// Multi-restart hyperparameter optimization on the current data.
  void train(bool warm_start);
  /// Rebuild standardizer, Gram Cholesky and alpha for current params.
  void rebuildPosterior();
  /// O(n²) posterior refresh after x_/y_raw_ gained one point: extend the
  /// cached factor with the new kernel column and re-solve alpha. Returns
  /// false (leaving caches untouched beyond the factor attempt) when no
  /// consistent extension exists and a full rebuild is required.
  bool extendPosterior();

  std::unique_ptr<Kernel> kernel_;
  GpConfig config_;
  linalg::Rng rng_;

  std::vector<Vector> x_;
  std::vector<double> y_raw_;
  Vector y_std_;  // standardized targets
  linalg::Standardizer standardizer_;
  double log_sigma_n_ = std::log(0.1);

  std::unique_ptr<linalg::Cholesky> chol_;
  Vector alpha_;  // K⁻¹ y (standardized)
};

}  // namespace mfbo::gp
