// mfbo::circuit — small-signal linearization of netlist devices.
//
// Shared by the Newton assembly (simulator.cpp) and the AC analysis: maps
// a MOSFET instance plus terminal voltages to the NMOS-normalized
// effective terminals and the (gm, gds, i) triple of the operating point.
#pragma once

#include "circuit/netlist.h"

namespace mfbo::circuit {

/// Operating-point view of a MOSFET: polarity-normalized, drain/source
/// swapped if reverse-biased, with the small-signal conductances valid for
/// stamps against the *effective* terminals.
struct MosfetSmallSignal {
  NodeId d_eff, s_eff, g;  ///< effective terminals after any swap
  double gm = 0.0;         ///< ∂i/∂v_gs (NMOS-normalized, ≥ 0)
  double gds = 0.0;        ///< ∂i/∂v_ds (≥ 0)
  double i_deff = 0.0;     ///< current into the effective drain
  bool swapped = false;    ///< drain/source were exchanged
};

/// Linearize @p m at terminal voltages (vd, vg, vs).
MosfetSmallSignal mosfetSmallSignal(const Mosfet& m, double vd, double vg,
                                    double vs);

}  // namespace mfbo::circuit
