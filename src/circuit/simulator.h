// mfbo::circuit — modified-nodal-analysis simulation engine.
//
// Unknowns: the voltages of all non-ground nodes followed by the branch
// currents of voltage sources and inductors. Nonlinear devices (MOSFET,
// diode) are handled by Newton iteration with per-step voltage-update
// damping; DC analysis falls back to source stepping when plain Newton
// fails. Transient analysis uses fixed-step trapezoidal integration
// (companion models) — adequate for the periodic steady-state measurements
// the testbenches make, and exactly reproducible.
#pragma once

#include <vector>

#include "circuit/netlist.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace mfbo::circuit {

using linalg::Matrix;
using linalg::Vector;

struct DcResult {
  Vector solution;     ///< node voltages then branch currents
  bool converged = false;
  std::size_t iterations = 0;
};

struct TransientResult {
  std::vector<double> time;
  /// node_voltages[k] is the full solution vector at time[k]
  /// (node voltages then branch currents).
  std::vector<Vector> solution;
  bool converged = false;

  /// Voltage of @p node at step @p k (ground reads 0).
  double nodeVoltage(std::size_t k, NodeId node) const {
    return node == kGround ? 0.0
                           : solution[k][static_cast<std::size_t>(node)];
  }
};

struct SimOptions {
  std::size_t max_newton_iterations = 100;
  double v_abstol = 1e-6;
  double v_reltol = 1e-3;
  double max_step_voltage = 0.5;  ///< Newton damping clamp per iteration
  std::size_t source_steps = 20;  ///< DC source-stepping ladder size
  /// Hard bound on node voltages during Newton — keeps a diverging iterate
  /// from running away before damping can recover it. Must exceed any
  /// legitimate node voltage of the circuit.
  double v_clamp = 1000.0;
};

/// MNA simulation engine bound to one netlist. The netlist must outlive the
/// simulator.
class Simulator {
 public:
  explicit Simulator(const Netlist& netlist, SimOptions options = {});

  /// Size of the MNA system (nodes + branches).
  std::size_t dim() const { return n_nodes_ + n_branches_; }

  const Netlist& netlist() const { return netlist_; }

  /// DC operating point with all sources at their DC values. Solve order:
  /// plain Newton from @p initial_guess (when given) or from zero, then
  /// gmin stepping, then source stepping — the standard SPICE ladder.
  DcResult dcOperatingPoint(const Vector* initial_guess = nullptr);

  /// Fixed-step transient from the DC operating point at t = 0 to
  /// @p t_stop with step @p dt. Records every step (including t = 0).
  TransientResult transient(double t_stop, double dt);

  /// Index of voltage source @p i's branch unknown in a solution vector.
  std::size_t vsourceBranch(std::size_t i) const {
    return vsource_offset_ + i;
  }
  /// Index of inductor @p i's branch unknown in a solution vector.
  std::size_t inductorBranch(std::size_t i) const {
    return inductor_offset_ + i;
  }
  /// Index of VCVS @p i's branch unknown in a solution vector.
  std::size_t vcvsBranch(std::size_t i) const { return vcvs_offset_ + i; }

  /// Branch current of voltage source @p vsrc_index in a solution vector.
  double vsourceCurrent(const Vector& solution,
                        std::size_t vsrc_index) const;
  /// Branch current of inductor @p ind_index in a solution vector.
  double inductorCurrent(const Vector& solution, std::size_t ind_index) const;
  /// Drain current of MOSFET @p mos_index recomputed from node voltages.
  double mosfetCurrent(const Vector& solution, std::size_t mos_index) const;

 private:
  /// Newton solve at time @p t. In transient mode (@p dt > 0) the companion
  /// models use @p prev (previous accepted solution) and the capacitor
  /// companion currents in cap_current_. @p source_scale ramps independent
  /// sources for DC source stepping.
  bool newtonSolve(Vector& x, double t, double dt, const Vector* prev,
                   double source_scale);

  /// Additional node-to-ground conductance applied during gmin stepping.
  double extra_gmin_ = 0.0;
  /// Assemble the linearized MNA system at guess @p x.
  void assemble(Matrix& g, Vector& rhs, const Vector& x, double t, double dt,
                const Vector* prev, double source_scale) const;
  double nodeV(const Vector& x, NodeId n) const {
    return n == kGround ? 0.0 : x[static_cast<std::size_t>(n)];
  }

  const Netlist& netlist_;
  SimOptions options_;
  std::size_t n_nodes_;
  std::size_t n_branches_;       // vsources, inductors, then VCVS
  std::size_t vsource_offset_;   // index of first vsource branch unknown
  std::size_t inductor_offset_;  // index of first inductor branch unknown
  std::size_t vcvs_offset_;      // index of first VCVS branch unknown

  /// Trapezoidal companion state: capacitor currents at the previous step.
  std::vector<double> cap_current_;
};

}  // namespace mfbo::circuit
