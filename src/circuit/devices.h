// mfbo::circuit — nonlinear device models.
//
// Level-1 (Shichman-Hodges) MOSFET and an exponential-junction diode.
// The models return the channel/junction current plus the small-signal
// conductances the Newton linearization needs.
#pragma once

#include <string>

namespace mfbo::circuit {

/// Level-1 MOSFET parameters. Geometry (w, l) in meters; kp = µ·Cox in
/// A/V²; vt0 in volts (positive for both polarities — the PMOS threshold
/// is interpreted as v_sg threshold); lambda in 1/V.
struct MosfetParams {
  bool is_pmos = false;
  double vt0 = 0.5;
  double kp = 2e-4;
  double lambda = 0.05;
  double w = 1e-6;
  double l = 1e-7;
};

/// Channel current and derivatives of a level-1 MOSFET.
struct MosfetState {
  double id = 0.0;   ///< drain current (into drain for NMOS convention)
  double gm = 0.0;   ///< ∂id/∂vgs
  double gds = 0.0;  ///< ∂id/∂vds
};

/// Evaluate the level-1 model for *NMOS-normalized* terminal voltages
/// (vgs, vds ≥ 0 region handled; vds < 0 is handled by the caller swapping
/// drain/source — the device is symmetric). A small sub-threshold leakage
/// keeps the Jacobian nonsingular in cutoff.
MosfetState mosfetEval(const MosfetParams& p, double vgs, double vds);

/// Junction diode parameters.
struct DiodeParams {
  double is = 1e-14;  ///< saturation current (A)
  double n = 1.0;     ///< ideality factor
  double vt = 0.02585;  ///< thermal voltage at 27 °C (V)
};

struct DiodeState {
  double id = 0.0;
  double gd = 0.0;  ///< ∂id/∂v
};

/// Evaluate the diode at junction voltage @p v with exponent limiting (the
/// exponential is linearized above ~40·n·vt to avoid overflow, standard
/// SPICE practice).
DiodeState diodeEval(const DiodeParams& p, double v);

}  // namespace mfbo::circuit
