// mfbo::circuit — post-processing measurements on transient results.
//
// These are the SPICE ".measure" equivalents the testbenches need: average
// source power, node waveform extraction, fundamental output power,
// efficiency, and windowed device-current statistics.
#pragma once

#include <functional>

#include "circuit/fft.h"
#include "circuit/simulator.h"

namespace mfbo::circuit {

/// Node-voltage waveform over the whole record.
std::vector<double> nodeWaveform(const TransientResult& result, NodeId node);

/// Index of the first sample with time ≥ t_start (clamped to the last).
std::size_t windowStart(const TransientResult& result, double t_start);

/// Time-average of f(step) over samples with time ≥ t_start (trapezoid).
double timeAverage(const TransientResult& result, double t_start,
                   const std::function<double(std::size_t)>& f);

/// Average power DELIVERED by voltage source @p vsrc_index over the window
/// (positive when the source supplies energy): avg(−v·i) with the SPICE
/// current sign convention.
double averageSourcePower(const Simulator& sim, const TransientResult& result,
                          std::size_t vsrc_index, double t_start);

/// min / average / max of a device current over the window.
struct CurrentStats {
  double min = 0.0;
  double avg = 0.0;
  double max = 0.0;
};
CurrentStats mosfetCurrentStats(const Simulator& sim,
                                const TransientResult& result,
                                std::size_t mos_index, double t_start);

/// Power dissipated in resistor-to-ground load at the fundamental:
/// P = |V₁|²/(2R), from a coherent harmonic analysis of the node waveform
/// after @p t_start.
double fundamentalLoadPower(const TransientResult& result, NodeId node,
                            double r_load, double f0, double t_start);

/// Harmonics of a node voltage over the post-t_start window.
std::vector<Harmonic> nodeHarmonics(const TransientResult& result, NodeId node,
                                    double f0, std::size_t n_harmonics,
                                    double t_start);

}  // namespace mfbo::circuit
