// mfbo::circuit — small-signal AC analysis.
//
// Linearizes every nonlinear device at the DC operating point and solves
// the complex MNA system Y(jω)·x = b over a logarithmic frequency sweep.
// The complex system is solved through its 2n×2n real embedding
// [G −B; B G]·[Re x; Im x] = [Re b; Im b], reusing the real LU factor.
//
// Stimuli: set ac_magnitude (and optionally ac_phase) on a VSource or
// ISource; all other sources are quiet (AC-grounded), as in SPICE ".ac".
#pragma once

#include <complex>

#include "circuit/simulator.h"

namespace mfbo::circuit {

struct AcResult {
  std::vector<double> freq;  ///< Hz, log-spaced
  /// solution[k][i]: phasor of unknown i (node voltages then branch
  /// currents) at freq[k].
  std::vector<std::vector<std::complex<double>>> solution;
  bool converged = false;

  /// Node-voltage phasor at sweep point @p k (ground reads 0).
  std::complex<double> nodePhasor(std::size_t k, NodeId node) const {
    return node == kGround
               ? std::complex<double>(0.0, 0.0)
               : solution[k][static_cast<std::size_t>(node)];
  }
  /// |V(node)| in dB at sweep point k.
  double magnitudeDb(std::size_t k, NodeId node) const;
  /// Phase of V(node) in degrees at sweep point k, in (−180, 180].
  double phaseDeg(std::size_t k, NodeId node) const;
};

/// Log-sweep AC analysis of @p sim's netlist from @p f_start to @p f_stop
/// with @p points_per_decade points (endpoints included). Runs (and
/// requires convergence of) the DC operating point internally.
AcResult acAnalysis(Simulator& sim, double f_start, double f_stop,
                    std::size_t points_per_decade = 10);

/// First sweep frequency at which |V(node)| falls below 0 dB (unity),
/// interpolated log-linearly between the bracketing points. Returns 0 when
/// the response never crosses unity within the sweep.
double unityGainFrequency(const AcResult& result, NodeId node);

/// Phase margin in degrees: 180° + ∠H at the unity-gain frequency, where
/// H is the response at @p node. For an inverting stage pass
/// @p invert = true so the loop phase ∠(−H) is used (the DC inversion is
/// absorbed into the feedback sign, as in a lab measurement). Returns 0
/// when there is no unity crossing in the sweep.
double phaseMarginDeg(const AcResult& result, NodeId node,
                      bool invert = false);

}  // namespace mfbo::circuit
