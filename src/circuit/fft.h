// mfbo::circuit — spectral analysis of transient waveforms.
//
// Two tools: an in-place radix-2 FFT (general spectra, tests) and a
// coherent single-bin DFT harmonicAnalysis() used by the testbenches —
// correlating against sin/cos at exact harmonic frequencies over an integer
// number of fundamental periods avoids leakage without windowing.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace mfbo::circuit {

/// In-place iterative radix-2 FFT. data.size() must be a power of two.
void fftRadix2(std::vector<std::complex<double>>& data);

/// One spectral line.
struct Harmonic {
  double frequency = 0.0;  ///< Hz
  double magnitude = 0.0;  ///< amplitude (peak, not RMS)
  double phase = 0.0;      ///< radians
};

/// Amplitudes/phases of DC plus the first @p n_harmonics multiples of @p f0
/// in uniformly sampled data (@p dt spacing). The analysis window is
/// truncated to the largest integer number of fundamental periods; at least
/// one full period must fit. Returned vector: index 0 = DC, index k = k·f0.
std::vector<Harmonic> harmonicAnalysis(const std::vector<double>& samples,
                                       double dt, double f0,
                                       std::size_t n_harmonics);

/// Total harmonic distortion from a harmonicAnalysis() result:
/// √(Σ_{k≥2} A_k²) / A_1. Returns 0 when the fundamental is absent.
double totalHarmonicDistortion(const std::vector<Harmonic>& harmonics);

/// THD in dB: 20·log10(THD). Returns −inf for a pure tone.
double totalHarmonicDistortionDb(const std::vector<Harmonic>& harmonics);

}  // namespace mfbo::circuit
