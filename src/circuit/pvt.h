// mfbo::circuit — process / voltage / temperature corner modelling.
//
// The charge-pump experiment verifies device currents across 27 PVT
// corners (3 process × 3 supply × 3 temperature) at high fidelity and a
// single nominal corner at low fidelity — exactly the fidelity split of
// the paper's §5.2. Corners perturb the level-1 parameters the standard
// way: mobility (kp) scales with process and T^−1.5, threshold shifts with
// process and −1 mV/°C, the supply is scaled by ±10%.
#pragma once

#include <string>
#include <vector>

#include "circuit/devices.h"

namespace mfbo::circuit {

struct PvtCorner {
  std::string name;        ///< e.g. "FF/1.1V/-40C"
  double kp_scale = 1.0;   ///< process mobility multiplier (FF > 1 > SS)
  double vt_shift = 0.0;   ///< process threshold shift (V); SS positive
  double vdd_scale = 1.0;  ///< supply multiplier (0.9 / 1.0 / 1.1)
  double temp_c = 27.0;    ///< junction temperature (°C)
};

/// The nominal TT / 1.0·VDD / 27 °C corner.
PvtCorner nominalCorner();

/// Full 3×3×3 grid (27 corners): process ∈ {SS, TT, FF}, supply ∈
/// {0.9, 1.0, 1.1}, temperature ∈ {−40, 27, 125} °C. The nominal corner is
/// element 13 (the centre of the grid).
std::vector<PvtCorner> fullPvtGrid();

/// Apply a corner to level-1 parameters: kp gets the process multiplier and
/// the (T/300K)^−1.5 mobility law; vt0 gets the process shift and −1 mV/°C
/// drift (magnitude-wise for both polarities).
MosfetParams applyCorner(const MosfetParams& nominal, const PvtCorner& corner);

}  // namespace mfbo::circuit
