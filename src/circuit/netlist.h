// mfbo::circuit — circuit description.
//
// A Netlist is a flat list of devices over named nodes, the same mental
// model as a SPICE deck. Node "0" (or "gnd") is ground. Devices are added
// programmatically; the testbenches in mfbo::problems build their PA and
// charge-pump decks through this interface.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "circuit/devices.h"
#include "circuit/waveform.h"

namespace mfbo::circuit {

/// Node handle; kGround is the reference node (not an unknown).
using NodeId = int;
inline constexpr NodeId kGround = -1;

struct Resistor {
  std::string name;
  NodeId np, nn;
  double r;
};
struct Capacitor {
  std::string name;
  NodeId np, nn;
  double c;
};
struct Inductor {
  std::string name;
  NodeId np, nn;
  double l;
};
struct VSource {
  std::string name;
  NodeId np, nn;
  Waveform waveform;
  /// Small-signal stimulus for AC analysis (phasor magnitude / phase).
  double ac_magnitude = 0.0;
  double ac_phase = 0.0;
};
struct ISource {
  std::string name;
  NodeId np, nn;  ///< current flows np → nn through the source
  Waveform waveform;
  double ac_magnitude = 0.0;
  double ac_phase = 0.0;
};
struct Mosfet {
  std::string name;
  NodeId d, g, s;
  MosfetParams params;
};
struct Diode {
  std::string name;
  NodeId np, nn;  ///< anode, cathode
  DiodeParams params;
};
/// Voltage-controlled voltage source (SPICE E card):
/// v(np) − v(nn) = gain · (v(cp) − v(cn)). Adds one branch unknown.
struct Vcvs {
  std::string name;
  NodeId np, nn;  ///< output terminals
  NodeId cp, cn;  ///< controlling terminals
  double gain;
};
/// Voltage-controlled current source (SPICE G card): a current
/// gm · (v(cp) − v(cn)) flows np → nn through the source.
struct Vccs {
  std::string name;
  NodeId np, nn;
  NodeId cp, cn;
  double gm;
};

/// Flat device-list circuit description.
///
/// Invariant: all NodeIds stored in devices were produced by node() of this
/// same netlist (or are kGround).
class Netlist {
 public:
  /// Get-or-create the node named @p name ("0" and "gnd" map to ground).
  NodeId node(const std::string& name);
  /// Number of non-ground nodes.
  std::size_t numNodes() const { return names_.size(); }
  /// Name of node @p id (for diagnostics).
  const std::string& nodeName(NodeId id) const;

  std::size_t addResistor(std::string name, NodeId np, NodeId nn, double r);
  std::size_t addCapacitor(std::string name, NodeId np, NodeId nn, double c);
  std::size_t addInductor(std::string name, NodeId np, NodeId nn, double l);
  std::size_t addVSource(std::string name, NodeId np, NodeId nn, Waveform w);
  std::size_t addISource(std::string name, NodeId np, NodeId nn, Waveform w);
  std::size_t addMosfet(std::string name, NodeId d, NodeId g, NodeId s,
                        MosfetParams params);
  std::size_t addDiode(std::string name, NodeId np, NodeId nn,
                       DiodeParams params);
  std::size_t addVcvs(std::string name, NodeId np, NodeId nn, NodeId cp,
                      NodeId cn, double gain);
  std::size_t addVccs(std::string name, NodeId np, NodeId nn, NodeId cp,
                      NodeId cn, double gm);

  const std::vector<Resistor>& resistors() const { return resistors_; }
  const std::vector<Capacitor>& capacitors() const { return capacitors_; }
  const std::vector<Inductor>& inductors() const { return inductors_; }
  const std::vector<VSource>& vsources() const { return vsources_; }
  const std::vector<ISource>& isources() const { return isources_; }
  const std::vector<Mosfet>& mosfets() const { return mosfets_; }
  const std::vector<Diode>& diodes() const { return diodes_; }
  const std::vector<Vcvs>& vcvs() const { return vcvs_; }
  const std::vector<Vccs>& vccs() const { return vccs_; }

  std::vector<Mosfet>& mosfets() { return mosfets_; }
  std::vector<ISource>& isources() { return isources_; }
  std::vector<VSource>& vsources() { return vsources_; }

  /// Index of the named voltage source (throws if absent) — used to probe
  /// supply currents.
  std::size_t vsourceIndex(const std::string& name) const;
  /// Index of the named MOSFET (throws if absent).
  std::size_t mosfetIndex(const std::string& name) const;

 private:
  void validateNode(NodeId n) const;

  std::vector<std::string> names_;
  std::unordered_map<std::string, NodeId> index_;
  std::vector<Resistor> resistors_;
  std::vector<Capacitor> capacitors_;
  std::vector<Inductor> inductors_;
  std::vector<VSource> vsources_;
  std::vector<ISource> isources_;
  std::vector<Mosfet> mosfets_;
  std::vector<Diode> diodes_;
  std::vector<Vcvs> vcvs_;
  std::vector<Vccs> vccs_;
};

}  // namespace mfbo::circuit
