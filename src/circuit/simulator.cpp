#include "circuit/simulator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "circuit/linearize.h"
#include "common/check.h"

namespace mfbo::circuit {

namespace {
/// Always-on conductance from every node to ground: keeps floating nodes
/// and cutoff devices from making the Jacobian singular.
constexpr double kGmin = 1e-12;

}  // namespace

Simulator::Simulator(const Netlist& netlist, SimOptions options)
    : netlist_(netlist),
      options_(options),
      n_nodes_(netlist.numNodes()),
      n_branches_(netlist.vsources().size() + netlist.inductors().size() +
                  netlist.vcvs().size()),
      vsource_offset_(n_nodes_),
      inductor_offset_(n_nodes_ + netlist.vsources().size()),
      vcvs_offset_(inductor_offset_ + netlist.inductors().size()),
      cap_current_(netlist.capacitors().size(), 0.0) {
  if (n_nodes_ == 0)
    throw std::invalid_argument("Simulator: netlist has no nodes");
}

void Simulator::assemble(Matrix& g, Vector& rhs, const Vector& x, double t,
                         double dt, const Vector* prev,
                         double source_scale) const {
  MFBO_DCHECK(x.size() == dim(), "state size ", x.size(), " != ", dim());
  MFBO_DCHECK(!prev || prev->size() == dim(), "prev-state size mismatch");
  const std::size_t n = dim();
  g = Matrix(n, n);
  rhs = Vector(n);

  auto addG = [&](NodeId a, NodeId b, double value) {
    if (a != kGround) g(static_cast<std::size_t>(a),
                        static_cast<std::size_t>(a)) += value;
    if (b != kGround) g(static_cast<std::size_t>(b),
                        static_cast<std::size_t>(b)) += value;
    if (a != kGround && b != kGround) {
      g(static_cast<std::size_t>(a), static_cast<std::size_t>(b)) -= value;
      g(static_cast<std::size_t>(b), static_cast<std::size_t>(a)) -= value;
    }
  };
  // Inject current @p value INTO node a and OUT of node b.
  auto addCurrent = [&](NodeId a, NodeId b, double value) {
    if (a != kGround) rhs[static_cast<std::size_t>(a)] += value;
    if (b != kGround) rhs[static_cast<std::size_t>(b)] -= value;
  };
  auto entry = [&](std::size_t row, NodeId col, double value) {
    if (col != kGround) g(row, static_cast<std::size_t>(col)) += value;
  };

  for (std::size_t i = 0; i < n_nodes_; ++i)
    g(i, i) += kGmin + extra_gmin_;

  for (const Resistor& r : netlist_.resistors()) addG(r.np, r.nn, 1.0 / r.r);

  // Capacitors: open in DC, trapezoidal companion in transient.
  if (dt > 0.0) {
    const auto& caps = netlist_.capacitors();
    for (std::size_t i = 0; i < caps.size(); ++i) {
      const Capacitor& c = caps[i];
      const double geq = 2.0 * c.c / dt;
      const double v_prev = prev ? nodeV(*prev, c.np) - nodeV(*prev, c.nn)
                                 : 0.0;
      addG(c.np, c.nn, geq);
      // i_{n+1} = geq·(v_{n+1} − v_n) − i_n  ⇒ Norton J = geq·v_n + i_n.
      addCurrent(c.np, c.nn, geq * v_prev + cap_current_[i]);
    }
  }

  // Independent current sources (current flows np → nn through the source).
  for (const ISource& s : netlist_.isources()) {
    const double value = source_scale * s.waveform.at(t);
    addCurrent(s.nn, s.np, value);
  }

  // Voltage sources: branch current unknowns.
  {
    const auto& srcs = netlist_.vsources();
    for (std::size_t k = 0; k < srcs.size(); ++k) {
      const VSource& s = srcs[k];
      const std::size_t br = vsource_offset_ + k;
      // Branch current flows np → nn *through the source* (SPICE sign:
      // positive into the + terminal).
      if (s.np != kGround) {
        g(static_cast<std::size_t>(s.np), br) += 1.0;
        g(br, static_cast<std::size_t>(s.np)) += 1.0;
      }
      if (s.nn != kGround) {
        g(static_cast<std::size_t>(s.nn), br) -= 1.0;
        g(br, static_cast<std::size_t>(s.nn)) -= 1.0;
      }
      rhs[br] = source_scale *
                (dt > 0.0 ? s.waveform.at(t) : s.waveform.dcValue());
    }
  }

  // Inductors: short in DC, trapezoidal companion in transient.
  {
    const auto& inds = netlist_.inductors();
    for (std::size_t k = 0; k < inds.size(); ++k) {
      const Inductor& ind = inds[k];
      const std::size_t br = inductor_offset_ + k;
      if (ind.np != kGround) {
        g(static_cast<std::size_t>(ind.np), br) += 1.0;
        g(br, static_cast<std::size_t>(ind.np)) += 1.0;
      }
      if (ind.nn != kGround) {
        g(static_cast<std::size_t>(ind.nn), br) -= 1.0;
        g(br, static_cast<std::size_t>(ind.nn)) -= 1.0;
      }
      if (dt > 0.0) {
        // v_{n+1} − (2L/dt)·i_{n+1} = −v_n − (2L/dt)·i_n
        const double zeq = 2.0 * ind.l / dt;
        g(br, br) -= zeq;
        const double v_prev =
            prev ? nodeV(*prev, ind.np) - nodeV(*prev, ind.nn) : 0.0;
        const double i_prev = prev ? (*prev)[br] : 0.0;
        rhs[br] = -v_prev - zeq * i_prev;
      }
      // DC: row is v_np − v_nn = 0 (already stamped), rhs stays 0.
    }
  }

  // Voltage-controlled sources (linear, mode-independent).
  {
    const auto& es = netlist_.vcvs();
    for (std::size_t k = 0; k < es.size(); ++k) {
      const Vcvs& e = es[k];
      const std::size_t br = vcvs_offset_ + k;
      if (e.np != kGround) {
        g(static_cast<std::size_t>(e.np), br) += 1.0;
        g(br, static_cast<std::size_t>(e.np)) += 1.0;
      }
      if (e.nn != kGround) {
        g(static_cast<std::size_t>(e.nn), br) -= 1.0;
        g(br, static_cast<std::size_t>(e.nn)) -= 1.0;
      }
      // Row: v_np − v_nn − gain·(v_cp − v_cn) = 0.
      entry(br, e.cp, -e.gain);
      entry(br, e.cn, e.gain);
    }
  }
  for (const Vccs& gsrc : netlist_.vccs()) {
    // Current gm·(v_cp − v_cn) leaves np and enters nn.
    if (gsrc.np != kGround) {
      entry(static_cast<std::size_t>(gsrc.np), gsrc.cp, gsrc.gm);
      entry(static_cast<std::size_t>(gsrc.np), gsrc.cn, -gsrc.gm);
    }
    if (gsrc.nn != kGround) {
      entry(static_cast<std::size_t>(gsrc.nn), gsrc.cp, -gsrc.gm);
      entry(static_cast<std::size_t>(gsrc.nn), gsrc.cn, gsrc.gm);
    }
  }

  // MOSFETs: Newton linearization around the current guess.
  for (const Mosfet& m : netlist_.mosfets()) {
    const MosfetSmallSignal ss =
        mosfetSmallSignal(m, nodeV(x, m.d), nodeV(x, m.g), nodeV(x, m.s));
    // ∂i/∂(real voltages): the polarity factors cancel, so gm/gds stamp
    // with their NMOS-normalized (positive) values against the effective
    // terminals.
    const double vgs_real = nodeV(x, ss.g) - nodeV(x, ss.s_eff);
    const double vds_real = nodeV(x, ss.d_eff) - nodeV(x, ss.s_eff);
    const double ieq =
        ss.i_deff - ss.gm * vgs_real - ss.gds * vds_real;

    const NodeId d = ss.d_eff, s = ss.s_eff, gn = ss.g;
    // VCCS gm·(v_g − v_s): current d → s.
    if (d != kGround) {
      entry(static_cast<std::size_t>(d), gn, ss.gm);
      entry(static_cast<std::size_t>(d), s, -ss.gm);
    }
    if (s != kGround) {
      entry(static_cast<std::size_t>(s), gn, -ss.gm);
      entry(static_cast<std::size_t>(s), s, ss.gm);
    }
    // gds between d and s.
    addG(d, s, ss.gds);
    // Norton current ieq flowing d → s inside the device.
    addCurrent(s, d, ieq);
  }

  // Diodes.
  for (const Diode& dd : netlist_.diodes()) {
    const double v = nodeV(x, dd.np) - nodeV(x, dd.nn);
    const DiodeState st = diodeEval(dd.params, v);
    const double ieq = st.id - st.gd * v;
    addG(dd.np, dd.nn, st.gd);
    addCurrent(dd.nn, dd.np, ieq);
  }
}

bool Simulator::newtonSolve(Vector& x, double t, double dt, const Vector* prev,
                            double source_scale) {
  MFBO_DCHECK(x.size() == dim(), "state size ", x.size(), " != ", dim());
  Matrix g;
  Vector rhs;
  for (std::size_t iter = 0; iter < options_.max_newton_iterations; ++iter) {
    assemble(g, rhs, x, t, dt, prev, source_scale);
    Vector x_new;
    try {
      x_new = linalg::luSolve(std::move(g), rhs);
    } catch (const std::runtime_error&) {
      return false;
    }
    if (!x_new.allFinite()) return false;

    // Damped update: clamp the largest node-voltage change.
    double max_dv = 0.0;
    for (std::size_t i = 0; i < n_nodes_; ++i)
      max_dv = std::max(max_dv, std::abs(x_new[i] - x[i]));
    const double scale =
        max_dv > options_.max_step_voltage
            ? options_.max_step_voltage / max_dv
            : 1.0;
    bool converged = true;
    for (std::size_t i = 0; i < dim(); ++i) {
      const double dx = scale * (x_new[i] - x[i]);
      x[i] += dx;
      if (i < n_nodes_)
        x[i] = std::clamp(x[i], -options_.v_clamp, options_.v_clamp);
      if (i < n_nodes_ &&
          std::abs(dx) >
              options_.v_abstol + options_.v_reltol * std::abs(x[i]))
        converged = false;
    }
    if (converged && scale == 1.0) return true;
  }
  return false;
}

DcResult Simulator::dcOperatingPoint(const Vector* initial_guess) {
  MFBO_CHECK(!initial_guess || initial_guess->size() == dim(),
             "initial guess size ", initial_guess ? initial_guess->size() : 0,
             " != system dimension ", dim());
  DcResult result;
  extra_gmin_ = 0.0;

  // 1. Plain Newton, warm-started when a guess is available.
  Vector x = initial_guess ? *initial_guess : Vector(dim());
  if (newtonSolve(x, 0.0, 0.0, nullptr, 1.0)) {
    result.solution = std::move(x);
    result.converged = true;
    return result;
  }

  // 2. Gmin stepping: solve with a strong conductance to ground everywhere,
  // then relax it decade by decade, warm-starting each level.
  x = Vector(dim());
  bool gmin_ok = true;
  for (double gmin : {1e-3, 1e-4, 1e-5, 1e-6, 1e-8, 1e-10, 0.0}) {
    extra_gmin_ = gmin;
    if (!newtonSolve(x, 0.0, 0.0, nullptr, 1.0)) {
      gmin_ok = false;
      break;
    }
  }
  extra_gmin_ = 0.0;
  if (gmin_ok) {
    result.solution = std::move(x);
    result.converged = true;
    return result;
  }

  // 3. Source stepping: ramp all independent sources up from zero.
  x = Vector(dim());
  for (std::size_t s = 1; s <= options_.source_steps; ++s) {
    const double scale =
        static_cast<double>(s) / static_cast<double>(options_.source_steps);
    if (!newtonSolve(x, 0.0, 0.0, nullptr, scale)) {
      result.solution = std::move(x);
      return result;  // converged stays false
    }
  }
  result.solution = std::move(x);
  result.converged = true;
  return result;
}

TransientResult Simulator::transient(double t_stop, double dt) {
  if (!(dt > 0.0) || !(t_stop > 0.0))
    throw std::invalid_argument("Simulator::transient: bad time parameters");

  TransientResult result;
  const DcResult dc = dcOperatingPoint();
  if (!dc.converged) return result;  // converged stays false

  std::fill(cap_current_.begin(), cap_current_.end(), 0.0);
  Vector x = dc.solution;
  result.time.push_back(0.0);
  result.solution.push_back(x);

  // Advance one (sub)step; on Newton failure, subdivide up to 3 levels
  // (64× finer) — the standard SPICE rescue for sharp nonlinear events.
  auto advance = [&](auto&& self, Vector& state, double t_from,
                     double dt_step, int depth) -> bool {
    Vector trial = state;
    if (newtonSolve(trial, t_from + dt_step, dt_step, &state, 1.0)) {
      const auto& caps = netlist_.capacitors();
      for (std::size_t i = 0; i < caps.size(); ++i) {
        const Capacitor& c = caps[i];
        const double geq = 2.0 * c.c / dt_step;
        const double dv = (nodeV(trial, c.np) - nodeV(trial, c.nn)) -
                          (nodeV(state, c.np) - nodeV(state, c.nn));
        cap_current_[i] = geq * dv - cap_current_[i];
      }
      state = std::move(trial);
      return true;
    }
    if (depth >= 3) return false;
    const double sub = dt_step / 4.0;
    for (int k = 0; k < 4; ++k) {
      if (!self(self, state, t_from + static_cast<double>(k) * sub, sub,
                depth + 1))
        return false;
    }
    return true;
  };

  const std::size_t n_steps =
      static_cast<std::size_t>(std::ceil(t_stop / dt - 1e-9));
  for (std::size_t step = 1; step <= n_steps; ++step) {
    const double t_from = static_cast<double>(step - 1) * dt;
    if (!advance(advance, x, t_from, dt, 0)) return result;
    result.time.push_back(static_cast<double>(step) * dt);
    result.solution.push_back(x);
  }
  result.converged = true;
  return result;
}

double Simulator::vsourceCurrent(const Vector& solution,
                                 std::size_t vsrc_index) const {
  MFBO_CHECK(vsrc_index < netlist_.vsources().size(), "vsource index ",
             vsrc_index, " out of range");
  return solution[vsource_offset_ + vsrc_index];
}

double Simulator::inductorCurrent(const Vector& solution,
                                  std::size_t ind_index) const {
  MFBO_CHECK(ind_index < netlist_.inductors().size(), "inductor index ",
             ind_index, " out of range");
  return solution[inductor_offset_ + ind_index];
}

double Simulator::mosfetCurrent(const Vector& solution,
                                std::size_t mos_index) const {
  MFBO_CHECK(mos_index < netlist_.mosfets().size(), "mosfet index ",
             mos_index, " out of range");
  const Mosfet& m = netlist_.mosfets()[mos_index];
  const MosfetSmallSignal ss = mosfetSmallSignal(
      m, nodeV(solution, m.d), nodeV(solution, m.g), nodeV(solution, m.s));
  // Current into the netlist drain terminal.
  return ss.swapped ? -ss.i_deff : ss.i_deff;
}

}  // namespace mfbo::circuit
