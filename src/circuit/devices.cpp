#include "circuit/devices.h"

#include <algorithm>
#include <cmath>

namespace mfbo::circuit {

MosfetState mosfetEval(const MosfetParams& p, double vgs, double vds) {
  // Caller guarantees vds >= 0 (drain/source swapped otherwise).
  MosfetState s;
  const double beta = p.kp * (p.w / p.l);
  const double vov = vgs - p.vt0;
  // Tiny conductance in cutoff keeps the MNA matrix nonsingular and gives
  // Newton a gradient to climb out of cutoff.
  constexpr double kGmin = 1e-12;

  if (vov <= 0.0) {
    s.id = kGmin * vds;
    s.gm = 0.0;
    s.gds = kGmin;
    return s;
  }
  const double clm = 1.0 + p.lambda * vds;
  if (vds < vov) {
    // Triode region.
    s.id = beta * (vov * vds - 0.5 * vds * vds) * clm;
    s.gm = beta * vds * clm;
    s.gds = beta * (vov - vds) * clm +
            beta * (vov * vds - 0.5 * vds * vds) * p.lambda;
  } else {
    // Saturation.
    const double id_sat = 0.5 * beta * vov * vov;
    s.id = id_sat * clm;
    s.gm = beta * vov * clm;
    s.gds = id_sat * p.lambda;
  }
  s.id += kGmin * vds;
  s.gds += kGmin;
  return s;
}

DiodeState diodeEval(const DiodeParams& p, double v) {
  DiodeState s;
  const double nvt = p.n * p.vt;
  const double v_crit = 40.0 * nvt;  // linearize beyond this
  if (v <= v_crit) {
    const double e = std::exp(std::max(v, -200.0 * nvt) / nvt);
    s.id = p.is * (e - 1.0);
    s.gd = p.is * e / nvt;
  } else {
    // First-order continuation of the exponential above v_crit.
    const double e = std::exp(v_crit / nvt);
    const double g = p.is * e / nvt;
    s.id = p.is * (e - 1.0) + g * (v - v_crit);
    s.gd = g;
  }
  // Minimum conductance for numerical robustness in deep reverse bias.
  constexpr double kGmin = 1e-12;
  s.id += kGmin * v;
  s.gd += kGmin;
  return s;
}

}  // namespace mfbo::circuit
