#include "circuit/waveform.h"

#include <numbers>

namespace mfbo::circuit {

Waveform Waveform::dc(double value) {
  Waveform w;
  w.kind_ = Kind::kDc;
  w.value_ = value;
  return w;
}

Waveform Waveform::sine(double offset, double amplitude, double freq_hz,
                        double phase_rad) {
  Waveform w;
  w.kind_ = Kind::kSine;
  w.offset_ = offset;
  w.amplitude_ = amplitude;
  w.freq_ = freq_hz;
  w.phase_ = phase_rad;
  return w;
}

Waveform Waveform::pulse(double v1, double v2, double delay, double rise,
                         double fall, double width, double period) {
  Waveform w;
  w.kind_ = Kind::kPulse;
  w.v1_ = v1;
  w.v2_ = v2;
  w.delay_ = delay;
  w.rise_ = rise;
  w.fall_ = fall;
  w.width_ = width;
  w.period_ = period;
  return w;
}

double Waveform::at(double t) const {
  switch (kind_) {
    case Kind::kDc:
      return value_;
    case Kind::kSine:
      return offset_ +
             amplitude_ *
                 std::sin(2.0 * std::numbers::pi * freq_ * t + phase_);
    case Kind::kPulse: {
      if (t < delay_) return v1_;
      double tau = t - delay_;
      if (period_ > 0.0) tau = std::fmod(tau, period_);
      if (tau < rise_)
        return rise_ > 0.0 ? v1_ + (v2_ - v1_) * tau / rise_ : v2_;
      tau -= rise_;
      if (tau < width_) return v2_;
      tau -= width_;
      if (tau < fall_)
        return fall_ > 0.0 ? v2_ + (v1_ - v2_) * tau / fall_ : v1_;
      return v1_;
    }
  }
  return 0.0;
}

double Waveform::dcValue() const {
  switch (kind_) {
    case Kind::kDc:
      return value_;
    case Kind::kSine:
      return offset_;
    case Kind::kPulse:
      return v1_;
  }
  return 0.0;
}

}  // namespace mfbo::circuit
