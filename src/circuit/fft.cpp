#include "circuit/fft.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "common/check.h"

namespace mfbo::circuit {

void fftRadix2(std::vector<std::complex<double>>& data) {
  const std::size_t n = data.size();
  if (n == 0 || (n & (n - 1)) != 0)
    throw std::invalid_argument("fftRadix2: size must be a power of two");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  // Butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = -2.0 * std::numbers::pi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

std::vector<Harmonic> harmonicAnalysis(const std::vector<double>& samples,
                                       double dt, double f0,
                                       std::size_t n_harmonics) {
  MFBO_CHECK(!samples.empty(), "no samples");
  MFBO_CHECK(dt > 0.0 && f0 > 0.0, "bad timestep ", dt, " or fundamental ",
             f0);
  const double period = 1.0 / f0;
  const double total_time = static_cast<double>(samples.size() - 1) * dt;
  const std::size_t n_periods =
      static_cast<std::size_t>(std::floor(total_time / period + 1e-9));
  if (n_periods == 0)
    throw std::invalid_argument(
        "harmonicAnalysis: window shorter than one fundamental period");
  // Use the last n_periods·period of the record (integer periods, and the
  // tail is the closest to periodic steady state).
  const std::size_t n_use = std::min(
      samples.size() - 1,
      static_cast<std::size_t>(
          std::round(static_cast<double>(n_periods) * period / dt)));
  const std::size_t start = samples.size() - 1 - n_use;

  std::vector<Harmonic> out(n_harmonics + 1);
  for (std::size_t k = 0; k <= n_harmonics; ++k) {
    const double w = 2.0 * std::numbers::pi * f0 * static_cast<double>(k);
    double re = 0.0, im = 0.0;
    // Trapezoid-weighted correlation over exactly n_use intervals.
    for (std::size_t i = 0; i <= n_use; ++i) {
      const double t = static_cast<double>(i) * dt;
      const double weight = (i == 0 || i == n_use) ? 0.5 : 1.0;
      const double v = samples[start + i];
      re += weight * v * std::cos(w * t);
      im += weight * v * std::sin(w * t);
    }
    const double norm = 1.0 / static_cast<double>(n_use);
    re *= norm;
    im *= norm;
    out[k].frequency = f0 * static_cast<double>(k);
    if (k == 0) {
      out[k].magnitude = std::abs(re);
      out[k].phase = 0.0;
    } else {
      out[k].magnitude = 2.0 * std::hypot(re, im);
      out[k].phase = std::atan2(-im, re);
    }
  }
  return out;
}

double totalHarmonicDistortion(const std::vector<Harmonic>& harmonics) {
  if (harmonics.size() < 2 || harmonics[1].magnitude <= 0.0) return 0.0;
  double acc = 0.0;
  for (std::size_t k = 2; k < harmonics.size(); ++k)
    acc += harmonics[k].magnitude * harmonics[k].magnitude;
  return std::sqrt(acc) / harmonics[1].magnitude;
}

double totalHarmonicDistortionDb(const std::vector<Harmonic>& harmonics) {
  const double thd = totalHarmonicDistortion(harmonics);
  return 20.0 * std::log10(std::max(thd, 1e-300));
}

}  // namespace mfbo::circuit
