#include "circuit/parser.h"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace mfbo::circuit {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw std::invalid_argument("netlist line " + std::to_string(line) + ": " +
                              message);
}

/// Split a line into tokens; parentheses groups like SIN(0 1 2) are kept
/// together by joining until the closing paren.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> raw;
  std::istringstream iss(line);
  std::string tok;
  while (iss >> tok) raw.push_back(tok);

  std::vector<std::string> out;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    std::string t = raw[i];
    if (t.find('(') != std::string::npos &&
        t.find(')') == std::string::npos) {
      while (i + 1 < raw.size() && t.find(')') == std::string::npos)
        t += " " + raw[++i];
    }
    out.push_back(t);
  }
  return out;
}

/// "key=value" → pair; returns false when the token has no '='.
bool splitParam(const std::string& token, std::string& key,
                std::string& value) {
  const auto eq = token.find('=');
  if (eq == std::string::npos) return false;
  key = lower(token.substr(0, eq));
  value = token.substr(eq + 1);
  return true;
}

/// Extract the numbers inside "NAME(a b c)".
std::vector<double> parenArgs(const std::string& token, std::size_t line) {
  const auto open = token.find('(');
  const auto close = token.rfind(')');
  if (open == std::string::npos || close == std::string::npos ||
      close < open)
    fail(line, "malformed source specification '" + token + "'");
  std::istringstream iss(token.substr(open + 1, close - open - 1));
  std::vector<double> args;
  std::string t;
  while (iss >> t) args.push_back(parseSpiceValue(t));
  return args;
}

/// Parse a V/I source's waveform plus optional "AC mag [phase]" suffix.
void parseSource(const std::vector<std::string>& tokens, std::size_t line,
                 Waveform& waveform, double& ac_mag, double& ac_phase) {
  // tokens[0..2] are name/np/nn; the rest describe the source.
  std::size_t i = 3;
  ac_mag = 0.0;
  ac_phase = 0.0;
  waveform = Waveform::dc(0.0);
  bool have_waveform = false;

  while (i < tokens.size()) {
    const std::string kind = lower(tokens[i]);
    if (kind == "dc") {
      if (i + 1 >= tokens.size()) fail(line, "DC needs a value");
      waveform = Waveform::dc(parseSpiceValue(tokens[i + 1]));
      have_waveform = true;
      i += 2;
    } else if (kind.rfind("sin", 0) == 0) {
      const auto args = parenArgs(tokens[i], line);
      if (args.size() < 3) fail(line, "SIN needs (offset ampl freq [phase])");
      waveform = Waveform::sine(args[0], args[1], args[2],
                                args.size() > 3 ? args[3] : 0.0);
      have_waveform = true;
      ++i;
    } else if (kind.rfind("pulse", 0) == 0) {
      const auto args = parenArgs(tokens[i], line);
      if (args.size() < 7)
        fail(line, "PULSE needs (v1 v2 td tr tf pw period)");
      waveform = Waveform::pulse(args[0], args[1], args[2], args[3], args[4],
                                 args[5], args[6]);
      have_waveform = true;
      ++i;
    } else if (kind == "ac") {
      if (i + 1 >= tokens.size()) fail(line, "AC needs a magnitude");
      ac_mag = parseSpiceValue(tokens[i + 1]);
      i += 2;
      // Optional phase (radians).
      if (i < tokens.size()) {
        try {
          ac_phase = parseSpiceValue(tokens[i]);
          ++i;
        } catch (const std::invalid_argument&) {
          // not a number: belongs to something else
        }
      }
    } else if (!have_waveform) {
      // Bare value ⇒ DC.
      waveform = Waveform::dc(parseSpiceValue(tokens[i]));
      have_waveform = true;
      ++i;
    } else {
      fail(line, "unexpected token '" + tokens[i] + "'");
    }
  }
}

}  // namespace

double parseSpiceValue(const std::string& token) {
  if (token.empty()) throw std::invalid_argument("empty numeric token");
  std::size_t consumed = 0;
  double value;
  try {
    value = std::stod(token, &consumed);
  } catch (const std::exception&) {
    throw std::invalid_argument("bad numeric token '" + token + "'");
  }
  std::string suffix = lower(token.substr(consumed));
  // Strip trailing unit letters after a recognized magnitude (e.g. "10uF").
  if (suffix.empty()) return value;
  if (suffix.rfind("meg", 0) == 0) return value * 1e6;
  switch (suffix[0]) {
    case 'f': return value * 1e-15;
    case 'p': return value * 1e-12;
    case 'n': return value * 1e-9;
    case 'u': return value * 1e-6;
    case 'm': return value * 1e-3;
    case 'k': return value * 1e3;
    case 'g': return value * 1e9;
    case 't': return value * 1e12;
    default:
      throw std::invalid_argument("bad numeric suffix in '" + token + "'");
  }
}

Netlist parseNetlist(const std::string& deck) {
  Netlist netlist;
  std::istringstream stream(deck);
  std::string line;
  std::size_t line_no = 0;

  while (std::getline(stream, line)) {
    ++line_no;
    // Strip comments and whitespace-only lines.
    if (const auto star = line.find('*'); star != std::string::npos)
      line = line.substr(0, star);
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string card = lower(tokens[0]);
    if (card == ".end") break;
    if (card[0] == '.') continue;  // other directives are ignored

    if (tokens.size() < 3) fail(line_no, "too few fields");
    const char kind = card[0];
    const std::string& name = tokens[0];

    switch (kind) {
      case 'r':
      case 'c':
      case 'l': {
        if (tokens.size() < 4) fail(line_no, "need <np> <nn> <value>");
        const NodeId np = netlist.node(tokens[1]);
        const NodeId nn = netlist.node(tokens[2]);
        const double value = parseSpiceValue(tokens[3]);
        try {
          if (kind == 'r') netlist.addResistor(name, np, nn, value);
          if (kind == 'c') netlist.addCapacitor(name, np, nn, value);
          if (kind == 'l') netlist.addInductor(name, np, nn, value);
        } catch (const std::invalid_argument& e) {
          fail(line_no, e.what());
        }
        break;
      }
      case 'v':
      case 'i': {
        const NodeId np = netlist.node(tokens[1]);
        const NodeId nn = netlist.node(tokens[2]);
        Waveform w = Waveform::dc(0.0);
        double ac_mag = 0.0, ac_phase = 0.0;
        parseSource(tokens, line_no, w, ac_mag, ac_phase);
        if (kind == 'v') {
          const std::size_t idx = netlist.addVSource(name, np, nn, w);
          netlist.vsources()[idx].ac_magnitude = ac_mag;
          netlist.vsources()[idx].ac_phase = ac_phase;
        } else {
          const std::size_t idx = netlist.addISource(name, np, nn, w);
          netlist.isources()[idx].ac_magnitude = ac_mag;
          netlist.isources()[idx].ac_phase = ac_phase;
        }
        break;
      }
      case 'm': {
        if (tokens.size() < 5) fail(line_no, "need <d> <g> <s> <nmos|pmos>");
        const NodeId d = netlist.node(tokens[1]);
        const NodeId g = netlist.node(tokens[2]);
        const NodeId s = netlist.node(tokens[3]);
        const std::string type = lower(tokens[4]);
        MosfetParams params;
        if (type == "pmos") {
          params.is_pmos = true;
        } else if (type != "nmos") {
          fail(line_no, "MOSFET type must be nmos or pmos, got '" + type +
                            "'");
        }
        for (std::size_t i = 5; i < tokens.size(); ++i) {
          std::string key, value;
          if (!splitParam(tokens[i], key, value))
            fail(line_no, "expected key=value, got '" + tokens[i] + "'");
          const double v = parseSpiceValue(value);
          if (key == "w") params.w = v;
          else if (key == "l") params.l = v;
          else if (key == "vt") params.vt0 = v;
          else if (key == "kp") params.kp = v;
          else if (key == "lambda") params.lambda = v;
          else fail(line_no, "unknown MOSFET parameter '" + key + "'");
        }
        try {
          netlist.addMosfet(name, d, g, s, params);
        } catch (const std::invalid_argument& e) {
          fail(line_no, e.what());
        }
        break;
      }
      case 'd': {
        const NodeId np = netlist.node(tokens[1]);
        const NodeId nn = netlist.node(tokens[2]);
        DiodeParams params;
        for (std::size_t i = 3; i < tokens.size(); ++i) {
          std::string key, value;
          if (!splitParam(tokens[i], key, value))
            fail(line_no, "expected key=value, got '" + tokens[i] + "'");
          const double v = parseSpiceValue(value);
          if (key == "is") params.is = v;
          else if (key == "n") params.n = v;
          else fail(line_no, "unknown diode parameter '" + key + "'");
        }
        netlist.addDiode(name, np, nn, params);
        break;
      }
      case 'e':
      case 'g': {
        if (tokens.size() < 6)
          fail(line_no, "need <np> <nn> <cp> <cn> <gain>");
        const NodeId np = netlist.node(tokens[1]);
        const NodeId nn = netlist.node(tokens[2]);
        const NodeId cp = netlist.node(tokens[3]);
        const NodeId cn = netlist.node(tokens[4]);
        const double gain = parseSpiceValue(tokens[5]);
        if (kind == 'e')
          netlist.addVcvs(name, np, nn, cp, cn, gain);
        else
          netlist.addVccs(name, np, nn, cp, cn, gain);
        break;
      }
      default:
        fail(line_no, std::string("unknown card '") + card[0] + "'");
    }
  }
  return netlist;
}

}  // namespace mfbo::circuit
