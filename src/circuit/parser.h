// mfbo::circuit — SPICE-style netlist parser.
//
// Builds a Netlist from the familiar card syntax, so decks can live in
// files or string literals instead of C++:
//
//   * two-stage amp example
//   Vdd vdd 0 DC 1.8
//   Vin in  0 SIN(0.9 0.01 1e6) AC 1.0
//   R1  vdd d1 10k
//   C1  d1  0  1p
//   M1  d1 in 0 nmos w=10u l=0.2u vt=0.45 kp=2e-4 lambda=0.05
//   D1  d1 0
//   .end
//
// Supported cards: R/C/L (value), V/I (DC x | SIN(off amp freq [phase]) |
// PULSE(v1 v2 td tr tf pw per), optional trailing "AC mag [phase]"),
// M (d g s nmos|pmos with w=/l=/vt=/kp=/lambda= parameters), and
// D (np nn with optional is=/n= parameters). '*' starts a comment line;
// everything after .end is ignored. Values accept the SPICE magnitude
// suffixes f p n u m k meg g t.
#pragma once

#include <string>

#include "circuit/netlist.h"

namespace mfbo::circuit {

/// Parse a numeric literal with an optional SPICE suffix ("10k" → 1e4,
/// "3.3u" → 3.3e-6, "2meg" → 2e6). Throws std::invalid_argument on junk.
double parseSpiceValue(const std::string& token);

/// Parse a full deck. Throws std::invalid_argument with the offending line
/// number on any syntax error.
Netlist parseNetlist(const std::string& deck);

}  // namespace mfbo::circuit
