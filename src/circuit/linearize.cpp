#include "circuit/linearize.h"

namespace mfbo::circuit {

MosfetSmallSignal mosfetSmallSignal(const Mosfet& m, double vd, double vg,
                                    double vs) {
  MosfetSmallSignal out;
  out.g = m.g;
  const double polarity = m.params.is_pmos ? -1.0 : 1.0;
  const double ud = polarity * vd;
  const double ug = polarity * vg;
  const double us = polarity * vs;

  double vgs, vds;
  if (ud >= us) {
    out.d_eff = m.d;
    out.s_eff = m.s;
    vgs = ug - us;
    vds = ud - us;
    out.swapped = false;
  } else {
    out.d_eff = m.s;
    out.s_eff = m.d;
    vgs = ug - ud;
    vds = us - ud;
    out.swapped = true;
  }
  const MosfetState st = mosfetEval(m.params, vgs, vds);
  out.gm = st.gm;
  out.gds = st.gds;
  out.i_deff = polarity * st.id;
  return out;
}

}  // namespace mfbo::circuit
