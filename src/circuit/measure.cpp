#include "circuit/measure.h"

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "common/check.h"

namespace mfbo::circuit {

std::vector<double> nodeWaveform(const TransientResult& result, NodeId node) {
  std::vector<double> out(result.solution.size());
  for (std::size_t k = 0; k < result.solution.size(); ++k)
    out[k] = result.nodeVoltage(k, node);
  return out;
}

std::size_t windowStart(const TransientResult& result, double t_start) {
  for (std::size_t k = 0; k < result.time.size(); ++k)
    if (result.time[k] >= t_start - 1e-15) return k;
  return result.time.empty() ? 0 : result.time.size() - 1;
}

double timeAverage(const TransientResult& result, double t_start,
                   const std::function<double(std::size_t)>& f) {
  const std::size_t start = windowStart(result, t_start);
  if (start + 1 >= result.time.size())
    throw std::invalid_argument("timeAverage: window has fewer than 2 samples");
  double acc = 0.0;
  for (std::size_t k = start; k + 1 < result.time.size(); ++k) {
    const double dt = result.time[k + 1] - result.time[k];
    acc += 0.5 * (f(k) + f(k + 1)) * dt;
  }
  return acc / (result.time.back() - result.time[start]);
}

double averageSourcePower(const Simulator& sim, const TransientResult& result,
                          std::size_t vsrc_index, double t_start) {
  MFBO_CHECK(vsrc_index < sim.netlist().vsources().size(), "vsource index ",
             vsrc_index, " out of range [0,",
             sim.netlist().vsources().size(), ")");
  const VSource& src = sim.netlist().vsources()[vsrc_index];
  return timeAverage(result, t_start, [&](std::size_t k) {
    // SPICE convention: branch current flows into the + terminal, so the
    // power delivered to the circuit is −v·i.
    const double v =
        result.nodeVoltage(k, src.np) - result.nodeVoltage(k, src.nn);
    const double i = sim.vsourceCurrent(result.solution[k], vsrc_index);
    return -v * i;
  });
}

CurrentStats mosfetCurrentStats(const Simulator& sim,
                                const TransientResult& result,
                                std::size_t mos_index, double t_start) {
  MFBO_CHECK(mos_index < sim.netlist().mosfets().size(), "mosfet index ",
             mos_index, " out of range [0,", sim.netlist().mosfets().size(),
             ")");
  const std::size_t start = windowStart(result, t_start);
  if (start >= result.solution.size())
    throw std::invalid_argument("mosfetCurrentStats: empty window");
  CurrentStats stats;
  stats.min = std::numeric_limits<double>::max();
  stats.max = std::numeric_limits<double>::lowest();
  for (std::size_t k = start; k < result.solution.size(); ++k) {
    const double i = sim.mosfetCurrent(result.solution[k], mos_index);
    stats.min = std::min(stats.min, i);
    stats.max = std::max(stats.max, i);
  }
  stats.avg = timeAverage(result, t_start, [&](std::size_t k) {
    return sim.mosfetCurrent(result.solution[k], mos_index);
  });
  return stats;
}

double fundamentalLoadPower(const TransientResult& result, NodeId node,
                            double r_load, double f0, double t_start) {
  const auto harmonics = nodeHarmonics(result, node, f0, 1, t_start);
  const double v1 = harmonics[1].magnitude;
  return v1 * v1 / (2.0 * r_load);
}

std::vector<Harmonic> nodeHarmonics(const TransientResult& result, NodeId node,
                                    double f0, std::size_t n_harmonics,
                                    double t_start) {
  MFBO_CHECK(!result.time.empty() && !result.solution.empty(),
             "empty transient result");
  const std::size_t start = windowStart(result, t_start);
  std::vector<double> samples;
  samples.reserve(result.solution.size() - start);
  for (std::size_t k = start; k < result.solution.size(); ++k)
    samples.push_back(result.nodeVoltage(k, node));
  const double dt = result.time.size() > 1
                        ? result.time[1] - result.time[0]
                        : 0.0;
  return harmonicAnalysis(samples, dt, f0, n_harmonics);
}

}  // namespace mfbo::circuit
