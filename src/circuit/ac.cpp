#include "circuit/ac.h"

#include <cmath>
#include <numbers>

#include "circuit/linearize.h"
#include "common/check.h"
#include "linalg/matrix.h"

namespace mfbo::circuit {

namespace {

constexpr double kGmin = 1e-12;

/// Assemble the real (G) and imaginary (B = ω-scaled susceptance) parts of
/// the small-signal MNA system at angular frequency @p omega, linearized
/// at the DC solution @p op, plus the complex stimulus vector.
void assembleAc(const Simulator& sim, const linalg::Vector& op, double omega,
                linalg::Matrix& g, linalg::Matrix& b, linalg::Vector& rhs_re,
                linalg::Vector& rhs_im) {
  const Netlist& net = sim.netlist();
  const std::size_t n = sim.dim();
  const std::size_t n_nodes = net.numNodes();
  g = linalg::Matrix(n, n);
  b = linalg::Matrix(n, n);
  rhs_re = linalg::Vector(n);
  rhs_im = linalg::Vector(n);

  auto nodeV = [&](NodeId id) {
    return id == kGround ? 0.0 : op[static_cast<std::size_t>(id)];
  };
  auto add2 = [](linalg::Matrix& m, NodeId a, NodeId b2, double value) {
    if (a != kGround)
      m(static_cast<std::size_t>(a), static_cast<std::size_t>(a)) += value;
    if (b2 != kGround)
      m(static_cast<std::size_t>(b2), static_cast<std::size_t>(b2)) += value;
    if (a != kGround && b2 != kGround) {
      m(static_cast<std::size_t>(a), static_cast<std::size_t>(b2)) -= value;
      m(static_cast<std::size_t>(b2), static_cast<std::size_t>(a)) -= value;
    }
  };
  auto entry = [](linalg::Matrix& m, std::size_t row, NodeId col,
                  double value) {
    if (col != kGround) m(row, static_cast<std::size_t>(col)) += value;
  };

  for (std::size_t i = 0; i < n_nodes; ++i) g(i, i) += kGmin;

  for (const Resistor& r : net.resistors()) add2(g, r.np, r.nn, 1.0 / r.r);
  for (const Capacitor& c : net.capacitors())
    add2(b, c.np, c.nn, omega * c.c);

  // Voltage sources: branch rows v_np − v_nn = V_ac (0 for quiet sources).
  {
    const auto& srcs = net.vsources();
    for (std::size_t k = 0; k < srcs.size(); ++k) {
      const VSource& s = srcs[k];
      const std::size_t br = sim.vsourceBranch(k);
      if (s.np != kGround) {
        g(static_cast<std::size_t>(s.np), br) += 1.0;
        g(br, static_cast<std::size_t>(s.np)) += 1.0;
      }
      if (s.nn != kGround) {
        g(static_cast<std::size_t>(s.nn), br) -= 1.0;
        g(br, static_cast<std::size_t>(s.nn)) -= 1.0;
      }
      rhs_re[br] = s.ac_magnitude * std::cos(s.ac_phase);
      rhs_im[br] = s.ac_magnitude * std::sin(s.ac_phase);
    }
  }

  // Inductors: branch row v − jωL·i = 0.
  {
    const auto& inds = net.inductors();
    for (std::size_t k = 0; k < inds.size(); ++k) {
      const Inductor& ind = inds[k];
      const std::size_t br = sim.inductorBranch(k);
      if (ind.np != kGround) {
        g(static_cast<std::size_t>(ind.np), br) += 1.0;
        g(br, static_cast<std::size_t>(ind.np)) += 1.0;
      }
      if (ind.nn != kGround) {
        g(static_cast<std::size_t>(ind.nn), br) -= 1.0;
        g(br, static_cast<std::size_t>(ind.nn)) -= 1.0;
      }
      b(br, br) -= omega * ind.l;
    }
  }

  // Current-source stimuli.
  for (const ISource& s : net.isources()) {
    const double re = s.ac_magnitude * std::cos(s.ac_phase);
    const double im = s.ac_magnitude * std::sin(s.ac_phase);
    if (s.nn != kGround) {
      rhs_re[static_cast<std::size_t>(s.nn)] += re;
      rhs_im[static_cast<std::size_t>(s.nn)] += im;
    }
    if (s.np != kGround) {
      rhs_re[static_cast<std::size_t>(s.np)] -= re;
      rhs_im[static_cast<std::size_t>(s.np)] -= im;
    }
  }

  // Voltage-controlled sources.
  {
    const auto& es = net.vcvs();
    for (std::size_t k = 0; k < es.size(); ++k) {
      const Vcvs& e = es[k];
      const std::size_t br = sim.vcvsBranch(k);
      if (e.np != kGround) {
        g(static_cast<std::size_t>(e.np), br) += 1.0;
        g(br, static_cast<std::size_t>(e.np)) += 1.0;
      }
      if (e.nn != kGround) {
        g(static_cast<std::size_t>(e.nn), br) -= 1.0;
        g(br, static_cast<std::size_t>(e.nn)) -= 1.0;
      }
      entry(g, br, e.cp, -e.gain);
      entry(g, br, e.cn, e.gain);
    }
  }
  for (const Vccs& gsrc : net.vccs()) {
    if (gsrc.np != kGround) {
      entry(g, static_cast<std::size_t>(gsrc.np), gsrc.cp, gsrc.gm);
      entry(g, static_cast<std::size_t>(gsrc.np), gsrc.cn, -gsrc.gm);
    }
    if (gsrc.nn != kGround) {
      entry(g, static_cast<std::size_t>(gsrc.nn), gsrc.cp, -gsrc.gm);
      entry(g, static_cast<std::size_t>(gsrc.nn), gsrc.cn, gsrc.gm);
    }
  }

  // MOSFETs linearized at the operating point.
  for (const Mosfet& m : net.mosfets()) {
    const MosfetSmallSignal ss =
        mosfetSmallSignal(m, nodeV(m.d), nodeV(m.g), nodeV(m.s));
    const NodeId d = ss.d_eff, s = ss.s_eff, gn = ss.g;
    if (d != kGround) {
      entry(g, static_cast<std::size_t>(d), gn, ss.gm);
      entry(g, static_cast<std::size_t>(d), s, -ss.gm);
    }
    if (s != kGround) {
      entry(g, static_cast<std::size_t>(s), gn, -ss.gm);
      entry(g, static_cast<std::size_t>(s), s, ss.gm);
    }
    add2(g, d, s, ss.gds);
  }

  // Diodes linearized at the operating point.
  for (const Diode& dd : net.diodes()) {
    const DiodeState st =
        diodeEval(dd.params, nodeV(dd.np) - nodeV(dd.nn));
    add2(g, dd.np, dd.nn, st.gd);
  }
}

}  // namespace

double AcResult::magnitudeDb(std::size_t k, NodeId node) const {
  return 20.0 * std::log10(std::max(std::abs(nodePhasor(k, node)), 1e-300));
}

double AcResult::phaseDeg(std::size_t k, NodeId node) const {
  return std::arg(nodePhasor(k, node)) * 180.0 / std::numbers::pi;
}

AcResult acAnalysis(Simulator& sim, double f_start, double f_stop,
                    std::size_t points_per_decade) {
  MFBO_CHECK(f_start > 0.0 && f_stop > f_start, "bad sweep range [", f_start,
             ", ", f_stop, ") Hz");
  MFBO_CHECK(points_per_decade >= 1, "points_per_decade must be >= 1");

  AcResult result;
  const DcResult dc = sim.dcOperatingPoint();
  if (!dc.converged) return result;  // converged stays false

  const double decades = std::log10(f_stop / f_start);
  const std::size_t n_points = static_cast<std::size_t>(
      std::ceil(decades * static_cast<double>(points_per_decade))) + 1;

  const std::size_t n = sim.dim();
  for (std::size_t k = 0; k < n_points; ++k) {
    const double f =
        f_start * std::pow(10.0, decades * static_cast<double>(k) /
                                     static_cast<double>(n_points - 1));
    const double omega = 2.0 * std::numbers::pi * f;

    linalg::Matrix g, b;
    linalg::Vector rhs_re, rhs_im;
    assembleAc(sim, dc.solution, omega, g, b, rhs_re, rhs_im);

    // Real embedding: [G −B; B G]·[xr; xi] = [br; bi].
    linalg::Matrix big(2 * n, 2 * n);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c) {
        big(r, c) = g(r, c);
        big(r, n + c) = -b(r, c);
        big(n + r, c) = b(r, c);
        big(n + r, n + c) = g(r, c);
      }
    linalg::Vector rhs(2 * n);
    for (std::size_t i = 0; i < n; ++i) {
      rhs[i] = rhs_re[i];
      rhs[n + i] = rhs_im[i];
    }
    linalg::Vector x;
    try {
      x = linalg::luSolve(std::move(big), rhs);
    } catch (const std::runtime_error&) {
      return result;  // converged stays false
    }

    std::vector<std::complex<double>> phasors(n);
    for (std::size_t i = 0; i < n; ++i) phasors[i] = {x[i], x[n + i]};
    result.freq.push_back(f);
    result.solution.push_back(std::move(phasors));
  }
  result.converged = true;
  return result;
}

double unityGainFrequency(const AcResult& result, NodeId node) {
  for (std::size_t k = 1; k < result.freq.size(); ++k) {
    const double m0 = result.magnitudeDb(k - 1, node);
    const double m1 = result.magnitudeDb(k, node);
    if (m0 >= 0.0 && m1 < 0.0) {
      // Log-linear interpolation of the 0 dB crossing.
      const double t = m0 / (m0 - m1);
      return result.freq[k - 1] *
             std::pow(result.freq[k] / result.freq[k - 1], t);
    }
  }
  return 0.0;
}

double phaseMarginDeg(const AcResult& result, NodeId node, bool invert) {
  const double fu = unityGainFrequency(result, node);
  if (fu <= 0.0) return 0.0;
  // Interpolate the phase at fu between the bracketing sweep points.
  for (std::size_t k = 1; k < result.freq.size(); ++k) {
    if (result.freq[k] >= fu) {
      auto ph = [&](std::size_t i) {
        const std::complex<double> h = result.nodePhasor(i, node);
        return std::arg(invert ? -h : h) * 180.0 / std::numbers::pi;
      };
      const double p0 = ph(k - 1);
      double p1 = ph(k);
      // Unwrap a single 360° jump between adjacent points.
      if (p1 - p0 > 180.0) p1 -= 360.0;
      if (p0 - p1 > 180.0) p1 += 360.0;
      const double t =
          std::log(fu / result.freq[k - 1]) /
          std::log(result.freq[k] / result.freq[k - 1]);
      const double phase = p0 + t * (p1 - p0);
      return 180.0 + phase;
    }
  }
  return 0.0;
}

}  // namespace mfbo::circuit
