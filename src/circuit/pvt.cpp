#include "circuit/pvt.h"

#include <cmath>

namespace mfbo::circuit {

PvtCorner nominalCorner() {
  return {"TT/1.0V/27C", 1.0, 0.0, 1.0, 27.0};
}

std::vector<PvtCorner> fullPvtGrid() {
  struct Process {
    const char* tag;
    double kp_scale;
    double vt_shift;
  };
  const Process processes[] = {
      {"SS", 0.85, +0.03}, {"TT", 1.0, 0.0}, {"FF", 1.15, -0.03}};
  const double supplies[] = {0.9, 1.0, 1.1};
  const double temps[] = {-40.0, 27.0, 125.0};

  std::vector<PvtCorner> grid;
  grid.reserve(27);
  for (const Process& p : processes) {
    for (double v : supplies) {
      for (double t : temps) {
        PvtCorner c;
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%s/%.1fV/%+.0fC", p.tag, v, t);
        c.name = buf;
        c.kp_scale = p.kp_scale;
        c.vt_shift = p.vt_shift;
        c.vdd_scale = v;
        c.temp_c = t;
        grid.push_back(std::move(c));
      }
    }
  }
  return grid;
}

MosfetParams applyCorner(const MosfetParams& nominal,
                         const PvtCorner& corner) {
  MosfetParams p = nominal;
  const double t_kelvin = corner.temp_c + 273.15;
  const double mobility_t = std::pow(t_kelvin / 300.15, -1.5);
  p.kp = nominal.kp * corner.kp_scale * mobility_t;
  // vt0 is stored as a magnitude for both polarities: SS slows both devices
  // (larger |vt|), heat lowers |vt| by ~1 mV/°C.
  const double dv = corner.vt_shift - 1e-3 * (corner.temp_c - 27.0);
  p.vt0 = std::max(0.05, nominal.vt0 + dv);
  return p;
}

}  // namespace mfbo::circuit
