// mfbo::circuit — independent-source waveforms (SPICE DC / SIN / PULSE).
#pragma once

#include <cmath>

namespace mfbo::circuit {

/// Time-dependent source value. Mirrors the SPICE source kinds the
/// testbenches need: DC, SIN(offset, amplitude, freq, phase) and
/// PULSE(v1, v2, delay, rise, fall, width, period).
class Waveform {
 public:
  /// Constant value.
  static Waveform dc(double value);
  /// offset + amplitude·sin(2πf·t + phase), phase in radians.
  static Waveform sine(double offset, double amplitude, double freq_hz,
                       double phase_rad = 0.0);
  /// Periodic trapezoidal pulse (SPICE semantics). period == 0 means a
  /// single, non-repeating pulse.
  static Waveform pulse(double v1, double v2, double delay, double rise,
                        double fall, double width, double period);

  /// Value at time @p t (seconds).
  double at(double t) const;

  /// DC value used for operating-point analysis (t = 0 for pulse sources,
  /// offset for sine — standard SPICE behaviour).
  double dcValue() const;

 private:
  enum class Kind { kDc, kSine, kPulse };
  Kind kind_ = Kind::kDc;
  // DC
  double value_ = 0.0;
  // SIN
  double offset_ = 0.0, amplitude_ = 0.0, freq_ = 0.0, phase_ = 0.0;
  // PULSE
  double v1_ = 0.0, v2_ = 0.0, delay_ = 0.0, rise_ = 0.0, fall_ = 0.0,
         width_ = 0.0, period_ = 0.0;
};

}  // namespace mfbo::circuit
