#include "circuit/netlist.h"

#include <stdexcept>

namespace mfbo::circuit {

NodeId Netlist::node(const std::string& name) {
  if (name == "0" || name == "gnd" || name == "GND") return kGround;
  if (const auto it = index_.find(name); it != index_.end())
    return it->second;
  const NodeId id = static_cast<NodeId>(names_.size());
  names_.push_back(name);
  index_.emplace(name, id);
  return id;
}

const std::string& Netlist::nodeName(NodeId id) const {
  static const std::string ground = "0";
  if (id == kGround) return ground;
  if (id < 0 || static_cast<std::size_t>(id) >= names_.size())
    throw std::out_of_range("Netlist::nodeName: bad node id");
  return names_[static_cast<std::size_t>(id)];
}

void Netlist::validateNode(NodeId n) const {
  if (n != kGround &&
      (n < 0 || static_cast<std::size_t>(n) >= names_.size()))
    throw std::invalid_argument("Netlist: node id not from this netlist");
}

std::size_t Netlist::addResistor(std::string name, NodeId np, NodeId nn,
                                 double r) {
  validateNode(np);
  validateNode(nn);
  if (!(r > 0.0)) throw std::invalid_argument("Netlist: resistance <= 0");
  resistors_.push_back({std::move(name), np, nn, r});
  return resistors_.size() - 1;
}

std::size_t Netlist::addCapacitor(std::string name, NodeId np, NodeId nn,
                                  double c) {
  validateNode(np);
  validateNode(nn);
  if (!(c > 0.0)) throw std::invalid_argument("Netlist: capacitance <= 0");
  capacitors_.push_back({std::move(name), np, nn, c});
  return capacitors_.size() - 1;
}

std::size_t Netlist::addInductor(std::string name, NodeId np, NodeId nn,
                                 double l) {
  validateNode(np);
  validateNode(nn);
  if (!(l > 0.0)) throw std::invalid_argument("Netlist: inductance <= 0");
  inductors_.push_back({std::move(name), np, nn, l});
  return inductors_.size() - 1;
}

std::size_t Netlist::addVSource(std::string name, NodeId np, NodeId nn,
                                Waveform w) {
  validateNode(np);
  validateNode(nn);
  vsources_.push_back({std::move(name), np, nn, w});
  return vsources_.size() - 1;
}

std::size_t Netlist::addISource(std::string name, NodeId np, NodeId nn,
                                Waveform w) {
  validateNode(np);
  validateNode(nn);
  isources_.push_back({std::move(name), np, nn, w});
  return isources_.size() - 1;
}

std::size_t Netlist::addMosfet(std::string name, NodeId d, NodeId g, NodeId s,
                               MosfetParams params) {
  validateNode(d);
  validateNode(g);
  validateNode(s);
  if (!(params.w > 0.0) || !(params.l > 0.0) || !(params.kp > 0.0))
    throw std::invalid_argument("Netlist: bad MOSFET geometry");
  mosfets_.push_back({std::move(name), d, g, s, params});
  return mosfets_.size() - 1;
}

std::size_t Netlist::addDiode(std::string name, NodeId np, NodeId nn,
                              DiodeParams params) {
  validateNode(np);
  validateNode(nn);
  diodes_.push_back({std::move(name), np, nn, params});
  return diodes_.size() - 1;
}

std::size_t Netlist::addVcvs(std::string name, NodeId np, NodeId nn,
                             NodeId cp, NodeId cn, double gain) {
  validateNode(np);
  validateNode(nn);
  validateNode(cp);
  validateNode(cn);
  vcvs_.push_back({std::move(name), np, nn, cp, cn, gain});
  return vcvs_.size() - 1;
}

std::size_t Netlist::addVccs(std::string name, NodeId np, NodeId nn,
                             NodeId cp, NodeId cn, double gm) {
  validateNode(np);
  validateNode(nn);
  validateNode(cp);
  validateNode(cn);
  vccs_.push_back({std::move(name), np, nn, cp, cn, gm});
  return vccs_.size() - 1;
}

std::size_t Netlist::vsourceIndex(const std::string& name) const {
  for (std::size_t i = 0; i < vsources_.size(); ++i)
    if (vsources_[i].name == name) return i;
  throw std::invalid_argument("Netlist: no voltage source named " + name);
}

std::size_t Netlist::mosfetIndex(const std::string& name) const {
  for (std::size_t i = 0; i < mosfets_.size(); ++i)
    if (mosfets_[i].name == name) return i;
  throw std::invalid_argument("Netlist: no MOSFET named " + name);
}

}  // namespace mfbo::circuit
