// mfbo::opt — projected L-BFGS for box-constrained smooth minimization.
//
// This drives two workloads in the library: GP hyperparameter training
// (NLML with analytic gradients, unconstrained in log space) and local
// refinement of acquisition functions inside the MSP strategy (bounded,
// finite-difference gradients).
#pragma once

#include <optional>

#include "opt/objective.h"

namespace mfbo::opt {

struct LbfgsOptions {
  std::size_t max_iterations = 100;
  std::size_t memory = 8;          ///< number of (s, y) correction pairs kept
  double grad_tolerance = 1e-6;    ///< stop when ‖projected grad‖∞ falls below
  double f_tolerance = 1e-10;      ///< stop on relative objective stagnation
  std::size_t max_line_search = 30;
};

/// Minimize @p f starting at @p x0. When @p box is provided, iterates are
/// projected into the box and convergence is measured on the projected
/// gradient. Throws mfbo::ContractViolation when x0 is empty or its
/// dimension disagrees with the box; on pathological objectives (NaN) the
/// best iterate so far is returned with converged = false.
OptResult lbfgsMinimize(const GradObjective& f, const Vector& x0,
                        const std::optional<Box>& box = std::nullopt,
                        const LbfgsOptions& options = {});

}  // namespace mfbo::opt
