#include "opt/multistart.h"

#include "common/check.h"
#include "common/parallel.h"
#include "common/spans.h"
#include "common/telemetry.h"

namespace mfbo::opt {

OptResult multistartMinimize(const ScalarObjective& f,
                             const std::vector<Vector>& starts, const Box& box,
                             const MultistartOptions& options) {
  MFBO_CHECK(!starts.empty(), "no starting points");
  telemetry::Counter& msp_runs =
      telemetry::counter("opt.multistart.runs");
  telemetry::Counter& msp_starts =
      telemetry::counter("opt.multistart.starts");
  telemetry::Counter& msp_iterations =
      telemetry::counter("opt.multistart.local_iterations");
  telemetry::Counter& msp_evaluations =
      telemetry::counter("opt.multistart.evaluations");
  const spans::ScopedSpan multistart_span("multistart");

  // One local refinement per task; each writes into its own slot, so the
  // objective only needs to be safe for concurrent const invocation.
  std::vector<OptResult> locals = parallel::parallelMap(
      starts.size(), [&](std::size_t i) {
        // Per-start span (never per chunk): counts stay thread-independent.
        const spans::ScopedSpan local_span("local_search");
        return nelderMeadMinimize(f, box.clamp(starts[i]), box,
                                  options.local);
      });

  // Ordered reduction in start order: strict < keeps the lowest-indexed
  // winner on ties, and MSP best-start provenance stays exact at any
  // thread count.
  OptResult best;
  bool first = true;
  std::size_t total_evaluations = 0;
  std::size_t total_iterations = 0;
  for (std::size_t i = 0; i < locals.size(); ++i) {
    total_evaluations += locals[i].evaluations;
    total_iterations += locals[i].iterations;
    if (first || locals[i].value < best.value) {
      best = std::move(locals[i]);
      best.best_start = i;
      first = false;
    }
  }
  // Report the cumulative search effort, not just the winning restart's.
  best.evaluations = total_evaluations;
  best.iterations = total_iterations;

  msp_runs.add();
  msp_starts.add(starts.size());
  msp_iterations.add(total_iterations);
  msp_evaluations.add(total_evaluations);
  return best;
}

std::vector<Vector> composeStarts(std::size_t n_random,
                                  const std::vector<Vector>& incumbents,
                                  const std::vector<std::size_t>& counts,
                                  double relative_sd, const Box& box,
                                  linalg::Rng& rng) {
  MFBO_CHECK(incumbents.size() == counts.size(), "got ", incumbents.size(),
             " incumbents but ", counts.size(), " counts");
  std::vector<Vector> starts = linalg::latinHypercube(n_random, box, rng);
  for (std::size_t i = 0; i < incumbents.size(); ++i) {
    for (std::size_t k = 0; k < counts[i]; ++k)
      starts.push_back(
          linalg::gaussianJitterInBox(incumbents[i], relative_sd, box, rng));
  }
  return starts;
}

}  // namespace mfbo::opt
