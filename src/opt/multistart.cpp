#include "opt/multistart.h"

#include "common/check.h"

namespace mfbo::opt {

OptResult multistartMinimize(const ScalarObjective& f,
                             const std::vector<Vector>& starts, const Box& box,
                             const MultistartOptions& options) {
  MFBO_CHECK(!starts.empty(), "no starting points");
  OptResult best;
  bool first = true;
  for (const Vector& start : starts) {
    OptResult local =
        nelderMeadMinimize(f, box.clamp(start), box, options.local);
    local.evaluations += best.evaluations;
    local.iterations += best.iterations;
    if (first || local.value < best.value) {
      const std::size_t evals = local.evaluations;
      const std::size_t iters = local.iterations;
      best = std::move(local);
      best.evaluations = evals;
      best.iterations = iters;
      first = false;
    } else {
      best.evaluations = local.evaluations;
      best.iterations = local.iterations;
    }
  }
  return best;
}

std::vector<Vector> composeStarts(std::size_t n_random,
                                  const std::vector<Vector>& incumbents,
                                  const std::vector<std::size_t>& counts,
                                  double relative_sd, const Box& box,
                                  linalg::Rng& rng) {
  MFBO_CHECK(incumbents.size() == counts.size(), "got ", incumbents.size(),
             " incumbents but ", counts.size(), " counts");
  std::vector<Vector> starts = linalg::latinHypercube(n_random, box, rng);
  for (std::size_t i = 0; i < incumbents.size(); ++i) {
    for (std::size_t k = 0; k < counts[i]; ++k)
      starts.push_back(
          linalg::gaussianJitterInBox(incumbents[i], relative_sd, box, rng));
  }
  return starts;
}

}  // namespace mfbo::opt
