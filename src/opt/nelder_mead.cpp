#include "opt/nelder_mead.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/check.h"

namespace mfbo::opt {

OptResult nelderMeadMinimize(const ScalarObjective& f, const Vector& x0,
                             const std::optional<Box>& box,
                             const NelderMeadOptions& options) {
  MFBO_CHECK(!x0.empty(), "empty start point");
  MFBO_CHECK(!box || box->dim() == x0.size(), "start dim ", x0.size(),
             " does not match box dim ", box ? box->dim() : 0);
  const std::size_t d = x0.size();
  OptResult result;

  auto clamp = [&](Vector x) { return box ? box->clamp(std::move(x)) : x; };
  auto eval = [&](const Vector& x) {
    ++result.evaluations;
    const double v = f(x);
    return std::isfinite(v) ? v : std::numeric_limits<double>::max();
  };

  // Build the initial simplex: x0 plus one vertex displaced per coordinate.
  std::vector<Vector> simplex;
  simplex.reserve(d + 1);
  simplex.push_back(clamp(x0));
  for (std::size_t i = 0; i < d; ++i) {
    Vector v = simplex[0];
    double step = options.initial_step;
    if (box) step *= (box->upper[i] - box->lower[i]);
    if (step == 0.0) step = options.initial_step;
    // Flip direction if the displaced vertex would be clamped back onto v.
    v[i] += step;
    if (box && v[i] > box->upper[i]) v[i] = simplex[0][i] - step;
    simplex.push_back(clamp(std::move(v)));
  }
  std::vector<double> values(simplex.size());
  for (std::size_t i = 0; i < simplex.size(); ++i) values[i] = eval(simplex[i]);

  constexpr double kReflect = 1.0, kExpand = 2.0, kContract = 0.5,
                   kShrink = 0.5;

  while (result.evaluations < options.max_evaluations) {
    ++result.iterations;
    // Order the simplex by objective value.
    std::vector<std::size_t> order(simplex.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
    const std::size_t best = order.front();
    const std::size_t worst = order.back();
    const std::size_t second_worst = order[order.size() - 2];

    // Convergence: value spread and simplex diameter.
    double diam = 0.0;
    for (std::size_t i = 1; i < simplex.size(); ++i)
      diam = std::max(diam, (simplex[order[i]] - simplex[best]).norm());
    if (std::abs(values[worst] - values[best]) <
            options.f_tolerance * (1.0 + std::abs(values[best])) &&
        diam < options.x_tolerance) {
      result.converged = true;
      break;
    }

    // Centroid of all vertices except the worst.
    Vector centroid(d);
    for (std::size_t i = 0; i < simplex.size(); ++i)
      if (i != worst) centroid += simplex[i];
    centroid /= static_cast<double>(simplex.size() - 1);

    const Vector reflected =
        clamp(centroid + kReflect * (centroid - simplex[worst]));
    const double f_reflected = eval(reflected);

    if (f_reflected < values[best]) {
      const Vector expanded =
          clamp(centroid + kExpand * (centroid - simplex[worst]));
      const double f_expanded = eval(expanded);
      if (f_expanded < f_reflected) {
        simplex[worst] = expanded;
        values[worst] = f_expanded;
      } else {
        simplex[worst] = reflected;
        values[worst] = f_reflected;
      }
    } else if (f_reflected < values[second_worst]) {
      simplex[worst] = reflected;
      values[worst] = f_reflected;
    } else {
      const Vector contracted =
          clamp(centroid + kContract * (simplex[worst] - centroid));
      const double f_contracted = eval(contracted);
      if (f_contracted < values[worst]) {
        simplex[worst] = contracted;
        values[worst] = f_contracted;
      } else {
        // Shrink everything toward the best vertex.
        for (std::size_t i = 0; i < simplex.size(); ++i) {
          if (i == best) continue;
          simplex[i] =
              clamp(simplex[best] + kShrink * (simplex[i] - simplex[best]));
          values[i] = eval(simplex[i]);
        }
      }
    }
  }

  const std::size_t best = static_cast<std::size_t>(
      std::min_element(values.begin(), values.end()) - values.begin());
  result.x = simplex[best];
  result.value = values[best];
  return result;
}

}  // namespace mfbo::opt
