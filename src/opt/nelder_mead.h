// mfbo::opt — bounded Nelder–Mead simplex search.
//
// Gradient-free local refinement used where the objective is noisy or
// non-smooth (Monte-Carlo acquisition values of the fused model in
// particular, whose finite-difference gradients are unreliable).
#pragma once

#include <optional>

#include "opt/objective.h"

namespace mfbo::opt {

struct NelderMeadOptions {
  std::size_t max_evaluations = 400;
  double f_tolerance = 1e-9;   ///< stop when simplex value spread shrinks below
  double x_tolerance = 1e-9;   ///< stop when simplex diameter shrinks below
  double initial_step = 0.05;  ///< initial simplex edge, relative to box width
                               ///< (absolute when no box is given)
};

/// Minimize @p f starting from @p x0. With a box, all trial points are
/// clamped into the box (standard bounded-simplex practice).
OptResult nelderMeadMinimize(const ScalarObjective& f, const Vector& x0,
                             const std::optional<Box>& box = std::nullopt,
                             const NelderMeadOptions& options = {});

}  // namespace mfbo::opt
