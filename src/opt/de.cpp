#include "opt/de.h"

#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"

namespace mfbo::opt {

OptResult deMinimize(const ScalarObjective& f, const Box& box,
                     linalg::Rng& rng, const DeOptions& options,
                     const DeCallback& callback) {
  MFBO_CHECK(box.dim() > 0, "zero-dimensional search box");
  const std::size_t d = box.dim();
  const std::size_t np = std::max<std::size_t>(options.population, 4);
  OptResult result;
  result.value = std::numeric_limits<double>::max();

  auto eval = [&](const Vector& x) {
    ++result.evaluations;
    const double v = f(x);
    return std::isfinite(v) ? v : std::numeric_limits<double>::max();
  };
  auto budget_left = [&] {
    return options.max_evaluations == 0 ||
           result.evaluations < options.max_evaluations;
  };

  std::vector<Vector> pop = linalg::latinHypercube(np, box, rng);
  std::vector<double> values(np);
  for (std::size_t i = 0; i < np && budget_left(); ++i) {
    values[i] = eval(pop[i]);
    if (values[i] < result.value) {
      result.value = values[i];
      result.x = pop[i];
    }
  }

  for (std::size_t gen = 0; gen < options.max_generations && budget_left();
       ++gen) {
    ++result.iterations;
    for (std::size_t i = 0; i < np && budget_left(); ++i) {
      const auto picks = rng.distinctIndices(3, np, i);
      const Vector& a = pop[picks[0]];
      const Vector& b = pop[picks[1]];
      const Vector& c = pop[picks[2]];
      Vector trial = pop[i];
      const std::size_t forced = rng.index(d);  // at least one mutant gene
      for (std::size_t j = 0; j < d; ++j) {
        if (j == forced || rng.uniform() < options.crossover)
          trial[j] = a[j] + options.differential * (b[j] - c[j]);
      }
      trial = box.clamp(std::move(trial));
      const double trial_value = eval(trial);
      if (trial_value <= values[i]) {
        pop[i] = std::move(trial);
        values[i] = trial_value;
        if (trial_value < result.value) {
          result.value = trial_value;
          result.x = pop[i];
        }
      }
    }
    if (callback && !callback(gen, result.value)) break;
  }
  result.converged = true;  // DE has no gradient criterion; budget-based stop
  return result;
}

}  // namespace mfbo::opt
