#include "opt/objective.h"

#include <cmath>

namespace mfbo::opt {

GradObjective withNumericGradient(ScalarObjective f, double h) {
  return [f = std::move(f), h](const Vector& x, Vector* grad) -> double {
    const double fx = f(x);
    if (grad != nullptr) {
      *grad = Vector(x.size());
      Vector probe = x;
      for (std::size_t i = 0; i < x.size(); ++i) {
        const double step = h * std::max(1.0, std::abs(x[i]));
        probe[i] = x[i] + step;
        const double fp = f(probe);
        probe[i] = x[i] - step;
        const double fm = f(probe);
        probe[i] = x[i];
        (*grad)[i] = (fp - fm) / (2.0 * step);
      }
    }
    return fx;
  };
}

}  // namespace mfbo::opt
