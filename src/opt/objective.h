// mfbo::opt — objective-function interfaces shared by every optimizer.
#pragma once

#include <functional>

#include "linalg/sampling.h"
#include "linalg/vector.h"

namespace mfbo::opt {

using linalg::Box;
using linalg::Vector;

/// Plain scalar objective f(x) (to be minimized unless stated otherwise).
using ScalarObjective = std::function<double(const Vector&)>;

/// Objective returning f(x) and, when @p grad is non-null, writing ∇f(x)
/// into it. Used by L-BFGS for the GP marginal likelihood where analytic
/// gradients are available.
using GradObjective = std::function<double(const Vector&, Vector* grad)>;

/// Wrap a gradient-free objective with central finite differences so it can
/// drive a gradient-based optimizer. Step h is relative per coordinate.
GradObjective withNumericGradient(ScalarObjective f, double h = 1e-6);

/// Result of a local or global minimization.
struct OptResult {
  Vector x;            ///< best point found
  double value = 0.0;  ///< objective at x
  std::size_t evaluations = 0;  ///< number of objective calls consumed
  std::size_t iterations = 0;   ///< optimizer iterations performed
  bool converged = false;       ///< tolerance met before hitting limits
  /// Index (into the start list) of the start that produced x. Only
  /// meaningful for multistart drivers; callers use it to attribute the
  /// winner to its provenance (random / incumbent scatter / seed).
  std::size_t best_start = 0;
};

}  // namespace mfbo::opt
