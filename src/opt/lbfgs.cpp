#include "opt/lbfgs.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/check.h"

namespace mfbo::opt {

namespace {

Vector project(const Vector& x, const std::optional<Box>& box) {
  return box ? box->clamp(x) : x;
}

// Projected gradient: zero out components that push against an active bound,
// so convergence at the boundary is recognized.
Vector projectedGradient(const Vector& x, const Vector& grad,
                         const std::optional<Box>& box) {
  if (!box) return grad;
  Vector pg = grad;
  constexpr double kEdge = 1e-12;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const bool at_lower = x[i] <= box->lower[i] + kEdge && grad[i] > 0.0;
    const bool at_upper = x[i] >= box->upper[i] - kEdge && grad[i] < 0.0;
    if (at_lower || at_upper) pg[i] = 0.0;
  }
  return pg;
}

double infNorm(const Vector& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

}  // namespace

OptResult lbfgsMinimize(const GradObjective& f, const Vector& x0,
                        const std::optional<Box>& box,
                        const LbfgsOptions& options) {
  MFBO_CHECK(!x0.empty(), "empty start point");
  MFBO_CHECK(!box || box->dim() == x0.size(), "start dim ", x0.size(),
             " does not match box dim ", box ? box->dim() : 0);
  OptResult result;
  Vector x = project(x0, box);
  Vector grad;
  double fx = f(x, &grad);
  ++result.evaluations;
  if (!std::isfinite(fx) || !grad.allFinite()) {
    result.x = x;
    result.value = fx;
    return result;
  }

  result.x = x;
  result.value = fx;

  // History of s = x_{k+1} - x_k and y = g_{k+1} - g_k pairs.
  std::deque<Vector> s_hist, y_hist;
  std::deque<double> rho_hist;
  std::size_t stall_count = 0;

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    const Vector pg = projectedGradient(x, grad, box);
    if (infNorm(pg) < options.grad_tolerance) {
      result.converged = true;
      break;
    }

    // Two-loop recursion for the search direction d = -H·g.
    Vector q = grad;
    std::vector<double> alpha(s_hist.size());
    for (std::size_t i = s_hist.size(); i-- > 0;) {
      alpha[i] = rho_hist[i] * dot(s_hist[i], q);
      q -= alpha[i] * y_hist[i];
    }
    if (!s_hist.empty()) {
      const Vector& s = s_hist.back();
      const Vector& y = y_hist.back();
      const double yy = dot(y, y);
      if (yy > 0.0) q *= dot(s, y) / yy;
    }
    for (std::size_t i = 0; i < s_hist.size(); ++i) {
      const double beta = rho_hist[i] * dot(y_hist[i], q);
      q += (alpha[i] - beta) * s_hist[i];
    }
    Vector direction = -q;

    // Fall back to steepest descent when the quasi-Newton direction is not
    // a descent direction (can happen after projections).
    if (dot(direction, grad) >= 0.0) {
      direction = -grad;
      s_hist.clear();
      y_hist.clear();
      rho_hist.clear();
    }

    // Weak-Wolfe line search (Armijo sufficient decrease + curvature
    // condition) by bisection/expansion. The curvature condition keeps
    // sᵀy > 0, which the quasi-Newton update needs; Armijo-only
    // backtracking stalls in curved valleys. If the quasi-Newton direction
    // fails entirely, retry once with steepest descent.
    constexpr double kArmijo = 1e-4;
    constexpr double kCurvature = 0.9;
    Vector x_new;
    Vector grad_new;
    double f_new = fx;
    bool accepted = false;
    for (int attempt = 0; attempt < 2 && !accepted; ++attempt) {
      if (attempt == 1) {
        direction = -grad;
        s_hist.clear();
        y_hist.clear();
        rho_hist.clear();
      }
      const double dir_deriv = dot(direction, grad);
      double step = attempt == 0 ? 1.0 : 1.0 / std::max(1.0, infNorm(grad));
      double lo = 0.0;                 // highest Armijo-satisfying step found
      double hi = 0.0;                 // lowest Armijo-violating step (0 = none)
      for (std::size_t ls = 0; ls < options.max_line_search; ++ls) {
        x_new = project(x + step * direction, box);
        f_new = f(x_new, &grad_new);
        ++result.evaluations;
        const Vector actual_step = x_new - x;
        const bool finite = std::isfinite(f_new) && grad_new.allFinite();
        const double predicted = kArmijo * std::min(step * dir_deriv, -1e-16);
        const bool armijo =
            finite && f_new <= fx + predicted && actual_step.norm() > 0.0;
        if (!armijo) {
          hi = step;
        } else if (dot(grad_new, direction) < kCurvature * dir_deriv &&
                   (!box || box->contains(x + step * direction))) {
          // Armijo holds but curvature does not: the step is too short.
          lo = step;
        } else {
          accepted = true;
          break;
        }
        step = hi > 0.0 ? 0.5 * (lo + hi) : step * 2.0;
        if (step > 1e12) break;
      }
      // A step that satisfies Armijo but not curvature is still usable —
      // better to take it than to abandon the iteration.
      if (!accepted && lo > 0.0) {
        x_new = project(x + lo * direction, box);
        f_new = f(x_new, &grad_new);
        ++result.evaluations;
        accepted = std::isfinite(f_new) && grad_new.allFinite();
      }
    }
    if (!accepted) {
      result.converged = infNorm(pg) < options.grad_tolerance * 10.0;
      break;
    }

    const Vector s = x_new - x;
    const Vector y = grad_new - grad;
    const double sy = dot(s, y);
    if (sy > 1e-12 * s.norm() * y.norm()) {
      s_hist.push_back(s);
      y_hist.push_back(y);
      rho_hist.push_back(1.0 / sy);
      if (s_hist.size() > options.memory) {
        s_hist.pop_front();
        y_hist.pop_front();
        rho_hist.pop_front();
      }
    }

    const double f_old = fx;
    x = std::move(x_new);
    grad = std::move(grad_new);
    fx = f_new;
    if (fx < result.value) {
      result.value = fx;
      result.x = x;
    }
    // Declare convergence only after two consecutive stagnant iterations —
    // narrow curved valleys (Rosenbrock-like NLML landscapes) often make
    // one slow step before picking up speed again.
    if (std::abs(f_old - fx) <=
        options.f_tolerance * std::max(1.0, std::abs(f_old))) {
      if (++stall_count >= 2) {
        result.converged = true;
        break;
      }
    } else {
      stall_count = 0;
    }
  }
  return result;
}

}  // namespace mfbo::opt
