// mfbo::opt — multiple-starting-point (MSP) local search driver.
//
// The paper (§4.1, citing Peng 2016 / Yang 2018) optimizes every acquisition
// function with MSP: scatter starting points, run a local optimizer from
// each, keep the best terminal point. The *placement* of starts (random +
// fractions around the incumbents τ_l/τ_h) is decided by the BO layer and
// passed in here as an explicit start list.
#pragma once

#include <vector>

#include "opt/nelder_mead.h"
#include "opt/objective.h"

namespace mfbo::opt {

struct MultistartOptions {
  NelderMeadOptions local;  ///< settings for each local refinement
};

/// Run a bounded Nelder-Mead refinement from every start and return the best
/// terminal result. Starts outside the box are clamped. Requires at least
/// one start. Restarts run on the common/parallel.h pool (one start per
/// task) with an ordered argmin reduction, so the result — including the
/// best_start provenance index — is identical at any thread count; @p f
/// must tolerate concurrent const invocation.
OptResult multistartMinimize(const ScalarObjective& f,
                             const std::vector<Vector>& starts, const Box& box,
                             const MultistartOptions& options = {});

/// Compose the §4.1 start list: `n_random` space-filling starts plus
/// Gaussian scatter around each provided incumbent (`counts[i]` starts with
/// relative sd `relative_sd` around `incumbents[i]`).
std::vector<Vector> composeStarts(std::size_t n_random,
                                  const std::vector<Vector>& incumbents,
                                  const std::vector<std::size_t>& counts,
                                  double relative_sd, const Box& box,
                                  linalg::Rng& rng);

}  // namespace mfbo::opt
