// mfbo::opt — differential evolution (DE/rand/1/bin).
//
// Serves two roles: the global engine inside the GASPAD baseline, and the
// standalone DE baseline of the paper's Tables 1-2 (Liu et al. 2009 use a
// hybrid EA; classic DE is the canonical stand-in).
#pragma once

#include <functional>

#include "opt/objective.h"

namespace mfbo::opt {

struct DeOptions {
  std::size_t population = 40;
  std::size_t max_generations = 100;
  double crossover = 0.8;       ///< CR, probability of taking the mutant gene
  double differential = 0.7;    ///< F, differential weight
  /// Optional cap on total objective evaluations (0 = unlimited). The run
  /// stops mid-generation once the cap is reached.
  std::size_t max_evaluations = 0;
};

/// Per-generation callback: (generation, best value so far). Return false to
/// stop early (used by budget-limited baseline runs).
using DeCallback = std::function<bool(std::size_t, double)>;

/// Global minimization of f over a box with DE/rand/1/bin.
OptResult deMinimize(const ScalarObjective& f, const Box& box,
                     linalg::Rng& rng, const DeOptions& options = {},
                     const DeCallback& callback = nullptr);

}  // namespace mfbo::opt
