// mfbo::bo — plain differential-evolution baseline (the paper's "DE",
// standing in for the hybrid EA of Liu et al. 2009).
//
// DE/rand/1/bin on the real design box with Deb's feasibility rules for
// selection: feasible beats infeasible, feasible compares by objective,
// infeasible compares by total violation. Every candidate costs one
// high-fidelity simulation.
#pragma once

#include "bo/common.h"

namespace mfbo::bo {

struct DeBaselineOptions {
  std::size_t population = 50;
  double max_sims = 300.0;   ///< simulation budget including initialization
  double differential = 0.7;
  double crossover = 0.8;
  /// Optional progress callback, invoked once per DE generation.
  IterationObserver observer;
};

class DeBaseline {
 public:
  explicit DeBaseline(DeBaselineOptions options = {}) : options_(options) {}

  /// Run one synthesis. Deterministic given (problem, seed).
  SynthesisResult run(Problem& problem, std::uint64_t seed) const;

  const DeBaselineOptions& options() const { return options_; }

 private:
  DeBaselineOptions options_;
};

}  // namespace mfbo::bo
