// mfbo::bo — synthesis run records.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "bo/problem.h"

namespace mfbo::bo {

/// One evaluated point in the order it was queried.
struct HistoryEntry {
  Vector x;
  Evaluation eval;
  Fidelity fidelity = Fidelity::kHigh;
  /// Cumulative cost in equivalent high-fidelity simulations *after* this
  /// evaluation (low-fidelity evaluations add 1/costRatio).
  double cumulative_cost = 0.0;
};

/// Outcome of one synthesis run.
struct SynthesisResult {
  Vector best_x;               ///< best feasible point (or least-violating)
  Evaluation best_eval;        ///< its evaluation (high fidelity)
  bool feasible_found = false;
  std::size_t n_low = 0;       ///< low-fidelity evaluations consumed
  std::size_t n_high = 0;      ///< high-fidelity evaluations consumed
  double equivalent_high_sims = 0.0;  ///< n_high + n_low / costRatio
  std::vector<HistoryEntry> history;
};

/// Index of the best entry among high-fidelity history entries: the
/// feasible one with the smallest objective, or — when none is feasible —
/// the one with the smallest total violation. Returns nullopt when there
/// are no high-fidelity entries.
std::optional<std::size_t> bestHighIndex(
    const std::vector<HistoryEntry>& history);

}  // namespace mfbo::bo
