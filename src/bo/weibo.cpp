#include "bo/weibo.h"

#include <memory>

#include "bo/engine.h"

namespace mfbo::bo {

// The synthesis loop itself lives in WeiboEngine (bo/engine.cpp), on the
// same state-machine skeleton as MFBO; it reproduces the former inline
// loop bit-for-bit.

SynthesisResult Weibo::run(Problem& problem, std::uint64_t seed) const {
  WeiboEngine engine(problem, seed, options_);
  return engine.run();
}

SynthesisResult Weibo::resume(Problem& problem, const Json& checkpoint) const {
  // The seed is part of the checkpoint; the constructor argument is
  // overwritten by restore().
  WeiboEngine engine(problem, 0, options_);
  engine.restore(checkpoint);
  return engine.run();
}

std::unique_ptr<Engine> Weibo::makeEngine(Problem& problem,
                                          std::uint64_t seed) const {
  return std::make_unique<WeiboEngine>(problem, seed, options_);
}

}  // namespace mfbo::bo
