#include "bo/weibo.h"

#include <memory>
#include <utility>

#include "bo/acquisition.h"
#include "common/check.h"
#include "common/spans.h"
#include "common/telemetry.h"

namespace mfbo::bo {

SynthesisResult Weibo::run(Problem& problem, std::uint64_t seed) const {
  const std::size_t d = problem.dim();
  MFBO_CHECK(d > 0, "problem has zero dimensions");
  const std::size_t nc = problem.numConstraints();
  const Box real_box = problem.bounds();
  const Box unit = Box::unitCube(d);
  Rng rng(seed);
  const spans::ScopedSpan run_span("weibo");
  traceRunStart("weibo", problem, seed, options_.max_sims);
  static telemetry::Counter& iterations_total =
      telemetry::counter("bo.weibo.iterations");

  CostTracker tracker(problem.costRatio());
  std::vector<HistoryEntry> history;
  Dataset data;

  auto evaluate = [&](const Vector& u) {
    const spans::ScopedSpan sim_span("simulate_high");
    spans::addCounter("sims_high");
    const Vector x_real = real_box.fromUnit(u);
    Evaluation eval = problem.evaluate(x_real, Fidelity::kHigh);
    tracker.charge(Fidelity::kHigh);
    history.push_back({x_real, eval, Fidelity::kHigh, tracker.cost()});
    data.add(u, std::move(eval));
  };

  // Initial space-filling design.
  const std::size_t n_init =
      std::min<std::size_t>(options_.n_init,
                            static_cast<std::size_t>(options_.max_sims));
  for (const Vector& u : linalg::latinHypercube(n_init, unit, rng))
    evaluate(u);

  // One GP per output: index 0 is the objective, 1..nc the constraints.
  std::vector<gp::GpRegressor> models;
  models.reserve(1 + nc);
  for (std::size_t i = 0; i <= nc; ++i) {
    gp::GpConfig cfg = options_.gp;
    cfg.seed = seed * 1000003u + i;
    models.emplace_back(std::make_unique<gp::SeArdKernel>(d), cfg);
  }
  auto fit_all = [&] {
    const spans::ScopedSpan fit_span("fit_high");
    models[0].fit(data.x, data.objectives());
    for (std::size_t i = 0; i < nc; ++i)
      models[1 + i].fit(data.x, data.constraintColumn(i));
  };
  fit_all();

  auto constraint_predictions = [&](const Vector& u) {
    std::vector<gp::Prediction> cons(nc);
    for (std::size_t i = 0; i < nc; ++i) cons[i] = models[1 + i].predict(u);
    return cons;
  };

  std::size_t iteration = 0;
  while (tracker.cost() + 1.0 <= options_.max_sims + 1e-9) {
    ++iteration;
    iterations_total.add();
    const auto feasible_idx = data.bestFeasible();

    Vector candidate;
    double tau = IterationRecord::kNan;
    const bool ff = nc > 0 && !feasible_idx && options_.use_first_feasible;
    std::optional<spans::ScopedSpan> phase_span;
    phase_span.emplace("acq_high");
    if (ff) {
      // First-feasible phase (eq. 13): pull the search into the predicted
      // feasible region before spending budget on wEI.
      opt::ScalarObjective criterion = [&](const Vector& u) {
        return predictedViolation(constraint_predictions(u));
      };
      candidate = minimizeCriterionMsp(criterion, unit, options_.msp.n_starts,
                                       options_.msp.local, rng);
    } else {
      tau = feasible_idx ? data.evals[*feasible_idx].objective
                         : models[0].bestObserved();
      // Ranked in log space so constraint-product underflow cannot
      // flatten the MSP search surface; the record below reports the
      // linear-space value.
      opt::ScalarObjective acq = [&](const Vector& u) {
        return logWeightedEi(models[0].predict(u), tau,
                             constraint_predictions(u));
      };
      // Single-fidelity: only the τ_h incumbent exists (fraction per §4.1).
      const std::optional<Vector> incumbent =
          feasible_idx ? std::optional<Vector>(data.x[*feasible_idx])
                       : std::optional<Vector>(data.x[data.bestByMerit()]);
      candidate = maximizeAcquisitionMsp(acq, unit, std::nullopt, incumbent,
                                         options_.msp, rng);
    }

    candidate = dedupeCandidate(std::move(candidate), data, unit, rng);
    phase_span.reset();
    evaluate(candidate);

    // Update the models with the new observation.
    const bool retrain = options_.retrain_every <= 1 ||
                         iteration % options_.retrain_every == 0;

    if (iterationWanted(options_.observer)) {
      const spans::ScopedSpan observe_span("observe");
      IterationRecord rec;
      rec.algo = "weibo";
      rec.iteration = iteration;
      rec.fidelity = Fidelity::kHigh;
      rec.retrained = retrain;
      rec.first_feasible_phase = ff;
      rec.tau_h = tau;
      rec.cumulative_cost = tracker.cost();
      rec.x = &history.back().x;
      rec.eval = &history.back().eval;
      // Acquisition (or eq. 13 criterion) value at the evaluated point,
      // on the pre-update models that selected it.
      rec.acquisition =
          ff ? predictedViolation(constraint_predictions(candidate))
             : weightedEi(models[0].predict(candidate), tau,
                          constraint_predictions(candidate));
      if (const auto best = bestHighIndex(history)) {
        rec.best_objective = history[*best].eval.objective;
        rec.feasible_found = history[*best].eval.feasible();
      }
      publishIteration(rec, options_.observer);
    }

    if (retrain) {
      fit_all();
    } else {
      const spans::ScopedSpan fit_span("fit_high");
      models[0].addPoint(data.x.back(), data.evals.back().objective, false);
      for (std::size_t i = 0; i < nc; ++i)
        models[1 + i].addPoint(data.x.back(),
                               data.evals.back().constraints[i], false);
    }
  }

  SynthesisResult result = finalizeResult(std::move(history), tracker);
  traceRunEnd("weibo", result);
  return result;
}

}  // namespace mfbo::bo
