// mfbo::bo — black-box problem interface (paper eq. 1).
//
// A synthesis problem minimizes f(x) subject to c_i(x) < 0 over a box.
// Every problem exposes two evaluation fidelities; single-fidelity
// algorithms simply always request Fidelity::kHigh. costRatio() reports how
// many low-fidelity evaluations cost as much as one high-fidelity
// evaluation, which is how the paper converts mixed budgets into
// "equivalent high-fidelity simulations".
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "linalg/sampling.h"
#include "linalg/vector.h"

namespace mfbo::bo {

using linalg::Box;
using linalg::Vector;

enum class Fidelity { kLow, kHigh };

/// One black-box evaluation: objective value plus raw constraint values in
/// the canonical form c_i(x) < 0 ⇔ feasible.
struct Evaluation {
  double objective = 0.0;
  std::vector<double> constraints;

  /// All constraints strictly satisfied.
  bool feasible() const {
    for (double c : constraints)
      if (c >= 0.0) return false;
    return true;
  }
  /// Σ max(0, c_i) — total violation, 0 iff feasible (up to the boundary).
  double totalViolation() const {
    double acc = 0.0;
    for (double c : constraints)
      if (c > 0.0) acc += c;
    return acc;
  }
};

/// Constrained two-fidelity black-box problem.
class Problem {
 public:
  virtual ~Problem() = default;

  virtual std::string name() const = 0;
  /// Number of design variables d.
  virtual std::size_t dim() const = 0;
  /// Number of constraints Nc (0 for unconstrained problems).
  virtual std::size_t numConstraints() const = 0;
  /// Design-variable bounds.
  virtual Box bounds() const = 0;
  /// Evaluate the black box at @p x (must lie inside bounds()).
  /// Reentrancy contract: the engine fans a proposal batch's evaluations
  /// out over the shared thread pool (bo/engine.cpp), so concurrent calls
  /// on one instance must be safe — implementations are pure functions of
  /// (x, fidelity) and keep no per-call mutable state.
  virtual Evaluation evaluate(const Vector& x, Fidelity fidelity) = 0;
  /// cost(high) / cost(low); must be ≥ 1.
  virtual double costRatio() const = 0;
};

}  // namespace mfbo::bo
