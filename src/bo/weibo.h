// mfbo::bo — WEIBO: single-fidelity GP Bayesian optimization with the
// weighted-EI acquisition (Lyu et al. 2018), the paper's main baseline.
//
// Loop: fit one GP per output (objective + each constraint) on all
// high-fidelity data, maximize wEI with the MSP strategy, evaluate, repeat.
// While no feasible point is known, the eq. (13) first-feasible criterion
// (Σ max(0, µ_i)) is minimized instead of wEI.
#pragma once

#include <memory>

#include "bo/common.h"
#include "gp/gp_regressor.h"

namespace mfbo {
class Json;
}

namespace mfbo::bo {

class Engine;

struct WeiboOptions {
  std::size_t n_init = 20;     ///< initial LHS design (high fidelity)
  double max_sims = 100.0;     ///< total simulation budget including init
  MspOptions msp;
  gp::GpConfig gp;
  /// Re-optimize GP hyperparameters every k-th added point (1 = always);
  /// cheap posterior-only updates in between.
  std::size_t retrain_every = 1;
  /// §4.2 first-feasible strategy; disable only for ablation.
  bool use_first_feasible = true;
  /// Optional per-iteration progress callback (live streaming, --verbose).
  IterationObserver observer;
};

class Weibo {
 public:
  explicit Weibo(WeiboOptions options = {}) : options_(options) {}

  /// Run one synthesis. Deterministic given (problem, seed).
  SynthesisResult run(Problem& problem, std::uint64_t seed) const;

  /// Resume a run from an Engine::checkpoint() document (see
  /// MfboSynthesizer::resume).
  SynthesisResult resume(Problem& problem, const Json& checkpoint) const;

  /// Build the underlying state machine for stepwise driving.
  std::unique_ptr<Engine> makeEngine(Problem& problem,
                                     std::uint64_t seed) const;

  const WeiboOptions& options() const { return options_; }

 private:
  WeiboOptions options_;
};

}  // namespace mfbo::bo
