#include "bo/acquisition.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "common/check.h"
#include "linalg/stats.h"

namespace mfbo::bo {

double expectedImprovement(const Prediction& p, double tau) {
  MFBO_DCHECK(std::isfinite(p.mean) && std::isfinite(p.var),
              "non-finite prediction: mean=", p.mean, " var=", p.var);
  MFBO_DCHECK(std::isfinite(tau), "non-finite incumbent tau=", tau);
  const double sd = p.sd();
  if (sd < 1e-12) return std::max(0.0, tau - p.mean);
  const double lambda = (tau - p.mean) / sd;
  // EI is a product of finite factors; guard the composite value so a bad
  // surrogate surfaces here instead of silently steering the MSP search.
  return MFBO_CHECK_FINITE(
      sd * (lambda * linalg::normalCdf(lambda) + linalg::normalPdf(lambda)),
      "EI(mean=", p.mean, ", sd=", sd, ", tau=", tau, ")");
}

double probabilityOfFeasibility(const Prediction& p) {
  MFBO_DCHECK(std::isfinite(p.mean) && std::isfinite(p.var),
              "non-finite prediction: mean=", p.mean, " var=", p.var);
  const double sd = p.sd();
  if (sd < 1e-12) {
    // Indicator limit, except exactly on the boundary where Φ(−µ/σ) ≡ ½
    // for every σ > 0 — returning 0 there would misclassify an exactly
    // boundary-tight constraint as hopeless.
    if (p.mean == 0.0) return 0.5;
    return p.mean < 0.0 ? 1.0 : 0.0;
  }
  return linalg::normalCdf(-p.mean / sd);
}

double weightedEi(const Prediction& objective, double tau,
                  const std::vector<Prediction>& constraints) {
  double acq = expectedImprovement(objective, tau);
  for (const Prediction& c : constraints) acq *= probabilityOfFeasibility(c);
  return acq;
}

namespace {

/// log(φ(λ) + λ·Φ(λ)) — the scale-free EI factor in log space. For
/// λ ≲ −25 the two terms cancel to ~λ²·ε relative error and Φ itself
/// heads toward underflow, so the Mills-ratio expansion
///   φ(λ) + λΦ(λ) = φ(λ)/λ² · (1 − 3/λ² + 15/λ⁴ − O(λ⁻⁶))
/// takes over (relative error < 945/λ⁸ ≈ 6e-12 at the crossover).
double logEiFactor(double lambda) {
  if (lambda > -25.0) {
    const double h =
        linalg::normalPdf(lambda) + lambda * linalg::normalCdf(lambda);
    return h > 0.0 ? std::log(h) : -std::numeric_limits<double>::infinity();
  }
  const double l2 = lambda * lambda;
  const double series = -3.0 / l2 + 15.0 / (l2 * l2) - 105.0 / (l2 * l2 * l2);
  return -0.5 * l2 - 0.5 * std::log(2.0 * std::numbers::pi) -
         2.0 * std::log(-lambda) + std::log1p(series);
}

}  // namespace

double logExpectedImprovement(const Prediction& p, double tau) {
  MFBO_DCHECK(std::isfinite(p.mean) && std::isfinite(p.var),
              "non-finite prediction: mean=", p.mean, " var=", p.var);
  MFBO_DCHECK(std::isfinite(tau), "non-finite incumbent tau=", tau);
  const double sd = p.sd();
  if (sd < 1e-12) {
    const double gap = tau - p.mean;
    return gap > 0.0 ? std::log(gap)
                     : -std::numeric_limits<double>::infinity();
  }
  const double lambda = (tau - p.mean) / sd;
  const double log_ei = std::log(sd) + logEiFactor(lambda);
  MFBO_DCHECK(!std::isnan(log_ei), "logEI(mean=", p.mean, ", sd=", sd,
              ", tau=", tau, ") is NaN");
  return log_ei;
}

double logProbabilityOfFeasibility(const Prediction& p) {
  MFBO_DCHECK(std::isfinite(p.mean) && std::isfinite(p.var),
              "non-finite prediction: mean=", p.mean, " var=", p.var);
  const double sd = p.sd();
  if (sd < 1e-12) {
    if (p.mean == 0.0) return std::log(0.5);
    return p.mean < 0.0 ? 0.0 : -std::numeric_limits<double>::infinity();
  }
  return linalg::logNormalCdf(-p.mean / sd);
}

double logWeightedEi(const Prediction& objective, double tau,
                     const std::vector<Prediction>& constraints) {
  double acq = logExpectedImprovement(objective, tau);
  for (const Prediction& c : constraints)
    acq += logProbabilityOfFeasibility(c);
  return acq;
}

double lowerConfidenceBound(const Prediction& p, double kappa) {
  return p.mean - kappa * p.sd();
}

double upperConfidenceBound(const Prediction& p, double kappa) {
  return p.mean + kappa * p.sd();
}

double predictedViolation(const std::vector<Prediction>& constraints) {
  double acc = 0.0;
  for (const Prediction& c : constraints) acc += std::max(0.0, c.mean);
  return acc;
}

}  // namespace mfbo::bo
