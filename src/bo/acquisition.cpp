#include "bo/acquisition.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "linalg/stats.h"

namespace mfbo::bo {

double expectedImprovement(const Prediction& p, double tau) {
  MFBO_DCHECK(std::isfinite(p.mean) && std::isfinite(p.var),
              "non-finite prediction: mean=", p.mean, " var=", p.var);
  MFBO_DCHECK(std::isfinite(tau), "non-finite incumbent tau=", tau);
  const double sd = p.sd();
  if (sd < 1e-12) return std::max(0.0, tau - p.mean);
  const double lambda = (tau - p.mean) / sd;
  // EI is a product of finite factors; guard the composite value so a bad
  // surrogate surfaces here instead of silently steering the MSP search.
  return MFBO_CHECK_FINITE(
      sd * (lambda * linalg::normalCdf(lambda) + linalg::normalPdf(lambda)),
      "EI(mean=", p.mean, ", sd=", sd, ", tau=", tau, ")");
}

double probabilityOfFeasibility(const Prediction& p) {
  MFBO_DCHECK(std::isfinite(p.mean) && std::isfinite(p.var),
              "non-finite prediction: mean=", p.mean, " var=", p.var);
  const double sd = p.sd();
  if (sd < 1e-12) return p.mean < 0.0 ? 1.0 : 0.0;
  return linalg::normalCdf(-p.mean / sd);
}

double weightedEi(const Prediction& objective, double tau,
                  const std::vector<Prediction>& constraints) {
  double acq = expectedImprovement(objective, tau);
  for (const Prediction& c : constraints) acq *= probabilityOfFeasibility(c);
  return acq;
}

double lowerConfidenceBound(const Prediction& p, double kappa) {
  return p.mean - kappa * p.sd();
}

double upperConfidenceBound(const Prediction& p, double kappa) {
  return p.mean + kappa * p.sd();
}

double predictedViolation(const std::vector<Prediction>& constraints) {
  double acc = 0.0;
  for (const Prediction& c : constraints) acc += std::max(0.0, c.mean);
  return acc;
}

}  // namespace mfbo::bo
