// mfbo::bo — acquisition functions (paper §2.4).
//
// Scalar building blocks over posterior (µ, σ²) pairs:
//  * expectedImprovement — eq. (5)
//  * probabilityOfFeasibility — PF_i = Φ(−µ_i/σ_i)
//  * weightedEi — eq. (6), EI × Π PF_i
//  * logExpectedImprovement / logProbabilityOfFeasibility / logWeightedEi
//    — the same quantities in log space. The linear-space product Π PF_i
//    underflows to exactly 0 wherever several constraints are
//    simultaneously improbable, flattening the surface the MSP search has
//    to rank; the log forms stay finite and strictly ordered there. The
//    synthesis loops optimize the log forms and report the linear ones.
//  * lowerConfidenceBound — the LCB used by the GASPAD baseline
//  * upperConfidenceBound — provided for completeness (§2.4 mentions UCB)
#pragma once

#include <vector>

#include "gp/gp_regressor.h"

namespace mfbo::bo {

using gp::Prediction;

/// Expected improvement of a minimization objective below incumbent @p tau
/// (eq. 5). Degenerates gracefully to max(0, τ−µ) as σ → 0.
double expectedImprovement(const Prediction& p, double tau);

/// Probability that a constraint posterior satisfies c(x) < 0:
/// PF = Φ(−µ/σ). Degenerates to the indicator µ < 0 as σ → 0, with the
/// boundary µ == 0 giving the symmetric limit ½ (Φ(−µ/σ) → ½ along any
/// path with µ ≡ 0).
double probabilityOfFeasibility(const Prediction& p);

/// Weighted expected improvement (eq. 6): EI(objective) × Π_i PF(c_i).
double weightedEi(const Prediction& objective, double tau,
                  const std::vector<Prediction>& constraints);

/// log EI (eq. 5 in log space), finite however far µ sits above τ: the
/// deep-tail factor λΦ(λ)+φ(λ) is evaluated through a Mills-ratio
/// expansion instead of the catastrophically cancelling direct form.
/// Returns −∞ only for the exactly-zero degenerate case (σ → 0, µ ≥ τ).
double logExpectedImprovement(const Prediction& p, double tau);

/// log Φ(−µ/σ) via linalg::logNormalCdf; −∞ only for σ → 0, µ > 0.
double logProbabilityOfFeasibility(const Prediction& p);

/// log wEI = logEI + Σ_i log PF_i. Equal to log(weightedEi(...)) wherever
/// the linear product does not underflow; still finite and correctly
/// ranked where it does. This is what the MSP search should maximize.
double logWeightedEi(const Prediction& objective, double tau,
                     const std::vector<Prediction>& constraints);

/// µ − κ·σ; smaller is more promising for minimization (GASPAD's ranking).
double lowerConfidenceBound(const Prediction& p, double kappa);

/// µ + κ·σ.
double upperConfidenceBound(const Prediction& p, double kappa);

/// First-feasible search objective (eq. 13): Σ_i max(0, µ_i) over the
/// constraint posteriors. Zero inside the predicted-feasible region.
double predictedViolation(const std::vector<Prediction>& constraints);

}  // namespace mfbo::bo
