#include "bo/engine.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <string>
#include <utility>

#include "bo/acquisition.h"
#include "common/check.h"
#include "common/eventlog.h"
#include "common/parallel.h"
#include "common/spans.h"

namespace mfbo::bo {

namespace {

constexpr const char* kCheckpointFormat = "mfbo-engine-checkpoint";
constexpr int kCheckpointVersion = 1;

/// Number field that serializes NaN (field not applicable) as null.
Json numberOrNull(double v) {
  return std::isfinite(v) ? Json::number(v) : Json::null();
}

/// Exact-set key validation: unknown keys are as much a corruption signal
/// as missing ones (a renamed field would otherwise be silently ignored and
/// its old default silently used).
void checkKeys(const Json& obj, std::initializer_list<const char*> keys,
               const char* context) {
  MFBO_CHECK(obj.isObject(), context, " must be a JSON object");
  for (const auto& [key, value] : obj.members()) {
    bool known = false;
    for (const char* k : keys) {
      if (key == k) {
        known = true;
        break;
      }
    }
    MFBO_CHECK(known, context, " has unrecognized key '", key, "'");
  }
  for (const char* k : keys)
    MFBO_CHECK(obj.contains(k), context, " is missing key '", k, "'");
}

const std::string& stringField(const Json& obj, const char* key) {
  const Json& v = obj.at(key);
  MFBO_CHECK(v.isString(), "checkpoint field '", key, "' must be a string");
  return v.asString();
}

bool boolField(const Json& obj, const char* key) {
  const Json& v = obj.at(key);
  MFBO_CHECK(v.isBool(), "checkpoint field '", key, "' must be a boolean");
  return v.asBool();
}

/// Finite number (a JSON null here means the original value was non-finite
/// — exactly the corruption the NaN-payload battery feeds in).
double finiteValue(const Json& v, const char* context) {
  MFBO_CHECK(v.isNumber(), context, " must be a finite number");
  const double x = v.asNumber();
  MFBO_CHECK(std::isfinite(x), context, " must be finite, got ", x);
  return x;
}

double finiteNumber(const Json& obj, const char* key) {
  return finiteValue(obj.at(key), key);
}

std::size_t sizeValue(const Json& v, const char* context) {
  const double x = finiteValue(v, context);
  MFBO_CHECK(x >= 0.0 && x == std::floor(x), context,
             " must be a non-negative integer, got ", x);
  return static_cast<std::size_t>(x);
}

std::size_t sizeField(const Json& obj, const char* key) {
  return sizeValue(obj.at(key), key);
}

/// null → NaN (field not applicable); otherwise a finite number.
double nanOrNumber(const Json& obj, const char* key) {
  const Json& v = obj.at(key);
  if (v.isNull()) return IterationRecord::kNan;
  return finiteValue(v, key);
}

Fidelity fidelityFromName(const Json& v) {
  MFBO_CHECK(v.isString(), "fidelity must be a string");
  const std::string& name = v.asString();
  if (name == "high") return Fidelity::kHigh;
  if (name == "low") return Fidelity::kLow;
  MFBO_CHECK(false, "unknown fidelity '", name, "'");
  return Fidelity::kHigh;  // unreachable
}

/// Array of @p n finite doubles.
std::vector<double> finiteArray(const Json& v, std::size_t n,
                                const char* context) {
  MFBO_CHECK(v.isArray(), context, " must be an array");
  MFBO_CHECK(v.size() == n, context, " has ", v.size(), " elements, expected ",
             n);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = finiteValue(v.at(i), context);
  return out;
}

/// Vector in the unit cube (the coordinate system the archives store).
Vector unitVector(const Json& v, std::size_t d, const char* context) {
  Vector out(finiteArray(v, d, context));
  for (std::size_t i = 0; i < d; ++i)
    MFBO_CHECK(out[i] >= 0.0 && out[i] <= 1.0, context, " coordinate ", i,
               " outside the unit cube: ", out[i]);
  return out;
}

/// null → empty vector; otherwise @p d finite coordinates.
Vector vectorOrEmpty(const Json& v, std::size_t d, const char* context) {
  if (v.isNull()) return Vector();
  return Vector(finiteArray(v, d, context));
}

/// The construction seed is a full uint64 and cannot survive a JSON double
/// round-trip, so it travels as a decimal string.
std::uint64_t parseSeed(const Json& v) {
  MFBO_CHECK(v.isString(), "checkpoint seed must be a decimal string");
  const std::string& s = v.asString();
  MFBO_CHECK(!s.empty() && s.size() <= 20 &&
                 s.find_first_not_of("0123456789") == std::string::npos,
             "malformed checkpoint seed '", s, "'");
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(s.c_str(), &end, 10);
  MFBO_CHECK(errno == 0 && end == s.c_str() + s.size(),
             "checkpoint seed out of range: '", s, "'");
  return static_cast<std::uint64_t>(parsed);
}

void matchNumber(const Json& obj, const char* key, double expected) {
  const double got = finiteNumber(obj, key);
  MFBO_CHECK(got == expected, "checkpoint option '", key, "' is ", got,
             " but the engine was configured with ", expected);
}

void matchSize(const Json& obj, const char* key, std::size_t expected) {
  const std::size_t got = sizeField(obj, key);
  MFBO_CHECK(got == expected, "checkpoint option '", key, "' is ", got,
             " but the engine was configured with ", expected);
}

void matchBool(const Json& obj, const char* key, bool expected) {
  const bool got = boolField(obj, key);
  MFBO_CHECK(got == expected, "checkpoint option '", key, "' is ", got,
             " but the engine was configured with ", expected);
}

Json slotToJson(const ProposedSlot& s) {
  Json j = Json::object();
  j.set("iteration", s.iteration);
  j.set("x", Json::numberArray(s.x));
  j.set("x_star_l",
        s.x_star_l.empty() ? Json::null() : Json::numberArray(s.x_star_l));
  j.set("x_t_raw",
        s.x_t_raw.empty() ? Json::null() : Json::numberArray(s.x_t_raw));
  j.set("fidelity", fidelityName(s.fidelity));
  j.set("downgraded", s.downgraded);
  j.set("deduped", s.deduped);
  j.set("first_feasible_phase", s.first_feasible_phase);
  j.set("on_fantasy", s.on_fantasy);
  j.set("tau_l", numberOrNull(s.tau_l));
  j.set("tau_h", numberOrNull(s.tau_h));
  j.set("acquisition", numberOrNull(s.acquisition));
  j.set("max_norm_var", numberOrNull(s.max_norm_var));
  j.set("threshold", numberOrNull(s.threshold));
  j.set("norm_low_var", s.norm_low_var.empty()
                            ? Json::null()
                            : Json::numberArray(s.norm_low_var));
  j.set("evaluated", s.evaluated);
  j.set("history_index", s.history_index);
  j.set("dataset_index", s.dataset_index);
  return j;
}

ProposedSlot slotFromJson(const Json& j, std::size_t d, std::size_t n_out) {
  checkKeys(j,
            {"iteration", "x", "x_star_l", "x_t_raw", "fidelity", "downgraded",
             "deduped", "first_feasible_phase", "on_fantasy", "tau_l", "tau_h",
             "acquisition", "max_norm_var", "threshold", "norm_low_var",
             "evaluated", "history_index", "dataset_index"},
            "pending slot");
  ProposedSlot s;
  s.iteration = sizeField(j, "iteration");
  MFBO_CHECK(s.iteration >= 1, "pending slot iteration must be >= 1");
  s.x = unitVector(j.at("x"), d, "slot x");
  s.x_star_l = vectorOrEmpty(j.at("x_star_l"), d, "slot x_star_l");
  s.x_t_raw = vectorOrEmpty(j.at("x_t_raw"), d, "slot x_t_raw");
  s.fidelity = fidelityFromName(j.at("fidelity"));
  s.downgraded = boolField(j, "downgraded");
  s.deduped = boolField(j, "deduped");
  s.first_feasible_phase = boolField(j, "first_feasible_phase");
  s.on_fantasy = boolField(j, "on_fantasy");
  s.tau_l = nanOrNumber(j, "tau_l");
  s.tau_h = nanOrNumber(j, "tau_h");
  s.acquisition = nanOrNumber(j, "acquisition");
  s.max_norm_var = nanOrNumber(j, "max_norm_var");
  s.threshold = nanOrNumber(j, "threshold");
  if (!j.at("norm_low_var").isNull())
    s.norm_low_var = finiteArray(j.at("norm_low_var"), n_out, "norm_low_var");
  s.evaluated = boolField(j, "evaluated");
  s.history_index = sizeField(j, "history_index");
  s.dataset_index = sizeField(j, "dataset_index");
  return s;
}

/// bestHighIndex over the first @p count history entries: what the best-so-
/// far fields of slot k's iteration record must not see is the evaluations
/// of the batch slots *after* it.
std::optional<std::size_t> bestHighUpTo(
    const std::vector<HistoryEntry>& history, std::size_t count) {
  std::optional<std::size_t> best;
  bool best_feasible = false;
  for (std::size_t i = 0; i < count; ++i) {
    if (history[i].fidelity != Fidelity::kHigh) continue;
    const Evaluation& e = history[i].eval;
    const bool feasible = e.feasible();
    if (!best) {
      best = i;
      best_feasible = feasible;
      continue;
    }
    const Evaluation& b = history[*best].eval;
    if (feasible && !best_feasible) {
      best = i;
      best_feasible = true;
    } else if (feasible == best_feasible) {
      const bool better = feasible
                              ? e.objective < b.objective
                              : e.totalViolation() < b.totalViolation();
      if (better) best = i;
    }
  }
  return best;
}

/// Exact comparison of a checkpoint's hyperparameter stamp against the
/// replayed models. Any difference means the replay did not reproduce the
/// original training trajectory — wrong data, wrong schedule, or a
/// nondeterministic trainer — and the resumed run would silently diverge.
void checkStampAgainst(const Json& stamp,
                       const std::vector<std::vector<double>>& hypers) {
  MFBO_CHECK(stamp.isArray(), "surrogate stamp must be an array of arrays");
  MFBO_CHECK(stamp.size() == hypers.size(), "surrogate stamp holds ",
             stamp.size(), " models, the engine has ", hypers.size());
  for (std::size_t i = 0; i < hypers.size(); ++i) {
    const Json& row = stamp.at(i);
    MFBO_CHECK(row.isArray() && row.size() == hypers[i].size(),
               "surrogate stamp for model ", i, " has the wrong shape");
    for (std::size_t k = 0; k < hypers[i].size(); ++k) {
      const double expected = finiteValue(row.at(k), "surrogate stamp");
      MFBO_CHECK(expected == hypers[i][k],
                 "replayed hyperparameter drifted from the checkpoint stamp: "
                 "model ",
                 i, " param ", k, " is ", hypers[i][k], ", stamp says ",
                 expected);
    }
  }
}

}  // namespace

const char* engineStateName(EngineState s) {
  switch (s) {
    case EngineState::kInit:
      return "init";
    case EngineState::kFitSurrogate:
      return "fit_surrogate";
    case EngineState::kPropose:
      return "propose";
    case EngineState::kAwaitResults:
      return "await_results";
    case EngineState::kObserve:
      return "observe";
    case EngineState::kDone:
      return "done";
  }
  return "unknown";
}

EngineState engineStateFromName(std::string_view name) {
  for (EngineState s :
       {EngineState::kInit, EngineState::kFitSurrogate, EngineState::kPropose,
        EngineState::kAwaitResults, EngineState::kObserve,
        EngineState::kDone}) {
    if (name == engineStateName(s)) return s;
  }
  MFBO_CHECK(false, "unknown engine state '", std::string(name), "'");
  return EngineState::kInit;  // unreachable
}

Json synthesisResultToJson(const SynthesisResult& result) {
  Json j = Json::object();
  j.set("best_x", Json::numberArray(result.best_x));
  j.set("best_objective", result.best_eval.objective);
  j.set("best_constraints", Json::numberArray(result.best_eval.constraints));
  j.set("feasible_found", result.feasible_found);
  j.set("n_low", result.n_low);
  j.set("n_high", result.n_high);
  j.set("equivalent_high_sims", result.equivalent_high_sims);
  Json hist = Json::array();
  for (const HistoryEntry& h : result.history) {
    Json e = Json::object();
    e.set("x", Json::numberArray(h.x));
    e.set("fidelity", fidelityName(h.fidelity));
    e.set("objective", h.eval.objective);
    e.set("constraints", Json::numberArray(h.eval.constraints));
    e.set("cost", h.cumulative_cost);
    hist.push(std::move(e));
  }
  j.set("history", std::move(hist));
  return j;
}

Engine::Engine(Problem& problem, std::uint64_t seed)
    : problem_(&problem),
      seed_(seed),
      d_(problem.dim()),
      nc_(problem.numConstraints()),
      n_out_(1 + nc_),
      real_box_(problem.bounds()),
      unit_(Box::unitCube(d_)),
      ratio_(problem.costRatio()),
      rng_(seed),
      tracker_(ratio_) {
  MFBO_CHECK(d_ > 0, "problem has zero dimensions");
  MFBO_CHECK(ratio_ > 0.0, "cost ratio must be positive, got ", ratio_);
  MFBO_CHECK(real_box_.dim() == d_, "problem bounds dim ", real_box_.dim(),
             " does not match problem dim ", d_);
}

void Engine::transition(EngineState next) {
  // Every state write funnels through here (lint rule E001), which makes
  // this the one flight-recorder site for "what was the engine doing":
  // the journal's last engine_transition names the in-flight state.
  eventlog::record(eventlog::EventKind::kEngineTransition,
                   engineStateName(state_), engineStateName(next),
                   static_cast<std::int64_t>(iteration_));
  if (restoring_) {
    state_ = next;
    return;
  }
  bool legal = false;
  switch (state_) {
    case EngineState::kInit:
      legal = next == EngineState::kFitSurrogate;
      break;
    case EngineState::kFitSurrogate:
      legal = next == EngineState::kPropose || next == EngineState::kDone;
      break;
    case EngineState::kPropose:
      legal = next == EngineState::kAwaitResults;
      break;
    case EngineState::kAwaitResults:
      legal = next == EngineState::kObserve;
      break;
    case EngineState::kObserve:
      legal = next == EngineState::kFitSurrogate;
      break;
    case EngineState::kDone:
      legal = false;
      break;
  }
  MFBO_CHECK(legal, "illegal engine transition ", engineStateName(state_),
             " -> ", engineStateName(next));
  state_ = next;
}

void Engine::step() {
  MFBO_CHECK(state_ != EngineState::kDone, "step() on a completed engine");
  switch (state_) {
    case EngineState::kInit:
      handleInit();
      break;
    case EngineState::kFitSurrogate:
      handleFitSurrogate();
      break;
    case EngineState::kPropose:
      handlePropose();
      break;
    case EngineState::kAwaitResults:
      handleAwaitResults();
      break;
    case EngineState::kObserve:
      handleObserve();
      break;
    case EngineState::kDone:
      break;
  }
}

SynthesisResult Engine::runToCompletion() {
  while (!done()) step();
  return takeResult();
}

SynthesisResult Engine::takeResult() {
  MFBO_CHECK(done(), "takeResult() before the run completed");
  return std::move(result_);
}

Evaluation Engine::simulate(const Vector& u, Fidelity f) {
  const bool hi = f == Fidelity::kHigh;
  const spans::ScopedSpan sim_span(hi ? "simulate_high" : "simulate_low");
  spans::addCounter(hi ? "sims_high" : "sims_low");
  return problem_->evaluate(real_box_.fromUnit(u), f);
}

std::size_t Engine::recordEvaluation(const Vector& u, Fidelity f,
                                     Evaluation eval) {
  tracker_.charge(f);
  history_.push_back({real_box_.fromUnit(u), eval, f, tracker_.cost()});
  (f == Fidelity::kHigh ? high_ : low_).add(u, std::move(eval));
  return history_.size() - 1;
}

std::size_t Engine::evaluateRaw(const Vector& u, Fidelity f) {
  return recordEvaluation(u, f, simulate(u, f));
}

void Engine::handleAwaitResults() {
  // The batch's simulations run as pool tasks: each is an independent pure
  // evaluation whose input was fixed at propose time, written into a
  // slot-indexed output. The stateful bookkeeping — cost meter, history,
  // archives — then replays serially in slot order, i.e. in exactly the
  // order the sequential loop produced, so results are byte-identical at
  // any thread count. This is also the engine's cooperative-yield point
  // for the session layer: a q-slot batch occupies the pool for one region
  // and then returns to the scheduler.
  std::vector<ProposedSlot*> todo;
  for (ProposedSlot& slot : pending_)
    if (!slot.evaluated) todo.push_back(&slot);
  std::vector<Evaluation> evals(todo.size());
  parallel::parallelFor(todo.size(), [&](std::size_t i) {
    evals[i] = simulate(todo[i]->x, todo[i]->fidelity);
  });
  for (std::size_t i = 0; i < todo.size(); ++i) {
    ProposedSlot& slot = *todo[i];
    slot.history_index =
        recordEvaluation(slot.x, slot.fidelity, std::move(evals[i]));
    slot.dataset_index =
        (slot.fidelity == Fidelity::kHigh ? high_ : low_).size() - 1;
    slot.evaluated = true;
  }
  transition(EngineState::kObserve);
}

void Engine::handleObserve() {
  const IterationObserver& observer = observerRef();
  for (const ProposedSlot& slot : pending_) {
    if (!iterationWanted(observer)) break;
    const spans::ScopedSpan observe_span("observe");
    IterationRecord rec;
    rec.algo = algoName();
    rec.iteration = slot.iteration;
    rec.fidelity = slot.fidelity;
    rec.downgraded = slot.downgraded;
    rec.retrained = retrainPlanned();
    rec.first_feasible_phase = slot.first_feasible_phase;
    rec.tau_l = slot.tau_l;
    rec.tau_h = slot.tau_h;
    rec.max_norm_var = slot.max_norm_var;
    rec.threshold = slot.threshold;
    rec.norm_low_var = slot.norm_low_var;
    rec.cumulative_cost = history_[slot.history_index].cumulative_cost;
    if (!slot.x_star_l.empty()) rec.x_star_l = &slot.x_star_l;
    if (!slot.x_t_raw.empty()) rec.x_t_raw = &slot.x_t_raw;
    rec.deduped = slot.deduped;
    rec.x = &history_[slot.history_index].x;
    rec.eval = &history_[slot.history_index].eval;
    rec.acquisition = observedAcquisition(slot);
    // Best-so-far over the history prefix this slot can see: its own
    // evaluation and everything before it, not its batch successors.
    if (const auto best = bestHighUpTo(history_, slot.history_index + 1)) {
      rec.best_objective = history_[*best].eval.objective;
      rec.feasible_found = history_[*best].eval.feasible();
    }
    publishIteration(rec, observer);
  }
  transition(EngineState::kFitSurrogate);
}

void Engine::finishFit() {
  if (!pending_.empty()) {
    batches_.push_back(pending_.size());
    pending_.clear();
  }
  iter_timer_.reset();
  if (tracker_.cost() + minStepCost() <= budget() + 1e-9) {
    transition(EngineState::kPropose);
  } else {
    finish();
  }
}

void Engine::finish() {
  result_ = finalizeResult(std::move(history_), tracker_);
  traceRunEnd(algoName(), result_);
  transition(EngineState::kDone);
}

bool Engine::retrainPlanned() const {
  const std::size_t every = retrainEvery();
  if (every <= 1) return true;
  for (const ProposedSlot& slot : pending_)
    if (slot.iteration % every == 0) return true;
  return false;
}

std::vector<double> Engine::columnOf(const Dataset& ds, std::size_t out) {
  return out == 0 ? ds.objectives() : ds.constraintColumn(out - 1);
}

Json Engine::checkpoint() const {
  MFBO_CHECK(!done(), "checkpoint() on a completed engine");
  Json c = Json::object();
  c.set("format", kCheckpointFormat);
  c.set("version", kCheckpointVersion);
  c.set("algo", algoName());
  c.set("state", engineStateName(state_));
  Json prob = Json::object();
  prob.set("name", problem_->name());
  prob.set("dim", d_);
  prob.set("num_constraints", nc_);
  prob.set("cost_ratio", ratio_);
  c.set("problem", std::move(prob));
  c.set("seed", std::to_string(seed_));
  c.set("rng", rng_.saveState());
  c.set("iteration", iteration_);
  c.set("cost", tracker_.cost());
  c.set("n_low", tracker_.numLow());
  c.set("n_high", tracker_.numHigh());
  c.set("models_fitted", models_fitted_);
  Json batches = Json::array();
  for (std::size_t b : batches_)
    batches.push(Json::number(static_cast<double>(b)));
  c.set("batches", std::move(batches));
  // History rows carry the *unit-cube* inputs (the archives' coordinate
  // system); the real coordinates are rederived through the same
  // Box::fromUnit arithmetic on restore, so storing both would only add a
  // redundancy that could disagree.
  Json hist = Json::array();
  std::size_t low_cursor = 0;
  std::size_t high_cursor = 0;
  for (const HistoryEntry& h : history_) {
    const bool hi = h.fidelity == Fidelity::kHigh;
    std::size_t& cursor = hi ? high_cursor : low_cursor;
    Json e = Json::object();
    e.set("fidelity", fidelityName(h.fidelity));
    e.set("u", Json::numberArray((hi ? high_ : low_).x[cursor]));
    ++cursor;
    e.set("objective", h.eval.objective);
    e.set("constraints", Json::numberArray(h.eval.constraints));
    e.set("cost", h.cumulative_cost);
    hist.push(std::move(e));
  }
  c.set("history", std::move(hist));
  Json pend = Json::array();
  for (const ProposedSlot& s : pending_) pend.push(slotToJson(s));
  c.set("pending", std::move(pend));
  c.set("policy", policyJson());
  return c;
}

void Engine::restoreHistory(const Json& ckpt) {
  const Json& hist = ckpt.at("history");
  MFBO_CHECK(hist.isArray(), "checkpoint history must be an array");
  double running = 0.0;
  std::size_t n_low = 0;
  std::size_t n_high = 0;
  for (std::size_t k = 0; k < hist.size(); ++k) {
    const Json& e = hist.at(k);
    checkKeys(e, {"fidelity", "u", "objective", "constraints", "cost"},
              "history entry");
    const Fidelity f = fidelityFromName(e.at("fidelity"));
    const Vector u = unitVector(e.at("u"), d_, "history entry u");
    Evaluation eval;
    eval.objective = finiteNumber(e, "objective");
    eval.constraints = finiteArray(e.at("constraints"), nc_, "constraints");
    // The meter is replayed with the same additions the original run made,
    // so each archived cumulative cost must match bit-for-bit.
    running += f == Fidelity::kHigh ? 1.0 : 1.0 / ratio_;
    const double cost = finiteNumber(e, "cost");
    MFBO_CHECK(cost == running, "history entry ", k, " cost ", cost,
               " does not match the recomputed meter ", running);
    (f == Fidelity::kHigh ? n_high : n_low) += 1;
    (f == Fidelity::kHigh ? high_ : low_).add(u, eval);
    history_.push_back({real_box_.fromUnit(u), std::move(eval), f, cost});
  }
  MFBO_CHECK(finiteNumber(ckpt, "cost") == running,
             "checkpoint cost does not match the archived history");
  MFBO_CHECK(sizeField(ckpt, "n_low") == n_low,
             "checkpoint n_low does not match the archived history");
  MFBO_CHECK(sizeField(ckpt, "n_high") == n_high,
             "checkpoint n_high does not match the archived history");
  tracker_.restore(running, n_low, n_high);
}

void Engine::restorePending(const Json& ckpt, EngineState target) {
  const Json& pend = ckpt.at("pending");
  MFBO_CHECK(pend.isArray(), "checkpoint pending must be an array");
  std::size_t base_iterations = 0;
  for (std::size_t b : batches_) base_iterations += b;
  std::size_t evaluated = 0;
  for (std::size_t s = 0; s < pend.size(); ++s) {
    ProposedSlot slot = slotFromJson(pend.at(s), d_, n_out_);
    MFBO_CHECK(slot.iteration == base_iterations + s + 1, "pending slot ", s,
               " iteration ", slot.iteration, " out of sequence");
    MFBO_CHECK(slot.on_fantasy == (s > 0), "pending slot ", s,
               " fantasy flag inconsistent with its batch position");
    if (slot.evaluated) ++evaluated;
    pending_.push_back(std::move(slot));
  }
  MFBO_CHECK(
      evaluated == 0 || evaluated == pending_.size(),
      "pending batch partially evaluated; checkpoints are state boundaries");
  if (target == EngineState::kAwaitResults)
    MFBO_CHECK(evaluated == 0,
               "state 'await_results' admits no evaluated slots");
  if (target == EngineState::kObserve ||
      (target == EngineState::kFitSurrogate && !pending_.empty()))
    MFBO_CHECK(evaluated == pending_.size(), "state '",
               engineStateName(target), "' requires a fully evaluated batch");
  if (evaluated > 0) {
    // Evaluated slots are the tail of the history and of their archives;
    // pin every index and require the archived input to match the proposal
    // bit-for-bit.
    MFBO_CHECK(history_.size() >= pending_.size(),
               "pending batch larger than the archived history");
    std::size_t n_low_slots = 0;
    std::size_t n_high_slots = 0;
    for (const ProposedSlot& s : pending_)
      (s.fidelity == Fidelity::kHigh ? n_high_slots : n_low_slots) += 1;
    MFBO_CHECK(low_.size() >= n_low_slots && high_.size() >= n_high_slots,
               "pending batch larger than the archived datasets");
    const std::size_t first_history = history_.size() - pending_.size();
    std::size_t low_cursor = low_.size() - n_low_slots;
    std::size_t high_cursor = high_.size() - n_high_slots;
    for (std::size_t s = 0; s < pending_.size(); ++s) {
      const ProposedSlot& slot = pending_[s];
      MFBO_CHECK(slot.history_index == first_history + s, "pending slot ", s,
                 " history index ", slot.history_index, " out of place");
      MFBO_CHECK(history_[slot.history_index].fidelity == slot.fidelity,
                 "pending slot ", s, " fidelity disagrees with its history");
      const bool hi = slot.fidelity == Fidelity::kHigh;
      std::size_t& cursor = hi ? high_cursor : low_cursor;
      MFBO_CHECK(slot.dataset_index == cursor, "pending slot ", s,
                 " dataset index ", slot.dataset_index, " out of place");
      MFBO_CHECK((hi ? high_ : low_).x[slot.dataset_index].raw() ==
                     slot.x.raw(),
                 "pending slot ", s, " x does not match its archive row");
      ++cursor;
    }
  } else {
    for (const ProposedSlot& slot : pending_)
      MFBO_CHECK(slot.history_index == 0 && slot.dataset_index == 0,
                 "unevaluated pending slot carries archive indices");
  }
}

void Engine::restore(const Json& ckpt) {
  MFBO_CHECK(state_ == EngineState::kInit && history_.empty() &&
                 pending_.empty() && batches_.empty() && iteration_ == 0 &&
                 !models_fitted_,
             "restore() requires a freshly constructed engine");
  checkKeys(ckpt,
            {"format", "version", "algo", "state", "problem", "seed", "rng",
             "iteration", "cost", "n_low", "n_high", "models_fitted",
             "batches", "history", "pending", "policy"},
            "checkpoint");
  MFBO_CHECK(stringField(ckpt, "format") == kCheckpointFormat,
             "not an engine checkpoint: format '", stringField(ckpt, "format"),
             "'");
  const double version = finiteNumber(ckpt, "version");
  MFBO_CHECK(version == kCheckpointVersion, "unsupported checkpoint version ",
             version, " (this build reads version ", kCheckpointVersion, ")");
  MFBO_CHECK(stringField(ckpt, "algo") == algoName(), "checkpoint algo '",
             stringField(ckpt, "algo"), "' does not match this engine ('",
             algoName(), "')");

  const Json& prob = ckpt.at("problem");
  checkKeys(prob, {"name", "dim", "num_constraints", "cost_ratio"},
            "checkpoint problem");
  MFBO_CHECK(stringField(prob, "name") == problem_->name(),
             "checkpoint problem '", stringField(prob, "name"),
             "' does not match '", problem_->name(), "'");
  MFBO_CHECK(sizeField(prob, "dim") == d_,
             "checkpoint problem dim does not match");
  MFBO_CHECK(sizeField(prob, "num_constraints") == nc_,
             "checkpoint constraint count does not match");
  MFBO_CHECK(finiteNumber(prob, "cost_ratio") == ratio_,
             "checkpoint cost ratio does not match");

  const EngineState target = engineStateFromName(stringField(ckpt, "state"));
  MFBO_CHECK(target != EngineState::kDone,
             "cannot restore a completed run (checkpoints stop before Done)");

  seed_ = parseSeed(ckpt.at("seed"));
  iteration_ = sizeField(ckpt, "iteration");
  models_fitted_ = boolField(ckpt, "models_fitted");

  const Json& batches = ckpt.at("batches");
  MFBO_CHECK(batches.isArray(), "checkpoint batches must be an array");
  std::size_t batched_iterations = 0;
  for (std::size_t b = 0; b < batches.size(); ++b) {
    const std::size_t size = sizeValue(batches.at(b), "batch size");
    MFBO_CHECK(size >= 1, "empty batch in the checkpoint batch table");
    batches_.push_back(size);
    batched_iterations += size;
  }

  restoreHistory(ckpt);
  restorePending(ckpt, target);

  MFBO_CHECK(iteration_ == batched_iterations + pending_.size(),
             "iteration counter ", iteration_, " does not match ",
             batched_iterations, " batched + ", pending_.size(), " pending");
  const std::size_t evaluated_pending =
      pending_.empty() || !pending_.front().evaluated ? 0 : pending_.size();
  const std::size_t expected_history =
      (target == EngineState::kInit ? 0 : initTotal()) + batched_iterations +
      evaluated_pending;
  MFBO_CHECK(history_.size() == expected_history, "history holds ",
             history_.size(), " entries, the checkpoint state implies ",
             expected_history);

  switch (target) {
    case EngineState::kInit:
      MFBO_CHECK(pending_.empty() && batches_.empty() && iteration_ == 0 &&
                     !models_fitted_,
                 "state 'init' admits no progress");
      break;
    case EngineState::kFitSurrogate:
      if (models_fitted_) {
        MFBO_CHECK(!pending_.empty(),
                   "a refit boundary requires the just-observed batch");
      } else {
        MFBO_CHECK(pending_.empty() && batches_.empty() && iteration_ == 0,
                   "the initial-fit boundary admits no iterations");
      }
      break;
    case EngineState::kPropose:
      MFBO_CHECK(models_fitted_ && pending_.empty(),
                 "state 'propose' requires fitted models and no pending batch");
      break;
    case EngineState::kAwaitResults:
      MFBO_CHECK(models_fitted_ && !pending_.empty(),
                 "state 'await_results' requires a proposed batch");
      break;
    case EngineState::kObserve:
      MFBO_CHECK(models_fitted_ && !pending_.empty(),
                 "state 'observe' requires an evaluated batch");
      break;
    case EngineState::kDone:
      break;  // rejected above
  }

  restorePolicy(ckpt.at("policy"), target);
  // The RNG is reinstated last: replaying the surrogate schedule must not
  // touch the run stream (the models own their private generators).
  rng_.restoreState(stringField(ckpt, "rng"));
  restoring_ = true;
  transition(target);
  restoring_ = false;
}

MfboEngine::MfboEngine(Problem& problem, std::uint64_t seed,
                       MfboOptions options)
    : Engine(problem, seed), options_(std::move(options)) {
  MFBO_CHECK(options_.n_init_low > 0 && options_.n_init_high > 0,
             "initial designs must be non-empty, got ", options_.n_init_low,
             " low / ", options_.n_init_high, " high");
  MFBO_CHECK(options_.gamma >= 0.0, "gamma must be non-negative, got ",
             options_.gamma);
  MFBO_CHECK(options_.batch_size >= 1, "batch_size must be >= 1, got ",
             options_.batch_size);
  // The sequential loop registered its metrics at run() entry; registering
  // at construction keeps them in the snapshots of zero-iteration runs too.
  telemetry::counter("bo.mfbo.iterations");
  telemetry::counter("bo.mfbo.budget_downgrades");
  telemetry::timer("bo.mfbo.iteration_seconds");
}

SynthesisResult MfboEngine::run() {
  // The span name must be a literal (the profiler keeps the pointer for
  // the process lifetime), hence per-engine run() overrides.
  const spans::ScopedSpan run_span("mfbo");
  return runToCompletion();
}

void MfboEngine::buildModels() {
  SurrogateFactory factory = options_.surrogate_factory;
  if (!factory) {
    factory = [this](std::size_t x_dim, std::uint64_t s) {
      mf::NargpConfig cfg = options_.nargp;
      cfg.seed = s;
      cfg.low.seed = s + 17;
      cfg.high.seed = s + 31;
      return std::make_unique<mf::NargpModel>(x_dim, cfg);
    };
  }
  models_.clear();
  models_.reserve(n_out_);
  for (std::size_t i = 0; i < n_out_; ++i)
    models_.push_back(factory(d_, seed_ * 1000003u + i));
}

void MfboEngine::fitAll() {
  for (std::size_t i = 0; i < n_out_; ++i)
    models_[i]->fit(low_.x, columnOf(low_, i), high_.x, columnOf(high_, i));
}

std::vector<gp::Prediction> MfboEngine::lowPredictions(const Models& models,
                                                       const Vector& u) const {
  std::vector<gp::Prediction> p(n_out_);
  for (std::size_t i = 0; i < n_out_; ++i) p[i] = models[i]->predictLow(u);
  return p;
}

std::vector<gp::Prediction> MfboEngine::highPredictions(
    const Models& models, const Vector& u) const {
  std::vector<gp::Prediction> p(n_out_);
  for (std::size_t i = 0; i < n_out_; ++i) p[i] = models[i]->predictHigh(u);
  return p;
}

void MfboEngine::makeFantasies() {
  const spans::ScopedSpan span("fantasy");
  fantasy_.clear();
  fantasy_.reserve(models_.size());
  for (const auto& m : models_) fantasy_.push_back(m->clone());
}

void MfboEngine::applyLiar(const ProposedSlot& slot) {
  const spans::ScopedSpan span("fantasy");
  const bool hi = slot.fidelity == Fidelity::kHigh;
  for (std::size_t i = 0; i < n_out_; ++i) {
    double lie;
    if (i == 0) {
      // CL-min for the objective: the incumbent best, so the fantasy never
      // moves tau and a lie can only *discourage* re-proposing nearby.
      lie = hi ? fantasy_[0]->bestHighObserved()
               : fantasy_[0]->bestLowObserved();
    } else {
      // Constraints take the believer's value — the posterior mean.
      const gp::Prediction p = hi ? fantasy_[i]->predictHigh(slot.x)
                                  : fantasy_[i]->predictLow(slot.x);
      lie = p.mean;
    }
    if (hi)
      fantasy_[i]->addHigh(slot.x, lie, false);
    else
      fantasy_[i]->addLow(slot.x, lie, false);
  }
}

void MfboEngine::handleInit() {
  traceRunStart("mfbo", *problem_, seed_, options_.budget);
  // Step 1 of Algorithm 1: initial designs at both fidelities.
  for (const Vector& u :
       linalg::latinHypercube(options_.n_init_low, unit_, rng_))
    evaluateRaw(u, Fidelity::kLow);
  for (const Vector& u :
       linalg::latinHypercube(options_.n_init_high, unit_, rng_))
    evaluateRaw(u, Fidelity::kHigh);
  buildModels();
  transition(EngineState::kFitSurrogate);
}

void MfboEngine::handleFitSurrogate() {
  if (!models_fitted_) {
    fitAll();
    models_fitted_ = true;
  } else if (retrainPlanned()) {
    fitAll();
  } else {
    for (const ProposedSlot& slot : pending_) {
      const Dataset& ds = slot.fidelity == Fidelity::kHigh ? high_ : low_;
      const Evaluation& eval = ds.evals[slot.dataset_index];
      for (std::size_t i = 0; i < n_out_; ++i) {
        const double y = i == 0 ? eval.objective : eval.constraints[i - 1];
        if (slot.fidelity == Fidelity::kHigh)
          models_[i]->addHigh(ds.x[slot.dataset_index], y, false);
        else
          models_[i]->addLow(ds.x[slot.dataset_index], y, false);
      }
    }
  }
  finishFit();
}

void MfboEngine::handlePropose() {
  telemetry::Counter& iterations_total =
      telemetry::counter("bo.mfbo.iterations");
  telemetry::Timer& iteration_timer =
      telemetry::timer("bo.mfbo.iteration_seconds");
  // Inputs proposed earlier in this batch; slot s dedupes against them so a
  // fantasy cannot re-propose (and singularize) an unevaluated sibling.
  Dataset pending_points;
  double projected = tracker_.cost();
  for (std::size_t s = 0; s < options_.batch_size; ++s) {
    if (s > 0 && projected + minStepCost() > budget() + 1e-9) break;
    ++iteration_;
    iterations_total.add();
    if (s == 0) iter_timer_.emplace(iteration_timer);
    if (s == 1) makeFantasies();
    if (s > 0) applyLiar(pending_.back());
    ProposedSlot slot = proposeSlot(s, projected, pending_points);
    projected += slot.fidelity == Fidelity::kHigh ? 1.0 : 1.0 / ratio_;
    pending_points.add(slot.x, Evaluation{});
    pending_.push_back(std::move(slot));
  }
  fantasy_.clear();
  transition(EngineState::kAwaitResults);
}

ProposedSlot MfboEngine::proposeSlot(std::size_t slot_index,
                                     double projected_cost,
                                     const Dataset& pending_points) {
  MFBO_DCHECK(slot_index < options_.batch_size, "slot ", slot_index,
              " out of range for batch size ", options_.batch_size);
  telemetry::Counter& downgrades_total =
      telemetry::counter("bo.mfbo.budget_downgrades");
  const Models& models = activeModels();

  const auto feas_low = low_.bestFeasible();
  const auto feas_high = high_.bestFeasible();

  // tau incumbents (paper 4.1): locations of the current best results of
  // the low- and high-fidelity search spaces.
  const std::optional<Vector> inc_l =
      low_.size() ? std::optional<Vector>(
                        low_.x[feas_low ? *feas_low : low_.bestByMerit()])
                  : std::nullopt;
  const std::optional<Vector> inc_h =
      high_.size() ? std::optional<Vector>(
                         high_.x[feas_high ? *feas_high : high_.bestByMerit()])
                   : std::nullopt;

  ProposedSlot slot;
  slot.iteration = iteration_;
  slot.on_fantasy = slot_index > 0;

  // Step 5: optimize the low-fidelity acquisition -> x*_l.
  Vector x_star_l;
  double tau_l = IterationRecord::kNan;
  const bool ff_low = nc_ > 0 && !feas_low && options_.use_first_feasible;
  std::optional<spans::ScopedSpan> phase_span;
  phase_span.emplace("acq_low");
  if (ff_low) {
    opt::ScalarObjective criterion = [&](const Vector& u) {
      const auto p = lowPredictions(models, u);
      return predictedViolation({p.begin() + 1, p.end()});
    };
    x_star_l = minimizeCriterionMsp(criterion, unit_, options_.msp.n_starts,
                                    options_.msp.local, rng_);
  } else {
    tau_l = feas_low ? low_.evals[*feas_low].objective
                     : models[0]->bestLowObserved();
    // Ranked in log space: the linear wEI product underflows to a flat 0
    // wherever several constraints are simultaneously improbable, which
    // would blind the MSP search exactly where it must still rank.
    opt::ScalarObjective acq_low = [&](const Vector& u) {
      const auto p = lowPredictions(models, u);
      return logWeightedEi(p[0], tau_l, {p.begin() + 1, p.end()});
    };
    x_star_l = maximizeAcquisitionMsp(acq_low, unit_, inc_l, inc_h,
                                      options_.msp, rng_);
  }

  // Step 6: optimize the fused high-fidelity acquisition seeded with x*_l
  // (plus a few jittered copies of it).
  phase_span.emplace("acq_high");
  std::vector<Vector> seeds{x_star_l};
  for (std::size_t i = 0; i < options_.x_star_seeds; ++i)
    seeds.push_back(linalg::gaussianJitterInBox(
        x_star_l, options_.msp.relative_sd, unit_, rng_));

  Vector x_t;
  double tau_h = IterationRecord::kNan;
  const bool ff_high = nc_ > 0 && !feas_high && options_.use_first_feasible;
  if (ff_high) {
    // eq. (13) on the fused high-fidelity posterior means.
    opt::ScalarObjective criterion = [&](const Vector& u) {
      const auto p = highPredictions(models, u);
      return predictedViolation({p.begin() + 1, p.end()});
    };
    opt::ScalarObjective negated = [&](const Vector& u) {
      return -criterion(u);
    };
    // Reuse the MSP maximizer on the negated criterion so the x*_l seeds
    // participate; equivalent to minimizing the criterion.
    x_t = maximizeAcquisitionMsp(negated, unit_, inc_l, inc_h, options_.msp,
                                 rng_, seeds);
  } else {
    tau_h = feas_high ? high_.evals[*feas_high].objective
                      : models[0]->bestHighObserved();
    // Log-space ranking, as for the low-fidelity acquisition above.
    opt::ScalarObjective acq_high = [&](const Vector& u) {
      const auto p = highPredictions(models, u);
      return logWeightedEi(p[0], tau_h, {p.begin() + 1, p.end()});
    };
    x_t = maximizeAcquisitionMsp(acq_high, unit_, inc_l, inc_h, options_.msp,
                                 rng_, seeds);
  }

  // Dedupe before the fidelity decision, against both archives (the chosen
  // fidelity is not known yet) and the batch's earlier proposals: the
  // eq. (11)/(12) sigma^2_l criterion must be evaluated at the point
  // actually simulated, not at a raw maximizer that a later nudge moves.
  Vector x_t_raw = x_t;
  x_t = dedupeCandidate(std::move(x_t), {&low_, &high_, &pending_points},
                        unit_, rng_);
  slot.deduped = x_t.raw() != x_t_raw.raw();

  // Step 7 (3.4): fidelity selection. Variances are normalized by each low
  // GP's output scale so gamma is dimensionless (eq. 11-12).
  phase_span.emplace("fidelity_decision");
  const std::vector<gp::Prediction> p_low_t = lowPredictions(models, x_t);
  std::vector<double> norm_vars(n_out_);
  double max_norm_var = 0.0;
  for (std::size_t i = 0; i < n_out_; ++i) {
    const double sd_out = models[i]->lowOutputSd();
    norm_vars[i] = p_low_t[i].var / (sd_out * sd_out);
    max_norm_var = std::max(max_norm_var, norm_vars[i]);
  }
  const double threshold = (1.0 + static_cast<double>(nc_)) * options_.gamma;
  Fidelity f = max_norm_var < threshold ? Fidelity::kHigh : Fidelity::kLow;
  // Respect the remaining budget — including the cost of this batch's
  // earlier slots: a high-fidelity evaluation that no longer fits is
  // downgraded.
  bool downgraded = false;
  if (f == Fidelity::kHigh && projected_cost + 1.0 > options_.budget + 1e-9) {
    f = Fidelity::kLow;
    downgraded = true;
    downgrades_total.add();
  }
  // Journal the eq. (11)/(12) outcome: the fidelity schedule is the one
  // decision an MF-BO operator audits over time, and the trace fields
  // alone vanish when tracing is off.
  eventlog::record(eventlog::EventKind::kFidelityDecision,
                   f == Fidelity::kHigh ? "high" : "low",
                   downgraded ? "downgraded" : nullptr,
                   static_cast<std::int64_t>(iteration_),
                   static_cast<std::int64_t>(slot_index));
  phase_span.reset();

  slot.x = std::move(x_t);
  slot.x_star_l = std::move(x_star_l);
  slot.x_t_raw = std::move(x_t_raw);
  slot.fidelity = f;
  slot.downgraded = downgraded;
  slot.first_feasible_phase = ff_high;
  slot.tau_l = tau_l;
  slot.tau_h = tau_h;
  slot.max_norm_var = max_norm_var;
  slot.threshold = threshold;
  slot.norm_low_var = std::move(norm_vars);

  // Fantasy slots report the acquisition at the point they were proposed
  // at, on the clones that proposed them — the clones are discarded with
  // the batch, so it is computed here rather than during Observe. (Slot 0
  // computes it on the real models during Observe, as the sequential loop
  // always has.) Reported in linear space; the log form is only the
  // search's ranking.
  if (slot.on_fantasy && iterationWanted(options_.observer)) {
    const spans::ScopedSpan observe_span("observe");
    const auto p = highPredictions(models, slot.x);
    slot.acquisition =
        ff_high ? predictedViolation({p.begin() + 1, p.end()})
                : weightedEi(p[0], tau_h, {p.begin() + 1, p.end()});
  }
  return slot;
}

double MfboEngine::observedAcquisition(const ProposedSlot& slot) {
  if (slot.on_fantasy) return slot.acquisition;
  // Acquisition (or eq. 13 criterion) value at the evaluated point — one
  // fused MC pass per output. Reported in linear space.
  const auto p = highPredictions(models_, slot.x);
  return slot.first_feasible_phase
             ? predictedViolation({p.begin() + 1, p.end()})
             : weightedEi(p[0], slot.tau_h, {p.begin() + 1, p.end()});
}

Json MfboEngine::policyJson() const {
  Json policy = Json::object();
  Json o = Json::object();
  o.set("n_init_low", options_.n_init_low);
  o.set("n_init_high", options_.n_init_high);
  o.set("budget", options_.budget);
  o.set("gamma", options_.gamma);
  o.set("retrain_every", options_.retrain_every);
  o.set("x_star_seeds", options_.x_star_seeds);
  o.set("use_first_feasible", options_.use_first_feasible);
  o.set("batch_size", options_.batch_size);
  Json m = Json::object();
  m.set("n_starts", options_.msp.n_starts);
  m.set("frac_tau_l", options_.msp.frac_tau_l);
  m.set("frac_tau_h", options_.msp.frac_tau_h);
  m.set("relative_sd", options_.msp.relative_sd);
  m.set("local_max_evaluations", options_.msp.local.max_evaluations);
  m.set("local_initial_step", options_.msp.local.initial_step);
  o.set("msp", std::move(m));
  Json n = Json::object();
  n.set("n_mc", options_.nargp.n_mc);
  n.set("n_mc_var", options_.nargp.n_mc_var);
  n.set("n_restarts_low", options_.nargp.low.n_restarts);
  n.set("n_restarts_high", options_.nargp.high.n_restarts);
  o.set("nargp", std::move(n));
  policy.set("options", std::move(o));
  policy.set("custom_surrogate",
             static_cast<bool>(options_.surrogate_factory));
  Json stamp = Json::null();
  if (models_fitted_) {
    stamp = Json::array();
    for (const auto& model : models_)
      stamp.push(Json::numberArray(model->hyperparameters()));
  }
  policy.set("surrogates", std::move(stamp));
  return policy;
}

void MfboEngine::restorePolicy(const Json& policy, EngineState target) {
  checkKeys(policy, {"options", "custom_surrogate", "surrogates"},
            "checkpoint policy");
  const Json& o = policy.at("options");
  checkKeys(o,
            {"n_init_low", "n_init_high", "budget", "gamma", "retrain_every",
             "x_star_seeds", "use_first_feasible", "batch_size", "msp",
             "nargp"},
            "policy options");
  matchSize(o, "n_init_low", options_.n_init_low);
  matchSize(o, "n_init_high", options_.n_init_high);
  matchNumber(o, "budget", options_.budget);
  matchNumber(o, "gamma", options_.gamma);
  matchSize(o, "retrain_every", options_.retrain_every);
  matchSize(o, "x_star_seeds", options_.x_star_seeds);
  matchBool(o, "use_first_feasible", options_.use_first_feasible);
  matchSize(o, "batch_size", options_.batch_size);
  const Json& m = o.at("msp");
  checkKeys(m,
            {"n_starts", "frac_tau_l", "frac_tau_h", "relative_sd",
             "local_max_evaluations", "local_initial_step"},
            "policy msp options");
  matchSize(m, "n_starts", options_.msp.n_starts);
  matchNumber(m, "frac_tau_l", options_.msp.frac_tau_l);
  matchNumber(m, "frac_tau_h", options_.msp.frac_tau_h);
  matchNumber(m, "relative_sd", options_.msp.relative_sd);
  matchSize(m, "local_max_evaluations", options_.msp.local.max_evaluations);
  matchNumber(m, "local_initial_step", options_.msp.local.initial_step);
  const Json& n = o.at("nargp");
  checkKeys(n, {"n_mc", "n_mc_var", "n_restarts_low", "n_restarts_high"},
            "policy nargp options");
  matchSize(n, "n_mc", options_.nargp.n_mc);
  matchSize(n, "n_mc_var", options_.nargp.n_mc_var);
  matchSize(n, "n_restarts_low", options_.nargp.low.n_restarts);
  matchSize(n, "n_restarts_high", options_.nargp.high.n_restarts);
  // A custom factory is opaque, so the best available identity check is
  // both-or-neither; the hyperparameter stamp below catches actual drift.
  matchBool(policy, "custom_surrogate",
            static_cast<bool>(options_.surrogate_factory));

  if (target == EngineState::kInit) {
    MFBO_CHECK(policy.at("surrogates").isNull(),
               "hyperparameter stamp present before the first fit");
    return;
  }

  // The Init state is atomic: any checkpoint past it archives the complete
  // initial design, low prefix first.
  MFBO_CHECK(history_.size() >= initTotal(), "history holds ",
             history_.size(), " entries; the ", initTotal(),
             "-point initial design is incomplete");
  for (std::size_t i = 0; i < initTotal(); ++i) {
    const Fidelity expect =
        i < options_.n_init_low ? Fidelity::kLow : Fidelity::kHigh;
    MFBO_CHECK(history_[i].fidelity == expect, "history entry ", i,
               " breaks the initial-design fidelity pattern");
  }

  buildModels();
  if (!models_fitted_) {
    MFBO_CHECK(policy.at("surrogates").isNull(),
               "hyperparameter stamp present before the first fit");
    return;
  }

  // Replay the exact fit/addPoint schedule the original run performed (the
  // retrain cadence is a pure function of the iteration numbers), so the
  // models' internal trainer and MC generators advance identically and the
  // restored state is byte-equal — checked against the stamp below.
  const auto column_prefix = [](const Dataset& ds, std::size_t out,
                                std::size_t count) {
    std::vector<double> col = columnOf(ds, out);
    col.resize(count);
    return col;
  };
  const auto fit_prefix = [&](std::size_t n_low_rows,
                              std::size_t n_high_rows) {
    const std::vector<Vector> xl(low_.x.begin(),
                                 low_.x.begin() +
                                     static_cast<std::ptrdiff_t>(n_low_rows));
    const std::vector<Vector> xh(
        high_.x.begin(),
        high_.x.begin() + static_cast<std::ptrdiff_t>(n_high_rows));
    for (std::size_t i = 0; i < n_out_; ++i)
      models_[i]->fit(xl, column_prefix(low_, i, n_low_rows), xh,
                      column_prefix(high_, i, n_high_rows));
  };

  std::size_t low_cursor = options_.n_init_low;
  std::size_t high_cursor = options_.n_init_high;
  std::size_t entry = initTotal();
  std::size_t iter = 0;
  fit_prefix(low_cursor, high_cursor);
  for (const std::size_t size : batches_) {
    MFBO_CHECK(entry + size <= history_.size(),
               "batch table exceeds the archived history");
    bool retrain = retrainEvery() <= 1;
    for (std::size_t s = 0; s < size && !retrain; ++s)
      retrain = (iter + s + 1) % retrainEvery() == 0;
    std::vector<std::pair<Fidelity, std::size_t>> rows;
    rows.reserve(size);
    for (std::size_t s = 0; s < size; ++s) {
      const Fidelity f = history_[entry + s].fidelity;
      rows.emplace_back(f, f == Fidelity::kHigh ? high_cursor++
                                                : low_cursor++);
    }
    if (retrain) {
      fit_prefix(low_cursor, high_cursor);
    } else {
      for (const auto& [f, row] : rows) {
        const Dataset& ds = f == Fidelity::kHigh ? high_ : low_;
        const Evaluation& eval = ds.evals[row];
        for (std::size_t i = 0; i < n_out_; ++i) {
          const double y = i == 0 ? eval.objective : eval.constraints[i - 1];
          if (f == Fidelity::kHigh)
            models_[i]->addHigh(ds.x[row], y, false);
          else
            models_[i]->addLow(ds.x[row], y, false);
        }
      }
    }
    iter += size;
    entry += size;
  }

  std::vector<std::vector<double>> hypers;
  hypers.reserve(models_.size());
  for (const auto& model : models_) hypers.push_back(model->hyperparameters());
  checkStampAgainst(policy.at("surrogates"), hypers);
}

WeiboEngine::WeiboEngine(Problem& problem, std::uint64_t seed,
                         WeiboOptions options)
    : Engine(problem, seed), options_(std::move(options)) {
  // See the MfboEngine constructor: registered here (the sequential loop
  // registered at run() entry) for zero-iteration snapshot parity.
  telemetry::counter("bo.weibo.iterations");
}

SynthesisResult WeiboEngine::run() {
  const spans::ScopedSpan run_span("weibo");
  return runToCompletion();
}

void WeiboEngine::buildModels() {
  models_.clear();
  models_.reserve(n_out_);
  for (std::size_t i = 0; i < n_out_; ++i) {
    gp::GpConfig cfg = options_.gp;
    cfg.seed = seed_ * 1000003u + i;
    models_.emplace_back(std::make_unique<gp::SeArdKernel>(d_), cfg);
  }
}

void WeiboEngine::fitAll() {
  const spans::ScopedSpan span("fit_high");
  models_[0].fit(high_.x, high_.objectives());
  for (std::size_t i = 0; i < nc_; ++i)
    models_[1 + i].fit(high_.x, high_.constraintColumn(i));
}

std::vector<gp::Prediction> WeiboEngine::constraintPredictions(
    const Vector& u) const {
  std::vector<gp::Prediction> cons(nc_);
  for (std::size_t i = 0; i < nc_; ++i) cons[i] = models_[1 + i].predict(u);
  return cons;
}

void WeiboEngine::handleInit() {
  traceRunStart("weibo", *problem_, seed_, options_.max_sims);
  for (const Vector& u : linalg::latinHypercube(initTotal(), unit_, rng_))
    evaluateRaw(u, Fidelity::kHigh);
  buildModels();
  transition(EngineState::kFitSurrogate);
}

void WeiboEngine::handleFitSurrogate() {
  if (!models_fitted_) {
    fitAll();
    models_fitted_ = true;
  } else if (retrainPlanned()) {
    fitAll();
  } else {
    const spans::ScopedSpan span("fit_high");
    for (const ProposedSlot& slot : pending_) {
      const Evaluation& eval = high_.evals[slot.dataset_index];
      models_[0].addPoint(high_.x[slot.dataset_index], eval.objective, false);
      for (std::size_t i = 0; i < nc_; ++i)
        models_[1 + i].addPoint(high_.x[slot.dataset_index],
                                eval.constraints[i], false);
    }
  }
  finishFit();
}

void WeiboEngine::handlePropose() {
  telemetry::Counter& iterations_total =
      telemetry::counter("bo.weibo.iterations");
  ++iteration_;
  iterations_total.add();

  const auto feasible_idx = high_.bestFeasible();
  const bool ff = nc_ > 0 && !feasible_idx && options_.use_first_feasible;

  ProposedSlot slot;
  slot.iteration = iteration_;
  slot.fidelity = Fidelity::kHigh;
  slot.first_feasible_phase = ff;

  std::optional<spans::ScopedSpan> phase_span;
  phase_span.emplace("acq_high");
  Vector candidate;
  double tau = IterationRecord::kNan;
  if (ff) {
    // No feasible point yet: minimize the eq. (13) predicted violation.
    opt::ScalarObjective criterion = [&](const Vector& u) {
      return predictedViolation(constraintPredictions(u));
    };
    candidate = minimizeCriterionMsp(criterion, unit_, options_.msp.n_starts,
                                     options_.msp.local, rng_);
  } else {
    tau = feasible_idx ? high_.evals[*feasible_idx].objective
                       : models_[0].bestObserved();
    // Log-space ranking (see the MFBO acquisition for the rationale).
    opt::ScalarObjective acq = [&](const Vector& u) {
      return logWeightedEi(models_[0].predict(u), tau,
                           constraintPredictions(u));
    };
    const std::optional<Vector> incumbent(
        high_.x[feasible_idx ? *feasible_idx : high_.bestByMerit()]);
    candidate = maximizeAcquisitionMsp(acq, unit_, std::nullopt, incumbent,
                                       options_.msp, rng_);
  }
  slot.tau_h = tau;
  candidate = dedupeCandidate(std::move(candidate), high_, unit_, rng_);
  phase_span.reset();

  // The sequential loop never reported dedupe nudges in its records;
  // slot.deduped stays false for artifact parity.
  slot.x = std::move(candidate);
  pending_.push_back(std::move(slot));
  transition(EngineState::kAwaitResults);
}

double WeiboEngine::observedAcquisition(const ProposedSlot& slot) {
  const auto cons = constraintPredictions(slot.x);
  return slot.first_feasible_phase
             ? predictedViolation(cons)
             : weightedEi(models_[0].predict(slot.x), slot.tau_h, cons);
}

Json WeiboEngine::policyJson() const {
  Json policy = Json::object();
  Json o = Json::object();
  o.set("n_init", options_.n_init);
  o.set("max_sims", options_.max_sims);
  o.set("retrain_every", options_.retrain_every);
  o.set("use_first_feasible", options_.use_first_feasible);
  Json m = Json::object();
  m.set("n_starts", options_.msp.n_starts);
  m.set("frac_tau_l", options_.msp.frac_tau_l);
  m.set("frac_tau_h", options_.msp.frac_tau_h);
  m.set("relative_sd", options_.msp.relative_sd);
  m.set("local_max_evaluations", options_.msp.local.max_evaluations);
  m.set("local_initial_step", options_.msp.local.initial_step);
  o.set("msp", std::move(m));
  Json g = Json::object();
  g.set("n_restarts", options_.gp.n_restarts);
  o.set("gp", std::move(g));
  policy.set("options", std::move(o));
  Json stamp = Json::null();
  if (models_fitted_) {
    stamp = Json::array();
    for (const auto& model : models_)
      stamp.push(Json::numberArray(model.hyperparameters()));
  }
  policy.set("surrogates", std::move(stamp));
  return policy;
}

void WeiboEngine::restorePolicy(const Json& policy, EngineState target) {
  checkKeys(policy, {"options", "surrogates"}, "checkpoint policy");
  const Json& o = policy.at("options");
  checkKeys(o,
            {"n_init", "max_sims", "retrain_every", "use_first_feasible",
             "msp", "gp"},
            "policy options");
  matchSize(o, "n_init", options_.n_init);
  matchNumber(o, "max_sims", options_.max_sims);
  matchSize(o, "retrain_every", options_.retrain_every);
  matchBool(o, "use_first_feasible", options_.use_first_feasible);
  const Json& m = o.at("msp");
  checkKeys(m,
            {"n_starts", "frac_tau_l", "frac_tau_h", "relative_sd",
             "local_max_evaluations", "local_initial_step"},
            "policy msp options");
  matchSize(m, "n_starts", options_.msp.n_starts);
  matchNumber(m, "frac_tau_l", options_.msp.frac_tau_l);
  matchNumber(m, "frac_tau_h", options_.msp.frac_tau_h);
  matchNumber(m, "relative_sd", options_.msp.relative_sd);
  matchSize(m, "local_max_evaluations", options_.msp.local.max_evaluations);
  matchNumber(m, "local_initial_step", options_.msp.local.initial_step);
  const Json& g = o.at("gp");
  checkKeys(g, {"n_restarts"}, "policy gp options");
  matchSize(g, "n_restarts", options_.gp.n_restarts);

  MFBO_CHECK(tracker_.numLow() == 0 && low_.size() == 0,
             "weibo checkpoint contains low-fidelity history");
  MFBO_CHECK(pending_.size() <= 1, "weibo proposes one point per batch, got ",
             pending_.size(), " pending");

  if (target == EngineState::kInit) {
    MFBO_CHECK(policy.at("surrogates").isNull(),
               "hyperparameter stamp present before the first fit");
    return;
  }
  MFBO_CHECK(history_.size() >= initTotal(), "history holds ",
             history_.size(), " entries; the ", initTotal(),
             "-point initial design is incomplete");

  buildModels();
  if (!models_fitted_) {
    MFBO_CHECK(policy.at("surrogates").isNull(),
               "hyperparameter stamp present before the first fit");
    return;
  }

  // Replay the exact fit/addPoint schedule (see MfboEngine::restorePolicy).
  const auto column_prefix = [](std::vector<double> col, std::size_t count) {
    col.resize(count);
    return col;
  };
  const auto fit_prefix = [&](std::size_t n_rows) {
    const spans::ScopedSpan span("fit_high");
    const std::vector<Vector> xs(
        high_.x.begin(),
        high_.x.begin() + static_cast<std::ptrdiff_t>(n_rows));
    models_[0].fit(xs, column_prefix(high_.objectives(), n_rows));
    for (std::size_t i = 0; i < nc_; ++i)
      models_[1 + i].fit(xs, column_prefix(high_.constraintColumn(i), n_rows));
  };

  std::size_t cursor = initTotal();
  std::size_t iter = 0;
  fit_prefix(cursor);
  for (const std::size_t size : batches_) {
    MFBO_CHECK(size == 1, "weibo batches are always size 1, got ", size);
    MFBO_CHECK(cursor < high_.size(),
               "batch table exceeds the archived history");
    const bool retrain =
        retrainEvery() <= 1 || (iter + 1) % retrainEvery() == 0;
    if (retrain) {
      ++cursor;
      fit_prefix(cursor);
    } else {
      const spans::ScopedSpan span("fit_high");
      const Evaluation& eval = high_.evals[cursor];
      models_[0].addPoint(high_.x[cursor], eval.objective, false);
      for (std::size_t i = 0; i < nc_; ++i)
        models_[1 + i].addPoint(high_.x[cursor], eval.constraints[i], false);
      ++cursor;
    }
    ++iter;
  }

  std::vector<std::vector<double>> hypers;
  hypers.reserve(models_.size());
  for (const auto& model : models_) hypers.push_back(model.hyperparameters());
  checkStampAgainst(policy.at("surrogates"), hypers);
}

}  // namespace mfbo::bo
