#include "bo/gaspad.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <optional>

#include "bo/acquisition.h"
#include "common/check.h"
#include "common/spans.h"
#include "common/telemetry.h"

namespace mfbo::bo {

namespace {

/// Feasible-first ranking indices: feasible entries by ascending objective,
/// then infeasible entries by ascending violation.
std::vector<std::size_t> meritOrder(const Dataset& data) {
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const Evaluation& ea = data.evals[a];
    const Evaluation& eb = data.evals[b];
    const bool fa = ea.feasible(), fb = eb.feasible();
    if (fa != fb) return fa;
    if (fa) return ea.objective < eb.objective;
    return ea.totalViolation() < eb.totalViolation();
  });
  return order;
}

}  // namespace

SynthesisResult Gaspad::run(Problem& problem, std::uint64_t seed) const {
  const std::size_t d = problem.dim();
  MFBO_CHECK(d > 0, "problem has zero dimensions");
  const std::size_t nc = problem.numConstraints();
  const Box real_box = problem.bounds();
  const Box unit = Box::unitCube(d);
  Rng rng(seed);
  const spans::ScopedSpan run_span("gaspad");
  traceRunStart("gaspad", problem, seed, options_.max_sims);
  telemetry::Counter& iterations_total =
      telemetry::counter("bo.gaspad.iterations");
  telemetry::Counter& children_total =
      telemetry::counter("bo.gaspad.children_screened");

  CostTracker tracker(problem.costRatio());
  std::vector<HistoryEntry> history;
  Dataset data;

  auto evaluate = [&](const Vector& u) {
    const spans::ScopedSpan sim_span("simulate_high");
    spans::addCounter("sims_high");
    const Vector x_real = real_box.fromUnit(u);
    Evaluation eval = problem.evaluate(x_real, Fidelity::kHigh);
    tracker.charge(Fidelity::kHigh);
    history.push_back({x_real, eval, Fidelity::kHigh, tracker.cost()});
    data.add(u, std::move(eval));
  };

  const std::size_t n_init =
      std::min<std::size_t>(options_.n_init,
                            static_cast<std::size_t>(options_.max_sims));
  for (const Vector& u : linalg::latinHypercube(n_init, unit, rng))
    evaluate(u);

  std::vector<gp::GpRegressor> models;
  models.reserve(1 + nc);
  for (std::size_t i = 0; i <= nc; ++i) {
    gp::GpConfig cfg = options_.gp;
    cfg.seed = seed * 999983u + i;
    models.emplace_back(std::make_unique<gp::SeArdKernel>(d), cfg);
  }
  auto fit_all = [&] {
    const spans::ScopedSpan fit_span("fit_high");
    models[0].fit(data.x, data.objectives());
    for (std::size_t i = 0; i < nc; ++i)
      models[1 + i].fit(data.x, data.constraintColumn(i));
  };
  fit_all();

  std::size_t iteration = 0;
  while (tracker.cost() + 1.0 <= options_.max_sims + 1e-9) {
    ++iteration;
    iterations_total.add();
    // Elite parent pool.
    const auto order = meritOrder(data);
    const std::size_t pop =
        std::min<std::size_t>(options_.population, order.size());

    // DE/rand/1/bin children from the elite pool; generation plus LCB
    // screening together form this algorithm's acquisition phase.
    std::optional<spans::ScopedSpan> phase_span;
    phase_span.emplace("acq_high");
    std::vector<Vector> children;
    children.reserve(options_.children);
    for (std::size_t c = 0; c < options_.children; ++c) {
      const std::size_t target = order[rng.index(pop)];
      Vector child = data.x[target];
      if (pop >= 4) {
        const auto picks = rng.distinctIndices(3, pop, pop);  // from elites
        const Vector& a = data.x[order[picks[0]]];
        const Vector& b = data.x[order[picks[1]]];
        const Vector& cc = data.x[order[picks[2]]];
        const std::size_t forced = rng.index(d);
        for (std::size_t j = 0; j < d; ++j) {
          if (j == forced || rng.uniform() < options_.crossover)
            child[j] = a[j] + options_.differential * (b[j] - cc[j]);
        }
      } else {
        // Tiny archive: fall back to Gaussian perturbation of an elite.
        child = linalg::gaussianJitterInBox(child, 0.1, unit, rng);
      }
      children.push_back(unit.clamp(std::move(child)));
    }

    // LCB pre-screening (feasible-first on optimistic bounds).
    Vector best_child;
    double best_key = std::numeric_limits<double>::max();
    bool best_optimistic_feasible = false;
    for (Vector& child : children) {
      double opt_violation = 0.0;
      for (std::size_t i = 0; i < nc; ++i) {
        const gp::Prediction p = models[1 + i].predict(child);
        opt_violation +=
            std::max(0.0, lowerConfidenceBound(p, options_.kappa));
      }
      const bool opt_feasible = opt_violation <= 0.0;
      const double key =
          opt_feasible
              ? lowerConfidenceBound(models[0].predict(child), options_.kappa)
              : opt_violation;
      if (best_child.empty() ||
          (opt_feasible && !best_optimistic_feasible) ||
          (opt_feasible == best_optimistic_feasible && key < best_key)) {
        best_child = std::move(child);
        best_key = key;
        best_optimistic_feasible = opt_feasible;
      }
    }

    spans::addCounter("children_screened", children.size());
    phase_span.reset();
    children_total.add(children.size());
    evaluate(dedupeCandidate(std::move(best_child), data, unit, rng));

    const bool retrain = options_.retrain_every <= 1 ||
                         iteration % options_.retrain_every == 0;

    if (iterationWanted(options_.observer)) {
      const spans::ScopedSpan observe_span("observe");
      IterationRecord rec;
      rec.algo = "gaspad";
      rec.iteration = iteration;
      rec.fidelity = Fidelity::kHigh;
      rec.retrained = retrain;
      // LCB pre-screening key of the simulated child (objective LCB when
      // optimistically feasible, otherwise the optimistic violation).
      rec.acquisition = best_key;
      rec.first_feasible_phase = !best_optimistic_feasible;
      rec.cumulative_cost = tracker.cost();
      rec.x = &history.back().x;
      rec.eval = &history.back().eval;
      if (const auto best = bestHighIndex(history)) {
        rec.best_objective = history[*best].eval.objective;
        rec.feasible_found = history[*best].eval.feasible();
      }
      publishIteration(rec, options_.observer);
    }

    if (retrain) {
      fit_all();
    } else {
      const spans::ScopedSpan fit_span("fit_high");
      models[0].addPoint(data.x.back(), data.evals.back().objective, false);
      for (std::size_t i = 0; i < nc; ++i)
        models[1 + i].addPoint(data.x.back(),
                               data.evals.back().constraints[i], false);
    }
  }

  SynthesisResult result = finalizeResult(std::move(history), tracker);
  traceRunEnd("gaspad", result);
  return result;
}

}  // namespace mfbo::bo
