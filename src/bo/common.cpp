#include "bo/common.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <utility>

#include "common/check.h"
#include "common/json.h"
#include "common/telemetry.h"

namespace mfbo::bo {

namespace {

Json vectorToJson(const Vector& v) { return Json::numberArray(v); }

/// Number field that serializes NaN (field not applicable) as null.
Json numberOrNull(double v) {
  return std::isfinite(v) ? Json::number(v) : Json::null();
}

Json iterationToJson(const IterationRecord& r) {
  Json e = Json::object();
  e.set("type", "iteration");
  e.set("algo", std::string(r.algo));
  e.set("iter", r.iteration);
  e.set("fidelity", fidelityName(r.fidelity));
  e.set("downgraded", r.downgraded);
  e.set("retrained", r.retrained);
  e.set("first_feasible_phase", r.first_feasible_phase);
  e.set("acq", numberOrNull(r.acquisition));
  e.set("tau_l", numberOrNull(r.tau_l));
  e.set("tau_h", numberOrNull(r.tau_h));
  e.set("max_norm_var", numberOrNull(r.max_norm_var));
  e.set("threshold", numberOrNull(r.threshold));
  e.set("norm_low_var", r.norm_low_var.empty()
                            ? Json::null()
                            : Json::numberArray(r.norm_low_var));
  e.set("x_star_l",
        r.x_star_l != nullptr ? vectorToJson(*r.x_star_l) : Json::null());
  e.set("x_t_raw",
        r.x_t_raw != nullptr ? vectorToJson(*r.x_t_raw) : Json::null());
  e.set("deduped", r.deduped);
  e.set("x", r.x != nullptr ? vectorToJson(*r.x) : Json::null());
  if (r.eval != nullptr) {
    e.set("objective", numberOrNull(r.eval->objective));
    e.set("constraints", Json::numberArray(r.eval->constraints));
    e.set("feasible", r.eval->feasible());
  } else {
    e.set("objective", Json::null());
    e.set("constraints", Json::null());
    e.set("feasible", Json::null());
  }
  e.set("best_objective", numberOrNull(r.best_objective));
  e.set("feasible_found", r.feasible_found);
  e.set("cost", r.cumulative_cost);
  return e;
}

}  // namespace

bool iterationWanted(const IterationObserver& observer) {
  return static_cast<bool>(observer) || telemetry::traceEnabled();
}

void publishIteration(const IterationRecord& record,
                      const IterationObserver& observer) {
  if (observer) observer(record);
  if (telemetry::traceEnabled())
    telemetry::emitTrace(iterationToJson(record));
}

void traceRunStart(std::string_view algo, const Problem& problem,
                   std::uint64_t seed, double budget) {
  if (!telemetry::traceEnabled()) return;
  Json e = Json::object();
  e.set("type", "run_start");
  e.set("algo", std::string(algo));
  e.set("problem", problem.name());
  e.set("dim", problem.dim());
  e.set("num_constraints", problem.numConstraints());
  e.set("cost_ratio", problem.costRatio());
  e.set("budget", budget);
  e.set("seed", Json::number(static_cast<double>(seed)));
  telemetry::emitTrace(e);
}

void traceRunEnd(std::string_view algo, const SynthesisResult& result) {
  if (!telemetry::traceEnabled()) return;
  Json e = Json::object();
  e.set("type", "run_end");
  e.set("algo", std::string(algo));
  e.set("best_objective", numberOrNull(result.best_eval.objective));
  e.set("feasible_found", result.feasible_found);
  e.set("n_low", result.n_low);
  e.set("n_high", result.n_high);
  e.set("equivalent_high_sims", result.equivalent_high_sims);
  telemetry::emitTrace(e);
}

IterationObserver stderrProgressObserver() {
  return [](const IterationRecord& r) {
    std::fprintf(stderr,
                 "[%-6.*s it %4zu] fid=%-4s cost=%8.2f best=%.6g "
                 "feasible=%s%s%s\n",
                 static_cast<int>(r.algo.size()), r.algo.data(), r.iteration,
                 fidelityName(r.fidelity), r.cumulative_cost,
                 r.best_objective, r.feasible_found ? "yes" : "no",
                 r.first_feasible_phase ? " [first-feasible]" : "",
                 r.downgraded ? " [downgraded]" : "");
  };
}

std::optional<std::size_t> Dataset::bestFeasible() const {
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < evals.size(); ++i) {
    if (!evals[i].feasible()) continue;
    if (!best || evals[i].objective < evals[*best].objective) best = i;
  }
  return best;
}

std::size_t Dataset::bestByMerit() const {
  MFBO_CHECK(!evals.empty(), "empty dataset");
  if (const auto feasible = bestFeasible()) return *feasible;
  std::size_t best = 0;
  for (std::size_t i = 1; i < evals.size(); ++i)
    if (evals[i].totalViolation() < evals[best].totalViolation()) best = i;
  return best;
}

std::vector<double> Dataset::objectives() const {
  std::vector<double> out(evals.size());
  for (std::size_t i = 0; i < evals.size(); ++i) out[i] = evals[i].objective;
  return out;
}

std::vector<double> Dataset::constraintColumn(std::size_t i) const {
  std::vector<double> out(evals.size());
  for (std::size_t k = 0; k < evals.size(); ++k) {
    MFBO_CHECK(i < evals[k].constraints.size(), "constraint ", i,
               " out of range: evaluation ", k, " has ",
               evals[k].constraints.size(), " constraints");
    out[k] = evals[k].constraints[i];
  }
  return out;
}

double Dataset::minDistance(const Vector& point) const {
  double best = std::numeric_limits<double>::infinity();
  for (const Vector& xi : x) best = std::min(best, (xi - point).norm());
  return best;
}

Vector maximizeAcquisitionMsp(const opt::ScalarObjective& acquisition,
                              const Box& box,
                              const std::optional<Vector>& incumbent_l,
                              const std::optional<Vector>& incumbent_h,
                              const MspOptions& options, Rng& rng,
                              const std::vector<Vector>& extra_starts) {
  // Partition starts into (random, around τ_l, around τ_h).
  std::size_t n_tau_l =
      incumbent_l ? static_cast<std::size_t>(
                        std::round(options.frac_tau_l *
                                   static_cast<double>(options.n_starts)))
                  : 0;
  std::size_t n_tau_h =
      incumbent_h ? static_cast<std::size_t>(
                        std::round(options.frac_tau_h *
                                   static_cast<double>(options.n_starts)))
                  : 0;
  const std::size_t n_random =
      options.n_starts > n_tau_l + n_tau_h
          ? options.n_starts - n_tau_l - n_tau_h
          : 1;

  std::vector<Vector> incumbents;
  std::vector<std::size_t> counts;
  if (incumbent_l) {
    incumbents.push_back(*incumbent_l);
    counts.push_back(n_tau_l);
  }
  if (incumbent_h) {
    incumbents.push_back(*incumbent_h);
    counts.push_back(n_tau_h);
  }
  std::vector<Vector> starts = opt::composeStarts(
      n_random, incumbents, counts, options.relative_sd, box, rng);
  for (const Vector& s : extra_starts) starts.push_back(box.clamp(s));

  // Minimize the negated acquisition from every start.
  opt::ScalarObjective negated = [&acquisition](const Vector& x) {
    return -acquisition(x);
  };
  opt::MultistartOptions ms;
  ms.local = options.local;
  const opt::OptResult r = opt::multistartMinimize(negated, starts, box, ms);

  // Attribute the winning start to its provenance — the §4.1 placement
  // policy (random LHS / τ_l scatter / τ_h scatter / caller-provided seeds
  // such as x*_l) is only worth its cost if the non-random starts win.
  // composeStarts lays the list out as [random | τ_l | τ_h | extra].
  telemetry::Counter& won_random =
      telemetry::counter("bo.msp.best_start_random");
  telemetry::Counter& won_tau_l =
      telemetry::counter("bo.msp.best_start_tau_l");
  telemetry::Counter& won_tau_h =
      telemetry::counter("bo.msp.best_start_tau_h");
  telemetry::Counter& won_seed =
      telemetry::counter("bo.msp.best_start_seed");
  const std::size_t tau_l_end = n_random + n_tau_l;  // n_tau_* are already 0
  const std::size_t tau_h_end = tau_l_end + n_tau_h;  // without an incumbent
  if (r.best_start < n_random) {
    won_random.add();
  } else if (r.best_start < tau_l_end) {
    won_tau_l.add();
  } else if (r.best_start < tau_h_end) {
    won_tau_h.add();
  } else {
    won_seed.add();
  }
  return r.x;
}

Vector minimizeCriterionMsp(const opt::ScalarObjective& criterion,
                            const Box& box, std::size_t n_starts,
                            const opt::NelderMeadOptions& local, Rng& rng) {
  MFBO_CHECK(box.dim() >= 1, "empty search box");
  std::vector<Vector> starts =
      linalg::latinHypercube(std::max<std::size_t>(n_starts, 1), box, rng);
  opt::MultistartOptions ms;
  ms.local = local;
  return opt::multistartMinimize(criterion, starts, box, ms).x;
}

Vector dedupeCandidate(Vector candidate, const Dataset& data, const Box& box,
                       Rng& rng, double min_dist) {
  return dedupeCandidate(std::move(candidate), {&data}, box, rng, min_dist);
}

Vector dedupeCandidate(Vector candidate,
                       std::initializer_list<const Dataset*> data,
                       const Box& box, Rng& rng, double min_dist) {
  MFBO_CHECK(candidate.size() == box.dim(), "candidate dim ",
             candidate.size(), " does not match box dim ", box.dim());
  constexpr int kMaxTries = 16;
  const auto too_close = [&](const Vector& point) {
    for (const Dataset* ds : data)
      if (ds->minDistance(point) < min_dist) return true;
    return false;
  };
  double sd = 1e-4;
  for (int attempt = 0; attempt < kMaxTries && too_close(candidate);
       ++attempt, sd *= 2.0) {
    candidate = linalg::gaussianJitterInBox(candidate, sd, box, rng);
  }
  return candidate;
}

SynthesisResult finalizeResult(std::vector<HistoryEntry> history,
                               const CostTracker& tracker) {
  SynthesisResult result;
  result.n_low = tracker.numLow();
  result.n_high = tracker.numHigh();
  result.equivalent_high_sims = tracker.cost();
  if (const auto best = bestHighIndex(history)) {
    result.best_x = history[*best].x;
    result.best_eval = history[*best].eval;
    result.feasible_found = history[*best].eval.feasible();
  }
  result.history = std::move(history);
  return result;
}

std::optional<std::size_t> bestHighIndex(
    const std::vector<HistoryEntry>& history) {
  std::optional<std::size_t> best;
  bool best_feasible = false;
  for (std::size_t i = 0; i < history.size(); ++i) {
    if (history[i].fidelity != Fidelity::kHigh) continue;
    const Evaluation& e = history[i].eval;
    const bool feasible = e.feasible();
    if (!best) {
      best = i;
      best_feasible = feasible;
      continue;
    }
    const Evaluation& b = history[*best].eval;
    if (feasible && !best_feasible) {
      best = i;
      best_feasible = true;
    } else if (feasible == best_feasible) {
      const bool better = feasible
                              ? e.objective < b.objective
                              : e.totalViolation() < b.totalViolation();
      if (better) best = i;
    }
  }
  return best;
}

}  // namespace mfbo::bo
