#include "bo/common.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace mfbo::bo {

std::optional<std::size_t> Dataset::bestFeasible() const {
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < evals.size(); ++i) {
    if (!evals[i].feasible()) continue;
    if (!best || evals[i].objective < evals[*best].objective) best = i;
  }
  return best;
}

std::size_t Dataset::bestByMerit() const {
  MFBO_CHECK(!evals.empty(), "empty dataset");
  if (const auto feasible = bestFeasible()) return *feasible;
  std::size_t best = 0;
  for (std::size_t i = 1; i < evals.size(); ++i)
    if (evals[i].totalViolation() < evals[best].totalViolation()) best = i;
  return best;
}

std::vector<double> Dataset::objectives() const {
  std::vector<double> out(evals.size());
  for (std::size_t i = 0; i < evals.size(); ++i) out[i] = evals[i].objective;
  return out;
}

std::vector<double> Dataset::constraintColumn(std::size_t i) const {
  std::vector<double> out(evals.size());
  for (std::size_t k = 0; k < evals.size(); ++k) {
    MFBO_CHECK(i < evals[k].constraints.size(), "constraint ", i,
               " out of range: evaluation ", k, " has ",
               evals[k].constraints.size(), " constraints");
    out[k] = evals[k].constraints[i];
  }
  return out;
}

double Dataset::minDistance(const Vector& point) const {
  double best = std::numeric_limits<double>::infinity();
  for (const Vector& xi : x) best = std::min(best, (xi - point).norm());
  return best;
}

Vector maximizeAcquisitionMsp(const opt::ScalarObjective& acquisition,
                              const Box& box,
                              const std::optional<Vector>& incumbent_l,
                              const std::optional<Vector>& incumbent_h,
                              const MspOptions& options, Rng& rng,
                              const std::vector<Vector>& extra_starts) {
  // Partition starts into (random, around τ_l, around τ_h).
  std::size_t n_tau_l =
      incumbent_l ? static_cast<std::size_t>(
                        std::round(options.frac_tau_l *
                                   static_cast<double>(options.n_starts)))
                  : 0;
  std::size_t n_tau_h =
      incumbent_h ? static_cast<std::size_t>(
                        std::round(options.frac_tau_h *
                                   static_cast<double>(options.n_starts)))
                  : 0;
  const std::size_t n_random =
      options.n_starts > n_tau_l + n_tau_h
          ? options.n_starts - n_tau_l - n_tau_h
          : 1;

  std::vector<Vector> incumbents;
  std::vector<std::size_t> counts;
  if (incumbent_l) {
    incumbents.push_back(*incumbent_l);
    counts.push_back(n_tau_l);
  }
  if (incumbent_h) {
    incumbents.push_back(*incumbent_h);
    counts.push_back(n_tau_h);
  }
  std::vector<Vector> starts = opt::composeStarts(
      n_random, incumbents, counts, options.relative_sd, box, rng);
  for (const Vector& s : extra_starts) starts.push_back(box.clamp(s));

  // Minimize the negated acquisition from every start.
  opt::ScalarObjective negated = [&acquisition](const Vector& x) {
    return -acquisition(x);
  };
  opt::MultistartOptions ms;
  ms.local = options.local;
  const opt::OptResult r = opt::multistartMinimize(negated, starts, box, ms);
  return r.x;
}

Vector minimizeCriterionMsp(const opt::ScalarObjective& criterion,
                            const Box& box, std::size_t n_starts,
                            const opt::NelderMeadOptions& local, Rng& rng) {
  std::vector<Vector> starts =
      linalg::latinHypercube(std::max<std::size_t>(n_starts, 1), box, rng);
  opt::MultistartOptions ms;
  ms.local = local;
  return opt::multistartMinimize(criterion, starts, box, ms).x;
}

Vector dedupeCandidate(Vector candidate, const Dataset& data, const Box& box,
                       Rng& rng, double min_dist) {
  constexpr int kMaxTries = 16;
  double sd = 1e-4;
  for (int attempt = 0;
       attempt < kMaxTries && data.minDistance(candidate) < min_dist;
       ++attempt, sd *= 2.0) {
    candidate = linalg::gaussianJitterInBox(candidate, sd, box, rng);
  }
  return candidate;
}

SynthesisResult finalizeResult(std::vector<HistoryEntry> history,
                               const CostTracker& tracker) {
  SynthesisResult result;
  result.n_low = tracker.numLow();
  result.n_high = tracker.numHigh();
  result.equivalent_high_sims = tracker.cost();
  if (const auto best = bestHighIndex(history)) {
    result.best_x = history[*best].x;
    result.best_eval = history[*best].eval;
    result.feasible_found = history[*best].eval.feasible();
  }
  result.history = std::move(history);
  return result;
}

std::optional<std::size_t> bestHighIndex(
    const std::vector<HistoryEntry>& history) {
  std::optional<std::size_t> best;
  bool best_feasible = false;
  for (std::size_t i = 0; i < history.size(); ++i) {
    if (history[i].fidelity != Fidelity::kHigh) continue;
    const Evaluation& e = history[i].eval;
    const bool feasible = e.feasible();
    if (!best) {
      best = i;
      best_feasible = feasible;
      continue;
    }
    const Evaluation& b = history[*best].eval;
    if (feasible && !best_feasible) {
      best = i;
      best_feasible = true;
    } else if (feasible == best_feasible) {
      const bool better = feasible
                              ? e.objective < b.objective
                              : e.totalViolation() < b.totalViolation();
      if (better) best = i;
    }
  }
  return best;
}

}  // namespace mfbo::bo
