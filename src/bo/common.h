// mfbo::bo — shared machinery for the synthesis algorithms: evaluation
// archives, cost accounting, and the §4.1 multiple-starting-point
// acquisition maximizer.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <limits>
#include <optional>
#include <string_view>
#include <vector>

#include "bo/problem.h"
#include "bo/result.h"
#include "common/check.h"
#include "linalg/rng.h"
#include "opt/multistart.h"

namespace mfbo::bo {

using linalg::Rng;

/// Short lowercase name for trace events and progress lines.
inline const char* fidelityName(Fidelity f) {
  return f == Fidelity::kHigh ? "high" : "low";
}

/// Snapshot of one synthesis-loop iteration, published to the optional
/// IterationObserver callback and — when a telemetry::TraceSink is
/// installed — serialized as one JSONL `iteration` event. Pointer members
/// reference the algorithm's internal state and are valid only for the
/// duration of the callback. Fields that do not apply to an algorithm stay
/// at their NaN / null defaults (e.g. only MFBO fills the eq. (11)/(12)
/// fidelity-decision fields).
struct IterationRecord {
  static constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

  std::string_view algo;        ///< "mfbo", "weibo", "gaspad", "de"
  std::size_t iteration = 0;    ///< 1-based loop iteration
  Fidelity fidelity = Fidelity::kHigh;  ///< fidelity evaluated this iteration
  bool downgraded = false;      ///< high→low forced by the remaining budget
  bool retrained = false;       ///< hyperparameters re-optimized afterwards
  bool first_feasible_phase = false;  ///< eq. (13) criterion replaced wEI
  double acquisition = kNan;    ///< acquisition / criterion value at x
  double tau_l = kNan;          ///< low-fidelity incumbent objective
  double tau_h = kNan;          ///< high-fidelity incumbent objective
  double max_norm_var = kNan;   ///< eq. (11) LHS: max normalized low var
  double threshold = kNan;      ///< eq. (12) RHS: (1+Nc)·γ
  /// Per-output normalized low-fidelity variance at x (objective first).
  std::vector<double> norm_low_var;
  double cumulative_cost = 0.0;  ///< equivalent high-fidelity sims so far
  double best_objective = kNan;  ///< best-so-far high-fidelity objective
  bool feasible_found = false;   ///< a feasible high-fidelity point exists
  const Vector* x_star_l = nullptr;  ///< MFBO step-5 maximizer (unit cube)
  /// MFBO step-6 maximizer before duplicate nudging (unit cube). The
  /// eq. (11)/(12) fidelity decision is made at the *post-dedupe* point —
  /// the one actually evaluated (field `x`); this records the raw
  /// acquisition maximizer alongside it.
  const Vector* x_t_raw = nullptr;
  bool deduped = false;  ///< evaluated point was nudged away from x_t_raw
  const Vector* x = nullptr;         ///< evaluated point (real coordinates)
  const Evaluation* eval = nullptr;  ///< its evaluation
};

/// Per-iteration progress callback. Invoked after the iteration's
/// evaluation, before the surrogate update.
using IterationObserver = std::function<void(const IterationRecord&)>;

/// True when building an IterationRecord is worthwhile: an observer is set
/// or a trace sink is installed. Keeps untraced runs free of bookkeeping.
bool iterationWanted(const IterationObserver& observer);

/// Invoke @p observer (when set) and emit the JSONL `iteration` trace event
/// (when a sink is installed).
void publishIteration(const IterationRecord& record,
                      const IterationObserver& observer);

/// Emit a `run_start` trace event (no-op without a sink).
void traceRunStart(std::string_view algo, const Problem& problem,
                   std::uint64_t seed, double budget);

/// Emit a `run_end` trace event (no-op without a sink).
void traceRunEnd(std::string_view algo, const SynthesisResult& result);

/// Ready-made observer printing one progress line per iteration to stderr
/// (the examples' --verbose flag).
IterationObserver stderrProgressObserver();

/// Archive of evaluated points for one fidelity level. Inputs are stored in
/// normalized unit-cube coordinates (the GPs see exactly these).
struct Dataset {
  std::vector<Vector> x;
  std::vector<Evaluation> evals;

  std::size_t size() const { return x.size(); }
  void add(Vector point, Evaluation eval) {
    x.push_back(std::move(point));
    evals.push_back(std::move(eval));
  }

  /// Index of the feasible entry with the smallest objective, if any.
  std::optional<std::size_t> bestFeasible() const;
  /// Feasible-first ranking: best feasible if one exists, otherwise the
  /// entry with the smallest total violation. Requires non-empty.
  std::size_t bestByMerit() const;
  /// Objective column.
  std::vector<double> objectives() const;
  /// i-th constraint column.
  std::vector<double> constraintColumn(std::size_t i) const;
  /// Smallest distance from @p point to any stored input (∞ when empty).
  double minDistance(const Vector& point) const;
};

/// Equivalent-high-fidelity-simulation cost meter.
class CostTracker {
 public:
  explicit CostTracker(double cost_ratio) : ratio_(cost_ratio) {}
  void charge(Fidelity f) {
    cost_ += f == Fidelity::kHigh ? 1.0 : 1.0 / ratio_;
    (f == Fidelity::kHigh ? n_high_ : n_low_) += 1;
  }
  double cost() const { return cost_; }
  std::size_t numLow() const { return n_low_; }
  std::size_t numHigh() const { return n_high_; }
  /// Reinstate a checkpointed meter state (Engine::restore).
  void restore(double cost, std::size_t n_low, std::size_t n_high) {
    MFBO_CHECK(cost >= 0.0, "checkpoint cost must be non-negative, got ",
               cost);
    cost_ = cost;
    n_low_ = n_low;
    n_high_ = n_high;
  }

 private:
  double ratio_;
  double cost_ = 0.0;
  std::size_t n_low_ = 0;
  std::size_t n_high_ = 0;
};

/// §4.1 multiple-starting-point settings. The defaults mirror the paper:
/// 10% of starts scattered around τ_l, 40% around τ_h, the rest random.
struct MspOptions {
  std::size_t n_starts = 20;
  double frac_tau_l = 0.1;
  double frac_tau_h = 0.4;
  double relative_sd = 0.05;  ///< scatter sd relative to box width
  opt::NelderMeadOptions local{.max_evaluations = 150, .initial_step = 0.05};
};

/// Maximize a deterministic acquisition over @p box with MSP. Starts are
/// composed of LHS samples, Gaussian scatter around the optional τ_l / τ_h
/// incumbents (with the configured fractions), and any @p extra_starts
/// (used by Algorithm 1 step 6 to seed the high-fidelity search with x*_l).
/// Returns the best point found; never fails.
Vector maximizeAcquisitionMsp(const opt::ScalarObjective& acquisition,
                              const Box& box,
                              const std::optional<Vector>& incumbent_l,
                              const std::optional<Vector>& incumbent_h,
                              const MspOptions& options, Rng& rng,
                              const std::vector<Vector>& extra_starts = {});

/// Minimize a scalar criterion (e.g. the eq. 13 violation) with plain MSP
/// (no incumbent scatter). Returns the best point found.
Vector minimizeCriterionMsp(const opt::ScalarObjective& criterion,
                            const Box& box, std::size_t n_starts,
                            const opt::NelderMeadOptions& local, Rng& rng);

/// Nudge @p candidate away from existing points when it (numerically)
/// duplicates one — duplicated inputs make GP Gram matrices singular.
Vector dedupeCandidate(Vector candidate, const Dataset& data, const Box& box,
                       Rng& rng, double min_dist = 1e-8);

/// Same, checked against several datasets at once. MFBO dedupes against
/// both fidelity archives *before* the eq. (11)/(12) fidelity decision, so
/// the σ²_l criterion is evaluated at the point actually simulated no
/// matter which training set it later joins.
Vector dedupeCandidate(Vector candidate,
                       std::initializer_list<const Dataset*> data,
                       const Box& box, Rng& rng, double min_dist = 1e-8);

/// Assemble the final SynthesisResult from a history: picks the best
/// high-fidelity entry (feasible-first), fills counters from the tracker.
SynthesisResult finalizeResult(std::vector<HistoryEntry> history,
                               const CostTracker& tracker);

}  // namespace mfbo::bo
