// mfbo::bo — the paper's contribution: multi-fidelity Bayesian optimization
// (Algorithm 1, §3.3-§3.4).
//
// Per iteration:
//  1. build/refresh one NARGP fusing surrogate per output,
//  2. maximize the low-fidelity wEI → x*_l (MSP with τ_l/τ_h scatter),
//  3. maximize the high-fidelity (fused) wEI seeded with x*_l → x_t,
//  4. pick the evaluation fidelity with the eq. (11)/(12) criterion:
//     high fidelity iff max_i σ²_{l,i}(x_t) < (1+Nc)·γ (variances on the
//     standardized output scale, γ = 0.01 by default),
//  5. evaluate, update the corresponding training set.
// While no feasible high-fidelity point is known, the eq. (13)
// first-feasible criterion replaces the wEI in steps 2-3.
#pragma once

#include <functional>
#include <memory>

#include "bo/common.h"
#include "mf/ar1.h"
#include "mf/nargp.h"

namespace mfbo {
class Json;
}

namespace mfbo::bo {

class Engine;

/// Factory producing one fusing surrogate per output; @p seed decorrelates
/// the per-output models. Defaults to the NARGP model of the paper; the
/// fusion ablation swaps in mf::Ar1Model.
using SurrogateFactory = std::function<std::unique_ptr<mf::MfSurrogate>(
    std::size_t x_dim, std::uint64_t seed)>;

struct MfboOptions {
  std::size_t n_init_low = 10;   ///< initial LHS design at low fidelity
  std::size_t n_init_high = 5;   ///< initial LHS design at high fidelity
  double budget = 100.0;         ///< equivalent high-fidelity simulations
  double gamma = 0.01;           ///< fidelity threshold of eq. (11)
  MspOptions msp;
  mf::NargpConfig nargp;
  /// Retrain surrogate hyperparameters every k-th new point.
  std::size_t retrain_every = 1;
  /// Extra jittered copies of x*_l seeding the high-fidelity search.
  std::size_t x_star_seeds = 4;
  /// §4.2 first-feasible strategy (minimize eq. 13 until a feasible point
  /// is known). Disable only for ablation.
  bool use_first_feasible = true;
  /// Proposals per batch (q). 1 reproduces the sequential Algorithm 1
  /// bit-for-bit; q > 1 proposes q points per iteration of the state
  /// machine via constant-liar fantasizing (see engine.h), each with its
  /// own eq. (11)/(12) fidelity decision, so one session can keep q
  /// simulators busy.
  std::size_t batch_size = 1;
  /// Surrogate override; null = NARGP with the `nargp` config above.
  SurrogateFactory surrogate_factory;
  /// Optional per-iteration progress callback (live streaming, --verbose).
  /// Invoked after each loop iteration's evaluation with the full
  /// fidelity-decision record; independent of the telemetry trace sink.
  IterationObserver observer;
};

class MfboSynthesizer {
 public:
  explicit MfboSynthesizer(MfboOptions options = {}) : options_(options) {}

  /// Run one synthesis. Deterministic given (problem, seed).
  SynthesisResult run(Problem& problem, std::uint64_t seed) const;

  /// Resume a run from an Engine::checkpoint() document and drive it to
  /// completion. With the same problem and options, the result and the
  /// emitted trace-event suffix are byte-identical to the uninterrupted
  /// run's.
  SynthesisResult resume(Problem& problem, const Json& checkpoint) const;

  /// Build the underlying state machine for stepwise driving (the
  /// checkpoint/kill/resume harnesses and service schedulers).
  std::unique_ptr<Engine> makeEngine(Problem& problem,
                                     std::uint64_t seed) const;

  const MfboOptions& options() const { return options_; }

 private:
  MfboOptions options_;
};

}  // namespace mfbo::bo
