// mfbo::bo — resumable synthesis engine: Algorithm 1's propose → simulate
// → observe loop as an explicit state machine with versioned
// checkpoint/resume and q-point constant-liar batch proposals.
//
// States and transitions (every state change goes through
// Engine::transition — the single mutation site, pinned by lint rule
// E001):
//
//   Init → FitSurrogate → Propose → AwaitResults → Observe
//             ↑    │                                  │
//             │    └────────→ Done (budget spent)     │
//             └──────────────────────────────────────-┘
//
// Checkpoint contract: checkpoint() may be taken at any state boundary
// (between step() calls). restore() on a freshly constructed engine
// followed by run() yields a result and a trace-event suffix
// byte-identical to the uninterrupted run at any thread count — the
// crash/resume differential harness in tests/test_checkpoint.cpp enforces
// this at every reachable boundary.
//
// Surrogates are restored by *replaying* the exact fit/addPoint schedule
// against the archived observations, never by deserializing factors: the
// incremental Cholesky append is equivalent to a rebuild only to ~1e-8, so
// serialized factors could not reproduce the uninterrupted run's bytes.
// The checkpointed hyperparameters instead serve as an integrity stamp the
// replayed models must match exactly.
//
// Batch proposals (MfboOptions::batch_size = q > 1) use the constant-liar
// fantasy: the fused surrogates are cloned once per batch, each proposed
// slot is fed back into the clones as a lie (CL-min for the objective —
// the incumbent best, so τ never moves — and the posterior mean for each
// constraint) via the O(n²) addPoint(retrain=false) path, and the next
// slot is proposed on the lied-to clones. The real models never see a lie,
// every slot still gets its own eq. (11)/(12) fidelity decision, and
// q = 1 never clones — reproducing the sequential loop bit-for-bit.
#pragma once

#include <algorithm>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "bo/common.h"
#include "bo/mfbo.h"
#include "bo/weibo.h"
#include "common/json.h"
#include "common/telemetry.h"

namespace mfbo::bo {

enum class EngineState {
  kInit,          ///< evaluate the initial designs, construct surrogates
  kFitSurrogate,  ///< (re)train or incrementally update the surrogates
  kPropose,       ///< select the next batch of candidate points
  kAwaitResults,  ///< evaluate every pending candidate
  kObserve,       ///< publish per-iteration records for the batch
  kDone,          ///< budget exhausted; result available
};

/// Lowercase state name used in checkpoints ("fit_surrogate", ...).
const char* engineStateName(EngineState s);
/// Inverse of engineStateName; unknown names are a ContractViolation.
EngineState engineStateFromName(std::string_view name);

/// One slot of the current proposal batch, carrying everything the Observe
/// phase needs to publish the iteration record after the (possibly
/// asynchronous) evaluation lands. Serialized verbatim into checkpoints.
struct ProposedSlot {
  std::size_t iteration = 0;  ///< 1-based loop iteration this slot is
  Vector x;                   ///< proposed point (unit cube, post-dedupe)
  Vector x_star_l;            ///< MFBO step-5 maximizer (empty for WEIBO)
  Vector x_t_raw;             ///< pre-dedupe maximizer (empty for WEIBO)
  Fidelity fidelity = Fidelity::kHigh;
  bool downgraded = false;   ///< high→low forced by the remaining budget
  bool deduped = false;      ///< nudged away from an archived duplicate
  bool first_feasible_phase = false;  ///< eq. (13) replaced wEI
  bool on_fantasy = false;   ///< proposed on constant-liar clones (slot > 0)
  double tau_l = IterationRecord::kNan;
  double tau_h = IterationRecord::kNan;
  /// For fantasy slots: acquisition at x on the clones that proposed it
  /// (computed at propose time — the clones are discarded with the batch).
  /// Slot 0 computes it on the real models during Observe, as the
  /// sequential loop always has.
  double acquisition = IterationRecord::kNan;
  double max_norm_var = IterationRecord::kNan;  ///< eq. (11) LHS
  double threshold = IterationRecord::kNan;     ///< eq. (12) RHS
  std::vector<double> norm_low_var;  ///< per-output normalized low variance
  bool evaluated = false;
  std::size_t history_index = 0;  ///< row in the run history once evaluated
  std::size_t dataset_index = 0;  ///< row in its fidelity's archive
};

/// Deterministic JSON projection of a SynthesisResult, full history
/// included: byte-equality of two dumps is equality of everything a run
/// produced. The crash/resume harness and micro_batch compare these.
Json synthesisResultToJson(const SynthesisResult& result);

/// Base synthesis state machine. Owns the archives, cost meter, RNG and
/// pending batch; subclasses provide the algorithm-specific Init /
/// FitSurrogate / Propose handlers and the checkpoint policy section.
class Engine {
 public:
  virtual ~Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  EngineState state() const { return state_; }
  bool done() const { return state_ == EngineState::kDone; }

  /// Stable algorithm tag ("mfbo", "weibo"): names the run span, the trace
  /// events, and the session-layer artifacts (src/service).
  const char* algo() const { return algoName(); }

  /// Health-layer progress accessors (src/service/health.h): evaluation
  /// cost charged so far, the algorithm's total budget (cost units for
  /// MFBO, simulations for WEIBO), and completed iterations.
  double costSpent() const { return tracker_.cost(); }
  double costBudget() const { return budget(); }
  std::size_t iterationCount() const { return iteration_; }

  /// Execute the current state's handler and advance. Not callable once
  /// Done.
  void step();

  /// Drive the machine to completion under the algorithm's run span and
  /// return the result. Works from a fresh engine and from a restored
  /// checkpoint.
  virtual SynthesisResult run() = 0;

  /// Serialize the complete optimizer state at the current boundary.
  /// Callable between any two step() calls; not once Done.
  Json checkpoint() const;

  /// Reinstate a checkpoint() document into this freshly constructed
  /// engine (same problem, same options). Validates every field and
  /// replays the surrogate training schedule; any mismatch — version,
  /// problem identity, options, shapes, non-finite payloads, or replayed
  /// hyperparameters drifting from the stamp — is a ContractViolation.
  void restore(const Json& ckpt);

  /// Move the result out; engine must be Done.
  SynthesisResult takeResult();

 protected:
  Engine(Problem& problem, std::uint64_t seed);

  /// The single state-mutation site (lint rule E001). Checks the edge
  /// against the transition diagram above; restore() is the one caller
  /// allowed to jump from Init to the checkpointed state.
  void transition(EngineState next);

  /// Shared driver behind every run() override: step to completion,
  /// return the result.
  SynthesisResult runToCompletion();

  // Algorithm hooks.
  virtual const char* algoName() const = 0;
  virtual double budget() const = 0;
  /// Cost of the cheapest evaluation still worth proposing.
  virtual double minStepCost() const = 0;
  virtual std::size_t retrainEvery() const = 0;
  virtual std::size_t initTotal() const = 0;
  virtual const IterationObserver& observerRef() const = 0;
  virtual void handleInit() = 0;
  virtual void handleFitSurrogate() = 0;
  virtual void handlePropose() = 0;
  /// Acquisition (or eq. 13 criterion) value reported for @p slot's
  /// iteration record, on the models that proposed it.
  virtual double observedAcquisition(const ProposedSlot& slot) = 0;
  /// Subclass section of the checkpoint: options digest + surrogate
  /// hyperparameter stamp (null until the first fit).
  virtual Json policyJson() const = 0;
  /// Validate the policy section against this engine's options, rebuild
  /// the surrogates, and replay their training schedule (only up to what
  /// @p target implies has already happened — a checkpoint at
  /// FitSurrogate with a pending batch has *not* absorbed that batch yet).
  virtual void restorePolicy(const Json& policy, EngineState target) = 0;

  // Shared handlers.
  void handleAwaitResults();
  void handleObserve();

  /// The stateless half of an evaluation: simulator span + sim counter +
  /// Problem::evaluate. Safe to run as a pool task — it touches no engine
  /// state, and Problem::evaluate is reentrant by contract — which is how
  /// handleAwaitResults fans a batch out over the shared pool.
  Evaluation simulate(const Vector& u, Fidelity f);
  /// The stateful half: cost charge, history row, archive append. Serial
  /// only; called in slot order so the records match the sequential loop.
  /// Returns the history row index.
  std::size_t recordEvaluation(const Vector& u, Fidelity f, Evaluation eval);
  /// simulate + recordEvaluation in one call — the serial evaluation path
  /// used by the init designs.
  std::size_t evaluateRaw(const Vector& u, Fidelity f);

  /// Tail of every FitSurrogate handler: archive the completed batch,
  /// close the iteration timer, and advance on the remaining budget.
  void finishFit();

  /// True when the batch containing the given iterations retrains
  /// hyperparameters (any slot hits the retrain_every schedule).
  bool retrainPlanned() const;

  /// Output column @p out of a dataset (0 = objective).
  static std::vector<double> columnOf(const Dataset& ds, std::size_t out);

  Problem* problem_;
  std::uint64_t seed_;
  std::size_t d_;
  std::size_t nc_;
  std::size_t n_out_;
  Box real_box_;
  Box unit_;
  double ratio_;
  Rng rng_;
  CostTracker tracker_;
  std::vector<HistoryEntry> history_;
  Dataset low_;   ///< low-fidelity archive (unused by WEIBO)
  Dataset high_;  ///< high-fidelity archive (WEIBO's only archive)
  std::size_t iteration_ = 0;
  std::vector<ProposedSlot> pending_;   ///< current batch
  std::vector<std::size_t> batches_;    ///< sizes of completed batches
  bool models_fitted_ = false;
  std::optional<telemetry::ScopedTimer> iter_timer_;
  SynthesisResult result_;

 private:
  void finish();
  void restoreHistory(const Json& ckpt);
  void restorePending(const Json& ckpt, EngineState target);

  EngineState state_ = EngineState::kInit;
  bool restoring_ = false;
};

/// The paper's multi-fidelity synthesizer as an Engine; adds q-point
/// constant-liar batching on top of the sequential Algorithm 1.
class MfboEngine final : public Engine {
 public:
  MfboEngine(Problem& problem, std::uint64_t seed, MfboOptions options);

  SynthesisResult run() override;

 protected:
  const char* algoName() const override { return "mfbo"; }
  double budget() const override { return options_.budget; }
  double minStepCost() const override { return 1.0 / ratio_; }
  std::size_t retrainEvery() const override { return options_.retrain_every; }
  std::size_t initTotal() const override {
    return options_.n_init_low + options_.n_init_high;
  }
  const IterationObserver& observerRef() const override {
    return options_.observer;
  }
  void handleInit() override;
  void handleFitSurrogate() override;
  void handlePropose() override;
  double observedAcquisition(const ProposedSlot& slot) override;
  Json policyJson() const override;
  void restorePolicy(const Json& policy, EngineState target) override;

 private:
  using Models = std::vector<std::unique_ptr<mf::MfSurrogate>>;

  void buildModels();
  void fitAll();
  /// Models the next slot is proposed on: the constant-liar clones while a
  /// batch is being fantasized, the real models otherwise.
  const Models& activeModels() const {
    return fantasy_.empty() ? models_ : fantasy_;
  }
  std::vector<gp::Prediction> lowPredictions(const Models& models,
                                             const Vector& u) const;
  std::vector<gp::Prediction> highPredictions(const Models& models,
                                              const Vector& u) const;
  /// Clone the fitted surrogates into the fantasy set (once per batch).
  void makeFantasies();
  /// Feed @p slot into the fantasy models as a constant-liar observation.
  void applyLiar(const ProposedSlot& slot);
  /// Steps 5-7 of Algorithm 1 for one batch slot, on activeModels().
  ProposedSlot proposeSlot(std::size_t slot_index, double projected_cost,
                           const Dataset& pending_points);

  MfboOptions options_;
  Models models_;
  Models fantasy_;
};

/// The WEIBO baseline on the same skeleton (sequential, batch size 1).
class WeiboEngine final : public Engine {
 public:
  WeiboEngine(Problem& problem, std::uint64_t seed, WeiboOptions options);

  SynthesisResult run() override;

 protected:
  const char* algoName() const override { return "weibo"; }
  double budget() const override { return options_.max_sims; }
  double minStepCost() const override { return 1.0; }
  std::size_t retrainEvery() const override { return options_.retrain_every; }
  std::size_t initTotal() const override {
    return std::min<std::size_t>(options_.n_init,
                                 static_cast<std::size_t>(options_.max_sims));
  }
  const IterationObserver& observerRef() const override {
    return options_.observer;
  }
  void handleInit() override;
  void handleFitSurrogate() override;
  void handlePropose() override;
  double observedAcquisition(const ProposedSlot& slot) override;
  Json policyJson() const override;
  void restorePolicy(const Json& policy, EngineState target) override;

 private:
  void buildModels();
  void fitAll();
  std::vector<gp::Prediction> constraintPredictions(const Vector& u) const;

  WeiboOptions options_;
  std::vector<gp::GpRegressor> models_;
};

}  // namespace mfbo::bo
