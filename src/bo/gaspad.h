// mfbo::bo — GASPAD baseline (Liu et al. 2014): surrogate-assisted
// evolutionary search with lower-confidence-bound pre-screening.
//
// Each generation, a differential-evolution operator produces a batch of
// candidate children from the current elite population; GP posteriors rank
// the children by an optimistic (LCB) feasibility-first merit; only the
// single most promising child is actually simulated.
#pragma once

#include "bo/common.h"
#include "gp/gp_regressor.h"

namespace mfbo::bo {

struct GaspadOptions {
  std::size_t n_init = 40;      ///< initial LHS design
  double max_sims = 300.0;      ///< simulation budget including init
  double kappa = 2.0;           ///< LCB width
  std::size_t population = 20;  ///< elite parents per generation
  std::size_t children = 30;    ///< DE children screened per generation
  double differential = 0.7;    ///< DE F
  double crossover = 0.8;       ///< DE CR
  gp::GpConfig gp;
  std::size_t retrain_every = 1;
  /// Optional per-iteration progress callback (live streaming, --verbose).
  IterationObserver observer;
};

class Gaspad {
 public:
  explicit Gaspad(GaspadOptions options = {}) : options_(options) {}

  /// Run one synthesis. Deterministic given (problem, seed).
  SynthesisResult run(Problem& problem, std::uint64_t seed) const;

  const GaspadOptions& options() const { return options_; }

 private:
  GaspadOptions options_;
};

}  // namespace mfbo::bo
