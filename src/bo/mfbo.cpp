#include "bo/mfbo.h"

#include <cmath>

#include "bo/acquisition.h"
#include "common/check.h"
#include "common/spans.h"
#include "common/telemetry.h"

namespace mfbo::bo {

SynthesisResult MfboSynthesizer::run(Problem& problem,
                                     std::uint64_t seed) const {
  const std::size_t d = problem.dim();
  MFBO_CHECK(d > 0, "problem has zero dimensions");
  MFBO_CHECK(options_.n_init_low > 0 && options_.n_init_high > 0,
             "initial designs must be non-empty, got ", options_.n_init_low,
             " low / ", options_.n_init_high, " high");
  MFBO_CHECK(problem.costRatio() > 0.0, "cost ratio must be positive, got ",
             problem.costRatio());
  MFBO_CHECK(options_.gamma >= 0.0, "gamma must be non-negative, got ",
             options_.gamma);
  const std::size_t nc = problem.numConstraints();
  const std::size_t n_out = 1 + nc;
  const Box real_box = problem.bounds();
  MFBO_CHECK(real_box.dim() == d, "problem bounds dim ", real_box.dim(),
             " does not match problem dim ", d);
  const Box unit = Box::unitCube(d);
  const double ratio = problem.costRatio();
  Rng rng(seed);
  const spans::ScopedSpan run_span("mfbo");
  traceRunStart("mfbo", problem, seed, options_.budget);
  static telemetry::Counter& iterations_total =
      telemetry::counter("bo.mfbo.iterations");
  static telemetry::Counter& downgrades_total =
      telemetry::counter("bo.mfbo.budget_downgrades");
  static telemetry::Timer& iteration_timer =
      telemetry::timer("bo.mfbo.iteration_seconds");

  CostTracker tracker(ratio);
  std::vector<HistoryEntry> history;
  Dataset low, high;

  auto evaluate = [&](const Vector& u, Fidelity f) {
    const bool hi = f == Fidelity::kHigh;
    const spans::ScopedSpan sim_span(hi ? "simulate_high" : "simulate_low");
    spans::addCounter(hi ? "sims_high" : "sims_low");
    const Vector x_real = real_box.fromUnit(u);
    Evaluation eval = problem.evaluate(x_real, f);
    tracker.charge(f);
    history.push_back({x_real, eval, f, tracker.cost()});
    (f == Fidelity::kHigh ? high : low).add(u, std::move(eval));
  };

  // Step 1 of Algorithm 1: initial designs at both fidelities.
  for (const Vector& u : linalg::latinHypercube(options_.n_init_low, unit, rng))
    evaluate(u, Fidelity::kLow);
  for (const Vector& u :
       linalg::latinHypercube(options_.n_init_high, unit, rng))
    evaluate(u, Fidelity::kHigh);

  // One fusing surrogate per output.
  SurrogateFactory factory = options_.surrogate_factory;
  if (!factory) {
    factory = [this](std::size_t x_dim, std::uint64_t s) {
      mf::NargpConfig cfg = options_.nargp;
      cfg.seed = s;
      cfg.low.seed = s + 17;
      cfg.high.seed = s + 31;
      return std::make_unique<mf::NargpModel>(x_dim, cfg);
    };
  }
  std::vector<std::unique_ptr<mf::MfSurrogate>> models;
  models.reserve(n_out);
  for (std::size_t i = 0; i < n_out; ++i)
    models.push_back(factory(d, seed * 1000003u + i));
  auto column = [&](const Dataset& ds, std::size_t out) {
    return out == 0 ? ds.objectives() : ds.constraintColumn(out - 1);
  };
  auto fit_all = [&] {
    for (std::size_t i = 0; i < n_out; ++i)
      models[i]->fit(low.x, column(low, i), high.x, column(high, i));
  };
  fit_all();

  auto low_predictions = [&](const Vector& u) {
    std::vector<gp::Prediction> p(n_out);
    for (std::size_t i = 0; i < n_out; ++i) p[i] = models[i]->predictLow(u);
    return p;
  };
  auto high_predictions = [&](const Vector& u) {
    std::vector<gp::Prediction> p(n_out);
    for (std::size_t i = 0; i < n_out; ++i) p[i] = models[i]->predictHigh(u);
    return p;
  };

  std::size_t iteration = 0;
  // Loop while at least a low-fidelity evaluation still fits the budget.
  while (tracker.cost() + 1.0 / ratio <= options_.budget + 1e-9) {
    ++iteration;
    iterations_total.add();
    const telemetry::ScopedTimer iteration_scope(iteration_timer);
    const auto feas_low = low.bestFeasible();
    const auto feas_high = high.bestFeasible();

    // τ incumbents (§4.1): locations of the current best results of the
    // low- and high-fidelity search spaces.
    const std::optional<Vector> inc_l =
        low.size() ? std::optional<Vector>(
                         low.x[feas_low ? *feas_low : low.bestByMerit()])
                   : std::nullopt;
    const std::optional<Vector> inc_h =
        high.size() ? std::optional<Vector>(
                          high.x[feas_high ? *feas_high : high.bestByMerit()])
                    : std::nullopt;

    // Step 5: optimize the low-fidelity acquisition → x*_l.
    Vector x_star_l;
    double tau_l = IterationRecord::kNan;
    const bool ff_low = nc > 0 && !feas_low && options_.use_first_feasible;
    std::optional<spans::ScopedSpan> phase_span;
    phase_span.emplace("acq_low");
    if (ff_low) {
      opt::ScalarObjective criterion = [&](const Vector& u) {
        const auto p = low_predictions(u);
        return predictedViolation({p.begin() + 1, p.end()});
      };
      x_star_l = minimizeCriterionMsp(criterion, unit, options_.msp.n_starts,
                                      options_.msp.local, rng);
    } else {
      tau_l = feas_low ? low.evals[*feas_low].objective
                       : models[0]->bestLowObserved();
      // Ranked in log space: the linear wEI product underflows to a flat 0
      // wherever several constraints are simultaneously improbable, which
      // would blind the MSP search exactly where it must still rank.
      opt::ScalarObjective acq_low = [&](const Vector& u) {
        const auto p = low_predictions(u);
        return logWeightedEi(p[0], tau_l, {p.begin() + 1, p.end()});
      };
      x_star_l = maximizeAcquisitionMsp(acq_low, unit, inc_l, inc_h,
                                        options_.msp, rng);
    }

    // Step 6: optimize the fused high-fidelity acquisition seeded with
    // x*_l (plus a few jittered copies of it).
    phase_span.emplace("acq_high");
    std::vector<Vector> seeds{x_star_l};
    for (std::size_t i = 0; i < options_.x_star_seeds; ++i)
      seeds.push_back(linalg::gaussianJitterInBox(
          x_star_l, options_.msp.relative_sd, unit, rng));

    Vector x_t;
    double tau_h = IterationRecord::kNan;
    const bool ff_high = nc > 0 && !feas_high && options_.use_first_feasible;
    if (ff_high) {
      // eq. (13) on the fused high-fidelity posterior means.
      opt::ScalarObjective criterion = [&](const Vector& u) {
        const auto p = high_predictions(u);
        return predictedViolation({p.begin() + 1, p.end()});
      };
      opt::ScalarObjective negated = [&](const Vector& u) {
        return -criterion(u);
      };
      // Reuse the MSP maximizer on the negated criterion so the x*_l seeds
      // participate; equivalent to minimizing the criterion.
      x_t = maximizeAcquisitionMsp(negated, unit, inc_l, inc_h, options_.msp,
                                   rng, seeds);
    } else {
      tau_h = feas_high ? high.evals[*feas_high].objective
                        : models[0]->bestHighObserved();
      // Log-space ranking, as for the low-fidelity acquisition above.
      opt::ScalarObjective acq_high = [&](const Vector& u) {
        const auto p = high_predictions(u);
        return logWeightedEi(p[0], tau_h, {p.begin() + 1, p.end()});
      };
      x_t = maximizeAcquisitionMsp(acq_high, unit, inc_l, inc_h, options_.msp,
                                   rng, seeds);
    }

    // Dedupe before the fidelity decision, against both archives (the
    // chosen fidelity is not known yet): the eq. (11)/(12) σ²_l criterion
    // must be evaluated at the point actually simulated, not at a raw
    // maximizer that a later nudge moves.
    const Vector x_t_raw = x_t;
    x_t = dedupeCandidate(std::move(x_t), {&low, &high}, unit, rng);
    const bool deduped = x_t.raw() != x_t_raw.raw();

    // Step 7 (§3.4): fidelity selection. Variances are normalized by each
    // low GP's output scale so γ is dimensionless (eq. 11-12). The low
    // predictions at x_t are computed once and shared with the iteration
    // record below.
    phase_span.emplace("fidelity_decision");
    const std::vector<gp::Prediction> p_low_t = low_predictions(x_t);
    std::vector<double> norm_vars(n_out);
    double max_norm_var = 0.0;
    for (std::size_t i = 0; i < n_out; ++i) {
      const double sd_out = models[i]->lowOutputSd();
      norm_vars[i] = p_low_t[i].var / (sd_out * sd_out);
      max_norm_var = std::max(max_norm_var, norm_vars[i]);
    }
    const double threshold = (1.0 + static_cast<double>(nc)) * options_.gamma;
    Fidelity f = max_norm_var < threshold ? Fidelity::kHigh : Fidelity::kLow;
    // Respect the remaining budget: a high-fidelity evaluation that no
    // longer fits is downgraded.
    bool downgraded = false;
    if (f == Fidelity::kHigh &&
        tracker.cost() + 1.0 > options_.budget + 1e-9) {
      f = Fidelity::kLow;
      downgraded = true;
      downgrades_total.add();
    }

    phase_span.reset();
    evaluate(x_t, f);

    // Step 8: update the training sets / surrogates.
    const bool retrain = options_.retrain_every <= 1 ||
                         iteration % options_.retrain_every == 0;

    if (iterationWanted(options_.observer)) {
      const spans::ScopedSpan observe_span("observe");
      IterationRecord rec;
      rec.algo = "mfbo";
      rec.iteration = iteration;
      rec.fidelity = f;
      rec.downgraded = downgraded;
      rec.retrained = retrain;
      rec.first_feasible_phase = ff_high;
      rec.tau_l = tau_l;
      rec.tau_h = tau_h;
      rec.max_norm_var = max_norm_var;
      rec.threshold = threshold;
      rec.norm_low_var = std::move(norm_vars);
      rec.cumulative_cost = tracker.cost();
      rec.x_star_l = &x_star_l;
      rec.x_t_raw = &x_t_raw;
      rec.deduped = deduped;
      rec.x = &history.back().x;
      rec.eval = &history.back().eval;
      // Acquisition (or eq. 13 criterion) value at the evaluated point —
      // one fused MC pass per output, shared across the record. Reported
      // in linear space (the log form is only the search's ranking).
      {
        const auto p_high_t = high_predictions(x_t);
        rec.acquisition =
            ff_high
                ? predictedViolation({p_high_t.begin() + 1, p_high_t.end()})
                : weightedEi(p_high_t[0], tau_h,
                             {p_high_t.begin() + 1, p_high_t.end()});
      }
      if (const auto best = bestHighIndex(history)) {
        rec.best_objective = history[*best].eval.objective;
        rec.feasible_found = history[*best].eval.feasible();
      }
      publishIteration(rec, options_.observer);
    }

    if (retrain) {
      fit_all();
    } else {
      for (std::size_t i = 0; i < n_out; ++i) {
        const Dataset& ds = f == Fidelity::kHigh ? high : low;
        const double y = i == 0 ? ds.evals.back().objective
                                : ds.evals.back().constraints[i - 1];
        if (f == Fidelity::kHigh)
          models[i]->addHigh(ds.x.back(), y, false);
        else
          models[i]->addLow(ds.x.back(), y, false);
      }
    }
  }

  SynthesisResult result = finalizeResult(std::move(history), tracker);
  traceRunEnd("mfbo", result);
  return result;
}

}  // namespace mfbo::bo
