#include "bo/mfbo.h"

#include <memory>

#include "bo/engine.h"

namespace mfbo::bo {

// The synthesis loop itself lives in MfboEngine (bo/engine.cpp): the
// sequential Algorithm 1 is the batch_size = 1 special case of the
// state-machine engine and reproduces the former inline loop bit-for-bit.

SynthesisResult MfboSynthesizer::run(Problem& problem,
                                     std::uint64_t seed) const {
  MfboEngine engine(problem, seed, options_);
  return engine.run();
}

SynthesisResult MfboSynthesizer::resume(Problem& problem,
                                        const Json& checkpoint) const {
  // The seed is part of the checkpoint; the constructor argument is
  // overwritten by restore().
  MfboEngine engine(problem, 0, options_);
  engine.restore(checkpoint);
  return engine.run();
}

std::unique_ptr<Engine> MfboSynthesizer::makeEngine(Problem& problem,
                                                    std::uint64_t seed) const {
  return std::make_unique<MfboEngine>(problem, seed, options_);
}

}  // namespace mfbo::bo
