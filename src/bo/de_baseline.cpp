#include "bo/de_baseline.h"

#include <algorithm>

#include "common/check.h"
#include "common/spans.h"
#include "common/telemetry.h"

namespace mfbo::bo {

namespace {

/// Deb's feasibility rules: does @p a beat (or tie) @p b?
bool dominatesByDeb(const Evaluation& a, const Evaluation& b) {
  const bool fa = a.feasible(), fb = b.feasible();
  if (fa != fb) return fa;
  if (fa) return a.objective <= b.objective;
  return a.totalViolation() <= b.totalViolation();
}

}  // namespace

SynthesisResult DeBaseline::run(Problem& problem, std::uint64_t seed) const {
  const std::size_t d = problem.dim();
  MFBO_CHECK(d > 0, "problem has zero dimensions");
  const Box box = problem.bounds();
  Rng rng(seed);
  const spans::ScopedSpan run_span("de");
  traceRunStart("de", problem, seed, options_.max_sims);
  telemetry::Counter& generations_total =
      telemetry::counter("bo.de.generations");
  telemetry::Counter& replacements_total =
      telemetry::counter("bo.de.replacements");

  CostTracker tracker(problem.costRatio());
  std::vector<HistoryEntry> history;

  auto evaluate = [&](const Vector& x) {
    const spans::ScopedSpan sim_span("simulate_high");
    spans::addCounter("sims_high");
    Evaluation eval = problem.evaluate(x, Fidelity::kHigh);
    tracker.charge(Fidelity::kHigh);
    history.push_back({x, eval, Fidelity::kHigh, tracker.cost()});
    return history.back().eval;
  };
  auto budget_left = [&] {
    return tracker.cost() + 1.0 <= options_.max_sims + 1e-9;
  };

  const std::size_t np = std::max<std::size_t>(options_.population, 4);
  std::vector<Vector> pop = linalg::latinHypercube(np, box, rng);
  std::vector<Evaluation> evals(np);
  for (std::size_t i = 0; i < np && budget_left(); ++i)
    evals[i] = evaluate(pop[i]);

  std::size_t generation = 0;
  while (budget_left()) {
    ++generation;
    generations_total.add();
    for (std::size_t i = 0; i < np && budget_left(); ++i) {
      const auto picks = rng.distinctIndices(3, np, i);
      const Vector& a = pop[picks[0]];
      const Vector& b = pop[picks[1]];
      const Vector& c = pop[picks[2]];
      Vector trial = pop[i];
      const std::size_t forced = rng.index(d);
      for (std::size_t j = 0; j < d; ++j) {
        if (j == forced || rng.uniform() < options_.crossover)
          trial[j] = a[j] + options_.differential * (b[j] - c[j]);
      }
      trial = box.clamp(std::move(trial));
      const Evaluation trial_eval = evaluate(trial);
      if (dominatesByDeb(trial_eval, evals[i])) {
        pop[i] = std::move(trial);
        evals[i] = trial_eval;
        replacements_total.add();
      }
    }

    // One progress record per generation (every trial costs a simulation,
    // so per-trial events would dwarf the BO algorithms' traces).
    if (iterationWanted(options_.observer) && !history.empty()) {
      const spans::ScopedSpan observe_span("observe");
      IterationRecord rec;
      rec.algo = "de";
      rec.iteration = generation;
      rec.fidelity = Fidelity::kHigh;
      rec.cumulative_cost = tracker.cost();
      rec.x = &history.back().x;
      rec.eval = &history.back().eval;
      if (const auto best = bestHighIndex(history)) {
        rec.best_objective = history[*best].eval.objective;
        rec.feasible_found = history[*best].eval.feasible();
      }
      publishIteration(rec, options_.observer);
    }
  }

  SynthesisResult result = finalizeResult(std::move(history), tracker);
  traceRunEnd("de", result);
  return result;
}

}  // namespace mfbo::bo
