#include "problems/power_amplifier.h"

#include <cmath>

#include "circuit/measure.h"
#include "circuit/netlist.h"
#include "circuit/simulator.h"

namespace mfbo::problems {

namespace {

using namespace mfbo::circuit;

constexpr double kF0 = PowerAmplifierProblem::kFrequencyHz;
constexpr double kPeriod = 1.0 / kF0;
constexpr double kRLoad = 50.0;
constexpr double kDriveAmplitude = 0.6;  // V, gate drive
constexpr double kStepsPerPeriod = 64.0;

/// Build the behavioural class-AB PA deck for one design point.
struct PaDeck {
  Netlist netlist;
  NodeId out = kGround;
  std::size_t vdd_index = 0;
};

PaDeck buildDeck(double cs, double cp, double w, double vdd, double vb) {
  PaDeck deck;
  Netlist& n = deck.netlist;
  const NodeId nvdd = n.node("vdd");
  const NodeId gate = n.node("gate");
  const NodeId drain = n.node("drain");
  const NodeId match = n.node("match");
  deck.out = n.node("out");

  deck.vdd_index =
      n.addVSource("vdd", nvdd, kGround, Waveform::dc(vdd));
  n.addVSource("vin", gate, kGround,
               Waveform::sine(vb, kDriveAmplitude, kF0));

  // The 2048-cell array behaves as one wide device; 65 nm-ish level-1
  // parameters.
  MosfetParams mos;
  mos.vt0 = 0.45;
  mos.kp = 2.5e-4;
  mos.lambda = 0.08;
  mos.w = w;
  mos.l = 0.1e-6;
  n.addMosfet("m_pa", drain, gate, kGround, mos);

  // RF choke to the supply and the Cs/Cp L-match into the 50 Ω load. The
  // small series inductor completes the harmonic filter.
  n.addInductor("l_rfc", nvdd, drain, 4e-9);
  n.addCapacitor("c_s", drain, match, cs);
  n.addInductor("l_m", match, deck.out, 1.5e-9);
  n.addCapacitor("c_p", deck.out, kGround, cp);
  n.addResistor("r_load", deck.out, kGround, kRLoad);
  return deck;
}

}  // namespace

PowerAmplifierProblem::PowerAmplifierProblem() = default;

bo::Box PowerAmplifierProblem::bounds() const {
  //            Cs      Cp      W       Vdd   Vb
  return bo::Box(
      bo::Vector{0.2e-12, 0.2e-12, 0.5e-3, 1.0, 0.3},
      bo::Vector{8.0e-12, 8.0e-12, 6.0e-3, 2.0, 0.9});
}

PaPerformance PowerAmplifierProblem::simulate(const bo::Vector& x,
                                              bo::Fidelity f) const {
  const double cs = x[0], cp = x[1], w = x[2], vdd = x[3], vb = x[4];
  PaDeck deck = buildDeck(cs, cp, w, vdd, vb);
  Simulator sim(deck.netlist);

  // Paper fidelities: 10 ns vs 200 ns of simulated time (24 vs 480 carrier
  // periods at 2.4 GHz). The low-fidelity measurement window starts right
  // after a couple of periods — start-up bias included, which is exactly
  // the systematic error a short simulation makes.
  // The low fidelity is also run with a 2× coarser time step — the second
  // systematic error source a cheap simulation has.
  const bool high = f == bo::Fidelity::kHigh;
  const double n_periods = high ? 480.0 : 24.0;
  const double t_stop = n_periods * kPeriod;
  const double dt = kPeriod / (high ? kStepsPerPeriod : 0.5 * kStepsPerPeriod);
  const double t_measure = high ? 0.5 * t_stop : 2.0 * kPeriod;

  const TransientResult tr = sim.transient(t_stop, dt);
  PaPerformance perf;
  if (!tr.converged) return perf;  // valid stays false

  const auto harmonics = nodeHarmonics(tr, deck.out, kF0, 5, t_measure);
  const double v1 = harmonics[1].magnitude;
  const double pout = v1 * v1 / (2.0 * kRLoad);
  const double pdc = averageSourcePower(sim, tr, deck.vdd_index, t_measure);

  perf.pout_dbm = 10.0 * std::log10(std::max(pout, 1e-12) / 1e-3);
  perf.eff = pdc > 1e-9 ? 100.0 * pout / pdc : 0.0;
  // The paper reports thd on a positive-dB scale (their Table 1 values sit
  // in 7-14 "dB" with a 13.65 limit). We use 20·log10(THD ratio) + 20 so a
  // 22% THD reads ~7 dB and a 48% THD reads ~13.6 dB — same geometry,
  // same spec constant.
  const double thd_ratio = totalHarmonicDistortion(harmonics);
  perf.thd_db = 20.0 * std::log10(std::max(thd_ratio, 1e-6)) + 20.0;
  perf.valid = true;
  return perf;
}

bo::Evaluation PowerAmplifierProblem::evaluate(const bo::Vector& x,
                                               bo::Fidelity f) {
  const PaPerformance perf = simulate(x, f);
  bo::Evaluation e;
  if (!perf.valid) {
    // Non-convergence: heavily penalized but finite and smooth-ish.
    e.objective = 100.0;
    e.constraints = {50.0, 50.0};
    return e;
  }
  // Maximize Eff ⇒ minimize −Eff; constraints in canonical c < 0 form.
  e.objective = -perf.eff;
  e.constraints = {kPoutSpecDbm - perf.pout_dbm,   // Pout > 23 dBm
                   perf.thd_db - kThdSpecDb};      // thd < 13.65 dB
  return e;
}

}  // namespace mfbo::problems
