// mfbo::problems — the §5.1 power-amplifier synthesis testbench.
//
// Paper setup: a TSMC 65 nm array PA at 2.4 GHz; maximize efficiency
// subject to Pout > 23 dBm and thd < 13.65 dB, over 5 design variables
// (Cs, Cp, W, Vdd, Vb). Fidelities: 10 ns vs 200 ns transient (20× cost).
//
// Our substitution: a behavioural class-AB PA on the in-tree MNA engine —
// one lumped NMOS (the 2048-cell array behaves as one wide device), an RF
// choke to VDD, and a Cs-series / Cp-shunt L-match into a 50 Ω load.
// Efficiency, fundamental output power and THD are measured exactly like
// the paper's: from transient waveforms via coherent harmonic analysis.
// The low fidelity runs a 20×-shorter transient whose measurement window
// still contains start-up transients — cheap, systematically biased, and
// *nonlinearly* correlated with the converged long transient (Fig. 3's
// premise).
#pragma once

#include "bo/problem.h"

namespace mfbo::problems {

/// All measured quantities of one PA simulation.
struct PaPerformance {
  double eff = 0.0;      ///< drain efficiency, percent
  double pout_dbm = 0.0; ///< fundamental output power, dBm
  double thd_db = 0.0;   ///< THD on the offset-dB scale used by the paper
  bool valid = false;    ///< simulation converged
};

/// Design vector layout: [Cs (F), Cp (F), W (m), Vdd (V), Vb (V)].
class PowerAmplifierProblem final : public bo::Problem {
 public:
  PowerAmplifierProblem();

  std::string name() const override { return "power-amplifier"; }
  std::size_t dim() const override { return 5; }
  std::size_t numConstraints() const override { return 2; }
  bo::Box bounds() const override;
  bo::Evaluation evaluate(const bo::Vector& x, bo::Fidelity f) override;
  /// 20× — 10 ns vs 200 ns of transistor simulation time in the paper.
  double costRatio() const override { return 20.0; }

  /// Raw performance numbers (used by the Fig. 3 correlation bench).
  PaPerformance simulate(const bo::Vector& x, bo::Fidelity f) const;

  /// Paper specs: Pout > 23 dBm, thd < 13.65 dB.
  static constexpr double kPoutSpecDbm = 23.0;
  static constexpr double kThdSpecDb = 13.65;
  static constexpr double kFrequencyHz = 2.4e9;
};

}  // namespace mfbo::problems
