// mfbo::problems — the §5.2 charge-pump synthesis testbench.
//
// Paper setup: an SMIC 40 nm charge pump (their Fig. 4) with 36 design
// variables; the goal is to hold the output-stage currents I(M1) (PMOS
// source) and I(M2) (NMOS sink) inside a tight window around 40 µA across
// 27 PVT corners. FOM and constraints follow eqs. (15)-(16) exactly, in µA.
// Fidelities: all 27 corners (high) vs the single nominal corner (low) —
// a 27× cost ratio, as in the paper.
//
// Our substitution: an 18-transistor steering charge pump on the in-tree
// MNA engine — cascoded current mirrors biased from i10u/i5u references,
// UP/DN steering switches, dump branches, and a mid-rail output clamp.
// The 36 design variables are the W and L of all 18 devices.
#pragma once

#include "bo/problem.h"
#include "circuit/pvt.h"

namespace mfbo::problems {

/// Per-corner current statistics and the derived paper metrics.
struct CpPerformance {
  // eq. (16) quantities, in µA:
  double max_diff1 = 0.0;  ///< max over corners of I(M1)max − I(M1)avg
  double max_diff2 = 0.0;  ///< max over corners of I(M1)avg − I(M1)min
  double max_diff3 = 0.0;  ///< max over corners of I(M2)max − I(M2)avg
  double max_diff4 = 0.0;  ///< max over corners of I(M2)avg − I(M2)min
  double deviation = 0.0;  ///< max|I(M1)avg−40| + max|I(M2)avg−40|
  double fom = 0.0;        ///< 0.3·Σ max_diff + 0.5·deviation
  bool valid = false;
};

/// Design vector layout: [W_1..W_18 (m), L_1..L_18 (m)] for the 18
/// transistors of the pump, in the order the deck instantiates them.
class ChargePumpProblem final : public bo::Problem {
 public:
  ChargePumpProblem();

  std::string name() const override { return "charge-pump"; }
  std::size_t dim() const override { return 36; }
  std::size_t numConstraints() const override { return 5; }
  bo::Box bounds() const override;
  bo::Evaluation evaluate(const bo::Vector& x, bo::Fidelity f) override;
  /// 27 corners vs 1 corner.
  double costRatio() const override { return 27.0; }

  /// Full performance extraction (used by benches and tests).
  CpPerformance simulate(const bo::Vector& x, bo::Fidelity f) const;

  /// A hand-sized reference design (mirror ratios ≈ 4) that lands in the
  /// neighbourhood of the feasible region — used for testing and for
  /// centring initial designs is NOT done (algorithms search the full box).
  bo::Vector referenceDesign() const;

  static constexpr double kTargetCurrentUa = 40.0;

 private:
  /// Simulate one PVT corner; returns {IM1 stats, IM2 stats} in µA.
  struct CornerCurrents {
    double im1_min, im1_avg, im1_max;
    double im2_min, im2_avg, im2_max;
    bool valid;
  };
  CornerCurrents simulateCorner(const bo::Vector& x,
                                const circuit::PvtCorner& corner) const;
};

}  // namespace mfbo::problems
