// mfbo::problems — two-stage Miller op-amp synthesis testbench.
//
// A library extension beyond the paper's two experiments, exercising the
// AC small-signal path: size a PMOS-input two-stage OTA with Miller
// compensation to maximize DC gain subject to unity-gain-bandwidth, phase
// margin, and power specs.
//
// Fidelities: the low fidelity computes gain/UGF/PM from the textbook
// hand-analysis formulas evaluated at the simulated DC operating point
// (one DC solve — fast, and systematically optimistic because it ignores
// the Miller RHP zero and higher poles). The high fidelity runs the full
// AC sweep. The two are strongly but nonlinearly correlated — the same
// structure as the paper's fidelity pairs.
#pragma once

#include "bo/problem.h"

namespace mfbo::problems {

struct OpampPerformance {
  double gain_db = 0.0;       ///< DC differential gain
  double ugf_hz = 0.0;        ///< unity-gain frequency
  double pm_deg = 0.0;        ///< phase margin
  double power_mw = 0.0;      ///< static supply power
  bool valid = false;
};

/// Design vector layout (10 variables):
///   [W_tail, W_in, W_mirror, W_out_n, W_out_p,
///    L_in, L_mirror, L_out, C_c, I_bias]
/// Widths/lengths in meters, C_c in farads, I_bias in amperes.
class OpampProblem final : public bo::Problem {
 public:
  OpampProblem();

  std::string name() const override { return "two-stage-opamp"; }
  std::size_t dim() const override { return 10; }
  std::size_t numConstraints() const override { return 3; }
  bo::Box bounds() const override;
  bo::Evaluation evaluate(const bo::Vector& x, bo::Fidelity f) override;
  /// One DC solve vs a ~60-point AC sweep on the embedded system.
  double costRatio() const override { return 10.0; }

  OpampPerformance simulate(const bo::Vector& x, bo::Fidelity f) const;

  /// A hand-sized design in the neighbourhood of the feasible region.
  bo::Vector referenceDesign() const;

  // Specs.
  static constexpr double kMinUgfMhz = 20.0;
  static constexpr double kMinPmDeg = 60.0;
  static constexpr double kMaxPowerMw = 1.0;
};

}  // namespace mfbo::problems
