#include "problems/synthetic.h"

#include <cmath>
#include <numbers>

namespace mfbo::problems {

namespace {
constexpr double kPi = std::numbers::pi;
}

// ------------------------------------------------------------ pedagogical --

double pedagogicalLow(double x) {
  const double t = x + 0.5;
  return std::sin(8.0 * kPi * t);
}

double pedagogicalHigh(double x) {
  const double t = x + 0.5;
  const double yl = std::sin(8.0 * kPi * t);
  return (t - std::numbers::sqrt2) * yl * yl;
}

Evaluation PedagogicalProblem::evaluate(const Vector& x, Fidelity fidelity) {
  Evaluation e;
  e.objective = fidelity == Fidelity::kHigh ? pedagogicalHigh(x[0])
                                            : pedagogicalLow(x[0]);
  return e;
}

// -------------------------------------------------------------- forrester --

double forresterHigh(double x) {
  const double a = 6.0 * x - 2.0;
  return a * a * std::sin(12.0 * x - 4.0);
}

double forresterLow(double x) {
  return 0.5 * forresterHigh(x) + 10.0 * (x - 0.5) - 5.0;
}

Evaluation ForresterProblem::evaluate(const Vector& x, Fidelity fidelity) {
  Evaluation e;
  e.objective =
      fidelity == Fidelity::kHigh ? forresterHigh(x[0]) : forresterLow(x[0]);
  return e;
}

// ----------------------------------------------------------------- branin --

double braninHigh(const Vector& x) {
  const double x1 = x[0], x2 = x[1];
  const double a = 1.0;
  const double b = 5.1 / (4.0 * kPi * kPi);
  const double c = 5.0 / kPi;
  const double r = 6.0;
  const double s = 10.0;
  const double t = 1.0 / (8.0 * kPi);
  const double inner = x2 - b * x1 * x1 + c * x1 - r;
  return a * inner * inner + s * (1.0 - t) * std::cos(x1) + s;
}

double braninLow(const Vector& x) {
  // Standard MFBO variant: rescaled + linear bias + phase error.
  const double x1 = x[0], x2 = x[1];
  return 0.5 * braninHigh(x) + 10.0 * std::sqrt(std::abs(x1 * x2) + 1.0) -
         20.0 + 5.0 * std::sin(0.5 * x1);
}

Evaluation BraninMfProblem::evaluate(const Vector& x, Fidelity fidelity) {
  Evaluation e;
  e.objective = fidelity == Fidelity::kHigh ? braninHigh(x) : braninLow(x);
  return e;
}

// ------------------------------------------- constrained quadratic (d-dim) --

Evaluation ConstrainedQuadraticProblem::evaluate(const Vector& x,
                                                 Fidelity fidelity) {
  double obj = 0.0, sum = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) {
    obj += (x[i] - 0.75) * (x[i] - 0.75);
    sum += x[i];
  }
  const double con = sum - (0.75 * static_cast<double>(dim_) - 0.5);

  Evaluation e;
  if (fidelity == Fidelity::kHigh) {
    e.objective = obj;
    e.constraints = {con};
  } else {
    // Coarse model: correct trends, smooth nonlinear bias — the structure
    // the fidelity-fusion model is designed to exploit.
    e.objective = 0.9 * obj + 0.15 * std::sin(3.0 * sum) + 0.05;
    e.constraints = {con + 0.1 * std::cos(2.0 * sum)};
  }
  return e;
}

double ConstrainedQuadraticProblem::optimalValue() const {
  // Projection of (0.75, ..., 0.75) onto Σx = 0.75d − 0.5 moves each
  // coordinate by 0.5/d, so the objective is d·(0.5/d)² = 0.25/d.
  return 0.25 / static_cast<double>(dim_);
}

}  // namespace mfbo::problems
