#include "problems/opamp.h"

#include <cmath>
#include <numbers>

#include "circuit/ac.h"
#include "circuit/linearize.h"
#include "circuit/netlist.h"
#include "circuit/simulator.h"

namespace mfbo::problems {

namespace {

using namespace mfbo::circuit;

constexpr double kVdd = 1.8;
constexpr double kVcm = 0.9;    // input common mode
constexpr double kCl = 2e-12;   // load capacitance

struct OpampDeck {
  Netlist netlist;
  NodeId out = kGround, stage1 = kGround;
  std::size_t vdd_index = 0;
  // Device indices for the hand-analysis fidelity.
  std::size_t m_in_p = 0, m_mirror_out = 0, m_out_n = 0, m_out_p = 0;
};

/// x = [W_tail, W_in, W_mirror, W_out_n, W_out_p, L_in, L_mirror, L_out,
///      C_c, I_bias].
OpampDeck buildDeck(const bo::Vector& x, double diff_drive) {
  OpampDeck deck;
  Netlist& n = deck.netlist;
  const double w_tail = x[0], w_in = x[1], w_mir = x[2], w_on = x[3],
               w_op = x[4];
  const double l_in = x[5], l_mir = x[6], l_out = x[7];
  const double cc = x[8], ibias = x[9];

  const NodeId vdd = n.node("vdd"), pbias = n.node("pbias"),
               tail = n.node("tail"), n1 = n.node("n1"), n2 = n.node("n2"),
               vinp = n.node("vinp"), vinn = n.node("vinn");
  deck.out = n.node("out");
  deck.stage1 = n2;

  deck.vdd_index = n.addVSource("vdd", vdd, kGround, Waveform::dc(kVdd));
  // Differential drive: ±half swing on the two inputs.
  const std::size_t vp =
      n.addVSource("vinp", vinp, kGround, Waveform::dc(kVcm));
  const std::size_t vn =
      n.addVSource("vinn", vinn, kGround, Waveform::dc(kVcm));
  n.vsources()[vp].ac_magnitude = 0.5 * diff_drive;
  n.vsources()[vn].ac_magnitude = 0.5 * diff_drive;
  n.vsources()[vn].ac_phase = std::numbers::pi;

  // Bias branch: diode-connected PMOS mirrors I_bias into the tail and the
  // output stage load.
  n.addISource("ib", pbias, kGround, Waveform::dc(ibias));

  auto pmos = [&](double w, double l) {
    MosfetParams p;
    p.is_pmos = true;
    p.vt0 = 0.45;
    p.kp = 1.2e-4;
    p.w = w;
    p.l = l;
    p.lambda = 0.15 * (0.18e-6 / l);
    return p;
  };
  auto nmos = [&](double w, double l) {
    MosfetParams p;
    p.vt0 = 0.45;
    p.kp = 3.0e-4;
    p.w = w;
    p.l = l;
    p.lambda = 0.12 * (0.18e-6 / l);
    return p;
  };

  n.addMosfet("mp_bias", pbias, pbias, vdd, pmos(0.5 * w_tail, l_out));
  n.addMosfet("mp_tail", tail, pbias, vdd, pmos(w_tail, l_out));

  // PMOS input pair with NMOS mirror load; first-stage output at n2.
  deck.m_in_p = n.addMosfet("mp_in_p", n1, vinp, tail, pmos(w_in, l_in));
  n.addMosfet("mp_in_n", n2, vinn, tail, pmos(w_in, l_in));
  n.addMosfet("mn_mir_d", n1, n1, kGround, nmos(w_mir, l_mir));
  deck.m_mirror_out =
      n.addMosfet("mn_mir_o", n2, n1, kGround, nmos(w_mir, l_mir));

  // Second stage: NMOS common source with PMOS current-source load.
  deck.m_out_n =
      n.addMosfet("mn_out", deck.out, n2, kGround, nmos(w_on, l_out));
  deck.m_out_p =
      n.addMosfet("mp_out", deck.out, pbias, vdd, pmos(w_op, l_out));

  // Miller compensation and load.
  n.addCapacitor("cc", n2, deck.out, cc);
  n.addCapacitor("cl", deck.out, kGround, kCl);
  // Small parasitic at the first-stage output (sets the mirror pole).
  n.addCapacitor("cp1", n2, kGround, 30e-15);
  return deck;
}

}  // namespace

OpampProblem::OpampProblem() = default;

bo::Box OpampProblem::bounds() const {
  //             Wtail  Win    Wmir   Won    Wop    Lin    Lmir   Lout
  bo::Vector lo{2e-6,  2e-6,  1e-6,  2e-6,  4e-6,  0.18e-6, 0.18e-6, 0.18e-6,
                //  Cc      Ibias
                0.2e-12, 5e-6};
  bo::Vector hi{60e-6, 80e-6, 40e-6, 80e-6, 120e-6, 1.0e-6, 1.0e-6, 1.0e-6,
                4e-12, 60e-6};
  return bo::Box(lo, hi);
}

OpampPerformance OpampProblem::simulate(const bo::Vector& x,
                                        bo::Fidelity f) const {
  OpampPerformance perf;
  OpampDeck deck = buildDeck(x, 1.0);
  Simulator sim(deck.netlist);
  const DcResult dc = sim.dcOperatingPoint();
  if (!dc.converged) return perf;

  const Netlist& net = deck.netlist;
  auto nodeV = [&](NodeId id) {
    return id == kGround ? 0.0
                         : dc.solution[static_cast<std::size_t>(id)];
  };
  const double i_supply = -sim.vsourceCurrent(dc.solution, deck.vdd_index);
  perf.power_mw = kVdd * i_supply * 1e3;

  if (f == bo::Fidelity::kLow) {
    // Hand analysis at the operating point: two-stage Miller formulas.
    auto ss = [&](std::size_t idx) {
      const Mosfet& m = net.mosfets()[idx];
      return mosfetSmallSignal(m, nodeV(m.d), nodeV(m.g), nodeV(m.s));
    };
    const MosfetSmallSignal in = ss(deck.m_in_p);
    const MosfetSmallSignal mir = ss(deck.m_mirror_out);
    const MosfetSmallSignal on = ss(deck.m_out_n);
    const MosfetSmallSignal op = ss(deck.m_out_p);
    // A0 = gm1/(gds2+gds4) · gm6/(gds6+gds7); zero/second pole ignored.
    const double a1 = in.gm / std::max(in.gds + mir.gds, 1e-12);
    const double a2 = on.gm / std::max(on.gds + op.gds, 1e-12);
    perf.gain_db = 20.0 * std::log10(std::max(a1 * a2, 1e-12));
    const double cc = x[8];
    perf.ugf_hz = in.gm / (2.0 * std::numbers::pi * std::max(cc, 1e-15));
    // Phase margin from the dominant-pole + second-pole textbook model.
    const double p2 = on.gm / (2.0 * std::numbers::pi * kCl);
    perf.pm_deg = 90.0 - std::atan(perf.ugf_hz / std::max(p2, 1.0)) *
                             180.0 / std::numbers::pi;
    perf.valid = true;
    return perf;
  }

  // High fidelity: full AC sweep (includes the Miller RHP zero, the mirror
  // pole, and every loading effect the hand formulas ignore).
  const AcResult ac = acAnalysis(sim, 1e2, 1e10, 8);
  if (!ac.converged) return perf;
  perf.gain_db = ac.magnitudeDb(0, deck.out);
  perf.ugf_hz = unityGainFrequency(ac, deck.out);
  // The two-stage path is inverting end to end for this drive polarity.
  perf.pm_deg = phaseMarginDeg(ac, deck.out, /*invert=*/true);
  perf.valid = true;
  return perf;
}

bo::Evaluation OpampProblem::evaluate(const bo::Vector& x, bo::Fidelity f) {
  const OpampPerformance perf = simulate(x, f);
  bo::Evaluation e;
  if (!perf.valid) {
    e.objective = 100.0;
    e.constraints = {100.0, 100.0, 100.0};
    return e;
  }
  e.objective = -perf.gain_db;  // maximize gain
  e.constraints = {kMinUgfMhz - perf.ugf_hz / 1e6,   // UGF > 20 MHz
                   kMinPmDeg - perf.pm_deg,          // PM > 60°
                   perf.power_mw - kMaxPowerMw};     // power < 1 mW
  return e;
}

bo::Vector OpampProblem::referenceDesign() const {
  //        Wtail  Win    Wmir   Won    Wop    Lin      Lmir     Lout
  return bo::Vector{16e-6, 24e-6, 8e-6,  32e-6, 48e-6, 0.4e-6, 0.4e-6,
                    0.36e-6,
                    //  Cc     Ibias
                    1.0e-12, 20e-6};
}

}  // namespace mfbo::problems
