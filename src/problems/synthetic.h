// mfbo::problems — synthetic multi-fidelity benchmark problems.
//
// These exercise every algorithm path without the circuit simulator:
//  * LambdaProblem — adapter building a Problem from closures,
//  * PedagogicalProblem — the Perdikaris pair behind the paper's Figs. 1-2,
//  * ForresterProblem — classic 1-d pair with *linear* low↔high correlation
//    (the case where AR(1) fusion is exactly right),
//  * BraninMfProblem — 2-d multi-fidelity Branin (standard MFBO test),
//  * ConstrainedQuadraticProblem — d-dim constrained problem with a known
//    optimum, for end-to-end synthesis tests.
#pragma once

#include <functional>
#include <string>
#include <utility>

#include "bo/problem.h"

namespace mfbo::problems {

using bo::Box;
using bo::Evaluation;
using bo::Fidelity;
using bo::Problem;
using bo::Vector;

/// Build a Problem from closures. The evaluator receives (x, fidelity).
class LambdaProblem final : public Problem {
 public:
  using Evaluator = std::function<Evaluation(const Vector&, Fidelity)>;

  LambdaProblem(std::string name, Box bounds, std::size_t num_constraints,
                double cost_ratio, Evaluator evaluator)
      : name_(std::move(name)),
        bounds_(std::move(bounds)),
        num_constraints_(num_constraints),
        cost_ratio_(cost_ratio),
        evaluator_(std::move(evaluator)) {}

  std::string name() const override { return name_; }
  std::size_t dim() const override { return bounds_.dim(); }
  std::size_t numConstraints() const override { return num_constraints_; }
  Box bounds() const override { return bounds_; }
  Evaluation evaluate(const Vector& x, Fidelity fidelity) override {
    return evaluator_(x, fidelity);
  }
  double costRatio() const override { return cost_ratio_; }

 private:
  std::string name_;
  Box bounds_;
  std::size_t num_constraints_;
  double cost_ratio_;
  Evaluator evaluator_;
};

/// Perdikaris et al. 2017 pedagogical pair, presented on the paper's
/// x ∈ [−0.5, 0.5] axis (Figures 1-2):
///   y_l(x) = sin(8π t),   y_h(x) = (t − √2)·y_l(x)²,   t = x + 0.5.
double pedagogicalLow(double x);
double pedagogicalHigh(double x);

/// Unconstrained 1-d minimization of the pedagogical high-fidelity
/// function. Global minimum near t ≈ 0.939 (x ≈ 0.439), f* ≈ −1.397.
class PedagogicalProblem final : public Problem {
 public:
  explicit PedagogicalProblem(double cost_ratio = 10.0)
      : cost_ratio_(cost_ratio) {}

  std::string name() const override { return "pedagogical"; }
  std::size_t dim() const override { return 1; }
  std::size_t numConstraints() const override { return 0; }
  Box bounds() const override {
    return Box(Vector{-0.5}, Vector{0.5});
  }
  Evaluation evaluate(const Vector& x, Fidelity fidelity) override;
  double costRatio() const override { return cost_ratio_; }

 private:
  double cost_ratio_;
};

/// Forrester et al. 2008 pair on [0, 1]:
///   f_h(x) = (6x−2)²·sin(12x−4)
///   f_l(x) = 0.5·f_h(x) + 10(x−0.5) − 5      (linear correlation)
/// Global minimum of f_h at x* ≈ 0.7572, f* ≈ −6.0207.
double forresterHigh(double x);
double forresterLow(double x);

class ForresterProblem final : public Problem {
 public:
  explicit ForresterProblem(double cost_ratio = 10.0)
      : cost_ratio_(cost_ratio) {}

  std::string name() const override { return "forrester"; }
  std::size_t dim() const override { return 1; }
  std::size_t numConstraints() const override { return 0; }
  Box bounds() const override { return Box(Vector{0.0}, Vector{1.0}); }
  Evaluation evaluate(const Vector& x, Fidelity fidelity) override;
  double costRatio() const override { return cost_ratio_; }

 private:
  double cost_ratio_;
};

/// Multi-fidelity Branin (2-d). High fidelity is the standard Branin
/// function over x₁∈[−5,10], x₂∈[0,15] (three global minima, f* ≈ 0.3979);
/// the low fidelity is the biased/rescaled variant common in MFBO papers.
double braninHigh(const Vector& x);
double braninLow(const Vector& x);

class BraninMfProblem final : public Problem {
 public:
  explicit BraninMfProblem(double cost_ratio = 10.0)
      : cost_ratio_(cost_ratio) {}

  std::string name() const override { return "branin-mf"; }
  std::size_t dim() const override { return 2; }
  std::size_t numConstraints() const override { return 0; }
  Box bounds() const override {
    return Box(Vector{-5.0, 0.0}, Vector{10.0, 15.0});
  }
  Evaluation evaluate(const Vector& x, Fidelity fidelity) override;
  double costRatio() const override { return cost_ratio_; }

 private:
  double cost_ratio_;
};

/// d-dimensional constrained problem with an analytically known solution:
///
///   minimize   Σ (x_i − 0.75)²
///   s.t.       Σ x_i ≤ 0.75·d − 0.5      (active at the optimum)
///
/// over [0,1]^d. The low fidelity adds a smooth, state-dependent bias to
/// both objective and constraint (nonlinearly correlated, like a coarse
/// simulation would be). Optimum: all x_i = 0.75 − 0.5/(2d)… specifically
/// x_i = 0.75 − 0.5/d·0.5; see tests for the closed form.
class ConstrainedQuadraticProblem final : public Problem {
 public:
  explicit ConstrainedQuadraticProblem(std::size_t dim,
                                       double cost_ratio = 10.0)
      : dim_(dim), cost_ratio_(cost_ratio) {}

  std::string name() const override { return "constrained-quadratic"; }
  std::size_t dim() const override { return dim_; }
  std::size_t numConstraints() const override { return 1; }
  Box bounds() const override {
    return Box(Vector(dim_, 0.0), Vector(dim_, 1.0));
  }
  Evaluation evaluate(const Vector& x, Fidelity fidelity) override;
  double costRatio() const override { return cost_ratio_; }

  /// Optimal objective value: the constrained minimum of the quadratic.
  double optimalValue() const;

 private:
  std::size_t dim_;
  double cost_ratio_;
};

/// Counts evaluations per fidelity around any wrapped problem (test /
/// accounting helper).
class CountingProblem final : public Problem {
 public:
  explicit CountingProblem(Problem& inner) : inner_(inner) {}

  std::string name() const override { return inner_.name(); }
  std::size_t dim() const override { return inner_.dim(); }
  std::size_t numConstraints() const override {
    return inner_.numConstraints();
  }
  Box bounds() const override { return inner_.bounds(); }
  Evaluation evaluate(const Vector& x, Fidelity fidelity) override {
    (fidelity == Fidelity::kHigh ? high_calls_ : low_calls_) += 1;
    return inner_.evaluate(x, fidelity);
  }
  double costRatio() const override { return inner_.costRatio(); }

  std::size_t lowCalls() const { return low_calls_; }
  std::size_t highCalls() const { return high_calls_; }

 private:
  Problem& inner_;
  std::size_t low_calls_ = 0;
  std::size_t high_calls_ = 0;
};

}  // namespace mfbo::problems
