#include "problems/charge_pump.h"

#include <algorithm>
#include <cmath>

#include "circuit/measure.h"
#include "circuit/netlist.h"
#include "circuit/simulator.h"

namespace mfbo::problems {

namespace {

using namespace mfbo::circuit;

constexpr double kVddNominal = 1.6;
/// Compliance sweep: the output is clamped at kNumSweep levels spanning
/// [kSweepLo, kSweepHi]·VDD; min/avg/max of the phase current over the
/// sweep are the I_max/I_avg/I_min of eq. (16).
constexpr std::size_t kNumSweep = 9;
constexpr double kSweepLo = 0.06, kSweepHi = 0.94;

/// Device order of the 18 transistors; W_i = x[i], L_i = x[18+i].
enum DeviceIndex : std::size_t {
  kMnB1 = 0,    // NMOS diode master (i10u)
  kMnB2,        // NMOS cascode-bias diode (i5u)
  kMnM2,        // "M2": NMOS mirror slave (measured)
  kMnCas,       // NMOS cascode over M2
  kMnSwDn,      // DN steering switch (to cpout)
  kMnSwDnb,     // DN dump switch
  kMnPb,        // mirror slave feeding the PMOS bias diode
  kMnPbCas,     // cascode in the PMOS-bias branch
  kMnPb2,       // mirror slave feeding the PMOS cascode-bias stack
  kMpB1,        // PMOS diode master
  kMpB2a,       // PMOS cascode-bias stack, upper diode
  kMpB2b,       // PMOS cascode-bias stack, lower diode
  kMpM1,        // "M1": PMOS mirror slave (measured)
  kMpCas,       // PMOS cascode under M1
  kMpSwUp,      // UP steering switch (to cpout)
  kMpSwUpb,     // UP dump switch
  kMpRep,       // always-on replica of the UP switch inside the bias branch
  kMpDumpLoad,  // diode load terminating the PMOS dump branch
  kNumDevices
};

struct CpDeck {
  Netlist netlist;
  std::size_t m1_index = 0, m2_index = 0;
};

/// Which steering phase conducts during the (static) measurement.
enum class Phase { kUp, kDn };

CpDeck buildDeck(const bo::Vector& x, const PvtCorner& corner, Phase phase,
                 double v_out) {
  CpDeck deck;
  Netlist& n = deck.netlist;
  const double vdd_v = kVddNominal * corner.vdd_scale;

  const NodeId vdd = n.node("vdd");
  const NodeId nb1 = n.node("nb1"), nb2 = n.node("nb2");
  const NodeId mx = n.node("mx"), my = n.node("my");
  const NodeId pc1 = n.node("pc1");
  const NodeId pb1 = n.node("pb1"), pb2 = n.node("pb2"),
               pb2a = n.node("pb2a");
  const NodeId px = n.node("px"), py = n.node("py");
  const NodeId cpout = n.node("cpout");
  const NodeId dumpp = n.node("dumpp"), dumpn = n.node("dumpn");
  const NodeId up = n.node("up"), upb = n.node("upb");
  const NodeId dn = n.node("dn"), dnb = n.node("dnb");

  n.addVSource("vdd", vdd, kGround, Waveform::dc(vdd_v));
  // Bias references (the i10u / i5u pins of the paper's Fig. 4). A real
  // reference is a bandgap + resistor and drifts with process and
  // temperature; modelling that drift is what gives the corners teeth.
  const double bias_scale = 1.0 + 0.1 * (corner.kp_scale - 1.0) +
                            1e-4 * (corner.temp_c - 27.0);
  n.addISource("i10u", vdd, nb1, Waveform::dc(10e-6 * bias_scale));
  n.addISource("i5u", vdd, nb2, Waveform::dc(5e-6 * bias_scale));

  // Phase drives: the measured phase conducts statically. PMOS switches
  // are low-active.
  const bool up_on = phase == Phase::kUp;
  const bool dn_on = phase == Phase::kDn;
  n.addVSource("v_up", up, kGround, Waveform::dc(up_on ? vdd_v : 0.0));
  n.addVSource("v_upb", upb, kGround, Waveform::dc(up_on ? 0.0 : vdd_v));
  n.addVSource("v_dn", dn, kGround, Waveform::dc(dn_on ? vdd_v : 0.0));
  n.addVSource("v_dnb", dnb, kGround, Waveform::dc(dn_on ? 0.0 : vdd_v));

  // Output clamp: the loop filter holds cpout at v_out; the compliance
  // sweep moves this level across the usable output range.
  n.addVSource("v_clamp", n.node("vmid"), kGround, Waveform::dc(v_out));
  n.addResistor("r_clamp", n.node("vmid"), cpout, 200.0);
  // Dump-branch terminations.
  n.addResistor("r_dumpn", vdd, dumpn, 5e3);

  // Device construction: level-1 parameters with an L-dependent channel-
  // length-modulation law (λ ∝ 1/L) so gate length genuinely trades off
  // mirror accuracy versus area/compliance.
  auto mos = [&](std::size_t idx, bool pmos) {
    MosfetParams p;
    p.is_pmos = pmos;
    p.vt0 = 0.45;
    p.kp = pmos ? 1.2e-4 : 3.0e-4;
    p.w = x[idx];
    p.l = x[18 + idx];
    p.lambda = (pmos ? 0.20 : 0.15) * (0.1e-6 / p.l);
    return applyCorner(p, corner);
  };

  // NMOS half.
  n.addMosfet("mn_b1", nb1, nb1, kGround, mos(kMnB1, false));
  n.addMosfet("mn_b2", nb2, nb2, kGround, mos(kMnB2, false));
  deck.m2_index =
      n.addMosfet("m2", mx, nb1, kGround, mos(kMnM2, false));
  n.addMosfet("mn_cas", my, nb2, mx, mos(kMnCas, false));
  n.addMosfet("mn_sw_dn", cpout, dn, my, mos(kMnSwDn, false));
  n.addMosfet("mn_sw_dnb", dumpn, dnb, my, mos(kMnSwDnb, false));
  n.addMosfet("mn_pb", pc1, nb1, kGround, mos(kMnPb, false));
  n.addMosfet("mn_pb_cas", pb1, nb2, pc1, mos(kMnPbCas, false));
  n.addMosfet("mn_pb2", pb2, nb1, kGround, mos(kMnPb2, false));

  // PMOS half. The diode-connected master stacks an always-on replica of
  // the steering switch (gate grounded) so the bias branch replicates the
  // output branch's series drop — standard matching practice.
  const NodeId pb1r = n.node("pb1r");
  n.addMosfet("mp_b1", pb1r, pb1, vdd, mos(kMpB1, true));
  n.addMosfet("mp_rep", pb1, kGround, pb1r, mos(kMpRep, true));
  n.addMosfet("mp_b2a", pb2a, pb2a, vdd, mos(kMpB2a, true));
  n.addMosfet("mp_b2b", pb2, pb2, pb2a, mos(kMpB2b, true));
  deck.m1_index = n.addMosfet("m1", px, pb1, vdd, mos(kMpM1, true));
  n.addMosfet("mp_cas", py, pb2, px, mos(kMpCas, true));
  n.addMosfet("mp_sw_up", cpout, upb, py, mos(kMpSwUp, true));
  n.addMosfet("mp_sw_upb", dumpp, up, py, mos(kMpSwUpb, true));
  n.addMosfet("mp_dl", kGround, kGround, dumpp, mos(kMpDumpLoad, true));

  // Parasitic node capacitances: roughly 1 fF per µm of connected gate
  // width plus 2 fF of fixed wiring — these give the pump its switching
  // dynamics (charge injection, settling), which the ripple constraints
  // of eq. (15) measure. Drive and supply nodes are excluded.
  {
    std::vector<double> node_cap(n.numNodes(), 5e-15);
    for (const Mosfet& m : n.mosfets()) {
      const double c_per_terminal = 1.0e-15 * (m.params.w / 1e-6);
      if (m.d != kGround) node_cap[static_cast<std::size_t>(m.d)] +=
          c_per_terminal;
      if (m.s != kGround) node_cap[static_cast<std::size_t>(m.s)] +=
          c_per_terminal;
    }
    for (NodeId internal : {nb1, nb2, mx, my, pc1, pb1, pb1r, pb2, pb2a, px,
                            py, cpout, dumpp, dumpn}) {
      n.addCapacitor("c_" + n.nodeName(internal), internal, kGround,
                     node_cap[static_cast<std::size_t>(internal)]);
    }
  }
  return deck;
}

}  // namespace

ChargePumpProblem::ChargePumpProblem() = default;

bo::Box ChargePumpProblem::bounds() const {
  // Role-aware bounds, as a designer would set them: bias diodes stay
  // small, mirror slaves and cascodes get room to hit 4× ratios, switches
  // are wide and short. Each device still spans at least a factor of 8 in
  // width, so the 36-dimensional search is anything but trivial.
  struct Range {
    double w_lo, w_hi, l_lo, l_hi;  // µm
  };
  static constexpr Range kRanges[18] = {
      {1, 16, 0.2, 1.2},    // mn_b1 (diode master)
      {0.25, 4, 0.3, 2.0},  // mn_b2 (cascode-bias diode: narrow & long)
      {4, 64, 0.2, 1.2},    // m2 (measured mirror slave)
      {8, 80, 0.1, 0.6},    // mn_cas
      {5, 80, 0.1, 0.4},    // mn_sw_dn
      {5, 80, 0.1, 0.4},    // mn_sw_dnb
      {1, 16, 0.2, 1.2},    // mn_pb
      {2, 32, 0.1, 0.6},    // mn_pb_cas
      {0.5, 8, 0.2, 1.2},   // mn_pb2
      {2, 32, 0.2, 1.2},    // mp_b1 (diode master)
      {1, 16, 0.2, 1.2},    // mp_b2a
      {1, 16, 0.2, 1.2},    // mp_b2b
      {8, 80, 0.2, 1.2},    // m1 (measured mirror slave)
      {16, 80, 0.1, 0.6},   // mp_cas
      {10, 80, 0.1, 0.4},   // mp_sw_up
      {10, 80, 0.1, 0.4},   // mp_sw_upb
      {2, 40, 0.1, 0.4},    // mp_rep
      {2, 40, 0.1, 0.6},    // mp_dl
  };
  bo::Vector lo(36), hi(36);
  for (std::size_t i = 0; i < 18; ++i) {
    lo[i] = kRanges[i].w_lo * 1e-6;
    hi[i] = kRanges[i].w_hi * 1e-6;
    lo[18 + i] = kRanges[i].l_lo * 1e-6;
    hi[18 + i] = kRanges[i].l_hi * 1e-6;
  }
  return bo::Box(lo, hi);
}

ChargePumpProblem::CornerCurrents ChargePumpProblem::simulateCorner(
    const bo::Vector& x, const circuit::PvtCorner& corner) const {
  CornerCurrents cc{0, 0, 0, 0, 0, 0, false};
  const double vdd_v = kVddNominal * corner.vdd_scale;

  // Compliance sweep of each phase: clamp the output at several levels and
  // read the delivered current at DC. I(M1): PMOS sources current out of
  // its drain (negate); I(M2): NMOS sinks current into its drain.
  auto sweep = [&](Phase phase, double sign, std::size_t mos_role,
                   double& out_min, double& out_avg, double& out_max) {
    out_min = 1e300;
    out_max = -1e300;
    double acc = 0.0;
    // Build the deck once; only the clamp level changes between sweep
    // points, and the previous solution warm-starts the next solve.
    CpDeck deck = buildDeck(x, corner, phase, kSweepLo * vdd_v);
    Simulator sim(deck.netlist);
    const std::size_t clamp = deck.netlist.vsourceIndex("v_clamp");
    linalg::Vector prev;
    for (std::size_t k = 0; k < kNumSweep; ++k) {
      const double frac =
          kSweepLo + (kSweepHi - kSweepLo) * static_cast<double>(k) /
                         static_cast<double>(kNumSweep - 1);
      deck.netlist.vsources()[clamp].waveform = Waveform::dc(frac * vdd_v);
      const DcResult dc =
          sim.dcOperatingPoint(prev.empty() ? nullptr : &prev);
      if (!dc.converged) return false;
      prev = dc.solution;
      const std::size_t idx =
          mos_role == 0 ? deck.m1_index : deck.m2_index;
      const double i = sign * sim.mosfetCurrent(dc.solution, idx) * 1e6;
      out_min = std::min(out_min, i);
      out_max = std::max(out_max, i);
      acc += i;
    }
    out_avg = acc / static_cast<double>(kNumSweep);
    return true;
  };

  if (!sweep(Phase::kUp, -1.0, 0, cc.im1_min, cc.im1_avg, cc.im1_max))
    return cc;
  if (!sweep(Phase::kDn, +1.0, 1, cc.im2_min, cc.im2_avg, cc.im2_max))
    return cc;
  cc.valid = true;
  return cc;
}

CpPerformance ChargePumpProblem::simulate(const bo::Vector& x,
                                          bo::Fidelity f) const {
  std::vector<circuit::PvtCorner> corners;
  if (f == bo::Fidelity::kHigh) {
    corners = circuit::fullPvtGrid();
  } else {
    corners = {circuit::nominalCorner()};
  }

  CpPerformance perf;
  double dev1 = 0.0, dev2 = 0.0;
  for (const auto& corner : corners) {
    const CornerCurrents cc = simulateCorner(x, corner);
    if (!cc.valid) return perf;  // valid stays false
    perf.max_diff1 = std::max(perf.max_diff1, cc.im1_max - cc.im1_avg);
    perf.max_diff2 = std::max(perf.max_diff2, cc.im1_avg - cc.im1_min);
    perf.max_diff3 = std::max(perf.max_diff3, cc.im2_max - cc.im2_avg);
    perf.max_diff4 = std::max(perf.max_diff4, cc.im2_avg - cc.im2_min);
    dev1 = std::max(dev1, std::abs(cc.im1_avg - kTargetCurrentUa));
    dev2 = std::max(dev2, std::abs(cc.im2_avg - kTargetCurrentUa));
  }
  perf.deviation = dev1 + dev2;
  perf.fom = 0.3 * (perf.max_diff1 + perf.max_diff2 + perf.max_diff3 +
                    perf.max_diff4) +
             0.5 * perf.deviation;
  perf.valid = true;
  return perf;
}

bo::Evaluation ChargePumpProblem::evaluate(const bo::Vector& x,
                                           bo::Fidelity f) {
  const CpPerformance perf = simulate(x, f);
  bo::Evaluation e;
  if (!perf.valid) {
    e.objective = 1e4;
    e.constraints = {1e3, 1e3, 1e3, 1e3, 1e3};
    return e;
  }
  // eq. (15): minimize FOM s.t. the five window constraints (µA).
  e.objective = perf.fom;
  e.constraints = {perf.max_diff1 - 20.0, perf.max_diff2 - 20.0,
                   perf.max_diff3 - 5.0, perf.max_diff4 - 5.0,
                   perf.deviation - 5.0};
  return e;
}

bo::Vector ChargePumpProblem::referenceDesign() const {
  bo::Vector x(36);
  // Widths (µm → m).
  const double w_um[18] = {4,  0.5, 16, 32, 20, 20, 4,  8,  2,
                           8,  4,  4,  32, 64, 40, 40, 10, 10};
  // Lengths (µm → m): long mirrors, short switches and replica.
  const double l_um[18] = {0.4, 1.0, 0.4, 0.2, 0.1, 0.1, 0.4, 0.2, 0.4,
                           0.4, 0.4, 0.4, 0.4, 0.2, 0.1, 0.1, 0.1, 0.2};
  for (std::size_t i = 0; i < 18; ++i) {
    x[i] = w_um[i] * 1e-6;
    x[18 + i] = l_um[i] * 1e-6;
  }
  return x;
}

}  // namespace mfbo::problems
