#!/usr/bin/env python3
"""Validate mfbo health snapshots and flight-recorder dumps.

Three input kinds, any combination:

  * --health FILE     the "mfbo-health" v1 JSON document written by
                      SessionManager::healthJson() / the micro_sessions
                      --health flag. Pins the envelope, the per-session
                      SLO fields (steps, iterations, checkpoint age,
                      cost budget fraction, step-latency quantiles),
                      and the pool/eventlog sections.
  * --prom FILE       the Prometheus-style exposition written next to
                      the JSON (FILE.prom). Pins the text format: every
                      sample line parses as `name{labels} value`, every
                      family has exactly one `# TYPE` header, quantile
                      summaries carry _sum and _count.
  * --flightrec FILE  a flightrec.<pid>.jsonl black-box dump. Pins the
                      header line (format/version/counters), every
                      event line (known kind, strictly increasing seq),
                      and the mode contract: deterministic dumps carry
                      no ts_ns, wall-clock dumps stamp every event.

Gates for CI:

  * --require-kind KIND   (repeatable) at least one event of KIND must
                          be present in the flight-recorder dump.
  * --require-inflight    the dump's final events must identify what
                          the fleet was doing when it stopped: the last
                          session-labelled event names a session, and
                          an engine_transition for that session appears
                          in the window.

Exit status: 0 valid, 1 invalid, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

EVENT_KINDS = {
    "session_create",
    "session_step",
    "session_done",
    "session_destroy",
    "engine_transition",
    "fidelity_decision",
    "checkpoint_persist",
    "checkpoint_restore",
    "pool_dispatch",
    "contract_violation",
    "custom",
}

SESSION_NUMBER_FIELDS = (
    "steps",
    "iterations",
    "checkpoint_age_steps",
    "cost_spent",
    "cost_budget",
    "budget_fraction",
    "steps_per_sec",
)

LATENCY_FIELDS = ("count", "total_s", "p50_s", "p90_s", "p99_s")

POOL_FIELDS = ("workers", "regions", "pooled_regions", "chunks",
               "queue_depth")

EVENTLOG_FIELDS = ("recorded", "dropped", "skipped_in_region")

SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>\S+)$")
_ONE_LABEL = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
LABELS_RE = re.compile(rf"^{_ONE_LABEL}(?:,{_ONE_LABEL})*$")


def is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_health(doc: object) -> list[str]:
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["health document is not a JSON object"]
    if doc.get("format") != "mfbo-health":
        problems.append("health: format is not 'mfbo-health'")
    if doc.get("version") != 1:
        problems.append("health: version is not 1")
    if not is_number(doc.get("rounds")):
        problems.append("health: missing numeric 'rounds'")

    sessions = doc.get("sessions")
    if not isinstance(sessions, list):
        problems.append("health: missing 'sessions' array")
        sessions = []
    for i, session in enumerate(sessions):
        where = f"health: sessions[{i}]"
        if not isinstance(session, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("session", "algo", "status"):
            if not isinstance(session.get(key), str) or not session[key]:
                problems.append(f"{where}: missing string '{key}'")
        if session.get("status") not in ("running", "paused", "done", None):
            problems.append(f"{where}: unknown status "
                            f"'{session['status']}'")
        for key in SESSION_NUMBER_FIELDS:
            if not is_number(session.get(key)):
                problems.append(f"{where}: missing numeric '{key}'")
        latency = session.get("step_latency")
        if not isinstance(latency, dict):
            problems.append(f"{where}: missing 'step_latency' object")
        else:
            for key in LATENCY_FIELDS:
                if not is_number(latency.get(key)):
                    problems.append(
                        f"{where}: step_latency missing numeric '{key}'")
            quantiles = [latency.get(k) for k in ("p50_s", "p90_s", "p99_s")]
            if all(is_number(q) for q in quantiles) and not (
                    quantiles[0] <= quantiles[1] <= quantiles[2]):
                problems.append(f"{where}: latency quantiles not monotone")

    pool = doc.get("pool")
    if not isinstance(pool, dict):
        problems.append("health: missing 'pool' object")
    else:
        for key in POOL_FIELDS:
            if not is_number(pool.get(key)):
                problems.append(f"health: pool missing numeric '{key}'")

    journal = doc.get("eventlog")
    if not isinstance(journal, dict):
        problems.append("health: missing 'eventlog' object")
    else:
        if not isinstance(journal.get("enabled"), bool):
            problems.append("health: eventlog missing boolean 'enabled'")
        for key in EVENTLOG_FIELDS:
            if not is_number(journal.get(key)):
                problems.append(f"health: eventlog missing numeric '{key}'")
    return problems


def validate_prom(text: str) -> list[str]:
    problems: list[str] = []
    typed: dict[str, str] = {}
    sampled: set[str] = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        where = f"prom line {lineno}"
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                problems.append(f"{where}: malformed TYPE header")
                continue
            _, _, name, family_type = parts
            if family_type not in ("counter", "gauge", "summary",
                                   "histogram", "untyped"):
                problems.append(f"{where}: unknown type '{family_type}'")
            if name in typed:
                problems.append(f"{where}: duplicate TYPE for '{name}'")
            typed[name] = family_type
            continue
        if line.startswith("#"):
            continue  # HELP or comment
        match = SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"{where}: unparseable sample: {line!r}")
            continue
        name = match.group("name")
        labels = match.group("labels")
        if labels and not LABELS_RE.match(labels):
            problems.append(f"{where}: bad label set '{labels}'")
        try:
            float(match.group("value"))
        except ValueError:
            problems.append(f"{where}: non-numeric value "
                            f"{match.group('value')!r}")
        # A summary's _sum/_count samples belong to the base family.
        base = re.sub(r"_(sum|count)$", "", name)
        if name not in typed and base not in typed:
            problems.append(f"{where}: sample '{name}' has no TYPE header")
        sampled.add(base if base in typed else name)
    for name, family_type in typed.items():
        if name not in sampled:
            problems.append(f"prom: family '{name}' ({family_type}) "
                            "declared but never sampled")
    if not typed:
        problems.append("prom: no metric families found")
    return problems


def validate_flightrec(lines: list[str], require_kinds: list[str],
                       require_inflight: bool) -> list[str]:
    problems: list[str] = []
    if not lines:
        return ["flightrec: empty file"]
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as error:
        return [f"flightrec header: invalid JSON: {error}"]
    if not isinstance(header, dict):
        return ["flightrec header: not a JSON object"]
    if header.get("format") != "mfbo-flightrec":
        problems.append("flightrec: format is not 'mfbo-flightrec'")
    if header.get("version") != 1:
        problems.append("flightrec: version is not 1")
    deterministic = header.get("deterministic")
    if not isinstance(deterministic, bool):
        problems.append("flightrec: missing boolean 'deterministic'")
        deterministic = False
    for key in ("pid", "ring_capacity", "recorded", "dropped",
                "skipped_in_region", "events"):
        if not is_number(header.get(key)):
            problems.append(f"flightrec: header missing numeric '{key}'")
    if is_number(header.get("events")) and \
            header["events"] != len(lines) - 1:
        problems.append(
            f"flightrec: header claims {header['events']} events, "
            f"file has {len(lines) - 1}")

    events: list[dict] = []
    last_seq = -1
    for lineno, line in enumerate(lines[1:], start=2):
        where = f"flightrec line {lineno}"
        try:
            event = json.loads(line)
        except json.JSONDecodeError as error:
            problems.append(f"{where}: invalid JSON: {error}")
            continue
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        events.append(event)
        if not is_number(event.get("seq")):
            problems.append(f"{where}: missing numeric 'seq'")
        elif event["seq"] <= last_seq:
            problems.append(f"{where}: seq {event['seq']} not increasing")
        else:
            last_seq = event["seq"]
        kind = event.get("kind")
        if kind not in EVENT_KINDS:
            problems.append(f"{where}: unknown kind {kind!r}")
        has_ts = is_number(event.get("ts_ns"))
        if deterministic and has_ts:
            problems.append(f"{where}: deterministic dump carries ts_ns")
        if not deterministic and not has_ts:
            problems.append(f"{where}: wall-clock dump missing ts_ns")

    kinds_present = {e.get("kind") for e in events}
    for kind in require_kinds:
        if kind not in kinds_present:
            problems.append(f"flightrec: required kind '{kind}' absent")

    if require_inflight:
        labelled = [e for e in events if isinstance(e.get("session"), str)]
        if not labelled:
            problems.append(
                "flightrec: --require-inflight but no session-labelled "
                "events in the window")
        else:
            last_session = labelled[-1]["session"]
            transitions = [
                e for e in labelled
                if e.get("kind") == "engine_transition"
                and e["session"] == last_session
            ]
            if not transitions:
                problems.append(
                    f"flightrec: no engine_transition for in-flight "
                    f"session '{last_session}' in the window")
    return problems


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description="Validate mfbo health snapshots and flight-recorder "
                    "dumps.")
    parser.add_argument("--health", type=Path,
                        help="mfbo-health v1 JSON document")
    parser.add_argument("--prom", type=Path,
                        help="Prometheus-style exposition file")
    parser.add_argument("--flightrec", type=Path,
                        help="flightrec.<pid>.jsonl black-box dump")
    parser.add_argument("--require-kind", action="append", default=[],
                        metavar="KIND",
                        help="require at least one flightrec event of KIND "
                             "(repeatable)")
    parser.add_argument("--require-inflight", action="store_true",
                        help="require the dump's final events to identify "
                             "the in-flight session and engine state")
    args = parser.parse_args(argv)

    if not (args.health or args.prom or args.flightrec):
        parser.error("nothing to validate: pass --health, --prom, and/or "
                     "--flightrec")
    if (args.require_kind or args.require_inflight) and not args.flightrec:
        parser.error("--require-kind/--require-inflight need --flightrec")

    problems: list[str] = []
    try:
        if args.health:
            problems += validate_health(
                json.loads(args.health.read_text()))
        if args.prom:
            problems += validate_prom(args.prom.read_text())
        if args.flightrec:
            lines = args.flightrec.read_text().splitlines()
            problems += validate_flightrec(lines, args.require_kind,
                                           args.require_inflight)
    except OSError as error:
        print(f"health_validate: {error}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as error:
        print(f"health_validate: invalid JSON: {error}", file=sys.stderr)
        return 2

    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"health_validate: {len(problems)} problem(s)",
              file=sys.stderr)
        return 1
    print("health_validate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
