#!/usr/bin/env python3
"""Validate a Chrome/Perfetto trace-event JSON file (`--timeline` output).

The bench `--timeline FILE` flag serializes every span open/close as a
trace-event document: {"traceEvents": [...]} where each event carries
name / ph / pid / tid, B/E events additionally carry a microsecond "ts".
This validator pins the schema both viewers (chrome://tracing and
ui.perfetto.dev) require, so CI can assert a bench-produced timeline
actually loads before uploading it as an artifact:

  * the document is a JSON object with a non-empty "traceEvents" list;
  * every event has a string "name", a "ph" in {B, E, M, X, i, C}, and
    integer-valued "pid"/"tid";
  * B/E events carry a finite, non-negative, numeric "ts";
  * per (pid, tid), timestamps are non-decreasing and B/E events form a
    balanced stack with matching names (Perfetto rejects mismatches);
  * with --require-span NAME (repeatable), at least one B event with
    that exact name exists — CI uses it to pin the phase names the
    timeline is expected to show.

Exit status: 0 valid, 1 invalid, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

ALLOWED_PHASES = {"B", "E", "M", "X", "i", "C"}


def fail(problems: list[str], message: str) -> None:
    problems.append(message)


def validate(doc: object, require_spans: list[str]) -> list[str]:
    """Return the list of schema violations (empty = valid)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    if not events:
        return ["'traceEvents' is empty"]

    stacks: dict[tuple, list[str]] = {}
    last_ts: dict[tuple, float] = {}
    begin_names: set[str] = set()
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            fail(problems, f"{where}: not an object")
            continue
        name = event.get("name")
        if not isinstance(name, str) or not name:
            fail(problems, f"{where}: missing or empty 'name'")
            name = "?"
        phase = event.get("ph")
        if phase not in ALLOWED_PHASES:
            fail(problems, f"{where}: bad phase {phase!r}")
            continue
        for key in ("pid", "tid"):
            value = event.get(key)
            if not isinstance(value, (int, float)) or isinstance(value, bool) \
                    or float(value) != int(value):
                fail(problems, f"{where}: '{key}' is not an integer")
        if phase not in ("B", "E"):
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) \
                or not math.isfinite(float(ts)) or float(ts) < 0:
            fail(problems, f"{where}: bad 'ts' {ts!r}")
            continue
        thread = (event.get("pid"), event.get("tid"))
        if thread in last_ts and float(ts) < last_ts[thread]:
            fail(problems,
                 f"{where}: timestamp went backwards on tid {thread[1]}")
        last_ts[thread] = float(ts)
        stack = stacks.setdefault(thread, [])
        if phase == "B":
            stack.append(name)
            begin_names.add(name)
        else:
            if not stack:
                fail(problems, f"{where}: 'E' without a matching 'B'")
            elif stack[-1] != name:
                fail(problems,
                     f"{where}: 'E' for {name!r} but {stack[-1]!r} is open")
                stack.pop()
            else:
                stack.pop()
    for thread, stack in stacks.items():
        if stack:
            fail(problems,
                 f"tid {thread[1]}: {len(stack)} unclosed 'B' event(s): "
                 f"{stack[-1]!r} still open")
    for wanted in require_spans:
        if wanted not in begin_names:
            fail(problems, f"required span {wanted!r} never began")
    return problems


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description="Validate a --timeline trace-event JSON file.")
    parser.add_argument("trace", type=Path, help="trace-event JSON file")
    parser.add_argument("--require-span", action="append", default=[],
                        metavar="NAME",
                        help="require a B event with this exact name "
                             "(repeatable)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the OK summary line")
    args = parser.parse_args(argv)

    try:
        text = args.trace.read_text(encoding="utf-8")
    except OSError as err:
        print(f"error: cannot read {args.trace}: {err}", file=sys.stderr)
        return 2
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as err:
        print(f"error: {args.trace}: not valid JSON: {err}", file=sys.stderr)
        return 1

    problems = validate(doc, args.require_span)
    if problems:
        for problem in problems[:50]:
            print(f"{args.trace}: {problem}", file=sys.stderr)
        if len(problems) > 50:
            print(f"... and {len(problems) - 50} more", file=sys.stderr)
        return 1
    if not args.quiet:
        events = doc["traceEvents"]
        span_events = sum(1 for e in events if e.get("ph") in ("B", "E"))
        print(f"{args.trace}: OK ({len(events)} events, "
              f"{span_events // 2} spans)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
