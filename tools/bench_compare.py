#!/usr/bin/env python3
"""Compare two bench artifacts; exit 1 on regressions or result drift.

Supports both artifact families the repo produces:

  * mfbo `--out` artifacts (tables, ablations, micro_parallel,
    micro_incremental): the two JSON documents are walked in parallel.
    Timing-valued leaves — keys ending in `_s` / `_seconds`, `speedup`,
    and `wall_times` entries — are compared with a relative tolerance,
    direction-aware: only a slowdown (or a speedup drop) beyond the
    tolerance fails; getting faster never does. Every other leaf
    (objectives, counters, span counts, success flags, ...) must be
    exactly equal — these fields are deterministic by construction, so
    any drift is a correctness regression, not noise. The per-span
    memory-attribution counters (`alloc_count` / `alloc_bytes`) are
    deliberately in the exact class: they are thread-merged and
    byte-identical at any thread count, so a change means the workload's
    allocation behaviour changed. Machine-state fields (`peak_rss_bytes`)
    and timeline-recorder telemetry (`timeline.*`) are ignored by
    default — they vary run to run without meaning anything.

  * google-benchmark JSON (micro_gp, micro_circuit with
    `--benchmark_format=json`): benchmarks are matched by name and their
    `cpu_time` compared with the same direction-aware tolerance.
    `--normalize-by NAME` divides every time by the named benchmark's
    time from the same file first, cancelling absolute machine speed so
    committed baselines stay meaningful across hosts.

Options:
  --rel-tol FRAC   allowed relative timing regression (default 0.30)
  --min-time SEC   ignore timing leaves where both sides are below this
                   (default 1e-3; micro-timings below it are pure noise)
  --skip-timing    ignore all timing-classified leaves entirely
  --ignore GLOB    ignore paths matching the glob (repeatable)
  --assert EXPR    additionally require "path OP value" on the current
                   artifact, e.g. --assert "identical == true"
                   (repeatable; OP in == != <= >= < >)

Exit status: 0 clean, 1 regression/drift/assert failure, 2 usage error.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import re
import sys
from pathlib import Path

TIMING_KEY_RE = re.compile(r"(_s|_seconds)$")
# Higher is better for these; regression direction flips.
HIGHER_IS_BETTER = {"speedup"}
# Machine-state and recorder-telemetry paths compared never, not exactly:
# peak RSS is whatever the OS measured, timeline counters only exist when
# a trace was recorded alongside the run, health snapshots and latency-
# histogram quantiles are wall-clock SLO data, and the flight recorder's
# drop count depends on how much the wall-clock mode journalled.
DEFAULT_IGNORE = (
    "*peak_rss*",
    "*timeline.*",
    "health.*",
    "*.p50_s",
    "*.p90_s",
    "*.p99_s",
    "*eventlog.dropped*",
)


def is_timing_path(path: list[str]) -> bool:
    if not path:
        return False
    leaf = path[-1]
    if TIMING_KEY_RE.search(leaf) or leaf in HIGHER_IS_BETTER:
        return True
    # Array elements under a timing-named list: wall_times[3] etc.
    return any(p == "wall_times" for p in path)


def dotted(path: list[str]) -> str:
    return ".".join(path) if path else "<root>"


class Comparison:
    def __init__(self, args: argparse.Namespace):
        self.args = args
        self.problems: list[str] = []
        self.timing_checked = 0
        self.exact_checked = 0

    def ignored(self, path: list[str]) -> bool:
        name = dotted(path)
        patterns = list(DEFAULT_IGNORE) + self.args.ignore
        return any(fnmatch.fnmatch(name, pattern) for pattern in patterns)

    def fail(self, path: list[str], message: str) -> None:
        self.problems.append(f"{dotted(path)}: {message}")

    def compare_timing(self, path: list[str], base: float,
                       cur: float) -> None:
        if self.args.skip_timing:
            return
        self.timing_checked += 1
        if abs(base) < self.args.min_time and abs(cur) < self.args.min_time:
            return
        if base <= 0.0:
            return  # zeroed (--no-timing) or degenerate baseline
        ratio = cur / base
        tol = self.args.rel_tol
        if path and path[-1] in HIGHER_IS_BETTER:
            if ratio < 1.0 - tol:
                self.fail(path, f"dropped {base:.6g} -> {cur:.6g} "
                                f"({(1.0 - ratio) * 100.0:.1f}% worse, "
                                f"tolerance {tol * 100.0:.0f}%)")
        elif ratio > 1.0 + tol:
            self.fail(path, f"slowed {base:.6g}s -> {cur:.6g}s "
                            f"(+{(ratio - 1.0) * 100.0:.1f}%, "
                            f"tolerance {tol * 100.0:.0f}%)")

    def compare(self, path: list[str], base, cur) -> None:
        if self.ignored(path):
            return
        if type(base) is not type(cur) and not (
                isinstance(base, (int, float)) and
                isinstance(cur, (int, float)) and
                not isinstance(base, bool) and not isinstance(cur, bool)):
            self.fail(path, f"type changed: {type(base).__name__} -> "
                            f"{type(cur).__name__}")
            return
        if isinstance(base, dict):
            for key in base.keys() | cur.keys():
                if key not in cur:
                    if not self.ignored(path + [key]):
                        self.fail(path + [key], "missing from current")
                elif key not in base:
                    if not self.ignored(path + [key]):
                        self.fail(path + [key], "missing from baseline")
                else:
                    self.compare(path + [key], base[key], cur[key])
        elif isinstance(base, list):
            if len(base) != len(cur):
                self.fail(path, f"length changed: {len(base)} -> "
                                f"{len(cur)}")
                return
            for index, (b, c) in enumerate(zip(base, cur)):
                self.compare(path + [str(index)], b, c)
        elif isinstance(base, (int, float)) and not isinstance(base, bool) \
                and is_timing_path(path):
            self.compare_timing(path, float(base), float(cur))
        else:
            self.exact_checked += 1
            if base != cur:
                self.fail(path, f"value changed: {base!r} -> {cur!r}")


def compare_google_benchmark(cmp: Comparison, base: dict,
                             cur: dict) -> None:
    def index(doc: dict) -> dict:
        table = {}
        for bench in doc.get("benchmarks", []):
            # Repetition aggregates carry the same name; keep the mean.
            if bench.get("run_type") == "aggregate" and \
                    bench.get("aggregate_name") != "mean":
                continue
            table[bench["name"]] = bench
        return table

    base_by_name = index(base)
    cur_by_name = index(cur)
    normalize = cmp.args.normalize_by

    def unit_time(table: dict, source: str) -> float:
        if normalize is None:
            return 1.0
        if normalize not in table:
            raise SystemExit(
                f"bench_compare: --normalize-by '{normalize}' not found "
                f"in {source}")
        return float(table[normalize]["cpu_time"]) or 1.0

    base_unit = unit_time(base_by_name, "baseline")
    cur_unit = unit_time(cur_by_name, "current")

    for name in sorted(base_by_name.keys() | cur_by_name.keys()):
        path = ["benchmarks", name]
        if cmp.ignored(path) or name == normalize:
            continue
        if name not in cur_by_name:
            cmp.fail(path, "missing from current")
            continue
        if name not in base_by_name:
            cmp.fail(path, "missing from baseline")
            continue
        base_time = float(base_by_name[name]["cpu_time"]) / base_unit
        cur_time = float(cur_by_name[name]["cpu_time"]) / cur_unit
        cmp.compare_timing(path + ["cpu_time"], base_time, cur_time)


ASSERT_RE = re.compile(r"^\s*([\w.\[\]]+)\s*(==|!=|<=|>=|<|>)\s*(.+?)\s*$")


def lookup(doc, path: str):
    node = doc
    for part in path.replace("]", "").replace("[", ".").split("."):
        if isinstance(node, list):
            node = node[int(part)]
        elif isinstance(node, dict) and part in node:
            node = node[part]
        else:
            raise KeyError(path)
    return node


def run_asserts(cmp: Comparison, current: dict) -> None:
    ops = {"==": lambda a, b: a == b, "!=": lambda a, b: a != b,
           "<=": lambda a, b: a <= b, ">=": lambda a, b: a >= b,
           "<": lambda a, b: a < b, ">": lambda a, b: a > b}
    for expr in cmp.args.asserts:
        match = ASSERT_RE.match(expr)
        if match is None:
            raise SystemExit(f"bench_compare: bad --assert '{expr}' "
                             f"(want 'path OP value')")
        path, op, raw = match.groups()
        try:
            want = json.loads(raw)
        except json.JSONDecodeError:
            want = raw  # bare strings allowed
        try:
            got = lookup(current, path)
        except (KeyError, IndexError, ValueError):
            cmp.problems.append(f"assert '{expr}': path '{path}' not in "
                                f"current artifact")
            continue
        if not ops[op](got, want):
            cmp.problems.append(f"assert '{expr}' failed: "
                                f"current value is {got!r}")


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", type=Path)
    parser.add_argument("current", type=Path)
    parser.add_argument("--rel-tol", type=float, default=0.30)
    parser.add_argument("--min-time", type=float, default=1e-3)
    parser.add_argument("--skip-timing", action="store_true")
    parser.add_argument("--ignore", action="append", default=[],
                        metavar="GLOB")
    parser.add_argument("--assert", dest="asserts", action="append",
                        default=[], metavar="EXPR")
    parser.add_argument("--normalize-by", metavar="NAME",
                        help="google-benchmark mode: reference benchmark "
                             "whose time defines one machine-speed unit")
    args = parser.parse_args()

    try:
        base = json.loads(args.baseline.read_text(encoding="utf-8"))
        cur = json.loads(args.current.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench_compare: {err}", file=sys.stderr)
        return 2

    cmp = Comparison(args)
    if "benchmarks" in base and "benchmarks" in cur:
        compare_google_benchmark(cmp, base, cur)
    else:
        cmp.compare([], base, cur)
    run_asserts(cmp, cur)

    for problem in cmp.problems:
        print(f"bench_compare: {problem}", file=sys.stderr)
    verdict = "FAILED" if cmp.problems else "OK"
    print(f"bench_compare: {verdict} — {cmp.exact_checked} exact, "
          f"{cmp.timing_checked} timing leaves compared, "
          f"{len(cmp.problems)} problem(s) "
          f"({args.baseline} vs {args.current})")
    return 1 if cmp.problems else 0


if __name__ == "__main__":
    sys.exit(main())
