#!/usr/bin/env python3
"""Render a human-readable report from mfbo observability output.

Inputs (either or both):

  * a JSONL event trace written by a bench's `--trace FILE` flag
    (run_start / iteration / run_end events), and/or
  * a JSON artifact written by `--out FILE` with `--spans` enabled
    (per-run results plus a hierarchical span tree under metrics.spans).

The report is GitHub-flavored Markdown (readable as plain text in a
terminal) with, per run: a summary line, an ASCII convergence curve
(best objective vs. cumulative cost), and the fidelity-decision timeline
of the multi-fidelity loop — which fidelity was simulated each iteration
and whether the model-uncertainty test (max normalized variance vs. the
gamma threshold) forced a low-fidelity evaluation. From the artifact it
adds a flame-style span table with self/total time attribution and the
per-span self-allocation counters (alloc count / bytes) per phase, and
flags top-level spans whose time decomposes into phases but whose
allocations all sit unattributed on the top node.

`--assert-coverage PCT` turns the report into a gate: exit 1 unless, for
every top-level algorithm span, the self-times of the nodes in its
subtree sum to at least PCT percent of the algorithm's total — i.e. the
instrumentation actually attributes (not merely brackets) the runtime.

Examples:
  build/bench/table1_power_amplifier --quick --spans \\
      --trace t1.jsonl --out t1.json
  tools/run_report.py --trace t1.jsonl --artifact t1.json
  tools/run_report.py --artifact t1.json --assert-coverage 95
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_trace(path: Path) -> list[dict]:
    events = []
    with path.open(encoding="utf-8") as stream:
        for number, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as err:
                raise SystemExit(f"{path}:{number}: bad trace line: {err}")
    return events


def group_runs(events: list[dict]) -> list[dict]:
    """Split the flat event stream into runs: start, iterations, end."""
    runs = []
    current = None
    for event in events:
        kind = event.get("type")
        if kind == "run_start":
            current = {"start": event, "iterations": [], "end": None}
            runs.append(current)
        elif current is None:
            continue  # tolerate truncated traces
        elif kind == "iteration":
            current["iterations"].append(event)
        elif kind == "run_end":
            current["end"] = event
            current = None
    return runs


def fmt(value, digits: int = 4) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{digits}g}"
    return str(value)


def ascii_chart(xs: list[float], ys: list[float], width: int,
                height: int = 10) -> list[str]:
    """Plot y(x) as an ASCII chart; x must be non-decreasing."""
    if not xs:
        return ["(no data)"]
    x_lo, x_hi = xs[0], xs[-1]
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = min(width - 1, int((x - x_lo) / x_span * (width - 1)))
        row = min(height - 1, int((y_hi - y) / y_span * (height - 1)))
        grid[row][col] = "*"
    # Carry the curve forward between samples so plateaus stay visible.
    last_row = None
    for col in range(width):
        rows = [r for r in range(height) if grid[r][col] == "*"]
        if rows:
            last_row = rows[-1]
        elif last_row is not None:
            grid[last_row][col] = "."
    lines = []
    for r, row in enumerate(grid):
        label = y_hi - (y_hi - y_lo) * r / (height - 1)
        lines.append(f"{label:>12.5g} |{''.join(row)}")
    lines.append(" " * 13 + "+" + "-" * width)
    lines.append(f"{'':13}{x_lo:<12.5g}{'cost':^{max(0, width - 24)}}"
                 f"{x_hi:>12.5g}")
    return lines


def convergence_section(run: dict, width: int) -> list[str]:
    iters = run["iterations"]
    pairs = [(e["cost"], e["best_objective"]) for e in iters
             if "cost" in e and "best_objective" in e
             and e["best_objective"] is not None]
    if not pairs:
        return []
    lines = ["", "Convergence (best objective vs. equivalent "
             "high-fidelity simulations):", "", "```"]
    lines += ascii_chart([p[0] for p in pairs], [p[1] for p in pairs], width)
    lines += ["```"]
    return lines


def fidelity_section(run: dict, width: int) -> list[str]:
    iters = run["iterations"]
    fidelities = [e.get("fidelity") for e in iters]
    if "low" not in fidelities:
        return []  # single-fidelity algorithm: no decision to show
    marks = []
    uncertain = []
    threshold = None
    for event in iters:
        marks.append("H" if event.get("fidelity") == "high" else
                     "v" if event.get("downgraded") else "l")
        threshold = event.get("threshold", threshold)
        over = (event.get("max_norm_var") is not None and
                threshold is not None and
                event["max_norm_var"] > threshold)
        uncertain.append("*" if over else " ")
    n_high = marks.count("H")
    n_low = len(marks) - n_high
    n_down = marks.count("v")
    lines = ["", f"Fidelity decisions (gamma threshold "
             f"{fmt(threshold)}): {n_high} high, {n_low} low "
             f"({n_down} budget downgrades)", "", "```"]
    for offset in range(0, len(marks), width):
        chunk = slice(offset, offset + width)
        lines.append("fidelity    " + "".join(marks[chunk]))
        lines.append("uncertain   " + "".join(uncertain[chunk]))
    lines += ["```", "",
              "`H` high-fidelity simulation, `l` low-fidelity, `v` "
              "low-fidelity forced by the remaining budget; `*` marks "
              "iterations where max normalized variance exceeded the "
              "threshold (model too uncertain for a high-fidelity step)."]
    return lines


def run_section(run: dict, width: int) -> list[str]:
    start = run["start"]
    end = run["end"] or {}
    title = (f"## {start.get('algo', '?')} on {start.get('problem', '?')} "
             f"(seed {start.get('seed', '?')})")
    lines = [title, ""]
    summary = [
        ("iterations", len(run["iterations"])),
        ("best objective", end.get("best_objective")),
        ("feasible found", end.get("feasible_found")),
        ("low / high sims", f"{end.get('n_low', '?')} / "
                            f"{end.get('n_high', '?')}"),
        ("equivalent high sims", end.get("equivalent_high_sims")),
    ]
    lines += [f"- {name}: {fmt(value)}" for name, value in summary
              if value is not None]
    lines += convergence_section(run, width)
    lines += fidelity_section(run, width)
    return lines


# --- span tree ----------------------------------------------------------


def fmt_alloc_bytes(value: float) -> str:
    if value <= 0:
        return "-"
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}"
        value /= 1024.0
    return "-"


def walk_spans(node: dict, name: str, depth: int, rows: list) -> None:
    counters = node.get("counters", {})
    rows.append((depth, name, node.get("count", 0),
                 node.get("total_s"), node.get("self_s"),
                 counters.get("alloc_count", 0),
                 counters.get("alloc_bytes", 0)))
    for child_name, child in node.get("children", {}).items():
        walk_spans(child, child_name, depth + 1, rows)


def span_table(tree: dict) -> list[str]:
    rows = []
    for name, node in tree.get("children", {}).items():
        walk_spans(node, name, 0, rows)
    if not rows:
        return []
    timed = any(total is not None for _, _, _, total, _, _, _ in rows)
    lines = ["", "## Span profile", ""]
    if timed:
        grand_total = sum(total for depth, _, _, total, _, _, _ in rows
                          if depth == 0)
        lines.append("| span | count | total s | self s | self % "
                     "| self allocs | self alloc bytes |")
        lines.append("|---|---:|---:|---:|---:|---:|---:|")
        for depth, name, count, total, self_s, allocs, alloc_b in rows:
            share = 100.0 * self_s / grand_total if grand_total else 0.0
            indent = "&nbsp;&nbsp;" * depth
            lines.append(f"| {indent}{name} | {count} | {total:.4f} "
                         f"| {self_s:.4f} | {share:.1f} | {allocs:.0f} "
                         f"| {fmt_alloc_bytes(alloc_b)} |")
    else:
        lines.append("| span | count | self allocs | self alloc bytes |")
        lines.append("|---|---:|---:|---:|")
        for depth, name, count, _, _, allocs, alloc_b in rows:
            indent = "&nbsp;&nbsp;" * depth
            lines.append(f"| {indent}{name} | {count} | {allocs:.0f} "
                         f"| {fmt_alloc_bytes(alloc_b)} |")
    return lines


def subtree_self_sum(node: dict) -> float:
    acc = node.get("self_s", 0.0)
    for child in node.get("children", {}).values():
        acc += subtree_self_sum(child)
    return acc


def coverage_rows(tree: dict) -> list[tuple[str, float]]:
    """Per top-level span: attributed self-time share of its total."""
    rows = []
    for name, node in tree.get("children", {}).items():
        total = node.get("total_s")
        if total is None or total <= 0.0:
            continue
        rows.append((name, 100.0 * subtree_self_sum(node) / total))
    return rows


def subtree_alloc_bytes(node: dict) -> float:
    acc = float(node.get("counters", {}).get("alloc_bytes", 0))
    for child in node.get("children", {}).values():
        acc += subtree_alloc_bytes(child)
    return acc


def unattributed_alloc_spans(tree: dict) -> list[str]:
    """Top-level spans whose time decomposes into phases but whose memory
    does not: the subtree's allocations sit entirely on the top node (or
    are missing outright), so the alloc columns say nothing about *which*
    phase allocates. Usually means the phase spans are missing around the
    allocating code."""
    flagged = []
    for name, node in tree.get("children", {}).items():
        if not node.get("children"):
            continue  # no phase breakdown at all; coverage says so already
        own = float(node.get("counters", {}).get("alloc_bytes", 0))
        total = subtree_alloc_bytes(node)
        if total == 0 or total == own:
            flagged.append(name)
    return flagged


def coverage_section(tree: dict) -> list[str]:
    rows = coverage_rows(tree)
    if not rows:
        return []
    lines = ["", "### Attribution coverage", "",
             "Share of each algorithm's wall time attributed to a "
             "specific phase (self-times of the subtree / total):", ""]
    lines += [f"- {name}: {share:.2f}%" for name, share in rows]
    flagged = unattributed_alloc_spans(tree)
    if flagged:
        lines += ["", "**Unattributed allocations:** " +
                  ", ".join(f"`{name}`" for name in flagged) +
                  " — self-time coverage exists but every allocated byte "
                  "sits on the top-level span (or none were recorded), so "
                  "the memory columns cannot point at a phase. Add spans "
                  "around the allocating code paths."]
    return lines


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--trace", type=Path,
                        help="JSONL trace from a bench --trace flag")
    parser.add_argument("--artifact", type=Path,
                        help="JSON artifact from a bench --out flag")
    parser.add_argument("--out", type=Path,
                        help="write the report here instead of stdout")
    parser.add_argument("--algo",
                        help="only report runs of this algorithm")
    parser.add_argument("--width", type=int, default=64,
                        help="chart/timeline width in columns (default 64)")
    parser.add_argument("--assert-coverage", type=float, metavar="PCT",
                        help="exit 1 unless every algorithm span attributes "
                             "at least PCT%% of its total to phases")
    args = parser.parse_args()
    if args.trace is None and args.artifact is None:
        parser.error("need --trace and/or --artifact")

    # Missing or empty inputs are a clean no-op, not a traceback: report
    # steps run in CI before any bench may have produced output.
    for path in (args.trace, args.artifact):
        if path is None:
            continue
        if not path.exists() or path.stat().st_size == 0:
            print(f"no runs recorded: {path} is "
                  f"{'missing' if not path.exists() else 'empty'}")
            return 0

    lines = ["# mfbo run report", ""]
    sources = [str(p) for p in (args.trace, args.artifact) if p]
    lines.append("Sources: " + ", ".join(f"`{s}`" for s in sources))

    if args.trace is not None:
        runs = group_runs(load_trace(args.trace))
        if args.algo:
            runs = [r for r in runs
                    if r["start"].get("algo") == args.algo]
        if not runs:
            lines += ["", "_No matching runs in the trace._"]
        for run in runs:
            lines.append("")
            lines += run_section(run, args.width)

    tree = None
    if args.artifact is not None:
        doc = json.loads(args.artifact.read_text(encoding="utf-8"))
        tree = doc.get("metrics", {}).get("spans")
        if tree is None:
            lines += ["", "_Artifact has no span tree (run the bench "
                      "with `--spans`)._"]
        else:
            lines += span_table(tree)
            lines += coverage_section(tree)

    report = "\n".join(lines) + "\n"
    if args.out is not None:
        args.out.write_text(report, encoding="utf-8")
    else:
        sys.stdout.write(report)

    if args.assert_coverage is not None:
        if tree is None:
            print("run_report: --assert-coverage needs a --spans artifact",
                  file=sys.stderr)
            return 2
        rows = coverage_rows(tree)
        if not rows:
            print("run_report: no timed spans to assert coverage on",
                  file=sys.stderr)
            return 2
        failed = [(n, s) for n, s in rows if s < args.assert_coverage]
        for name, share in failed:
            print(f"run_report: span '{name}' attributes only "
                  f"{share:.2f}% of its total "
                  f"(< {args.assert_coverage:g}%)", file=sys.stderr)
        return 1 if failed else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
