#!/usr/bin/env python3
"""Cross-run history registry for mfbo bench artifacts.

A single `--out` artifact answers "what did this run do"; the registry
answers "how does it compare to the last fifty". Every appended artifact
becomes one JSONL record in runs/index.jsonl, keyed by
(bench, mode, seed, git-sha) — re-appending the same key replaces the
old record, so re-running a bench at the same commit never duplicates
history. The report renders the registry as Markdown: per-record result
and cost columns, per-phase self-time and alloc-bytes from the span
tree, and ASCII trend sparklines of the headline metrics across
commits — the cross-run view that cost-aware fidelity scheduling work
(and ROADMAP's surrogate-cache warm-starting) builds on.

Commands:
  append ARTIFACT [--index FILE] [--git-sha SHA] [--label TEXT]
      Summarize one --out artifact and upsert it into the registry.
      The git sha defaults to `git rev-parse --short HEAD`.
  report [--index FILE] [--bench NAME] [--last N]
      Render the registry as GitHub-flavored Markdown (CI appends this
      to the job summary).

Exit status: 0 ok, 2 usage/IO/malformed-artifact error.
"""

from __future__ import annotations

import argparse
import json
import statistics
import subprocess
import sys
from pathlib import Path

SPARK_CHARS = " .:-=+*#"


def die(message: str) -> "SystemExit":
    print(f"error: {message}", file=sys.stderr)
    return SystemExit(2)


def load_json(path: Path) -> dict:
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except OSError as err:
        raise die(f"cannot read {path}: {err}")
    except json.JSONDecodeError as err:
        raise die(f"{path}: not valid JSON: {err}")
    if not isinstance(doc, dict):
        raise die(f"{path}: artifact is not a JSON object")
    return doc


def detect_git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True)
        return out.stdout.strip() or "unknown"
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def subtree_sum(node: dict, counter: str) -> float:
    """Sum a counter over a span node and its whole subtree."""
    total = float(node.get("counters", {}).get(counter, 0))
    for child in node.get("children", {}).values():
        total += subtree_sum(child, counter)
    return total


def subtree_self_seconds(node: dict) -> float | None:
    """Sum self_s over the subtree; None when the tree is timing-free."""
    if "self_s" not in node:
        return None
    total = float(node["self_s"])
    for child in node.get("children", {}).values():
        part = subtree_self_seconds(child)
        total += part if part is not None else 0.0
    return total


def summarize_phases(spans: dict) -> dict:
    """Top-level spans and their direct children, with subtree self-time
    and allocation totals — the per-phase rows the report renders."""
    phases: dict[str, dict] = {}

    def entry(node: dict) -> dict:
        return {
            "count": float(node.get("count", 0)),
            "total_s": node.get("total_s"),
            "self_s": subtree_self_seconds(node),
            "alloc_count": subtree_sum(node, "alloc_count"),
            "alloc_bytes": subtree_sum(node, "alloc_bytes"),
        }

    for name, node in spans.get("children", {}).items():
        phases[name] = entry(node)
        for child_name, child in node.get("children", {}).items():
            phases[f"{name}/{child_name}"] = entry(child)
    return phases


def summarize_artifact(doc: dict, path: Path) -> dict:
    for field in ("bench", "mode", "seed"):
        if field not in doc:
            raise die(f"{path}: artifact has no '{field}' field")
    algorithms = {}
    for algo in doc.get("algorithms", []):
        objectives = [float(v) for v in algo.get("objectives", [])]
        reach = [float(v) for v in algo.get("reach_costs", [])]
        walls = [float(v) for v in algo.get("wall_times", [])]
        total = int(algo.get("total_runs", len(objectives)) or 0)
        algorithms[algo.get("name", "?")] = {
            "median_objective":
                statistics.median(objectives) if objectives else None,
            "avg_sims": statistics.fmean(reach) if reach else None,
            "mean_wall_s":
                statistics.fmean(walls) if any(walls) else None,
            "success_rate":
                (int(algo.get("successes", 0)) / total) if total else None,
        }
    metrics = doc.get("metrics", {})
    spans = metrics.get("spans", {})
    record = {
        "key": {
            "bench": doc["bench"],
            "mode": doc["mode"],
            "seed": doc["seed"],
            "git_sha": None,  # filled by append()
        },
        "runs": doc.get("runs"),
        "algorithms": algorithms,
        "phases": summarize_phases(spans),
        "total_alloc_bytes": subtree_sum(spans, "alloc_bytes") or None,
        "peak_rss_bytes": metrics.get("peak_rss_bytes"),
    }
    return record


def load_index(path: Path) -> list[dict]:
    if not path.exists():
        return []
    records = []
    for number, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as err:
            raise die(f"{path}:{number}: bad registry line: {err}")
    return records


def write_index(path: Path, records: list[dict]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    text = "".join(json.dumps(r, sort_keys=True) + "\n" for r in records)
    path.write_text(text, encoding="utf-8")


def append_command(args: argparse.Namespace) -> int:
    doc = load_json(args.artifact)
    record = summarize_artifact(doc, args.artifact)
    record["key"]["git_sha"] = args.git_sha or detect_git_sha()
    if args.label:
        record["label"] = args.label
    records = load_index(args.index)
    before = len(records)
    records = [r for r in records if r.get("key") != record["key"]]
    replaced = before - len(records)
    records.append(record)
    write_index(args.index, records)
    action = "replaced" if replaced else "appended"
    key = record["key"]
    print(f"{action} {key['bench']}/{key['mode']}/seed={key['seed']}"
          f"/{key['git_sha']} in {args.index} ({len(records)} records)")
    return 0


# --- report rendering ----------------------------------------------------


def sparkline(values: list[float | None]) -> str:
    present = [v for v in values if v is not None]
    if not present:
        return ""
    lo, hi = min(present), max(present)
    span = hi - lo
    chars = []
    for value in values:
        if value is None:
            chars.append("?")
        elif span <= 0:
            chars.append(SPARK_CHARS[-1])
        else:
            index = int((value - lo) / span * (len(SPARK_CHARS) - 1))
            chars.append(SPARK_CHARS[index])
    return "".join(chars)


def fmt_num(value: float | None, digits: int = 4) -> str:
    if value is None:
        return "-"
    return f"{value:.{digits}g}"


def fmt_bytes(value: float | None) -> str:
    if value is None or value <= 0:
        return "-"
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}"
        value /= 1024.0
    return "-"


def primary_algorithm(records: list[dict]) -> str | None:
    names: list[str] = []
    for record in records:
        names.extend(record.get("algorithms", {}).keys())
    if not names:
        return None
    return "Ours" if "Ours" in names else names[0]


def report_group(lines: list[str], group_key: tuple, records: list[dict],
                 last: int) -> None:
    bench, mode, seed = group_key
    shown = records[-last:] if last > 0 else records
    algo = primary_algorithm(shown)
    lines.append(f"## {bench} · {mode} · seed {seed}")
    lines.append("")
    header = "| git sha | runs "
    if algo:
        header += f"| {algo} median obj | {algo} avg sims "
    header += "| top phase (self) | alloc | peak RSS |"
    lines.append(header)
    lines.append("|---" * header.count("|") + "|"
                 if not header.endswith("|") else
                 "|" + "---|" * (header.count("|") - 1))
    for record in shown:
        key = record.get("key", {})
        row = [key.get("git_sha", "?"), str(record.get("runs", "-"))]
        if algo:
            stats = record.get("algorithms", {}).get(algo, {})
            row.append(fmt_num(stats.get("median_objective")))
            row.append(fmt_num(stats.get("avg_sims"), 3))
        top_phase = "-"
        phases = record.get("phases", {})
        timed = [(name, p["self_s"]) for name, p in phases.items()
                 if "/" in name and p.get("self_s") is not None]
        if timed:
            name, self_s = max(timed, key=lambda item: item[1])
            top_phase = f"{name} ({self_s:.2f}s)"
        row.append(top_phase)
        row.append(fmt_bytes(record.get("total_alloc_bytes")))
        row.append(fmt_bytes(record.get("peak_rss_bytes")))
        lines.append("| " + " | ".join(row) + " |")
    lines.append("")
    if algo and len(shown) > 1:
        objective_trend = [record.get("algorithms", {}).get(algo, {})
                           .get("median_objective") for record in shown]
        sims_trend = [record.get("algorithms", {}).get(algo, {})
                      .get("avg_sims") for record in shown]
        alloc_trend = [record.get("total_alloc_bytes") for record in shown]
        lines.append(f"Trends across {len(shown)} records "
                     f"(oldest → newest, {algo}):")
        lines.append("")
        lines.append(f"    median objective  [{sparkline(objective_trend)}]  "
                     f"latest {fmt_num(objective_trend[-1])}")
        lines.append(f"    avg sims to best  [{sparkline(sims_trend)}]  "
                     f"latest {fmt_num(sims_trend[-1], 3)}")
        if any(v for v in alloc_trend if v):
            lines.append(f"    alloc bytes       [{sparkline(alloc_trend)}]  "
                         f"latest {fmt_bytes(alloc_trend[-1])}")
        lines.append("")
    latest_phases = shown[-1].get("phases", {})
    if latest_phases:
        lines.append("Latest record, per-phase attribution:")
        lines.append("")
        lines.append("| phase | count | self s | alloc count | alloc bytes |")
        lines.append("|---|---|---|---|---|")
        for name, phase in latest_phases.items():
            lines.append(
                "| {} | {:.0f} | {} | {:.0f} | {} |".format(
                    name, phase.get("count", 0),
                    fmt_num(phase.get("self_s"), 3),
                    phase.get("alloc_count", 0),
                    fmt_bytes(phase.get("alloc_bytes"))))
        lines.append("")


def report_command(args: argparse.Namespace) -> int:
    records = load_index(args.index)
    if args.bench:
        records = [r for r in records
                   if r.get("key", {}).get("bench") == args.bench]
    if not records:
        # A fresh checkout (or a bench filter with no matches) is not an
        # error: CI report steps must pass before the first append.
        if not args.index.exists():
            print(f"no runs recorded: {args.index} does not exist")
        elif args.bench:
            print(f"no runs recorded for bench '{args.bench}' "
                  f"in {args.index}")
        else:
            print(f"no runs recorded: {args.index} is empty")
        return 0
    groups: dict[tuple, list[dict]] = {}
    for record in records:
        key = record.get("key", {})
        group = (key.get("bench", "?"), key.get("mode", "?"),
                 key.get("seed", "?"))
        groups.setdefault(group, []).append(record)
    lines = ["# mfbo run history", ""]
    for group_key in sorted(groups, key=str):
        report_group(lines, group_key, groups[group_key], args.last)
    print("\n".join(lines).rstrip())
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description="Append bench artifacts to, and report on, the "
                    "cross-run history registry.")
    sub = parser.add_subparsers(dest="command", required=True)

    append_p = sub.add_parser("append", help="upsert one --out artifact")
    append_p.add_argument("artifact", type=Path)
    append_p.add_argument("--index", type=Path,
                          default=Path("runs/index.jsonl"))
    append_p.add_argument("--git-sha", default=None,
                          help="override the git sha key component")
    append_p.add_argument("--label", default=None,
                          help="free-form note stored with the record")
    append_p.set_defaults(func=append_command)

    report_p = sub.add_parser("report", help="render Markdown history")
    report_p.add_argument("--index", type=Path,
                          default=Path("runs/index.jsonl"))
    report_p.add_argument("--bench", default=None,
                          help="restrict to one bench")
    report_p.add_argument("--last", type=int, default=20,
                          help="show at most N records per group (0 = all)")
    report_p.set_defaults(func=report_command)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv[1:]))
    except BrokenPipeError:
        # `mfbo_runs.py report | head` closes our stdout early; that is a
        # reader choice, not an error.
        sys.exit(0)
