"""Lightweight structural model over the token stream.

Recovers just enough C++ structure for the rules:

  * function definitions — name, qualified name, parameter token slices,
    body token range, whether the function is internal linkage (file-level
    `static` or anonymous namespace);
  * which token indices sit inside a function body (for the static-local
    rule);
  * statement boundaries inside a body (for the "contract check within the
    first statements" rule).

It is heuristic by design: the codebase is written in a consistent house
style (clang-format enforced, no macros generating function heads), and the
fixture suite in tests/lint_fixtures pins the behaviours the rules rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from mfbo_lint.lexer import Token

# Tokens that may appear between `)` and the body `{` of a definition.
_TAIL_OK = {
    "const",
    "noexcept",
    "override",
    "final",
    "mutable",
    "&",
    "&&",
    "->",
}


@dataclass
class Param:
    tokens: list[Token]

    def type_text(self) -> str:
        # Drop a trailing `= default` expression, keep the rest verbatim.
        toks = self.tokens
        for i, t in enumerate(toks):
            if t.kind == "punct" and t.value == "=":
                toks = toks[:i]
                break
        return " ".join(t.value for t in toks)


@dataclass
class Function:
    name: str  # unqualified, e.g. "predict" or "operator"
    qualified: str  # e.g. "GpRegressor::predict"
    line: int
    params: list[Param]
    body_range: tuple[int, int]  # token indices of `{` and matching `}`
    internal: bool  # anonymous namespace or file-level static
    is_lambda: bool = False


@dataclass
class Model:
    tokens: list[Token]
    functions: list[Function] = field(default_factory=list)

    def in_body(self, index: int) -> Function | None:
        for f in self.functions:
            lo, hi = f.body_range
            if lo < index < hi:
                return f
        return None


def _match_forward(tokens: list[Token], i: int, open_c: str, close_c: str) -> int:
    """Index of the punct closing the one at i, or len(tokens)."""
    depth = 0
    n = len(tokens)
    while i < n:
        t = tokens[i]
        if t.kind == "punct":
            if t.value == open_c:
                depth += 1
            elif t.value == close_c:
                depth -= 1
                if depth == 0:
                    return i
        i += 1
    return n


def _skip_template_args(tokens: list[Token], i: int) -> int:
    """Given i at `<`, return index past the matching `>` (shallow, best
    effort: bails at `;` or `{` so expressions never send it off a cliff)."""
    depth = 0
    n = len(tokens)
    while i < n:
        v = tokens[i].value if tokens[i].kind == "punct" else None
        if v == "<":
            depth += 1
        elif v == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif v in (";", "{"):
            return i
        i += 1
    return n


def _split_params(tokens: list[Token], lo: int, hi: int) -> list[Param]:
    """Split the (lo, hi) paren slice on top-level commas."""
    params: list[Param] = []
    depth_round = depth_angle = depth_brace = 0
    cur: list[Token] = []
    for t in tokens[lo + 1 : hi]:
        if t.kind == "punct":
            if t.value == "(":
                depth_round += 1
            elif t.value == ")":
                depth_round -= 1
            elif t.value == "<":
                depth_angle += 1
            elif t.value == ">":
                depth_angle = max(0, depth_angle - 1)
            elif t.value == "{":
                depth_brace += 1
            elif t.value == "}":
                depth_brace -= 1
            elif (
                t.value == ","
                and depth_round == 0
                and depth_angle == 0
                and depth_brace == 0
            ):
                if cur:
                    params.append(Param(cur))
                cur = []
                continue
        cur.append(t)
    if cur:
        params.append(Param(cur))
    return params


def _consume_ctor_init_list(tokens: list[Token], i: int) -> int:
    """Given i just past `:` of a ctor init list, return index of body `{`.

    Each item is `name(args)` or `name{args}`; items are comma separated and
    the list ends at the `{` that opens the body.
    """
    n = len(tokens)
    while i < n:
        # Skip the member / base name (possibly qualified / templated).
        while i < n and not (
            tokens[i].kind == "punct" and tokens[i].value in "({"
        ):
            if tokens[i].kind == "punct" and tokens[i].value == "<":
                i = _skip_template_args(tokens, i)
                continue
            i += 1
        if i >= n:
            return n
        close = ")" if tokens[i].value == "(" else "}"
        i = _match_forward(tokens, i, tokens[i].value, close) + 1
        if i < n and tokens[i].kind == "punct" and tokens[i].value == ",":
            i += 1
            continue
        break
    # Next `{` is the body.
    while i < n and not (tokens[i].kind == "punct" and tokens[i].value == "{"):
        i += 1
    return i


def build_model(tokens: list[Token]) -> Model:
    """Single pass: find function definitions and their body ranges."""
    model = Model(tokens)
    n = len(tokens)
    i = 0
    # Stack of ("ns"|"anon-ns"|"brace", open_index); tracks anonymous
    # namespaces for internal-linkage detection.
    anon_depth = 0
    closers: list[str] = []

    # Lines where a file-level `static` was seen, to mark internal funcs.
    pending_static_line = -1

    while i < n:
        t = tokens[i]
        if t.kind == "id" and t.value == "namespace":
            j = i + 1
            while j < n and tokens[j].kind == "id":
                j += 1
                if j < n and tokens[j].kind == "punct" and tokens[j].value == ":":
                    j += 2  # `::` in nested-namespace definition
            if j < n and tokens[j].kind == "punct" and tokens[j].value == "{":
                is_anon = j == i + 1
                closers.append("anon-ns" if is_anon else "ns")
                if is_anon:
                    anon_depth += 1
                i = j + 1
                continue
            i = j
            continue
        if t.kind == "punct" and t.value == "{":
            closers.append("brace")
            i += 1
            continue
        if t.kind == "punct" and t.value == "}":
            if closers:
                kind = closers.pop()
                if kind == "anon-ns":
                    anon_depth -= 1
            i += 1
            continue
        if t.kind == "id" and t.value == "static":
            pending_static_line = t.line
        if t.kind == "punct" and t.value == "(":
            # Candidate function head: identifier immediately before `(`.
            k = i - 1
            if k < 0 or tokens[k].kind != "id":
                i += 1
                continue
            name = tokens[k].value
            if name in {
                "if",
                "for",
                "while",
                "switch",
                "catch",
                "return",
                "sizeof",
                "alignof",
                "decltype",
                "defined",
                "assert",
            }:
                i += 1
                continue
            # Expression contexts are rejected by the token just before the
            # (possibly qualified) head: `? x :`, `a - f(b)`, init-list
            # members, casts. Statement/type contexts pass.
            h = k - 1
            while (
                h - 1 >= 0
                and tokens[h].kind == "punct"
                and tokens[h].value == ":"
                and tokens[h - 1].kind == "punct"
                and tokens[h - 1].value == ":"
                and h - 2 >= 0
                and tokens[h - 2].kind == "id"
            ):
                h -= 3  # hop over `Qualifier ::`
            if h >= 0 and tokens[h].kind == "punct" and tokens[h].value in {
                "?", "=", "(", ",", "+", "-", "/", "!", "|", "%", "^", "[",
                ".", "<", ":",
            }:
                i += 1
                continue
            close = _match_forward(tokens, i, "(", ")")
            if close >= n:
                i += 1
                continue
            # Walk the tail: cv-qualifiers, noexcept(...), trailing return,
            # then either `{` (definition), `:` (ctor init list) or
            # something else (declaration / call / expression).
            j = close + 1
            seen_arrow = False
            while j < n:
                tj = tokens[j]
                if (
                    tj.kind == "punct"
                    and tj.value == "-"
                    and j + 1 < n
                    and tokens[j + 1].kind == "punct"
                    and tokens[j + 1].value == ">"
                ):
                    seen_arrow = True
                    j += 2
                    continue
                if tj.kind == "id" and (
                    tj.value in _TAIL_OK or tj.value == "noexcept"
                ):
                    j += 1
                    continue
                if tj.kind == "punct" and tj.value == "&":
                    j += 1
                    continue
                if (
                    tj.kind == "punct"
                    and tj.value == "("
                    and j >= 1
                    and tokens[j - 1].kind == "id"
                    and tokens[j - 1].value == "noexcept"
                ):
                    j = _match_forward(tokens, j, "(", ")") + 1
                    continue
                if seen_arrow and (
                    tj.kind == "id"
                    or (
                        tj.kind == "punct"
                        and tj.value in {":", "*", "&", ">"}
                    )
                ):
                    j += 1
                    continue
                if seen_arrow and tj.kind == "punct" and tj.value == "<":
                    j = _skip_template_args(tokens, j)
                    continue
                break
            if j >= n:
                break
            tj = tokens[j]
            body_open = -1
            if tj.kind == "punct" and tj.value == ":":
                # Could be a ctor init list — only at a plausible ctor name.
                body_open = _consume_ctor_init_list(tokens, j + 1)
                if body_open >= n:
                    i = close + 1
                    continue
            elif tj.kind == "punct" and tj.value == "{":
                body_open = j
            else:
                i = close + 1
                continue
            body_close = _match_forward(tokens, body_open, "{", "}")
            # Lambda? `](` directly before the name means no; a lambda head
            # is `] (`, so the token before `(` is `]`, not an id — already
            # excluded above. Qualified name: look back over `Class ::`.
            qual = name
            b = k - 1
            while (
                b - 1 >= 0
                and tokens[b].kind == "punct"
                and tokens[b].value == ":"
                and tokens[b - 1].kind == "punct"
                and tokens[b - 1].value == ":"
            ):
                if b - 2 >= 0 and tokens[b - 2].kind == "id":
                    qual = tokens[b - 2].value + "::" + qual
                    b -= 3
                else:
                    break
            internal = anon_depth > 0 or (
                pending_static_line != -1
                and tokens[k].line - pending_static_line <= 2
            )
            model.functions.append(
                Function(
                    name=name,
                    qualified=qual,
                    line=tokens[k].line,
                    params=_split_params(tokens, i, close),
                    body_range=(body_open, body_close),
                    internal=internal,
                )
            )
            pending_static_line = -1
            # Continue scanning *inside* the body too (nested lambdas are
            # not modelled, but rule matchers still see their tokens).
            i = body_open + 1
            closers.append("brace")
            continue
        i += 1

    return model


def statement_prefix_end(tokens: list[Token], body_range: tuple[int, int],
                         max_statements: int) -> int:
    """Token index after the first `max_statements` top-level statements of
    the body (so rules can ask "does X appear in the opening statements")."""
    lo, hi = body_range
    depth = 0
    statements = 0
    i = lo + 1
    while i < hi:
        t = tokens[i]
        if t.kind == "punct":
            if t.value in "({[":
                depth += 1
            elif t.value in ")}]":
                depth -= 1
                if depth < 0:
                    return i
                if depth == 0 and t.value == "}":
                    statements += 1  # a nested block counts as one
                    if statements >= max_statements:
                        return i + 1
            elif t.value == ";" and depth == 0:
                statements += 1
                if statements >= max_statements:
                    return i + 1
        i += 1
    return hi
