"""mfbo-lint: project-invariant static analysis for the mfbo codebase.

Rule families (see DESIGN.md "Static analysis" for the rationale):

  D-rules  determinism   — ban ambient randomness, wall-clock reads,
                           unordered iteration, and raw threading outside
                           the audited infrastructure layers.
  C-rules  contracts     — public numeric entry points must validate via
                           MFBO_CHECK*; no bare assert(); no swallowed
                           catch (...).
  O-rules  observability — registered hot-path phases must open a
                           ScopedSpan; every .cpp must be built by its
                           module's CMakeLists.txt.
  S/B      hygiene       — suppression comments and baseline entries that
                           no longer match a finding are themselves errors.

Entry point: `python3 -m mfbo_lint [paths...]` (with tools/ on PYTHONPATH)
or via tools/lint.sh, which wires it into the repo-wide lint run.
"""

from mfbo_lint.engine import LintEngine, Finding  # noqa: F401

__all__ = ["LintEngine", "Finding"]
