"""D-rules: determinism.

Same seed, same bytes, at any thread count — the property every Table-1
comparison rests on. These rules ban the constructs that historically break
it: ambient randomness, wall-clock reads feeding results, iteration order
of hash containers, threads outside the deterministic pool, and hidden
process-wide mutable state.
"""

from __future__ import annotations

from mfbo_lint.engine import FileContext, Finding, Rule

_RNG_BANNED = {
    "rand": "use linalg::Rng (seeded, reproducible)",
    "srand": "use linalg::Rng (seeded, reproducible)",
    "rand_r": "use linalg::Rng (seeded, reproducible)",
    "drand48": "use linalg::Rng (seeded, reproducible)",
    "random_device": "nondeterministic entropy; seed linalg::Rng instead",
}

_CLOCK_BANNED = {
    "steady_clock",
    "system_clock",
    "high_resolution_clock",
    "clock_gettime",
    "gettimeofday",
    "time",
    "clock",
}

_THREAD_BANNED = {
    "thread": "std::thread",
    "jthread": "std::jthread",
    "async": "std::async",
}


def _is_std_qualified(tokens, i) -> bool:
    """True when tokens[i] is preceded by `std ::` (or `chrono ::`)."""
    if i >= 2 and tokens[i - 1].kind == "punct" and tokens[i - 1].value == ":":
        if tokens[i - 2].kind == "punct" and tokens[i - 2].value == ":":
            j = i - 3
            return j >= 0 and tokens[j].kind == "id" and (
                tokens[j].value in {"std", "chrono"}
            )
    return False


def _called(tokens, i) -> bool:
    return (
        i + 1 < len(tokens)
        and tokens[i + 1].kind == "punct"
        and tokens[i + 1].value == "("
    )


def check_d001(ctx: FileContext):
    """Ambient randomness outside linalg::Rng."""
    if ctx.config.allowed(ctx.relpath, ctx.config.rng_allowed):
        return
    for i, t in enumerate(ctx.tokens):
        if t.kind != "id" or t.value not in _RNG_BANNED:
            continue
        if t.value == "random_device":
            if not _is_std_qualified(ctx.tokens, i):
                continue  # a local identifier, not std::random_device
        elif not _called(ctx.tokens, i):
            continue  # e.g. a variable named `rand`
        yield Finding(
            "D001",
            ctx.relpath,
            t.line,
            f"banned random source `{t.value}`: {_RNG_BANNED[t.value]}",
        )


def check_d002(ctx: FileContext):
    """Wall-clock reads outside telemetry/spans/bench timing."""
    if ctx.config.allowed(ctx.relpath, ctx.config.clock_allowed):
        return
    for i, t in enumerate(ctx.tokens):
        if t.kind != "id" or t.value not in _CLOCK_BANNED:
            continue
        if t.value in {"time", "clock"}:
            # Only the C library calls `time(...)` / `clock()`; `time` and
            # `clock` as member/variable names are common and fine.
            if not _called(ctx.tokens, i):
                continue
            prev = ctx.tokens[i - 1] if i > 0 else None
            if prev and prev.kind == "punct" and prev.value in {".", ">"}:
                continue  # member call, not the libc function
            if not (_is_std_qualified(ctx.tokens, i) or prev is None
                    or prev.kind == "punct" or prev.kind == "pp"
                    or prev.value in {"return", "=", ",", "("}):
                continue
        elif t.value.endswith("_clock"):
            if not _is_std_qualified(ctx.tokens, i):
                continue
        yield Finding(
            "D002",
            ctx.relpath,
            t.line,
            f"wall-clock read `{t.value}` outside the telemetry/spans/bench "
            "timing layer; results must not depend on time",
        )


def _harvest_unordered_names(tokens) -> set[str]:
    """Names declared with std::unordered_{map,set} (vars, members,
    aliases) in this token stream."""
    names: set[str] = set()
    aliases: set[str] = set()
    for i, t in enumerate(tokens):
        if t.kind == "id" and t.value in {"unordered_map", "unordered_set"}:
            j = i + 1
            if j < len(tokens) and tokens[j].kind == "punct" and tokens[j].value == "<":
                depth = 0
                while j < len(tokens):
                    v = tokens[j].value if tokens[j].kind == "punct" else ""
                    if v == "<":
                        depth += 1
                    elif v == ">":
                        depth -= 1
                        if depth == 0:
                            j += 1
                            break
                    j += 1
            if j < len(tokens) and tokens[j].kind == "id":
                names.add(tokens[j].value)
        if t.kind == "id" and t.value == "using" and i + 2 < len(tokens):
            # `using Alias = std::unordered_map<...>;`
            if tokens[i + 1].kind == "id":
                rest = tokens[i + 2 : i + 12]
                if any(
                    r.kind == "id"
                    and r.value in {"unordered_map", "unordered_set"}
                    for r in rest
                ):
                    aliases.add(tokens[i + 1].value)
    # Variables declared with an alias type: `Alias name;` — one lookahead.
    for i, t in enumerate(tokens):
        if t.kind == "id" and t.value in aliases and i + 1 < len(tokens):
            nxt = tokens[i + 1]
            if nxt.kind == "id":
                names.add(nxt.value)
    return names


def check_d003(ctx: FileContext):
    """Iteration over unordered containers (order feeds output)."""
    names = _harvest_unordered_names(ctx.tokens)
    if ctx.header_tokens is not None:
        names |= _harvest_unordered_names(ctx.header_tokens)
    if not names:
        return
    tokens = ctx.tokens
    n = len(tokens)
    for i, t in enumerate(tokens):
        if t.kind != "id" or t.value not in names:
            continue
        # `name.begin()` / `name.cbegin()` — iterator walk.
        if (
            i + 2 < n
            and tokens[i + 1].kind == "punct"
            and tokens[i + 1].value == "."
            and tokens[i + 2].kind == "id"
            and tokens[i + 2].value in {"begin", "cbegin", "rbegin"}
        ):
            yield Finding(
                "D003",
                ctx.relpath,
                t.line,
                f"iteration over unordered container `{t.value}`: hash order "
                "is implementation-defined; copy to a sorted container first",
            )
            continue
        # Range-for: `: name)` with a `for (` behind on the same statement.
        if (
            i >= 1
            and tokens[i - 1].kind == "punct"
            and tokens[i - 1].value == ":"
            and i + 1 < n
            and tokens[i + 1].kind == "punct"
            and tokens[i + 1].value == ")"
        ):
            j = i - 2
            hops = 0
            while j >= 0 and hops < 40:
                if tokens[j].kind == "id" and tokens[j].value == "for":
                    yield Finding(
                        "D003",
                        ctx.relpath,
                        t.line,
                        f"range-for over unordered container `{t.value}`: "
                        "hash order is implementation-defined; copy to a "
                        "sorted container first",
                    )
                    break
                if tokens[j].kind == "punct" and tokens[j].value in {";", "{", "}"}:
                    break
                j -= 1
                hops += 1


def check_d004(ctx: FileContext):
    """Raw threading outside common/parallel (the deterministic pool)."""
    if ctx.config.allowed(ctx.relpath, ctx.config.thread_allowed):
        return
    tokens = ctx.tokens
    for i, t in enumerate(tokens):
        if t.kind == "pp":
            text = " ".join(t.value.split())
            if text.startswith("# pragma omp") or text.startswith("#pragma omp"):
                yield Finding(
                    "D004",
                    ctx.relpath,
                    t.line,
                    "OpenMP pragma: use parallel::parallelFor (deterministic "
                    "pool with ordered reductions)",
                )
            continue
        if t.kind != "id" or t.value not in _THREAD_BANNED:
            continue
        if not _is_std_qualified(tokens, i):
            continue
        # `std::thread::hardware_concurrency()` is a read, but still only
        # the pool may size itself from it; keep it banned here.
        yield Finding(
            "D004",
            ctx.relpath,
            t.line,
            f"raw `{_THREAD_BANNED[t.value]}` outside src/common/parallel: "
            "use parallel::parallelFor / parallelMap (deterministic, "
            "exception-ordered, MFBO_THREADS-aware)",
        )


_TELEMETRY_HANDLES = {"Counter", "Gauge", "Timer"}


def check_d005(ctx: FileContext):
    """Mutable static / global state in src/ (outside common/)."""
    if not ctx.config.allowed(ctx.relpath, ctx.config.static_scope):
        return
    if ctx.config.allowed(ctx.relpath, ctx.config.static_allowed):
        return
    tokens = ctx.tokens
    n = len(tokens)
    for i, t in enumerate(tokens):
        if t.kind != "id" or t.value not in {"static", "thread_local"}:
            continue
        # Examine the declaration up to `; = ( {`.
        j = i + 1
        decl: list = []
        while j < n and len(decl) < 24:
            tj = tokens[j]
            if tj.kind == "punct" and tj.value in {";", "=", "(", "{"}:
                break
            decl.append(tj)
            j += 1
        terminator = tokens[j].value if j < n and tokens[j].kind == "punct" else ""
        words = [d.value for d in decl if d.kind == "id"]
        if terminator == "(":
            continue  # function declaration/definition
        if "const" in words or "constexpr" in words or "constinit" in words:
            continue
        if not decl:
            continue
        # Interned telemetry handles (`static telemetry::Counter& c = ...`)
        # were once the documented idiom, but scoped registries made them a
        # bug: the static binds the registry active at FIRST call forever,
        # leaking one session's counters into every later session. They get
        # a targeted message instead of an exemption.
        if (
            "telemetry" in words
            and any(w in _TELEMETRY_HANDLES for w in words)
            and any(d.kind == "punct" and d.value == "&" for d in decl)
        ):
            yield Finding(
                "D005",
                ctx.relpath,
                t.line,
                f"`{t.value}` telemetry handle pins the registry active at "
                "first call across every later TelemetryScope; look the "
                "handle up per call (function-local reference) instead",
            )
            continue
        yield Finding(
            "D005",
            ctx.relpath,
            t.line,
            f"mutable `{t.value}` state (`{' '.join(words[:4])}`): hidden "
            "process-wide state breaks same-seed reproducibility; thread it "
            "through an object or move it behind src/common",
        )


RULES = [
    Rule("D001", "banned-random-source", check_d001),
    Rule("D002", "wall-clock-read", check_d002),
    Rule("D003", "unordered-iteration", check_d003),
    Rule("D004", "raw-threading", check_d004),
    Rule("D005", "mutable-static-state", check_d005),
]
