"""A small C++ tokenizer sufficient for rule matching.

Produces a flat token stream with line numbers, and a separate list of
comments (the engine parses `// mfbo-lint: allow(...)` suppressions out of
them). String/char literals — including raw strings — are single tokens, so
rules never match identifiers inside literals. Preprocessor directives are
captured as one `pp` token per (continued) logical line, which is how the
OpenMP ban sees `#pragma omp`.

This is deliberately not a real parser: it only has to be exact about
token boundaries, comments, and literals, which is what keeps the rule
matchers free of string-soup false positives.
"""

from __future__ import annotations

from dataclasses import dataclass

# Token kinds: id, num, str, char, punct, pp
ID_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$")
ID_CONT = ID_START | set("0123456789")
DIGITS = set("0123456789")
RAW_PREFIXES = {"R", "u8R", "uR", "UR", "LR"}


@dataclass(frozen=True)
class Token:
    kind: str
    value: str
    line: int


@dataclass(frozen=True)
class Comment:
    line: int  # line the comment starts on
    text: str


def lex(text: str) -> tuple[list[Token], list[Comment]]:
    tokens: list[Token] = []
    comments: list[Comment] = []
    i, line, n = 0, 1, len(text)
    bol = True  # at beginning of line (modulo whitespace)

    def skip_string(j: int, quote: str) -> int:
        """Return index just past the closing quote, honoring escapes."""
        while j < n:
            if text[j] == "\\":
                j += 2
                continue
            if text[j] == quote:
                return j + 1
            if text[j] == "\n":
                return j  # unterminated: stop at EOL, stay recoverable
            j += 1
        return j

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            bol = True
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if text.startswith("//", i):
            j = text.find("\n", i)
            j = n if j == -1 else j
            comments.append(Comment(line, text[i:j]))
            i = j
            continue
        if text.startswith("/*", i):
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            comments.append(Comment(line, text[i:j]))
            line += text.count("\n", i, j)
            i = j
            continue
        if c == "#" and bol:
            # One pp token per logical line (backslash continuations join).
            start, start_line = i, line
            while i < n:
                j = text.find("\n", i)
                j = n if j == -1 else j
                if text[i:j].rstrip().endswith("\\"):
                    line += 1
                    i = j + 1
                    continue
                i = j
                break
            tokens.append(Token("pp", text[start:i], start_line))
            continue
        bol = False
        if c in ID_START:
            j = i + 1
            while j < n and text[j] in ID_CONT:
                j += 1
            word = text[i:j]
            if word in RAW_PREFIXES and j < n and text[j] == '"':
                # Raw string literal: R"delim( ... )delim"
                k = text.find("(", j)
                delim = text[j + 1 : k] if k != -1 else ""
                close = ")" + delim + '"'
                e = text.find(close, k + 1) if k != -1 else -1
                e = n if e == -1 else e + len(close)
                tokens.append(Token("str", text[i:e], line))
                line += text.count("\n", i, e)
                i = e
                continue
            if j < n and text[j] in "'\"" and word in {"u8", "u", "U", "L"}:
                quote = text[j]
                e = skip_string(j + 1, quote)
                tokens.append(
                    Token("str" if quote == '"' else "char", text[i:e], line)
                )
                i = e
                continue
            tokens.append(Token("id", word, line))
            i = j
            continue
        if c in DIGITS or (c == "." and i + 1 < n and text[i + 1] in DIGITS):
            j = i + 1
            while j < n:
                ch = text[j]
                if ch in ID_CONT or ch in ".'":
                    j += 1
                elif ch in "+-" and text[j - 1] in "eEpP":
                    j += 1
                else:
                    break
            tokens.append(Token("num", text[i:j], line))
            i = j
            continue
        if c == '"':
            e = skip_string(i + 1, '"')
            tokens.append(Token("str", text[i:e], line))
            i = e
            continue
        if c == "'":
            e = skip_string(i + 1, "'")
            tokens.append(Token("char", text[i:e], line))
            i = e
            continue
        tokens.append(Token("punct", c, line))
        i += 1

    return tokens, comments


def string_value(token: Token) -> str:
    """Unquoted payload of a plain (non-raw) string token, best effort."""
    v = token.value
    start = v.find('"')
    end = v.rfind('"')
    if start == -1 or end <= start:
        return v
    return v[start + 1 : end]
