"""CLI: `python3 -m mfbo_lint [paths...]` (tools/ on PYTHONPATH) or
`python3 tools/mfbo_lint/__main__.py` directly."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from mfbo_lint.engine import LintEngine, list_rules, print_report, write_report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="mfbo_lint",
        description="Project-invariant static analysis for the mfbo repo "
        "(determinism / contract / observability rules).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src tests bench "
        "examples, minus tests/lint_fixtures)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent.parent,
        help="repo root all relative paths and allowlists resolve against",
    )
    parser.add_argument(
        "--json", type=Path, metavar="FILE", help="write a JSON report"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        help="baseline file (default: tools/mfbo_lint/baseline.txt)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print rule ids and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, name in list_rules():
            print(f"{rule_id}  {name}")
        return 0

    root = args.root.resolve()
    if not root.is_dir():
        print(f"mfbo_lint: root {root} is not a directory", file=sys.stderr)
        return 2
    engine = LintEngine(root)
    report = engine.run(args.paths or None, baseline_path=args.baseline)
    if args.json:
        write_report(report, args.json)
    print_report(report)
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
