"""O-rules: observability.

The PR 5 span tree is the instrument the perf gate and the run reports
read; a hot path that silently loses its ScopedSpan drops out of the cost
attribution without failing anything. O001 pins every registered phase to
its file. O002 keeps CMakeLists.txt complete so no translation unit can
drop out of the build (and thus out of clang-tidy and the span sweep).
O003 pins the cross-file hook sites of the spans/memstats/timeline stack
(the couplings registry): removing one compiles cleanly and only degrades
the traces, so presence is enforced statically.
"""

from __future__ import annotations

import re
from pathlib import Path

from mfbo_lint.engine import FileContext, Finding, ProjectRule, Rule
from mfbo_lint.lexer import lex, string_value


def _span_literals(tokens) -> set[str]:
    """String literals opened as spans: arguments of ScopedSpan(...) or of
    .emplace(...) on an optional<ScopedSpan> (both arms of a `?:` count)."""
    out: set[str] = set()
    n = len(tokens)
    optional_span_vars: set[str] = set()
    for i, t in enumerate(tokens):
        # Track `std::optional<spans::ScopedSpan> name;` declarations.
        if t.kind == "id" and t.value == "optional":
            window = tokens[i : i + 10]
            if any(w.kind == "id" and w.value == "ScopedSpan" for w in window):
                for w in window:
                    if w.kind == "id" and w.value not in {
                        "optional",
                        "spans",
                        "ScopedSpan",
                        "std",
                    }:
                        optional_span_vars.add(w.value)
                        break
    for i, t in enumerate(tokens):
        is_ctor = t.kind == "id" and t.value == "ScopedSpan"
        is_emplace = (
            t.kind == "id"
            and t.value == "emplace"
            and i >= 2
            and tokens[i - 1].kind == "punct"
            and tokens[i - 1].value == "."
            and tokens[i - 2].kind == "id"
            and tokens[i - 2].value in optional_span_vars
        )
        if not (is_ctor or is_emplace):
            continue
        j = i + 1
        # Skip over the variable name of a ctor: `ScopedSpan name(...)`.
        while j < n and tokens[j].kind == "id":
            j += 1
        if not (j < n and tokens[j].kind == "punct" and tokens[j].value == "("):
            continue
        depth = 0
        while j < n:
            tj = tokens[j]
            if tj.kind == "punct":
                if tj.value == "(":
                    depth += 1
                elif tj.value == ")":
                    depth -= 1
                    if depth == 0:
                        break
            elif tj.kind == "str":
                out.add(string_value(tj))
            j += 1
    return out


def check_o001_project(root: Path, files: dict[str, "FileContext"], config):
    """Every registered hot-path phase opens its ScopedSpan."""
    by_file: dict[str, list[str]] = {}
    for hp in config.hot_paths:
        by_file.setdefault(hp.file, []).append(hp.span)
    for relpath, spans in sorted(by_file.items()):
        ctx = files.get(relpath)
        if ctx is None:
            path = root / relpath
            if not path.is_file():
                yield Finding(
                    "O001",
                    relpath,
                    1,
                    "registered hot-path file is missing; update the "
                    "registry in tools/mfbo_lint/config.py",
                )
                continue
            tokens, _ = lex(path.read_text(encoding="utf-8"))
        else:
            tokens = ctx.tokens
        present = _span_literals(tokens)
        for span in spans:
            if span not in present:
                yield Finding(
                    "O001",
                    relpath,
                    1,
                    f"registered hot path `{span}` never opens "
                    f'ScopedSpan("{span}") in this file: the phase would '
                    "drop out of cost attribution and the perf gate",
                )


def check_o002_project(root: Path, files: dict[str, "FileContext"], config):
    """Every .cpp is listed in its directory's CMakeLists.txt."""
    dirs: dict[Path, list[str]] = {}
    for relpath in files:
        if not relpath.endswith((".cpp", ".cc")):
            continue
        p = Path(relpath)
        if not any(
            str(p).startswith(scope + "/") for scope in config.cmake_scope
        ):
            continue
        dirs.setdefault(p.parent, []).append(p.name)
    for d, names in sorted(dirs.items()):
        cmake = root / d / "CMakeLists.txt"
        if not cmake.is_file():
            yield Finding(
                "O002",
                (d / "CMakeLists.txt").as_posix(),
                1,
                f"directory holds {len(names)} .cpp file(s) but no "
                "CMakeLists.txt; sources here would silently not build",
            )
            continue
        text = cmake.read_text(encoding="utf-8")
        for name in sorted(names):
            # Either the literal file name or its stem as a whole word (the
            # test/bench helper macros expand `${name}.cpp`).
            stem = Path(name).stem
            if name not in text and not re.search(
                rf"\b{re.escape(stem)}\b", text
            ):
                yield Finding(
                    "O002",
                    (d / name).as_posix(),
                    1,
                    f"{name} is not referenced by {d}/CMakeLists.txt: it "
                    "would not be compiled, tested, or clang-tidied",
                )


def check_o003_project(root: Path, files: dict[str, "FileContext"], config):
    """Every registered observability coupling keeps its hook site."""
    by_file: dict[str, list] = {}
    for coupling in getattr(config, "couplings", ()):
        by_file.setdefault(coupling.file, []).append(coupling)
    for relpath, couplings in sorted(by_file.items()):
        ctx = files.get(relpath)
        if ctx is None:
            path = root / relpath
            if not path.is_file():
                yield Finding(
                    "O003",
                    relpath,
                    1,
                    "registered coupling file is missing; update the "
                    "couplings registry in tools/mfbo_lint/config.py",
                )
                continue
            tokens, _ = lex(path.read_text(encoding="utf-8"))
        else:
            tokens = ctx.tokens
        present = {t.value for t in tokens if t.kind == "id"}
        for coupling in couplings:
            if coupling.token not in present:
                yield Finding(
                    "O003",
                    relpath,
                    1,
                    f"observability hook `{coupling.token}` no longer "
                    f"appears in this file: {coupling.why}",
                )


RULES: list[Rule] = []
PROJECT_RULES = [
    ProjectRule("O001", "hot-path-span-coverage", check_o001_project),
    ProjectRule("O002", "cmake-source-coverage", check_o002_project),
    ProjectRule("O003", "observability-coupling", check_o003_project),
]
