"""E-rules: engine state-machine invariants.

The bo/engine.cpp state machine serializes its full optimizer state at
state boundaries; the checkpoint contract only holds if every state change
funnels through Engine::transition(), where legality is checked and where
a kill/resume harness can observe every boundary. A `state_` assignment
anywhere else compiles fine and passes most tests — it only surfaces as a
checkpoint that silently skips a boundary. E001 pins the write sites.
"""

from __future__ import annotations

from mfbo_lint.engine import FileContext, Finding, Rule


def _enclosing_function(ctx: FileContext, index: int):
    """Innermost parsed function whose body contains token @p index."""
    best = None
    for fn in ctx.model.functions:
        lo, hi = fn.body_range
        if lo < index < hi and (
            best is None or lo > best.body_range[0]
        ):
            best = fn
    return best


def check_e001(ctx: FileContext):
    """`state_` may be assigned only inside the registered transition fn."""
    files = getattr(ctx.config, "engine_state_files", ())
    if not ctx.config.allowed(ctx.relpath, tuple(files)):
        return
    guard = getattr(ctx.config, "engine_transition_name", "transition")
    tokens = ctx.tokens
    for i, t in enumerate(tokens):
        if t.kind != "id" or t.value != "state_":
            continue
        # Assignment: `state_ =` but not `state_ ==` (the lexer emits
        # single-char puncts, so `==` is two `=` tokens).
        if i + 1 >= len(tokens) or tokens[i + 1].value != "=":
            continue
        if tokens[i + 1].kind != "punct":
            continue
        if i + 2 < len(tokens) and tokens[i + 2].value == "=":
            continue
        fn = _enclosing_function(ctx, i)
        if fn is None:
            # Class/file scope: a member default initializer is the
            # declaration of the state, not a transition.
            continue
        if fn.name == guard:
            continue
        yield Finding(
            "E001",
            ctx.relpath,
            t.line,
            f"`state_` is assigned in `{fn.qualified}`; engine state may "
            f"only change inside `{guard}()`, where the transition is "
            f"legality-checked and checkpointable",
        )


RULES = [
    Rule("E001", "state-write-outside-transition", check_e001),
]
