"""Rule engine: file scanning, suppressions, baseline, JSON report.

Suppressions
------------
An inline comment silences one finding instance, and must carry a reason:

    // mfbo-lint: allow(D004) — test battery needs raw threads
    // mfbo-lint: allow(D001,D002) — fixture exercising both rules

The comment applies to findings on its own line or the next line. A
file-level variant near the top of a file silences a rule for the whole
file (used sparingly; prefer line suppressions):

    // mfbo-lint: allow-file(D004) — this test *is* about raw std::thread

A suppression that silences nothing is itself an error (S001): stale
annotations rot into falsehoods. A suppression without a reason is an
error (S002): the reason is what makes the exception reviewable.

Baseline
--------
`tools/mfbo_lint/baseline.txt` may list `RULE path` lines for known
findings during a transition; baselined findings do not fail the run, but
stale entries do (B001), and CI separately requires the file to be empty
at merge.
"""

from __future__ import annotations

import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

from mfbo_lint.config import CPP_SUFFIXES, Config
from mfbo_lint.cppmodel import Model, build_model
from mfbo_lint.lexer import Comment, Token, lex

SUPPRESS_RE = re.compile(
    r"mfbo-lint:\s*(allow|allow-file)\(([A-Z]\d{3}(?:\s*,\s*[A-Z]\d{3})*)\)"
    r"(?:\s*(?:—|–|-|:)\s*(\S.*?))?\s*(?:\*/\s*)?$"
)


@dataclass
class Finding:
    rule: str
    path: str
    line: int
    message: str

    def key(self) -> str:
        return f"{self.rule} {self.path}"

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


@dataclass
class Rule:
    rule_id: str
    name: str
    check: object  # callable(FileContext) -> iterable[Finding]


@dataclass
class ProjectRule:
    rule_id: str
    name: str
    check: object  # callable(root, files, config) -> iterable[Finding]


@dataclass
class Suppression:
    line: int
    rules: tuple[str, ...]
    file_level: bool
    reason: str | None
    used: bool = False


@dataclass
class FileContext:
    root: Path
    relpath: str
    text: str
    tokens: list[Token]
    comments: list[Comment]
    model: Model
    config: Config
    header_tokens: list[Token] | None = None
    suppressions: list[Suppression] = field(default_factory=list)


def _parse_suppressions(comments: list[Comment]) -> list[Suppression]:
    out: list[Suppression] = []
    for c in comments:
        if "mfbo-lint" not in c.text:
            continue
        m = SUPPRESS_RE.search(c.text.splitlines()[0])
        if not m:
            # Mentions mfbo-lint but does not parse — surfaced as S002 so a
            # typo cannot silently disable nothing.
            out.append(Suppression(c.line, (), False, None))
            continue
        rules = tuple(r.strip() for r in m.group(2).split(","))
        out.append(
            Suppression(c.line, rules, m.group(1) == "allow-file", m.group(3))
        )
    return out


def _all_rules() -> tuple[list[Rule], list[ProjectRule]]:
    from mfbo_lint import (
        rules_contracts,
        rules_determinism,
        rules_engine,
        rules_observability,
    )

    rules = (
        rules_determinism.RULES
        + rules_contracts.RULES
        + rules_observability.RULES
        + rules_engine.RULES
    )
    return rules, rules_observability.PROJECT_RULES


def list_rules() -> list[tuple[str, str]]:
    rules, project_rules = _all_rules()
    out = [(r.rule_id, r.name) for r in rules]
    out += [(r.rule_id, r.name) for r in project_rules]
    out += [
        ("S001", "unused-suppression"),
        ("S002", "malformed-suppression"),
        ("B001", "stale-baseline-entry"),
    ]
    return out


class LintEngine:
    def __init__(self, root: Path, config: Config | None = None):
        self.root = Path(root)
        self.config = config or Config()

    # -- file discovery ---------------------------------------------------

    def discover(self, paths: list[str]) -> list[str]:
        files: list[str] = []
        for p in paths:
            full = (self.root / p) if not Path(p).is_absolute() else Path(p)
            if full.is_file():
                rel = full.resolve().relative_to(self.root.resolve()).as_posix()
                if not self.config.is_excluded(rel):
                    files.append(rel)
                continue
            for f in sorted(full.rglob("*")):
                if f.suffix not in CPP_SUFFIXES or not f.is_file():
                    continue
                rel = f.resolve().relative_to(self.root.resolve()).as_posix()
                if not self.config.is_excluded(rel):
                    files.append(rel)
        return files

    def _load(self, relpath: str) -> FileContext:
        path = self.root / relpath
        text = path.read_text(encoding="utf-8")
        tokens, comments = lex(text)
        header_tokens = None
        if path.suffix in {".cpp", ".cc"}:
            for hsuf in (".h", ".hpp"):
                header = path.with_suffix(hsuf)
                if header.is_file():
                    header_tokens, _ = lex(
                        header.read_text(encoding="utf-8")
                    )
                    break
        return FileContext(
            root=self.root,
            relpath=relpath,
            text=text,
            tokens=tokens,
            comments=comments,
            model=build_model(tokens),
            config=self.config,
            header_tokens=header_tokens,
            suppressions=_parse_suppressions(comments),
        )

    # -- suppression & baseline handling ----------------------------------

    @staticmethod
    def _apply_suppressions(
        ctx: FileContext, findings: list[Finding]
    ) -> tuple[list[Finding], int]:
        kept: list[Finding] = []
        suppressed = 0
        for f in findings:
            hit = None
            for s in ctx.suppressions:
                if f.rule not in s.rules:
                    continue
                if s.file_level or f.line in (s.line, s.line + 1):
                    hit = s
                    break
            if hit is not None:
                hit.used = True
                suppressed += 1
            else:
                kept.append(f)
        return kept, suppressed

    @staticmethod
    def _suppression_findings(ctx: FileContext) -> list[Finding]:
        out: list[Finding] = []
        for s in ctx.suppressions:
            if not s.rules:
                out.append(
                    Finding(
                        "S002",
                        ctx.relpath,
                        s.line,
                        "mfbo-lint comment does not parse; expected "
                        "`// mfbo-lint: allow(RULE) — reason`",
                    )
                )
            elif s.reason is None:
                out.append(
                    Finding(
                        "S002",
                        ctx.relpath,
                        s.line,
                        f"suppression for {','.join(s.rules)} has no reason; "
                        "append `— <why this exception is sound>`",
                    )
                )
            elif not s.used:
                out.append(
                    Finding(
                        "S001",
                        ctx.relpath,
                        s.line,
                        f"suppression for {','.join(s.rules)} matches no "
                        "finding; delete the stale annotation",
                    )
                )
        return out

    def load_baseline(self, baseline_path: Path | None) -> list[str]:
        path = baseline_path or (self.root / "tools/mfbo_lint/baseline.txt")
        if not path.is_file():
            return []
        entries: list[str] = []
        for line in path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if line and not line.startswith("#"):
                entries.append(line)
        return entries

    # -- main entry --------------------------------------------------------

    def run(
        self,
        paths: list[str] | None = None,
        baseline_path: Path | None = None,
    ) -> dict:
        from mfbo_lint.config import DEFAULT_PATHS

        rules, project_rules = _all_rules()
        scan_paths = paths or [
            p for p in DEFAULT_PATHS if (self.root / p).exists()
        ]
        relpaths = self.discover(scan_paths)
        files: dict[str, FileContext] = {}
        findings: list[Finding] = []
        suppressed_count = 0

        for relpath in relpaths:
            ctx = self._load(relpath)
            files[relpath] = ctx
            raw: list[Finding] = []
            for rule in rules:
                raw.extend(rule.check(ctx))
            kept, suppressed = self._apply_suppressions(ctx, raw)
            suppressed_count += suppressed
            findings.extend(kept)
            findings.extend(self._suppression_findings(ctx))

        for prule in project_rules:
            findings.extend(prule.check(self.root, files, self.config))

        baseline = self.load_baseline(baseline_path)
        active: list[Finding] = []
        baselined: list[Finding] = []
        matched_entries: set[str] = set()
        for f in findings:
            if f.key() in baseline:
                baselined.append(f)
                matched_entries.add(f.key())
            else:
                active.append(f)
        for entry in baseline:
            if entry not in matched_entries:
                active.append(
                    Finding(
                        "B001",
                        "tools/mfbo_lint/baseline.txt",
                        1,
                        f"stale baseline entry `{entry}` matches no finding; "
                        "remove it",
                    )
                )

        active.sort(key=lambda f: (f.path, f.line, f.rule))
        counts: dict[str, int] = {}
        for f in active:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return {
            "version": 1,
            "root": str(self.root),
            "paths": scan_paths,
            "files_scanned": len(relpaths),
            "findings": [f.__dict__ for f in active],
            "baselined": [f.__dict__ for f in baselined],
            "suppressed_count": suppressed_count,
            "counts_by_rule": counts,
            "ok": not active,
        }


def write_report(report: dict, path: Path) -> None:
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")


def print_report(report: dict, stream=sys.stdout) -> None:
    for f in report["findings"]:
        print(
            f"{f['path']}:{f['line']}: {f['rule']}: {f['message']}",
            file=stream,
        )
    n = len(report["findings"])
    print(
        f"mfbo-lint: {report['files_scanned']} files, {n} finding(s), "
        f"{len(report['baselined'])} baselined, "
        f"{report['suppressed_count']} suppressed",
        file=stream,
    )
