"""Repo-specific configuration: scopes, allowlists, hot-path registry.

Everything here is expressed in repo-relative POSIX paths. A rule's
allowlist names the *audited* exceptions — the infrastructure layer that is
allowed to own the dangerous construct because it is what makes the rest of
the codebase safe (e.g. common/parallel.cpp may use std::thread: it *is*
the thread pool). Everything else needs an inline suppression with a
reason, which keeps every exception greppable and reviewed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# Directories scanned by default (relative to the repo root).
DEFAULT_PATHS = ["src", "tests", "bench", "examples"]

# Never scanned: deliberately-offending lint fixtures and build trees.
DEFAULT_EXCLUDES = [
    "tests/lint_fixtures",
    "build",
]
EXCLUDE_PREFIXES = ["build-", "build/"]

CPP_SUFFIXES = {".h", ".hpp", ".cpp", ".cc"}


def _path_in(path: str, prefixes: tuple[str, ...]) -> bool:
    return any(
        path == p or path.startswith(p.rstrip("/") + "/") or path == p.rstrip("/")
        for p in prefixes
    )


@dataclass
class HotPath:
    """A registered hot-path phase: `file` must open ScopedSpan(`span`)."""

    file: str
    span: str


@dataclass
class Coupling:
    """A registered observability coupling: `file` must mention `token`.

    The observability stack works through cross-file hook sites — the span
    profiler dispatches to the timeline recorder, the pool hands captured
    arenas back, telemetry samples peak RSS. Deleting one of those call
    sites compiles and passes most tests; it only shows up as a silently
    poorer trace or report. Registering the (file, token) pair here makes
    the removal a lint failure with a written rationale.
    """

    file: str
    token: str
    why: str


@dataclass
class Config:
    # D001: ambient RNG. linalg/rng.* is the one audited seeding site.
    rng_allowed: tuple[str, ...] = ("src/linalg/rng.h", "src/linalg/rng.cpp")

    # D002: wall-clock reads. Telemetry and the span profiler measure time
    # by design; the timeline recorder stamps trace events (its output is
    # explicitly outside the deterministic artifact contract); bench
    # harnesses time their own repeat loops. The flight recorder's audited
    # exception covers one stamp helper that runs only in wall-clock dump
    # mode — deterministic-mode journals never read a clock.
    clock_allowed: tuple[str, ...] = (
        "src/common/telemetry.h",
        "src/common/telemetry.cpp",
        "src/common/spans.h",
        "src/common/spans.cpp",
        "src/common/timeline.h",
        "src/common/timeline.cpp",
        "src/common/eventlog.cpp",
        "bench",
    )

    # D004: raw threading primitives. common/parallel.* is the pool.
    thread_allowed: tuple[str, ...] = (
        "src/common/parallel.h",
        "src/common/parallel.cpp",
    )

    # D005: mutable static state. common/ is the audited process-wide state
    # layer (telemetry registries, the pool, span arenas); statics elsewhere
    # in src/ need a suppression. Interned telemetry handles
    # (`static telemetry::Counter& c = telemetry::counter(...)`) are flagged
    # with a targeted message: since scoped registries (TelemetryScope), a
    # static handle pins whichever registry was active at first call,
    # leaking one session's counters into every later session. Look handles
    # up per call with a function-local reference instead.
    static_allowed: tuple[str, ...] = ("src/common",)
    # Only src/ carries the no-mutable-static invariant; tests and benches
    # own their processes.
    static_scope: tuple[str, ...] = ("src",)

    # C001: contract checks on public numeric entry points (src/ only).
    contract_scope: tuple[str, ...] = ("src",)
    # Statements from the top of the body within which an MFBO_CHECK* must
    # appear (value-validating code may precede, e.g. unpacking a pair).
    contract_window: int = 6

    # O001: registered hot paths — the phase names serialized by the span
    # tree that the perf gate and run reports attribute cost to. Adding an
    # algorithm/phase? Register it here so the instrumentation cannot rot.
    hot_paths: tuple[HotPath, ...] = (
        # MFBO and WEIBO both run on the bo/engine.cpp state machine.
        HotPath("src/bo/engine.cpp", "mfbo"),
        HotPath("src/bo/engine.cpp", "weibo"),
        HotPath("src/bo/engine.cpp", "acq_low"),
        HotPath("src/bo/engine.cpp", "acq_high"),
        HotPath("src/bo/engine.cpp", "fidelity_decision"),
        HotPath("src/bo/engine.cpp", "simulate_low"),
        HotPath("src/bo/engine.cpp", "simulate_high"),
        HotPath("src/bo/engine.cpp", "observe"),
        HotPath("src/bo/engine.cpp", "fit_high"),
        HotPath("src/bo/engine.cpp", "fantasy"),
        HotPath("src/bo/gaspad.cpp", "gaspad"),
        HotPath("src/bo/gaspad.cpp", "acq_high"),
        HotPath("src/bo/gaspad.cpp", "fit_high"),
        HotPath("src/bo/gaspad.cpp", "simulate_high"),
        HotPath("src/bo/gaspad.cpp", "observe"),
        HotPath("src/bo/de_baseline.cpp", "de"),
        HotPath("src/bo/de_baseline.cpp", "simulate_high"),
        HotPath("src/bo/de_baseline.cpp", "observe"),
        HotPath("src/mf/nargp.cpp", "fit_low"),
        HotPath("src/mf/nargp.cpp", "fit_high"),
        HotPath("src/mf/nargp.cpp", "mc_integration"),
        HotPath("src/mf/ar1.cpp", "fit_low"),
        HotPath("src/mf/ar1.cpp", "fit_high"),
        HotPath("src/mf/multilevel.cpp", "fit_low"),
        HotPath("src/mf/multilevel.cpp", "fit_high"),
        HotPath("src/gp/gp_regressor.cpp", "gp_train"),
        HotPath("src/gp/gp_regressor.cpp", "gp_rebuild"),
        HotPath("src/gp/gp_regressor.cpp", "gp_extend"),
        HotPath("src/gp/gp_regressor.cpp", "nlml_restart"),
        HotPath("src/linalg/cholesky.cpp", "cholesky_factor"),
        HotPath("src/linalg/cholesky.cpp", "cholesky_append"),
        HotPath("src/opt/multistart.cpp", "multistart"),
        HotPath("src/opt/multistart.cpp", "local_search"),
        # Service layer: every scheduler-driven engine advance runs under
        # the session_step span inside the session's own arena.
        HotPath("src/service/session.cpp", "session_step"),
        # The explicit (non-signal) black-box dump path is span-covered so
        # persist-boundary snapshots show up in traces and memstats.
        HotPath("src/common/eventlog.cpp", "flightrec_dump"),
    )

    # E001: engine state-machine write sites. `state_` may be assigned only
    # inside Engine::transition() — the one legality-checked, checkpointable
    # boundary — in the files registered here. The header's member default
    # initializer is the declaration, not a transition, so only the .cpp is
    # listed.
    engine_state_files: tuple[str, ...] = ("src/bo/engine.cpp",)
    engine_transition_name: str = "transition"

    # O002: directories whose CMakeLists.txt must build every sibling .cpp.
    cmake_scope: tuple[str, ...] = ("src", "tests", "bench", "examples")

    # O003: observability hook sites that must keep existing. Each entry
    # pins a cross-file coupling of the spans/memstats/timeline stack.
    couplings: tuple[Coupling, ...] = (
        Coupling(
            "src/common/spans.cpp",
            "recordBegin",
            "span open must dispatch a timeline begin event while a "
            "recording is active",
        ),
        Coupling(
            "src/common/spans.cpp",
            "recordEnd",
            "span close must dispatch a timeline end event while a "
            "recording is active",
        ),
        Coupling(
            "src/common/spans.cpp",
            "PauseScope",
            "profiler arena growth must run under memstats::PauseScope or "
            "the profiler counts its own allocations",
        ),
        Coupling(
            "src/common/parallel.cpp",
            "beginWorkerCapture",
            "pool workers must capture per-thread span arenas or parallel "
            "regions drop out of attribution",
        ),
        Coupling(
            "src/common/parallel.cpp",
            "mergeCapturedTree",
            "captured worker trees must merge into the caller's span or "
            "counters depend on the thread count",
        ),
        Coupling(
            "src/common/parallel.cpp",
            "PauseScope",
            "pool job setup must run under memstats::PauseScope to keep "
            "alloc counters workload-only",
        ),
        Coupling(
            "src/common/parallel.cpp",
            "exchangeActiveRegistry",
            "pool workers must adopt the submitting thread's metrics "
            "registry per job or scoped counters depend on the thread count",
        ),
        Coupling(
            "src/common/telemetry.cpp",
            "peakRssBytes",
            "metricsSnapshot() must report the process peak-RSS sample",
        ),
        Coupling(
            "src/service/session.cpp",
            "TelemetryScope",
            "every engine entry must run under the session's metrics "
            "registry or concurrent sessions interleave their counters",
        ),
        Coupling(
            "src/service/session.cpp",
            "ArenaScope",
            "every engine entry must run under the session's span arena or "
            "concurrent sessions interleave their span trees",
        ),
        Coupling(
            "src/common/timeline.cpp",
            "PauseScope",
            "recorder buffer growth must run under memstats::PauseScope so "
            "recording does not perturb alloc counters",
        ),
        # Flight-recorder hook sites: each journalled event class has one
        # producer; deleting the call compiles but leaves the black box
        # silent about that part of the narrative.
        Coupling(
            "src/common/check.cpp",
            "noteContractViolation",
            "contract failures must be journalled (and black-box dumped) "
            "before the ContractViolation throw unwinds the evidence",
        ),
        Coupling(
            "src/bo/engine.cpp",
            "kEngineTransition",
            "every engine state transition must be journalled or crash "
            "dumps cannot identify the in-flight engine state",
        ),
        Coupling(
            "src/bo/engine.cpp",
            "kFidelityDecision",
            "low/high fidelity decisions must be journalled — the paper's "
            "core control signal belongs in the black box",
        ),
        Coupling(
            "src/service/session.cpp",
            "kSessionStep",
            "every scheduled engine advance must be journalled under its "
            "session label or dumps cannot attribute work to sessions",
        ),
        Coupling(
            "src/service/session.cpp",
            "ScopedLatency",
            "every session step must record into the step-latency SLO "
            "histogram or healthJson() quantiles go stale",
        ),
        Coupling(
            "src/service/session_manager.cpp",
            "dumpFlightRecorder",
            "persist boundaries must snapshot the flight recorder so the "
            "on-disk black box is as fresh as the newest checkpoint",
        ),
        Coupling(
            "src/common/parallel.cpp",
            "kPoolDispatch",
            "pool dispatches must be journalled at region entry (before "
            "the in-region flag flips) or the deterministic journal loses "
            "every fan-out event",
        ),
    )

    excludes: tuple[str, ...] = tuple(DEFAULT_EXCLUDES)
    extra: dict = field(default_factory=dict)

    def is_excluded(self, relpath: str) -> bool:
        if _path_in(relpath, self.excludes):
            return True
        return any(relpath.startswith(p) for p in EXCLUDE_PREFIXES)

    def allowed(self, relpath: str, prefixes: tuple[str, ...]) -> bool:
        return _path_in(relpath, prefixes)
