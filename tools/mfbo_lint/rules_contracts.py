"""C-rules: contracts.

PR 1 made every contract violation a typed, testable exception
(mfbo::ContractViolation). These rules keep that surface complete: public
numeric entry points validate their dimensional/pointer inputs up front,
nothing reverts to vanishing `assert`, and no handler silently swallows.
"""

from __future__ import annotations

from mfbo_lint.cppmodel import statement_prefix_end
from mfbo_lint.engine import FileContext, Finding, Rule

_CHECK_MACROS = {"MFBO_CHECK", "MFBO_DCHECK", "MFBO_CHECK_FINITE"}

# Parameter types that make a function "numeric entry point" for C001.
_SIZE_TYPES = {"size_t"}


def _param_needs_validation(param) -> bool:
    # Only top-level tokens count: a size_t buried in template arguments
    # (e.g. std::function<double(std::size_t)>) is not a dimension input.
    depth = 0
    words: list[str] = []
    has_star = False
    for t in param.tokens:
        if t.kind == "punct":
            if t.value in "<(":
                depth += 1
            elif t.value in ">)":
                depth = max(0, depth - 1)
            elif t.value == "*" and depth == 0:
                has_star = True
        elif t.kind == "id" and depth == 0:
            words.append(t.value)
    if any(w in _SIZE_TYPES for w in words):
        return True
    # Raw pointer parameter (excluding `const char*` — typically a literal
    # label/name, validated nowhere because there is nothing to check).
    return has_star and "char" not in words


def check_c001(ctx: FileContext):
    """Public functions taking sizes/pointers must MFBO_CHECK* up front."""
    if not ctx.config.allowed(ctx.relpath, ctx.config.contract_scope):
        return
    tokens = ctx.tokens
    for fn in ctx.model.functions:
        if fn.internal or fn.is_lambda or fn.name == "main":
            continue
        if not any(_param_needs_validation(p) for p in fn.params):
            continue
        lo, hi = fn.body_range
        # Trivial delegators (one top-level statement) validate in the
        # callee: `return impl(...);` forwards the contract intact.
        if statement_prefix_end(tokens, fn.body_range, 1) >= hi:
            continue
        window_end = statement_prefix_end(
            tokens, fn.body_range, ctx.config.contract_window
        )
        head = tokens[lo + 1 : window_end]
        if any(t.kind == "id" and t.value in _CHECK_MACROS for t in head):
            continue
        yield Finding(
            "C001",
            ctx.relpath,
            fn.line,
            f"`{fn.qualified}` takes size/pointer parameters but opens "
            f"without an MFBO_CHECK*/MFBO_DCHECK in its first "
            f"{ctx.config.contract_window} statements",
        )


def check_c002(ctx: FileContext):
    """Bare assert() vanishes under NDEBUG — use MFBO_DCHECK."""
    tokens = ctx.tokens
    for i, t in enumerate(tokens):
        if t.kind != "id" or t.value != "assert":
            continue
        if (
            i + 1 < len(tokens)
            and tokens[i + 1].kind == "punct"
            and tokens[i + 1].value == "("
        ):
            yield Finding(
                "C002",
                ctx.relpath,
                t.line,
                "bare assert() compiles out under NDEBUG; use MFBO_DCHECK "
                "(hot paths) or MFBO_CHECK (entry points) so the contract "
                "holds in every build type",
            )


def check_c003(ctx: FileContext):
    """`catch (...)` must rethrow or capture, never swallow."""
    tokens = ctx.tokens
    n = len(tokens)
    for i, t in enumerate(tokens):
        if t.kind != "id" or t.value != "catch":
            continue
        # Match `catch ( . . . )`
        j = i + 1
        if not (j < n and tokens[j].kind == "punct" and tokens[j].value == "("):
            continue
        dots = tokens[j + 1 : j + 4]
        if len(dots) < 3 or any(
            d.kind != "punct" or d.value != "." for d in dots
        ):
            continue
        k = j + 4
        if not (k < n and tokens[k].kind == "punct" and tokens[k].value == ")"):
            continue
        # Body: next `{` ... matching `}`.
        b = k + 1
        if not (b < n and tokens[b].kind == "punct" and tokens[b].value == "{"):
            continue
        depth = 0
        body_ids: set[str] = set()
        e = b
        while e < n:
            te = tokens[e]
            if te.kind == "punct":
                if te.value == "{":
                    depth += 1
                elif te.value == "}":
                    depth -= 1
                    if depth == 0:
                        break
            elif te.kind == "id":
                body_ids.add(te.value)
            e += 1
        if body_ids & {"throw", "current_exception", "rethrow_exception"}:
            continue
        yield Finding(
            "C003",
            ctx.relpath,
            t.line,
            "catch (...) swallows the exception: rethrow (`throw;`) or "
            "capture via std::current_exception so failures stay observable",
        )


RULES = [
    Rule("C001", "missing-entry-contract", check_c001),
    Rule("C002", "bare-assert", check_c002),
    Rule("C003", "catch-all-swallow", check_c003),
]
