#!/usr/bin/env bash
# Static-analysis runner: header lint, mfbo-lint (project invariants),
# python tooling lint always; clang-format / clang-tidy when available.
#
# Usage: tools/lint.sh [paths...]        (default: src tests bench examples)
#
# clang-tidy needs a compile_commands.json; the script configures the
# `tidy` CMake preset on demand to produce one. On machines without the
# clang tooling (e.g. a gcc-only container) those steps are skipped with a
# notice — CI runs them on a clang image, so nothing slips through.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

paths=("$@")
tidy_paths=(src)
if [[ ${#paths[@]} -eq 0 ]]; then
  paths=(src tests bench examples)
else
  tidy_paths=("${paths[@]}")
fi

status=0

echo "== check_headers =="
python3 tools/check_headers.py "${paths[@]}" || status=1

echo "== mfbo-lint =="
PYTHONPATH=tools python3 -m mfbo_lint "${paths[@]}" || status=1

echo "== python tools =="
mapfile -t py_files < <(find tools tests -name '*.py' | sort)
# Syntax gate always (py_compile ships with the interpreter); pyflakes
# adds unused-import/undefined-name checks on machines that have it.
python3 -m py_compile "${py_files[@]}" || status=1
if python3 -m pyflakes --help > /dev/null 2>&1; then
  python3 -m pyflakes "${py_files[@]}" || status=1
else
  echo "pyflakes not found; ran py_compile only"
fi

echo "== clang-format =="
if command -v clang-format > /dev/null 2>&1; then
  mapfile -t formatted < <(
    find "${paths[@]}" \( -name '*.h' -o -name '*.cpp' \) | sort
  )
  if [[ ${#formatted[@]} -gt 0 ]]; then
    clang-format --dry-run -Werror "${formatted[@]}" || status=1
  fi
else
  echo "clang-format not found; skipped (CI runs it on a clang image)"
fi

echo "== clang-tidy =="
if command -v clang-tidy > /dev/null 2>&1; then
  build_dir="build-tidy"
  if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
    cmake --preset tidy -DCMAKE_CXX_CLANG_TIDY= > /dev/null
  fi
  # Collect translation units under the requested paths; the lint
  # fixtures are deliberately broken and never compiled, so prune them.
  mapfile -t sources < <(
    find "${tidy_paths[@]}" -path tests/lint_fixtures -prune -o \
      -name '*.cpp' -print | sort
  )
  if [[ ${#sources[@]} -gt 0 ]]; then
    clang-tidy -p "${build_dir}" --quiet "${sources[@]}" || status=1
  fi
else
  echo "clang-tidy not found; skipped (CI runs it on a clang image)"
fi

if [[ ${status} -eq 0 ]]; then
  echo "lint: OK"
else
  echo "lint: FAILED" >&2
fi
exit "${status}"
