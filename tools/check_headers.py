#!/usr/bin/env python3
"""Repo-specific header lint for the mfbo codebase.

Checks, per file under the given roots (default: src/):

  1. Every header uses `#pragma once` (no include guards).
  2. Include order: a .cpp's first include is its own header, then one
     block of system includes (<...>), then one block of project
     includes ("..."), each block sorted alphabetically and the blocks
     separated by blank lines. Headers follow the same rule minus the
     own-header line.
  3. Every file under src/<module>/ opens `namespace mfbo::<module>`
     (the common/ module uses the plain `mfbo` namespace).

Exit status is 0 when clean, 1 when any violation is found.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# src/<module>/ -> required namespace. common/ holds cross-cutting
# utilities and deliberately lives in the top-level mfbo namespace.
NAMESPACE_FOR_MODULE = {
    "common": "mfbo",
    "linalg": "mfbo::linalg",
    "opt": "mfbo::opt",
    "gp": "mfbo::gp",
    "mf": "mfbo::mf",
    "circuit": "mfbo::circuit",
    "bo": "mfbo::bo",
    "problems": "mfbo::problems",
    "service": "mfbo::service",
}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(<[^>]+>|"[^"]+")')

HEADER_SUFFIXES = {".h", ".hpp"}
SOURCE_SUFFIXES = {".cpp", ".cc"}


def iter_files(roots: list[Path]) -> list[Path]:
    files: list[Path] = []
    for root in roots:
        if root.is_file():
            files.append(root)
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix in HEADER_SUFFIXES | SOURCE_SUFFIXES:
                files.append(path)
    return files


def own_header_spelling(path: Path) -> str | None:
    """The quoted include a .cpp should lead with, e.g. "bo/mfbo.h"."""
    if path.suffix not in SOURCE_SUFFIXES:
        return None
    for suffix in HEADER_SUFFIXES:
        header = path.with_suffix(suffix)
        if header.exists():
            try:
                rel = header.relative_to(REPO_ROOT / "src")
            except ValueError:
                rel = Path(header.name)
            return f'"{rel.as_posix()}"'
    return None


def check_pragma_once(path: Path, lines: list[str], errors: list[str]) -> None:
    if path.suffix not in HEADER_SUFFIXES:
        return
    if not any(line.strip() == "#pragma once" for line in lines[:40]):
        errors.append(f"{path}: missing `#pragma once`")
    if any(re.match(r"\s*#\s*ifndef\s+\w*_H\b", line) for line in lines[:40]):
        errors.append(f"{path}: uses an include guard instead of `#pragma once`")


def check_include_order(path: Path, lines: list[str], errors: list[str]) -> None:
    # (line number, spelling) for every include directive, plus the line
    # numbers of blank lines so block boundaries can be recovered.
    includes: list[tuple[int, str]] = []
    for number, line in enumerate(lines, start=1):
        match = INCLUDE_RE.match(line)
        if match:
            includes.append((number, match.group(1)))
    if not includes:
        return

    own = own_header_spelling(path)
    if own is not None and includes and includes[0][1] == own:
        includes = includes[1:]
    elif own is not None and any(spelling == own for _, spelling in includes):
        errors.append(
            f"{path}: own header {own} must be the first include"
        )

    # House style: test files lead with <gtest/gtest.h> before the system
    # block (it is a third-party header, not a system one).
    if includes and includes[0][1] == "<gtest/gtest.h>":
        includes = includes[1:]
    elif any(s == "<gtest/gtest.h>" for _, s in includes):
        errors.append(f"{path}: <gtest/gtest.h> must be the first include")

    system = [(n, s) for n, s in includes if s.startswith("<")]
    project = [(n, s) for n, s in includes if s.startswith('"')]

    if system and project and max(n for n, _ in system) > min(n for n, _ in project):
        errors.append(
            f"{path}: system includes (<...>) must precede project includes (\"...\")"
        )

    for group_name, group in (("system", system), ("project", project)):
        spellings = [s for _, s in group]
        if spellings != sorted(spellings):
            first_bad = next(
                (n for (n, s), want in zip(group, sorted(spellings)) if s != want),
                group[0][0],
            )
            errors.append(
                f"{path}:{first_bad}: {group_name} includes are not sorted"
            )


def check_namespace(path: Path, text: str, errors: list[str]) -> None:
    try:
        rel = path.relative_to(REPO_ROOT / "src")
    except ValueError:
        return  # only src/ carries the namespace convention
    module = rel.parts[0] if len(rel.parts) > 1 else None
    if module is None:
        return
    expected = NAMESPACE_FOR_MODULE.get(module)
    if expected is None:
        errors.append(f"{path}: unknown module `{module}` (update tools/check_headers.py)")
        return
    pattern = rf"namespace\s+{re.escape(expected)}\s*{{"
    if not re.search(pattern, text):
        errors.append(f"{path}: expected `namespace {expected} {{`")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src/)",
    )
    args = parser.parse_args()

    roots = [(REPO_ROOT / p) if not Path(p).is_absolute() else Path(p) for p in args.paths]
    errors: list[str] = []
    for root in roots:
        if not root.exists():
            errors.append(f"{root}: path does not exist")
    roots = [r for r in roots if r.exists()]
    files = iter_files(roots)
    for path in files:
        text = path.read_text(encoding="utf-8")
        lines = text.splitlines()
        check_pragma_once(path, lines, errors)
        check_include_order(path, lines, errors)
        check_namespace(path, text, errors)

    for error in errors:
        print(error, file=sys.stderr)
    print(f"check_headers: {len(files)} files, {len(errors)} problem(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
