#!/usr/bin/env bash
# Regenerate the committed perf-gate baselines in bench/baselines/.
#
# Run this after an intentional performance or results change, commit the
# updated JSON files, and say why in the commit message — the CI perf-gate
# job compares every push against these bytes (exact on deterministic
# result fields, relative tolerance on timings; see tools/bench_compare.py).
#
# Usage: tools/regen_baselines.sh [build-dir]   (default: build-release)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

build_dir="${1:-build-release}"
out_dir="bench/baselines"
mkdir -p "${out_dir}"

if [[ ! -d "${build_dir}" ]]; then
  cmake --preset release
fi
cmake --build --preset release -j "$(nproc)" \
  --target micro_gp micro_parallel micro_incremental micro_batch \
  micro_sessions table1_power_amplifier

# Deterministic table artifact: --no-timing + fixed thread count makes the
# bytes a function of the seed alone, and --spans pins the span-tree shape
# (counts only, no wall-clock keys).
"${build_dir}/bench/table1_power_amplifier" \
  --quick --runs 2 --no-timing --threads 1 --spans \
  --out "${out_dir}/BENCH_table1.json"

# Self-normalizing artifacts: the speedup fields compare two legs run on
# the same machine, so they stay meaningful on different hardware.
"${build_dir}/bench/micro_parallel" --quick --threads 4 \
  --out "${out_dir}/BENCH_micro_parallel.json"
"${build_dir}/bench/micro_incremental" --quick \
  --out "${out_dir}/BENCH_micro_incremental.json"

# Deterministic batch-engine artifact plus the committed resume fixture:
# --no-timing zeroes the wall-clock leaves, so the per-batch-size results,
# the identity flags, and the fixture bytes are a function of the seed
# alone. The fixture feeds tests/test_checkpoint.cpp's cross-build restore
# test; regenerate both together so they stay in step.
"${build_dir}/bench/micro_batch" --quick --threads 4 --no-timing \
  --dump-checkpoint tests/fixtures/resume_fixture.json \
  --out "${out_dir}/BENCH_micro_batch.json"

# Deterministic multi-session artifact: per-fleet-size results and the
# solo-vs-concurrent identity flags are a function of the seed alone under
# --no-timing; the wall-clock columns are zeroed, so the gate pins results
# and scheduling shape (rounds, steps), not machine speed.
"${build_dir}/bench/micro_sessions" --quick --threads 4 --no-timing \
  --out "${out_dir}/BENCH_micro_sessions.json"

# google-benchmark timings; the perf gate normalizes by a reference
# benchmark (BM_Cholesky/64) to cancel absolute machine speed.
"${build_dir}/bench/micro_gp" --benchmark_min_time=0.05 \
  --benchmark_out="${out_dir}/BENCH_micro_gp.json" \
  --benchmark_out_format=json

echo "baselines regenerated under ${out_dir}/"
