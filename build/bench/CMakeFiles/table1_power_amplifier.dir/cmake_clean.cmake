file(REMOVE_RECURSE
  "CMakeFiles/table1_power_amplifier.dir/table1_power_amplifier.cpp.o"
  "CMakeFiles/table1_power_amplifier.dir/table1_power_amplifier.cpp.o.d"
  "table1_power_amplifier"
  "table1_power_amplifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_power_amplifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
