# Empty dependencies file for table1_power_amplifier.
# This may be replaced when dependencies are built.
