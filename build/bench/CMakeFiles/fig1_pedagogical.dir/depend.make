# Empty dependencies file for fig1_pedagogical.
# This may be replaced when dependencies are built.
