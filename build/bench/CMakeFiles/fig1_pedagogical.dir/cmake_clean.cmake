file(REMOVE_RECURSE
  "CMakeFiles/fig1_pedagogical.dir/fig1_pedagogical.cpp.o"
  "CMakeFiles/fig1_pedagogical.dir/fig1_pedagogical.cpp.o.d"
  "fig1_pedagogical"
  "fig1_pedagogical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_pedagogical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
