# Empty compiler generated dependencies file for micro_circuit.
# This may be replaced when dependencies are built.
