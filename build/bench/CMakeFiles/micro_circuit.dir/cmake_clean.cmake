file(REMOVE_RECURSE
  "CMakeFiles/micro_circuit.dir/micro_circuit.cpp.o"
  "CMakeFiles/micro_circuit.dir/micro_circuit.cpp.o.d"
  "micro_circuit"
  "micro_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
