file(REMOVE_RECURSE
  "CMakeFiles/ablation_msp.dir/ablation_msp.cpp.o"
  "CMakeFiles/ablation_msp.dir/ablation_msp.cpp.o.d"
  "ablation_msp"
  "ablation_msp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_msp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
