# Empty dependencies file for ablation_msp.
# This may be replaced when dependencies are built.
