
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_gamma.cpp" "bench/CMakeFiles/ablation_gamma.dir/ablation_gamma.cpp.o" "gcc" "bench/CMakeFiles/ablation_gamma.dir/ablation_gamma.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bo/CMakeFiles/mfbo_bo.dir/DependInfo.cmake"
  "/root/repo/build/src/problems/CMakeFiles/mfbo_problems.dir/DependInfo.cmake"
  "/root/repo/build/src/mf/CMakeFiles/mfbo_mf.dir/DependInfo.cmake"
  "/root/repo/build/src/gp/CMakeFiles/mfbo_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/mfbo_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/mfbo_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/mfbo_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
