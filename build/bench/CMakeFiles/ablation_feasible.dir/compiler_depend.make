# Empty compiler generated dependencies file for ablation_feasible.
# This may be replaced when dependencies are built.
