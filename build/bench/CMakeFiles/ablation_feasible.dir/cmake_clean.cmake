file(REMOVE_RECURSE
  "CMakeFiles/ablation_feasible.dir/ablation_feasible.cpp.o"
  "CMakeFiles/ablation_feasible.dir/ablation_feasible.cpp.o.d"
  "ablation_feasible"
  "ablation_feasible.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_feasible.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
