# Empty compiler generated dependencies file for fig2_acquisition.
# This may be replaced when dependencies are built.
