file(REMOVE_RECURSE
  "CMakeFiles/table2_charge_pump.dir/table2_charge_pump.cpp.o"
  "CMakeFiles/table2_charge_pump.dir/table2_charge_pump.cpp.o.d"
  "table2_charge_pump"
  "table2_charge_pump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_charge_pump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
