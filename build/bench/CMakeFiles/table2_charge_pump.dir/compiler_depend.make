# Empty compiler generated dependencies file for table2_charge_pump.
# This may be replaced when dependencies are built.
