file(REMOVE_RECURSE
  "CMakeFiles/opamp_synthesis.dir/opamp_synthesis.cpp.o"
  "CMakeFiles/opamp_synthesis.dir/opamp_synthesis.cpp.o.d"
  "opamp_synthesis"
  "opamp_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opamp_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
