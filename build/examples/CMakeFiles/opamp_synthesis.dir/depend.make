# Empty dependencies file for opamp_synthesis.
# This may be replaced when dependencies are built.
