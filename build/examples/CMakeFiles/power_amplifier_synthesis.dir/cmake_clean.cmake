file(REMOVE_RECURSE
  "CMakeFiles/power_amplifier_synthesis.dir/power_amplifier_synthesis.cpp.o"
  "CMakeFiles/power_amplifier_synthesis.dir/power_amplifier_synthesis.cpp.o.d"
  "power_amplifier_synthesis"
  "power_amplifier_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_amplifier_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
