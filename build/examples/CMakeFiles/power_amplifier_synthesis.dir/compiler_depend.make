# Empty compiler generated dependencies file for power_amplifier_synthesis.
# This may be replaced when dependencies are built.
