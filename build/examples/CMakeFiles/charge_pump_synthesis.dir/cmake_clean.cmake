file(REMOVE_RECURSE
  "CMakeFiles/charge_pump_synthesis.dir/charge_pump_synthesis.cpp.o"
  "CMakeFiles/charge_pump_synthesis.dir/charge_pump_synthesis.cpp.o.d"
  "charge_pump_synthesis"
  "charge_pump_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charge_pump_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
