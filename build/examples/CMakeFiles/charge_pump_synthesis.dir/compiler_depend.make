# Empty compiler generated dependencies file for charge_pump_synthesis.
# This may be replaced when dependencies are built.
