file(REMOVE_RECURSE
  "CMakeFiles/mfbo_gp.dir/gp_regressor.cpp.o"
  "CMakeFiles/mfbo_gp.dir/gp_regressor.cpp.o.d"
  "CMakeFiles/mfbo_gp.dir/kernel.cpp.o"
  "CMakeFiles/mfbo_gp.dir/kernel.cpp.o.d"
  "libmfbo_gp.a"
  "libmfbo_gp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfbo_gp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
