# Empty compiler generated dependencies file for mfbo_gp.
# This may be replaced when dependencies are built.
