file(REMOVE_RECURSE
  "libmfbo_gp.a"
)
