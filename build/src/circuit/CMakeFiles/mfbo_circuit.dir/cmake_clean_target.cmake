file(REMOVE_RECURSE
  "libmfbo_circuit.a"
)
