
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/ac.cpp" "src/circuit/CMakeFiles/mfbo_circuit.dir/ac.cpp.o" "gcc" "src/circuit/CMakeFiles/mfbo_circuit.dir/ac.cpp.o.d"
  "/root/repo/src/circuit/devices.cpp" "src/circuit/CMakeFiles/mfbo_circuit.dir/devices.cpp.o" "gcc" "src/circuit/CMakeFiles/mfbo_circuit.dir/devices.cpp.o.d"
  "/root/repo/src/circuit/fft.cpp" "src/circuit/CMakeFiles/mfbo_circuit.dir/fft.cpp.o" "gcc" "src/circuit/CMakeFiles/mfbo_circuit.dir/fft.cpp.o.d"
  "/root/repo/src/circuit/linearize.cpp" "src/circuit/CMakeFiles/mfbo_circuit.dir/linearize.cpp.o" "gcc" "src/circuit/CMakeFiles/mfbo_circuit.dir/linearize.cpp.o.d"
  "/root/repo/src/circuit/measure.cpp" "src/circuit/CMakeFiles/mfbo_circuit.dir/measure.cpp.o" "gcc" "src/circuit/CMakeFiles/mfbo_circuit.dir/measure.cpp.o.d"
  "/root/repo/src/circuit/netlist.cpp" "src/circuit/CMakeFiles/mfbo_circuit.dir/netlist.cpp.o" "gcc" "src/circuit/CMakeFiles/mfbo_circuit.dir/netlist.cpp.o.d"
  "/root/repo/src/circuit/parser.cpp" "src/circuit/CMakeFiles/mfbo_circuit.dir/parser.cpp.o" "gcc" "src/circuit/CMakeFiles/mfbo_circuit.dir/parser.cpp.o.d"
  "/root/repo/src/circuit/pvt.cpp" "src/circuit/CMakeFiles/mfbo_circuit.dir/pvt.cpp.o" "gcc" "src/circuit/CMakeFiles/mfbo_circuit.dir/pvt.cpp.o.d"
  "/root/repo/src/circuit/simulator.cpp" "src/circuit/CMakeFiles/mfbo_circuit.dir/simulator.cpp.o" "gcc" "src/circuit/CMakeFiles/mfbo_circuit.dir/simulator.cpp.o.d"
  "/root/repo/src/circuit/waveform.cpp" "src/circuit/CMakeFiles/mfbo_circuit.dir/waveform.cpp.o" "gcc" "src/circuit/CMakeFiles/mfbo_circuit.dir/waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/mfbo_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
