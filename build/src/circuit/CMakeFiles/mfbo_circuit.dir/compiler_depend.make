# Empty compiler generated dependencies file for mfbo_circuit.
# This may be replaced when dependencies are built.
