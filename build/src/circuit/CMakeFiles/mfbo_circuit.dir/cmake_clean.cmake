file(REMOVE_RECURSE
  "CMakeFiles/mfbo_circuit.dir/ac.cpp.o"
  "CMakeFiles/mfbo_circuit.dir/ac.cpp.o.d"
  "CMakeFiles/mfbo_circuit.dir/devices.cpp.o"
  "CMakeFiles/mfbo_circuit.dir/devices.cpp.o.d"
  "CMakeFiles/mfbo_circuit.dir/fft.cpp.o"
  "CMakeFiles/mfbo_circuit.dir/fft.cpp.o.d"
  "CMakeFiles/mfbo_circuit.dir/linearize.cpp.o"
  "CMakeFiles/mfbo_circuit.dir/linearize.cpp.o.d"
  "CMakeFiles/mfbo_circuit.dir/measure.cpp.o"
  "CMakeFiles/mfbo_circuit.dir/measure.cpp.o.d"
  "CMakeFiles/mfbo_circuit.dir/netlist.cpp.o"
  "CMakeFiles/mfbo_circuit.dir/netlist.cpp.o.d"
  "CMakeFiles/mfbo_circuit.dir/parser.cpp.o"
  "CMakeFiles/mfbo_circuit.dir/parser.cpp.o.d"
  "CMakeFiles/mfbo_circuit.dir/pvt.cpp.o"
  "CMakeFiles/mfbo_circuit.dir/pvt.cpp.o.d"
  "CMakeFiles/mfbo_circuit.dir/simulator.cpp.o"
  "CMakeFiles/mfbo_circuit.dir/simulator.cpp.o.d"
  "CMakeFiles/mfbo_circuit.dir/waveform.cpp.o"
  "CMakeFiles/mfbo_circuit.dir/waveform.cpp.o.d"
  "libmfbo_circuit.a"
  "libmfbo_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfbo_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
