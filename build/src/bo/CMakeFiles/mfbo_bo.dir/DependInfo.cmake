
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bo/acquisition.cpp" "src/bo/CMakeFiles/mfbo_bo.dir/acquisition.cpp.o" "gcc" "src/bo/CMakeFiles/mfbo_bo.dir/acquisition.cpp.o.d"
  "/root/repo/src/bo/common.cpp" "src/bo/CMakeFiles/mfbo_bo.dir/common.cpp.o" "gcc" "src/bo/CMakeFiles/mfbo_bo.dir/common.cpp.o.d"
  "/root/repo/src/bo/de_baseline.cpp" "src/bo/CMakeFiles/mfbo_bo.dir/de_baseline.cpp.o" "gcc" "src/bo/CMakeFiles/mfbo_bo.dir/de_baseline.cpp.o.d"
  "/root/repo/src/bo/gaspad.cpp" "src/bo/CMakeFiles/mfbo_bo.dir/gaspad.cpp.o" "gcc" "src/bo/CMakeFiles/mfbo_bo.dir/gaspad.cpp.o.d"
  "/root/repo/src/bo/mfbo.cpp" "src/bo/CMakeFiles/mfbo_bo.dir/mfbo.cpp.o" "gcc" "src/bo/CMakeFiles/mfbo_bo.dir/mfbo.cpp.o.d"
  "/root/repo/src/bo/weibo.cpp" "src/bo/CMakeFiles/mfbo_bo.dir/weibo.cpp.o" "gcc" "src/bo/CMakeFiles/mfbo_bo.dir/weibo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mf/CMakeFiles/mfbo_mf.dir/DependInfo.cmake"
  "/root/repo/build/src/gp/CMakeFiles/mfbo_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/mfbo_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/mfbo_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
