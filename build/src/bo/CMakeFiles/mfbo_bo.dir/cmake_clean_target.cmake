file(REMOVE_RECURSE
  "libmfbo_bo.a"
)
