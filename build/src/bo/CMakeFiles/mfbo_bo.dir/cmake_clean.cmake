file(REMOVE_RECURSE
  "CMakeFiles/mfbo_bo.dir/acquisition.cpp.o"
  "CMakeFiles/mfbo_bo.dir/acquisition.cpp.o.d"
  "CMakeFiles/mfbo_bo.dir/common.cpp.o"
  "CMakeFiles/mfbo_bo.dir/common.cpp.o.d"
  "CMakeFiles/mfbo_bo.dir/de_baseline.cpp.o"
  "CMakeFiles/mfbo_bo.dir/de_baseline.cpp.o.d"
  "CMakeFiles/mfbo_bo.dir/gaspad.cpp.o"
  "CMakeFiles/mfbo_bo.dir/gaspad.cpp.o.d"
  "CMakeFiles/mfbo_bo.dir/mfbo.cpp.o"
  "CMakeFiles/mfbo_bo.dir/mfbo.cpp.o.d"
  "CMakeFiles/mfbo_bo.dir/weibo.cpp.o"
  "CMakeFiles/mfbo_bo.dir/weibo.cpp.o.d"
  "libmfbo_bo.a"
  "libmfbo_bo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfbo_bo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
