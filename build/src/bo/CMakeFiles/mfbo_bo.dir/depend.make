# Empty dependencies file for mfbo_bo.
# This may be replaced when dependencies are built.
