# Empty compiler generated dependencies file for mfbo_linalg.
# This may be replaced when dependencies are built.
