file(REMOVE_RECURSE
  "libmfbo_linalg.a"
)
