file(REMOVE_RECURSE
  "CMakeFiles/mfbo_linalg.dir/cholesky.cpp.o"
  "CMakeFiles/mfbo_linalg.dir/cholesky.cpp.o.d"
  "CMakeFiles/mfbo_linalg.dir/matrix.cpp.o"
  "CMakeFiles/mfbo_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/mfbo_linalg.dir/rng.cpp.o"
  "CMakeFiles/mfbo_linalg.dir/rng.cpp.o.d"
  "CMakeFiles/mfbo_linalg.dir/sampling.cpp.o"
  "CMakeFiles/mfbo_linalg.dir/sampling.cpp.o.d"
  "CMakeFiles/mfbo_linalg.dir/stats.cpp.o"
  "CMakeFiles/mfbo_linalg.dir/stats.cpp.o.d"
  "CMakeFiles/mfbo_linalg.dir/vector.cpp.o"
  "CMakeFiles/mfbo_linalg.dir/vector.cpp.o.d"
  "libmfbo_linalg.a"
  "libmfbo_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfbo_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
