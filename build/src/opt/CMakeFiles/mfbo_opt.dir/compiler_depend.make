# Empty compiler generated dependencies file for mfbo_opt.
# This may be replaced when dependencies are built.
