file(REMOVE_RECURSE
  "CMakeFiles/mfbo_opt.dir/de.cpp.o"
  "CMakeFiles/mfbo_opt.dir/de.cpp.o.d"
  "CMakeFiles/mfbo_opt.dir/lbfgs.cpp.o"
  "CMakeFiles/mfbo_opt.dir/lbfgs.cpp.o.d"
  "CMakeFiles/mfbo_opt.dir/multistart.cpp.o"
  "CMakeFiles/mfbo_opt.dir/multistart.cpp.o.d"
  "CMakeFiles/mfbo_opt.dir/nelder_mead.cpp.o"
  "CMakeFiles/mfbo_opt.dir/nelder_mead.cpp.o.d"
  "CMakeFiles/mfbo_opt.dir/objective.cpp.o"
  "CMakeFiles/mfbo_opt.dir/objective.cpp.o.d"
  "libmfbo_opt.a"
  "libmfbo_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfbo_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
