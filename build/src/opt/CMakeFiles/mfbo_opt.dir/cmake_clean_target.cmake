file(REMOVE_RECURSE
  "libmfbo_opt.a"
)
