# Empty dependencies file for mfbo_mf.
# This may be replaced when dependencies are built.
