# Empty compiler generated dependencies file for mfbo_mf.
# This may be replaced when dependencies are built.
