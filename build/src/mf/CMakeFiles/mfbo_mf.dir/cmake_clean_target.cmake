file(REMOVE_RECURSE
  "libmfbo_mf.a"
)
