
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mf/ar1.cpp" "src/mf/CMakeFiles/mfbo_mf.dir/ar1.cpp.o" "gcc" "src/mf/CMakeFiles/mfbo_mf.dir/ar1.cpp.o.d"
  "/root/repo/src/mf/multilevel.cpp" "src/mf/CMakeFiles/mfbo_mf.dir/multilevel.cpp.o" "gcc" "src/mf/CMakeFiles/mfbo_mf.dir/multilevel.cpp.o.d"
  "/root/repo/src/mf/nargp.cpp" "src/mf/CMakeFiles/mfbo_mf.dir/nargp.cpp.o" "gcc" "src/mf/CMakeFiles/mfbo_mf.dir/nargp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gp/CMakeFiles/mfbo_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/mfbo_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/mfbo_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
