file(REMOVE_RECURSE
  "CMakeFiles/mfbo_mf.dir/ar1.cpp.o"
  "CMakeFiles/mfbo_mf.dir/ar1.cpp.o.d"
  "CMakeFiles/mfbo_mf.dir/multilevel.cpp.o"
  "CMakeFiles/mfbo_mf.dir/multilevel.cpp.o.d"
  "CMakeFiles/mfbo_mf.dir/nargp.cpp.o"
  "CMakeFiles/mfbo_mf.dir/nargp.cpp.o.d"
  "libmfbo_mf.a"
  "libmfbo_mf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfbo_mf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
