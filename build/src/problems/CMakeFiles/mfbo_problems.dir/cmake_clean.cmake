file(REMOVE_RECURSE
  "CMakeFiles/mfbo_problems.dir/charge_pump.cpp.o"
  "CMakeFiles/mfbo_problems.dir/charge_pump.cpp.o.d"
  "CMakeFiles/mfbo_problems.dir/opamp.cpp.o"
  "CMakeFiles/mfbo_problems.dir/opamp.cpp.o.d"
  "CMakeFiles/mfbo_problems.dir/power_amplifier.cpp.o"
  "CMakeFiles/mfbo_problems.dir/power_amplifier.cpp.o.d"
  "CMakeFiles/mfbo_problems.dir/synthetic.cpp.o"
  "CMakeFiles/mfbo_problems.dir/synthetic.cpp.o.d"
  "libmfbo_problems.a"
  "libmfbo_problems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfbo_problems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
