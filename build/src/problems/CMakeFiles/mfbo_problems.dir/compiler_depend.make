# Empty compiler generated dependencies file for mfbo_problems.
# This may be replaced when dependencies are built.
