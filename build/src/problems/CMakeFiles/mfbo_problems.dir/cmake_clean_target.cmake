file(REMOVE_RECURSE
  "libmfbo_problems.a"
)
