file(REMOVE_RECURSE
  "CMakeFiles/test_ac.dir/test_ac.cpp.o"
  "CMakeFiles/test_ac.dir/test_ac.cpp.o.d"
  "test_ac"
  "test_ac.pdb"
  "test_ac[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
