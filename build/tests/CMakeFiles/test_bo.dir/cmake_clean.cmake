file(REMOVE_RECURSE
  "CMakeFiles/test_bo.dir/test_bo.cpp.o"
  "CMakeFiles/test_bo.dir/test_bo.cpp.o.d"
  "test_bo"
  "test_bo.pdb"
  "test_bo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
