# Empty compiler generated dependencies file for test_bo.
# This may be replaced when dependencies are built.
