file(REMOVE_RECURSE
  "CMakeFiles/test_mf.dir/test_mf.cpp.o"
  "CMakeFiles/test_mf.dir/test_mf.cpp.o.d"
  "test_mf"
  "test_mf.pdb"
  "test_mf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
