# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_opt[1]_include.cmake")
include("/root/repo/build/tests/test_gp[1]_include.cmake")
include("/root/repo/build/tests/test_mf[1]_include.cmake")
include("/root/repo/build/tests/test_acquisition[1]_include.cmake")
include("/root/repo/build/tests/test_bo[1]_include.cmake")
include("/root/repo/build/tests/test_circuit[1]_include.cmake")
include("/root/repo/build/tests/test_problems[1]_include.cmake")
include("/root/repo/build/tests/test_multilevel[1]_include.cmake")
include("/root/repo/build/tests/test_ac[1]_include.cmake")
include("/root/repo/build/tests/test_opamp[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_parser[1]_include.cmake")
include("/root/repo/build/tests/test_controlled[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
