// Power-amplifier synthesis (the paper's §5.1 experiment, one run).
//
// Sizes a 2.4 GHz class-AB PA — design variables Cs, Cp, W, Vdd, Vb — to
// maximize drain efficiency subject to Pout > 23 dBm and thd < 13.65 dB.
// The low fidelity is a 20×-cheaper short transient; Algorithm 1 decides
// per query point which fidelity to spend.
//
// Usage: ./power_amplifier_synthesis [--verbose] [budget] [seed]
//   --verbose — print one progress line per BO iteration to stderr
//   budget    — equivalent high-fidelity simulations (default 40)
//   seed      — RNG seed (default 1)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bo/mfbo.h"
#include "problems/power_amplifier.h"

int main(int argc, char** argv) {
  using namespace mfbo;

  bool verbose = false;
  std::vector<const char*> pos;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verbose") == 0)
      verbose = true;
    else
      pos.push_back(argv[i]);
  }
  const double budget = !pos.empty() ? std::atof(pos[0]) : 40.0;
  const std::uint64_t seed =
      pos.size() > 1 ? std::strtoull(pos[1], nullptr, 10) : 1;

  problems::PowerAmplifierProblem problem;

  bo::MfboOptions options;
  options.n_init_low = 10;   // paper: 10 low-fidelity initial points
  options.n_init_high = 5;   // paper: 5 high-fidelity initial points
  options.budget = budget;
  options.retrain_every = 2;
  if (verbose) options.observer = bo::stderrProgressObserver();

  std::printf("synthesizing power amplifier (budget %.0f equivalent sims, "
              "seed %llu)...\n",
              budget, static_cast<unsigned long long>(seed));
  bo::MfboSynthesizer mfbo(options);
  const bo::SynthesisResult result = mfbo.run(problem, seed);

  const auto perf =
      problem.simulate(result.best_x, bo::Fidelity::kHigh);
  std::printf("\n=== best design found ===\n");
  std::printf("Cs  = %.3f pF\n", result.best_x[0] * 1e12);
  std::printf("Cp  = %.3f pF\n", result.best_x[1] * 1e12);
  std::printf("W   = %.3f mm\n", result.best_x[2] * 1e3);
  std::printf("Vdd = %.3f V\n", result.best_x[3]);
  std::printf("Vb  = %.3f V\n", result.best_x[4]);
  std::printf("\n=== measured performance (high fidelity) ===\n");
  std::printf("Eff  = %.2f %%\n", perf.eff);
  std::printf("Pout = %.2f dBm   (spec > %.2f)\n", perf.pout_dbm,
              problems::PowerAmplifierProblem::kPoutSpecDbm);
  std::printf("thd  = %.2f dB    (spec < %.2f)\n", perf.thd_db,
              problems::PowerAmplifierProblem::kThdSpecDb);
  std::printf("feasible: %s\n", result.feasible_found ? "yes" : "no");
  std::printf("\ncost: %zu low + %zu high evaluations = %.1f equivalent "
              "high-fidelity simulations\n",
              result.n_low, result.n_high, result.equivalent_high_sims);
  return 0;
}
