// Op-amp synthesis: size a two-stage Miller OTA with multi-fidelity BO.
//
// Demonstrates the AC-analysis path of the circuit engine: the low
// fidelity is textbook hand analysis at the DC operating point, the high
// fidelity a full AC sweep. Maximize DC gain subject to UGF > 20 MHz,
// PM > 60° and power < 1 mW.
//
// Usage: ./opamp_synthesis [--verbose] [budget] [seed]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bo/mfbo.h"
#include "problems/opamp.h"

int main(int argc, char** argv) {
  using namespace mfbo;

  bool verbose = false;
  std::vector<const char*> pos;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verbose") == 0)
      verbose = true;
    else
      pos.push_back(argv[i]);
  }
  const double budget = !pos.empty() ? std::atof(pos[0]) : 30.0;
  const std::uint64_t seed =
      pos.size() > 1 ? std::strtoull(pos[1], nullptr, 10) : 1;

  problems::OpampProblem problem;

  bo::MfboOptions options;
  options.n_init_low = 20;
  options.n_init_high = 6;
  options.budget = budget;
  options.retrain_every = 2;
  if (verbose) options.observer = bo::stderrProgressObserver();

  std::printf("synthesizing two-stage op-amp (budget %.0f, seed %llu)...\n",
              budget, static_cast<unsigned long long>(seed));
  const bo::SynthesisResult r =
      bo::MfboSynthesizer(options).run(problem, seed);

  const auto perf = problem.simulate(r.best_x, bo::Fidelity::kHigh);
  std::printf("\n=== best design ===\n");
  static const char* kNames[10] = {"W_tail", "W_in",  "W_mirror", "W_out_n",
                                   "W_out_p", "L_in", "L_mirror", "L_out",
                                   "C_c",     "I_bias"};
  for (int i = 0; i < 10; ++i) {
    const double v = r.best_x[static_cast<std::size_t>(i)];
    if (i < 8) {
      std::printf("  %-9s = %7.2f um\n", kNames[i], v * 1e6);
    } else if (i == 8) {
      std::printf("  %-9s = %7.2f pF\n", kNames[i], v * 1e12);
    } else {
      std::printf("  %-9s = %7.2f uA\n", kNames[i], v * 1e6);
    }
  }
  std::printf("\n=== measured (full AC) ===\n");
  std::printf("  gain  = %.2f dB\n", perf.gain_db);
  std::printf("  UGF   = %.2f MHz (spec > %.0f)\n", perf.ugf_hz / 1e6,
              problems::OpampProblem::kMinUgfMhz);
  std::printf("  PM    = %.2f deg (spec > %.0f)\n", perf.pm_deg,
              problems::OpampProblem::kMinPmDeg);
  std::printf("  power = %.3f mW (spec < %.1f)\n", perf.power_mw,
              problems::OpampProblem::kMaxPowerMw);
  std::printf("  feasible: %s\n", r.feasible_found ? "yes" : "no");
  std::printf("\ncost: %zu low + %zu high = %.1f equivalent sims\n", r.n_low,
              r.n_high, r.equivalent_high_sims);
  return 0;
}
