// Charge-pump synthesis (the paper's §5.2 experiment, one run).
//
// Sizes the 18 transistors (36 W/L variables) of a steering charge pump so
// that the UP/DN currents stay in a tight window around 40 µA across all
// 27 PVT corners. High fidelity = all corners; low fidelity = the nominal
// corner only (27× cheaper).
//
// Usage: ./charge_pump_synthesis [--verbose] [budget] [seed]
//   --verbose — print one progress line per BO iteration to stderr
//   budget    — equivalent high-fidelity simulations (default 60)
//   seed      — RNG seed (default 1)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bo/mfbo.h"
#include "problems/charge_pump.h"

int main(int argc, char** argv) {
  using namespace mfbo;

  bool verbose = false;
  std::vector<const char*> pos;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verbose") == 0)
      verbose = true;
    else
      pos.push_back(argv[i]);
  }
  const double budget = !pos.empty() ? std::atof(pos[0]) : 60.0;
  const std::uint64_t seed =
      pos.size() > 1 ? std::strtoull(pos[1], nullptr, 10) : 1;

  problems::ChargePumpProblem problem;

  bo::MfboOptions options;
  options.n_init_low = 30;   // paper: 30 low-fidelity initial points
  options.n_init_high = 10;  // paper: 10 high-fidelity initial points
  options.budget = budget;
  options.retrain_every = 3;  // 36-dim GPs retrain less frequently
  if (verbose) options.observer = bo::stderrProgressObserver();

  std::printf("synthesizing charge pump (budget %.0f equivalent sims, "
              "seed %llu)...\n",
              budget, static_cast<unsigned long long>(seed));
  bo::MfboSynthesizer mfbo(options);
  const bo::SynthesisResult result = mfbo.run(problem, seed);

  const auto perf = problem.simulate(result.best_x, bo::Fidelity::kHigh);
  std::printf("\n=== best design found ===\n");
  std::printf("      %-12s %-10s %-10s\n", "device", "W (um)", "L (um)");
  static const char* kNames[18] = {
      "mn_b1",  "mn_b2",    "m2",       "mn_cas",   "mn_sw_dn", "mn_sw_dnb",
      "mn_pb",  "mn_pb_cas", "mn_pb2",  "mp_b1",    "mp_b2a",   "mp_b2b",
      "m1",     "mp_cas",   "mp_sw_up", "mp_sw_upb", "mp_rep",  "mp_dl"};
  for (int i = 0; i < 18; ++i)
    std::printf("      %-12s %-10.3f %-10.3f\n", kNames[i],
                result.best_x[static_cast<std::size_t>(i)] * 1e6,
                result.best_x[static_cast<std::size_t>(18 + i)] * 1e6);

  std::printf("\n=== performance across 27 PVT corners ===\n");
  std::printf("max_diff1 = %6.2f uA (spec < 20)\n", perf.max_diff1);
  std::printf("max_diff2 = %6.2f uA (spec < 20)\n", perf.max_diff2);
  std::printf("max_diff3 = %6.2f uA (spec <  5)\n", perf.max_diff3);
  std::printf("max_diff4 = %6.2f uA (spec <  5)\n", perf.max_diff4);
  std::printf("deviation = %6.2f uA (spec <  5)\n", perf.deviation);
  std::printf("FOM       = %6.2f\n", perf.fom);
  std::printf("feasible: %s\n", result.feasible_found ? "yes" : "no");
  std::printf("\ncost: %zu low + %zu high evaluations = %.1f equivalent "
              "high-fidelity simulations\n",
              result.n_low, result.n_high, result.equivalent_high_sims);
  return 0;
}
