// Bring your own circuit: wrap a custom MNA netlist as an optimization
// problem with LambdaProblem.
//
// The example sizes a two-stage resistively-loaded NMOS amplifier: pick
// the two drain resistors and the two device widths so that the DC gain is
// maximized while the output bias sits near mid-rail and the total supply
// current stays under 2 mA. Low fidelity = small-signal gain from a cheap
// two-point DC difference; high fidelity = a transient sine test measuring
// the actual fundamental gain (and distortion-aware, since clipping
// reduces it).
//
// Usage: ./custom_circuit [--verbose] [budget]
//   --verbose — print one progress line per BO iteration to stderr
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bo/mfbo.h"
#include "circuit/measure.h"
#include "circuit/netlist.h"
#include "circuit/simulator.h"
#include "problems/synthetic.h"

namespace {

using namespace mfbo;
using namespace mfbo::circuit;

constexpr double kVdd = 3.0;
constexpr double kF0 = 1e6;     // test tone
constexpr double kAmpl = 2e-3;  // 2 mV input tone

struct AmpDeck {
  Netlist netlist;
  NodeId out = kGround;
  std::size_t vdd_index = 0;
};

/// x = [Rd1 (Ω), Rd2 (Ω), W1 (m), W2 (m)].
AmpDeck buildAmplifier(const bo::Vector& x, double input_ampl) {
  AmpDeck deck;
  Netlist& n = deck.netlist;
  const NodeId vdd = n.node("vdd"), in = n.node("in"), d1 = n.node("d1"),
               g2 = n.node("g2");
  deck.out = n.node("out");

  deck.vdd_index = n.addVSource("vdd", vdd, kGround, Waveform::dc(kVdd));
  n.addVSource("vin", in, kGround, Waveform::sine(0.75, input_ampl, kF0));

  MosfetParams m;
  m.vt0 = 0.6;
  m.kp = 1e-4;
  m.lambda = 0.02;
  m.l = 1e-6;

  m.w = x[2];
  n.addMosfet("m1", d1, in, kGround, m);
  n.addResistor("rd1", vdd, d1, x[0]);
  // AC-coupled second stage with its own bias divider.
  n.addCapacitor("cc", d1, g2, 10e-9);
  n.addResistor("rb1", vdd, g2, 300e3);
  n.addResistor("rb2", g2, kGround, 100e3);
  m.w = x[3];
  n.addMosfet("m2", deck.out, g2, kGround, m);
  n.addResistor("rd2", vdd, deck.out, x[1]);
  return deck;
}

bo::Evaluation evaluateAmplifier(const bo::Vector& x, bo::Fidelity fidelity) {
  bo::Evaluation e;
  if (fidelity == bo::Fidelity::kLow) {
    // Cheap estimate: product of per-stage small-signal gains from two DC
    // solves — ignores coupling, bias shift under drive, and clipping.
    AmpDeck deck = buildAmplifier(x, 0.0);
    Simulator sim(deck.netlist);
    const DcResult dc = sim.dcOperatingPoint();
    if (!dc.converged) {
      e.objective = 100.0;
      e.constraints = {10.0, 10.0};
      return e;
    }
    const double id1 = sim.mosfetCurrent(dc.solution, 0);
    const double id2 = sim.mosfetCurrent(dc.solution, 1);
    const double gm1 = std::sqrt(2.0 * 1e-4 * (x[2] / 1e-6) *
                                 std::max(id1, 1e-9));
    const double gm2 = std::sqrt(2.0 * 1e-4 * (x[3] / 1e-6) *
                                 std::max(id2, 1e-9));
    const double gain = gm1 * x[0] * gm2 * x[1];
    const double v_out = dc.solution[static_cast<std::size_t>(deck.out)];
    const double i_supply = -sim.vsourceCurrent(dc.solution, deck.vdd_index);
    e.objective = -20.0 * std::log10(std::max(gain, 1e-6));
    e.constraints = {std::abs(v_out - kVdd / 2.0) - 0.6,  // bias window
                     (i_supply - 2e-3) * 1e3};            // ≤ 2 mA
    return e;
  }

  // High fidelity: measure the fundamental gain with a transient tone.
  AmpDeck deck = buildAmplifier(x, kAmpl);
  Simulator sim(deck.netlist);
  const TransientResult tr = sim.transient(20.0 / kF0, 1.0 / (200.0 * kF0));
  if (!tr.converged) {
    e.objective = 100.0;
    e.constraints = {10.0, 10.0};
    return e;
  }
  const auto h = nodeHarmonics(tr, deck.out, kF0, 3, 10.0 / kF0);
  const double gain = h[1].magnitude / kAmpl;
  const double v_out_dc = h[0].magnitude;
  const double i_supply = -sim.vsourceCurrent(tr.solution.back(),
                                              deck.vdd_index);
  e.objective = -20.0 * std::log10(std::max(gain, 1e-6));
  e.constraints = {std::abs(v_out_dc - kVdd / 2.0) - 0.6,
                   (i_supply - 2e-3) * 1e3};
  return e;
}

}  // namespace

int main(int argc, char** argv) {
  bool verbose = false;
  std::vector<const char*> pos;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verbose") == 0)
      verbose = true;
    else
      pos.push_back(argv[i]);
  }
  const double budget = !pos.empty() ? std::atof(pos[0]) : 30.0;

  problems::LambdaProblem problem(
      "two-stage-amplifier",
      bo::Box(bo::Vector{2e3, 2e3, 5e-6, 5e-6},
              bo::Vector{50e3, 50e3, 200e-6, 200e-6}),
      /*num_constraints=*/2, /*cost_ratio=*/15.0, evaluateAmplifier);

  bo::MfboOptions options;
  options.n_init_low = 16;
  options.n_init_high = 5;
  options.budget = budget;
  if (verbose) options.observer = bo::stderrProgressObserver();

  std::printf("sizing two-stage amplifier (budget %.0f)...\n", budget);
  const bo::SynthesisResult r =
      bo::MfboSynthesizer(options).run(problem, 7);

  std::printf("\n=== best design ===\n");
  std::printf("Rd1 = %.1f kΩ, Rd2 = %.1f kΩ, W1 = %.1f µm, W2 = %.1f µm\n",
              r.best_x[0] / 1e3, r.best_x[1] / 1e3, r.best_x[2] * 1e6,
              r.best_x[3] * 1e6);
  std::printf("gain = %.2f dB (feasible: %s)\n", -r.best_eval.objective,
              r.feasible_found ? "yes" : "no");
  std::printf("cost: %zu low + %zu high = %.1f equivalent sims\n", r.n_low,
              r.n_high, r.equivalent_high_sims);
  return 0;
}
