// Quickstart: multi-fidelity Bayesian optimization of a 1-d black box.
//
// The Forrester pair is the classic warm-up: an expensive function
// f_h(x) = (6x−2)²·sin(12x−4) and a cheap, systematically-biased
// approximation f_l. MFBO fuses both to find the minimum of f_h with a
// fraction of the high-fidelity evaluations a single-fidelity optimizer
// needs.
//
// Build & run:  ./quickstart [--verbose]
//   --verbose — print one progress line per BO iteration to stderr
#include <cstdio>
#include <cstring>

#include "bo/mfbo.h"
#include "bo/weibo.h"
#include "problems/synthetic.h"

int main(int argc, char** argv) {
  using namespace mfbo;

  bool verbose = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--verbose") == 0) verbose = true;

  problems::ForresterProblem problem;

  // Configure Algorithm 1: a cheap initial design at both fidelities and
  // a total budget of 15 equivalent high-fidelity simulations.
  bo::MfboOptions options;
  options.n_init_low = 12;
  options.n_init_high = 4;
  options.budget = 15.0;
  if (verbose) options.observer = bo::stderrProgressObserver();

  bo::MfboSynthesizer mfbo(options);
  const bo::SynthesisResult result = mfbo.run(problem, /*seed=*/42);

  std::printf("=== multi-fidelity BO on the Forrester function ===\n");
  std::printf("best x        : %.5f   (true optimum ~0.75725)\n",
              result.best_x[0]);
  std::printf("best f(x)     : %.5f   (true minimum ~-6.02074)\n",
              result.best_eval.objective);
  std::printf("low-fid evals : %zu\n", result.n_low);
  std::printf("high-fid evals: %zu\n", result.n_high);
  std::printf("equivalent high-fidelity simulations: %.2f\n",
              result.equivalent_high_sims);

  // Compare with the single-fidelity WEIBO baseline at the same budget.
  bo::WeiboOptions wopt;
  wopt.n_init = 8;
  wopt.max_sims = 15.0;
  if (verbose) wopt.observer = bo::stderrProgressObserver();
  const bo::SynthesisResult sf = bo::Weibo(wopt).run(problem, 42);
  std::printf("\nWEIBO (single-fidelity) at the same budget: f = %.5f\n",
              sf.best_eval.objective);
  std::printf("multi-fidelity advantage: %.5f\n",
              sf.best_eval.objective - result.best_eval.objective);
  return 0;
}
