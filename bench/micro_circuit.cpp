// Micro-benchmarks (google-benchmark): the circuit-simulation substrate —
// DC solves, PA transients at both fidelities, charge-pump corner sweeps,
// and harmonic analysis.
#include <benchmark/benchmark.h>

#include "circuit/fft.h"
#include "circuit/measure.h"
#include "circuit/netlist.h"
#include "circuit/pvt.h"
#include "circuit/simulator.h"
#include "problems/charge_pump.h"
#include "problems/power_amplifier.h"

namespace {

using namespace mfbo;
using namespace mfbo::circuit;

void BM_DcMosfetBias(benchmark::State& state) {
  Netlist n;
  const NodeId vdd = n.node("vdd"), d = n.node("d"), g = n.node("g");
  n.addVSource("vdd", vdd, kGround, Waveform::dc(3.0));
  n.addVSource("vg", g, kGround, Waveform::dc(1.0));
  n.addResistor("rd", vdd, d, 10e3);
  MosfetParams p;
  p.w = 10e-6;
  p.l = 1e-6;
  n.addMosfet("m1", d, g, kGround, p);
  Simulator sim(n);
  for (auto _ : state)
    benchmark::DoNotOptimize(sim.dcOperatingPoint().converged);
}
BENCHMARK(BM_DcMosfetBias);

void BM_PaTransient(benchmark::State& state) {
  problems::PowerAmplifierProblem pa;
  const bo::Vector x{6e-12, 2.3e-12, 4e-3, 1.8, 0.6};
  const bo::Fidelity f = state.range(0) == 0 ? bo::Fidelity::kLow
                                             : bo::Fidelity::kHigh;
  for (auto _ : state) benchmark::DoNotOptimize(pa.simulate(x, f).eff);
}
BENCHMARK(BM_PaTransient)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_ChargePumpEval(benchmark::State& state) {
  problems::ChargePumpProblem cp;
  const bo::Vector x = cp.referenceDesign();
  const bo::Fidelity f = state.range(0) == 0 ? bo::Fidelity::kLow
                                             : bo::Fidelity::kHigh;
  for (auto _ : state) benchmark::DoNotOptimize(cp.simulate(x, f).fom);
}
BENCHMARK(BM_ChargePumpEval)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_HarmonicAnalysis(benchmark::State& state) {
  const double f0 = 1e6, dt = 1.0 / (64.0 * f0);
  std::vector<double> samples;
  for (int i = 0; i <= 64 * 200; ++i) {
    const double t = i * dt;
    samples.push_back(std::sin(2 * M_PI * f0 * t) +
                      0.2 * std::sin(2 * M_PI * 2 * f0 * t));
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(
        harmonicAnalysis(samples, dt, f0, 5)[1].magnitude);
}
BENCHMARK(BM_HarmonicAnalysis);

void BM_FftRadix2(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<std::complex<double>> data(n);
  for (std::size_t i = 0; i < n; ++i)
    data[i] = std::sin(0.1 * static_cast<double>(i));
  for (auto _ : state) {
    auto copy = data;
    fftRadix2(copy);
    benchmark::DoNotOptimize(copy[1]);
  }
}
BENCHMARK(BM_FftRadix2)->Arg(1024)->Arg(8192);

}  // namespace

BENCHMARK_MAIN();
