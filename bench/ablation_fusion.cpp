// Ablation: is the *nonlinear* fusion necessary? (§3.1's motivating claim)
//
// Three surrogates are compared on identical data — NARGP (nonlinear map),
// AR(1) cokriging (linear map, Kennedy-O'Hagan), and a single-fidelity GP
// that ignores the cheap data — first as regressors (posterior RMSE), then
// inside the full Algorithm-1 loop (optimization outcome at a fixed
// budget). Two regimes: the pedagogical pair (quadratic low→high map,
// where linear fusion must fail) and the Forrester pair (affine map, where
// AR(1) is exactly right — the honest control).
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "bo/mfbo.h"
#include "gp/gp_regressor.h"
#include "mf/ar1.h"
#include "mf/nargp.h"
#include "problems/synthetic.h"

namespace {

using namespace mfbo;

double gridRmse(const std::function<double(double)>& truth,
                const std::function<gp::Prediction(double)>& model,
                double lo, double hi) {
  double acc = 0.0;
  const int n = 101;
  for (int i = 0; i < n; ++i) {
    const double x = lo + (hi - lo) * i / (n - 1.0);
    const double err = model(x).mean - truth(x);
    acc += err * err;
  }
  return std::sqrt(acc / n);
}

struct Pair {
  const char* name;
  double lo, hi;
  double (*f_low)(double);
  double (*f_high)(double);
};

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchConfig cfg = bench::parseArgs(argc, argv);

  const Pair pairs[2] = {
      {"pedagogical (nonlinear map)", -0.5, 0.5, problems::pedagogicalLow,
       problems::pedagogicalHigh},
      {"forrester (linear map)", 0.0, 1.0, problems::forresterLow,
       problems::forresterHigh},
  };

  std::printf("# Ablation: NARGP vs AR(1) vs single-fidelity GP\n\n");
  std::printf("## model quality (posterior RMSE, 40 low + 15 high points)\n");
  std::printf("%-30s %12s %12s %12s\n", "pair", "NARGP", "AR(1)", "SF-GP");

  for (const Pair& pair : pairs) {
    std::vector<linalg::Vector> xl, xh;
    std::vector<double> yl, yh;
    for (int i = 0; i < 40; ++i) {
      const double x = pair.lo + (pair.hi - pair.lo) * (i + 0.5) / 40.0;
      xl.push_back(linalg::Vector{x});
      yl.push_back(pair.f_low(x));
    }
    for (int i = 0; i < 15; ++i) {
      const double x = pair.lo + (pair.hi - pair.lo) * (i + 0.5) / 15.0;
      xh.push_back(linalg::Vector{x});
      yh.push_back(pair.f_high(x));
    }

    mf::NargpConfig ncfg;
    ncfg.seed = 3;
    mf::NargpModel nargp(1, ncfg);
    nargp.fit(xl, yl, xh, yh);
    mf::Ar1Model ar1(1);
    ar1.fit(xl, yl, xh, yh);
    gp::GpConfig gcfg;
    gcfg.seed = 5;
    gp::GpRegressor sf(std::make_unique<gp::SeArdKernel>(1), gcfg);
    sf.fit(xh, yh);

    const double r_nargp = gridRmse(
        pair.f_high,
        [&](double x) { return nargp.predictHigh(linalg::Vector{x}); },
        pair.lo, pair.hi);
    const double r_ar1 = gridRmse(
        pair.f_high,
        [&](double x) { return ar1.predictHigh(linalg::Vector{x}); },
        pair.lo, pair.hi);
    const double r_sf = gridRmse(
        pair.f_high, [&](double x) { return sf.predict(linalg::Vector{x}); },
        pair.lo, pair.hi);
    std::printf("%-30s %12.5f %12.5f %12.5f\n", pair.name, r_nargp, r_ar1,
                r_sf);
  }

  // Optimization outcome: Algorithm 1 with each surrogate.
  const std::size_t runs = cfg.runs(5, 10);
  const double budget = cfg.scale(12, 25);
  std::printf("\n## optimization (pedagogical problem, budget %.0f, "
              "%zu runs, mean best f; true min ≈ -1.3969)\n",
              budget, runs);

  bo::MfboOptions base;
  base.n_init_low = 12;
  base.n_init_high = 4;
  base.budget = budget;
  base.msp.n_starts = 10;
  base.msp.local.max_evaluations = 80;
  base.nargp.n_mc = 40;
  base.nargp.low.n_restarts = 1;
  base.nargp.high.n_restarts = 1;

  bo::MfboOptions with_ar1 = base;
  with_ar1.surrogate_factory = [](std::size_t d, std::uint64_t s) {
    mf::Ar1Config cfg;
    cfg.low.seed = s + 17;
    cfg.delta.seed = s + 31;
    cfg.low.n_restarts = 1;
    cfg.delta.n_restarts = 1;
    return std::make_unique<mf::Ar1Model>(d, cfg);
  };

  bench::AlgoStats nargp_stats{"mfbo_nargp"}, ar1_stats{"mfbo_ar1"};
  const auto fresh = [] { return problems::PedagogicalProblem(); };
  bench::runRepeats(nargp_stats, bo::MfboSynthesizer(base), fresh, runs, cfg);
  bench::runRepeats(ar1_stats, bo::MfboSynthesizer(with_ar1), fresh, runs,
                    cfg);
  std::printf("%-30s %12.5f\n", "Algorithm 1 + NARGP",
              linalg::mean(nargp_stats.objectives));
  std::printf("%-30s %12.5f\n", "Algorithm 1 + AR(1)",
              linalg::mean(ar1_stats.objectives));
  bench::writeArtifact(cfg, "ablation_fusion", runs,
                       {&nargp_stats, &ar1_stats});
  return 0;
}
