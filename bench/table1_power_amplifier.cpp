// Table 1 reproduction: power-amplifier synthesis, four algorithms.
//
// Paper setup (--full): Ours with a 150-equivalent-sim budget starting
// from 10 low + 5 high points; WEIBO with 40 initial and 150 total sims;
// GASPAD and DE with 300 sims; 12 repetitions. The quick default scales
// the budgets and repetitions down to finish on one core.
//
// Printed rows mirror the paper: thd / Pout of the median design,
// Eff mean/median/best/worst, Avg. # Sim (equivalent high-fidelity
// simulations to reach each run's final result), and success counts.
#include <cstdio>

#include "bench_common.h"
#include "bo/de_baseline.h"
#include "bo/gaspad.h"
#include "bo/mfbo.h"
#include "bo/weibo.h"
#include "problems/power_amplifier.h"

int main(int argc, char** argv) {
  using namespace mfbo;
  const bench::BenchConfig cfg = bench::parseArgs(argc, argv);
  const std::size_t runs = cfg.runs(3, 12);

  const double budget_ours = cfg.scale(50, 150);
  const double budget_weibo = cfg.scale(50, 150);
  const double budget_ea = cfg.scale(100, 300);

  problems::PowerAmplifierProblem problem;

  bo::MfboOptions mfbo_opt;
  mfbo_opt.n_init_low = 10;
  mfbo_opt.n_init_high = 5;
  mfbo_opt.budget = budget_ours;
  mfbo_opt.retrain_every = 2;
  mfbo_opt.msp.n_starts = cfg.full ? 20 : 12;
  mfbo_opt.msp.local.max_evaluations = cfg.full ? 150 : 80;
  mfbo_opt.nargp.n_mc = cfg.full ? 100 : 40;

  bo::WeiboOptions weibo_opt;
  weibo_opt.n_init = cfg.full ? 40 : 15;
  weibo_opt.max_sims = budget_weibo;
  weibo_opt.retrain_every = 2;
  weibo_opt.msp.n_starts = mfbo_opt.msp.n_starts;
  weibo_opt.msp.local.max_evaluations = mfbo_opt.msp.local.max_evaluations;

  bo::GaspadOptions gaspad_opt;
  gaspad_opt.n_init = cfg.full ? 40 : 20;
  gaspad_opt.max_sims = budget_ea;
  gaspad_opt.retrain_every = 2;

  bo::DeBaselineOptions de_opt;
  de_opt.population = cfg.full ? 30 : 20;
  de_opt.max_sims = budget_ea;

  bench::AlgoStats ours{"Ours"}, weibo{"WEIBO"}, gaspad{"GASPAD"}, de{"DE"};
  std::fprintf(stderr, "table1: %zu runs (%s mode), %zu threads\n", runs,
               cfg.mode(), parallel::maxThreads());
  const auto fresh = [] { return problems::PowerAmplifierProblem(); };
  bench::runRepeats(ours, bo::MfboSynthesizer(mfbo_opt), fresh, runs, cfg);
  std::fprintf(stderr, "  ours done\n");
  bench::runRepeats(weibo, bo::Weibo(weibo_opt), fresh, runs, cfg);
  std::fprintf(stderr, "  weibo done\n");
  bench::runRepeats(gaspad, bo::Gaspad(gaspad_opt), fresh, runs, cfg);
  std::fprintf(stderr, "  gaspad done\n");
  bench::runRepeats(de, bo::DeBaseline(de_opt), fresh, runs, cfg);
  std::fprintf(stderr, "  de done\n");
  bench::writeArtifact(cfg, "table1_power_amplifier", runs,
                       {&ours, &weibo, &gaspad, &de});

  std::printf("# Table 1: optimization results of the power amplifier\n");
  std::printf("# %zu runs, %s budgets (ours/weibo %.0f, gaspad/de %.0f)\n",
              runs, cfg.full ? "paper" : "quick", budget_ours, budget_ea);
  const bench::AlgoStats* algos[4] = {&ours, &weibo, &gaspad, &de};

  std::printf("%-16s", "Algo");
  for (const auto* a : algos) std::printf("%12s", a->name.c_str());
  std::printf("\n");
  bench::printRule();

  // thd / Pout of each algorithm's median-run best design, re-simulated at
  // high fidelity.
  std::printf("%-16s", "thd/dB");
  for (const auto* a : algos) {
    const auto perf = problem.simulate(a->median_result.best_x,
                                       bo::Fidelity::kHigh);
    std::printf("%12.2f", perf.thd_db);
  }
  std::printf("\n%-16s", "Pout/dBm");
  for (const auto* a : algos) {
    const auto perf = problem.simulate(a->median_result.best_x,
                                       bo::Fidelity::kHigh);
    std::printf("%12.2f", perf.pout_dbm);
  }

  // Efficiency stats: the objective is −Eff, so negate (higher better).
  const char* kRows[4] = {"Eff(mean)/%", "Eff(median)/%", "Eff(best)/%",
                          "Eff(worst)/%"};
  for (int row = 0; row < 4; ++row) {
    std::printf("\n%-16s", kRows[row]);
    for (const auto* a : algos) {
      const auto s = a->summary(/*lower_is_better=*/true);
      const double v = row == 0   ? -s.mean
                       : row == 1 ? -s.median
                       : row == 2 ? -s.best
                                  : -s.worst;
      std::printf("%12.2f", v);
    }
  }

  std::printf("\n%-16s", "Avg. # Sim");
  for (const auto* a : algos) std::printf("%12.1f", a->avgSims());
  std::printf("\n%-16s", "# Success");
  for (const auto* a : algos)
    std::printf("%9zu/%zu", a->successes, a->total_runs);
  std::printf("\n");
  bench::printRule();
  std::printf("# paper (full budgets): Eff(mean) Ours 62.64 / WEIBO 60.29 /\n"
              "# GASPAD 31.63 / DE 31.54; Avg#Sim 59 / 82 / 257 / 234\n");
  return 0;
}
