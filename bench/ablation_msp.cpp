// Ablation: the §4.1 MSP start-placement — does scattering a fraction of
// the acquisition-search starts around the incumbents τ_l (10%) and τ_h
// (40%) actually help, versus purely random starts?
//
// The paper notes the effect matters most for constrained problems in
// higher dimensions (§4.1), where the wEI surface is flat at the incumbent
// on the constraint boundary. We therefore run Algorithm 1 on the 8-d
// constrained quadratic (optimum on the boundary) with both start
// policies at the same total number of starts.
#include <cstdio>

#include "bench_common.h"
#include "bo/mfbo.h"
#include "problems/synthetic.h"

int main(int argc, char** argv) {
  using namespace mfbo;
  const bench::BenchConfig cfg = bench::parseArgs(argc, argv);
  const std::size_t runs = cfg.runs(5, 12);
  const double budget = cfg.scale(25, 60);

  problems::ConstrainedQuadraticProblem problem(8);

  bo::MfboOptions paper;  // the paper's 10% / 40% split
  paper.n_init_low = 20;
  paper.n_init_high = 6;
  paper.budget = budget;
  paper.msp.n_starts = 12;
  paper.msp.local.max_evaluations = 80;
  paper.nargp.n_mc = 40;
  paper.nargp.low.n_restarts = 1;
  paper.nargp.high.n_restarts = 1;

  bo::MfboOptions random_only = paper;  // all starts random
  random_only.msp.frac_tau_l = 0.0;
  random_only.msp.frac_tau_h = 0.0;

  bench::AlgoStats with_scatter{"msp_incumbent_scatter"};
  bench::AlgoStats all_random{"msp_all_random"};
  const auto fresh = [] { return problems::ConstrainedQuadraticProblem(8); };
  bench::runRepeats(with_scatter, bo::MfboSynthesizer(paper), fresh, runs,
                    cfg);
  bench::runRepeats(all_random, bo::MfboSynthesizer(random_only), fresh, runs,
                    cfg);
  bench::writeArtifact(cfg, "ablation_msp", runs,
                       {&with_scatter, &all_random});

  std::printf("# Ablation: MSP incumbent scatter (8-d constrained "
              "quadratic, budget %.0f, %zu runs)\n",
              budget, runs);
  std::printf("# constrained minimum = %.5f (on the boundary)\n\n",
              problem.optimalValue());
  std::printf("%-34s %10s %10s %10s %12s\n", "start policy", "mean f",
              "median f", "worst f", "avg #sim");
  const auto sp = with_scatter.summary(true);
  const auto sr = all_random.summary(true);
  std::printf("%-34s %10.4f %10.4f %10.4f %12.1f\n",
              "10% tau_l + 40% tau_h (paper)", sp.mean, sp.median, sp.worst,
              with_scatter.avgSims());
  std::printf("%-34s %10.4f %10.4f %10.4f %12.1f\n", "all random",
              sr.mean, sr.median, sr.worst, all_random.avgSims());
  return 0;
}
