// Extension demo: ≥2 fidelity levels (the generalization the paper
// motivates in §1 — "we can always carry out the circuit simulation at
// different precision levels" — but leaves at two levels for simplicity).
//
// A three-fidelity cascade is modelled (a) with the recursive three-level
// NARGP, (b) with the paper's two-level NARGP that skips the middle
// fidelity, and (c) with a single-fidelity GP on the top-level data alone.
// The middle level carries information invisible to the bottom level, so
// the full cascade should win.
#include <cmath>
#include <cstdio>
#include <utility>

#include "bench_common.h"
#include "gp/gp_regressor.h"
#include "mf/multilevel.h"
#include "mf/nargp.h"

namespace {

using namespace mfbo;
using linalg::Vector;

double level0(double x) { return std::sin(8.0 * M_PI * x); }
double level1(double x) {
  const double y = level0(x);
  return 0.8 * y * y - 0.4 * y + 0.5 * x;
}
double level2(double x) {
  const double y = level1(x);
  return (x - 0.5) * y + 0.2 * y * y;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchConfig bench_cfg = bench::parseArgs(argc, argv);

  // Sample budgets decay with fidelity, as costs would dictate.
  const std::size_t n0 = 40, n1 = 20, n2 = 8;
  std::vector<std::vector<Vector>> x(3);
  std::vector<std::vector<double>> y(3);
  auto fill = [&](std::size_t level, std::size_t n, double (*f)(double)) {
    for (std::size_t i = 0; i < n; ++i) {
      const double xi = (static_cast<double>(i) + 0.5) / static_cast<double>(n);
      x[level].push_back(Vector{xi});
      y[level].push_back(f(xi));
    }
  };
  fill(0, n0, level0);
  fill(1, n1, level1);
  fill(2, n2, level2);

  mf::MultilevelConfig cfg;
  cfg.gp.n_restarts = 3;
  mf::MultilevelNargp three(1, 3, cfg);
  three.fit(x, y);

  mf::NargpConfig two_cfg;
  mf::NargpModel two(1, two_cfg);
  two.fit(x[0], y[0], x[2], y[2]);  // bottom + top only

  gp::GpConfig sf_cfg;
  gp::GpRegressor single(std::make_unique<gp::SeArdKernel>(1), sf_cfg);
  single.fit(x[2], y[2]);

  double rmse3 = 0.0, rmse2 = 0.0, rmse1 = 0.0;
  for (int i = 0; i <= 100; ++i) {
    const double xi = i / 100.0;
    const double truth = level2(xi);
    const double e3 = three.predict(2, Vector{xi}).mean - truth;
    const double e2 = two.predictHigh(Vector{xi}).mean - truth;
    const double e1 = single.predict(Vector{xi}).mean - truth;
    rmse3 += e3 * e3;
    rmse2 += e2 * e2;
    rmse1 += e1 * e1;
  }
  rmse3 = std::sqrt(rmse3 / 101.0);
  rmse2 = std::sqrt(rmse2 / 101.0);
  rmse1 = std::sqrt(rmse1 / 101.0);

  std::printf("# Extension: recursive multi-level fusion "
              "(%zu/%zu/%zu samples per level)\n\n",
              n0, n1, n2);
  std::printf("%-42s %12s\n", "model", "RMSE @ top");
  std::printf("%-42s %12.5f\n", "3-level recursive NARGP (extension)", rmse3);
  std::printf("%-42s %12.5f\n", "2-level NARGP, middle fidelity skipped",
              rmse2);
  std::printf("%-42s %12.5f\n", "single-fidelity GP (top data only)", rmse1);
  std::printf(
      "\n# The middle level carries an x-trend invisible through the bottom\n"
      "# fidelity. Routing through it (3-level) wins; skipping it (2-level)\n"
      "# can even cause negative transfer — the misleading y_l coordinate\n"
      "# corrupts the sparse top-level GP below the single-fidelity line.\n");

  Json doc = bench::artifactHeader(bench_cfg, "extension_multilevel", 1);
  doc.set("rmse_three_level", rmse3);
  doc.set("rmse_two_level", rmse2);
  doc.set("rmse_single_fidelity", rmse1);
  bench::writeArtifactFile(bench_cfg, std::move(doc));
  return 0;
}
