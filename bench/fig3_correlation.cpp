// Figure 3 reproduction: nonlinear correlation between the low- and
// high-fidelity power-amplifier simulations.
//
// As in the paper, four design variables (Cs, Cp, W, Vdd) are fixed and Vb
// is swept; the efficiency from the cheap (short, coarse) transient is
// plotted against the expensive (long) one. A linear fit quantifies how
// *non*-linear the relation is — the motivation for the NARGP fusion over
// AR(1) cokriging.
#include <cmath>
#include <cstdio>
#include <utility>

#include "bench_common.h"
#include "problems/power_amplifier.h"

int main(int argc, char** argv) {
  using namespace mfbo;
  const bench::BenchConfig cfg = bench::parseArgs(argc, argv);
  const std::size_t n_sweep = cfg.full ? 41 : 21;

  problems::PowerAmplifierProblem pa;
  // Fixed point chosen inside the interesting (near-spec) region.
  const double cs = 6e-12, cp = 2.3e-12, w = 4e-3, vdd = 1.8;

  std::printf("# Figure 3: Eff at low vs high fidelity over a Vb sweep\n");
  std::printf("# fixed: Cs=%.1fpF Cp=%.1fpF W=%.0fum Vdd=%.1fV\n", cs * 1e12,
              cp * 1e12, w * 1e6, vdd);
  std::printf("%8s %12s %12s\n", "Vb", "Eff_low(%)", "Eff_high(%)");

  std::vector<double> lo(n_sweep), hi(n_sweep);
  for (std::size_t i = 0; i < n_sweep; ++i) {
    const double vb =
        0.3 + 0.6 * static_cast<double>(i) / static_cast<double>(n_sweep - 1);
    const bo::Vector x{cs, cp, w, vdd, vb};
    lo[i] = pa.simulate(x, bo::Fidelity::kLow).eff;
    hi[i] = pa.simulate(x, bo::Fidelity::kHigh).eff;
    std::printf("%8.3f %12.3f %12.3f\n", 0.3 + 0.6 * static_cast<double>(i) /
                                                   static_cast<double>(
                                                       n_sweep - 1),
                lo[i], hi[i]);
  }

  // Least-squares fit hi ≈ a·lo + b and its R².
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const double n = static_cast<double>(n_sweep);
  for (std::size_t i = 0; i < n_sweep; ++i) {
    sx += lo[i];
    sy += hi[i];
    sxx += lo[i] * lo[i];
    sxy += lo[i] * hi[i];
  }
  const double a = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  const double b = (sy - a * sx) / n;
  double ss_res = 0, ss_tot = 0;
  for (std::size_t i = 0; i < n_sweep; ++i) {
    const double fit = a * lo[i] + b;
    ss_res += (hi[i] - fit) * (hi[i] - fit);
    ss_tot += (hi[i] - sy / n) * (hi[i] - sy / n);
  }
  const double r2 = 1.0 - ss_res / std::max(ss_tot, 1e-300);
  std::printf("\n# linear-correlation diagnostic (AR(1)'s assumption)\n");
  std::printf("best linear fit : Eff_high = %.3f * Eff_low %+.3f\n", a, b);
  std::printf("R^2             : %.4f\n", r2);
  std::printf("residual RMS    : %.3f%% efficiency  (nonzero ⇒ the map is\n"
              "                  nonlinear; NARGP's z(-) has work to do)\n",
              std::sqrt(ss_res / n));

  Json doc = bench::artifactHeader(cfg, "fig3_correlation", 1);
  doc.set("eff_low", Json::numberArray(lo));
  doc.set("eff_high", Json::numberArray(hi));
  doc.set("fit_slope", a);
  doc.set("fit_intercept", b);
  doc.set("r2", r2);
  bench::writeArtifactFile(cfg, std::move(doc));
  return 0;
}
