// Micro-benchmark for the batched proposal engine: wall time per batch
// size, 1-vs-N-thread byte-identity of the artifacts, and a mid-run
// checkpoint/resume identity leg, all in one artifact.
//
// The workload is a tiny constrained-quadratic synthesis (the same
// canonical configuration the checkpoint fixture tests pin), run once per
// batch size q ∈ {1, 2, 4}. Batching does not change the per-point
// simulator bill — it trades surrogate freshness for the ability to keep q
// simulators busy — so the interesting numbers are the proposal-loop
// overhead per q and the hard invariants: every q must produce
// byte-identical results across thread counts, and a run resumed from a
// mid-run checkpoint must reproduce the uninterrupted bytes. The binary
// exits 1 when any identity leg fails, so a regression fails CI even
// without artifact validation.
//
// --dump-checkpoint FILE additionally writes the golden resume fixture
// consumed by tests/test_checkpoint.cpp: a mid-run q=2 checkpoint plus the
// uninterrupted run's final result document.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bo/engine.h"
#include "bo/mfbo.h"
#include "problems/synthetic.h"

namespace {

using namespace mfbo;

/// Canonical fixture configuration. tests/test_checkpoint.cpp mirrors these
/// values for the committed-fixture restore test; the options digest inside
/// the checkpoint turns any drift between the two copies into a loud
/// ContractViolation rather than a silent mismatch.
bo::MfboOptions fixtureOptions(std::size_t batch_size) {
  bo::MfboOptions opt;
  opt.n_init_low = 6;
  opt.n_init_high = 3;
  opt.budget = 6.0;
  opt.gamma = 0.5;
  opt.retrain_every = 2;
  opt.batch_size = batch_size;
  opt.x_star_seeds = 2;
  opt.msp.n_starts = 4;
  opt.msp.local.max_evaluations = 30;
  opt.nargp.n_mc = 16;
  opt.nargp.low.n_restarts = 1;
  opt.nargp.high.n_restarts = 1;
  return opt;
}

problems::ConstrainedQuadraticProblem fixtureProblem() {
  return problems::ConstrainedQuadraticProblem(2);
}

std::string resultBytes(const bo::SynthesisResult& result) {
  return bo::synthesisResultToJson(result).dump();
}

struct Leg {
  std::string bytes;
  bo::SynthesisResult result;
  double seconds = 0.0;
};

Leg runLeg(std::size_t batch_size, std::uint64_t seed, std::size_t threads,
           int trials) {
  parallel::setMaxThreads(threads);
  const bo::MfboSynthesizer synthesizer(fixtureOptions(batch_size));
  Leg leg;
  for (int trial = 0; trial < trials; ++trial) {
    auto problem = fixtureProblem();
    const auto start = std::chrono::steady_clock::now();
    bo::SynthesisResult result = synthesizer.run(problem, seed);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    if (trial == 0 || elapsed.count() < leg.seconds)
      leg.seconds = elapsed.count();
    if (trial == 0) {
      leg.bytes = resultBytes(result);
      leg.result = std::move(result);
    }
  }
  parallel::setMaxThreads(0);
  return leg;
}

}  // namespace

int main(int argc, char** argv) {
  // --dump-checkpoint FILE is ours; strip it before the shared parser.
  std::string dump_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dump-checkpoint") == 0 && i + 1 < argc) {
      dump_path = argv[++i];
      continue;
    }
    args.push_back(argv[i]);
  }
  const bench::BenchConfig cfg =
      bench::parseArgs(static_cast<int>(args.size()), args.data());
  const std::size_t threads = cfg.threads > 0 ? cfg.threads : 4;
  const int trials = cfg.full ? 3 : 1;
  const std::vector<std::size_t> batch_sizes = {1, 2, 4};

  std::printf("# micro_batch: constrained quadratic, budget %.1f, seed %llu\n",
              fixtureOptions(1).budget,
              static_cast<unsigned long long>(cfg.seed));

  bool all_identical = true;
  Json batches = Json::array();
  for (const std::size_t q : batch_sizes) {
    const Leg serial = runLeg(q, cfg.seed, 1, trials);
    const Leg pooled = runLeg(q, cfg.seed, threads, 1);
    const bool identical = serial.bytes == pooled.bytes;
    all_identical = all_identical && identical;

    Json row = Json::object();
    row.set("batch_size", q);
    row.set("best_objective", serial.result.best_eval.objective);
    row.set("feasible_found", serial.result.feasible_found);
    row.set("n_iterations", serial.result.history.size());
    row.set("n_low", serial.result.n_low);
    row.set("n_high", serial.result.n_high);
    row.set("equivalent_high_sims", serial.result.equivalent_high_sims);
    row.set("identical", identical);
    row.set("wall_seconds", cfg.timing ? serial.seconds : 0.0);
    batches.push(std::move(row));

    std::printf("q=%zu  best %12.6g  %3zu pts  %6.3f s  identical %s\n", q,
                serial.result.best_eval.objective,
                serial.result.history.size(), serial.seconds,
                identical ? "yes" : "NO");
  }

  // Checkpoint/resume identity: kill the canonical q=2 run at its middle
  // boundary, resume from the serialized document, require the bytes of
  // the uninterrupted run.
  std::vector<Json> boundary_checkpoints;
  std::string golden;
  {
    parallel::setMaxThreads(1);
    auto problem = fixtureProblem();
    bo::MfboEngine engine(problem, cfg.seed, fixtureOptions(2));
    while (!engine.done()) {
      boundary_checkpoints.push_back(engine.checkpoint());
      engine.step();
    }
    golden = resultBytes(engine.takeResult());
    parallel::setMaxThreads(0);
  }
  const Json& mid = boundary_checkpoints[boundary_checkpoints.size() / 2];
  std::string resumed;
  {
    parallel::setMaxThreads(1);
    auto problem = fixtureProblem();
    bo::MfboEngine engine(problem, 0, fixtureOptions(2));
    engine.restore(Json::parse(mid.dump()));  // through bytes, as on disk
    resumed = resultBytes(engine.run());
    parallel::setMaxThreads(0);
  }
  const bool resume_identical = resumed == golden;
  all_identical = all_identical && resume_identical;
  std::printf("%-22s %10s  (%zu boundaries)\n", "resume identical",
              resume_identical ? "yes" : "NO", boundary_checkpoints.size());

  if (!dump_path.empty()) {
    Json fixture = Json::object();
    fixture.set("format", "mfbo-engine-resume-fixture");
    fixture.set("version", 1);
    fixture.set("checkpoint", mid);
    fixture.set("result", Json::parse(golden));
    std::FILE* f = std::fopen(dump_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open fixture file '%s'\n",
                   dump_path.c_str());
      return 1;
    }
    const std::string text = fixture.dump();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::fprintf(stderr, "wrote resume fixture %s\n", dump_path.c_str());
  }

  Json doc = bench::artifactHeader(cfg, "micro_batch", 1);
  doc.set("threads", threads);
  doc.set("batch", std::move(batches));
  doc.set("n_boundaries", boundary_checkpoints.size());
  doc.set("resume_identical", resume_identical);
  doc.set("identical", all_identical);
  bench::writeArtifactFile(cfg, std::move(doc));

  if (!all_identical) {
    std::fprintf(stderr,
                 "determinism violation: batched or resumed runs diverged "
                 "from their reference bytes\n");
    return 1;
  }
  return 0;
}
