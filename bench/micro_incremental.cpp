// Micro-benchmark for the incremental surrogate update path: speedup and
// incremental-vs-rebuild posterior agreement in one artifact.
//
// addPoint(retrain=false) is the hot loop of every non-retrain synthesis
// iteration (retrain_every > 1). The incremental path extends the cached
// Cholesky factor in O(n²) (linalg::Cholesky::appendRow) instead of
// refactoring the full Gram matrix at O(n³); this bench times both paths
// on the same append sequence and asserts that their posteriors agree to
// ≤ 1e-8 at a grid of probe points. It also replays the incremental leg
// under 1 and 4 pool threads and exits 1 unless the predictions are
// byte-identical — the PR 3 determinism guarantee extended to the new
// path (the incremental-vs-rebuild comparison itself is tolerance-based:
// the two paths order their floating-point sums differently).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "gp/gp_regressor.h"
#include "gp/kernel.h"
#include "linalg/rng.h"

namespace {

double objective(const mfbo::linalg::Vector& x) {
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    acc += std::sin(3.0 * x[i]) + 0.3 * x[i] * x[i];
  return acc;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mfbo;
  const bench::BenchConfig cfg = bench::parseArgs(argc, argv);
  const std::size_t dim = 6;
  const std::size_t n_base = cfg.full ? 512 : 256;
  const std::size_t n_appends = 32;
  const std::size_t n_probes = 64;

  linalg::Rng rng(cfg.seed);
  std::vector<linalg::Vector> x_base;
  std::vector<double> y_base;
  for (std::size_t i = 0; i < n_base; ++i) {
    x_base.push_back(rng.uniformVector(dim, 0.0, 1.0));
    y_base.push_back(objective(x_base.back()));
  }
  std::vector<linalg::Vector> x_new;
  for (std::size_t i = 0; i < n_appends; ++i)
    x_new.push_back(rng.uniformVector(dim, 0.0, 1.0));
  std::vector<linalg::Vector> probes;
  for (std::size_t i = 0; i < n_probes; ++i)
    probes.push_back(rng.uniformVector(dim, 0.0, 1.0));

  // Default hyperparameters via setData (no training): this bench times
  // the posterior refresh, not the NLML optimization.
  const auto make_gp = [&](bool incremental) {
    gp::GpConfig gp_cfg;
    gp_cfg.seed = cfg.seed;
    gp_cfg.incremental = incremental;
    gp::GpRegressor gp(std::make_unique<gp::SeArdKernel>(dim), gp_cfg);
    gp.setData(x_base, y_base);
    return gp;
  };

  const auto append_all = [&](gp::GpRegressor& gp) {
    for (const linalg::Vector& x : x_new)
      gp.addPoint(x, objective(x), /*retrain=*/false);
  };

  // Best-of-3 wall time per leg: the work is deterministic, the machine
  // is not.
  const auto time_leg = [&](bool incremental, gp::GpRegressor& out) {
    double best = 0.0;
    for (int trial = 0; trial < 3; ++trial) {
      gp::GpRegressor gp = make_gp(incremental);
      const auto start = std::chrono::steady_clock::now();
      append_all(gp);
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (trial == 0 || elapsed.count() < best) best = elapsed.count();
      if (trial == 2) out = std::move(gp);
    }
    return best;
  };

  gp::GpRegressor incremental_gp = make_gp(true);
  gp::GpRegressor rebuild_gp = make_gp(false);
  const double incremental_seconds = time_leg(true, incremental_gp);
  const double rebuild_seconds = time_leg(false, rebuild_gp);
  const double speedup = rebuild_seconds / incremental_seconds;

  double max_abs_diff = 0.0;
  for (const linalg::Vector& q : probes) {
    const gp::Prediction a = incremental_gp.predict(q);
    const gp::Prediction b = rebuild_gp.predict(q);
    max_abs_diff = std::max(max_abs_diff, std::abs(a.mean - b.mean));
    max_abs_diff = std::max(max_abs_diff, std::abs(a.var - b.var));
  }

  // Thread-count invariance of the incremental path: same appends under a
  // 1-thread and a 4-thread pool must give byte-identical predictions.
  bool identical = true;
  std::vector<gp::Prediction> serial_preds;
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    parallel::setMaxThreads(threads);
    gp::GpRegressor gp = make_gp(true);
    append_all(gp);
    for (std::size_t i = 0; i < probes.size(); ++i) {
      const gp::Prediction p = gp.predict(probes[i]);
      if (threads == 1) {
        serial_preds.push_back(p);
      } else {
        identical = identical && serial_preds[i].mean == p.mean &&
                    serial_preds[i].var == p.var;
      }
    }
  }
  parallel::setMaxThreads(0);

  std::printf("# micro_incremental: n=%zu base points, %zu appends, d=%zu\n",
              n_base, n_appends, dim);
  std::printf("%-26s %10.4f s\n", "incremental (O(n^2))", incremental_seconds);
  std::printf("%-26s %10.4f s\n", "full rebuild (O(n^3))", rebuild_seconds);
  std::printf("%-26s %10.2fx\n", "speedup", speedup);
  std::printf("%-26s %10.3g\n", "max |posterior diff|", max_abs_diff);
  std::printf("%-26s %10s\n", "1-vs-4-thread identical",
              identical ? "yes" : "NO");

  Json doc = bench::artifactHeader(cfg, "micro_incremental", 1);
  doc.set("n_base", n_base);
  doc.set("n_appends", n_appends);
  doc.set("dim", dim);
  doc.set("incremental_seconds", incremental_seconds);
  doc.set("rebuild_seconds", rebuild_seconds);
  doc.set("speedup", speedup);
  doc.set("max_abs_diff", max_abs_diff);
  doc.set("identical", identical);
  bench::writeArtifactFile(cfg, std::move(doc));

  if (max_abs_diff > 1e-8) {
    std::fprintf(stderr,
                 "equivalence violation: incremental and rebuilt posteriors "
                 "differ by %g (> 1e-8)\n",
                 max_abs_diff);
    return 1;
  }
  if (!identical) {
    std::fprintf(stderr,
                 "determinism violation: incremental predictions differ "
                 "between 1 and 4 pool threads\n");
    return 1;
  }
  return 0;
}
