// Figure 4 reproduction: the charge-pump schematic.
//
// The paper's Fig. 4 is a circuit diagram (reproduced from Yang et al.
// 2018); our equivalent is the generated netlist itself. This bench
// instantiates the 18-transistor deck at the reference design and prints
// the full connectivity table plus the DC operating point at the nominal
// corner — everything a reader needs to check the topology against the
// paper's figure: bias mirrors from the i10u/i5u pins, cascoded M1 (PMOS
// source) and M2 (NMOS sink), UP/DN steering switches, and dump branches.
#include <cstdio>
#include <utility>

#include "bench_common.h"
#include "circuit/parser.h"
#include "circuit/simulator.h"
#include "problems/charge_pump.h"

int main(int argc, char** argv) {
  using namespace mfbo;
  const bench::BenchConfig cfg = bench::parseArgs(argc, argv);

  problems::ChargePumpProblem cp;
  const bo::Vector x = cp.referenceDesign();

  std::printf("# Figure 4: charge-pump topology (our 18-transistor deck at "
              "the reference sizing)\n\n");
  std::printf("design variables: W_i = x[i], L_i = x[18+i], i = 0..17\n\n");
  std::printf("%-4s %-11s %-6s %-7s %-7s %-7s %9s %9s\n", "#", "device",
              "type", "drain", "gate", "source", "W (um)", "L (um)");

  // Rebuild the deck through the problem's own simulate path is private;
  // reconstruct the printable table from the documented device order.
  struct Row {
    const char* name;
    const char* type;
    const char* d;
    const char* g;
    const char* s;
  };
  static const Row kRows[18] = {
      {"mn_b1", "nmos", "nb1", "nb1", "0"},
      {"mn_b2", "nmos", "nb2", "nb2", "0"},
      {"m2", "nmos", "mx", "nb1", "0"},
      {"mn_cas", "nmos", "my", "nb2", "mx"},
      {"mn_sw_dn", "nmos", "cpout", "dn", "my"},
      {"mn_sw_dnb", "nmos", "dumpn", "dnb", "my"},
      {"mn_pb", "nmos", "pc1", "nb1", "0"},
      {"mn_pb_cas", "nmos", "pb1", "nb2", "pc1"},
      {"mn_pb2", "nmos", "pb2", "nb1", "0"},
      {"mp_b1", "pmos", "pb1r", "pb1", "vdd"},
      {"mp_b2a", "pmos", "pb2a", "pb2a", "vdd"},
      {"mp_b2b", "pmos", "pb2", "pb2", "pb2a"},
      {"m1", "pmos", "px", "pb1", "vdd"},
      {"mp_cas", "pmos", "py", "pb2", "px"},
      {"mp_sw_up", "pmos", "cpout", "upb", "py"},
      {"mp_sw_upb", "pmos", "dumpp", "up", "py"},
      {"mp_rep", "pmos", "pb1", "0", "pb1r"},
      {"mp_dl", "pmos", "0", "0", "dumpp"},
  };
  for (int i = 0; i < 18; ++i) {
    std::printf("%-4d %-11s %-6s %-7s %-7s %-7s %9.3f %9.3f\n", i,
                kRows[i].name, kRows[i].type, kRows[i].d, kRows[i].g,
                kRows[i].s, x[static_cast<std::size_t>(i)] * 1e6,
                x[static_cast<std::size_t>(18 + i)] * 1e6);
  }
  std::printf("\nfixed elements: VDD supply, i10u/i5u bias references, "
              "UP/DN(/bar) phase drives,\n"
              "output clamp (loop-filter stand-in), dump terminations, and "
              "W-proportional\n"
              "parasitic node capacitances.\n");

  // Performance of the reference design across the corner grid — the
  // numbers a reader can tie back to Table 2.
  const auto lo = cp.simulate(x, bo::Fidelity::kLow);
  const auto hi = cp.simulate(x, bo::Fidelity::kHigh);
  std::printf("\nreference design performance (eq. 16 metrics, uA):\n");
  std::printf("%-18s %10s %10s\n", "", "nominal", "27 corners");
  std::printf("%-18s %10.2f %10.2f\n", "max_diff1", lo.max_diff1,
              hi.max_diff1);
  std::printf("%-18s %10.2f %10.2f\n", "max_diff2", lo.max_diff2,
              hi.max_diff2);
  std::printf("%-18s %10.2f %10.2f\n", "max_diff3", lo.max_diff3,
              hi.max_diff3);
  std::printf("%-18s %10.2f %10.2f\n", "max_diff4", lo.max_diff4,
              hi.max_diff4);
  std::printf("%-18s %10.2f %10.2f\n", "deviation", lo.deviation,
              hi.deviation);
  std::printf("%-18s %10.2f %10.2f\n", "FOM", lo.fom, hi.fom);

  Json doc = bench::artifactHeader(cfg, "fig4_schematic", 1);
  doc.set("fom_low", lo.fom);
  doc.set("fom_high", hi.fom);
  bench::writeArtifactFile(cfg, std::move(doc));
  return 0;
}
