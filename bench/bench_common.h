// Shared helpers for the paper-reproduction benches.
//
// Every table/figure binary accepts:
//   --quick      scaled-down budgets/run counts (default; finishes on a
//                single core in minutes)
//   --full       the paper's budgets and repetition counts
//   --runs N     override the repetition count (positive integer)
//   --seed S     base RNG seed (run r uses S + r)
//   --out FILE   write a machine-readable JSON artifact with the per-run
//                results and a telemetry metrics snapshot
//   --help       print usage and exit
#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bo/result.h"
#include "common/json.h"
#include "common/telemetry.h"
#include "linalg/stats.h"

namespace mfbo::bench {

struct BenchConfig {
  bool full = false;
  std::size_t runs_override = 0;  // 0 = use mode default
  std::uint64_t seed = 1000;
  std::string out;  // artifact path; empty = no artifact

  std::size_t runs(std::size_t quick_default, std::size_t full_default) const {
    if (runs_override > 0) return runs_override;
    return full ? full_default : quick_default;
  }
  double scale(double quick_value, double full_value) const {
    return full ? full_value : quick_value;
  }
  const char* mode() const { return full ? "full" : "quick"; }
};

inline void printUsage(std::FILE* stream, const char* prog) {
  std::fprintf(stream,
               "usage: %s [--quick|--full] [--runs N] [--seed S] "
               "[--out FILE] [--help]\n",
               prog);
}

inline BenchConfig parseArgs(int argc, char** argv) {
  BenchConfig cfg;
  auto fail = [&](const char* why, const char* what) {
    std::fprintf(stderr, "%s: %s '%s'\n", argv[0], why, what);
    printUsage(stderr, argv[0]);
    std::exit(2);
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      printUsage(stdout, argv[0]);
      std::exit(0);
    } else if (std::strcmp(argv[i], "--full") == 0) {
      cfg.full = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      cfg.full = false;
    } else if (std::strcmp(argv[i], "--runs") == 0) {
      if (i + 1 >= argc) fail("missing value for", argv[i]);
      char* end = nullptr;
      const long long n = std::strtoll(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || n <= 0)
        fail("--runs wants a positive integer, got", argv[i]);
      cfg.runs_override = static_cast<std::size_t>(n);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      if (i + 1 >= argc) fail("missing value for", argv[i]);
      char* end = nullptr;
      const unsigned long long s = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0')
        fail("--seed wants a non-negative integer, got", argv[i]);
      cfg.seed = s;
    } else if (std::strcmp(argv[i], "--out") == 0) {
      if (i + 1 >= argc) fail("missing value for", argv[i]);
      cfg.out = argv[++i];
      if (cfg.out.empty()) fail("--out wants a file path, got", "");
    } else {
      fail("unknown argument", argv[i]);
    }
  }
  return cfg;
}

/// Cost (equivalent high-fidelity simulations) at which the final best
/// high-fidelity result was first attained — the paper's "Avg. # Sim"
/// notion ("simulations required to reach the corresponding results").
inline double costToReachBest(const bo::SynthesisResult& r) {
  const auto best = bo::bestHighIndex(r.history);
  if (!best) return r.equivalent_high_sims;
  return r.history[*best].cumulative_cost;
}

/// Aggregated rows of one algorithm column in a results table.
struct AlgoStats {
  std::string name;
  std::vector<double> objectives{};    // best feasible objective per run
  std::vector<double> reach_costs{};   // cost to reach it per run
  std::vector<double> wall_times{};    // wall-clock seconds per run
  std::size_t successes = 0;         // runs that found a feasible design
  std::size_t total_runs = 0;
  bo::SynthesisResult median_result{}; // the run with the median objective

  void add(const bo::SynthesisResult& r, double wall_seconds = 0.0) {
    ++total_runs;
    if (r.feasible_found) ++successes;
    objectives.push_back(r.best_eval.objective);
    reach_costs.push_back(costToReachBest(r));
    wall_times.push_back(wall_seconds);
    // Keep the run whose objective is currently the median (approximate:
    // recompute by storing all would cost memory; keep best-so-far median
    // by distance to running median).
    if (total_runs == 1 ||
        std::abs(r.best_eval.objective - linalg::median(objectives)) <=
            std::abs(median_result.best_eval.objective -
                     linalg::median(objectives)))
      median_result = r;
  }

  /// Run `synthesizer.run(problem, seed)`, recording its wall time.
  template <class Synthesizer, class ProblemT>
  void addTimed(const Synthesizer& synthesizer, ProblemT& problem,
                std::uint64_t seed) {
    const auto start = std::chrono::steady_clock::now();
    bo::SynthesisResult r = synthesizer.run(problem, seed);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    add(r, elapsed.count());
  }

  linalg::RunSummary summary(bool lower_is_better) const {
    return linalg::summarizeRuns(objectives, lower_is_better);
  }
  double avgSims() const { return linalg::mean(reach_costs); }

  Json toJson() const {
    Json j = Json::object();
    j.set("name", name);
    j.set("objectives", Json::numberArray(objectives));
    j.set("reach_costs", Json::numberArray(reach_costs));
    j.set("wall_times", Json::numberArray(wall_times));
    j.set("successes", successes);
    j.set("total_runs", total_runs);
    return j;
  }
};

/// Common artifact preamble: bench identity, mode, runs, seed.
inline Json artifactHeader(const BenchConfig& cfg, const std::string& bench,
                           std::size_t runs) {
  Json doc = Json::object();
  doc.set("bench", bench);
  doc.set("mode", cfg.mode());
  doc.set("runs", runs);
  doc.set("seed", Json::number(static_cast<double>(cfg.seed)));
  return doc;
}

/// Write @p doc (with a telemetry metrics snapshot appended) to the --out
/// path. Exits with an error when the file cannot be written — a bench
/// asked for an artifact it silently failed to produce would poison
/// downstream comparisons. No-op when --out was not given.
inline void writeArtifactFile(const BenchConfig& cfg, Json doc) {
  if (cfg.out.empty()) return;
  doc.set("metrics", telemetry::metricsSnapshot());
  std::FILE* f = std::fopen(cfg.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open artifact file '%s'\n", cfg.out.c_str());
    std::exit(1);
  }
  const std::string text = doc.dump();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::fprintf(stderr, "wrote artifact %s\n", cfg.out.c_str());
}

/// The standard table/ablation artifact: header + per-algorithm per-run
/// results + metrics snapshot.
inline void writeArtifact(const BenchConfig& cfg, const std::string& bench,
                          std::size_t runs,
                          const std::vector<const AlgoStats*>& algos) {
  if (cfg.out.empty()) return;
  Json doc = artifactHeader(cfg, bench, runs);
  Json list = Json::array();
  for (const AlgoStats* a : algos) list.push(a->toJson());
  doc.set("algorithms", list);
  writeArtifactFile(cfg, std::move(doc));
}

inline void printRule(int width = 72) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace mfbo::bench
