// Shared helpers for the paper-reproduction benches.
//
// Every table/figure binary accepts:
//   --quick      scaled-down budgets/run counts (default; finishes on a
//                single core in minutes)
//   --full       the paper's budgets and repetition counts
//   --runs N     override the repetition count (positive integer)
//   --seed S     base RNG seed (run r uses S + r)
//   --threads N  thread count for the parallel execution layer (positive
//                integer; 1 = fully serial; default MFBO_THREADS env var
//                or hardware concurrency)
//   --no-timing  zero wall-clock fields and drop the timers section from
//                the --out artifact, making same-seed artifacts
//                byte-identical at any thread count
//   --out FILE   write a machine-readable JSON artifact with the per-run
//                results and a telemetry metrics snapshot
//   --spans      enable the hierarchical span profiler; the --out artifact
//                gains a "spans" phase tree (timing-free under --no-timing)
//   --trace FILE write a JSONL event trace (run_start/iteration/run_end)
//                for tools/run_report.py; exits 2 on an unwritable path
//   --timeline FILE
//                record every span open/close as Chrome/Perfetto
//                trace-event JSON (load in chrome://tracing or ui.perfetto.
//                dev; validate with tools/trace_validate.py); exits 2 on an
//                unwritable path. Does not enable the span profiler and
//                never touches the --out artifact, so --no-timing artifact
//                bytes are identical with and without a timeline.
//   --help       print usage and exit
#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bo/result.h"
#include "common/json.h"
#include "common/memstats.h"
#include "common/parallel.h"
#include "common/spans.h"
#include "common/telemetry.h"
#include "common/timeline.h"
#include "linalg/stats.h"

namespace mfbo::bench {

struct BenchConfig {
  bool full = false;
  std::size_t runs_override = 0;  // 0 = use mode default
  std::uint64_t seed = 1000;
  std::size_t threads = 0;  // 0 = auto (MFBO_THREADS env / hardware)
  bool timing = true;       // false: deterministic artifacts (--no-timing)
  bool spans = false;       // true: span profiler on (--spans)
  std::string out;       // artifact path; empty = no artifact
  std::string trace;     // JSONL trace path; empty = no trace
  std::string timeline;  // Perfetto trace-event path; empty = no timeline
  // Keeps the installed trace sink alive for the whole bench run (the
  // registry borrows it); copied along with the config.
  std::shared_ptr<telemetry::TraceWriter> trace_writer;

  std::size_t runs(std::size_t quick_default, std::size_t full_default) const {
    if (runs_override > 0) return runs_override;
    return full ? full_default : quick_default;
  }
  double scale(double quick_value, double full_value) const {
    return full ? full_value : quick_value;
  }
  const char* mode() const { return full ? "full" : "quick"; }
};

inline void printUsage(std::FILE* stream, const char* prog) {
  std::fprintf(stream,
               "usage: %s [--quick|--full] [--runs N] [--seed S] "
               "[--threads N] [--no-timing] [--out FILE] [--spans] "
               "[--trace FILE] [--timeline FILE] [--help]\n"
               "  --spans          enable the span profiler; --out artifacts "
               "gain a 'spans' phase tree\n"
               "  --trace FILE     write a JSONL event trace consumable by "
               "tools/run_report.py\n"
               "  --timeline FILE  write a Chrome/Perfetto trace-event "
               "timeline of every span open/close\n",
               prog);
}

inline BenchConfig parseArgs(int argc, char** argv) {
  // Flag parsing is harness machinery, not workload: --spans enables
  // allocation attribution mid-parse, and without this pause every later
  // path-valued flag (--out, --trace, --timeline) would leak its string
  // copy into the root span's counters — making the deterministic
  // artifact's alloc_bytes depend on the length of the output path.
  const memstats::PauseScope alloc_pause;
  BenchConfig cfg;
  auto fail = [&](const char* why, const char* what) {
    std::fprintf(stderr, "%s: %s '%s'\n", argv[0], why, what);
    printUsage(stderr, argv[0]);
    std::exit(2);
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      printUsage(stdout, argv[0]);
      std::exit(0);
    } else if (std::strcmp(argv[i], "--full") == 0) {
      cfg.full = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      cfg.full = false;
    } else if (std::strcmp(argv[i], "--runs") == 0) {
      if (i + 1 >= argc) fail("missing value for", argv[i]);
      char* end = nullptr;
      const long long n = std::strtoll(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || n <= 0)
        fail("--runs wants a positive integer, got", argv[i]);
      cfg.runs_override = static_cast<std::size_t>(n);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      if (i + 1 >= argc) fail("missing value for", argv[i]);
      char* end = nullptr;
      const unsigned long long s = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0')
        fail("--seed wants a non-negative integer, got", argv[i]);
      cfg.seed = s;
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      if (i + 1 >= argc) fail("missing value for", argv[i]);
      char* end = nullptr;
      const long long n = std::strtoll(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || n <= 0)
        fail("--threads wants a positive integer, got", argv[i]);
      cfg.threads = static_cast<std::size_t>(n);
      parallel::setMaxThreads(cfg.threads);
    } else if (std::strcmp(argv[i], "--no-timing") == 0) {
      cfg.timing = false;
    } else if (std::strcmp(argv[i], "--spans") == 0) {
      cfg.spans = true;
      spans::setEnabled(true);
    } else if (std::strcmp(argv[i], "--out") == 0) {
      if (i + 1 >= argc) fail("missing value for", argv[i]);
      cfg.out = argv[++i];
      if (cfg.out.empty()) fail("--out wants a file path, got", "");
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      if (i + 1 >= argc) fail("missing value for", argv[i]);
      cfg.trace = argv[++i];
      if (cfg.trace.empty()) fail("--trace wants a file path, got", "");
      try {
        // Open (and truncate) up front: an unwritable path must be a
        // startup error, not a warning after minutes of synthesis.
        cfg.trace_writer =
            std::make_shared<telemetry::TraceWriter>(cfg.trace);
      } catch (const std::runtime_error&) {
        fail("--trace path is not writable:", cfg.trace.c_str());
      }
      telemetry::setTraceSink(cfg.trace_writer.get());
    } else if (std::strcmp(argv[i], "--timeline") == 0) {
      if (i + 1 >= argc) fail("missing value for", argv[i]);
      cfg.timeline = argv[++i];
      if (cfg.timeline.empty()) fail("--timeline wants a file path, got", "");
      if (timeline::recording())
        fail("--timeline given more than once:", cfg.timeline.c_str());
      try {
        // Opens (and truncates) the file up front: an unwritable path must
        // be a startup error, not a lost trace after minutes of synthesis.
        timeline::start(cfg.timeline);
      } catch (const std::runtime_error&) {
        fail("--timeline path is not writable:", cfg.timeline.c_str());
      }
      // Benches return from main through several paths; atexit guarantees
      // the buffered events are serialized exactly once on any of them.
      std::atexit([] { timeline::stop(); });
    } else {
      fail("unknown argument", argv[i]);
    }
  }
  return cfg;
}

/// Cost (equivalent high-fidelity simulations) at which the final best
/// high-fidelity result was first attained — the paper's "Avg. # Sim"
/// notion ("simulations required to reach the corresponding results").
inline double costToReachBest(const bo::SynthesisResult& r) {
  const auto best = bo::bestHighIndex(r.history);
  if (!best) return r.equivalent_high_sims;
  return r.history[*best].cumulative_cost;
}

/// Aggregated rows of one algorithm column in a results table.
struct AlgoStats {
  std::string name;
  std::vector<double> objectives{};    // best feasible objective per run
  std::vector<double> reach_costs{};   // cost to reach it per run
  std::vector<double> wall_times{};    // wall-clock seconds per run
  std::size_t successes = 0;         // runs that found a feasible design
  std::size_t total_runs = 0;
  bo::SynthesisResult median_result{}; // the run with the median objective

  void add(const bo::SynthesisResult& r, double wall_seconds = 0.0) {
    ++total_runs;
    if (r.feasible_found) ++successes;
    objectives.push_back(r.best_eval.objective);
    reach_costs.push_back(costToReachBest(r));
    wall_times.push_back(wall_seconds);
    // Keep the run whose objective is currently the median (approximate:
    // recompute by storing all would cost memory; keep best-so-far median
    // by distance to running median).
    if (total_runs == 1 ||
        std::abs(r.best_eval.objective - linalg::median(objectives)) <=
            std::abs(median_result.best_eval.objective -
                     linalg::median(objectives)))
      median_result = r;
  }

  linalg::RunSummary summary(bool lower_is_better) const {
    return linalg::summarizeRuns(objectives, lower_is_better);
  }
  double avgSims() const { return linalg::mean(reach_costs); }

  Json toJson() const {
    Json j = Json::object();
    j.set("name", name);
    j.set("objectives", Json::numberArray(objectives));
    j.set("reach_costs", Json::numberArray(reach_costs));
    j.set("wall_times", Json::numberArray(wall_times));
    j.set("successes", successes);
    j.set("total_runs", total_runs);
    return j;
  }
};

/// Run `runs` seeded repetitions of one algorithm on the parallel pool —
/// one repeat per task, seed base_seed+r (defaults to cfg.seed), a fresh
/// problem instance per task from the factory (Problem::evaluate may mutate
/// state, so instances are never shared) — and add the results to @p stats
/// in repeat order. Aggregates (including the order-sensitive median
/// tracking) are therefore identical at any thread count. Per-run wall
/// times are recorded unless --no-timing was given; the synthesis loops
/// inside each repeat still run, nested, on their serial path.
template <class Synthesizer, class ProblemFactory>
void runRepeats(AlgoStats& stats, const Synthesizer& synthesizer,
                ProblemFactory make_problem, std::size_t runs,
                const BenchConfig& cfg,
                std::uint64_t base_seed = std::uint64_t(-1)) {
  if (base_seed == std::uint64_t(-1)) base_seed = cfg.seed;
  struct Repeat {
    bo::SynthesisResult result;
    double seconds = 0.0;
  };
  std::vector<Repeat> repeats =
      parallel::parallelMap(runs, [&](std::size_t r) {
        auto problem = make_problem();
        const auto start = std::chrono::steady_clock::now();
        Repeat out;
        out.result = synthesizer.run(problem, base_seed + r);
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        out.seconds = elapsed.count();
        return out;
      });
  for (const Repeat& r : repeats)
    stats.add(r.result, cfg.timing ? r.seconds : 0.0);
}

/// Common artifact preamble: bench identity, mode, runs, seed.
inline Json artifactHeader(const BenchConfig& cfg, const std::string& bench,
                           std::size_t runs) {
  Json doc = Json::object();
  doc.set("bench", bench);
  doc.set("mode", cfg.mode());
  doc.set("runs", runs);
  doc.set("seed", Json::number(static_cast<double>(cfg.seed)));
  return doc;
}

/// Write @p doc (with a telemetry metrics snapshot appended) to the --out
/// path. Exits with an error when the file cannot be written — a bench
/// asked for an artifact it silently failed to produce would poison
/// downstream comparisons. No-op when --out was not given. Under
/// --no-timing the snapshot omits the wall-clock timers section, so the
/// artifact bytes depend only on the seed, not the thread count.
inline void writeArtifactFile(const BenchConfig& cfg, Json doc) {
  if (cfg.out.empty()) return;
  doc.set("metrics", telemetry::metricsSnapshot(cfg.timing));
  std::FILE* f = std::fopen(cfg.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open artifact file '%s'\n", cfg.out.c_str());
    std::exit(1);
  }
  const std::string text = doc.dump();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::fprintf(stderr, "wrote artifact %s\n", cfg.out.c_str());
}

/// The standard table/ablation artifact: header + per-algorithm per-run
/// results + metrics snapshot.
inline void writeArtifact(const BenchConfig& cfg, const std::string& bench,
                          std::size_t runs,
                          const std::vector<const AlgoStats*>& algos) {
  if (cfg.out.empty()) return;
  Json doc = artifactHeader(cfg, bench, runs);
  Json list = Json::array();
  for (const AlgoStats* a : algos) list.push(a->toJson());
  doc.set("algorithms", list);
  writeArtifactFile(cfg, std::move(doc));
}

inline void printRule(int width = 72) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace mfbo::bench
