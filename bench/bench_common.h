// Shared helpers for the paper-reproduction benches.
//
// Every table/figure binary accepts:
//   --quick      scaled-down budgets/run counts (default; finishes on a
//                single core in minutes)
//   --full       the paper's budgets and repetition counts
//   --runs N     override the repetition count
//   --seed S     base RNG seed (run r uses S + r)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bo/result.h"
#include "linalg/stats.h"

namespace mfbo::bench {

struct BenchConfig {
  bool full = false;
  std::size_t runs_override = 0;  // 0 = use mode default
  std::uint64_t seed = 1000;

  std::size_t runs(std::size_t quick_default, std::size_t full_default) const {
    if (runs_override > 0) return runs_override;
    return full ? full_default : quick_default;
  }
  double scale(double quick_value, double full_value) const {
    return full ? full_value : quick_value;
  }
};

inline BenchConfig parseArgs(int argc, char** argv) {
  BenchConfig cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      cfg.full = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      cfg.full = false;
    } else if (std::strcmp(argv[i], "--runs") == 0 && i + 1 < argc) {
      cfg.runs_override = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      cfg.seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick|--full] [--runs N] [--seed S]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return cfg;
}

/// Cost (equivalent high-fidelity simulations) at which the final best
/// high-fidelity result was first attained — the paper's "Avg. # Sim"
/// notion ("simulations required to reach the corresponding results").
inline double costToReachBest(const bo::SynthesisResult& r) {
  const auto best = bo::bestHighIndex(r.history);
  if (!best) return r.equivalent_high_sims;
  return r.history[*best].cumulative_cost;
}

/// Aggregated rows of one algorithm column in a results table.
struct AlgoStats {
  std::string name;
  std::vector<double> objectives{};    // best feasible objective per run
  std::vector<double> reach_costs{};   // cost to reach it per run
  std::size_t successes = 0;         // runs that found a feasible design
  std::size_t total_runs = 0;
  bo::SynthesisResult median_result{}; // the run with the median objective

  void add(const bo::SynthesisResult& r) {
    ++total_runs;
    if (r.feasible_found) ++successes;
    objectives.push_back(r.best_eval.objective);
    reach_costs.push_back(costToReachBest(r));
    // Keep the run whose objective is currently the median (approximate:
    // recompute by storing all would cost memory; keep best-so-far median
    // by distance to running median).
    if (total_runs == 1 ||
        std::abs(r.best_eval.objective - linalg::median(objectives)) <=
            std::abs(median_result.best_eval.objective -
                     linalg::median(objectives)))
      median_result = r;
  }

  linalg::RunSummary summary(bool lower_is_better) const {
    return linalg::summarizeRuns(objectives, lower_is_better);
  }
  double avgSims() const { return linalg::mean(reach_costs); }
};

inline void printRule(int width = 72) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace mfbo::bench
