// Figure 2 reproduction: the posterior of the multi-fidelity model and the
// Expected Improvement function over it, on the pedagogical example.
//
// The figure motivates the §4.1 MSP design: around the incumbent τ the EI
// surface is flat (near-zero gradient), so randomly scattered local-search
// starts cannot refine the best region — hence the extra starts clustered
// around τ_l and τ_h. We print the EI series and quantify the flatness by
// comparing |dEI/dx| near the incumbent with the domain-wide maximum.
#include <cmath>
#include <cstdio>
#include <utility>

#include "bench_common.h"
#include "bo/acquisition.h"
#include "mf/nargp.h"
#include "problems/synthetic.h"

int main(int argc, char** argv) {
  using namespace mfbo;
  const bench::BenchConfig cfg = bench::parseArgs(argc, argv);

  const std::size_t n_low = 40, n_high = 15;
  std::vector<linalg::Vector> x_low, x_high;
  std::vector<double> y_low, y_high;
  for (std::size_t i = 0; i < n_low; ++i) {
    const double x =
        -0.5 + (static_cast<double>(i) + 0.5) / static_cast<double>(n_low);
    x_low.push_back(linalg::Vector{x});
    y_low.push_back(problems::pedagogicalLow(x));
  }
  for (std::size_t i = 0; i < n_high; ++i) {
    const double x =
        -0.5 + (static_cast<double>(i) + 0.5) / static_cast<double>(n_high);
    x_high.push_back(linalg::Vector{x});
    y_high.push_back(problems::pedagogicalHigh(x));
  }

  mf::NargpConfig mf_cfg;
  mf_cfg.low.seed = 11;
  mf_cfg.high.seed = 13;
  mf::NargpModel model(1, mf_cfg);
  model.fit(x_low, y_low, x_high, y_high);

  const double tau = model.bestHighObserved();
  double tau_x = 0.0;
  for (std::size_t i = 0; i < n_high; ++i)
    if (y_high[i] == tau) tau_x = x_high[i][0];

  std::printf("# Figure 2: fused posterior and EI (tau = %.5f at x = %.4f)\n",
              tau, tau_x);
  std::printf("%10s %12s %12s %14s\n", "x", "mu", "3sd", "EI");

  const std::size_t n_grid = 201;
  std::vector<double> ei(n_grid), xs(n_grid);
  for (std::size_t i = 0; i < n_grid; ++i) {
    const double x = -0.5 + static_cast<double>(i) / 200.0;
    const auto p = model.predictHigh(linalg::Vector{x});
    xs[i] = x;
    ei[i] = bo::expectedImprovement(p, tau);
    std::printf("%10.4f %12.6f %12.6f %14.8f\n", x, p.mean, 3.0 * p.sd(),
                ei[i]);
  }

  // Dead-zone metric: the paper's §4.1 argument is that EI (and hence its
  // gradient) vanishes in a neighbourhood of the incumbent — a local
  // search started there cannot move, and randomly scattered starts rarely
  // land there. Report EI at τ and within small neighbourhoods, against
  // the global maximum.
  double ei_max = 0.0;
  for (double v : ei) ei_max = std::max(ei_max, v);
  auto ei_at = [&](double x) {
    return bo::expectedImprovement(model.predictHigh(linalg::Vector{x}), tau);
  };
  std::printf("\n# EI dead zone around the incumbent (motivates MSP "
              "scatter)\n");
  std::printf("EI(tau_x)             : %.3e\n", ei_at(tau_x));
  for (double delta : {0.001, 0.005, 0.02}) {
    const double nearby =
        std::max(ei_at(tau_x - delta), ei_at(tau_x + delta));
    std::printf("max EI at tau ± %.3f  : %.3e  (%.2f%% of global max)\n",
                delta, nearby, 100.0 * nearby / std::max(ei_max, 1e-300));
  }
  std::printf("global max EI         : %.3e\n", ei_max);

  Json doc = bench::artifactHeader(cfg, "fig2_acquisition", 1);
  doc.set("tau", tau);
  doc.set("tau_x", tau_x);
  doc.set("ei_at_tau", ei_at(tau_x));
  doc.set("ei_max", ei_max);
  bench::writeArtifactFile(cfg, std::move(doc));
  return 0;
}
