// Micro-benchmark for the parallel execution layer: MSP multistart speedup
// and 1-vs-N determinism in one artifact.
//
// Real acquisition objectives are compute-bound, but the workload the pool
// is sized for — analog circuit synthesis — is dominated by simulator
// latency, so each objective evaluation here sleeps for a fixed "simulator
// call" before its (cheap) arithmetic. That makes the measured speedup
// meaningful even on a single-core CI runner: threads overlap the latency,
// exactly as they overlap blocking simulator processes in production.
//
// The artifact records serial/parallel wall times, the speedup, and whether
// the two runs returned byte-identical results (the binary exits 1 when
// they do not, so a silent determinism regression fails CI even without
// artifact validation).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "linalg/rng.h"
#include "opt/multistart.h"

int main(int argc, char** argv) {
  using namespace mfbo;
  const bench::BenchConfig cfg = bench::parseArgs(argc, argv);
  const std::size_t threads = cfg.threads > 0 ? cfg.threads : 4;
  const std::size_t n_starts = cfg.full ? 32 : 16;
  const auto sim_latency = std::chrono::microseconds(cfg.full ? 500 : 200);

  // Multimodal surrogate of an acquisition surface, behind a simulated
  // simulator call.
  const opt::ScalarObjective f = [&](const linalg::Vector& x) {
    std::this_thread::sleep_for(sim_latency);
    double acc = 10.0 * static_cast<double>(x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
      acc += (x[i] - 0.4) * (x[i] - 0.4) -
             10.0 * std::cos(7.0 * (x[i] - 0.4));
    return acc;
  };
  const linalg::Box box(linalg::Vector(4, -1.0), linalg::Vector(4, 1.0));
  linalg::Rng rng(cfg.seed);
  std::vector<linalg::Vector> starts;
  starts.reserve(n_starts);
  for (std::size_t s = 0; s < n_starts; ++s)
    starts.push_back(rng.uniformVector(4, -1.0, 1.0));
  opt::MultistartOptions opts;
  opts.local.max_evaluations = 60;

  // Best-of-3 wall time per leg: sleep-dominated timings are stable, but CI
  // runners hiccup.
  const auto time_leg = [&](std::size_t leg_threads, opt::OptResult& result) {
    parallel::setMaxThreads(leg_threads);
    double best = 0.0;
    for (int trial = 0; trial < 3; ++trial) {
      const auto start = std::chrono::steady_clock::now();
      result = opt::multistartMinimize(f, starts, box, opts);
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (trial == 0 || elapsed.count() < best) best = elapsed.count();
    }
    parallel::setMaxThreads(0);
    return best;
  };

  opt::OptResult serial, pooled;
  const double serial_seconds = time_leg(1, serial);
  const double parallel_seconds = time_leg(threads, pooled);
  const double speedup = serial_seconds / parallel_seconds;

  bool identical = serial.value == pooled.value &&
                   serial.best_start == pooled.best_start &&
                   serial.evaluations == pooled.evaluations &&
                   serial.x.size() == pooled.x.size();
  for (std::size_t i = 0; identical && i < serial.x.size(); ++i)
    identical = serial.x[i] == pooled.x[i];

  std::printf("# micro_parallel: %zu starts, %lld us simulated latency\n",
              n_starts, static_cast<long long>(sim_latency.count()));
  std::printf("%-22s %10.4f s\n", "serial (1 thread)", serial_seconds);
  std::printf("%-22s %10.4f s  (%zu threads)\n", "parallel",
              parallel_seconds, threads);
  std::printf("%-22s %10.2fx\n", "speedup", speedup);
  std::printf("%-22s %10s\n", "identical results", identical ? "yes" : "NO");

  Json doc = bench::artifactHeader(cfg, "micro_parallel", 1);
  doc.set("threads", threads);
  doc.set("n_starts", n_starts);
  doc.set("sim_latency_us",
          Json::number(static_cast<double>(sim_latency.count())));
  doc.set("serial_seconds", serial_seconds);
  doc.set("parallel_seconds", parallel_seconds);
  doc.set("speedup", speedup);
  doc.set("identical", identical);
  doc.set("best_value", serial.value);
  doc.set("best_start", serial.best_start);
  bench::writeArtifactFile(cfg, std::move(doc));

  if (!identical) {
    std::fprintf(stderr,
                 "determinism violation: serial and %zu-thread multistart "
                 "results differ\n",
                 threads);
    return 1;
  }
  return 0;
}
