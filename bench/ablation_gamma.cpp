// Ablation: sensitivity of the fidelity-selection threshold γ (eq. 11).
//
// γ → 0 forces every BO sample to the cheap model (the surrogate never
// gets high-fidelity corrections); γ → ∞ sends every sample to the
// expensive model (pure high-fidelity BO with a low-fidelity prior). The
// paper fixes γ = 0.01 "empirically" — this bench sweeps it.
#include <cstdio>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "bo/mfbo.h"
#include "problems/synthetic.h"

int main(int argc, char** argv) {
  using namespace mfbo;
  const bench::BenchConfig cfg = bench::parseArgs(argc, argv);
  const std::size_t runs = cfg.runs(5, 12);
  const double budget = cfg.scale(12, 30);

  problems::ForresterProblem problem;

  std::printf("# Ablation: fidelity threshold gamma (Forrester, budget "
              "%.0f, %zu runs; true min -6.0207)\n\n",
              budget, runs);
  std::printf("%10s %10s %10s %10s %10s %10s\n", "gamma", "mean f",
              "worst f", "avg nlow", "avg nhigh", "avg #sim");

  std::vector<bench::AlgoStats> sweep;
  sweep.reserve(5);
  for (double gamma : {0.0, 1e-3, 1e-2, 1e-1, 1e9}) {
    bo::MfboOptions opt;
    opt.n_init_low = 12;
    opt.n_init_high = 4;
    opt.budget = budget;
    opt.gamma = gamma;
    opt.msp.n_starts = 10;
    opt.msp.local.max_evaluations = 80;
    opt.nargp.n_mc = 40;
    opt.nargp.low.n_restarts = 1;
    opt.nargp.high.n_restarts = 1;

    char label[32];
    std::snprintf(label, sizeof label, "gamma=%.0e", gamma);
    bench::AlgoStats stats{label};
    std::vector<double> nlow, nhigh;
    for (std::size_t r = 0; r < runs; ++r) {
      const auto res = bo::MfboSynthesizer(opt).run(problem, cfg.seed + r);
      stats.add(res);
      nlow.push_back(static_cast<double>(res.n_low));
      nhigh.push_back(static_cast<double>(res.n_high));
    }
    const auto s = stats.summary(true);
    std::printf("%10.0e %10.4f %10.4f %10.1f %10.1f %10.1f\n", gamma, s.mean,
                s.worst, linalg::mean(nlow), linalg::mean(nhigh),
                stats.avgSims());
    sweep.push_back(std::move(stats));
  }
  std::vector<const bench::AlgoStats*> algos;
  for (const auto& s : sweep) algos.push_back(&s);
  bench::writeArtifact(cfg, "ablation_gamma", runs, algos);
  std::printf("\n# paper's choice gamma = 0.01 should sit at (or near) the "
              "sweet spot.\n");
  return 0;
}
