// Figure 1 reproduction: posterior of the multi-fidelity (NARGP) model vs
// the single-fidelity GP on the pedagogical example of Perdikaris et al.
// (the latent pair behind the paper's Figures 1-2), x ∈ [−0.5, 0.5].
//
// Prints the series a plotting tool would consume (x, exact, µ, ±3σ for
// both models) plus the quantitative summary: RMSE and 3σ-coverage. The
// paper's claim: the fused posterior tracks the exact high-fidelity
// function far better, with far tighter uncertainty, than the GP trained
// on the high-fidelity points alone.
#include <cmath>
#include <cstdio>
#include <utility>

#include "bench_common.h"
#include "gp/gp_regressor.h"
#include "mf/nargp.h"
#include "problems/synthetic.h"

int main(int argc, char** argv) {
  using namespace mfbo;
  const bench::BenchConfig cfg = bench::parseArgs(argc, argv);

  // Training sets: a dense cheap design plus a sparse expensive one
  // (half-offset grids; see problems::pedagogical*).
  const std::size_t n_low = 40, n_high = 15;
  std::vector<linalg::Vector> x_low, x_high;
  std::vector<double> y_low, y_high;
  for (std::size_t i = 0; i < n_low; ++i) {
    const double x =
        -0.5 + (static_cast<double>(i) + 0.5) / static_cast<double>(n_low);
    x_low.push_back(linalg::Vector{x});
    y_low.push_back(problems::pedagogicalLow(x));
  }
  for (std::size_t i = 0; i < n_high; ++i) {
    const double x =
        -0.5 + (static_cast<double>(i) + 0.5) / static_cast<double>(n_high);
    x_high.push_back(linalg::Vector{x});
    y_high.push_back(problems::pedagogicalHigh(x));
  }

  mf::NargpConfig mf_cfg;
  mf_cfg.low.seed = 11;
  mf_cfg.high.seed = 13;
  mf::NargpModel fused(1, mf_cfg);
  fused.fit(x_low, y_low, x_high, y_high);

  gp::GpConfig sf_cfg;
  sf_cfg.seed = 17;
  gp::GpRegressor single(std::make_unique<gp::SeArdKernel>(1), sf_cfg);
  single.fit(x_high, y_high);

  std::printf("# Figure 1: multi-fidelity vs single-fidelity posterior\n");
  std::printf("# %d low-fidelity + %d high-fidelity training points\n",
              static_cast<int>(n_low), static_cast<int>(n_high));
  std::printf("%10s %10s %10s %10s %10s %10s %10s\n", "x", "exact",
              "mf_mu", "mf_3sd", "sf_mu", "sf_3sd", "low_exact");

  double mf_se = 0.0, sf_se = 0.0;
  std::size_t mf_cover = 0, sf_cover = 0;
  const std::size_t n_grid = 101;
  for (std::size_t i = 0; i < n_grid; ++i) {
    const double x = -0.5 + static_cast<double>(i) / 100.0;
    const double exact = problems::pedagogicalHigh(x);
    const auto mf_p = fused.predictHigh(linalg::Vector{x});
    const auto sf_p = single.predict(linalg::Vector{x});
    std::printf("%10.4f %10.5f %10.5f %10.5f %10.5f %10.5f %10.5f\n", x,
                exact, mf_p.mean, 3.0 * mf_p.sd(), sf_p.mean,
                3.0 * sf_p.sd(), problems::pedagogicalLow(x));
    mf_se += (mf_p.mean - exact) * (mf_p.mean - exact);
    sf_se += (sf_p.mean - exact) * (sf_p.mean - exact);
    if (std::abs(mf_p.mean - exact) <= 3.0 * mf_p.sd()) ++mf_cover;
    if (std::abs(sf_p.mean - exact) <= 3.0 * sf_p.sd()) ++sf_cover;
  }

  const double n = static_cast<double>(n_grid);
  std::printf("\n# summary (paper claim: MF beats SF on both counts)\n");
  std::printf("multi-fidelity : RMSE = %.5f, 3-sigma coverage = %5.1f%%\n",
              std::sqrt(mf_se / n), 100.0 * static_cast<double>(mf_cover) / n);
  std::printf("single-fidelity: RMSE = %.5f, 3-sigma coverage = %5.1f%%\n",
              std::sqrt(sf_se / n), 100.0 * static_cast<double>(sf_cover) / n);
  std::printf("RMSE ratio (SF/MF): %.1fx\n",
              std::sqrt(sf_se / std::max(mf_se, 1e-300)));

  Json doc = bench::artifactHeader(cfg, "fig1_pedagogical", 1);
  doc.set("mf_rmse", std::sqrt(mf_se / n));
  doc.set("sf_rmse", std::sqrt(sf_se / n));
  doc.set("mf_coverage", static_cast<double>(mf_cover) / n);
  doc.set("sf_coverage", static_cast<double>(sf_cover) / n);
  bench::writeArtifactFile(cfg, std::move(doc));
  return 0;
}
