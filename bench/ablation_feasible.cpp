// Ablation: the §4.2 first-feasible strategy — while no feasible point is
// known, minimize Σ max(0, µ_i) (eq. 13) instead of the wEI.
//
// On a constrained problem whose feasible region is a thin slab, the wEI
// alone can stall: both EI and PF are near zero almost everywhere, so the
// acquisition landscape gives no direction. The eq. (13) criterion is a
// smooth "distance to predicted feasibility" and pulls the search in.
// This bench measures the cost to reach the first feasible point with the
// strategy on and off.
#include <cstdio>

#include "bench_common.h"
#include "bo/mfbo.h"
#include "problems/synthetic.h"

namespace {

using namespace mfbo;

/// Cost at which the first feasible high-fidelity point appeared (∞ if
/// none).
double costToFirstFeasible(const bo::SynthesisResult& r) {
  for (const auto& h : r.history)
    if (h.fidelity == bo::Fidelity::kHigh && h.eval.feasible())
      return h.cumulative_cost;
  return std::numeric_limits<double>::infinity();
}

/// Thin-slab constrained problem: minimize ‖x−0.2‖² subject to
/// 0.76 ≤ Σx_i/d ≤ 0.78. In 8-d the coordinate mean concentrates around
/// 0.5 (σ ≈ 0.10), so a random point is feasible with probability ≈0.3% —
/// the initial design essentially never contains one, and the objective
/// actively pulls the search away from the slab.
class ThinSlabProblem final : public bo::Problem {
 public:
  explicit ThinSlabProblem(std::size_t d) : d_(d) {}
  std::string name() const override { return "thin-slab"; }
  std::size_t dim() const override { return d_; }
  std::size_t numConstraints() const override { return 2; }
  bo::Box bounds() const override {
    return bo::Box(bo::Vector(d_, 0.0), bo::Vector(d_, 1.0));
  }
  double costRatio() const override { return 10.0; }
  bo::Evaluation evaluate(const bo::Vector& x, bo::Fidelity f) override {
    double obj = 0.0, mean = 0.0;
    for (std::size_t i = 0; i < d_; ++i) {
      obj += (x[i] - 0.2) * (x[i] - 0.2);
      mean += x[i] / static_cast<double>(d_);
    }
    bo::Evaluation e;
    if (f == bo::Fidelity::kLow) {
      e.objective = 0.92 * obj + 0.05 * std::sin(4.0 * mean);
      e.constraints = {0.76 - mean + 0.005, mean - 0.78 + 0.005};
    } else {
      e.objective = obj;
      e.constraints = {0.76 - mean, mean - 0.78};
    }
    return e;
  }

 private:
  std::size_t d_;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchConfig cfg = bench::parseArgs(argc, argv);
  const std::size_t runs = cfg.runs(5, 12);
  const double budget = cfg.scale(25, 50);

  ThinSlabProblem problem(8);

  bo::MfboOptions on;
  on.n_init_low = 15;
  on.n_init_high = 5;
  on.budget = budget;
  on.msp.n_starts = 10;
  on.msp.local.max_evaluations = 80;
  on.nargp.n_mc = 40;
  on.nargp.low.n_restarts = 1;
  on.nargp.high.n_restarts = 1;

  bo::MfboOptions off = on;
  off.use_first_feasible = false;

  bench::AlgoStats stats_on{"first_feasible_on"};
  bench::AlgoStats stats_off{"first_feasible_off"};
  std::size_t found_on = 0, found_off = 0;
  std::vector<double> cost_on, cost_off;
  for (std::size_t r = 0; r < runs; ++r) {
    const auto a = bo::MfboSynthesizer(on).run(problem, cfg.seed + r);
    const auto b = bo::MfboSynthesizer(off).run(problem, cfg.seed + r);
    stats_on.add(a);
    stats_off.add(b);
    const double ca = costToFirstFeasible(a);
    const double cb = costToFirstFeasible(b);
    if (std::isfinite(ca)) {
      ++found_on;
      cost_on.push_back(ca);
    }
    if (std::isfinite(cb)) {
      ++found_off;
      cost_off.push_back(cb);
    }
  }

  std::printf("# Ablation: first-feasible strategy (thin-slab problem, "
              "budget %.0f, %zu runs)\n\n",
              budget, runs);
  std::printf("%-28s %14s %20s\n", "strategy", "feasible found",
              "avg cost to feasible");
  std::printf("%-28s %11zu/%zu %20s\n", "eq. (13) first-feasible (on)",
              found_on, runs,
              cost_on.empty()
                  ? "-"
                  : std::to_string(linalg::mean(cost_on)).c_str());
  std::printf("%-28s %11zu/%zu %20s\n", "wEI only (off)", found_off, runs,
              cost_off.empty()
                  ? "-"
                  : std::to_string(linalg::mean(cost_off)).c_str());
  bench::writeArtifact(cfg, "ablation_feasible", runs,
                       {&stats_on, &stats_off});
  return 0;
}
