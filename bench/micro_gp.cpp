// Micro-benchmarks (google-benchmark): the numerical kernels behind the
// optimizer — Cholesky, exact NLML + gradient, GP train/predict, and the
// NARGP Monte-Carlo fused prediction.
#include <benchmark/benchmark.h>

#include "gp/gp_regressor.h"
#include "linalg/cholesky.h"
#include "linalg/rng.h"
#include "linalg/sampling.h"
#include "mf/nargp.h"

namespace {

using namespace mfbo;
using linalg::Matrix;
using linalg::Rng;
using linalg::Vector;

Matrix randomSpd(std::size_t n, Rng& rng) {
  Matrix g(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) g(r, c) = rng.normal();
  Matrix spd = linalg::gramTN(g, g);
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  return spd;
}

void BM_Cholesky(benchmark::State& state) {
  Rng rng(1);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Matrix a = randomSpd(n, rng);
  for (auto _ : state) {
    auto chol = linalg::Cholesky::factor(a);
    benchmark::DoNotOptimize(chol.logDet());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Cholesky)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Complexity();

struct GpData {
  std::vector<Vector> x;
  Vector y;
};

GpData makeData(std::size_t n, std::size_t d, Rng& rng) {
  GpData data;
  data.y = Vector(n);
  const auto box = linalg::Box::unitCube(d);
  data.x = linalg::latinHypercube(n, box, rng);
  for (std::size_t i = 0; i < n; ++i) data.y[i] = rng.normal();
  return data;
}

void BM_NlmlWithGradient(benchmark::State& state) {
  Rng rng(2);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t d = static_cast<std::size_t>(state.range(1));
  const GpData data = makeData(n, d, rng);
  gp::SeArdKernel kernel(d);
  for (auto _ : state) {
    Vector grad;
    benchmark::DoNotOptimize(gp::negLogMarginalLikelihood(
        kernel, std::log(0.1), data.x, data.y, &grad));
  }
}
BENCHMARK(BM_NlmlWithGradient)
    ->Args({50, 5})
    ->Args({100, 5})
    ->Args({100, 36})
    ->Args({200, 36});

void BM_GpTrain(benchmark::State& state) {
  Rng rng(3);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t d = static_cast<std::size_t>(state.range(1));
  const GpData data = makeData(n, d, rng);
  std::vector<double> y(data.y.begin(), data.y.end());
  for (auto _ : state) {
    gp::GpConfig cfg;
    cfg.n_restarts = 1;
    cfg.lbfgs.max_iterations = 30;
    gp::GpRegressor model(std::make_unique<gp::SeArdKernel>(d), cfg);
    model.fit(data.x, y);
    benchmark::DoNotOptimize(model.noiseSd());
  }
}
BENCHMARK(BM_GpTrain)->Args({50, 5})->Args({100, 5})->Args({60, 36});

void BM_GpPredict(benchmark::State& state) {
  Rng rng(4);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const GpData data = makeData(n, 5, rng);
  std::vector<double> y(data.y.begin(), data.y.end());
  gp::GpConfig cfg;
  cfg.n_restarts = 0;
  cfg.lbfgs.max_iterations = 10;
  gp::GpRegressor model(std::make_unique<gp::SeArdKernel>(5), cfg);
  model.fit(data.x, y);
  const Vector q = rng.uniformVector(5);
  for (auto _ : state) benchmark::DoNotOptimize(model.predict(q).mean);
}
BENCHMARK(BM_GpPredict)->Arg(50)->Arg(100)->Arg(200);

void BM_NargpPredictHigh(benchmark::State& state) {
  Rng rng(5);
  const std::size_t n_low = 60;
  const std::size_t n_high = static_cast<std::size_t>(state.range(0));
  const std::size_t d = 5;
  const auto box = linalg::Box::unitCube(d);
  std::vector<Vector> xl = linalg::latinHypercube(n_low, box, rng);
  std::vector<Vector> xh = linalg::latinHypercube(n_high, box, rng);
  std::vector<double> yl, yh;
  for (const auto& x : xl) yl.push_back(std::sin(3.0 * x.sum()));
  for (const auto& x : xh)
    yh.push_back(std::sin(3.0 * x.sum()) * x.sum());
  mf::NargpConfig cfg;
  cfg.low.n_restarts = 0;
  cfg.high.n_restarts = 0;
  cfg.low.lbfgs.max_iterations = 15;
  cfg.high.lbfgs.max_iterations = 15;
  cfg.n_mc = 50;
  mf::NargpModel model(d, cfg);
  model.fit(xl, yl, xh, yh);
  const Vector q = rng.uniformVector(d);
  for (auto _ : state) benchmark::DoNotOptimize(model.predictHigh(q).mean);
}
BENCHMARK(BM_NargpPredictHigh)->Arg(20)->Arg(60)->Arg(120);

}  // namespace

BENCHMARK_MAIN();
