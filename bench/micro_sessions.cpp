// Micro-benchmark for the multi-session service layer: wall time and
// throughput as the session count grows on a fixed-size pool, with the
// hard invariants checked in-binary — every session's --no-timing artifact
// must be byte-identical to the same spec run solo, no matter how many
// sessions it shared the scheduler and the pool with.
//
// Two extra flags drive the crash-recovery CI leg:
//   --checkpoint-dir DIR     persist every session's boundary to DIR and,
//                            when DIR already holds persisted state from a
//                            killed run, recover it and require the
//                            completed results to be byte-identical to an
//                            uninterrupted in-process reference.
//   --kill-after-rounds K    (with --checkpoint-dir) run the recovery
//                            workload for K scheduler rounds, then exit
//                            mid-run without any shutdown path — the
//                            "killed process". A following invocation with
//                            the same --checkpoint-dir completes the runs.
//   --health FILE            write the 8-session fleet's health snapshot
//                            (service/health.h) to FILE (JSON) and
//                            FILE.prom (Prometheus-style exposition).
//
// The recovery legs run with the flight recorder in wall-clock dump mode
// (dump_dir = the checkpoint directory, fatal-signal handler installed),
// so a killed fleet leaves flightrec.<pid>.jsonl next to its checkpoints
// for tools/health_validate.py.
//
// The binary exits 1 when any identity or recovery leg fails, so a
// regression fails CI even without artifact validation.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "bo/engine.h"
#include "bo/mfbo.h"
#include "common/eventlog.h"
#include "problems/synthetic.h"
#include "service/health.h"
#include "service/session_manager.h"

namespace {

using namespace mfbo;

/// Tiny-but-complete per-session workload (both fit paths, both
/// fidelities, q = 1 and q = 2 interleaved across the fleet). --full runs
/// the checkpoint-fixture budget instead.
bo::MfboOptions sessionOptions(std::size_t batch_size, bool full) {
  bo::MfboOptions opt;
  opt.n_init_low = 4;
  opt.n_init_high = 2;
  opt.budget = full ? 6.0 : 4.0;
  opt.gamma = 0.5;
  opt.retrain_every = 2;
  opt.batch_size = batch_size;
  opt.x_star_seeds = 2;
  opt.msp.n_starts = 3;
  opt.msp.local.max_evaluations = 25;
  opt.nargp.n_mc = 8;
  opt.nargp.low.n_restarts = 1;
  opt.nargp.high.n_restarts = 1;
  return opt;
}

/// Spec for fleet slot @p i — a pure function of (cfg, i), so the kill and
/// recovery invocations rebuild the exact same fleet.
service::SessionSpec fleetSpec(const bench::BenchConfig& cfg,
                               std::size_t i) {
  service::SessionSpec spec;
  spec.id = "s" + std::to_string(i);
  spec.problem = [] {
    return std::make_unique<problems::ConstrainedQuadraticProblem>(2);
  };
  const std::uint64_t seed = cfg.seed + i;
  const std::size_t batch_size = 1 + i % 2;
  const bool full = cfg.full;
  spec.engine = [seed, batch_size, full](bo::Problem& problem) {
    return std::make_unique<bo::MfboEngine>(
        problem, seed, sessionOptions(batch_size, full));
  };
  return spec;
}

constexpr std::size_t kMaxSessions = 8;
constexpr std::size_t kRecoverySessions = 4;

}  // namespace

int main(int argc, char** argv) {
  // --checkpoint-dir / --kill-after-rounds / --health are ours; strip
  // them before the shared parser.
  std::string checkpoint_dir;
  std::string health_path;
  long long kill_after_rounds = -1;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--checkpoint-dir") == 0 && i + 1 < argc) {
      checkpoint_dir = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--kill-after-rounds") == 0 && i + 1 < argc) {
      kill_after_rounds = std::atoll(argv[++i]);
      continue;
    }
    if (std::strcmp(argv[i], "--health") == 0 && i + 1 < argc) {
      health_path = argv[++i];
      continue;
    }
    args.push_back(argv[i]);
  }
  const bench::BenchConfig cfg =
      bench::parseArgs(static_cast<int>(args.size()), args.data());
  const std::size_t threads = cfg.threads > 0 ? cfg.threads : 4;

  if (kill_after_rounds >= 0) {
    // The to-be-killed half of the recovery leg: run the fleet a fixed
    // number of scheduler rounds with every boundary persisted, then fall
    // off main() mid-run.
    if (checkpoint_dir.empty()) {
      std::fprintf(stderr,
                   "--kill-after-rounds requires --checkpoint-dir\n");
      return 2;
    }
    parallel::setMaxThreads(threads);
    // Black-box mode for the to-be-killed fleet: wall-clock stamps, dumps
    // next to the checkpoints, fatal signals covered. Every persist
    // snapshots the journal, so the post-mortem window survives even a
    // SIGKILL that no handler can see.
    eventlog::Options journal_options;
    journal_options.wall_clock = true;
    journal_options.dump_dir = checkpoint_dir;
    journal_options.install_signal_handler = true;
    eventlog::enable(journal_options);
    service::SessionManagerOptions options;
    options.checkpoint_dir = checkpoint_dir;
    service::SessionManager manager(options);
    for (std::size_t i = 0; i < kRecoverySessions; ++i)
      manager.create(fleetSpec(cfg, i));
    for (long long round = 0; round < kill_after_rounds; ++round)
      if (manager.stepRound() == 0) break;
    eventlog::dumpFlightRecorder();
    std::printf("killed after %lld rounds with %zu sessions in flight\n",
                kill_after_rounds, manager.size());
    return 0;
  }

  std::printf("# micro_sessions: %zu-thread pool, seed %llu\n", threads,
              static_cast<unsigned long long>(cfg.seed));

  // With --health the fleet runs under the deterministic-mode flight
  // recorder so the snapshot's eventlog section carries live counters.
  if (!health_path.empty()) eventlog::enable();

  // Solo references: each fleet spec run alone, serially. These are both
  // the identity baseline and the denominator for the scaling numbers.
  std::vector<std::string> solo_artifacts;
  double solo_seconds = 0.0;
  {
    parallel::setMaxThreads(1);
    for (std::size_t i = 0; i < kMaxSessions; ++i) {
      service::Session session(fleetSpec(cfg, i));
      const auto start = std::chrono::steady_clock::now();
      while (!session.done()) session.step();
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      solo_seconds += elapsed.count();
      solo_artifacts.push_back(
          session.artifactJson(/*include_timing=*/false).dump());
    }
    parallel::setMaxThreads(0);
  }

  bool all_identical = true;
  Json rows = Json::array();
  for (const std::size_t n_sessions : {std::size_t{1}, std::size_t{2},
                                       std::size_t{4}, std::size_t{8}}) {
    parallel::setMaxThreads(threads);
    service::SessionManager manager;
    for (std::size_t i = 0; i < n_sessions; ++i)
      manager.create(fleetSpec(cfg, i));
    const auto start = std::chrono::steady_clock::now();
    const std::size_t rounds = manager.runAll();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    if (!health_path.empty() && n_sessions == kMaxSessions) {
      service::writeHealthFiles(manager.healthJson(), health_path);
      std::printf("health: wrote %s and %s.prom\n", health_path.c_str(),
                  health_path.c_str());
    }
    parallel::setMaxThreads(0);

    std::size_t steps_total = 0;
    bool identical = true;
    for (std::size_t i = 0; i < n_sessions; ++i) {
      service::Session& session = manager.session("s" + std::to_string(i));
      steps_total += session.steps();
      identical = identical &&
                  session.artifactJson(false).dump() == solo_artifacts[i];
    }
    all_identical = all_identical && identical;

    Json row = Json::object();
    row.set("n_sessions", n_sessions);
    row.set("rounds", rounds);
    row.set("steps_total", steps_total);
    row.set("identical", identical);
    row.set("wall_seconds", cfg.timing ? elapsed.count() : 0.0);
    row.set("steps_per_second",
            cfg.timing && elapsed.count() > 0.0
                ? static_cast<double>(steps_total) / elapsed.count()
                : 0.0);
    rows.push(std::move(row));

    std::printf(
        "sessions=%zu  rounds %4zu  steps %5zu  %7.3f s  identical %s\n",
        n_sessions, rounds, steps_total, elapsed.count(),
        identical ? "yes" : "NO");
  }

  // Recovery leg (CI: run once with --kill-after-rounds, then again with
  // only --checkpoint-dir). Also exercised cold: with no persisted state
  // the fleet simply runs to completion and the identity check still
  // applies, via the resume-stable result documents.
  bool recovery_identical = true;
  if (!checkpoint_dir.empty()) {
    // The recovering fleet runs in black-box mode too. Dump files are
    // pid-keyed, so the killed run's window stays on disk next to the
    // recovery run's own journal.
    if (eventlog::enabled()) eventlog::disable();
    eventlog::Options journal_options;
    journal_options.wall_clock = true;
    journal_options.dump_dir = checkpoint_dir;
    journal_options.install_signal_handler = true;
    eventlog::enable(journal_options);
    std::vector<std::string> reference;
    {
      parallel::setMaxThreads(1);
      service::SessionManager manager;
      for (std::size_t i = 0; i < kRecoverySessions; ++i)
        manager.create(fleetSpec(cfg, i));
      manager.runAll();
      for (const std::string& id : manager.ids())
        reference.push_back(manager.session(id).resultJson().dump());
      parallel::setMaxThreads(0);
    }
    parallel::setMaxThreads(threads);
    service::SessionManagerOptions options;
    options.checkpoint_dir = checkpoint_dir;
    service::SessionManager manager(options);
    std::size_t in_flight = 0;
    for (std::size_t i = 0; i < kRecoverySessions; ++i) {
      const service::Session& session = manager.create(fleetSpec(cfg, i));
      if (session.steps() > 0 || session.done()) ++in_flight;
    }
    manager.runAll();
    const std::vector<std::string> ids = manager.ids();
    for (std::size_t i = 0; i < ids.size(); ++i)
      recovery_identical =
          recovery_identical &&
          manager.session(ids[i]).resultJson().dump() == reference[i];
    parallel::setMaxThreads(0);
    std::printf("recovery: %zu/%zu sessions resumed, identical %s\n",
                in_flight, kRecoverySessions,
                recovery_identical ? "yes" : "NO");
  }

  Json doc = bench::artifactHeader(cfg, "micro_sessions", 1);
  doc.set("threads", threads);
  doc.set("solo_wall_seconds", cfg.timing ? solo_seconds : 0.0);
  doc.set("sessions", std::move(rows));
  doc.set("identical", all_identical);
  doc.set("recovery_identical", recovery_identical);
  bench::writeArtifactFile(cfg, std::move(doc));

  if (!all_identical || !recovery_identical) {
    std::fprintf(stderr,
                 "determinism violation: a concurrent or recovered session "
                 "diverged from its solo reference bytes\n");
    return 1;
  }
  return 0;
}
