// Table 2 reproduction: charge-pump synthesis (36 variables, 27 PVT
// corners), four algorithms.
//
// Paper setup (--full): Ours with a 300-equivalent-sim budget from
// 30 low + 10 high initial points; WEIBO 120 init / 800 sims; GASPAD
// 120 init / 2500 sims; DE 100 init / 10100 sims; 10 repetitions. The
// quick default scales everything down for a single core.
//
// Rows mirror the paper's Table 2: the eq. (16) metrics of the median
// design, FOM statistics, Avg. # Sim, and success counts.
#include <cstdio>

#include "bench_common.h"
#include "bo/de_baseline.h"
#include "bo/gaspad.h"
#include "bo/mfbo.h"
#include "bo/weibo.h"
#include "problems/charge_pump.h"

int main(int argc, char** argv) {
  using namespace mfbo;
  const bench::BenchConfig cfg = bench::parseArgs(argc, argv);
  const std::size_t runs = cfg.runs(2, 10);

  problems::ChargePumpProblem problem;

  bo::MfboOptions mfbo_opt;
  mfbo_opt.n_init_low = 30;
  mfbo_opt.n_init_high = 10;
  mfbo_opt.budget = cfg.scale(40, 300);
  mfbo_opt.retrain_every = 3;
  mfbo_opt.msp.n_starts = cfg.full ? 20 : 10;
  mfbo_opt.msp.local.max_evaluations = cfg.full ? 150 : 80;
  mfbo_opt.nargp.n_mc = cfg.full ? 100 : 40;

  bo::WeiboOptions weibo_opt;
  weibo_opt.n_init = cfg.full ? 120 : 40;
  weibo_opt.max_sims = cfg.scale(80, 800);
  weibo_opt.retrain_every = 3;
  weibo_opt.msp.n_starts = mfbo_opt.msp.n_starts;
  weibo_opt.msp.local.max_evaluations = mfbo_opt.msp.local.max_evaluations;

  bo::GaspadOptions gaspad_opt;
  gaspad_opt.n_init = cfg.full ? 120 : 50;
  gaspad_opt.max_sims = cfg.scale(150, 2500);
  gaspad_opt.retrain_every = 3;

  bo::DeBaselineOptions de_opt;
  de_opt.population = cfg.full ? 100 : 40;
  de_opt.max_sims = cfg.scale(400, 10100);

  bench::AlgoStats ours{"Ours"}, weibo{"WEIBO"}, gaspad{"GASPAD"}, de{"DE"};
  std::fprintf(stderr, "table2: %zu runs (%s mode), %zu threads\n", runs,
               cfg.mode(), parallel::maxThreads());
  const auto fresh = [] { return problems::ChargePumpProblem(); };
  // Historical seed layout: table2 runs use cfg.seed + 100 + r.
  const std::uint64_t base_seed = cfg.seed + 100;
  bench::runRepeats(ours, bo::MfboSynthesizer(mfbo_opt), fresh, runs, cfg,
                    base_seed);
  std::fprintf(stderr, "  ours done\n");
  bench::runRepeats(weibo, bo::Weibo(weibo_opt), fresh, runs, cfg, base_seed);
  std::fprintf(stderr, "  weibo done\n");
  bench::runRepeats(gaspad, bo::Gaspad(gaspad_opt), fresh, runs, cfg,
                    base_seed);
  std::fprintf(stderr, "  gaspad done\n");
  bench::runRepeats(de, bo::DeBaseline(de_opt), fresh, runs, cfg, base_seed);
  std::fprintf(stderr, "  de done\n");
  bench::writeArtifact(cfg, "table2_charge_pump", runs,
                       {&ours, &weibo, &gaspad, &de});

  std::printf("# Table 2: optimization results of the charge pump\n");
  std::printf("# %zu runs, %s budgets\n", runs, cfg.full ? "paper" : "quick");
  const bench::AlgoStats* algos[4] = {&ours, &weibo, &gaspad, &de};

  std::printf("%-14s", "Algo");
  for (const auto* a : algos) std::printf("%12s", a->name.c_str());
  std::printf("\n");
  bench::printRule();

  // eq. (16) metrics of the median design.
  problems::CpPerformance med[4];
  for (int i = 0; i < 4; ++i)
    med[i] = problem.simulate(algos[i]->median_result.best_x,
                              bo::Fidelity::kHigh);
  const char* kMetricRows[5] = {"max_diff1", "max_diff2", "max_diff3",
                                "max_diff4", "deviation"};
  for (int row = 0; row < 5; ++row) {
    std::printf("%-14s", kMetricRows[row]);
    for (int i = 0; i < 4; ++i) {
      const auto& p = med[i];
      const double v = row == 0   ? p.max_diff1
                       : row == 1 ? p.max_diff2
                       : row == 2 ? p.max_diff3
                       : row == 3 ? p.max_diff4
                                  : p.deviation;
      std::printf("%12.2f", v);
    }
    std::printf("\n");
  }

  const char* kFomRows[4] = {"mean", "median", "best", "worst"};
  for (int row = 0; row < 4; ++row) {
    std::printf("%-14s", kFomRows[row]);
    for (const auto* a : algos) {
      const auto s = a->summary(/*lower_is_better=*/true);
      const double v = row == 0   ? s.mean
                       : row == 1 ? s.median
                       : row == 2 ? s.best
                                  : s.worst;
      std::printf("%12.2f", v);
    }
    std::printf("\n");
  }

  std::printf("%-14s", "Avg. # Sim");
  for (const auto* a : algos) std::printf("%12.1f", a->avgSims());
  std::printf("\n%-14s", "# Success");
  for (const auto* a : algos)
    std::printf("%9zu/%zu", a->successes, a->total_runs);
  std::printf("\n");
  bench::printRule();
  std::printf("# paper (full budgets): FOM mean Ours 3.99 / WEIBO 4.23 /\n"
              "# GASPAD 4.22 / DE 5.88; Avg#Sim 158 / 458 / 2177 / 9499\n");
  return 0;
}
