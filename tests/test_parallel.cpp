// Thread-race battery for the deterministic parallel execution layer:
// pool lifecycle, index coverage, ordered exception propagation, nested
// regions, env-variable thread resolution, serial equivalence, telemetry
// hammering, and the Rng::split per-index stream contract.
//
// Every test restores the automatic thread resolution (setMaxThreads(0))
// on exit so tests stay order-independent; these tests are also the
// primary target of the tsan preset.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "common/telemetry.h"
#include "linalg/rng.h"

namespace {

using namespace mfbo;

/// RAII thread-count override so a failing ASSERT cannot leak the setting
/// into later tests.
struct ScopedThreads {
  explicit ScopedThreads(std::size_t n) { parallel::setMaxThreads(n); }
  ~ScopedThreads() { parallel::setMaxThreads(0); }
};

/// RAII environment variable (re)setter.
struct ScopedEnv {
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

// --- thread-count resolution --------------------------------------------

TEST(MaxThreads, OverrideBeatsEnvironment) {
  const ScopedEnv env("MFBO_THREADS", "3");
  const ScopedThreads threads(5);
  EXPECT_EQ(parallel::maxThreads(), 5u);
}

TEST(MaxThreads, EnvironmentVariableIsHonored) {
  const ScopedThreads reset(0);  // make sure no override is active
  const ScopedEnv env("MFBO_THREADS", "7");
  EXPECT_EQ(parallel::maxThreads(), 7u);
}

TEST(MaxThreads, MalformedEnvironmentFallsBackToHardware) {
  const ScopedThreads reset(0);
  // mfbo-lint: allow(D004) — mirrors maxThreads()'s hardware fallback
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t expected = hw > 0 ? hw : 1;
  {
    const ScopedEnv env("MFBO_THREADS", "4x");
    EXPECT_EQ(parallel::maxThreads(), expected);
  }
  {
    const ScopedEnv env("MFBO_THREADS", "-2");
    EXPECT_EQ(parallel::maxThreads(), expected);
  }
  {
    const ScopedEnv env("MFBO_THREADS", "");
    EXPECT_EQ(parallel::maxThreads(), expected);
  }
  {
    const ScopedEnv env("MFBO_THREADS", nullptr);
    EXPECT_EQ(parallel::maxThreads(), expected);
  }
}

TEST(MaxThreads, ReconfigurationInsideAParallelRegionIsRejected) {
  // Pool reconfiguration racing in-flight work has no sane semantics:
  // setMaxThreads() from inside a region is a ContractViolation (thrown in
  // the offending task, propagated by the region like any task failure),
  // and the override in force stays untouched.
  const ScopedThreads threads(2);
  EXPECT_THROW(parallel::parallelFor(
                   8, [](std::size_t) { parallel::setMaxThreads(3); }),
               ContractViolation);
  EXPECT_EQ(parallel::maxThreads(), 2u);

  // Between regions the same call is legal and takes effect at the next
  // region — the only supported reconfiguration point.
  parallel::setMaxThreads(4);
  EXPECT_EQ(parallel::maxThreads(), 4u);
  std::atomic<std::size_t> visited{0};
  parallel::parallelFor(64, [&](std::size_t) { visited.fetch_add(1); });
  EXPECT_EQ(visited.load(), 64u) << "pool unusable after rejected call";
}

TEST(MaxThreads, SerialRegionAlsoRejectsReconfiguration) {
  // The serial fast path (one thread, caller-inlined) is still "inside a
  // region": allowing the call there would make the contract depend on the
  // thread count.
  const ScopedThreads threads(1);
  EXPECT_THROW(parallel::parallelFor(
                   4, [](std::size_t) { parallel::setMaxThreads(2); }),
               ContractViolation);
  EXPECT_EQ(parallel::maxThreads(), 1u);
}

TEST(MaxThreads, ZeroRestoresAutomaticResolution) {
  const ScopedEnv env("MFBO_THREADS", "2");
  parallel::setMaxThreads(9);
  EXPECT_EQ(parallel::maxThreads(), 9u);
  parallel::setMaxThreads(0);
  EXPECT_EQ(parallel::maxThreads(), 2u);
}

// --- pool lifecycle ------------------------------------------------------

TEST(PoolLifecycle, WorkersSpawnLazilyAndPersist) {
  // gtest_discover_tests runs each test in its own process, so no region
  // can have run before this one.
  const ScopedEnv env("MFBO_THREADS", nullptr);
  {
    const ScopedThreads threads(1);
    parallel::parallelFor(64, [](std::size_t) {});
    EXPECT_EQ(parallel::poolWorkers(), 0u)
        << "serial path must not start the pool";
  }
  {
    const ScopedThreads threads(4);
    parallel::parallelFor(64, [](std::size_t) {});
    EXPECT_EQ(parallel::poolWorkers(), 3u)
        << "4-thread region = caller + 3 pool workers";
    // A narrower region must not shrink the pool...
    parallel::setMaxThreads(2);
    parallel::parallelFor(64, [](std::size_t) {});
    EXPECT_EQ(parallel::poolWorkers(), 3u);
    // ...and a wider one grows it.
    parallel::setMaxThreads(6);
    parallel::parallelFor(64, [](std::size_t) {});
    EXPECT_EQ(parallel::poolWorkers(), 5u);
  }
}

// --- coverage ------------------------------------------------------------

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  const ScopedThreads threads(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> visits(kN);
  parallel::parallelFor(kN, [&](std::size_t i) {
    visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i)
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, ZeroIterationsIsANoOp) {
  const ScopedThreads threads(4);
  bool called = false;
  parallel::parallelFor(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForChunked, ChunksTileTheRange) {
  const ScopedThreads threads(4);
  constexpr std::size_t kN = 1001;  // deliberately not a multiple of grain
  std::vector<std::atomic<int>> visits(kN);
  std::atomic<std::size_t> max_chunk{0};
  parallel::parallelForChunked(kN, 16, [&](std::size_t lo, std::size_t hi) {
    ASSERT_LT(lo, hi);
    ASSERT_LE(hi, kN);
    std::size_t seen = max_chunk.load();
    while (hi - lo > seen && !max_chunk.compare_exchange_weak(seen, hi - lo)) {
    }
    for (std::size_t i = lo; i < hi; ++i)
      visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i)
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  EXPECT_LE(max_chunk.load(), 16u);
}

TEST(ParallelMap, ReturnsResultsInIndexOrder) {
  const ScopedThreads threads(4);
  const std::vector<std::size_t> out =
      parallel::parallelMap(257, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) ASSERT_EQ(out[i], i * i);
}

// --- exception propagation ----------------------------------------------

TEST(ParallelExceptions, LowestIndexExceptionWinsAndAllTasksRun) {
  const ScopedThreads threads(4);
  constexpr std::size_t kN = 500;
  std::vector<std::atomic<int>> visits(kN);
  try {
    parallel::parallelFor(kN, [&](std::size_t i) {
      visits[i].fetch_add(1, std::memory_order_relaxed);
      if (i == 17 || i == 80 || i == 333)
        throw std::runtime_error("boom at " + std::to_string(i));
    });
    FAIL() << "expected the body exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at 17")
        << "must deterministically rethrow the lowest-indexed failure";
  }
  // A failing chunk must not cancel the rest of the region — side effects
  // stay identical to the serial reference.
  for (std::size_t i = 0; i < kN; ++i)
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(ParallelExceptions, SerialPathPropagatesToo) {
  const ScopedThreads threads(1);
  EXPECT_THROW(parallel::parallelFor(
                   10, [](std::size_t i) {
                     if (i == 3) throw std::invalid_argument("serial boom");
                   }),
               std::invalid_argument);
}

TEST(ParallelExceptions, PoolSurvivesAThrowingRegion) {
  const ScopedThreads threads(4);
  EXPECT_THROW(parallel::parallelFor(
                   100, [](std::size_t) { throw std::runtime_error("x"); }),
               std::runtime_error);
  // The next region must run normally on the same pool.
  std::atomic<std::size_t> count{0};
  parallel::parallelFor(100, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 100u);
}

// --- nesting -------------------------------------------------------------

TEST(NestedParallel, InnerRegionsRunInlineWithFullCoverage) {
  const ScopedThreads threads(4);
  constexpr std::size_t kOuter = 24;
  constexpr std::size_t kInner = 100;
  EXPECT_FALSE(parallel::inParallelRegion());
  std::vector<std::atomic<int>> visits(kOuter * kInner);
  parallel::parallelFor(kOuter, [&](std::size_t o) {
    EXPECT_TRUE(parallel::inParallelRegion());
    parallel::parallelFor(kInner, [&](std::size_t i) {
      visits[o * kInner + i].fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_FALSE(parallel::inParallelRegion());
  for (std::size_t i = 0; i < visits.size(); ++i)
    ASSERT_EQ(visits[i].load(), 1) << "slot " << i;
}

TEST(NestedParallel, NestedMapMatchesFlatComputation) {
  const ScopedThreads threads(4);
  const std::vector<double> out = parallel::parallelMap(16, [](std::size_t o) {
    const std::vector<double> inner = parallel::parallelMap(
        64, [o](std::size_t i) { return std::sin(0.01 * (o * 64.0 + i)); });
    return std::accumulate(inner.begin(), inner.end(), 0.0);
  });
  for (std::size_t o = 0; o < 16; ++o) {
    double expect = 0.0;
    for (std::size_t i = 0; i < 64; ++i)
      expect += std::sin(0.01 * (o * 64.0 + i));
    ASSERT_EQ(out[o], expect) << "outer " << o;
  }
}

// --- serial equivalence --------------------------------------------------

/// A deliberately order-sensitive floating-point computation: the slot
/// writes are independent per index, the reduction is serial, so 1-thread
/// and N-thread runs must agree bitwise.
double slotReduceChecksum(std::size_t n) {
  const std::vector<double> slots = parallel::parallelMap(n, [](std::size_t i) {
    double acc = 1e-3 * static_cast<double>(i);
    for (int k = 0; k < 50; ++k) acc = std::cos(acc) + 1e-9 * k;
    return acc;
  });
  double sum = 0.0;
  for (double v : slots) sum += v;  // ordered reduction
  return sum;
}

TEST(SerialEquivalence, OneThreadMatchesFourBitwise) {
  double serial = 0.0, pooled = 0.0;
  {
    const ScopedThreads threads(1);
    serial = slotReduceChecksum(4097);
  }
  {
    const ScopedThreads threads(4);
    pooled = slotReduceChecksum(4097);
  }
  EXPECT_EQ(serial, pooled);  // exact, not near
}

TEST(SerialEquivalence, EnvThreadsOneTakesTheSerialPath) {
  const ScopedEnv env("MFBO_THREADS", "1");
  const ScopedThreads reset(0);
  parallel::parallelFor(1000, [](std::size_t) {});
  EXPECT_EQ(parallel::poolWorkers(), 0u);
}

// --- telemetry hammering -------------------------------------------------

TEST(TelemetryRace, CounterHammeringLosesNoIncrements) {
  const ScopedThreads threads(8);
  telemetry::Counter& counter = telemetry::counter("test.parallel.hammer");
  counter.reset();
  constexpr std::size_t kTasks = 2000;
  constexpr int kPerTask = 50;
  parallel::parallelFor(kTasks, [&](std::size_t) {
    for (int k = 0; k < kPerTask; ++k) counter.add();
  });
  EXPECT_EQ(counter.value(), kTasks * kPerTask);
}

TEST(TelemetryRace, TimerHammeringKeepsExactCount) {
  const ScopedThreads threads(8);
  telemetry::Timer& timer = telemetry::timer("test.parallel.timer_hammer");
  timer.reset();
  constexpr std::size_t kTasks = 1000;
  parallel::parallelFor(kTasks, [&](std::size_t i) {
    timer.record(1e-6 * static_cast<double>(i + 1));
  });
  EXPECT_EQ(timer.count(), kTasks);
  EXPECT_GT(timer.totalSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(timer.minSeconds(), 1e-6);
  EXPECT_DOUBLE_EQ(timer.maxSeconds(), 1e-6 * kTasks);
}

TEST(TelemetryRace, RegistryLookupsFromWorkersAreSafe) {
  const ScopedThreads threads(8);
  parallel::parallelFor(500, [&](std::size_t i) {
    // Few distinct names, many concurrent lookups + inserts.
    telemetry::counter("test.parallel.reg" + std::to_string(i % 7)).add();
  });
  std::uint64_t total = 0;
  for (int k = 0; k < 7; ++k)
    total += telemetry::counter("test.parallel.reg" + std::to_string(k)).value();
  EXPECT_EQ(total, 500u);
}

// --- telemetry scope propagation -----------------------------------------

TEST(TelemetryScope, WorkerBumpsLandInTheCallersScopedRegistry) {
  // The pool forwards the submitting thread's active registry to workers
  // per job (the metrics twin of span capture): counters bumped inside a
  // region land in the caller's scoped registry, never the global one.
  const ScopedThreads threads(4);
  telemetry::MetricsRegistry mine;
  const std::uint64_t global_before =
      telemetry::globalMetrics().counter("test.scope.worker").value();
  {
    const telemetry::TelemetryScope scope(mine);
    parallel::parallelFor(64, [](std::size_t) {
      telemetry::counter("test.scope.worker").add();
    });
  }
  EXPECT_EQ(mine.counter("test.scope.worker").value(), 64u);
  EXPECT_EQ(telemetry::globalMetrics().counter("test.scope.worker").value(),
            global_before);
}

TEST(TelemetryScope, WorkersRevertToTheJobsOwnerNotTheLastScope) {
  // Two back-to-back regions under different scopes: each job carries its
  // own registry, so a reused (persistent) worker must not leak the first
  // job's registry into the second.
  const ScopedThreads threads(4);
  telemetry::MetricsRegistry first, second;
  {
    const telemetry::TelemetryScope scope(first);
    parallel::parallelFor(32, [](std::size_t) {
      telemetry::counter("test.scope.reuse").add();
    });
  }
  {
    const telemetry::TelemetryScope scope(second);
    parallel::parallelFor(32, [](std::size_t) {
      telemetry::counter("test.scope.reuse").add();
    });
  }
  EXPECT_EQ(first.counter("test.scope.reuse").value(), 32u);
  EXPECT_EQ(second.counter("test.scope.reuse").value(), 32u);
}

// --- Rng::split ----------------------------------------------------------

TEST(RngSplit, DoesNotAdvanceTheParent) {
  linalg::Rng a(123), b(123);
  (void)a.split(0);
  (void)a.split(41);
  for (int i = 0; i < 16; ++i)
    ASSERT_EQ(a.uniform(), b.uniform()) << "draw " << i;
}

TEST(RngSplit, IsCallOrderIndependent) {
  linalg::Rng parent(99);
  linalg::Rng first = parent.split(5);
  (void)parent.uniform();          // advance the parent in between
  linalg::Rng again = parent.split(5);
  for (int i = 0; i < 16; ++i)
    ASSERT_EQ(first.uniform(), again.uniform()) << "draw " << i;
}

TEST(RngSplit, SiblingStreamsAreDecorrelated) {
  linalg::Rng parent(7);
  std::set<std::uint64_t> firsts;
  for (std::uint64_t s = 0; s < 64; ++s) {
    linalg::Rng child = parent.split(s);
    firsts.insert(child.engine()());
  }
  EXPECT_EQ(firsts.size(), 64u) << "stream collision";
}

TEST(RngSplit, MatchesAcrossParallelSchedules) {
  // The canonical per-index pattern: task i draws from split(i). The
  // resulting slot values must not depend on the thread count.
  linalg::Rng parent(2024);
  const auto draw = [&](std::size_t i) { return parent.split(i).normal(); };
  std::vector<double> serial, pooled;
  {
    const ScopedThreads threads(1);
    serial = parallel::parallelMap(512, draw);
  }
  {
    const ScopedThreads threads(4);
    pooled = parallel::parallelMap(512, draw);
  }
  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    ASSERT_EQ(serial[i], pooled[i]) << "slot " << i;
}

}  // namespace
