"""Tests for the health/flight-recorder artifact validator.

Drives tools/health_validate.py in-process on synthetic inputs: a
well-formed mfbo-health document, a well-formed exposition, and a
well-formed flightrec dump must all validate clean, and each class of
schema violation the contract pins (broken envelope, non-monotone
quantiles, unlabelled samples, seq regressions, mode/timestamp
mismatches, missing required kinds, no identifiable in-flight session)
must be rejected with a non-zero exit. No C++ binaries needed.
"""

import contextlib
import io
import json
import sys
import tempfile
import unittest
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import health_validate  # noqa: E402


def session(sid="s0", **overrides) -> dict:
    doc = {
        "session": sid,
        "algo": "mfbo",
        "status": "running",
        "steps": 4,
        "iterations": 2,
        "checkpoint_age_steps": 1,
        "cost_spent": 1.5,
        "cost_budget": 2.5,
        "budget_fraction": 0.6,
        "steps_per_sec": 12.0,
        "step_latency": {
            "count": 4,
            "total_s": 0.33,
            "p50_s": 0.05,
            "p90_s": 0.1,
            "p99_s": 0.1,
        },
    }
    doc.update(overrides)
    return doc


def health_doc(**overrides) -> dict:
    doc = {
        "format": "mfbo-health",
        "version": 1,
        "rounds": 3,
        "sessions": [session("s0"), session("s1", status="done")],
        "pool": {
            "workers": 4,
            "regions": 10,
            "pooled_regions": 6,
            "chunks": 40,
            "queue_depth": 0,
        },
        "eventlog": {
            "enabled": True,
            "recorded": 99,
            "dropped": 0,
            "skipped_in_region": 12,
        },
    }
    doc.update(overrides)
    return doc


PROM_TEXT = """\
# TYPE mfbo_rounds_total counter
mfbo_rounds_total 3
# TYPE mfbo_sessions gauge
mfbo_sessions 2
# TYPE mfbo_session_steps_total counter
mfbo_session_steps_total{session="s0",algo="mfbo"} 4
# TYPE mfbo_session_step_latency_seconds summary
mfbo_session_step_latency_seconds{session="s0",quantile="0.5"} 0.05
mfbo_session_step_latency_seconds_sum{session="s0"} 0.33
mfbo_session_step_latency_seconds_count{session="s0"} 4
"""


def event(seq, kind, ts=None, sid=None, **rest) -> dict:
    doc = {"seq": seq, "kind": kind}
    if ts is not None:
        doc["ts_ns"] = ts
    if sid is not None:
        doc["session"] = sid
    doc.update(rest)
    return doc


def flightrec_lines(events, deterministic=False, **header_overrides):
    header = {
        "format": "mfbo-flightrec",
        "version": 1,
        "pid": 1234,
        "deterministic": deterministic,
        "ring_capacity": 256,
        "recorded": len(events),
        "dropped": 0,
        "skipped_in_region": 0,
        "events": len(events),
    }
    header.update(header_overrides)
    return [json.dumps(header)] + [json.dumps(e) for e in events]


def wall_events():
    return [
        event(0, "session_create", ts=10, sid="s0", a="mfbo"),
        event(1, "engine_transition", ts=20, sid="s0",
              a="propose", b="await_results"),
        event(2, "fidelity_decision", ts=30, sid="s0", a="high"),
        event(3, "checkpoint_persist", ts=40, sid="s0", v0=1),
        event(4, "session_step", ts=50, sid="s0", v0=2),
    ]


def run_cli(argv):
    """Invoke health_validate.main, capturing output; returns (rc, text)."""
    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        rc = health_validate.main(argv)
    return rc, out.getvalue() + err.getvalue()


class HealthDocumentTest(unittest.TestCase):
    def test_well_formed_document_is_clean(self):
        self.assertEqual(health_validate.validate_health(health_doc()), [])

    def test_broken_envelope_is_rejected(self):
        problems = health_validate.validate_health(
            health_doc(format="other", version=2))
        self.assertTrue(any("format" in p for p in problems))
        self.assertTrue(any("version" in p for p in problems))

    def test_missing_slo_field_is_rejected(self):
        doc = health_doc()
        del doc["sessions"][0]["checkpoint_age_steps"]
        problems = health_validate.validate_health(doc)
        self.assertTrue(any("checkpoint_age_steps" in p for p in problems))

    def test_non_monotone_quantiles_are_rejected(self):
        doc = health_doc()
        doc["sessions"][0]["step_latency"]["p90_s"] = 0.01
        problems = health_validate.validate_health(doc)
        self.assertTrue(any("monotone" in p for p in problems))

    def test_unknown_status_is_rejected(self):
        problems = health_validate.validate_health(
            health_doc(sessions=[session(status="zombie")]))
        self.assertTrue(any("zombie" in p for p in problems))

    def test_missing_pool_and_eventlog_are_rejected(self):
        doc = health_doc()
        del doc["pool"]
        del doc["eventlog"]
        problems = health_validate.validate_health(doc)
        self.assertTrue(any("pool" in p for p in problems))
        self.assertTrue(any("eventlog" in p for p in problems))


class PromExpositionTest(unittest.TestCase):
    def test_well_formed_exposition_is_clean(self):
        self.assertEqual(health_validate.validate_prom(PROM_TEXT), [])

    def test_sample_without_type_header_is_rejected(self):
        problems = health_validate.validate_prom("mystery_metric 1\n")
        self.assertTrue(any("no TYPE header" in p for p in problems))

    def test_declared_but_never_sampled_family_is_rejected(self):
        problems = health_validate.validate_prom(
            "# TYPE mfbo_ghost gauge\n"
            "# TYPE mfbo_real gauge\nmfbo_real 1\n")
        self.assertTrue(any("never sampled" in p for p in problems))

    def test_bad_label_set_is_rejected(self):
        problems = health_validate.validate_prom(
            "# TYPE m gauge\nm{session=unquoted} 1\n")
        self.assertTrue(problems)

    def test_non_numeric_value_is_rejected(self):
        problems = health_validate.validate_prom(
            "# TYPE m gauge\nm{s=\"x\"} not-a-number\n")
        self.assertTrue(any("non-numeric" in p for p in problems))

    def test_duplicate_type_header_is_rejected(self):
        problems = health_validate.validate_prom(
            "# TYPE m gauge\n# TYPE m counter\nm 1\n")
        self.assertTrue(any("duplicate TYPE" in p for p in problems))


class FlightrecTest(unittest.TestCase):
    def check(self, lines, kinds=(), inflight=False):
        return health_validate.validate_flightrec(
            lines, list(kinds), inflight)

    def test_well_formed_wall_clock_dump_is_clean(self):
        self.assertEqual(self.check(flightrec_lines(wall_events())), [])

    def test_well_formed_deterministic_dump_is_clean(self):
        events = [event(0, "session_create", sid="s0"),
                  event(1, "session_step", sid="s0", v0=1)]
        self.assertEqual(
            self.check(flightrec_lines(events, deterministic=True)), [])

    def test_bad_header_envelope_is_rejected(self):
        lines = flightrec_lines(wall_events(), format="nope", version=9)
        problems = self.check(lines)
        self.assertTrue(any("format" in p for p in problems))
        self.assertTrue(any("version" in p for p in problems))

    def test_event_count_mismatch_is_rejected(self):
        lines = flightrec_lines(wall_events())
        header = json.loads(lines[0])
        header["events"] = 99
        lines[0] = json.dumps(header)
        problems = self.check(lines)
        self.assertTrue(any("claims 99" in p for p in problems))

    def test_seq_regression_is_rejected(self):
        events = wall_events()
        events[2]["seq"] = 0
        problems = self.check(flightrec_lines(events))
        self.assertTrue(any("not increasing" in p for p in problems))

    def test_unknown_kind_is_rejected(self):
        events = [event(0, "teleport", ts=1)]
        problems = self.check(flightrec_lines(events))
        self.assertTrue(any("teleport" in p for p in problems))

    def test_deterministic_dump_with_timestamps_is_rejected(self):
        lines = flightrec_lines(wall_events(), deterministic=True)
        problems = self.check(lines)
        self.assertTrue(any("carries ts_ns" in p for p in problems))

    def test_wall_clock_dump_without_timestamps_is_rejected(self):
        events = [event(0, "session_step", sid="s0")]
        problems = self.check(flightrec_lines(events))
        self.assertTrue(any("missing ts_ns" in p for p in problems))

    def test_required_kind_gate(self):
        lines = flightrec_lines(wall_events())
        self.assertEqual(self.check(lines, kinds=["checkpoint_persist"]),
                         [])
        problems = self.check(lines, kinds=["contract_violation"])
        self.assertTrue(any("contract_violation" in p for p in problems))

    def test_inflight_gate_accepts_identifiable_session(self):
        self.assertEqual(
            self.check(flightrec_lines(wall_events()), inflight=True), [])

    def test_inflight_gate_rejects_unlabelled_window(self):
        events = [event(0, "pool_dispatch", ts=1, v0=8)]
        problems = self.check(flightrec_lines(events), inflight=True)
        self.assertTrue(any("no session-labelled" in p for p in problems))

    def test_inflight_gate_needs_an_engine_transition(self):
        events = [event(0, "session_step", ts=1, sid="s0", v0=1)]
        problems = self.check(flightrec_lines(events), inflight=True)
        self.assertTrue(any("engine_transition" in p for p in problems))


class CliTest(unittest.TestCase):
    def test_all_three_inputs_validate_together(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            (root / "health.json").write_text(json.dumps(health_doc()))
            (root / "health.json.prom").write_text(PROM_TEXT)
            (root / "flightrec.1.jsonl").write_text(
                "\n".join(flightrec_lines(wall_events())) + "\n")
            rc, text = run_cli([
                "--health", str(root / "health.json"),
                "--prom", str(root / "health.json.prom"),
                "--flightrec", str(root / "flightrec.1.jsonl"),
                "--require-kind", "checkpoint_persist",
                "--require-inflight",
            ])
            self.assertEqual(rc, 0, text)
            self.assertIn("OK", text)

    def test_invalid_input_exits_one(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "health.json"
            path.write_text(json.dumps({"format": "wrong"}))
            rc, text = run_cli(["--health", str(path)])
            self.assertEqual(rc, 1)
            self.assertIn("problem", text)

    def test_missing_file_exits_two(self):
        rc, _ = run_cli(["--health", "/nonexistent/health.json"])
        self.assertEqual(rc, 2)


if __name__ == "__main__":
    unittest.main()
