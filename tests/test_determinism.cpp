// Determinism regression battery: the acceptance criterion of the parallel
// execution layer is that a fixed seed produces *byte-identical* results
// at 1 thread and N threads — optimizer outputs, GP posteriors, fused
// NARGP predictions, the full Algorithm-1 JSONL trace, and the bench
// --no-timing artifacts. Every comparison here is exact (EXPECT_EQ on
// doubles / bytes), never approximate.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bo/mfbo.h"
#include "common/parallel.h"
#include "common/spans.h"
#include "common/telemetry.h"
#include "common/timeline.h"
#include "gp/gp_regressor.h"
#include "linalg/rng.h"
#include "mf/nargp.h"
#include "opt/multistart.h"
#include "problems/synthetic.h"

namespace {

using namespace mfbo;

struct ScopedThreads {
  explicit ScopedThreads(std::size_t n) { parallel::setMaxThreads(n); }
  ~ScopedThreads() { parallel::setMaxThreads(0); }
};

/// Run @p fn at the given thread count and return its result.
template <typename Fn>
auto withThreads(std::size_t n, Fn&& fn) {
  const ScopedThreads scope(n);
  return fn();
}

// --- multistart ----------------------------------------------------------

TEST(MultistartDeterminism, ResultAndProvenanceMatchAcrossThreadCounts) {
  // Rastrigin-flavored multimodal objective: plenty of distinct local
  // minima, so a scheduling-dependent argmin would be caught immediately.
  const opt::ScalarObjective f = [](const linalg::Vector& x) {
    double acc = 10.0 * static_cast<double>(x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
      acc += (x[i] - 0.3) * (x[i] - 0.3) -
             10.0 * std::cos(8.0 * (x[i] - 0.3));
    return acc;
  };
  const linalg::Box box(linalg::Vector(3, -1.0), linalg::Vector(3, 1.0));
  linalg::Rng rng(11);
  std::vector<linalg::Vector> starts;
  for (int s = 0; s < 24; ++s)
    starts.push_back(rng.uniformVector(3, -1.0, 1.0));
  opt::MultistartOptions opts;
  opts.local.max_evaluations = 120;

  const auto run = [&] { return opt::multistartMinimize(f, starts, box, opts); };
  const opt::OptResult serial = withThreads(1, run);
  const opt::OptResult pooled = withThreads(4, run);

  EXPECT_EQ(serial.value, pooled.value);
  EXPECT_EQ(serial.best_start, pooled.best_start);
  EXPECT_EQ(serial.evaluations, pooled.evaluations);
  EXPECT_EQ(serial.iterations, pooled.iterations);
  ASSERT_EQ(serial.x.size(), pooled.x.size());
  for (std::size_t i = 0; i < serial.x.size(); ++i)
    EXPECT_EQ(serial.x[i], pooled.x[i]) << "coordinate " << i;
}

// --- GP training ---------------------------------------------------------

TEST(GpDeterminism, RestartTrainingGivesIdenticalPosterior) {
  const auto train_and_predict = [] {
    linalg::Rng data_rng(5);
    std::vector<linalg::Vector> x;
    std::vector<double> y;
    for (int i = 0; i < 20; ++i) {
      x.push_back(data_rng.uniformVector(2));
      y.push_back(std::sin(3.0 * x.back()[0]) + 0.5 * x.back()[1]);
    }
    gp::GpConfig cfg;
    cfg.seed = 33;
    cfg.n_restarts = 6;
    gp::GpRegressor model(std::make_unique<gp::SeArdKernel>(2), cfg);
    model.fit(x, y);
    std::vector<double> out;
    linalg::Rng probe_rng(77);
    for (int i = 0; i < 10; ++i) {
      const gp::Prediction p = model.predict(probe_rng.uniformVector(2));
      out.push_back(p.mean);
      out.push_back(p.var);
    }
    return out;
  };
  const std::vector<double> serial = withThreads(1, train_and_predict);
  const std::vector<double> pooled = withThreads(4, train_and_predict);
  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(serial[i], pooled[i]) << "slot " << i;
}

// --- NARGP MC prediction -------------------------------------------------

TEST(NargpDeterminism, McFusedPredictionIsThreadCountInvariant) {
  const auto fit_and_predict = [] {
    std::vector<linalg::Vector> xl, xh;
    std::vector<double> yl, yh;
    for (int i = 0; i < 25; ++i) {
      const double x = (i + 0.5) / 25.0;
      xl.push_back(linalg::Vector{x});
      yl.push_back(std::sin(8.0 * x));
    }
    for (int i = 0; i < 8; ++i) {
      const double x = (i + 0.5) / 8.0;
      xh.push_back(linalg::Vector{x});
      yh.push_back(std::sin(8.0 * x) * std::sin(8.0 * x));
    }
    mf::NargpConfig cfg;
    cfg.seed = 9;
    cfg.n_mc = 64;  // well above the grain, so the pool actually engages
    cfg.low.n_restarts = 1;
    cfg.high.n_restarts = 1;
    mf::NargpModel model(1, cfg);
    model.fit(xl, yl, xh, yh);
    std::vector<double> out;
    for (int i = 0; i < 20; ++i) {
      const gp::Prediction p =
          model.predictHigh(linalg::Vector{(i + 0.25) / 20.0});
      out.push_back(p.mean);
      out.push_back(p.var);
    }
    return out;
  };
  const std::vector<double> serial = withThreads(1, fit_and_predict);
  const std::vector<double> pooled = withThreads(4, fit_and_predict);
  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(serial[i], pooled[i]) << "slot " << i;
}

// --- full Algorithm-1 loop -----------------------------------------------

bo::MfboOptions smallMfboOptions() {
  bo::MfboOptions opt;
  opt.n_init_low = 8;
  opt.n_init_high = 4;
  opt.budget = 8.0;
  opt.retrain_every = 2;
  opt.msp.n_starts = 6;
  opt.msp.local.max_evaluations = 40;
  opt.nargp.n_mc = 24;
  opt.nargp.low.n_restarts = 2;
  opt.nargp.high.n_restarts = 2;
  return opt;
}

/// One traced synthesis run: returns the result plus the full trace,
/// serialized to the exact bytes a JSONL TraceWriter would emit.
std::pair<bo::SynthesisResult, std::string> tracedRun(std::uint64_t seed) {
  problems::ConstrainedQuadraticProblem problem(2);
  telemetry::CollectingTraceSink sink;
  const telemetry::ScopedTraceSink scope(&sink);
  bo::SynthesisResult result =
      bo::MfboSynthesizer(smallMfboOptions()).run(problem, seed);
  std::string trace;
  for (const Json& event : sink.events) {
    trace += event.dump();
    trace += '\n';
  }
  return {std::move(result), std::move(trace)};
}

TEST(MfboDeterminism, TraceBytesAndResultMatchAcrossThreadCounts) {
  const auto serial = withThreads(1, [] { return tracedRun(7); });
  const auto pooled = withThreads(4, [] { return tracedRun(7); });

  EXPECT_FALSE(serial.second.empty());
  EXPECT_EQ(serial.second, pooled.second) << "JSONL trace bytes diverged";

  const bo::SynthesisResult& a = serial.first;
  const bo::SynthesisResult& b = pooled.first;
  EXPECT_EQ(a.best_eval.objective, b.best_eval.objective);
  EXPECT_EQ(a.feasible_found, b.feasible_found);
  EXPECT_EQ(a.n_low, b.n_low);
  EXPECT_EQ(a.n_high, b.n_high);
  EXPECT_EQ(a.equivalent_high_sims, b.equivalent_high_sims);
  ASSERT_EQ(a.best_x.size(), b.best_x.size());
  for (std::size_t i = 0; i < a.best_x.size(); ++i)
    EXPECT_EQ(a.best_x[i], b.best_x[i]) << "coordinate " << i;
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].eval.objective, b.history[i].eval.objective)
        << "history entry " << i;
    EXPECT_EQ(a.history[i].cumulative_cost, b.history[i].cumulative_cost)
        << "history entry " << i;
  }
}

TEST(MfboDeterminism, DifferentSeedsStillDiffer) {
  // Guards against the degenerate explanation for the test above (a run
  // that ignores its seed would also be "deterministic").
  const auto a = withThreads(4, [] { return tracedRun(7); });
  const auto b = withThreads(4, [] { return tracedRun(8); });
  EXPECT_NE(a.second, b.second);
}

// --- bench artifact ------------------------------------------------------

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// A --quick-style bench run: repeats through runRepeats, artifact through
/// writeArtifact with --no-timing semantics so the bytes carry no wall
/// clock. Mirrors what the table binaries do with
/// `--quick --no-timing --out`.
std::string benchArtifactBytes(const std::string& path) {
  telemetry::resetMetrics();
  bench::BenchConfig cfg;
  cfg.seed = 42;
  cfg.timing = false;  // --no-timing
  cfg.out = path;
  bench::AlgoStats stats{"mfbo"};
  const auto fresh = [] { return problems::ConstrainedQuadraticProblem(2); };
  bench::runRepeats(stats, bo::MfboSynthesizer(smallMfboOptions()), fresh,
                    /*runs=*/3, cfg);
  bench::writeArtifact(cfg, "determinism_check", 3, {&stats});
  const std::string bytes = readFile(path);
  std::remove(path.c_str());
  return bytes;
}

TEST(BenchDeterminism, NoTimingArtifactBytesMatchAcrossThreadCounts) {
  const std::string serial = withThreads(
      1, [] { return benchArtifactBytes("det_artifact_t1.json"); });
  const std::string pooled = withThreads(
      4, [] { return benchArtifactBytes("det_artifact_t4.json"); });
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, pooled) << "--no-timing artifact bytes diverged";
  // Wall times must be zeroed, and the timers section absent.
  EXPECT_EQ(serial.find("timers"), std::string::npos);
}

/// benchArtifactBytes with the span profiler on — the `--spans --no-timing`
/// artifact, now carrying per-span alloc_count/alloc_bytes counters.
std::string spanArtifactBytes(const std::string& path) {
  spans::reset();
  spans::setEnabled(true);
  const std::string bytes = benchArtifactBytes(path);
  spans::setEnabled(false);
  spans::reset();
  return bytes;
}

TEST(BenchDeterminism, SpanAllocCountersMatchAcrossThreadCounts) {
  const std::string serial = withThreads(
      1, [] { return spanArtifactBytes("det_spans_t1.json"); });
  const std::string pooled = withThreads(
      4, [] { return spanArtifactBytes("det_spans_t4.json"); });
  EXPECT_EQ(serial, pooled)
      << "--spans --no-timing artifact bytes diverged across thread counts";
  // The artifact actually carried the memory-attribution counters (and the
  // nondeterministic RSS sample stayed out).
  EXPECT_NE(serial.find("\"alloc_count\""), std::string::npos);
  EXPECT_NE(serial.find("\"alloc_bytes\""), std::string::npos);
  EXPECT_EQ(serial.find("peak_rss_bytes"), std::string::npos);
}

TEST(BenchDeterminism, TimelineRecordingLeavesArtifactBytesUntouched) {
  // --timeline is strictly outside the deterministic artifact path: the
  // same run with a timeline recording alongside must produce identical
  // --spans --no-timing artifact bytes.
  const std::string plain = withThreads(
      4, [] { return spanArtifactBytes("det_tl_off.json"); });
  const std::string with_timeline = withThreads(4, [] {
    timeline::start("det_timeline_scratch.json");
    const std::string bytes = spanArtifactBytes("det_tl_on.json");
    timeline::stop();
    std::remove("det_timeline_scratch.json");
    return bytes;
  });
  EXPECT_EQ(plain, with_timeline)
      << "recording a timeline perturbed the deterministic artifact";
}

TEST(BenchDeterminism, RunRepeatsMatchesSequentialAddLoop) {
  // runRepeats at N threads must agree with the plain serial repeat loop it
  // replaced — including the order-sensitive median tracking.
  bench::BenchConfig cfg;
  cfg.seed = 21;
  cfg.timing = false;
  const bo::MfboSynthesizer synthesizer(smallMfboOptions());

  bench::AlgoStats reference{"ref"};
  {
    const ScopedThreads scope(1);
    for (std::size_t r = 0; r < 3; ++r) {
      problems::ConstrainedQuadraticProblem problem(2);
      reference.add(synthesizer.run(problem, cfg.seed + r), 0.0);
    }
  }

  bench::AlgoStats pooled{"pooled"};
  {
    const ScopedThreads scope(4);
    const auto fresh = [] { return problems::ConstrainedQuadraticProblem(2); };
    bench::runRepeats(pooled, synthesizer, fresh, 3, cfg);
  }

  ASSERT_EQ(reference.objectives.size(), pooled.objectives.size());
  for (std::size_t i = 0; i < reference.objectives.size(); ++i)
    EXPECT_EQ(reference.objectives[i], pooled.objectives[i]) << "run " << i;
  EXPECT_EQ(reference.successes, pooled.successes);
  EXPECT_EQ(reference.median_result.best_eval.objective,
            pooled.median_result.best_eval.objective);
}

// --- explicit RNG stream-state save/restore (the checkpoint substrate) ---

TEST(RngState, RoundTripReproducesTheDrawSequence) {
  linalg::Rng rng(42);
  for (int i = 0; i < 37; ++i) rng.uniform();  // advance into the stream
  const std::string token = rng.saveState();
  std::vector<double> expected;
  for (int i = 0; i < 16; ++i) expected.push_back(rng.uniform());
  for (int i = 0; i < 16; ++i) expected.push_back(rng.normal());

  linalg::Rng other(7);  // different seed, different position
  other.normal();
  other.restoreState(token);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(other.uniform(), expected[i]);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(other.normal(), expected[16 + i]);
}

TEST(RngState, TokenIsVersioned) {
  EXPECT_EQ(linalg::Rng(1).saveState().rfind("rng-v1 ", 0), 0u);
}

TEST(RngState, NormalCachedPairSurvivesTheRoundTrip) {
  // normal_distribution generates in pairs and caches the second draw; the
  // token must carry that cache or restored streams desync by one normal.
  linalg::Rng rng(11);
  rng.normal();  // leaves a cached second value inside the distribution
  const std::string token = rng.saveState();
  const double next = rng.normal();
  linalg::Rng other(99);
  other.restoreState(token);
  EXPECT_EQ(other.normal(), next);
}

TEST(RngState, SplitStreamsSurviveTheRoundTrip) {
  linalg::Rng rng(5);
  for (int i = 0; i < 9; ++i) rng.uniform();
  const std::string token = rng.saveState();
  linalg::Rng a = rng.split(3);
  linalg::Rng restored(0);
  restored.restoreState(token);
  linalg::Rng b = restored.split(3);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(RngState, RestoreRejectsCorruptTokens) {
  linalg::Rng rng(1);
  const std::string good = rng.saveState();
  EXPECT_THROW(rng.restoreState(""), ContractViolation);
  EXPECT_THROW(rng.restoreState("rng-v2 1 2 3"), ContractViolation);
  EXPECT_THROW(rng.restoreState("rng-v1"), ContractViolation);
  EXPECT_THROW(rng.restoreState("rng-v1 not-a-number"), ContractViolation);
  EXPECT_THROW(rng.restoreState(good + " trailing"), ContractViolation);
  // A rejected token must not have clobbered the stream: the good token
  // still round-trips.
  rng.restoreState(good);
  linalg::Rng fresh(1);
  EXPECT_EQ(rng.uniform(), fresh.uniform());
}

}  // namespace
