// Tests for the telemetry subsystem: the Json value type, the metrics
// registry, and the trace-sink plumbing — including the end-to-end
// guarantees the benches rely on: one `iteration` event per synthesis-loop
// iteration, byte-identical traces across same-seed runs, and zero output
// (and unchanged results) when no sink is installed.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "bo/mfbo.h"
#include "common/json.h"
#include "common/telemetry.h"
#include "problems/synthetic.h"

namespace {

using namespace mfbo;

// --- Json ---------------------------------------------------------------

TEST(Json, DumpScalarsAndContainers) {
  Json doc = Json::object();
  doc.set("a", 1.0);
  doc.set("b", true);
  doc.set("c", "text");
  doc.set("d", Json::null());
  Json arr = Json::array();
  arr.push(Json::number(0.5));
  arr.push(Json::boolean(false));
  doc.set("e", arr);
  EXPECT_EQ(doc.dump(),
            "{\"a\":1,\"b\":true,\"c\":\"text\",\"d\":null,"
            "\"e\":[0.5,false]}");
}

TEST(Json, PreservesInsertionOrderAndReplacesInPlace) {
  Json doc = Json::object();
  doc.set("z", 1.0);
  doc.set("a", 2.0);
  doc.set("z", 3.0);  // replaced, stays first
  EXPECT_EQ(doc.dump(), "{\"z\":3,\"a\":2}");
}

TEST(Json, EscapesStrings) {
  Json doc = Json::object();
  doc.set("k", std::string("a\"b\\c\n\t"));
  const Json back = Json::parse(doc.dump());
  EXPECT_EQ(back.at("k").asString(), "a\"b\\c\n\t");
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
  Json arr = Json::array();
  arr.push(Json::number(std::numeric_limits<double>::quiet_NaN()));
  arr.push(Json::number(std::numeric_limits<double>::infinity()));
  EXPECT_EQ(arr.dump(), "[null,null]");
}

TEST(Json, NumbersRoundTripExactly) {
  const double values[] = {0.1, 1.0 / 3.0, 1e-300, 123456789.123456789,
                           -2.5e17};
  for (double v : values) {
    const Json parsed = Json::parse(Json::number(v).dump());
    EXPECT_EQ(parsed.asNumber(), v);
  }
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(Json::parse("{"), std::runtime_error);
  EXPECT_THROW(Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(Json::parse("{\"a\":1} trailing"), std::runtime_error);
  EXPECT_THROW(Json::parse("nul"), std::runtime_error);
}

TEST(Json, ParseHandlesNestedDocuments) {
  const Json doc =
      Json::parse("{\"a\":[1,2,{\"b\":\"\\u0041\"}],\"c\":{\"d\":null}}");
  EXPECT_EQ(doc.at("a").size(), 3u);
  EXPECT_EQ(doc.at("a").at(2).at("b").asString(), "A");
  EXPECT_TRUE(doc.at("c").at("d").isNull());
}

// --- Metrics registry ---------------------------------------------------

TEST(Metrics, CounterAccumulatesAndResets) {
  telemetry::Counter& c = telemetry::counter("test.metrics.counter");
  c.reset();
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  // The registry hands back the same object for the same name.
  EXPECT_EQ(&telemetry::counter("test.metrics.counter"), &c);
  telemetry::resetMetrics();
  EXPECT_EQ(c.value(), 0u);  // reference survives the reset
}

TEST(Metrics, TimerTracksMoments) {
  telemetry::Timer& t = telemetry::timer("test.metrics.timer");
  t.reset();
  t.record(2.0);
  t.record(0.5);
  t.record(1.0);
  EXPECT_EQ(t.count(), 3u);
  EXPECT_DOUBLE_EQ(t.totalSeconds(), 3.5);
  EXPECT_DOUBLE_EQ(t.minSeconds(), 0.5);
  EXPECT_DOUBLE_EQ(t.maxSeconds(), 2.0);
  EXPECT_NEAR(t.meanSeconds(), 3.5 / 3.0, 1e-15);
}

TEST(Metrics, TimerQuantilesAreExactBelowReservoirCap) {
  telemetry::Timer& t = telemetry::timer("test.metrics.quantiles");
  t.reset();
  // 100 samples 0.01..1.00: nearest-rank quantiles are exact while the
  // reservoir (cap 512) still holds every sample.
  for (int i = 1; i <= 100; ++i) t.record(0.01 * i);
  EXPECT_DOUBLE_EQ(t.quantileSeconds(0.0), 0.01);
  EXPECT_DOUBLE_EQ(t.quantileSeconds(0.5), 0.50);
  EXPECT_DOUBLE_EQ(t.quantileSeconds(0.95), 0.95);
  EXPECT_DOUBLE_EQ(t.quantileSeconds(1.0), 1.00);
}

TEST(Metrics, TimerQuantilesStayOrderedPastReservoirCap) {
  telemetry::Timer& t = telemetry::timer("test.metrics.quantiles_big");
  t.reset();
  // 10x the reservoir capacity: quantiles become sampled estimates, but
  // they must stay within the observed range and monotone in q.
  for (std::size_t i = 0; i < 10 * telemetry::Timer::kReservoirCap; ++i)
    t.record(1.0 + 0.001 * static_cast<double>(i % 1000));
  const double p50 = t.quantileSeconds(0.5);
  const double p95 = t.quantileSeconds(0.95);
  EXPECT_GE(p50, t.minSeconds());
  EXPECT_LE(p95, t.maxSeconds());
  EXPECT_LE(p50, p95);
}

TEST(Metrics, TimerQuantilesAreSeedStable) {
  // Two timers fed the same stream agree exactly: the reservoir uses a
  // private deterministic generator, reseeded by reset().
  telemetry::Timer& a = telemetry::timer("test.metrics.quantiles_a");
  telemetry::Timer& b = telemetry::timer("test.metrics.quantiles_b");
  a.reset();
  b.reset();
  for (int i = 0; i < 2000; ++i) {
    const double v = 0.5 + 0.25 * std::sin(0.1 * i);
    a.record(v);
    b.record(v);
  }
  for (const double q : {0.0, 0.25, 0.5, 0.75, 0.95, 1.0})
    EXPECT_DOUBLE_EQ(a.quantileSeconds(q), b.quantileSeconds(q));
}

TEST(Metrics, ScopedTimerRecordsOneSample) {
  telemetry::Timer& t = telemetry::timer("test.metrics.scoped");
  t.reset();
  { telemetry::ScopedTimer scope(t); }
  EXPECT_EQ(t.count(), 1u);
  EXPECT_GE(t.totalSeconds(), 0.0);
}

TEST(Metrics, SnapshotContainsRegisteredMetrics) {
  telemetry::counter("test.metrics.snap_counter").add(7);
  telemetry::gauge("test.metrics.snap_gauge").set(2.5);
  telemetry::timer("test.metrics.snap_timer").record(0.25);
  const Json snap = telemetry::metricsSnapshot();
  EXPECT_EQ(snap.at("counters").at("test.metrics.snap_counter").asNumber(),
            7.0);
  EXPECT_EQ(snap.at("gauges").at("test.metrics.snap_gauge").asNumber(), 2.5);
  const Json& timer = snap.at("timers").at("test.metrics.snap_timer");
  EXPECT_EQ(timer.at("count").asNumber(), 1.0);
  EXPECT_EQ(timer.at("total_s").asNumber(), 0.25);
  // dump() of the snapshot parses back.
  EXPECT_NO_THROW(Json::parse(snap.dump()));
}

// --- Scoped registries ---------------------------------------------------

TEST(MetricsScope, ScopedRegistryIsolatesFromGlobal) {
  const std::uint64_t global_before =
      telemetry::globalMetrics().counter("test.scope.iso").value();
  telemetry::MetricsRegistry mine;
  {
    const telemetry::TelemetryScope scope(mine);
    telemetry::counter("test.scope.iso").add(3);
    telemetry::gauge("test.scope.iso_gauge").set(1.5);
  }
  EXPECT_EQ(mine.counter("test.scope.iso").value(), 3u);
  EXPECT_EQ(mine.gauge("test.scope.iso_gauge").value(), 1.5);
  // The global registry never saw the scoped bumps, and bumps after the
  // scope ends go back to it.
  EXPECT_EQ(telemetry::globalMetrics().counter("test.scope.iso").value(),
            global_before);
  telemetry::counter("test.scope.iso").add();
  EXPECT_EQ(telemetry::globalMetrics().counter("test.scope.iso").value(),
            global_before + 1);
  EXPECT_EQ(mine.counter("test.scope.iso").value(), 3u);
}

TEST(MetricsScope, ScopesNestAndRestoreExactly) {
  telemetry::MetricsRegistry outer, inner;
  {
    const telemetry::TelemetryScope outer_scope(outer);
    telemetry::counter("test.scope.nest").add();  // -> outer
    {
      const telemetry::TelemetryScope inner_scope(inner);
      telemetry::counter("test.scope.nest").add();  // -> inner
    }
    telemetry::counter("test.scope.nest").add();  // -> outer again
  }
  EXPECT_EQ(outer.counter("test.scope.nest").value(), 2u);
  EXPECT_EQ(inner.counter("test.scope.nest").value(), 1u);
}

TEST(MetricsScope, SnapshotAndResetActOnTheActiveRegistry) {
  telemetry::MetricsRegistry mine;
  const telemetry::TelemetryScope scope(mine);
  telemetry::counter("test.scope.snap").add(11);
  const Json snap = telemetry::metricsSnapshot();
  EXPECT_EQ(snap.at("counters").at("test.scope.snap").asNumber(), 11.0);
  // A fresh scoped registry starts empty: no cross-talk from the global
  // registry's accumulated names.
  EXPECT_FALSE(snap.at("counters").contains("test.metrics.snap_counter"));
  telemetry::resetMetrics();
  EXPECT_EQ(mine.counter("test.scope.snap").value(), 0u);
}

TEST(MetricsScope, FunctionLocalHandlesFollowTheScope) {
  // The pattern every instrumentation site uses after the global-state
  // sweep: look the handle up per call, never cache it in a static. Two
  // consecutive calls under different scopes must hit different registries.
  const auto bump = [] { telemetry::counter("test.scope.handle").add(); };
  telemetry::MetricsRegistry a, b;
  {
    const telemetry::TelemetryScope scope(a);
    bump();
  }
  {
    const telemetry::TelemetryScope scope(b);
    bump();
    bump();
  }
  EXPECT_EQ(a.counter("test.scope.handle").value(), 1u);
  EXPECT_EQ(b.counter("test.scope.handle").value(), 2u);
}

// --- Trace sinks --------------------------------------------------------

TEST(Trace, DisabledByDefaultAndScopedInstall) {
  EXPECT_FALSE(telemetry::traceEnabled());
  telemetry::CollectingTraceSink sink;
  {
    telemetry::ScopedTraceSink scope(&sink);
    EXPECT_TRUE(telemetry::traceEnabled());
    Json e = Json::object();
    e.set("type", "test");
    telemetry::emitTrace(e);
  }
  EXPECT_FALSE(telemetry::traceEnabled());
  ASSERT_EQ(sink.events.size(), 1u);
  EXPECT_EQ(sink.events[0].at("type").asString(), "test");
}

bo::MfboOptions tinyMfbo() {
  bo::MfboOptions o;
  o.n_init_low = 6;
  o.n_init_high = 3;
  o.budget = 6.0;
  o.msp.n_starts = 4;
  o.msp.local.max_evaluations = 30;
  o.nargp.n_mc = 10;
  o.nargp.low.n_restarts = 1;
  o.nargp.high.n_restarts = 1;
  return o;
}

TEST(Trace, MfboEmitsOneIterationEventPerLoopIteration) {
  problems::ForresterProblem problem;
  bo::MfboOptions options = tinyMfbo();
  std::size_t observer_calls = 0;
  options.observer = [&](const bo::IterationRecord& r) {
    ++observer_calls;
    EXPECT_EQ(r.algo, "mfbo");
    EXPECT_EQ(r.iteration, observer_calls);
    ASSERT_NE(r.x, nullptr);
    ASSERT_NE(r.eval, nullptr);
    EXPECT_TRUE(std::isfinite(r.max_norm_var));
    EXPECT_TRUE(std::isfinite(r.threshold));
  };

  telemetry::CollectingTraceSink sink;
  telemetry::ScopedTraceSink scope(&sink);
  bo::MfboSynthesizer(options).run(problem, 3);

  ASSERT_GT(observer_calls, 0u);
  std::size_t iteration_events = 0, run_starts = 0, run_ends = 0;
  for (const Json& e : sink.events) {
    const std::string& type = e.at("type").asString();
    if (type == "iteration") {
      ++iteration_events;
      EXPECT_EQ(e.at("algo").asString(), "mfbo");
      for (const char* key :
           {"iter", "fidelity", "max_norm_var", "threshold", "norm_low_var",
            "x_star_l", "x", "objective", "best_objective", "cost"})
        EXPECT_TRUE(e.contains(key)) << "missing key " << key;
    } else if (type == "run_start") {
      ++run_starts;
      EXPECT_EQ(e.at("problem").asString(), "forrester");
    } else if (type == "run_end") {
      ++run_ends;
      EXPECT_TRUE(e.contains("best_objective"));
    }
  }
  EXPECT_EQ(iteration_events, observer_calls);
  EXPECT_EQ(run_starts, 1u);
  EXPECT_EQ(run_ends, 1u);
}

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(Trace, SameSeedRunsProduceByteIdenticalJsonl) {
  problems::ForresterProblem problem;
  const bo::MfboOptions options = tinyMfbo();
  const std::string path1 = "test_telemetry_trace1.jsonl";
  const std::string path2 = "test_telemetry_trace2.jsonl";

  for (const std::string& path : {path1, path2}) {
    telemetry::TraceWriter writer(path);
    telemetry::ScopedTraceSink scope(&writer);
    bo::MfboSynthesizer(options).run(problem, 11);
    EXPECT_GT(writer.eventsWritten(), 2u);
  }

  const std::string trace1 = readFile(path1);
  const std::string trace2 = readFile(path2);
  ASSERT_FALSE(trace1.empty());
  EXPECT_EQ(trace1, trace2);

  // Every line is a standalone JSON object.
  std::istringstream lines(trace1);
  std::string line;
  while (std::getline(lines, line)) {
    const Json e = Json::parse(line);
    EXPECT_TRUE(e.isObject());
    EXPECT_TRUE(e.contains("type"));
  }
  std::remove(path1.c_str());
  std::remove(path2.c_str());
}

TEST(Trace, TracingDoesNotPerturbResults) {
  problems::ForresterProblem problem;
  const bo::MfboOptions options = tinyMfbo();

  const bo::SynthesisResult plain =
      bo::MfboSynthesizer(options).run(problem, 5);

  telemetry::CollectingTraceSink sink;
  bo::SynthesisResult traced;
  {
    telemetry::ScopedTraceSink scope(&sink);
    traced = bo::MfboSynthesizer(options).run(problem, 5);
  }

  EXPECT_GT(sink.events.size(), 0u);
  EXPECT_EQ(plain.history.size(), traced.history.size());
  EXPECT_EQ(plain.best_eval.objective, traced.best_eval.objective);
  EXPECT_EQ(plain.n_low, traced.n_low);
  EXPECT_EQ(plain.n_high, traced.n_high);
}

TEST(Trace, NullSinkEmitsNothing) {
  ASSERT_FALSE(telemetry::traceEnabled());
  problems::ForresterProblem problem;
  // No observer, no sink: the run must not emit or collect anything.
  bo::MfboSynthesizer(tinyMfbo()).run(problem, 5);
  EXPECT_EQ(telemetry::traceSink(), nullptr);
}

TEST(Trace, WriterWritesOneLinePerEvent) {
  const std::string path = "test_telemetry_writer.jsonl";
  {
    telemetry::TraceWriter writer(path);
    Json e = Json::object();
    e.set("type", "a");
    writer.write(e);
    e.set("type", "b");
    writer.write(e);
    EXPECT_EQ(writer.eventsWritten(), 2u);
  }
  const std::string text = readFile(path);
  EXPECT_EQ(text, "{\"type\":\"a\"}\n{\"type\":\"b\"}\n");
  std::remove(path.c_str());
}

TEST(Trace, WriterThrowsOnUnopenablePath) {
  EXPECT_THROW(telemetry::TraceWriter("/nonexistent-dir/trace.jsonl"),
               std::runtime_error);
}

TEST(Trace, WriterCountsWriteErrorsAndWarnsOnce) {
  // /dev/full accepts the open but fails every flush with ENOSPC — the
  // canonical disk-full simulation.
  std::FILE* full = std::fopen("/dev/full", "w");
  if (full == nullptr) GTEST_SKIP() << "/dev/full unavailable";
  telemetry::Counter& errors =
      telemetry::counter("telemetry.trace_write_errors");
  errors.reset();
  {
    telemetry::TraceWriter writer(full);  // borrowed stream
    Json e = Json::object();
    e.set("type", "doomed");
    ::testing::internal::CaptureStderr();
    writer.write(e);
    writer.write(e);
    const std::string warning = ::testing::internal::GetCapturedStderr();
    // Dropped events never count as written; every failure is counted.
    EXPECT_EQ(writer.eventsWritten(), 0u);
    EXPECT_EQ(writer.writeErrors(), 2u);
    EXPECT_EQ(errors.value(), 2u);
    // Exactly one stderr warning per writer, not one per event.
    const std::string needle = "trace write failed";
    std::size_t occurrences = 0;
    for (std::size_t pos = warning.find(needle); pos != std::string::npos;
         pos = warning.find(needle, pos + needle.size()))
      ++occurrences;
    EXPECT_EQ(occurrences, 1u);
  }
  std::fclose(full);
  errors.reset();
}

}  // namespace
