// Tests for the MNA circuit simulator, checked against closed-form circuit
// theory: dividers, diode drops, MOSFET operating regions, RC/RL dynamics,
// sinusoidal steady state, spectral analysis, and PVT corner behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "circuit/fft.h"
#include "circuit/measure.h"
#include "circuit/netlist.h"
#include "circuit/pvt.h"
#include "circuit/simulator.h"

namespace {

using namespace mfbo::circuit;

// ---------------------------------------------------------------- Waveform --

TEST(WaveformTest, DcIsConstant) {
  const Waveform w = Waveform::dc(3.3);
  EXPECT_DOUBLE_EQ(w.at(0.0), 3.3);
  EXPECT_DOUBLE_EQ(w.at(1e-3), 3.3);
  EXPECT_DOUBLE_EQ(w.dcValue(), 3.3);
}

TEST(WaveformTest, SineValues) {
  const Waveform w = Waveform::sine(1.0, 2.0, 1e3);
  EXPECT_NEAR(w.at(0.0), 1.0, 1e-12);
  EXPECT_NEAR(w.at(0.25e-3), 3.0, 1e-9);   // peak
  EXPECT_NEAR(w.at(0.75e-3), -1.0, 1e-9);  // trough
  EXPECT_DOUBLE_EQ(w.dcValue(), 1.0);
}

TEST(WaveformTest, PulseShapeAndPeriodicity) {
  // v1=0, v2=1, delay=1µs, rise=1µs, fall=1µs, width=2µs, period=10µs.
  const Waveform w = Waveform::pulse(0.0, 1.0, 1e-6, 1e-6, 1e-6, 2e-6, 10e-6);
  EXPECT_DOUBLE_EQ(w.at(0.0), 0.0);
  EXPECT_NEAR(w.at(1.5e-6), 0.5, 1e-9);   // mid-rise
  EXPECT_DOUBLE_EQ(w.at(3e-6), 1.0);      // flat top
  EXPECT_NEAR(w.at(4.5e-6), 0.5, 1e-9);   // mid-fall
  EXPECT_DOUBLE_EQ(w.at(6e-6), 0.0);      // low
  EXPECT_NEAR(w.at(11.5e-6), 0.5, 1e-9);  // second period mid-rise
}

// ----------------------------------------------------------------- devices --

TEST(MosfetModel, CutoffTriodeSaturationRegions) {
  MosfetParams p;
  p.vt0 = 0.5;
  p.kp = 2e-4;
  p.lambda = 0.0;
  p.w = 10e-6;
  p.l = 1e-6;
  const double beta = p.kp * p.w / p.l;  // 2e-3

  // Cutoff: vgs < vt.
  const MosfetState off = mosfetEval(p, 0.3, 1.0);
  EXPECT_LT(off.id, 1e-9);

  // Saturation: vds > vov. id = β/2·vov².
  const MosfetState sat = mosfetEval(p, 1.0, 2.0);
  EXPECT_NEAR(sat.id, 0.5 * beta * 0.25, 1e-9);
  EXPECT_NEAR(sat.gm, beta * 0.5, 1e-9);

  // Triode: id = β(vov·vds − vds²/2).
  const MosfetState tri = mosfetEval(p, 1.0, 0.2);
  EXPECT_NEAR(tri.id, beta * (0.5 * 0.2 - 0.5 * 0.04), 1e-9);
  // Triode current is below saturation current.
  EXPECT_LT(tri.id, sat.id);
}

TEST(MosfetModel, ChannelLengthModulationSlope) {
  MosfetParams p;
  p.lambda = 0.1;
  const MosfetState a = mosfetEval(p, 1.0, 1.0);
  const MosfetState b = mosfetEval(p, 1.0, 2.0);
  EXPECT_GT(b.id, a.id);  // finite output conductance
  EXPECT_GT(a.gds, 0.0);
}

TEST(MosfetModel, ContinuousAcrossTriodeSaturationBoundary) {
  MosfetParams p;
  const double vov = 1.0 - p.vt0;
  const MosfetState below = mosfetEval(p, 1.0, vov - 1e-9);
  const MosfetState above = mosfetEval(p, 1.0, vov + 1e-9);
  EXPECT_NEAR(below.id, above.id, 1e-9);
}

TEST(DiodeModel, ForwardExponentialAndReverseSaturation) {
  DiodeParams p;
  const DiodeState fwd = diodeEval(p, 0.6);
  // id ≈ Is·e^(0.6/0.02585) ≈ 1e-14·1.2e10 ≈ 1.2e-4.
  EXPECT_GT(fwd.id, 1e-5);
  EXPECT_LT(fwd.id, 1e-2);
  const DiodeState rev = diodeEval(p, -5.0);
  EXPECT_LT(rev.id, 0.0);
  EXPECT_GT(rev.id, -1e-9);
}

TEST(DiodeModel, LimitedExponentialStaysFinite) {
  DiodeParams p;
  const DiodeState s = diodeEval(p, 5.0);  // would overflow unlimited exp
  EXPECT_TRUE(std::isfinite(s.id));
  EXPECT_TRUE(std::isfinite(s.gd));
  EXPECT_GT(s.gd, 0.0);
}

// ---------------------------------------------------------------- netlist --

TEST(NetlistTest, NodeCreationAndGroundAliases) {
  Netlist n;
  EXPECT_EQ(n.node("0"), kGround);
  EXPECT_EQ(n.node("gnd"), kGround);
  const NodeId a = n.node("a");
  EXPECT_EQ(n.node("a"), a);  // idempotent
  EXPECT_NE(n.node("b"), a);
  EXPECT_EQ(n.numNodes(), 2u);
  EXPECT_EQ(n.nodeName(a), "a");
}

TEST(NetlistTest, RejectsBadComponents) {
  Netlist n;
  const NodeId a = n.node("a");
  EXPECT_THROW(n.addResistor("r", a, kGround, 0.0), std::invalid_argument);
  EXPECT_THROW(n.addCapacitor("c", a, kGround, -1e-12),
               std::invalid_argument);
  EXPECT_THROW(n.addResistor("r", 42, kGround, 1e3), std::invalid_argument);
}

TEST(NetlistTest, NamedLookups) {
  Netlist n;
  const NodeId a = n.node("a");
  n.addVSource("vdd", a, kGround, Waveform::dc(1.0));
  n.addMosfet("m1", a, a, kGround, MosfetParams{});
  EXPECT_EQ(n.vsourceIndex("vdd"), 0u);
  EXPECT_EQ(n.mosfetIndex("m1"), 0u);
  EXPECT_THROW(n.vsourceIndex("nope"), std::invalid_argument);
}

// --------------------------------------------------------------------- DC --

TEST(DcAnalysis, VoltageDivider) {
  Netlist n;
  const NodeId vin = n.node("in"), mid = n.node("mid");
  n.addVSource("v1", vin, kGround, Waveform::dc(10.0));
  n.addResistor("r1", vin, mid, 1e3);
  n.addResistor("r2", mid, kGround, 3e3);
  Simulator sim(n);
  const DcResult dc = sim.dcOperatingPoint();
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(dc.solution[static_cast<std::size_t>(mid)], 7.5, 1e-6);
}

TEST(DcAnalysis, VsourceCurrentSign) {
  // 10 V across 1 kΩ: 10 mA flows out of + terminal through the circuit,
  // so the SPICE branch current (into +) is −10 mA.
  Netlist n;
  const NodeId a = n.node("a");
  n.addVSource("v1", a, kGround, Waveform::dc(10.0));
  n.addResistor("r1", a, kGround, 1e3);
  Simulator sim(n);
  const DcResult dc = sim.dcOperatingPoint();
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(sim.vsourceCurrent(dc.solution, 0), -10e-3, 1e-9);
}

TEST(DcAnalysis, CurrentSourceIntoResistor) {
  Netlist n;
  const NodeId a = n.node("a");
  n.addISource("i1", kGround, a, Waveform::dc(1e-3));  // inject into a
  n.addResistor("r1", a, kGround, 2e3);
  Simulator sim(n);
  const DcResult dc = sim.dcOperatingPoint();
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(dc.solution[static_cast<std::size_t>(a)], 2.0, 1e-6);
}

TEST(DcAnalysis, InductorIsDcShort) {
  Netlist n;
  const NodeId vin = n.node("in"), mid = n.node("mid");
  n.addVSource("v1", vin, kGround, Waveform::dc(5.0));
  n.addInductor("l1", vin, mid, 1e-9);
  n.addResistor("r1", mid, kGround, 1e3);
  Simulator sim(n);
  const DcResult dc = sim.dcOperatingPoint();
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(dc.solution[static_cast<std::size_t>(mid)], 5.0, 1e-6);
  EXPECT_NEAR(sim.inductorCurrent(dc.solution, 0), 5e-3, 1e-8);
}

TEST(DcAnalysis, DiodeDropIsAboutSixHundredMillivolts) {
  Netlist n;
  const NodeId vin = n.node("in"), mid = n.node("mid");
  n.addVSource("v1", vin, kGround, Waveform::dc(5.0));
  n.addResistor("r1", vin, mid, 10e3);
  n.addDiode("d1", mid, kGround, DiodeParams{});
  Simulator sim(n);
  const DcResult dc = sim.dcOperatingPoint();
  ASSERT_TRUE(dc.converged);
  const double vd = dc.solution[static_cast<std::size_t>(mid)];
  EXPECT_GT(vd, 0.4);
  EXPECT_LT(vd, 0.75);
}

TEST(DcAnalysis, NmosSaturationBiasMatchesSquareLaw) {
  // VDD=3V, drain resistor 10k, vgs=1.0, vt=0.5, kp=2e-4, W/L=10:
  // id = 0.5·2e-3·0.25 = 0.25 mA (λ=0) → vd = 3 − 2.5 = 0.5 V.
  Netlist n;
  const NodeId vdd = n.node("vdd"), d = n.node("d"), g = n.node("g");
  n.addVSource("vdd", vdd, kGround, Waveform::dc(3.0));
  n.addVSource("vg", g, kGround, Waveform::dc(1.0));
  n.addResistor("rd", vdd, d, 10e3);
  MosfetParams p;
  p.vt0 = 0.5;
  p.kp = 2e-4;
  p.lambda = 0.0;
  p.w = 10e-6;
  p.l = 1e-6;
  n.addMosfet("m1", d, g, kGround, p);
  Simulator sim(n);
  const DcResult dc = sim.dcOperatingPoint();
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(dc.solution[static_cast<std::size_t>(d)], 0.5, 1e-3);
  EXPECT_NEAR(sim.mosfetCurrent(dc.solution, 0), 0.25e-3, 1e-7);
}

TEST(DcAnalysis, PmosSourceFollowsSupply) {
  // PMOS with gate at 0, source at VDD=2V: |vgs| = 2 ≫ vt → on, drain
  // pulls the 100k load high.
  Netlist n;
  const NodeId vdd = n.node("vdd"), d = n.node("d");
  n.addVSource("vdd", vdd, kGround, Waveform::dc(2.0));
  MosfetParams p;
  p.is_pmos = true;
  p.vt0 = 0.5;
  p.w = 20e-6;
  p.l = 1e-6;
  n.addMosfet("m1", d, kGround, vdd, p);  // d, g=gnd, s=vdd
  n.addResistor("rl", d, kGround, 100e3);
  Simulator sim(n);
  const DcResult dc = sim.dcOperatingPoint();
  ASSERT_TRUE(dc.converged);
  EXPECT_GT(dc.solution[static_cast<std::size_t>(d)], 1.8);
}

TEST(DcAnalysis, NmosCurrentMirrorRatio) {
  // Diode-connected reference at 100 µA mirrored into a 2× wide device.
  Netlist n;
  const NodeId ref = n.node("ref"), out = n.node("out"),
               vdd = n.node("vdd");
  n.addVSource("vdd", vdd, kGround, Waveform::dc(3.0));
  n.addISource("iref", vdd, ref, Waveform::dc(100e-6));
  MosfetParams p;
  p.vt0 = 0.5;
  p.kp = 2e-4;
  p.lambda = 0.0;  // ideal mirror
  p.w = 10e-6;
  p.l = 1e-6;
  n.addMosfet("m_ref", ref, ref, kGround, p);  // diode-connected
  MosfetParams p2 = p;
  p2.w = 20e-6;
  n.addMosfet("m_out", out, ref, kGround, p2);
  n.addResistor("r_out", vdd, out, 5e3);
  Simulator sim(n);
  const DcResult dc = sim.dcOperatingPoint();
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(sim.mosfetCurrent(dc.solution, 1), 200e-6, 2e-6);
}

// ---------------------------------------------------------------- transient --

TEST(TransientAnalysis, RcStepChargingMatchesExponential) {
  // 1 V step into RC with τ = 1 µs.
  Netlist n;
  const NodeId in = n.node("in"), out = n.node("out");
  n.addVSource("v1", in, kGround,
               Waveform::pulse(0.0, 1.0, 0.0, 1e-12, 1e-12, 1.0, 0.0));
  n.addResistor("r1", in, out, 1e3);
  n.addCapacitor("c1", out, kGround, 1e-9);
  Simulator sim(n);
  const TransientResult tr = sim.transient(5e-6, 1e-8);
  ASSERT_TRUE(tr.converged);
  const double tau = 1e-6;
  for (std::size_t k = 10; k < tr.time.size(); k += 50) {
    const double expected = 1.0 - std::exp(-tr.time[k] / tau);
    EXPECT_NEAR(tr.nodeVoltage(k, out), expected, 0.01)
        << "t=" << tr.time[k];
  }
}

TEST(TransientAnalysis, RlCurrentRiseMatchesExponential) {
  // 1 V step into R=1k, L=1mH: i(t) = (V/R)(1 − e^{−t/τ}), τ = 1 µs.
  Netlist n;
  const NodeId in = n.node("in"), mid = n.node("mid");
  n.addVSource("v1", in, kGround,
               Waveform::pulse(0.0, 1.0, 0.0, 1e-12, 1e-12, 1.0, 0.0));
  n.addResistor("r1", in, mid, 1e3);
  n.addInductor("l1", mid, kGround, 1e-3);
  Simulator sim(n);
  const TransientResult tr = sim.transient(5e-6, 1e-8);
  ASSERT_TRUE(tr.converged);
  const double tau = 1e-6;
  for (std::size_t k = 20; k < tr.time.size(); k += 60) {
    const double expected = 1e-3 * (1.0 - std::exp(-tr.time[k] / tau));
    EXPECT_NEAR(sim.inductorCurrent(tr.solution[k], 0), expected, 2e-5)
        << "t=" << tr.time[k];
  }
}

TEST(TransientAnalysis, SinusoidalSteadyStateAmplitudeRcLowpass) {
  // RC low-pass at its corner frequency: |H| = 1/√2, phase −45°.
  const double f = 1e6;
  const double r = 1e3;
  const double c = 1.0 / (2.0 * std::numbers::pi * f * r);  // corner at f
  Netlist n;
  const NodeId in = n.node("in"), out = n.node("out");
  n.addVSource("v1", in, kGround, Waveform::sine(0.0, 1.0, f));
  n.addResistor("r1", in, out, r);
  n.addCapacitor("c1", out, kGround, c);
  Simulator sim(n);
  // 20 periods, 200 steps per period; analyze after 10 periods.
  const TransientResult tr = sim.transient(20e-6, 1.0 / (200.0 * f));
  ASSERT_TRUE(tr.converged);
  const auto harmonics = nodeHarmonics(tr, out, f, 3, 10e-6);
  EXPECT_NEAR(harmonics[1].magnitude, 1.0 / std::sqrt(2.0), 0.01);
}

TEST(TransientAnalysis, CapacitorBlocksDc) {
  // Series C into R load: in steady state, no DC passes.
  Netlist n;
  const NodeId in = n.node("in"), out = n.node("out");
  n.addVSource("v1", in, kGround, Waveform::dc(5.0));
  n.addCapacitor("c1", in, out, 1e-9);
  n.addResistor("r1", out, kGround, 1e3);
  Simulator sim(n);
  const TransientResult tr = sim.transient(20e-6, 1e-8);
  ASSERT_TRUE(tr.converged);
  EXPECT_NEAR(tr.nodeVoltage(tr.time.size() - 1, out), 0.0, 1e-3);
}

TEST(TransientAnalysis, EnergyConservationLcTank) {
  // Ideal LC tank rung from an initial capacitor charge via a source that
  // disconnects: amplitude should persist (trapezoid is non-dissipative).
  const double l = 1e-6, c = 1e-12;
  const double f0 = 1.0 / (2.0 * std::numbers::pi * std::sqrt(l * c));
  Netlist n;
  const NodeId top = n.node("top");
  // Huge resistor keeps the DC solvable; source charges the cap via a big
  // resistor, then the tank oscillates nearly freely.
  n.addVSource("v1", n.node("src"), kGround,
               Waveform::pulse(1.0, 0.0, 1e-12, 1e-12, 1e-12, 1.0, 0.0));
  n.addResistor("rbig", n.node("src"), top, 1e9);
  n.addCapacitor("c1", top, kGround, c);
  n.addInductor("l1", top, kGround, l);
  Simulator sim(n);
  const TransientResult tr = sim.transient(20.0 / f0, 1.0 / (400.0 * f0));
  ASSERT_TRUE(tr.converged);
  // Peak voltage in the last quarter vs the first quarter after startup.
  double early_peak = 0.0, late_peak = 0.0;
  for (std::size_t k = 0; k < tr.time.size() / 4; ++k)
    early_peak = std::max(early_peak, std::abs(tr.nodeVoltage(k, top)));
  for (std::size_t k = 3 * tr.time.size() / 4; k < tr.time.size(); ++k)
    late_peak = std::max(late_peak, std::abs(tr.nodeVoltage(k, top)));
  EXPECT_NEAR(late_peak, early_peak, 0.05 * early_peak + 1e-6);
}

TEST(TransientAnalysis, ThrowsOnBadTiming) {
  Netlist n;
  n.addResistor("r", n.node("a"), kGround, 1.0);
  Simulator sim(n);
  EXPECT_THROW(sim.transient(0.0, 1e-9), std::invalid_argument);
  EXPECT_THROW(sim.transient(1e-6, 0.0), std::invalid_argument);
}

// --------------------------------------------------------------------- FFT --

TEST(FftTest, KnownSpectrumOfPureTone) {
  const std::size_t n = 256;
  std::vector<std::complex<double>> data(n);
  // cos(2π·8·k/n): bins 8 and n−8 get n/2 each.
  for (std::size_t k = 0; k < n; ++k)
    data[k] = std::cos(2.0 * std::numbers::pi * 8.0 * static_cast<double>(k) /
                       static_cast<double>(n));
  fftRadix2(data);
  EXPECT_NEAR(std::abs(data[8]), static_cast<double>(n) / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(data[n - 8]), static_cast<double>(n) / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(data[7]), 0.0, 1e-9);
}

TEST(FftTest, LinearityAndParseval) {
  const std::size_t n = 128;
  std::vector<std::complex<double>> data(n);
  double time_energy = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double t = static_cast<double>(k);
    data[k] = std::sin(0.3 * t) + 0.5 * std::cos(0.7 * t);
    time_energy += std::norm(data[k]);
  }
  fftRadix2(data);
  double freq_energy = 0.0;
  for (const auto& v : data) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              1e-9 * time_energy);
}

TEST(FftTest, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> data(100);
  EXPECT_THROW(fftRadix2(data), std::invalid_argument);
}

TEST(HarmonicAnalysisTest, RecoversSynthesizedHarmonics) {
  const double f0 = 1e3, dt = 1.0 / (1000.0 * f0);
  std::vector<double> samples;
  for (std::size_t k = 0; k <= 5000; ++k) {  // 5 periods
    const double t = static_cast<double>(k) * dt;
    samples.push_back(0.2 +
                      1.5 * std::sin(2 * std::numbers::pi * f0 * t + 0.3) +
                      0.4 * std::sin(2 * std::numbers::pi * 2 * f0 * t) +
                      0.1 * std::sin(2 * std::numbers::pi * 3 * f0 * t));
  }
  const auto h = harmonicAnalysis(samples, dt, f0, 4);
  ASSERT_EQ(h.size(), 5u);
  EXPECT_NEAR(h[0].magnitude, 0.2, 1e-6);
  EXPECT_NEAR(h[1].magnitude, 1.5, 1e-6);
  EXPECT_NEAR(h[2].magnitude, 0.4, 1e-6);
  EXPECT_NEAR(h[3].magnitude, 0.1, 1e-6);
  EXPECT_NEAR(h[4].magnitude, 0.0, 1e-6);
  const double expected_thd = std::sqrt(0.4 * 0.4 + 0.1 * 0.1) / 1.5;
  EXPECT_NEAR(totalHarmonicDistortion(h), expected_thd, 1e-6);
  EXPECT_NEAR(totalHarmonicDistortionDb(h),
              20.0 * std::log10(expected_thd), 1e-6);
}

TEST(HarmonicAnalysisTest, PureToneThdIsZero) {
  const double f0 = 1e3, dt = 1e-6;
  std::vector<double> samples;
  for (std::size_t k = 0; k <= 3000; ++k)
    samples.push_back(
        std::sin(2 * std::numbers::pi * f0 * static_cast<double>(k) * dt));
  const auto h = harmonicAnalysis(samples, dt, f0, 5);
  EXPECT_NEAR(totalHarmonicDistortion(h), 0.0, 1e-9);
}

TEST(HarmonicAnalysisTest, ThrowsWhenWindowTooShort) {
  std::vector<double> samples(10, 1.0);
  EXPECT_THROW(harmonicAnalysis(samples, 1e-6, 1e3, 2),
               std::invalid_argument);
}

// ---------------------------------------------------------------- measure --

TEST(MeasureTest, AverageSourcePowerIntoResistor) {
  // 2 V DC across 100 Ω: P = 40 mW delivered.
  Netlist n;
  const NodeId a = n.node("a");
  n.addVSource("v1", a, kGround, Waveform::dc(2.0));
  n.addResistor("r1", a, kGround, 100.0);
  Simulator sim(n);
  const TransientResult tr = sim.transient(1e-6, 1e-8);
  ASSERT_TRUE(tr.converged);
  EXPECT_NEAR(averageSourcePower(sim, tr, 0, 0.0), 0.04, 1e-6);
}

TEST(MeasureTest, SineSourceIntoResistorAveragePower) {
  // 1 V amplitude sine across 50 Ω: P = V²/(2R) = 10 mW.
  const double f = 1e6;
  Netlist n;
  const NodeId a = n.node("a");
  n.addVSource("v1", a, kGround, Waveform::sine(0.0, 1.0, f));
  n.addResistor("r1", a, kGround, 50.0);
  Simulator sim(n);
  const TransientResult tr = sim.transient(10e-6, 1.0 / (500.0 * f));
  ASSERT_TRUE(tr.converged);
  EXPECT_NEAR(averageSourcePower(sim, tr, 0, 5e-6), 0.01, 2e-4);
  EXPECT_NEAR(fundamentalLoadPower(tr, a, 50.0, f, 5e-6), 0.01, 1e-4);
}

TEST(MeasureTest, MosfetCurrentStatsOnSwitchedDevice) {
  // Square-wave gate: current toggles between 0 and the saturation value.
  Netlist n;
  const NodeId vdd = n.node("vdd"), d = n.node("d"), g = n.node("g");
  n.addVSource("vdd", vdd, kGround, Waveform::dc(2.0));
  n.addVSource("vg", g, kGround,
               Waveform::pulse(0.0, 1.0, 0.0, 1e-9, 1e-9, 0.5e-6, 1e-6));
  n.addResistor("rd", vdd, d, 1e3);
  MosfetParams p;
  p.vt0 = 0.5;
  p.kp = 2e-4;
  p.lambda = 0.0;
  p.w = 10e-6;
  p.l = 1e-6;
  n.addMosfet("m1", d, g, kGround, p);
  Simulator sim(n);
  const TransientResult tr = sim.transient(4e-6, 2e-9);
  ASSERT_TRUE(tr.converged);
  const CurrentStats stats = mosfetCurrentStats(sim, tr, 0, 1e-6);
  EXPECT_NEAR(stats.min, 0.0, 1e-6);
  EXPECT_NEAR(stats.max, 0.25e-3, 1e-5);
  EXPECT_NEAR(stats.avg, 0.125e-3, 2e-5);
}

// -------------------------------------------------------------------- PVT --

TEST(PvtTest, GridHas27CornersCenteredOnNominal) {
  const auto grid = fullPvtGrid();
  ASSERT_EQ(grid.size(), 27u);
  const PvtCorner& center = grid[13];
  EXPECT_DOUBLE_EQ(center.kp_scale, 1.0);
  EXPECT_DOUBLE_EQ(center.vdd_scale, 1.0);
  EXPECT_DOUBLE_EQ(center.temp_c, 27.0);
}

TEST(PvtTest, NominalCornerIsIdentityOnParams) {
  MosfetParams p;
  p.kp = 3e-4;
  p.vt0 = 0.45;
  const MosfetParams q = applyCorner(p, nominalCorner());
  EXPECT_NEAR(q.kp, p.kp, 1e-12);
  EXPECT_NEAR(q.vt0, p.vt0, 1e-12);
}

TEST(PvtTest, CornersMoveParametersInTheRightDirection) {
  MosfetParams p;
  const auto grid = fullPvtGrid();
  // At matched supply and temperature, process ordering is SS < TT < FF in
  // mobility and SS > TT > FF in threshold.
  for (std::size_t i = 0; i < 9; ++i) {
    const MosfetParams ss = applyCorner(p, grid[i]);        // SS block
    const MosfetParams tt = applyCorner(p, grid[9 + i]);    // TT block
    const MosfetParams ff = applyCorner(p, grid[18 + i]);   // FF block
    EXPECT_LT(ss.kp, tt.kp);
    EXPECT_LT(tt.kp, ff.kp);
    EXPECT_GT(ss.vt0, tt.vt0);
    EXPECT_GT(tt.vt0, ff.vt0);
  }
  for (const PvtCorner& c : grid) {
    const MosfetParams q = applyCorner(p, c);
    EXPECT_GT(q.kp, 0.0);
    EXPECT_GT(q.vt0, 0.0);
  }
  // Hot silicon: slower (lower kp), lower vt. Cold silicon: faster.
  PvtCorner hot = nominalCorner();
  hot.temp_c = 125.0;
  const MosfetParams h = applyCorner(p, hot);
  EXPECT_LT(h.kp, p.kp);
  EXPECT_LT(h.vt0, p.vt0);
  PvtCorner cold = nominalCorner();
  cold.temp_c = -40.0;
  EXPECT_GT(applyCorner(p, cold).kp, p.kp);
}

TEST(PvtTest, CornerCurrentsSpreadAroundNominal) {
  // The same bias point simulated across corners must produce a current
  // spread that brackets the nominal value — the property the charge-pump
  // constraints are built on.
  MosfetParams p;
  p.vt0 = 0.5;
  p.kp = 2e-4;
  p.w = 10e-6;
  p.l = 1e-6;
  const double nominal_id = mosfetEval(p, 1.0, 1.5).id;
  double lo = nominal_id, hi = nominal_id;
  for (const PvtCorner& c : fullPvtGrid()) {
    const double id = mosfetEval(applyCorner(p, c), 1.0, 1.5).id;
    lo = std::min(lo, id);
    hi = std::max(hi, id);
  }
  EXPECT_LT(lo, 0.95 * nominal_id);
  EXPECT_GT(hi, 1.05 * nominal_id);
}

}  // namespace
