// Unit and property tests for mfbo::gp — kernels, NLML, and the regressor.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "gp/gp_regressor.h"
#include "gp/kernel.h"
#include "linalg/rng.h"
#include "linalg/sampling.h"

namespace {

using namespace mfbo::gp;
using mfbo::linalg::Box;
using mfbo::linalg::Cholesky;
using mfbo::linalg::Rng;

// ---------------------------------------------------------------- kernels --

TEST(SeArdKernel, SelfCovarianceIsSignalVariance) {
  SeArdKernel k(3, /*sigma_f=*/2.0, /*lengthscale=*/0.7);
  Rng rng(1);
  Vector x = rng.uniformVector(3);
  EXPECT_NEAR(k.eval(x, x), 4.0, 1e-12);
}

TEST(SeArdKernel, SymmetricAndDecaysWithDistance) {
  SeArdKernel k(2);
  Vector a{0.0, 0.0}, b{0.5, 0.1}, c{2.0, 2.0};
  EXPECT_DOUBLE_EQ(k.eval(a, b), k.eval(b, a));
  EXPECT_GT(k.eval(a, b), k.eval(a, c));
  EXPECT_GT(k.eval(a, a), k.eval(a, b));
}

TEST(SeArdKernel, KnownValue) {
  // 1-d, sf=1, l=1: k(0, 1) = exp(-0.5).
  SeArdKernel k(1, 1.0, 1.0);
  EXPECT_NEAR(k.eval(Vector{0.0}, Vector{1.0}), std::exp(-0.5), 1e-14);
}

TEST(SeArdKernel, ArdLengthscalesActPerDimension) {
  SeArdKernel k(2);
  // l_0 small, l_1 large: movement along dim 0 should matter far more.
  k.setParams(Vector{0.0, std::log(0.1), std::log(10.0)});
  Vector origin{0.0, 0.0};
  const double along0 = k.eval(origin, Vector{0.3, 0.0});
  const double along1 = k.eval(origin, Vector{0.0, 0.3});
  EXPECT_LT(along0, along1);
}

TEST(SeArdKernel, ParamsRoundTrip) {
  SeArdKernel k(4);
  Vector p{0.3, -0.1, 0.2, -0.5, 1.0};
  k.setParams(p);
  EXPECT_LT(mfbo::linalg::maxAbsDiff(k.params(), p), 1e-15);
  EXPECT_EQ(k.numParams(), 5u);
  EXPECT_EQ(k.paramName(0), "log_sigma_f");
  EXPECT_EQ(k.paramName(2), "log_l1");
}

TEST(SeArdKernel, GramIsSpd) {
  Rng rng(3);
  SeArdKernel k(3);
  std::vector<Vector> x;
  for (int i = 0; i < 12; ++i) x.push_back(rng.uniformVector(3));
  Matrix gram = k.gram(x);
  // SPD up to jitter.
  EXPECT_NO_THROW(Cholesky::factorWithJitter(gram));
  for (std::size_t i = 0; i < x.size(); ++i)
    for (std::size_t j = 0; j < x.size(); ++j)
      EXPECT_DOUBLE_EQ(gram(i, j), gram(j, i));
}

TEST(NargpKernel, ReducesToSumWhenYlMatches) {
  // When y_l coordinates coincide, k1 = 1 so k = k2 + k3 with matching x.
  NargpKernel k(2);
  Vector a{0.1, 0.2, 0.7};
  Vector b{0.4, 0.9, 0.7};  // same y_l = 0.7
  // Compare with manual evaluation using the kernel's own parameters.
  const Vector p = k.params();
  const double sf2 = std::exp(p[1]), l2_0 = std::exp(p[2]),
               l2_1 = std::exp(p[3]);
  const double sf3 = std::exp(p[4]), l3_0 = std::exp(p[5]),
               l3_1 = std::exp(p[6]);
  auto se = [](double sf, double q) { return sf * sf * std::exp(-0.5 * q); };
  const double q2 = std::pow((a[0] - b[0]) / l2_0, 2) +
                    std::pow((a[1] - b[1]) / l2_1, 2);
  const double q3 = std::pow((a[0] - b[0]) / l3_0, 2) +
                    std::pow((a[1] - b[1]) / l3_1, 2);
  EXPECT_NEAR(k.eval(a, b), se(sf2, q2) + se(sf3, q3), 1e-12);
}

TEST(NargpKernel, YlDifferenceReducesCovariance) {
  NargpKernel k(2);
  Vector a{0.1, 0.2, 0.0};
  Vector same_yl{0.3, 0.4, 0.0};
  Vector diff_yl{0.3, 0.4, 2.0};
  EXPECT_GT(k.eval(a, same_yl), k.eval(a, diff_yl));
}

TEST(NargpKernel, ParamsRoundTripAndNames) {
  NargpKernel k(3);
  EXPECT_EQ(k.numParams(), 9u);
  Rng rng(5);
  Vector p = rng.normalVector(9);
  k.setParams(p);
  EXPECT_LT(mfbo::linalg::maxAbsDiff(k.params(), p), 1e-15);
  EXPECT_EQ(k.paramName(0), "log_l_rho");
  EXPECT_EQ(k.paramName(1), "log_sf2");
  EXPECT_EQ(k.paramName(5), "log_sf3");
}

TEST(NargpKernel, GramIsSpd) {
  Rng rng(7);
  NargpKernel k(2);
  std::vector<Vector> z;
  for (int i = 0; i < 10; ++i) z.push_back(rng.uniformVector(3));
  EXPECT_NO_THROW(Cholesky::factorWithJitter(k.gram(z)));
}

// Finite-difference check of accumulateWeightedGrad for both kernels:
// Σ w_ij k_ij differentiated numerically must match the accumulated grad.
template <typename K>
void checkWeightedGrad(K& kernel, std::size_t input_dim, unsigned seed) {
  Rng rng(seed);
  std::vector<Vector> x;
  for (int i = 0; i < 7; ++i) x.push_back(rng.uniformVector(input_dim));
  Matrix w(7, 7);
  for (std::size_t i = 0; i < 7; ++i)
    for (std::size_t j = 0; j <= i; ++j) {
      w(i, j) = rng.normal();
      w(j, i) = w(i, j);
    }
  const Vector p0 = kernel.params();
  auto contraction = [&](const Vector& p) {
    kernel.setParams(p);
    double acc = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
      for (std::size_t j = 0; j < x.size(); ++j)
        acc += w(i, j) * kernel.eval(x[i], x[j]);
    return acc;
  };
  Vector grad(kernel.numParams());
  kernel.setParams(p0);
  kernel.accumulateWeightedGrad(x, w, grad);
  const double h = 1e-6;
  for (std::size_t t = 0; t < kernel.numParams(); ++t) {
    Vector pp = p0, pm = p0;
    pp[t] += h;
    pm[t] -= h;
    const double fd = (contraction(pp) - contraction(pm)) / (2.0 * h);
    EXPECT_NEAR(grad[t], fd, 1e-5 * std::max(1.0, std::abs(fd)))
        << "param " << t << " (" << kernel.paramName(t) << ")";
  }
  kernel.setParams(p0);
}

TEST(SeArdKernel, WeightedGradMatchesFiniteDifference) {
  SeArdKernel k(3);
  k.setParams(Vector{0.2, -0.4, 0.1, -0.8});
  checkWeightedGrad(k, 3, 11);
}

TEST(NargpKernel, WeightedGradMatchesFiniteDifference) {
  NargpKernel k(2);
  k.setParams(Vector{-0.3, 0.2, -0.5, 0.4, -0.2, 0.1, -0.6});
  checkWeightedGrad(k, 3, 13);
}

// ------------------------------------------------------------------- NLML --

TEST(Nlml, MatchesDirectFormula) {
  // Compare against the textbook NLML computed with explicit inverse.
  Rng rng(17);
  SeArdKernel kernel(2);
  std::vector<Vector> x;
  Vector y(6);
  for (int i = 0; i < 6; ++i) {
    x.push_back(rng.uniformVector(2));
    y[static_cast<std::size_t>(i)] = rng.normal();
  }
  const double log_sn = std::log(0.2);
  const double got = negLogMarginalLikelihood(kernel, log_sn, x, y);

  Matrix k = kernel.gram(x);
  for (std::size_t i = 0; i < 6; ++i) k(i, i) += std::exp(2.0 * log_sn);
  Cholesky chol = Cholesky::factor(k);
  const Vector alpha = chol.solve(y);
  const double expected = 0.5 * dot(y, alpha) + 0.5 * chol.logDet() +
                          3.0 * std::log(2.0 * M_PI);
  EXPECT_NEAR(got, expected, 1e-10);
}

TEST(Nlml, GradientMatchesFiniteDifference) {
  Rng rng(19);
  SeArdKernel kernel(2);
  std::vector<Vector> x;
  Vector y(8);
  for (int i = 0; i < 8; ++i) {
    x.push_back(rng.uniformVector(2));
    y[static_cast<std::size_t>(i)] =
        std::sin(3.0 * x.back()[0]) + 0.1 * rng.normal();
  }
  const Vector p0 = kernel.params();
  const double log_sn0 = std::log(0.15);

  Vector grad;
  negLogMarginalLikelihood(kernel, log_sn0, x, y, &grad);
  ASSERT_EQ(grad.size(), kernel.numParams() + 1);

  auto eval_at = [&](const Vector& kp, double log_sn) {
    kernel.setParams(kp);
    const double v = negLogMarginalLikelihood(kernel, log_sn, x, y);
    kernel.setParams(p0);
    return v;
  };
  const double h = 1e-6;
  for (std::size_t t = 0; t < kernel.numParams(); ++t) {
    Vector pp = p0, pm = p0;
    pp[t] += h;
    pm[t] -= h;
    const double fd = (eval_at(pp, log_sn0) - eval_at(pm, log_sn0)) / (2 * h);
    EXPECT_NEAR(grad[t], fd, 1e-4 * std::max(1.0, std::abs(fd)))
        << "kernel param " << t;
  }
  const double fd_noise =
      (eval_at(p0, log_sn0 + h) - eval_at(p0, log_sn0 - h)) / (2 * h);
  EXPECT_NEAR(grad[kernel.numParams()], fd_noise,
              1e-4 * std::max(1.0, std::abs(fd_noise)));
}

TEST(Nlml, ThrowsOnEmptyData) {
  SeArdKernel kernel(1);
  EXPECT_THROW(negLogMarginalLikelihood(kernel, 0.0, {}, Vector{}),
               mfbo::ContractViolation);
}

// -------------------------------------------------------------- regressor --

GpRegressor makeFitted1d(std::size_t n, double noise_sd, unsigned seed,
                         double (*f)(double)) {
  Rng rng(seed);
  std::vector<Vector> x;
  std::vector<double> y;
  for (std::size_t i = 0; i < n; ++i) {
    const double xi = static_cast<double>(i) / static_cast<double>(n - 1);
    x.push_back(Vector{xi});
    y.push_back(f(xi) + noise_sd * rng.normal());
  }
  GpConfig cfg;
  cfg.seed = seed;
  GpRegressor gp(std::make_unique<SeArdKernel>(1), cfg);
  gp.fit(std::move(x), std::move(y));
  return gp;
}

TEST(GpRegressor, InterpolatesNoiselessData) {
  auto f = [](double x) { return std::sin(6.0 * x); };
  GpRegressor gp = makeFitted1d(15, 0.0, 23, f);
  for (double xq : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const Prediction p = gp.predict(Vector{xq});
    EXPECT_NEAR(p.mean, f(xq), 5e-2) << "x=" << xq;
  }
}

TEST(GpRegressor, PredictionUncertaintyGrowsAwayFromData) {
  auto f = [](double x) { return x * x; };
  GpRegressor gp = makeFitted1d(10, 0.01, 29, f);
  const Prediction near = gp.predict(Vector{0.5});
  const Prediction far = gp.predict(Vector{3.0});
  EXPECT_LT(near.var, far.var);
}

TEST(GpRegressor, RecoversFunctionUnderNoise) {
  auto f = [](double x) { return std::cos(4.0 * x); };
  GpRegressor gp = makeFitted1d(40, 0.05, 31, f);
  double rmse = 0.0;
  for (int i = 0; i < 50; ++i) {
    const double xq = static_cast<double>(i) / 49.0;
    const double err = gp.predict(Vector{xq}).mean - f(xq);
    rmse += err * err;
  }
  rmse = std::sqrt(rmse / 50.0);
  EXPECT_LT(rmse, 0.1);
}

TEST(GpRegressor, LearnedNoiseIsReasonable) {
  auto f = [](double x) { return 2.0 * x; };
  GpRegressor gp = makeFitted1d(60, 0.1, 37, f);
  // Output standardization: raw sd of y ≈ sd(2x) ≈ 0.58, so noise 0.1 raw
  // ≈ 0.17 standardized. Accept a generous bracket.
  EXPECT_GT(gp.noiseSd(), 0.01);
  EXPECT_LT(gp.noiseSd(), 0.8);
}

TEST(GpRegressor, AddPointUpdatesPosterior) {
  auto f = [](double x) { return std::sin(5.0 * x); };
  GpRegressor gp = makeFitted1d(8, 0.0, 41, f);
  const double x_new = 0.62;
  const Prediction before = gp.predict(Vector{x_new});
  gp.addPoint(Vector{x_new}, f(x_new), /*retrain=*/false);
  const Prediction after = gp.predict(Vector{x_new});
  EXPECT_LT(after.var, before.var);
  EXPECT_NEAR(after.mean, f(x_new), 0.05);
  EXPECT_EQ(gp.size(), 9u);
}

TEST(GpRegressor, AddPointWithRetrainStillInterpolates) {
  auto f = [](double x) { return x * std::sin(8.0 * x); };
  GpRegressor gp = makeFitted1d(10, 0.0, 43, f);
  gp.addPoint(Vector{0.33}, f(0.33), /*retrain=*/true);
  EXPECT_NEAR(gp.predict(Vector{0.33}).mean, f(0.33), 0.05);
}

TEST(GpRegressor, BestObservedIsMinimum) {
  GpRegressor gp(std::make_unique<SeArdKernel>(1));
  gp.fit({Vector{0.0}, Vector{0.5}, Vector{1.0}}, {3.0, -2.0, 7.0});
  EXPECT_DOUBLE_EQ(gp.bestObserved(), -2.0);
}

TEST(GpRegressor, ThrowsOnMisuse) {
  GpRegressor gp(std::make_unique<SeArdKernel>(2));
  EXPECT_THROW(gp.predict(Vector{0.0, 0.0}), std::logic_error);
  EXPECT_THROW(gp.fit({}, {}), mfbo::ContractViolation);
  EXPECT_THROW(gp.fit({Vector{0.0}}, {1.0}), mfbo::ContractViolation);
  EXPECT_THROW(gp.fit({Vector{0.0, 0.0}}, {1.0, 2.0}),
               mfbo::ContractViolation);
}

TEST(GpRegressor, CopyIsIndependent) {
  auto f = [](double x) { return x; };
  GpRegressor gp = makeFitted1d(6, 0.0, 47, f);
  GpRegressor copy = gp;
  copy.addPoint(Vector{0.9}, 5.0, false);
  EXPECT_EQ(gp.size(), 6u);
  EXPECT_EQ(copy.size(), 7u);
  // Original predictions unchanged by mutating the copy.
  EXPECT_NEAR(gp.predict(Vector{0.5}).mean, 0.5, 0.05);
}

TEST(GpRegressor, HandlesConstantTargets) {
  GpRegressor gp(std::make_unique<SeArdKernel>(1));
  gp.fit({Vector{0.0}, Vector{0.5}, Vector{1.0}}, {2.0, 2.0, 2.0});
  const Prediction p = gp.predict(Vector{0.7});
  EXPECT_NEAR(p.mean, 2.0, 0.2);
  EXPECT_TRUE(std::isfinite(p.var));
}

TEST(GpRegressor, DuplicateInputsDoNotCrash) {
  GpRegressor gp(std::make_unique<SeArdKernel>(1));
  gp.fit({Vector{0.3}, Vector{0.3}, Vector{0.8}}, {1.0, 1.1, -0.5});
  EXPECT_NO_THROW(gp.predict(Vector{0.3}));
}

TEST(GpRegressor, WorksInHigherDimensions) {
  Rng rng(53);
  auto f = [](const Vector& x) {
    return x[0] * x[0] + std::sin(3.0 * x[1]) - 0.5 * x[2];
  };
  std::vector<Vector> x;
  std::vector<double> y;
  Box cube = Box::unitCube(3);
  for (const auto& xi : mfbo::linalg::latinHypercube(40, cube, rng)) {
    x.push_back(xi);
    y.push_back(f(xi));
  }
  GpConfig cfg;
  cfg.seed = 53;
  GpRegressor gp(std::make_unique<SeArdKernel>(3), cfg);
  gp.fit(x, y);
  double rmse = 0.0;
  const auto queries = mfbo::linalg::latinHypercube(20, cube, rng);
  for (const auto& q : queries) {
    const double err = gp.predict(q).mean - f(q);
    rmse += err * err;
  }
  rmse = std::sqrt(rmse / static_cast<double>(queries.size()));
  EXPECT_LT(rmse, 0.15);
}

}  // namespace
