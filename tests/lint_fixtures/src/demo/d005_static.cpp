// Fixture: D005 fires on mutable static state in src/, including interned
// telemetry handles (they pin the registry active at first call across
// every later scope).
namespace telemetry {
struct Counter;
Counter& counter(const char* name);
}  // namespace telemetry

namespace demo {

static int call_count = 0;

int bump() { return ++call_count; }

void hit() {
  static telemetry::Counter& hits = telemetry::counter("demo.hits");
  (void)hits;
}

}  // namespace demo
