// Fixture: D005 fires on mutable static state in src/.
namespace demo {

static int call_count = 0;

int bump() { return ++call_count; }

}  // namespace demo
