// Fixture: D004 fires on raw std::thread outside common/parallel.
#include <thread>

namespace demo {

void runOnce() {
  std::thread worker([] {});
  worker.join();
}

}  // namespace demo
