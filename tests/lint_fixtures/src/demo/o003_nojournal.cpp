// Fixture: O003 fires — this file is registered with a `journalHook`
// coupling (see the test's Config), mirroring the real flight-recorder
// hook sites (kSessionStep in session.cpp, kPoolDispatch in
// parallel.cpp, ...), but the journalling call was deleted.
namespace demo {

void advanceEngine(int step) {
  // The registered journalHook(step) call site is gone: the engine still
  // advances, the black box just never hears about it.
  (void)step;
}

}  // namespace demo
