// Fixture: O002 fires — this source is deliberately absent from the
// sibling CMakeLists.txt.
namespace demo {

double identityOf(double x) { return x; }

}  // namespace demo
