// Fixture: O003 fires — this file is registered with an `emitHook`
// observability coupling (see the test's Config) but never mentions it,
// i.e. the hook call site was deleted.
namespace demo {

void closeFrame(int depth) {
  // The registered emitHook(depth) dispatch is gone.
  (void)depth;
}

}  // namespace demo
