// Fixture: D001 fires on ambient randomness outside linalg::Rng.
#include <cstdlib>

namespace demo {

int noisyDraw() { return std::rand() % 6; }

}  // namespace demo
