// Fixture: S001 fires on a suppression that silences nothing.
namespace demo {

// mfbo-lint: allow(D001) — fixture: the next line draws no entropy
double quiet(double x) { return x + 1.0; }

}  // namespace demo
