// Fixture: a well-formed suppression silences its finding — no output.
#include <cstdlib>

namespace demo {

int seededElsewhere() {
  // mfbo-lint: allow(D001) — fixture: demonstrates a reviewed exception
  return std::rand() % 6;
}

}  // namespace demo
