// Fixture: O001 fires — this file is registered for the `demo_phase`
// hot path (see the test's Config) but never opens its ScopedSpan.
namespace demo {

double hotLoop(double x) {
  double acc = 0.0;
  for (int i = 0; i < 100; ++i) acc += x * static_cast<double>(i);
  return acc;
}

}  // namespace demo
