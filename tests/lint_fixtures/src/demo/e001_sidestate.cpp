// Fixture: E001 fires — this file is registered as an engine
// state-machine file (see the test's Config) and assigns `state_` from a
// handler instead of funnelling through transition(). Comparisons and the
// transition body itself must stay silent.
namespace demo {

enum class State { kInit, kRun, kDone };

class Machine {
 public:
  void transition(State next) { state_ = next; }

  void handleRun() {
    if (state_ == State::kInit) {
      state_ = State::kRun;  // <-- side-steps the legality check
    }
  }

  bool done() const { return state_ == State::kDone; }

 private:
  State state_ = State::kInit;
};

}  // namespace demo
