// Fixture: C001 fires on a public entry point with unvalidated inputs.
#include <cstddef>

namespace demo {

double meanOf(const double* values, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += values[i];
  return acc / static_cast<double>(n);
}

}  // namespace demo
