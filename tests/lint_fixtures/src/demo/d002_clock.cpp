// Fixture: D002 fires on wall-clock reads outside telemetry/spans/bench.
#include <chrono>

namespace demo {

long long stampNow() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace demo
