// Fixture: D003 fires on iteration over a hash container.
#include <unordered_map>

namespace demo {

double tally() {
  std::unordered_map<int, double> weights;
  weights[1] = 2.0;
  double acc = 0.0;
  for (const auto& entry : weights) acc += entry.second;
  return acc;
}

}  // namespace demo
