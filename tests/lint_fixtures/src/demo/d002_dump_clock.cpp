// Fixture: D002 fires — a flight-recorder-style event stamp reading the
// wall clock in a file that is NOT in the clock allowlist. The real
// recorder's stamp helper (src/common/eventlog.cpp) is audited; a copy
// of it anywhere else is a determinism leak.
#include <chrono>

namespace demo {

long long stampEvent() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace demo
