// Fixture: O001 fires — this file is registered for the `flightrec_dump`
// hot path (see the test's Config), mirroring the real black-box dump
// path in src/common/eventlog.cpp, but never opens its ScopedSpan.
namespace demo {

int dumpBlackBox(const char* path) {
  // The dump runs unattributed: no span, no memstats, no trace entry.
  return path != nullptr ? 0 : -1;
}

}  // namespace demo
