// Fixture: C002 fires on bare assert().
#include <cassert>

namespace demo {

int half(int value) {
  assert(value % 2 == 0);
  return value / 2;
}

}  // namespace demo
