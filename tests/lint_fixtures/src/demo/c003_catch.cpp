// Fixture: C003 fires on catch (...) that swallows.
namespace demo {

double guarded(double x) {
  try {
    return 1.0 / x;
  } catch (...) {
  }
  return 0.0;
}

}  // namespace demo
