// Fixture: S002 fires on reason-less and unparseable suppressions.
namespace demo {

// mfbo-lint: allow(D005)
static int hidden_total = 0;

// mfbo-lint: allowD001 — typo in the marker, must not silently no-op
int bumpHidden() { return ++hidden_total; }

}  // namespace demo
