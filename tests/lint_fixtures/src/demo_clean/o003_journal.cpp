// Clean twin of o003_nojournal: the registered `journalHook` coupling is
// present — every engine advance is journalled.
namespace demo {

void journalHook(int step);

void advanceEngine(int step) { journalHook(step); }

}  // namespace demo
