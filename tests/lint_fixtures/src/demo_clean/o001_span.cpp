// Clean twin of o001: the registered `demo_phase` span is opened.
#include "common/spans.h"

namespace demo {

double hotLoop(double x) {
  const mfbo::spans::ScopedSpan span("demo_phase");
  double acc = 0.0;
  for (int i = 0; i < 100; ++i) acc += x * static_cast<double>(i);
  return acc;
}

}  // namespace demo
