// Clean twin of c002: MFBO_DCHECK survives every build type.
#include "common/check.h"

namespace demo {

int half(int value) {
  MFBO_DCHECK(value % 2 == 0, "value must be even, got ", value);
  return value / 2;
}

}  // namespace demo
