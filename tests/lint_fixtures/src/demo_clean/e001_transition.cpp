// Clean twin of e001: every `state_` write funnels through transition();
// handlers only read and compare.
namespace demo {

enum class State { kInit, kRun, kDone };

class Machine {
 public:
  void transition(State next) { state_ = next; }

  void handleRun() {
    if (state_ == State::kInit) transition(State::kRun);
  }

  bool done() const { return state_ == State::kDone; }

 private:
  State state_ = State::kInit;
};

}  // namespace demo
