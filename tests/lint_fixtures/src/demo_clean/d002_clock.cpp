// Clean twin of d002: time enters as data, never from the wall clock.
namespace demo {

long long stampOf(long long tick) { return tick; }

}  // namespace demo
