// Clean twin of d005: compile-time constant, no mutable process state, and
// the post-sweep telemetry idiom — a function-local (non-static) handle
// looked up per call, which follows the active registry scope.
namespace telemetry {
struct Counter;
Counter& counter(const char* name);
}  // namespace telemetry

namespace demo {

constexpr int kMaxCalls = 64;

int clampCalls(int n) { return n < kMaxCalls ? n : kMaxCalls; }

void hit() {
  telemetry::Counter& hits = telemetry::counter("demo.hits");
  (void)hits;
}

}  // namespace demo
