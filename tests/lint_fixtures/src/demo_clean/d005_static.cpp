// Clean twin of d005: compile-time constant, no mutable process state.
namespace demo {

constexpr int kMaxCalls = 64;

int clampCalls(int n) { return n < kMaxCalls ? n : kMaxCalls; }

}  // namespace demo
