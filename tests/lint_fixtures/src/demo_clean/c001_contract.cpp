// Clean twin of c001: inputs validated by the first statement.
#include <cstddef>

#include "common/check.h"

namespace demo {

double meanOf(const double* values, std::size_t n) {
  MFBO_CHECK(values != nullptr && n >= 1, "need a non-empty value array");
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += values[i];
  return acc / static_cast<double>(n);
}

}  // namespace demo
