// Clean twin of o003: the registered `emitHook` coupling is present.
namespace demo {

void emitHook(int depth);

void closeFrame(int depth) { emitHook(depth); }

}  // namespace demo
