// Clean twin of d004: sequential loop (real code would use
// parallel::parallelFor from the deterministic pool).
namespace demo {

double runOnce() {
  double acc = 0.0;
  for (int i = 0; i < 8; ++i) acc += static_cast<double>(i);
  return acc;
}

}  // namespace demo
