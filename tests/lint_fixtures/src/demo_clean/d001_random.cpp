// Clean twin of d001: deterministic arithmetic, no ambient randomness.
namespace demo {

int steadyDraw(int seed) { return seed % 6; }

}  // namespace demo
