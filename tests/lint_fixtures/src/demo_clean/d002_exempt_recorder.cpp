// Clean by allowlist: this file reads the wall clock exactly like the
// real timeline recorder (src/common/timeline.cpp), and the test's Config
// lists it in clock_allowed — the D002 path exemption for audited
// recorders must keep it silent.
#include <chrono>

namespace demo {

long long recorderStamp() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace demo
