// Clean by allowlist: this file stamps dump-mode events exactly like the
// real flight recorder (src/common/eventlog.cpp), and the test's Config
// lists it in clock_allowed — the audited D002 exemption for the
// wall-clock dump mode must keep it silent.
#include <chrono>

namespace demo {

long long dumpStamp() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace demo
