// Clean twin of o001_nodumpspan: the registered `flightrec_dump` span is
// opened around the dump.
#include "common/spans.h"

namespace demo {

int dumpBlackBox(const char* path) {
  const mfbo::spans::ScopedSpan span("flightrec_dump");
  return path != nullptr ? 0 : -1;
}

}  // namespace demo
