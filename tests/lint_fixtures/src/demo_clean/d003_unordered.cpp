// Clean twin of d003: ordered container, deterministic iteration.
#include <map>

namespace demo {

double tally() {
  std::map<int, double> weights;
  weights[1] = 2.0;
  double acc = 0.0;
  for (const auto& entry : weights) acc += entry.second;
  return acc;
}

}  // namespace demo
