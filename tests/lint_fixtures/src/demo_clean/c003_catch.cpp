// Clean twin of c003: the catch-all rethrows, failures stay visible.
namespace demo {

double guarded(double x) {
  try {
    return 1.0 / x;
  } catch (...) {
    throw;
  }
}

}  // namespace demo
